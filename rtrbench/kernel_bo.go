package rtrbench

import (
	"context"

	"repro/internal/core/bo"
	"repro/internal/golden"
	"repro/internal/profile"
)

func init() {
	registerSpec(Info{
		Name: "bo", Index: 16, Stage: Control,
		Description:      "Bayesian optimization (GP-UCB) of the throwing policy",
		PaperBottlenecks: []string{"Sort"},
		ExpectDominant:   []string{"acquisition", "gp-fit", "sort"},
	}, spec[bo.Config]{
		configure: func(o Options) (bo.Config, error) {
			cfg := bo.DefaultConfig()
			cfg.Seed = o.seed()
			cfg.BestEffort = o.BestEffort
			if o.Size == SizeSmall {
				cfg.Iterations = 15
				cfg.Candidates = 400
			}
			return cfg, noVariant("bo", o)
		},
		// Best reward, GP operation counts, and the reward-curve checksum.
		digest: func(r Result) []golden.Field {
			return append(
				metricFields(r, "best_reward", "evals", "gp_fits", "predictions"),
				seriesFields(r, "rewards")...)
		},
		run: func(ctx context.Context, cfg bo.Config, p *profile.Profile) (Result, error) {
			kr, err := bo.Run(ctx, cfg, p)
			res := newResult("bo", Control, p.Snapshot())
			res.Metrics["best_reward"] = kr.BestReward
			res.Metrics["evals"] = float64(kr.Evals)
			res.Metrics["gp_fits"] = float64(kr.GPFits)
			res.Metrics["predictions"] = float64(kr.Predictions)
			res.Series["rewards"] = kr.Rewards
			res.Degraded = kr.Degraded
			return res, err
		},
	})
}
