package rtrbench

import (
	"context"

	"repro/internal/core/rrt"
	"repro/internal/profile"
)

func init() {
	registerSpec(Info{
		Name: "rrtstar", Index: 9, Stage: Planning,
		Description:      "Asymptotically optimal RRT* with neighborhood rewiring",
		PaperBottlenecks: []string{"Collision detection", "nearest neighbor search"},
		ExpectDominant:   []string{"collision", "nn"},
	}, spec[rrt.Config]{
		configure: func(o Options) (rrt.Config, error) {
			return rrtConfig("rrtstar", o, o.Variant)
		},
		// Path cost plus the sampling/NN/rewire operation counts shared by
		// the RRT family (see rrtDigest).
		digest: rrtDigest,
		run: func(ctx context.Context, cfg rrt.Config, p *profile.Profile) (Result, error) {
			kr, err := rrt.RunStar(ctx, cfg, p)
			return rrtResult("rrtstar", p, kr), err
		},
	})
}
