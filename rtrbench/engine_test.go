package rtrbench

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/profile"
)

// TestEngineResolveHook proves kernel resolution is injectable: the engine
// must consult the hook instead of the registry, and surface its errors as
// suite-level failures.
func TestEngineResolveHook(t *testing.T) {
	var ran atomic.Int32
	e := &Engine{
		Resolve: func(names []string) ([]Info, error) {
			if len(names) == 1 && names[0] == "boom" {
				return nil, errors.New("resolve failed")
			}
			return []Info{{
				Name: "synthetic",
				runWith: func(ctx context.Context, o Options, p *profile.Profile) (Result, error) {
					ran.Add(1)
					return Result{Kernel: "synthetic"}, nil
				},
			}}, nil
		},
	}

	res, err := e.Run(context.Background(), SuiteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Kernels) != 1 || res.Kernels[0].Err != nil || ran.Load() != 1 {
		t.Fatalf("synthetic kernel did not run exactly once: %+v (ran=%d)", res.Kernels, ran.Load())
	}

	if _, err := e.Run(context.Background(), SuiteOptions{Kernels: []string{"boom"}}); err == nil {
		t.Fatal("resolve error not surfaced")
	}
}

// TestEngineNewProfileHook proves the trial profile is pluggable: the hook
// must be called once per kernel, and the trials must run against its
// shards (observable through the counters it collects).
func TestEngineNewProfileHook(t *testing.T) {
	var built atomic.Int32
	e := &Engine{
		NewProfile: func(o Options) *profile.Profile {
			built.Add(1)
			return profile.New()
		},
	}
	info := Info{
		Name: "counting",
		runWith: func(ctx context.Context, o Options, p *profile.Profile) (Result, error) {
			p.BeginROI()
			p.Count("ops", 1)
			p.EndROI()
			return Result{Kernel: "counting"}, nil
		},
	}

	res, err := e.RunKernels(context.Background(), []Info{info, info}, SuiteOptions{Trials: 3, Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := built.Load(); got != 2 {
		t.Fatalf("NewProfile called %d times, want once per kernel (2)", got)
	}
	for _, kr := range res.Kernels {
		if kr.Trials == nil || kr.Trials.Counters["ops"] != 3 {
			t.Fatalf("trials did not run on the injected profile's shards: %+v", kr.Trials)
		}
	}
}

// TestNormalize pins the canonicalization contract: defaults filled,
// invalid options rejected, and idempotence (normalizing a normalized
// option set is the identity — the property the result-cache key relies
// on).
func TestNormalize(t *testing.T) {
	got, err := SuiteOptions{}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if got.Parallel != runtime.NumCPU() || got.Trials != 1 || got.Seed != 1 {
		t.Fatalf("defaults not filled: %+v", got)
	}
	again, err := got.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again, got) {
		t.Fatalf("Normalize not idempotent: %+v vs %+v", again, got)
	}

	invalid := []SuiteOptions{
		{Options: Options{Variant: "mapf"}},
		{Warmup: -1},
		{Timeout: -time.Second},
		{Retries: -1},
		{RetryBackoff: -time.Millisecond},
		{Options: Options{Deadline: -time.Millisecond}},
	}
	for i, o := range invalid {
		if _, err := o.Normalize(); err == nil {
			t.Errorf("case %d: invalid options %+v normalized without error", i, o)
		}
	}
}

// TestSuiteRejectsInvalidOptions proves Suite routes through Normalize.
func TestSuiteRejectsInvalidOptions(t *testing.T) {
	if _, err := Suite(context.Background(), SuiteOptions{Warmup: -3}); err == nil {
		t.Fatal("Suite accepted negative Warmup")
	}
}

// TestIsTransient pins the exported transience classifier to the trial
// loop's own notion: deadline expiry anywhere in the chain is transient,
// everything else is not.
func TestIsTransient(t *testing.T) {
	if !IsTransient(context.DeadlineExceeded) {
		t.Error("bare DeadlineExceeded not transient")
	}
	if !IsTransient(fmt.Errorf("run: %w", context.DeadlineExceeded)) {
		t.Error("wrapped DeadlineExceeded not transient")
	}
	if IsTransient(context.Canceled) {
		t.Error("Canceled classified transient")
	}
	if IsTransient(errors.New("kernel exploded")) {
		t.Error("ordinary error classified transient")
	}
	if IsTransient(nil) {
		t.Error("nil classified transient")
	}
}

// TestRetryJitter: the jitter keeps the backoff inside [0.5, 1.5) of its
// base, never synchronizes two differently-seeded trials on the same
// schedule, and is deterministic for a fixed seed.
func TestRetryJitter(t *testing.T) {
	base := 100 * time.Millisecond
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 1000; i++ {
		got := retryJitter(base, rng)
		if got < base/2 || got >= base+base/2 {
			t.Fatalf("jittered backoff %v outside [%v, %v)", got, base/2, base+base/2)
		}
	}
	// Deterministic per seed.
	a := retryJitter(base, rand.New(rand.NewSource(7)))
	b := retryJitter(base, rand.New(rand.NewSource(7)))
	if a != b {
		t.Fatalf("same seed gave %v and %v", a, b)
	}
	// Different seeds decorrelate (not a proof, but seeds 1..32 all
	// colliding would mean the jitter is broken).
	seen := map[time.Duration]bool{}
	for s := int64(1); s <= 32; s++ {
		seen[retryJitter(base, rand.New(rand.NewSource(s)))] = true
	}
	if len(seen) < 16 {
		t.Fatalf("32 seeds produced only %d distinct backoffs", len(seen))
	}
	// Zero base passes through untouched (retry-immediately contract).
	if got := retryJitter(0, rng); got != 0 {
		t.Fatalf("retryJitter(0) = %v", got)
	}
}

// TestRetryBackoffJitterApplied: a transiently failing kernel with a
// non-zero backoff still recovers within its retry budget — the jittered
// sleep stays bounded and the retry loop's accounting is unchanged.
func TestRetryBackoffJitterApplied(t *testing.T) {
	var calls atomic.Int32
	eng := &Engine{Resolve: func([]string) ([]Info, error) {
		return []Info{{
			Name: "flaky",
			runWith: func(ctx context.Context, o Options, p *profile.Profile) (Result, error) {
				if calls.Add(1) == 1 {
					return Result{}, fmt.Errorf("overloaded: %w", context.DeadlineExceeded)
				}
				return Result{Kernel: "flaky"}, nil
			},
		}}, nil
	}}
	start := time.Now()
	res, err := eng.Run(context.Background(), SuiteOptions{
		Trials:       1,
		Parallel:     1,
		Retries:      2,
		RetryBackoff: 20 * time.Millisecond,
		Options:      Options{Seed: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Kernels[0].Err != nil {
		t.Fatalf("kernel err = %v", res.Kernels[0].Err)
	}
	if res.Kernels[0].Retried != 1 {
		t.Fatalf("Retried = %d, want 1", res.Kernels[0].Retried)
	}
	// One retry with base 20ms jittered into [10ms, 30ms): the elapsed
	// time proves a backoff happened and stayed bounded.
	if el := time.Since(start); el < 10*time.Millisecond || el > 2*time.Second {
		t.Fatalf("elapsed %v outside plausible jittered-backoff window", el)
	}
}
