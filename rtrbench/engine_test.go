package rtrbench

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/profile"
)

// TestEngineResolveHook proves kernel resolution is injectable: the engine
// must consult the hook instead of the registry, and surface its errors as
// suite-level failures.
func TestEngineResolveHook(t *testing.T) {
	var ran atomic.Int32
	e := &Engine{
		Resolve: func(names []string) ([]Info, error) {
			if len(names) == 1 && names[0] == "boom" {
				return nil, errors.New("resolve failed")
			}
			return []Info{{
				Name: "synthetic",
				runWith: func(ctx context.Context, o Options, p *profile.Profile) (Result, error) {
					ran.Add(1)
					return Result{Kernel: "synthetic"}, nil
				},
			}}, nil
		},
	}

	res, err := e.Run(context.Background(), SuiteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Kernels) != 1 || res.Kernels[0].Err != nil || ran.Load() != 1 {
		t.Fatalf("synthetic kernel did not run exactly once: %+v (ran=%d)", res.Kernels, ran.Load())
	}

	if _, err := e.Run(context.Background(), SuiteOptions{Kernels: []string{"boom"}}); err == nil {
		t.Fatal("resolve error not surfaced")
	}
}

// TestEngineNewProfileHook proves the trial profile is pluggable: the hook
// must be called once per kernel, and the trials must run against its
// shards (observable through the counters it collects).
func TestEngineNewProfileHook(t *testing.T) {
	var built atomic.Int32
	e := &Engine{
		NewProfile: func(o Options) *profile.Profile {
			built.Add(1)
			return profile.New()
		},
	}
	info := Info{
		Name: "counting",
		runWith: func(ctx context.Context, o Options, p *profile.Profile) (Result, error) {
			p.BeginROI()
			p.Count("ops", 1)
			p.EndROI()
			return Result{Kernel: "counting"}, nil
		},
	}

	res, err := e.RunKernels(context.Background(), []Info{info, info}, SuiteOptions{Trials: 3, Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := built.Load(); got != 2 {
		t.Fatalf("NewProfile called %d times, want once per kernel (2)", got)
	}
	for _, kr := range res.Kernels {
		if kr.Trials == nil || kr.Trials.Counters["ops"] != 3 {
			t.Fatalf("trials did not run on the injected profile's shards: %+v", kr.Trials)
		}
	}
}

// TestNormalize pins the canonicalization contract: defaults filled,
// invalid options rejected, and idempotence (normalizing a normalized
// option set is the identity — the property the result-cache key relies
// on).
func TestNormalize(t *testing.T) {
	got, err := SuiteOptions{}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if got.Parallel != runtime.NumCPU() || got.Trials != 1 || got.Seed != 1 {
		t.Fatalf("defaults not filled: %+v", got)
	}
	again, err := got.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again, got) {
		t.Fatalf("Normalize not idempotent: %+v vs %+v", again, got)
	}

	invalid := []SuiteOptions{
		{Options: Options{Variant: "mapf"}},
		{Warmup: -1},
		{Timeout: -time.Second},
		{Retries: -1},
		{RetryBackoff: -time.Millisecond},
		{Options: Options{Deadline: -time.Millisecond}},
	}
	for i, o := range invalid {
		if _, err := o.Normalize(); err == nil {
			t.Errorf("case %d: invalid options %+v normalized without error", i, o)
		}
	}
}

// TestSuiteRejectsInvalidOptions proves Suite routes through Normalize.
func TestSuiteRejectsInvalidOptions(t *testing.T) {
	if _, err := Suite(context.Background(), SuiteOptions{Warmup: -3}); err == nil {
		t.Fatal("Suite accepted negative Warmup")
	}
}
