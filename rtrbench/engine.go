package rtrbench

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"time"

	"repro/internal/profile"
)

// Engine is the reusable execution core behind Suite: warmup runs and
// measured trials per kernel, a bounded worker pool across kernels, retry
// and cancellation semantics, and per-kernel profile sharding. The CLI
// (`rtrbench suite`), the verification harness, the tests, and the
// rtrbenchd daemon all drive this one code path.
//
// The zero value is ready to use and behaves exactly like Suite. The two
// hooks exist for callers that need to bend the engine without forking it:
// tests inject synthetic kernels through Resolve, and profile-layer
// experiments swap the trial profile through NewProfile.
type Engine struct {
	// Resolve maps a kernel-name selection onto kernel descriptors; nil
	// uses the package registry in Table I order (empty selection = all).
	Resolve func(names []string) ([]Info, error)
	// NewProfile builds the parent profile whose shards the measured
	// trials of one kernel run against; nil uses the default profile
	// configured from the run options (deadline, step latency).
	NewProfile func(Options) *profile.Profile
}

// Run resolves the kernel selection in opts and executes the sweep. It is
// Suite with an injectable engine; see Suite for the error contract.
func (e *Engine) Run(ctx context.Context, opts SuiteOptions) (SuiteResult, error) {
	opts, err := opts.Normalize()
	if err != nil {
		return SuiteResult{}, err
	}
	resolve := e.Resolve
	if resolve == nil {
		resolve = suiteKernels
	}
	infos, err := resolve(opts.Kernels)
	if err != nil {
		return SuiteResult{}, err
	}
	return e.runKernels(ctx, infos, opts)
}

// RunKernels executes an already-resolved kernel list, bypassing Resolve —
// the entry point for callers holding synthetic or pre-filtered kernels.
func (e *Engine) RunKernels(ctx context.Context, infos []Info, opts SuiteOptions) (SuiteResult, error) {
	opts, err := opts.Normalize()
	if err != nil {
		return SuiteResult{}, err
	}
	return e.runKernels(ctx, infos, opts)
}

// runKernels is the worker-pool core; opts is already normalized.
func (e *Engine) runKernels(ctx context.Context, infos []Info, opts SuiteOptions) (SuiteResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	res := SuiteResult{Kernels: make([]KernelResult, len(infos))}
	start := time.Now()
	sem := make(chan struct{}, opts.Parallel)
	var wg sync.WaitGroup
	for i, info := range infos {
		wg.Add(1)
		go func(i int, info Info) {
			defer wg.Done()
			// A queued kernel must not wait for a worker slot after the
			// suite is cancelled (first failure, ctx deadline, Ctrl-C):
			// pre-fix, every queued worker eventually acquired the
			// semaphore and spun up a doomed run. Report the cancellation
			// immediately instead.
			select {
			case sem <- struct{}{}:
			case <-runCtx.Done():
				res.Kernels[i] = KernelResult{Info: info, FailedTrial: -1, Err: runCtx.Err()}
				return
			}
			defer func() { <-sem }()
			// The slot may have been won in a race with cancellation:
			// re-check so a cancelled suite never starts another kernel.
			if err := runCtx.Err(); err != nil {
				res.Kernels[i] = KernelResult{Info: info, FailedTrial: -1, Err: err}
				return
			}
			// Last line of defense: runWith already recovers kernel
			// panics, but a panic anywhere else in the trial machinery
			// must not kill the whole sweep.
			defer func() {
				if rec := recover(); rec != nil {
					res.Kernels[i] = KernelResult{Info: info, FailedTrial: -1, Err: newKernelError(info.Name, rec)}
					if !opts.ContinueOnError {
						cancel()
					}
				}
			}()
			kr := e.runKernelTrials(runCtx, info, opts)
			if kr.Err != nil && !opts.ContinueOnError {
				cancel()
			}
			res.Kernels[i] = kr
		}(i, info)
	}
	wg.Wait()
	res.Elapsed = time.Since(start)
	if err := ctx.Err(); err != nil {
		return res, err
	}
	return res, nil
}

// runKernelTrials executes one kernel's warmup runs and measured trials on
// shards of a common profile, then folds the shards into the aggregate
// statistics. opts is already normalized.
func (e *Engine) runKernelTrials(ctx context.Context, info Info, opts SuiteOptions) KernelResult {
	kr := KernelResult{Info: info, FailedTrial: -1}
	base := opts.Options
	seed := base.seed()

	for w := 0; w < opts.Warmup; w++ {
		o := base
		o.Seed = seed
		// Warmup runs must match steady-state behaviour: no injected
		// faults, and no profile either (profile.Disabled also keeps the
		// injector's step hook inert).
		o.Fault = nil
		if _, err := runOnce(ctx, info, o, profile.Disabled(), opts.Timeout); err != nil {
			kr.Err = err
			return kr
		}
	}

	newProf := e.NewProfile
	if newProf == nil {
		newProf = newProfile
	}
	parent := newProf(base)
	sharded := profile.NewSharded(parent)
	rois := make([]time.Duration, 0, opts.Trials)
	var degraded int
	var faults []FaultEvent
	for t := 0; t < opts.Trials; t++ {
		o := base
		// Trial t always runs with seed base+t: the fault schedule and
		// kernel workload are functions of the trial index alone, so the
		// sweep is reproducible at any Parallel.
		o.Seed = seed + int64(t)
		r, err := runTrial(ctx, info, o, sharded, opts, &kr.Retried)
		for i := range r.Faults {
			r.Faults[i].Trial = t
		}
		faults = append(faults, r.Faults...)
		if err != nil {
			var ke *KernelError
			if errors.As(err, &ke) {
				ke.Trial = t
			}
			kr.Err = err
			kr.FailedTrial = t
			break
		}
		if t == 0 {
			kr.Result = r
		}
		if r.Degraded {
			degraded++
		}
		rois = append(rois, r.ROI)
	}
	if len(rois) == 0 {
		if len(faults) > 0 {
			kr.Trials = &TrialStats{Faults: faults}
		}
		return kr
	}

	merged := sharded.Snapshot()
	stats := &TrialStats{Trials: len(rois), Counters: merged.Counters, Degraded: degraded, Faults: faults}
	stats.ROIMean, stats.ROIMin, stats.ROIMax, stats.ROIStddev = aggregateROI(rois)
	if merged.Steps.Count > 0 || merged.Steps.Deadline > 0 {
		stats.Steps = &StepStats{
			Count:    merged.Steps.Count,
			Min:      merged.Steps.Min,
			Mean:     merged.Steps.Mean,
			P50:      merged.Steps.P50,
			P95:      merged.Steps.P95,
			P99:      merged.Steps.P99,
			Max:      merged.Steps.Max,
			Deadline: merged.Steps.Deadline,
			Misses:   merged.Steps.Misses,
		}
	}
	kr.Trials = stats
	return kr
}

// IsTransient reports whether err is the kind of failure the suite's
// retry machinery considers transient: a per-run deadline expiry
// (context.DeadlineExceeded anywhere in the chain). Callers deciding
// whether to retry must additionally confirm their own context is still
// live — a timeout observed after suite cancellation is just the
// cancellation. This is the engine's notion of transience, exported so
// layers above it (the rtrbenchd job queue) classify failures the same
// way the trial loop does.
func IsTransient(err error) bool {
	return errors.Is(err, context.DeadlineExceeded)
}

// retryJitter scales a backoff by a factor in [0.5, 1.5) drawn from rng.
// Without it every retrying trial of a sweep sleeps the identical linear
// schedule and the retry attempts re-collide in synchronized storms —
// exactly what overloaded the run into timing out in the first place.
// The rng is seeded per trial, so the jitter (like the fault schedule) is
// a pure function of the trial's seed and the sweep stays reproducible.
func retryJitter(base time.Duration, rng *rand.Rand) time.Duration {
	if base <= 0 {
		return base
	}
	return time.Duration((0.5 + rng.Float64()) * float64(base))
}

// runTrial executes one measured trial, retrying up to opts.Retries times
// after a transient failure. Transient means the per-run Timeout expired
// while the suite context is still live (IsTransient plus a live-context
// check); kernel errors, injected panics, and suite cancellation fail
// immediately. Each attempt runs on a fresh profile shard so an abandoned
// attempt leaves no partial samples behind. Retry backoff grows linearly
// with the attempt and is jittered by a per-trial seeded RNG so parallel
// kernels don't retry in lockstep.
func runTrial(ctx context.Context, info Info, o Options, sharded *profile.Sharded, opts SuiteOptions, retried *int) (Result, error) {
	var rng *rand.Rand
	for attempt := 0; ; attempt++ {
		shard := sharded.Shard()
		r, err := runOnce(ctx, info, o, shard, opts.Timeout)
		if err == nil {
			return r, nil
		}
		transient := IsTransient(err) && ctx.Err() == nil
		if !transient || attempt >= opts.Retries {
			// The failing attempt's partial samples must not survive into
			// the kernel's aggregate statistics: Snapshot merges every
			// shard, and pre-fix a mid-run failure left its counters and
			// step latencies behind to pollute the completed trials.
			shard.Reset()
			return r, err
		}
		shard.Reset()
		*retried++
		if opts.RetryBackoff > 0 {
			if rng == nil {
				rng = rand.New(rand.NewSource(o.Seed))
			}
			backoff := retryJitter(opts.RetryBackoff*time.Duration(attempt+1), rng)
			select {
			case <-time.After(backoff):
			case <-ctx.Done():
				return r, ctx.Err()
			}
		}
	}
}

// runOnce executes one kernel run, bounded by timeout when non-zero.
func runOnce(ctx context.Context, info Info, o Options, p *profile.Profile, timeout time.Duration) (Result, error) {
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	return info.runWith(ctx, o, p)
}
