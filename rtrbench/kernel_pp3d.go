package rtrbench

import (
	"context"

	"repro/internal/core/pp3d"
	"repro/internal/profile"
)

func init() {
	registerSpec(Info{
		Name: "pp3d", Index: 5, Stage: Planning,
		Description:      "3D path planning for a UAV with A*",
		PaperBottlenecks: []string{"Collision detection", "graph search"},
		ExpectDominant:   []string{"collision", "search"},
	}, spec[pp3d.Config]{
		configure: func(o Options) (pp3d.Config, error) {
			cfg := pp3d.DefaultConfig()
			cfg.Seed = o.seed()
			if o.Size == SizeSmall {
				cfg.Map = pp3d.DefaultMap(64, 64, 16, cfg.Seed)
			}
			return cfg, noVariant("pp3d", o)
		},
		// Path cost plus the expansion/collision-check node counts.
		digest: digestOf("found", "path_length", "expanded", "collision_checks"),
		run: func(ctx context.Context, cfg pp3d.Config, p *profile.Profile) (Result, error) {
			kr, err := pp3d.Run(ctx, cfg, p)
			res := newResult("pp3d", Planning, p.Snapshot())
			res.Metrics["found"] = boolMetric(kr.Found)
			res.Metrics["path_length"] = kr.PathLength
			res.Metrics["expanded"] = float64(kr.Expanded)
			res.Metrics["collision_checks"] = float64(kr.Checks)
			return res, err
		},
	})
}
