package rtrbench

import (
	"fmt"
	"runtime/debug"
	"time"

	"repro/internal/fault"
)

// FaultOptions configures the chaos layer of a run: deterministic injection
// of sensor dropout, NaN/Inf corruption, noise spikes, step stalls, and
// kernel panics. The schedule is derived from (Seed, kernel name, run seed)
// only, so a chaos suite run produces identical fault schedules at any
// parallelism — the suite's determinism contract extends to its faults.
type FaultOptions struct {
	// Seed is the chaos seed; it is independent of Options.Seed so the same
	// workloads can be rerun under different fault schedules.
	Seed int64
	// Dropout, NaN, and Noise are per-measurement probabilities of losing a
	// sensor reading, corrupting it to NaN/±Inf, and adding a noise spike
	// (of NoiseScale times the measurement magnitude; 0 means 10×).
	Dropout, NaN, Noise float64
	NoiseScale          float64
	// Stall is the per-step probability of an artificial stall of StallFor
	// (0 means 1ms) — the injected latency that exercises deadline handling
	// and graceful degradation.
	Stall    float64
	StallFor time.Duration
	// Panic is the per-run probability that the kernel panics at one of its
	// first steps; >= 1 panics deterministically at step 1. Panics are
	// recovered by the harness and surface as *KernelError.
	Panic float64
	// Only restricts injection to the named kernels (empty = all).
	Only []string
}

func (fo *FaultOptions) config() fault.Config {
	return fault.Config{
		Seed:       fo.Seed,
		Dropout:    fo.Dropout,
		NaN:        fo.NaN,
		Noise:      fo.Noise,
		NoiseScale: fo.NoiseScale,
		Stall:      fo.Stall,
		StallFor:   fo.StallFor,
		Panic:      fo.Panic,
		Only:       fo.Only,
	}
}

// FaultEvent is one injected fault that fired during a run, attributed to
// the kernel step it fired in.
type FaultEvent struct {
	// Trial is the measured-trial index the event belongs to (stamped by
	// Suite; 0 for single runs).
	Trial int
	// Step is the kernel step in progress when the fault fired (0 before
	// the first step completes).
	Step int64
	// Kind is the fault class: "dropout", "nan", "noise", "stall", "panic",
	// or "truncated" (the event log overflowed).
	Kind string
	// Detail is a human-readable description.
	Detail string
}

// faultEvents converts the injector's event log to the public form.
func faultEvents(in *fault.Injector) []FaultEvent {
	evs := in.Events()
	if len(evs) == 0 {
		return nil
	}
	out := make([]FaultEvent, len(evs))
	for i, e := range evs {
		out[i] = FaultEvent{Step: e.Step, Kind: string(e.Kind), Detail: e.Detail}
	}
	return out
}

// KernelError is the structured error produced when a kernel panics: the
// harness recovers the panic inside the adapter layer, so one misbehaving
// kernel can never take down a sweep. Suite stamps the trial index and
// reports it alongside the other kernels' results under ContinueOnError.
type KernelError struct {
	// Kernel is the kernel that panicked.
	Kernel string
	// Trial is the measured-trial index (-1 when the panic happened outside
	// a suite trial, e.g. in a direct Run call).
	Trial int
	// Fault attributes the panic to chaos injection when the recovered
	// value was the injector's (e.g. "injected panic at step 1"); empty for
	// a genuine kernel bug.
	Fault string
	// Msg is the recovered panic value, rendered.
	Msg string
	// Stack is the goroutine stack at recovery time.
	Stack []byte
}

func (e *KernelError) Error() string {
	if e.Fault != "" {
		return fmt.Sprintf("rtrbench: kernel %s trial %d panicked (%s): %s", e.Kernel, e.Trial, e.Fault, e.Msg)
	}
	return fmt.Sprintf("rtrbench: kernel %s trial %d panicked: %s", e.Kernel, e.Trial, e.Msg)
}

// newKernelError builds the structured error for a recovered panic,
// attributing it to the injector when the panic value is chaos-injected.
func newKernelError(kernel string, recovered any) *KernelError {
	ke := &KernelError{
		Kernel: kernel,
		Trial:  -1,
		Msg:    fmt.Sprint(recovered),
		Stack:  debug.Stack(),
	}
	if ip, ok := recovered.(*fault.InjectedPanic); ok {
		ke.Fault = fmt.Sprintf("injected panic at step %d", ip.Step)
		ke.Msg = ip.String()
	}
	return ke
}
