package rtrbench

import (
	"context"
	"fmt"

	"repro/internal/core/rrt"
	"repro/internal/profile"
)

// rrtRunCfg carries the variant choice (plain RRT vs bidirectional
// RRT-Connect) alongside the kernel config, since the run half of the spec
// never sees Options.
type rrtRunCfg struct {
	cfg     rrt.Config
	connect bool
}

// Validate delegates to the embedded kernel config so the adapter's
// duck-typed validation path still covers the rrt variant wrapper.
func (rc rrtRunCfg) Validate() error { return rc.cfg.Validate() }

func init() {
	registerSpec(Info{
		Name: "rrt", Index: 8, Stage: Planning,
		Description:      "Rapidly-exploring random tree planning for a 5-DoF arm",
		PaperBottlenecks: []string{"Collision detection", "nearest neighbor search"},
		ExpectDominant:   []string{"collision"},
	}, spec[rrtRunCfg]{
		configure: func(o Options) (rrtRunCfg, error) {
			// The "connect" variant runs the bidirectional RRT-Connect
			// extension; any other variant names a workspace.
			variant := o.Variant
			connect := variant == "connect"
			if connect {
				variant = ""
			}
			cfg, err := rrtConfig("rrt", o, variant)
			if err != nil {
				return rrtRunCfg{}, fmt.Errorf("rrt: unknown variant %q", o.Variant)
			}
			return rrtRunCfg{cfg: cfg, connect: connect}, nil
		},
		// Path cost plus the sampling/NN/collision operation counts shared
		// by the RRT family (see rrtDigest).
		digest: rrtDigest,
		run: func(ctx context.Context, rc rrtRunCfg, p *profile.Profile) (Result, error) {
			runFn := rrt.Run
			if rc.connect {
				runFn = rrt.RunConnect
			}
			kr, err := runFn(ctx, rc.cfg, p)
			return rrtResult("rrt", p, kr), err
		},
	})
}
