package rtrbench

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"time"
)

// SuiteOptions configures a full benchmark-suite run. The embedded Options
// apply to every kernel (size, seed, deadline, step tracking); variants are
// rejected because no single variant string is meaningful across kernels.
type SuiteOptions struct {
	Options

	// Kernels selects a subset by name; empty means all 16 in Table I
	// order.
	Kernels []string
	// Parallel bounds the number of kernels executing concurrently;
	// <= 0 means runtime.NumCPU().
	Parallel int
	// Trials is the number of measured runs per kernel; <= 0 means 1.
	// Trial t runs with seed base+t, so results are deterministic and
	// independent of Parallel.
	Trials int
	// Warmup runs each kernel this many times before the measured trials,
	// discarding the results (cache and allocator warm-up).
	Warmup int
	// Timeout bounds each individual run (warmup or trial); 0 means no
	// limit. A timed-out run fails with context.DeadlineExceeded.
	Timeout time.Duration
	// ContinueOnError keeps the sweep going when a kernel fails; the
	// default aborts the remaining kernels on the first error.
	ContinueOnError bool
	// Retries re-runs a trial up to this many times after a transient
	// failure (a per-run Timeout expiry while the suite itself is still
	// live). Non-transient failures — kernel errors, panics, suite
	// cancellation — are never retried.
	Retries int
	// RetryBackoff is the pause before each retry, growing linearly with
	// the attempt (backoff, 2*backoff, ...) and jittered by a factor in
	// [0.5, 1.5) drawn from the trial's seeded RNG, so parallel kernels
	// retrying after a shared overload don't re-collide in lockstep. The
	// jitter is a pure function of the trial seed: the sweep stays
	// reproducible. 0 retries immediately.
	RetryBackoff time.Duration
}

// Normalize validates the options and fills in every default, returning
// the canonical form: Parallel and Trials resolved to their effective
// values, the zero Seed resolved to 1. It is the single
// defaulting/validation point shared by Suite, the CLI, and the rtrbenchd
// admission path — two option sets describe the same sweep if and only if
// their normalized forms are equal, which is what makes them usable as
// result-cache identities.
func (o SuiteOptions) Normalize() (SuiteOptions, error) {
	if o.Variant != "" {
		return o, fmt.Errorf("rtrbench: SuiteOptions.Variant %q not supported (variants are per-kernel)", o.Variant)
	}
	if o.Warmup < 0 {
		return o, fmt.Errorf("rtrbench: SuiteOptions.Warmup %d is negative", o.Warmup)
	}
	if o.Timeout < 0 {
		return o, fmt.Errorf("rtrbench: SuiteOptions.Timeout %v is negative", o.Timeout)
	}
	if o.Retries < 0 {
		return o, fmt.Errorf("rtrbench: SuiteOptions.Retries %d is negative", o.Retries)
	}
	if o.RetryBackoff < 0 {
		return o, fmt.Errorf("rtrbench: SuiteOptions.RetryBackoff %v is negative", o.RetryBackoff)
	}
	if o.Deadline < 0 {
		return o, fmt.Errorf("rtrbench: Options.Deadline %v is negative", o.Deadline)
	}
	if o.Workers < 0 {
		return o, fmt.Errorf("rtrbench: Options.Workers %d is negative", o.Workers)
	}
	if o.Parallel <= 0 {
		o.Parallel = runtime.NumCPU()
	}
	if o.Trials <= 0 {
		o.Trials = 1
	}
	o.Seed = o.seed()
	return o, nil
}

// TrialStats aggregates the measured trials of one kernel.
type TrialStats struct {
	// Trials is the number of completed measured runs.
	Trials int
	// ROI statistics across trials.
	ROIMean, ROIMin, ROIMax, ROIStddev time.Duration
	// Counters are operation counts summed over all trials.
	Counters map[string]int64
	// Steps is the step-latency distribution merged across trials (nil
	// when step tracking was off).
	Steps *StepStats
	// Degraded counts trials that returned a best-effort partial result
	// (see Options.BestEffort); degraded trials count as completed.
	Degraded int
	// Faults lists every injected fault that fired across the measured
	// trials, stamped with its trial index (see Options.Fault).
	Faults []FaultEvent
}

// KernelResult is one kernel's outcome within a suite run.
type KernelResult struct {
	Info Info
	// Result is the first trial's report (deterministic for a fixed seed,
	// regardless of Parallel). Zero-valued when Err is non-nil and no
	// trial completed.
	Result Result
	// Trials aggregates all measured trials; nil when Err prevented any
	// trial from completing.
	Trials *TrialStats
	// Err is the first error this kernel hit (configuration, run failure,
	// timeout, or cancellation). A panicking kernel surfaces here as a
	// *KernelError with the trial index, fault attribution, and stack.
	Err error
	// FailedTrial is the measured-trial index Err happened in, or -1 when
	// Err is nil or the failure preceded the trials (configuration, warmup).
	FailedTrial int
	// Retried counts trial re-runs performed after transient timeouts (see
	// SuiteOptions.Retries).
	Retried int
}

// SuiteResult is the outcome of a Suite run, in Table I order.
type SuiteResult struct {
	Kernels []KernelResult
	// Elapsed is the wall-clock time of the whole sweep.
	Elapsed time.Duration
}

// FirstError returns the first per-kernel error in Table I order, or nil.
func (r SuiteResult) FirstError() error {
	for _, k := range r.Kernels {
		if k.Err != nil {
			return fmt.Errorf("%s: %w", k.Info.Name, k.Err)
		}
	}
	return nil
}

// KernelFailure is one entry of the suite's failure report.
type KernelFailure struct {
	// Kernel is the failing kernel's name.
	Kernel string
	// Trial is the failing trial index, or -1 when the failure happened
	// before any trial (configuration, warmup).
	Trial int
	// Fault attributes the failure to chaos injection when it was an
	// injected panic; empty otherwise.
	Fault string
	// Err is the underlying error.
	Err error
}

// Failures returns the per-kernel failures in Table I order — the
// ContinueOnError companion: everything that went wrong in one report,
// with trial indices and fault attribution where the error carries them.
func (r SuiteResult) Failures() []KernelFailure {
	var out []KernelFailure
	for _, k := range r.Kernels {
		if k.Err == nil {
			continue
		}
		f := KernelFailure{Kernel: k.Info.Name, Trial: k.FailedTrial, Err: k.Err}
		var ke *KernelError
		if errors.As(k.Err, &ke) {
			f.Fault = ke.Fault
		}
		out = append(out, f)
	}
	return out
}

// Suite runs the selected kernels on a bounded worker pool. Each kernel
// executes Warmup discarded runs followed by Trials measured runs (trials
// are sequential within a kernel; distinct kernels run concurrently up to
// Parallel). Per-kernel profiles are sharded so concurrent trials never
// share a Profile. Suite is the zero-value Engine; callers that need to
// inject kernels or profiles construct an Engine directly.
//
// The returned error is non-nil only for suite-level failures: an unknown
// kernel name, an invalid option, or ctx cancellation. Per-kernel failures
// are reported in KernelResult.Err; unless ContinueOnError is set, the
// first one also cancels the kernels still running or queued (their Err is
// context.Canceled).
func Suite(ctx context.Context, opts SuiteOptions) (SuiteResult, error) {
	var e Engine
	return e.Run(ctx, opts)
}

// suiteKernels resolves the kernel selection in Table I order.
func suiteKernels(names []string) ([]Info, error) {
	if len(names) == 0 {
		return Kernels(), nil
	}
	infos := make([]Info, 0, len(names))
	for _, name := range names {
		info, ok := Lookup(name)
		if !ok {
			return nil, fmt.Errorf("rtrbench: unknown kernel %q", name)
		}
		infos = append(infos, info)
	}
	return infos, nil
}

// aggregateROI reduces per-trial ROI durations to mean/min/max/stddev
// (population standard deviation).
func aggregateROI(rois []time.Duration) (mean, min, max, stddev time.Duration) {
	if len(rois) == 0 {
		return 0, 0, 0, 0
	}
	min, max = rois[0], rois[0]
	var sum float64
	for _, d := range rois {
		sum += float64(d)
		if d < min {
			min = d
		}
		if d > max {
			max = d
		}
	}
	m := sum / float64(len(rois))
	var sq float64
	for _, d := range rois {
		diff := float64(d) - m
		sq += diff * diff
	}
	mean = time.Duration(m)
	stddev = time.Duration(math.Sqrt(sq / float64(len(rois))))
	return mean, min, max, stddev
}
