package rtrbench

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"

	"repro/internal/profile"
)

// SuiteOptions configures a full benchmark-suite run. The embedded Options
// apply to every kernel (size, seed, deadline, step tracking); variants are
// rejected because no single variant string is meaningful across kernels.
type SuiteOptions struct {
	Options

	// Kernels selects a subset by name; empty means all 16 in Table I
	// order.
	Kernels []string
	// Parallel bounds the number of kernels executing concurrently;
	// <= 0 means runtime.NumCPU().
	Parallel int
	// Trials is the number of measured runs per kernel; <= 0 means 1.
	// Trial t runs with seed base+t, so results are deterministic and
	// independent of Parallel.
	Trials int
	// Warmup runs each kernel this many times before the measured trials,
	// discarding the results (cache and allocator warm-up).
	Warmup int
	// Timeout bounds each individual run (warmup or trial); 0 means no
	// limit. A timed-out run fails with context.DeadlineExceeded.
	Timeout time.Duration
	// ContinueOnError keeps the sweep going when a kernel fails; the
	// default aborts the remaining kernels on the first error.
	ContinueOnError bool
	// Retries re-runs a trial up to this many times after a transient
	// failure (a per-run Timeout expiry while the suite itself is still
	// live). Non-transient failures — kernel errors, panics, suite
	// cancellation — are never retried.
	Retries int
	// RetryBackoff is the pause before each retry, growing linearly with
	// the attempt (backoff, 2*backoff, ...); 0 retries immediately.
	RetryBackoff time.Duration
}

// TrialStats aggregates the measured trials of one kernel.
type TrialStats struct {
	// Trials is the number of completed measured runs.
	Trials int
	// ROI statistics across trials.
	ROIMean, ROIMin, ROIMax, ROIStddev time.Duration
	// Counters are operation counts summed over all trials.
	Counters map[string]int64
	// Steps is the step-latency distribution merged across trials (nil
	// when step tracking was off).
	Steps *StepStats
	// Degraded counts trials that returned a best-effort partial result
	// (see Options.BestEffort); degraded trials count as completed.
	Degraded int
	// Faults lists every injected fault that fired across the measured
	// trials, stamped with its trial index (see Options.Fault).
	Faults []FaultEvent
}

// KernelResult is one kernel's outcome within a suite run.
type KernelResult struct {
	Info Info
	// Result is the first trial's report (deterministic for a fixed seed,
	// regardless of Parallel). Zero-valued when Err is non-nil and no
	// trial completed.
	Result Result
	// Trials aggregates all measured trials; nil when Err prevented any
	// trial from completing.
	Trials *TrialStats
	// Err is the first error this kernel hit (configuration, run failure,
	// timeout, or cancellation). A panicking kernel surfaces here as a
	// *KernelError with the trial index, fault attribution, and stack.
	Err error
	// FailedTrial is the measured-trial index Err happened in, or -1 when
	// Err is nil or the failure preceded the trials (configuration, warmup).
	FailedTrial int
	// Retried counts trial re-runs performed after transient timeouts (see
	// SuiteOptions.Retries).
	Retried int
}

// SuiteResult is the outcome of a Suite run, in Table I order.
type SuiteResult struct {
	Kernels []KernelResult
	// Elapsed is the wall-clock time of the whole sweep.
	Elapsed time.Duration
}

// FirstError returns the first per-kernel error in Table I order, or nil.
func (r SuiteResult) FirstError() error {
	for _, k := range r.Kernels {
		if k.Err != nil {
			return fmt.Errorf("%s: %w", k.Info.Name, k.Err)
		}
	}
	return nil
}

// KernelFailure is one entry of the suite's failure report.
type KernelFailure struct {
	// Kernel is the failing kernel's name.
	Kernel string
	// Trial is the failing trial index, or -1 when the failure happened
	// before any trial (configuration, warmup).
	Trial int
	// Fault attributes the failure to chaos injection when it was an
	// injected panic; empty otherwise.
	Fault string
	// Err is the underlying error.
	Err error
}

// Failures returns the per-kernel failures in Table I order — the
// ContinueOnError companion: everything that went wrong in one report,
// with trial indices and fault attribution where the error carries them.
func (r SuiteResult) Failures() []KernelFailure {
	var out []KernelFailure
	for _, k := range r.Kernels {
		if k.Err == nil {
			continue
		}
		f := KernelFailure{Kernel: k.Info.Name, Trial: k.FailedTrial, Err: k.Err}
		var ke *KernelError
		if errors.As(k.Err, &ke) {
			f.Fault = ke.Fault
		}
		out = append(out, f)
	}
	return out
}

// Suite runs the selected kernels on a bounded worker pool. Each kernel
// executes Warmup discarded runs followed by Trials measured runs (trials
// are sequential within a kernel; distinct kernels run concurrently up to
// Parallel). Per-kernel profiles are sharded so concurrent trials never
// share a Profile.
//
// The returned error is non-nil only for suite-level failures: an unknown
// kernel name, an invalid option, or ctx cancellation. Per-kernel failures
// are reported in KernelResult.Err; unless ContinueOnError is set, the
// first one also cancels the kernels still running or queued (their Err is
// context.Canceled).
func Suite(ctx context.Context, opts SuiteOptions) (SuiteResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if opts.Variant != "" {
		return SuiteResult{}, fmt.Errorf("rtrbench: SuiteOptions.Variant %q not supported (variants are per-kernel)", opts.Variant)
	}
	infos, err := suiteKernels(opts.Kernels)
	if err != nil {
		return SuiteResult{}, err
	}
	return runSuite(ctx, infos, opts)
}

// runSuite is the engine behind Suite, taking an already-resolved kernel
// list so tests can drive it with synthetic kernels that never enter the
// registry.
func runSuite(ctx context.Context, infos []Info, opts SuiteOptions) (SuiteResult, error) {
	parallel := opts.Parallel
	if parallel <= 0 {
		parallel = runtime.NumCPU()
	}
	trials := opts.Trials
	if trials <= 0 {
		trials = 1
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	res := SuiteResult{Kernels: make([]KernelResult, len(infos))}
	start := time.Now()
	sem := make(chan struct{}, parallel)
	var wg sync.WaitGroup
	for i, info := range infos {
		wg.Add(1)
		go func(i int, info Info) {
			defer wg.Done()
			// A queued kernel must not wait for a worker slot after the
			// suite is cancelled (first failure, ctx deadline, Ctrl-C):
			// pre-fix, every queued worker eventually acquired the
			// semaphore and spun up a doomed run. Report the cancellation
			// immediately instead.
			select {
			case sem <- struct{}{}:
			case <-runCtx.Done():
				res.Kernels[i] = KernelResult{Info: info, FailedTrial: -1, Err: runCtx.Err()}
				return
			}
			defer func() { <-sem }()
			// The slot may have been won in a race with cancellation:
			// re-check so a cancelled suite never starts another kernel.
			if err := runCtx.Err(); err != nil {
				res.Kernels[i] = KernelResult{Info: info, FailedTrial: -1, Err: err}
				return
			}
			// Last line of defense: runWith already recovers kernel
			// panics, but a panic anywhere else in the trial machinery
			// must not kill the whole sweep.
			defer func() {
				if rec := recover(); rec != nil {
					res.Kernels[i] = KernelResult{Info: info, FailedTrial: -1, Err: newKernelError(info.Name, rec)}
					if !opts.ContinueOnError {
						cancel()
					}
				}
			}()
			kr := runKernelTrials(runCtx, info, opts)
			if kr.Err != nil && !opts.ContinueOnError {
				cancel()
			}
			res.Kernels[i] = kr
		}(i, info)
	}
	wg.Wait()
	res.Elapsed = time.Since(start)
	if err := ctx.Err(); err != nil {
		return res, err
	}
	return res, nil
}

// suiteKernels resolves the kernel selection in Table I order.
func suiteKernels(names []string) ([]Info, error) {
	if len(names) == 0 {
		return Kernels(), nil
	}
	infos := make([]Info, 0, len(names))
	for _, name := range names {
		info, ok := Lookup(name)
		if !ok {
			return nil, fmt.Errorf("rtrbench: unknown kernel %q", name)
		}
		infos = append(infos, info)
	}
	return infos, nil
}

// runKernelTrials executes one kernel's warmup runs and measured trials on
// shards of a common profile, then folds the shards into the aggregate
// statistics.
func runKernelTrials(ctx context.Context, info Info, opts SuiteOptions) KernelResult {
	kr := KernelResult{Info: info, FailedTrial: -1}
	base := opts.Options
	seed := base.seed()
	trials := opts.Trials
	if trials <= 0 {
		trials = 1
	}

	for w := 0; w < opts.Warmup; w++ {
		o := base
		o.Seed = seed
		// Warmup runs must match steady-state behaviour: no injected
		// faults, and no profile either (profile.Disabled also keeps the
		// injector's step hook inert).
		o.Fault = nil
		if _, err := runOnce(ctx, info, o, profile.Disabled(), opts.Timeout); err != nil {
			kr.Err = err
			return kr
		}
	}

	parent := newProfile(base)
	sharded := profile.NewSharded(parent)
	rois := make([]time.Duration, 0, trials)
	var degraded int
	var faults []FaultEvent
	for t := 0; t < trials; t++ {
		o := base
		// Trial t always runs with seed base+t: the fault schedule and
		// kernel workload are functions of the trial index alone, so the
		// sweep is reproducible at any Parallel.
		o.Seed = seed + int64(t)
		r, err := runTrial(ctx, info, o, sharded, opts, &kr.Retried)
		for i := range r.Faults {
			r.Faults[i].Trial = t
		}
		faults = append(faults, r.Faults...)
		if err != nil {
			var ke *KernelError
			if errors.As(err, &ke) {
				ke.Trial = t
			}
			kr.Err = err
			kr.FailedTrial = t
			break
		}
		if t == 0 {
			kr.Result = r
		}
		if r.Degraded {
			degraded++
		}
		rois = append(rois, r.ROI)
	}
	if len(rois) == 0 {
		if len(faults) > 0 {
			kr.Trials = &TrialStats{Faults: faults}
		}
		return kr
	}

	merged := sharded.Snapshot()
	stats := &TrialStats{Trials: len(rois), Counters: merged.Counters, Degraded: degraded, Faults: faults}
	stats.ROIMean, stats.ROIMin, stats.ROIMax, stats.ROIStddev = aggregateROI(rois)
	if merged.Steps.Count > 0 || merged.Steps.Deadline > 0 {
		stats.Steps = &StepStats{
			Count:    merged.Steps.Count,
			Min:      merged.Steps.Min,
			Mean:     merged.Steps.Mean,
			P50:      merged.Steps.P50,
			P95:      merged.Steps.P95,
			P99:      merged.Steps.P99,
			Max:      merged.Steps.Max,
			Deadline: merged.Steps.Deadline,
			Misses:   merged.Steps.Misses,
		}
	}
	kr.Trials = stats
	return kr
}

// runTrial executes one measured trial, retrying up to opts.Retries times
// after a transient failure. Transient means the per-run Timeout expired
// while the suite context is still live; kernel errors, injected panics,
// and suite cancellation fail immediately. Each attempt runs on a fresh
// profile shard so an abandoned attempt leaves no partial samples behind.
func runTrial(ctx context.Context, info Info, o Options, sharded *profile.Sharded, opts SuiteOptions, retried *int) (Result, error) {
	for attempt := 0; ; attempt++ {
		shard := sharded.Shard()
		r, err := runOnce(ctx, info, o, shard, opts.Timeout)
		if err == nil {
			return r, nil
		}
		transient := errors.Is(err, context.DeadlineExceeded) && ctx.Err() == nil
		if !transient || attempt >= opts.Retries {
			// The failing attempt's partial samples must not survive into
			// the kernel's aggregate statistics: Snapshot merges every
			// shard, and pre-fix a mid-run failure left its counters and
			// step latencies behind to pollute the completed trials.
			shard.Reset()
			return r, err
		}
		shard.Reset()
		*retried++
		if opts.RetryBackoff > 0 {
			backoff := opts.RetryBackoff * time.Duration(attempt+1)
			select {
			case <-time.After(backoff):
			case <-ctx.Done():
				return r, ctx.Err()
			}
		}
	}
}

// runOnce executes one kernel run, bounded by timeout when non-zero.
func runOnce(ctx context.Context, info Info, o Options, p *profile.Profile, timeout time.Duration) (Result, error) {
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	return info.runWith(ctx, o, p)
}

// aggregateROI reduces per-trial ROI durations to mean/min/max/stddev
// (population standard deviation).
func aggregateROI(rois []time.Duration) (mean, min, max, stddev time.Duration) {
	if len(rois) == 0 {
		return 0, 0, 0, 0
	}
	min, max = rois[0], rois[0]
	var sum float64
	for _, d := range rois {
		sum += float64(d)
		if d < min {
			min = d
		}
		if d > max {
			max = d
		}
	}
	m := sum / float64(len(rois))
	var sq float64
	for _, d := range rois {
		diff := float64(d) - m
		sq += diff * diff
	}
	mean = time.Duration(m)
	stddev = time.Duration(math.Sqrt(sq / float64(len(rois))))
	return mean, min, max, stddev
}
