package rtrbench

import (
	"context"

	"repro/internal/core/dmp"
	"repro/internal/golden"
	"repro/internal/profile"
)

func init() {
	registerSpec(Info{
		Name: "dmp", Index: 13, Stage: Control,
		Description:      "Dynamic movement primitives trajectory generation",
		PaperBottlenecks: []string{"Fine-grained serialization"},
		ExpectDominant:   []string{"rollout", "train"},
	}, spec[dmp.Config]{
		configure: func(o Options) (dmp.Config, error) {
			cfg := dmp.DefaultConfig()
			if o.Size == SizeSmall {
				cfg.Steps = 600
			}
			return cfg, noVariant("dmp", o)
		},
		// Tracking residuals plus checksums of the generated trajectory and
		// velocity profile: a drift anywhere along the rollout flips them.
		digest: func(r Result) []golden.Field {
			return append(
				metricFields(r, "track_rmse_m", "endpoint_error_m", "serial_steps"),
				seriesFields(r, "velocity", "traj_x", "traj_y")...)
		},
		run: func(ctx context.Context, cfg dmp.Config, p *profile.Profile) (Result, error) {
			kr, err := dmp.Run(ctx, cfg, p)
			res := newResult("dmp", Control, p.Snapshot())
			if err == nil {
				res.Metrics["track_rmse_m"] = kr.TrackRMSE
				res.Metrics["endpoint_error_m"] = kr.EndpointError
				res.Metrics["serial_steps"] = float64(kr.SerialSteps)
				res.Series["velocity"] = kr.Velocity
				xs := make([]float64, len(kr.Generated.Points))
				ys := make([]float64, len(kr.Generated.Points))
				for i, pt := range kr.Generated.Points {
					xs[i], ys[i] = pt.P.X, pt.P.Y
				}
				res.Series["traj_x"] = xs
				res.Series["traj_y"] = ys
			}
			return res, err
		},
	})
}
