package rtrbench

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/profile"
	"repro/internal/stream"
)

// StreamPolicy aliases the scheduler's overload policy so CLI and daemon
// surfaces can stay off internal/stream.
type StreamPolicy = stream.Policy

// The overload policies, re-exported for callers outside internal/.
const (
	StreamPolicySkipNext      = stream.PolicySkipNext
	StreamPolicyQueue         = stream.PolicyQueue
	StreamPolicyAnytimeCutoff = stream.PolicyAnytimeCutoff
)

// ParseStreamPolicy maps a user-facing policy string onto a StreamPolicy;
// the empty string selects skip-next.
func ParseStreamPolicy(s string) (StreamPolicy, error) {
	return stream.ParsePolicy(s)
}

// StreamOptions configure a streaming run: a registered kernel driven as a
// long-lived periodic task (see package stream for the scheduler model).
// The embedded Options configure the kernel itself (size, seed, variant,
// workers, best-effort); the stream fields configure the periodic schedule.
// Options.Deadline/StepLatency and Options.Fault do not compose with
// streaming — the scheduler owns per-tick timing, and chaos injection would
// displace the step hook the driver runs on — so Normalize clears the
// former and rejects the latter.
type StreamOptions struct {
	Options

	// Kernel names the registered kernel to stream (required).
	Kernel string
	// Period is the tick release interval (required, > 0).
	Period time.Duration
	// Deadline is the relative per-tick deadline; 0 means the period.
	Deadline time.Duration
	// Duration bounds the stream in wall time. A stream must be bounded:
	// Duration or MaxTicks must be set.
	Duration time.Duration
	// MaxTicks bounds the stream in executed ticks (0 = unbounded here;
	// then Duration must be set).
	MaxTicks int64
	// Policy is the overload policy; empty means stream.PolicySkipNext.
	// stream.PolicyAnytimeCutoff implies Options.BestEffort: a cut-off
	// kernel run returns its best partial result.
	Policy stream.Policy
	// Live, when non-nil, receives running rtrbench_stream_* metrics.
	Live *obs.Registry
}

// Normalize validates o and fills defaults. Like SuiteOptions.Normalize it
// is the single admission point shared by the CLI and the daemon.
func (o StreamOptions) Normalize() (StreamOptions, error) {
	if o.Kernel == "" {
		return o, fmt.Errorf("stream: Kernel is required")
	}
	if o.Period <= 0 {
		return o, fmt.Errorf("stream: Period must be > 0 (got %v)", o.Period)
	}
	if o.Deadline < 0 {
		return o, fmt.Errorf("stream: Deadline must be >= 0 (got %v)", o.Deadline)
	}
	if o.Deadline == 0 {
		o.Deadline = o.Period
	}
	if o.Duration < 0 || o.MaxTicks < 0 {
		return o, fmt.Errorf("stream: Duration and MaxTicks must be >= 0")
	}
	if o.Duration == 0 && o.MaxTicks == 0 {
		return o, fmt.Errorf("stream: unbounded stream (set Duration or MaxTicks)")
	}
	if o.Workers < 0 {
		return o, fmt.Errorf("stream: Workers must be >= 0 (got %d)", o.Workers)
	}
	if o.Fault != nil {
		return o, fmt.Errorf("stream: chaos injection is not supported in stream mode")
	}
	p, err := stream.ParsePolicy(string(o.Policy))
	if err != nil {
		return o, err
	}
	o.Policy = p
	if p == stream.PolicyAnytimeCutoff {
		o.BestEffort = true
	}
	// The scheduler owns all per-tick timing; the kernel-side step
	// instrumentation would only double-measure.
	o.Options.Deadline = 0
	o.Options.StepLatency = false
	o.Seed = o.Options.seed()
	return o, nil
}

// StreamResult is the outcome of one streaming run.
type StreamResult struct {
	Kernel string
	// Stream is the scheduler's accounting: ticks, misses, sheds, cutoffs,
	// latency and jitter distributions.
	Stream stream.Result
	// Runs counts kernel workload executions the stream drove: when a
	// workload completes, the driver restarts the kernel with seed
	// base+run, so a long stream cycles through fresh workloads.
	Runs int64
	// Degraded counts runs that ended with a best-effort partial result
	// (expected under anytime-cutoff).
	Degraded int64
}

// Streamer runs streaming jobs with injectable dependencies, mirroring
// Engine for batch sweeps. The zero value streams registered kernels on the
// wall clock.
type Streamer struct {
	// Resolve locates a kernel by name; nil uses the package registry.
	Resolve func(name string) (Info, bool)
	// Clock injects the scheduler time source; nil uses the wall clock.
	// A virtual clock composes with synthetic kernels for deterministic
	// driver tests; the anytime-cutoff watchdog remains wall-clock and is
	// effectively inert under a virtual clock.
	Clock stream.Clock
}

// Stream runs the named kernel as a periodic task with default wiring.
func Stream(ctx context.Context, opts StreamOptions) (StreamResult, error) {
	var s Streamer
	return s.Run(ctx, opts)
}

// Run executes one streaming job: it starts the kernel driver goroutine and
// hands its per-tick step to the periodic scheduler. On a clean bound
// (Duration/MaxTicks reached) the error is nil; on cancellation the partial
// result is returned with ctx.Err(); a kernel failure aborts the stream.
func (s *Streamer) Run(ctx context.Context, opts StreamOptions) (StreamResult, error) {
	opts, err := opts.Normalize()
	if err != nil {
		return StreamResult{}, err
	}
	lookup := s.Resolve
	if lookup == nil {
		lookup = Lookup
	}
	info, ok := lookup(opts.Kernel)
	if !ok {
		return StreamResult{}, fmt.Errorf("rtrbench: unknown kernel %q", opts.Kernel)
	}
	if info.validate != nil {
		if err := info.validate(opts.Options); err != nil {
			return StreamResult{}, err
		}
	}
	clk := s.Clock
	if clk == nil {
		clk = stream.WallClock{}
	}

	d := newStreamDriver(info, opts, clk)
	driverCtx, stopDriver := context.WithCancel(ctx)
	defer stopDriver()
	go d.run(driverCtx)

	res, err := stream.Run(ctx, stream.Options{
		Period:   opts.Period,
		Deadline: opts.Deadline,
		Duration: opts.Duration,
		MaxTicks: opts.MaxTicks,
		Policy:   opts.Policy,
		Clock:    clk,
		Live:     opts.Live,
	}, d.step)

	stopDriver()
	<-d.done
	out := StreamResult{Kernel: info.Name, Stream: res, Runs: d.runs, Degraded: d.degraded}
	return out, err
}

// streamDriver adapts a registered kernel onto the scheduler's Step
// contract. The kernel runs in its own goroutine and is gated one step at a
// time through the profile's StepDone hook:
//
//	scheduler ──release──▶ kernel executes one step ──evStep──▶ scheduler
//
// release is a cap-1 channel the scheduler sends on once per tick; the
// kernel consumes it either at run start (first step of a fresh workload)
// or inside the step hook (subsequent steps), executes exactly one step,
// and reports back on events. When a workload completes, the driver
// restarts the kernel with seed base+run; a release consumed by a run that
// ended before paying it off with a step (a cancelled run, or a hook that
// observed its workload's final step) is carried into the next run so the
// scheduler's release/step ledger always balances.
type streamDriver struct {
	info Info
	opts StreamOptions
	clk  stream.Clock

	release chan struct{}
	events  chan driverEvent
	done    chan struct{}

	mu        sync.Mutex
	cancelRun context.CancelFunc
	runs      int64
	degraded  int64
}

type driverEvent struct {
	step      bool // one kernel step completed (pays off one release)
	runEnd    bool // a kernel workload run returned
	cancelled bool // ... because its run context was cancelled
	err       error
}

func newStreamDriver(info Info, opts StreamOptions, clk stream.Clock) *streamDriver {
	return &streamDriver{
		info:    info,
		opts:    opts,
		clk:     clk,
		release: make(chan struct{}, 1),
		events:  make(chan driverEvent),
		done:    make(chan struct{}),
	}
}

// run is the kernel goroutine: an endless loop of kernel workloads, each
// gated step-by-step by the scheduler. ctx spans the whole stream; each
// workload additionally gets its own cancellable run context so the
// anytime-cutoff watchdog can abort one run without ending the stream.
func (d *streamDriver) run(ctx context.Context) {
	defer close(d.done)
	base := d.opts.Options.seed()
	carry := false
	for runIdx := int64(0); ; runIdx++ {
		if !carry {
			select {
			case <-d.release:
			case <-ctx.Done():
				return
			}
		}
		carry = false

		runCtx, cancel := context.WithCancel(ctx)
		d.setCancel(cancel)
		// pending: a release has been consumed whose step has not completed
		// yet. steps: evStep events sent by this run.
		pending := true
		steps := 0
		prof := profile.New()
		prof.SetStepHook(func() {
			select {
			case d.events <- driverEvent{step: true}:
				steps++
			case <-runCtx.Done():
				return
			}
			pending = false
			select {
			case <-d.release:
				pending = true
			case <-runCtx.Done():
			}
		})

		o := d.opts.Options
		o.Seed = base + runIdx
		res, err := d.info.runWith(runCtx, o, prof)
		// Read the cancellation state BEFORE cancel(): afterwards
		// runCtx.Err() is always non-nil and a genuine kernel failure would
		// be misclassified as a cancelled run (and silently swallowed).
		cancelled := runCtx.Err() != nil
		cancel()
		d.setCancel(nil)

		d.mu.Lock()
		d.runs++
		if res.Degraded {
			d.degraded++
		}
		d.mu.Unlock()

		if ctx.Err() != nil {
			return
		}
		ev := driverEvent{runEnd: true, cancelled: cancelled}
		switch {
		case err != nil && !cancelled:
			// A genuine kernel failure (config error, panic surfaced as
			// *KernelError): fatal for the stream.
			ev.err = err
		case !cancelled && steps == 0 && pending:
			// A workload that completed without a single StepDone would
			// spin the restart loop at full speed; no registered kernel
			// does this, so treat it as a contract violation.
			ev.err = fmt.Errorf("kernel %s: workload completed without any StepDone", d.info.Name)
		}
		select {
		case d.events <- ev:
		case <-ctx.Done():
			return
		}
		if ev.err != nil {
			return
		}
		carry = pending
	}
}

func (d *streamDriver) setCancel(fn context.CancelFunc) {
	d.mu.Lock()
	d.cancelRun = fn
	d.mu.Unlock()
}

// cutoff aborts the kernel run currently executing (anytime-cutoff
// watchdog). Between runs it is a no-op.
func (d *streamDriver) cutoff() {
	d.mu.Lock()
	fn := d.cancelRun
	d.mu.Unlock()
	if fn != nil {
		fn()
	}
}

// step is the scheduler-facing Step: release one kernel step, then wait for
// it to complete. Run-end events that arrive while waiting are workload
// boundaries — the replacement run's first step still pays off this tick —
// unless the tick's own cutoff watchdog fired, in which case the aborted
// run IS the cut-off step.
//
// The release send and the event wait share one select rather than running
// sequentially: when the cutoff watchdog cancels a run mid-step, that
// tick's release can be left unconsumed in the buffer (the run died before
// its hook could take it) while the tick is paid by the cancellation. The
// next tick then finds the buffer full — its payment arrives as the
// carried-over replacement run's first step event, and blocking on the
// send first would deadlock against the driver's own event send. A tick
// paid without its send having happened is fine: it settles the earlier
// tick that sent without being paid by a step.
func (d *streamDriver) step(ctx context.Context, t stream.Tick) error {
	var cut atomic.Bool
	if t.Cutoff {
		wait := t.Deadline.Sub(d.clk.Now())
		timer := time.AfterFunc(wait, func() {
			cut.Store(true)
			d.cutoff()
		})
		defer timer.Stop()
	}
	sent := false
	for {
		if !sent {
			select {
			case d.release <- struct{}{}:
				sent = true
			case ev := <-d.events:
				if done, err := d.settleEvent(ev, &cut); done {
					return err
				}
			case <-ctx.Done():
				return ctx.Err()
			}
			continue
		}
		select {
		case ev := <-d.events:
			if done, err := d.settleEvent(ev, &cut); done {
				return err
			}
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// settleEvent classifies one driver event against the current tick: done
// reports whether the event completes the tick (with the tick's outcome in
// err — nil, ErrCutoff, or a fatal kernel error). A run-end without the
// tick's cutoff is a workload boundary: not done, keep waiting for the
// replacement run's first step.
func (d *streamDriver) settleEvent(ev driverEvent, cut *atomic.Bool) (done bool, err error) {
	switch {
	case ev.err != nil:
		return true, ev.err
	case ev.step:
		if cut.Load() {
			return true, stream.ErrCutoff
		}
		return true, nil
	case ev.runEnd && ev.cancelled && cut.Load():
		return true, stream.ErrCutoff
	}
	return false, nil
}
