package rtrbench

import (
	"context"
	"fmt"
	"strconv"

	"repro/internal/core/pfl"
	"repro/internal/fault"
	"repro/internal/profile"
)

func init() {
	registerSpec(Info{
		Name: "pfl", Index: 1, Stage: Perception,
		Description:      "Particle filter localization with odometry and a laser rangefinder",
		PaperBottlenecks: []string{"Ray-casting"},
		ExpectDominant:   []string{"raycast"},
	}, spec[pfl.Config]{
		configure: func(o Options) (pfl.Config, error) {
			cfg := pfl.DefaultConfig()
			cfg.Seed = o.seed()
			cfg.Workers = o.Workers
			if o.Size == SizeSmall {
				cfg.Particles = 300
				cfg.Steps = 25
				cfg.Map = pfl.DefaultMap(cfg.Seed)
			}
			// The variant is the starting-region index (the paper evaluates
			// five building parts).
			if o.Variant != "" {
				reg, err := strconv.Atoi(o.Variant)
				if err != nil {
					return cfg, fmt.Errorf("pfl: unknown variant %q", o.Variant)
				}
				cfg.Region = reg
			}
			return cfg, nil
		},
		inject: func(cfg *pfl.Config, in *fault.Injector) { cfg.Laser.Fault = in },
		// Final-state pose checksum plus the raycast/coverage counts the
		// paper's characterization is built on.
		digest: digestOf("position_error_m", "heading_error_rad", "raycasts",
			"cells_visited", "ess"),
		run: func(ctx context.Context, cfg pfl.Config, p *profile.Profile) (Result, error) {
			kr, err := pfl.Run(ctx, cfg, p)
			res := newResult("pfl", Perception, p.Snapshot())
			res.Metrics["position_error_m"] = kr.PositionError
			res.Metrics["heading_error_rad"] = kr.HeadingError
			res.Metrics["raycasts"] = float64(kr.Raycasts)
			res.Metrics["cells_visited"] = float64(kr.CellsVisited)
			res.Metrics["ess"] = kr.EffectiveSampleSize
			return res, err
		},
	})
}
