package rtrbench

import (
	"context"
	"fmt"

	"repro/internal/arm"
	"repro/internal/core/rrt"
	"repro/internal/core/sym"
	"repro/internal/fault"
	"repro/internal/profile"
)

// spec is the uniform adapter shape every kernel file provides: configure
// maps public Options onto the kernel's own config type (validating the
// variant), run executes the kernel against a caller-owned profile and
// translates its native result into the public Result. The two halves are
// separated so the Suite engine can reuse one configuration across warmup
// runs and trials while handing each execution its own profile shard.
//
// inject, when set, threads a chaos injector into the kernel's sensor layer
// (the kernels whose configs embed a sensor: pfl's laser, ekfslam's
// range-bearing sensor). All kernels additionally receive step-level faults
// (stalls, panics) through the profile's step hook, so inject stays nil for
// the rest.
type spec[C any] struct {
	configure func(Options) (C, error)
	run       func(context.Context, C, *profile.Profile) (Result, error)
	inject    func(*C, *fault.Injector)
	// digest names the correctness-bearing outputs of a finished run for
	// golden verification (see digest.go for the ownership rules). Every
	// kernel must provide one; registerSpec panics otherwise.
	digest digestFn
}

// validated is the duck-typed config validation contract: every kernel
// config with a Validate method gets it called on the configure path, so
// malformed options fail fast with field-level errors before the kernel
// runs.
type validated interface{ Validate() error }

// registerSpec wires a spec into the registry under info's identity. The
// wrapper it installs is the harness's robustness boundary: it validates
// the configured kernel config, arms chaos injection when requested, and
// converts any panic that escapes the kernel into a structured
// *KernelError instead of crashing the process.
func registerSpec[C any](info Info, s spec[C]) {
	name, stage := info.Name, info.Stage
	if s.digest == nil {
		panic(fmt.Sprintf("rtrbench: kernel %q registered without a digest hook", name))
	}
	info.digest = s.digest
	info.runWith = func(ctx context.Context, o Options, p *profile.Profile) (res Result, err error) {
		cfg, err := s.configure(o)
		if err != nil {
			return Result{Kernel: name, Stage: stage}, err
		}
		if v, ok := any(cfg).(validated); ok {
			if err := v.Validate(); err != nil {
				return Result{Kernel: name, Stage: stage}, err
			}
		}
		var inj *fault.Injector
		if o.Fault != nil {
			inj = fault.New(o.Fault.config(), name, o.seed())
			if inj != nil {
				if s.inject != nil {
					s.inject(&cfg, inj)
				}
				// Stalls and injected panics reach every kernel through the
				// uniform per-step hook; warmup runs use a disabled profile,
				// so SetStepHook no-ops and warmup stays injection-free.
				p.SetStepHook(inj.OnStep)
			}
		}
		defer func() {
			if rec := recover(); rec != nil {
				res = Result{Kernel: name, Stage: stage, Faults: faultEvents(inj)}
				err = newKernelError(name, rec)
			}
		}()
		res, err = s.run(ctx, cfg, p)
		res.Faults = faultEvents(inj)
		return res, err
	}
	info.validate = func(o Options) error {
		cfg, err := s.configure(o)
		if err != nil {
			return err
		}
		if v, ok := any(cfg).(validated); ok {
			return v.Validate()
		}
		return nil
	}
	register(info)
}

// noVariant rejects any non-empty variant for kernels that define none.
func noVariant(kernel string, o Options) error {
	if o.Variant != "" {
		return fmt.Errorf("%s: unknown variant %q", kernel, o.Variant)
	}
	return nil
}

// newProfile builds a kernel profile configured from the run options
// (deadline and step-latency tracking).
func newProfile(o Options) *profile.Profile {
	p := profile.New()
	if o.Deadline > 0 {
		p.SetDeadline(o.Deadline)
	} else if o.StepLatency {
		p.EnableSteps()
	}
	return p
}

// newResult converts an internal profile report into the public Result.
func newResult(kernel string, stage Stage, rep profile.Report) Result {
	res := Result{
		Kernel:       kernel,
		Stage:        stage,
		ROI:          rep.ROI,
		Counters:     rep.Counters,
		Metrics:      map[string]float64{},
		Series:       map[string][]float64{},
		Inconsistent: rep.Inconsistent,
	}
	if rep.Steps.Count > 0 || rep.Steps.Deadline > 0 {
		res.Steps = &StepStats{
			Count:    rep.Steps.Count,
			Min:      rep.Steps.Min,
			Mean:     rep.Steps.Mean,
			P50:      rep.Steps.P50,
			P95:      rep.Steps.P95,
			P99:      rep.Steps.P99,
			Max:      rep.Steps.Max,
			Deadline: rep.Steps.Deadline,
			Misses:   rep.Steps.Misses,
		}
	}
	for _, ph := range rep.Phases {
		res.Phases = append(res.Phases, Phase{
			Name:     ph.Name,
			Duration: ph.Total,
			Calls:    ph.Calls,
			Fraction: rep.Fraction(ph.Name),
		})
	}
	return res
}

// armWorkspace maps the "mapf"/"mapc" variant strings used by the
// sampling-based planners to the paper's Fig. 9 workspaces. The default is
// Map-C (cluttered); unknown variants are an error.
func armWorkspace(kernel, variant string) (*arm.Workspace, error) {
	switch variant {
	case "mapf", "free", "f":
		return arm.MapF(), nil
	case "", "mapc", "cluttered", "c":
		return arm.MapC(), nil
	default:
		return nil, fmt.Errorf("%s: unknown variant %q", kernel, variant)
	}
}

func boolMetric(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// rrtConfig and rrtResult are shared by the rrt/rrtstar/rrtpp adapters.
func rrtConfig(kernel string, o Options, variant string) (rrt.Config, error) {
	cfg := rrt.DefaultConfig()
	cfg.Seed = o.seed()
	cfg.BestEffort = o.BestEffort
	cfg.Workers = o.Workers
	if o.Size == SizeSmall {
		cfg.MaxSamples = 10000
	}
	ws, err := armWorkspace(kernel, variant)
	if err != nil {
		return cfg, err
	}
	cfg.Workspace = ws
	return cfg, nil
}

func rrtResult(name string, p *profile.Profile, kr rrt.Result) Result {
	res := newResult(name, Planning, p.Snapshot())
	res.Metrics["found"] = boolMetric(kr.Found)
	res.Metrics["path_cost_rad"] = kr.PathCost
	res.Metrics["samples"] = float64(kr.Samples)
	res.Metrics["tree_nodes"] = float64(kr.TreeNodes)
	res.Metrics["nn_queries"] = float64(kr.NNQueries)
	res.Metrics["dist_calls"] = float64(kr.DistCalls)
	res.Metrics["seg_checks"] = float64(kr.SegChecks)
	res.Metrics["rewires"] = float64(kr.Rewires)
	res.Metrics["shortcuts"] = float64(kr.Shortcuts)
	res.Degraded = kr.Degraded
	return res
}

// symRun is shared by the sym-blkw/sym-fext adapters.
func symRun(name string) func(context.Context, sym.Config, *profile.Profile) (Result, error) {
	return func(ctx context.Context, cfg sym.Config, p *profile.Profile) (Result, error) {
		kr, err := sym.Run(ctx, cfg, p)
		res := newResult(name, Planning, p.Snapshot())
		res.Metrics["found"] = boolMetric(kr.Found)
		res.Metrics["plan_length"] = float64(kr.PlanLength)
		res.Metrics["expanded"] = float64(kr.Stats.Expanded)
		res.Metrics["generated"] = float64(kr.Stats.Generated)
		res.Metrics["string_bytes"] = float64(kr.Stats.StringBytes)
		res.Metrics["avg_branching"] = kr.Stats.AvgBranching()
		res.Metrics["ground_actions"] = float64(kr.GroundActions)
		return res, err
	}
}
