package rtrbench

import (
	"context"
	"testing"

	"repro/internal/golden"
)

// TestVerifyGoldens re-runs all 16 kernels at both checked-in seeds and
// diffs their digests against testdata/golden — the regression net that
// proves a refactor did not change what any kernel computes.
func TestVerifyGoldens(t *testing.T) {
	rep, err := Verify(context.Background(), VerifyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Missing) > 0 {
		t.Fatalf("missing goldens (run `rtrbench verify -update`): %v", rep.Missing)
	}
	if want := 16 * len(defaultVerifySeeds); rep.Checked != want {
		t.Errorf("Checked = %d, want %d", rep.Checked, want)
	}
	for _, m := range rep.Mismatches {
		t.Errorf("digest drift: %s", m)
	}
}

// TestVerifyMetamorphic checks the golden-free invariance properties on a
// cross-stage kernel subset: digests bit-identical at Parallel=1 vs 8,
// under trial reordering, with profiling on vs profile.Disabled(), and —
// for the kernels honoring Options.Workers (here pfl) — at Workers=1 vs 8.
// (CI runs the full 16-kernel metamorphic sweep via `rtrbench verify`.)
func TestVerifyMetamorphic(t *testing.T) {
	kernels := []string{"pfl", "pp2d", "cem"}
	rep, err := Verify(context.Background(), VerifyOptions{
		Kernels:     kernels,
		Seeds:       []int64{1},
		Metamorphic: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 3 golden diffs + 3 parallel + 3x2 reorder + 3 profile + 1 workers
	// (pfl is the only worker-enabled kernel in the subset).
	if want := 16; rep.Checked != want {
		t.Errorf("Checked = %d, want %d", rep.Checked, want)
	}
	if !rep.OK() {
		for _, m := range rep.Mismatches {
			t.Errorf("metamorphic drift: %s", m)
		}
	}
}

// TestVerifyMutationDetected is the mutation smoke test: a deliberately
// perturbed kernel output must surface as a mismatch naming the kernel,
// the field, both values, and the seed — proving the net actually catches.
func TestVerifyMutationDetected(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()

	// Fresh goldens for one cheap kernel, then perturb one field as a
	// stand-in for a kernel whose math drifted.
	rep, err := Verify(ctx, VerifyOptions{Dir: dir, Kernels: []string{"pfl"}, Seeds: []int64{1}, Update: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Updated) != 1 {
		t.Fatalf("Updated = %v, want one file", rep.Updated)
	}
	d, err := golden.Load(dir, "pfl", 1)
	if err != nil {
		t.Fatal(err)
	}
	var truth string
	perturbed := false
	for i := range d.Fields {
		if d.Fields[i].Name == "raycasts" {
			truth = d.Fields[i].Value
			d.Fields[i].Value = "123456789"
			perturbed = true
		}
	}
	if !perturbed {
		t.Fatal("pfl digest has no raycasts field to perturb")
	}
	if err := golden.Save(dir, d); err != nil {
		t.Fatal(err)
	}

	rep, err = Verify(ctx, VerifyOptions{Dir: dir, Kernels: []string{"pfl"}, Seeds: []int64{1}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("perturbed golden not detected")
	}
	if len(rep.Mismatches) != 1 {
		t.Fatalf("Mismatches = %v, want exactly the perturbed field", rep.Mismatches)
	}
	m := rep.Mismatches[0]
	if m.Kernel != "pfl" || m.Seed != 1 || m.Check != "golden" || m.Field != "raycasts" {
		t.Errorf("mismatch identity = %+v, want pfl/1/golden/raycasts", m)
	}
	if m.Want != "123456789" || m.Got != truth {
		t.Errorf("mismatch values = want %q got %q; expected %q vs %q", m.Want, m.Got, "123456789", truth)
	}
}

// TestVerifyMissingGolden checks an absent golden file is reported as
// Missing, not silently skipped and not a hard error.
func TestVerifyMissingGolden(t *testing.T) {
	rep, err := Verify(context.Background(), VerifyOptions{
		Dir: t.TempDir(), Kernels: []string{"mpc"}, Seeds: []int64{1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() || len(rep.Missing) != 1 {
		t.Fatalf("report = %+v, want exactly one missing golden", rep)
	}
}

// TestVerifyUnknownKernel checks selection validation.
func TestVerifyUnknownKernel(t *testing.T) {
	if _, err := Verify(context.Background(), VerifyOptions{Kernels: []string{"nope"}}); err == nil {
		t.Fatal("want error for unknown kernel")
	}
}

// TestDigestExcludesTimings guards the digest ownership rule at the source:
// no kernel's digest hook may emit a time-derived or map-ordered field.
func TestDigestExcludesTimings(t *testing.T) {
	for _, k := range Kernels() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			r, err := Run(k.Name, Options{Size: SizeSmall, Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			d, err := digestResult(r)
			if err != nil {
				t.Fatal(err)
			}
			if len(d.Fields) == 0 {
				t.Fatal("empty digest: the kernel contributes nothing to verification")
			}
			if _, err := golden.Encode(d); err != nil {
				t.Fatalf("digest not canonical: %v", err)
			}
			for _, f := range d.Fields {
				for _, banned := range []string{"roi", "seconds", "latency", "duration", "p50", "p95", "p99", "deadline"} {
					if containsFold(f.Name, banned) {
						t.Errorf("field %q looks time-derived (%q); digests must be timing-free", f.Name, banned)
					}
				}
			}
		})
	}
}

func containsFold(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		match := true
		for j := 0; j < len(sub); j++ {
			c, d := s[i+j], sub[j]
			if c >= 'A' && c <= 'Z' {
				c += 'a' - 'A'
			}
			if c != d {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	return false
}
