package rtrbench

import (
	"context"

	"repro/internal/core/prm"
	"repro/internal/profile"
)

func init() {
	registerSpec(Info{
		Name: "prm", Index: 7, Stage: Planning,
		Description:      "Probabilistic roadmap planning for a 5-DoF arm",
		PaperBottlenecks: []string{"Graph search", "L2-norm calculations"},
		ExpectDominant:   []string{"connect", "sample", "query"},
	}, spec[prm.Config]{
		configure: func(o Options) (prm.Config, error) {
			cfg := prm.DefaultConfig()
			cfg.Seed = o.seed()
			cfg.Workers = o.Workers
			if o.Size == SizeSmall {
				cfg.Samples = 700
			}
			ws, err := armWorkspace("prm", o.Variant)
			if err != nil {
				return cfg, err
			}
			cfg.Workspace = ws
			return cfg, nil
		},
		// Path cost plus the roadmap/search/L2-norm operation counts.
		digest: digestOf("found", "path_cost_rad", "roadmap_nodes",
			"roadmap_edges", "expanded", "l2_norms", "seg_checks"),
		run: func(ctx context.Context, cfg prm.Config, p *profile.Profile) (Result, error) {
			kr, err := prm.Run(ctx, cfg, p)
			res := newResult("prm", Planning, p.Snapshot())
			res.Metrics["found"] = boolMetric(kr.Found)
			res.Metrics["path_cost_rad"] = kr.PathCost
			res.Metrics["roadmap_nodes"] = float64(kr.RoadmapNodes)
			res.Metrics["roadmap_edges"] = float64(kr.RoadmapEdges)
			res.Metrics["expanded"] = float64(kr.Expanded)
			res.Metrics["l2_norms"] = float64(kr.L2Norms)
			res.Metrics["seg_checks"] = float64(kr.SegChecks)
			return res, err
		},
	})
}
