package rtrbench

import (
	"context"
	"sort"
	"testing"

	"repro/internal/golden"
)

// workerKernelNames returns the parallelized-kernel set in stable order.
func workerKernelNames() []string {
	var names []string
	for name := range workerKernels {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// TestWorkersDigestInvariance is the suite-level form of the per-kernel
// determinism tests: for every kernel honoring Options.Workers, the digest at
// Workers=1 must equal the digest at Workers=8 — the contract the verify
// command's metamorphic "workers" property enforces in CI.
func TestWorkersDigestInvariance(t *testing.T) {
	names := workerKernelNames()
	w1, err := suiteDigests(context.Background(), names, 1, 2, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	w8, err := suiteDigests(context.Background(), names, 1, 2, Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range names {
		if diffs := golden.Diff(w1[name], w8[name]); len(diffs) > 0 {
			t.Errorf("%s: workers=8 diverged from workers=1: %v", name, diffs)
		}
	}
}

// TestWorkersSerialUnaffected pins the other half of the contract: Workers=0
// must select the exact legacy serial algorithms, so its digests match a
// plain zero-valued Options run (the configuration the checked-in goldens
// record).
func TestWorkersSerialUnaffected(t *testing.T) {
	names := workerKernelNames()
	serial, err := suiteDigests(context.Background(), names, 1, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	zero, err := suiteDigests(context.Background(), names, 1, 2, Options{Workers: 0})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range names {
		if diffs := golden.Diff(serial[name], zero[name]); len(diffs) > 0 {
			t.Errorf("%s: Workers=0 diverged from default options: %v", name, diffs)
		}
	}
}

func TestNormalizeRejectsNegativeWorkers(t *testing.T) {
	_, err := SuiteOptions{Options: Options{Workers: -1}}.Normalize()
	if err == nil {
		t.Fatal("negative Workers normalized without error")
	}
}
