package rtrbench

import (
	"testing"
	"time"
)

// TestDeadlineOptionSurfacesSteps checks the public contract of the
// observability extension: a run with Options.Deadline reports the step
// latency distribution and deadline accounting; a run without it reports
// nil Steps.
func TestDeadlineOptionSurfacesSteps(t *testing.T) {
	opts := Options{Size: SizeSmall, Seed: 1, Deadline: time.Nanosecond}
	res, err := Run("mpc", opts)
	if err != nil {
		t.Fatal(err)
	}
	s := res.Steps
	if s == nil {
		t.Fatal("Deadline set but Steps nil")
	}
	if s.Count == 0 {
		t.Fatal("no steps recorded")
	}
	// A 1ns deadline is unmeetable: every step must miss.
	if s.Misses != s.Count {
		t.Fatalf("misses = %d, want %d", s.Misses, s.Count)
	}
	if s.Deadline != time.Nanosecond {
		t.Fatalf("deadline = %v", s.Deadline)
	}
	if s.P50 <= 0 || s.P50 > s.P95 || s.P95 > s.P99 || s.P99 > s.Max {
		t.Fatalf("quantiles out of order: %+v", s)
	}
	if res.Inconsistent {
		t.Fatal("clean run flagged inconsistent")
	}
}

func TestStepLatencyWithoutDeadline(t *testing.T) {
	res, err := Run("ekfslam", Options{Size: SizeSmall, Seed: 1, StepLatency: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps == nil || res.Steps.Count == 0 {
		t.Fatalf("StepLatency set but no steps: %+v", res.Steps)
	}
	if res.Steps.Deadline != 0 || res.Steps.Misses != 0 {
		t.Fatalf("deadline accounting without a deadline: %+v", res.Steps)
	}
}

func TestNoStepsByDefault(t *testing.T) {
	res, err := Run("dmp", Options{Size: SizeSmall, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != nil {
		t.Fatalf("Steps reported without opt-in: %+v", res.Steps)
	}
}

// TestEveryKernelReportsSteps asserts the tentpole's coverage claim: every
// registered kernel has StepDone instrumentation, so a deadline run always
// yields a latency distribution.
func TestEveryKernelReportsSteps(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the whole suite")
	}
	for _, k := range Kernels() {
		res, err := Run(k.Name, Options{Size: SizeSmall, Seed: 1, StepLatency: true})
		if err != nil {
			t.Errorf("%s: %v", k.Name, err)
			continue
		}
		if res.Steps == nil || res.Steps.Count == 0 {
			t.Errorf("%s: no step latency recorded", k.Name)
		}
	}
}
