package rtrbench

import (
	"context"

	"repro/internal/core/mpc"
	"repro/internal/profile"
)

func init() {
	registerSpec(Info{
		Name: "mpc", Index: 14, Stage: Control,
		Description:      "Model predictive control tracking a reference trajectory",
		PaperBottlenecks: []string{"Optimization"},
		ExpectDominant:   []string{"optimize"},
	}, spec[mpc.Config]{
		configure: func(o Options) (mpc.Config, error) {
			cfg := mpc.DefaultConfig()
			if o.Size == SizeSmall {
				cfg.Steps = 50
				cfg.Horizon = 10
				cfg.Iterations = 15
			}
			return cfg, noVariant("mpc", o)
		},
		// Solve residuals (tracking error, deviation) plus the rollout and
		// constraint-violation counts.
		digest: digestOf("track_rmse_m", "max_deviation_m", "vel_violations",
			"rollouts"),
		run: func(ctx context.Context, cfg mpc.Config, p *profile.Profile) (Result, error) {
			kr, err := mpc.Run(ctx, cfg, p)
			res := newResult("mpc", Control, p.Snapshot())
			res.Metrics["track_rmse_m"] = kr.TrackRMSE
			res.Metrics["max_deviation_m"] = kr.MaxDeviation
			res.Metrics["vel_violations"] = float64(kr.VelViolations)
			res.Metrics["rollouts"] = float64(kr.Rollouts)
			return res, err
		},
	})
}
