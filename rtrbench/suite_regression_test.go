package rtrbench

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/profile"
)

// TestFailedTrialLeavesNoPartialSamples is the regression test for the
// shard-purity bug: a measured trial that fails mid-run used to leave its
// partial counters and step samples in its profile shard, and Snapshot
// merged them into the TrialStats of the trials that completed.
//
// The synthetic kernel completes trial 0 (seed 1) with counter ops=100 and
// one step sample, then fails trial 1 (seed 2) after recording ops=999 and
// another step — the aggregate must only see trial 0's contribution.
func TestFailedTrialLeavesNoPartialSamples(t *testing.T) {
	info := Info{
		Name: "fake-partial",
		runWith: func(ctx context.Context, o Options, p *profile.Profile) (Result, error) {
			p.BeginROI()
			if o.Seed == 1 { // trial 0
				p.Count("ops", 100)
				p.StepDone()
				p.EndROI()
				return Result{Kernel: "fake-partial"}, nil
			}
			// Trial 1 pollutes the shard, then fails mid-run.
			p.Count("ops", 999)
			p.StepDone()
			return Result{}, errors.New("mid-run failure")
		},
	}
	kr := (&Engine{}).runKernelTrials(context.Background(), info, SuiteOptions{
		Options: Options{Seed: 1, StepLatency: true},
		Trials:  2,
	})
	if kr.Err == nil {
		t.Fatal("want trial-1 error")
	}
	if kr.FailedTrial != 1 {
		t.Fatalf("FailedTrial = %d, want 1", kr.FailedTrial)
	}
	ts := kr.Trials
	if ts == nil || ts.Trials != 1 {
		t.Fatalf("TrialStats = %+v, want 1 completed trial", ts)
	}
	if got := ts.Counters["ops"]; got != 100 {
		t.Errorf("Counters[ops] = %d, want 100 (failed trial leaked partial samples)", got)
	}
	if ts.Steps == nil || ts.Steps.Count != 1 {
		t.Errorf("Steps = %+v, want exactly trial 0's single sample", ts.Steps)
	}
}

// TestSuiteCancelSkipsQueuedKernels is the regression test for the
// semaphore-cancellation bug: after a first-failure cancel(), kernels still
// queued on the worker semaphore used to wait for a slot and then spin up a
// doomed run. With Parallel=1 and nine failing kernels, exactly one may
// ever start; the other eight must report the cancellation immediately.
func TestSuiteCancelSkipsQueuedKernels(t *testing.T) {
	const n = 9
	var started atomic.Int32
	infos := make([]Info, n)
	for i := range infos {
		infos[i] = Info{
			Name: fmt.Sprintf("fake-fail-%d", i),
			runWith: func(ctx context.Context, o Options, p *profile.Profile) (Result, error) {
				started.Add(1)
				// Long enough for every queued worker to reach the
				// semaphore before the failure cancels the suite.
				time.Sleep(50 * time.Millisecond)
				return Result{}, errors.New("boom")
			},
		}
	}
	res, err := (&Engine{}).RunKernels(context.Background(), infos, SuiteOptions{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := started.Load(); got != 1 {
		t.Errorf("%d kernels started, want 1 (queued kernels must not spin up after cancel)", got)
	}
	failed, canceled := 0, 0
	for _, kr := range res.Kernels {
		switch {
		case errors.Is(kr.Err, context.Canceled):
			canceled++
			if kr.FailedTrial != -1 {
				t.Errorf("%s: FailedTrial = %d, want -1 (never ran)", kr.Info.Name, kr.FailedTrial)
			}
		case kr.Err != nil:
			failed++
		default:
			t.Errorf("%s: nil error in an all-failing sweep", kr.Info.Name)
		}
	}
	if failed != 1 || canceled != n-1 {
		t.Errorf("failed=%d canceled=%d, want 1 genuine failure and %d cancellations", failed, canceled, n-1)
	}
}
