package rtrbench

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/profile"
	"repro/internal/stream"
)

// syntheticStreamKernel builds an Info whose workload runs stepsPerRun
// steps, each advancing the virtual clock by exec(globalStep). The kernel
// follows the registered-kernel contract: it polls ctx between steps and
// calls StepDone once per step.
func syntheticStreamKernel(clk *stream.VirtualClock, stepsPerRun int, exec func(step int) time.Duration, seeds *[]int64) Info {
	global := 0
	return Info{
		Name: "synthetic",
		runWith: func(ctx context.Context, o Options, p *profile.Profile) (Result, error) {
			*seeds = append(*seeds, o.Seed)
			for i := 0; i < stepsPerRun; i++ {
				if err := ctx.Err(); err != nil {
					return Result{Kernel: "synthetic"}, err
				}
				clk.Advance(exec(global))
				global++
				p.StepDone()
			}
			return Result{Kernel: "synthetic"}, ctx.Err()
		},
	}
}

// streamerFor wires a Streamer around one synthetic Info and a clock.
func streamerFor(info Info, clk stream.Clock) *Streamer {
	return &Streamer{
		Resolve: func(name string) (Info, bool) {
			if name == info.Name {
				return info, true
			}
			return Info{}, false
		},
		Clock: clk,
	}
}

// The driver analogue of the scheduler policy tests: the same 10ms-period /
// one-25ms-step overload scenario, but executed through the full kernel
// driver (goroutine gating via the StepDone hook, workload restarts with
// seed base+run) on a virtual clock. The counts must match the hand-derived
// schedule exactly, run after run.
func TestStreamDriverSkipNextDeterministic(t *testing.T) {
	clk := stream.NewVirtualClock(time.Unix(1700000000, 0))
	exec := func(step int) time.Duration {
		if step == 1 {
			return 25 * time.Millisecond
		}
		return 4 * time.Millisecond
	}
	var seeds []int64
	s := streamerFor(syntheticStreamKernel(clk, 3, exec, &seeds), clk)
	res, err := s.Run(context.Background(), StreamOptions{
		Kernel:   "synthetic",
		Options:  Options{Seed: 5},
		Period:   10 * time.Millisecond,
		Duration: 100 * time.Millisecond,
		Policy:   stream.PolicySkipNext,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Releases 0,10 execute; the 25ms step finishing at t=35 sheds
	// releases 20 and 30; releases 40..90 execute on the grid again.
	if res.Stream.Ticks != 8 || res.Stream.Misses != 1 || res.Stream.Sheds != 2 {
		t.Errorf("got ticks=%d misses=%d sheds=%d, want 8/1/2",
			res.Stream.Ticks, res.Stream.Misses, res.Stream.Sheds)
	}
	// 8 executed steps at 3 steps per workload = runs 0,1 complete and run
	// 2 in flight when the stream ends.
	if res.Runs != 3 {
		t.Errorf("Runs = %d, want 3", res.Runs)
	}
	if want := []int64{5, 6, 7}; len(seeds) != len(want) || seeds[0] != 5 || seeds[1] != 6 || seeds[2] != 7 {
		t.Errorf("workload seeds = %v, want %v (base+run)", seeds, want)
	}
}

func TestStreamDriverQueueDeterministic(t *testing.T) {
	clk := stream.NewVirtualClock(time.Unix(1700000000, 0))
	exec := func(step int) time.Duration {
		if step == 1 {
			return 25 * time.Millisecond
		}
		return 4 * time.Millisecond
	}
	var seeds []int64
	s := streamerFor(syntheticStreamKernel(clk, 3, exec, &seeds), clk)
	res, err := s.Run(context.Background(), StreamOptions{
		Kernel:   "synthetic",
		Period:   10 * time.Millisecond,
		Duration: 100 * time.Millisecond,
		Policy:   stream.PolicyQueue,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// All 10 releases stay queued; the backlog after the slow step makes
	// releases 10, 20, and 30 miss before the task catches up.
	if res.Stream.Ticks != 10 || res.Stream.Misses != 3 || res.Stream.Sheds != 0 {
		t.Errorf("got ticks=%d misses=%d sheds=%d, want 10/3/0",
			res.Stream.Ticks, res.Stream.Misses, res.Stream.Sheds)
	}
	// 10 steps = runs 0..2 complete (3 steps each) plus run 3 in flight.
	if res.Runs != 4 {
		t.Errorf("Runs = %d, want 4", res.Runs)
	}
}

// TestStreamAnytimeCutoffWallClock drives the cutoff watchdog for real: a
// kernel whose step takes ~30ms against a 5ms deadline must be cut off at
// every tick, not allowed to run to completion.
func TestStreamAnytimeCutoffWallClock(t *testing.T) {
	info := Info{
		Name: "slow",
		runWith: func(ctx context.Context, o Options, p *profile.Profile) (Result, error) {
			for {
				select {
				case <-time.After(30 * time.Millisecond):
				case <-ctx.Done():
					return Result{Kernel: "slow", Degraded: true}, nil
				}
				p.StepDone()
				if ctx.Err() != nil {
					return Result{Kernel: "slow", Degraded: true}, nil
				}
			}
		},
	}
	s := streamerFor(info, nil)
	res, err := s.Run(context.Background(), StreamOptions{
		Kernel:   "slow",
		Period:   10 * time.Millisecond,
		Deadline: 5 * time.Millisecond,
		MaxTicks: 4,
		Policy:   stream.PolicyAnytimeCutoff,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Stream.Ticks != 4 {
		t.Errorf("Ticks = %d, want 4", res.Stream.Ticks)
	}
	if res.Stream.Cutoffs == 0 {
		t.Error("Cutoffs = 0, want the watchdog to fire")
	}
	if res.Stream.Misses != res.Stream.Ticks {
		t.Errorf("Misses = %d, want every tick (%d) to miss a 5ms deadline on 30ms work",
			res.Stream.Misses, res.Stream.Ticks)
	}
	if res.Degraded == 0 {
		t.Error("Degraded = 0, want cut-off best-effort runs to be counted")
	}
}

// TestStreamRealKernelWallClock is the in-tree analogue of the CI smoke
// stage: a real registered kernel (pfl) as a 2ms periodic task.
func TestStreamRealKernelWallClock(t *testing.T) {
	res, err := Stream(context.Background(), StreamOptions{
		Kernel:   "pfl",
		Options:  Options{Size: SizeSmall, Seed: 1},
		Period:   2 * time.Millisecond,
		Duration: 150 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("Stream: %v", err)
	}
	if res.Stream.Ticks < 1 {
		t.Fatalf("Ticks = %d, want at least one executed tick", res.Stream.Ticks)
	}
	if res.Runs < 1 {
		t.Fatalf("Runs = %d, want at least one kernel workload", res.Runs)
	}
	if res.Stream.Latency.Count != res.Stream.Ticks {
		t.Errorf("latency samples = %d, want one per tick (%d)", res.Stream.Latency.Count, res.Stream.Ticks)
	}
}

func TestStreamKernelErrorAbortsStream(t *testing.T) {
	clk := stream.NewVirtualClock(time.Unix(1700000000, 0))
	boom := errors.New("sensor exploded")
	calls := 0
	info := Info{
		Name: "faulty",
		runWith: func(ctx context.Context, o Options, p *profile.Profile) (Result, error) {
			calls++
			if calls == 2 {
				return Result{}, boom
			}
			for i := 0; i < 2; i++ {
				if err := ctx.Err(); err != nil {
					return Result{}, err
				}
				clk.Advance(time.Millisecond)
				p.StepDone()
			}
			return Result{}, ctx.Err()
		},
	}
	s := streamerFor(info, clk)
	res, err := s.Run(context.Background(), StreamOptions{
		Kernel:   "faulty",
		Period:   10 * time.Millisecond,
		Duration: time.Second,
	})
	if err == nil || !strings.Contains(err.Error(), "sensor exploded") {
		t.Fatalf("err = %v, want the kernel failure surfaced", err)
	}
	if res.Stream.Ticks != 2 {
		t.Errorf("Ticks = %d, want the 2 completed before the failure", res.Stream.Ticks)
	}
}

func TestStreamNoStepKernelRejected(t *testing.T) {
	clk := stream.NewVirtualClock(time.Unix(1700000000, 0))
	info := Info{
		Name: "stepless",
		runWith: func(ctx context.Context, o Options, p *profile.Profile) (Result, error) {
			return Result{}, nil // never calls StepDone
		},
	}
	s := streamerFor(info, clk)
	_, err := s.Run(context.Background(), StreamOptions{
		Kernel:   "stepless",
		Period:   10 * time.Millisecond,
		Duration: time.Second,
	})
	if err == nil || !strings.Contains(err.Error(), "StepDone") {
		t.Fatalf("err = %v, want the StepDone contract violation", err)
	}
}

func TestStreamOptionsNormalize(t *testing.T) {
	base := StreamOptions{Kernel: "pfl", Period: 2 * time.Millisecond, Duration: time.Second}

	got, err := base.Normalize()
	if err != nil {
		t.Fatalf("Normalize: %v", err)
	}
	if got.Deadline != got.Period {
		t.Errorf("implicit Deadline = %v, want the period", got.Deadline)
	}
	if got.Policy != stream.PolicySkipNext {
		t.Errorf("default Policy = %q, want skip-next", got.Policy)
	}
	if got.Seed != 1 {
		t.Errorf("default Seed = %d, want 1", got.Seed)
	}

	anytime := base
	anytime.Policy = stream.PolicyAnytimeCutoff
	if got, err := anytime.Normalize(); err != nil || !got.BestEffort {
		t.Errorf("anytime-cutoff must imply BestEffort (got %+v, %v)", got.BestEffort, err)
	}

	timed := base
	timed.Options.Deadline = time.Millisecond
	timed.StepLatency = true
	if got, err := timed.Normalize(); err != nil || got.Options.Deadline != 0 || got.Options.StepLatency {
		t.Errorf("per-step instrumentation must be cleared in stream mode (got %+v, %v)", got.Options, err)
	}

	bad := []StreamOptions{
		{Period: time.Millisecond, Duration: time.Second},                       // no kernel
		{Kernel: "pfl", Duration: time.Second},                                  // no period
		{Kernel: "pfl", Period: time.Millisecond},                               // unbounded
		{Kernel: "pfl", Period: time.Millisecond, Duration: -1},                 // negative bound
		{Kernel: "pfl", Period: time.Millisecond, Deadline: -1, Duration: 1},    // negative deadline
		{Kernel: "pfl", Period: time.Millisecond, Duration: 1, Policy: "bogus"}, // unknown policy
		{Kernel: "pfl", Period: time.Millisecond, Duration: 1, Options: Options{Workers: -1}},
		{Kernel: "pfl", Period: time.Millisecond, Duration: 1, Options: Options{Fault: &FaultOptions{}}},
	}
	for i, o := range bad {
		if _, err := o.Normalize(); err == nil {
			t.Errorf("case %d: invalid StreamOptions accepted: %+v", i, o)
		}
	}
}

func TestStreamUnknownKernel(t *testing.T) {
	_, err := Stream(context.Background(), StreamOptions{
		Kernel: "no-such-kernel", Period: time.Millisecond, Duration: time.Millisecond,
	})
	if err == nil || !strings.Contains(err.Error(), "unknown kernel") {
		t.Fatalf("err = %v, want unknown kernel", err)
	}
}

func TestStreamCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	var reg obs.Registry
	var res StreamResult
	var err error
	go func() {
		defer close(done)
		res, err = Stream(ctx, StreamOptions{
			Kernel:   "pfl",
			Options:  Options{Size: SizeSmall},
			Period:   2 * time.Millisecond,
			Duration: time.Hour, // bounded only nominally; cancellation ends it
			Live:     &reg,
		})
	}()
	// Cancel only once at least one tick has landed (watched through the
	// live registry): a fixed sleep is a losing race against the first
	// workload's setup cost under -race.
	deadline := time.Now().Add(30 * time.Second)
	for reg.Snapshot()["stream_ticks"] < 1 {
		if time.Now().After(deadline) {
			t.Fatal("no tick completed within 30s")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("stream did not stop on cancellation")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res.Stream.Ticks < 1 {
		t.Errorf("Ticks = %d, want partial accounting before cancellation", res.Stream.Ticks)
	}
}
