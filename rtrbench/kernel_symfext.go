package rtrbench

import (
	"repro/internal/core/sym"
)

func init() {
	registerSpec(Info{
		Name: "sym-fext", Index: 12, Stage: Planning,
		Description:      "Symbolic planning: firefighting robots",
		PaperBottlenecks: []string{"Graph search", "string manipulation"},
		ExpectDominant:   []string{"search", "strings"},
	}, spec[sym.Config]{
		configure: func(o Options) (sym.Config, error) {
			cfg := sym.DefaultConfig(sym.Firefighter)
			if o.Size == SizeSmall {
				cfg.Locations = 4
				cfg.Pours = 2
			}
			return cfg, noVariant("sym-fext", o)
		},
		// Plan length and the expansion/string-work counts shared by the
		// symbolic planners (see symDigest).
		digest: symDigest,
		run:    symRun("sym-fext"),
	})
}
