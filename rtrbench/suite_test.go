package rtrbench

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestRegistryIndices checks the map-backed registry covers exactly the
// paper's indices 1-16 with no duplicate name or index.
func TestRegistryIndices(t *testing.T) {
	ks := Kernels()
	if len(ks) != 16 {
		t.Fatalf("Kernels() = %d entries, want 16", len(ks))
	}
	seenIdx := map[int]string{}
	seenName := map[string]bool{}
	for _, k := range ks {
		if k.Index < 1 || k.Index > 16 {
			t.Errorf("kernel %s has index %d outside 1..16", k.Name, k.Index)
		}
		if prev, dup := seenIdx[k.Index]; dup {
			t.Errorf("index %d claimed by both %s and %s", k.Index, prev, k.Name)
		}
		seenIdx[k.Index] = k.Name
		if seenName[k.Name] {
			t.Errorf("duplicate kernel name %s", k.Name)
		}
		seenName[k.Name] = true
	}
	for i := 1; i <= 16; i++ {
		if _, ok := seenIdx[i]; !ok {
			t.Errorf("no kernel with index %d", i)
		}
	}
}

// TestInvalidVariants checks every kernel rejects a bogus variant string
// with an error instead of silently falling back to the default config.
func TestInvalidVariants(t *testing.T) {
	for _, k := range Kernels() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			_, err := Run(k.Name, Options{Size: SizeSmall, Variant: "no-such-variant"})
			if err == nil {
				t.Fatalf("%s: bogus variant accepted, want error", k.Name)
			}
		})
	}
	// Numeric-variant kernels must also reject out-of-range values.
	if _, err := Run("movtar", Options{Size: SizeSmall, Variant: "4"}); err == nil {
		t.Error("movtar: variant size 4 accepted, want error (must be > 8)")
	}
}

// TestRunContextCancelled checks a pre-cancelled context aborts every
// kernel promptly with ctx.Err() — the engine's per-step cancellation
// contract.
func TestRunContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, k := range Kernels() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			start := time.Now()
			_, err := RunContext(ctx, k.Name, Options{Size: SizeSmall})
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
			// Generous bound: configuration may build maps, but no kernel
			// may run to completion (a small run is well under this, so
			// the check only catches ignoring ctx entirely on big loops).
			if d := time.Since(start); d > 5*time.Second {
				t.Errorf("cancelled run took %v", d)
			}
		})
	}
}

// TestRunContextCancelMidRun cancels during a long run and checks the
// kernel stops within a step, not at the end of the workload.
func TestRunContextCancelMidRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	start := time.Now()
	go func() {
		// Default-size pp2d (512x512 city) takes far longer than the
		// cancellation bound.
		_, err := RunContext(ctx, "pp2d", Options{Size: SizeDefault})
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
		if d := time.Since(start); d > 3*time.Second {
			t.Errorf("cancellation took %v, want well under the full run", d)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("kernel ignored cancellation")
	}
}

// TestSuiteDeterministicAcrossParallelism runs the full 16-kernel sweep
// sequentially and in parallel and checks the per-kernel Metrics are
// identical: parallelism must not leak into kernel results.
func TestSuiteDeterministicAcrossParallelism(t *testing.T) {
	seq, err := Suite(context.Background(), SuiteOptions{
		Options:  Options{Size: SizeSmall, Seed: 7},
		Parallel: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := seq.FirstError(); err != nil {
		t.Fatal(err)
	}
	par, err := Suite(context.Background(), SuiteOptions{
		Options:  Options{Size: SizeSmall, Seed: 7},
		Parallel: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := par.FirstError(); err != nil {
		t.Fatal(err)
	}
	if len(seq.Kernels) != 16 || len(par.Kernels) != 16 {
		t.Fatalf("kernel counts %d/%d, want 16", len(seq.Kernels), len(par.Kernels))
	}
	for i := range seq.Kernels {
		s, p := seq.Kernels[i], par.Kernels[i]
		if s.Info.Name != p.Info.Name {
			t.Fatalf("order mismatch at %d: %s vs %s", i, s.Info.Name, p.Info.Name)
		}
		if len(s.Result.Metrics) == 0 {
			t.Errorf("%s: no metrics", s.Info.Name)
		}
		for name, sv := range s.Result.Metrics {
			if pv, ok := p.Result.Metrics[name]; !ok || pv != sv {
				t.Errorf("%s: metric %s sequential=%v parallel=%v", s.Info.Name, name, sv, pv)
			}
		}
	}
}

// TestSuiteTrialStats checks warmup+trials bookkeeping and the aggregate
// statistics on a cheap kernel with per-step latency tracking.
func TestSuiteTrialStats(t *testing.T) {
	res, err := Suite(context.Background(), SuiteOptions{
		Options:  Options{Size: SizeSmall, StepLatency: true},
		Kernels:  []string{"pfl"},
		Parallel: 2,
		Trials:   3,
		Warmup:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Kernels) != 1 {
		t.Fatalf("got %d kernels, want 1", len(res.Kernels))
	}
	kr := res.Kernels[0]
	if kr.Err != nil {
		t.Fatal(kr.Err)
	}
	ts := kr.Trials
	if ts == nil || ts.Trials != 3 {
		t.Fatalf("Trials stats = %+v, want 3 trials", ts)
	}
	if ts.ROIMin <= 0 || ts.ROIMin > ts.ROIMean || ts.ROIMean > ts.ROIMax {
		t.Errorf("ROI stats out of order: min=%v mean=%v max=%v", ts.ROIMin, ts.ROIMean, ts.ROIMax)
	}
	// The merged step distribution covers all three trials; the
	// representative result holds only the first.
	if ts.Steps == nil || kr.Result.Steps == nil {
		t.Fatalf("step stats missing: merged=%v single=%v", ts.Steps, kr.Result.Steps)
	}
	if want := 3 * kr.Result.Steps.Count; ts.Steps.Count != want {
		t.Errorf("merged step count = %d, want %d (3 trials x %d)", ts.Steps.Count, want, kr.Result.Steps.Count)
	}
}

// TestSuiteTimeout checks per-run timeouts surface as per-kernel errors
// and that ContinueOnError keeps the sweep going.
func TestSuiteTimeout(t *testing.T) {
	res, err := Suite(context.Background(), SuiteOptions{
		Options:         Options{Size: SizeSmall},
		Kernels:         []string{"pfl", "mpc"},
		Parallel:        1,
		Timeout:         time.Nanosecond,
		ContinueOnError: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, kr := range res.Kernels {
		if !errors.Is(kr.Err, context.DeadlineExceeded) {
			t.Errorf("%s: err = %v, want DeadlineExceeded", kr.Info.Name, kr.Err)
		}
	}
}

// TestSuiteAbortsOnError checks the default abort-on-first-error mode
// cancels the remaining kernels.
func TestSuiteAbortsOnError(t *testing.T) {
	res, err := Suite(context.Background(), SuiteOptions{
		Options:  Options{Size: SizeSmall},
		Parallel: 1,
		Timeout:  time.Nanosecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FirstError() == nil {
		t.Fatal("want a per-kernel error")
	}
	failed := 0
	for _, kr := range res.Kernels {
		if kr.Err != nil {
			failed++
		}
	}
	if failed != len(res.Kernels) {
		t.Errorf("%d/%d kernels failed; abort should cancel the rest", failed, len(res.Kernels))
	}
}

// TestSuiteUnknownKernel checks selection validation.
func TestSuiteUnknownKernel(t *testing.T) {
	if _, err := Suite(context.Background(), SuiteOptions{Kernels: []string{"nope"}}); err == nil {
		t.Fatal("want error for unknown kernel")
	}
}

// TestSuiteRejectsVariant checks the suite refuses a global variant.
func TestSuiteRejectsVariant(t *testing.T) {
	if _, err := Suite(context.Background(), SuiteOptions{Options: Options{Variant: "connect"}}); err == nil {
		t.Fatal("want error for suite-wide variant")
	}
}

// TestAggregateROI checks the trial statistics math on synthetic data.
func TestAggregateROI(t *testing.T) {
	mean, min, max, stddev := aggregateROI([]time.Duration{10, 20, 30})
	if mean != 20 || min != 10 || max != 30 {
		t.Errorf("mean=%d min=%d max=%d, want 20/10/30", mean, min, max)
	}
	// Population stddev of {10,20,30} is sqrt(200/3) ≈ 8.16.
	if stddev < 8 || stddev > 9 {
		t.Errorf("stddev = %d, want ≈8", stddev)
	}
	mean, min, max, stddev = aggregateROI([]time.Duration{42})
	if mean != 42 || min != 42 || max != 42 || stddev != 0 {
		t.Errorf("single trial: mean=%d min=%d max=%d stddev=%d", mean, min, max, stddev)
	}
	if mean, min, max, stddev = aggregateROI(nil); mean != 0 || min != 0 || max != 0 || stddev != 0 {
		t.Error("empty input should aggregate to zeros")
	}
}
