package rtrbench

import (
	"context"
	"fmt"
	"strconv"

	"repro/internal/core/movtar"
	"repro/internal/profile"
)

func init() {
	registerSpec(Info{
		Name: "movtar", Index: 6, Stage: Planning,
		Description:      "Catching a moving target with Weighted A* over space-time",
		PaperBottlenecks: []string{"Input-dependent"},
		ExpectDominant:   []string{"search", "heuristic"},
	}, spec[movtar.Config]{
		configure: func(o Options) (movtar.Config, error) {
			cfg := movtar.DefaultConfig()
			cfg.Seed = o.seed()
			if o.Size == SizeSmall {
				cfg.Size = 96
			}
			// The variant is the terrain edge length for the paper's
			// input-dependence sweep.
			if o.Variant != "" {
				n, err := strconv.Atoi(o.Variant)
				if err != nil {
					return cfg, fmt.Errorf("movtar: unknown variant %q", o.Variant)
				}
				if n <= 8 {
					return cfg, fmt.Errorf("movtar: variant size %d too small (must be > 8)", n)
				}
				cfg.Size = n
			}
			return cfg, nil
		},
		// Catch outcome, path cost, and the search/heuristic node counts.
		digest: digestOf("found", "catch_time", "path_cost", "expanded",
			"heuristic_cells"),
		run: func(ctx context.Context, cfg movtar.Config, p *profile.Profile) (Result, error) {
			kr, err := movtar.Run(ctx, cfg, p)
			res := newResult("movtar", Planning, p.Snapshot())
			res.Metrics["found"] = boolMetric(kr.Found)
			res.Metrics["catch_time"] = float64(kr.CatchTime)
			res.Metrics["path_cost"] = kr.PathCost
			res.Metrics["expanded"] = float64(kr.Expanded)
			res.Metrics["heuristic_cells"] = float64(kr.HeuristicCells)
			return res, err
		},
	})
}
