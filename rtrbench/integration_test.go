package rtrbench

import (
	"context"
	"testing"

	"repro/internal/core/mpc"
	"repro/internal/core/pfl"
	"repro/internal/core/pp2d"
	"repro/internal/geom"
	"repro/internal/maps"
	"repro/internal/trajectory"
)

// TestPipelineIntegration runs the paper's Fig. 1 pipeline end-to-end on a
// shared world model: localize on the city map, plan from the estimate,
// track the plan — asserting that each stage's output is good enough for
// the next stage to succeed. This is the examples/delivery2d scenario as a
// regression test.
func TestPipelineIntegration(t *testing.T) {
	const seed = 1
	city := pp2d.DefaultMap(192, seed)

	// Stage 1: localization (tracking mode around the true start).
	sx, sy := maps.FreeCellNear(city, city.W/8, city.H/8)
	wx, wy := city.CellToWorld(sx, sy)
	start := geom.Pose2{X: wx, Y: wy}
	locCfg := pfl.DefaultConfig()
	locCfg.Map = city
	locCfg.Particles = 500
	locCfg.Steps = 30
	locCfg.Start = &start
	prior := start
	locCfg.TrackingPrior = &prior
	locCfg.TrackingSpread = 2
	loc, err := pfl.Run(context.Background(), locCfg, nil)
	if err != nil {
		t.Fatalf("perception: %v", err)
	}
	if loc.PositionError > 1 {
		t.Fatalf("perception: estimate error %.2f m too large to plan from", loc.PositionError)
	}

	// Stage 2: planning from the estimate.
	planCfg := pp2d.DefaultConfig()
	ex, ey := city.WorldToCell(loc.Estimate.X, loc.Estimate.Y)
	sxp, syp, ok := pp2d.FeasibleCellNear(city, planCfg.CarLength, planCfg.CarWidth, ex, ey)
	if !ok {
		t.Fatal("planning: no feasible start near the estimate")
	}
	gx, gy, ok := pp2d.FeasibleCellNear(city, planCfg.CarLength, planCfg.CarWidth,
		city.W-city.W/8, city.H-city.H/8)
	if !ok {
		t.Fatal("planning: no feasible goal")
	}
	planCfg.Map = city
	planCfg.StartX, planCfg.StartY = sxp, syp
	planCfg.GoalX, planCfg.GoalY = gx, gy
	plan, err := pp2d.Run(context.Background(), planCfg, nil)
	if err != nil {
		t.Fatalf("planning: %v", err)
	}
	if !plan.Found || plan.PathLength <= 0 {
		t.Fatal("planning: no route")
	}

	// Stage 3: control along the route.
	ref := &trajectory.Trajectory{}
	var dist float64
	var prev geom.Vec2
	const speed = 5.0
	for i, id := range plan.Path {
		p := geom.Vec2{
			X: (float64(id%city.W) + 0.5) * city.Resolution,
			Y: (float64(id/city.W) + 0.5) * city.Resolution,
		}
		if i > 0 {
			dist += p.Dist(prev)
		}
		ref.Points = append(ref.Points, trajectory.Point{T: dist / speed, P: p})
		prev = p
	}
	ctlCfg := mpc.DefaultConfig()
	ctlCfg.Reference = ref
	ctlCfg.Steps = 100
	ctl, err := mpc.Run(context.Background(), ctlCfg, nil)
	if err != nil {
		t.Fatalf("control: %v", err)
	}
	if ctl.TrackRMSE > 2 {
		t.Fatalf("control: RMS tracking error %.2f m", ctl.TrackRMSE)
	}
	if ctl.VelViolations > 0 {
		t.Fatalf("control: %d velocity violations", ctl.VelViolations)
	}
}
