package rtrbench

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"runtime"

	"repro/internal/golden"
	"repro/internal/profile"
)

// Checked-in goldens cover the Small size at these two seeds; Verify uses
// them when VerifyOptions.Seeds is empty.
var defaultVerifySeeds = []int64{1, 42}

// DefaultGoldenDir is where the checked-in golden digests live, relative to
// the rtrbench package directory (tests) — callers running from elsewhere
// (the CLI, CI) pass the repo-relative path explicitly.
const DefaultGoldenDir = "testdata/golden"

// VerifyOptions configures a Verify run. Verification always runs the Small
// size: goldens are checked in for exactly that configuration.
type VerifyOptions struct {
	// Dir is the golden-digest directory; empty means DefaultGoldenDir.
	Dir string
	// Kernels selects a subset by name; empty means all 16.
	Kernels []string
	// Seeds are the base seeds to verify at; empty means the checked-in
	// pair (1 and 42).
	Seeds []int64
	// Update regenerates the golden files from the current code instead of
	// diffing against them.
	Update bool
	// Metamorphic additionally checks the digest-invariance properties
	// that need no goldens at all: digests must be bit-identical at
	// Parallel=1 vs Parallel=8, with trial order reversed, with profiling
	// enabled vs profile.Disabled(), and — for the kernels with intra-kernel
	// parallelism — at Options.Workers=1 vs Workers=8. Runs at Seeds[0].
	Metamorphic bool
	// Parallel bounds kernel concurrency for the golden runs; <= 0 means
	// runtime.NumCPU().
	Parallel int
}

// VerifyMismatch is one digest difference found by Verify, carrying enough
// identity to name the drift: kernel, seed, the check that caught it, the
// field, and both canonical values.
type VerifyMismatch struct {
	Kernel string
	Seed   int64
	// Check names the comparison: "golden" (checked-in digest), or the
	// metamorphic properties "parallel" (1 vs 8 concurrent kernels),
	// "reorder" (trial order), "profile" (profiling on vs off), "workers"
	// (intra-kernel Workers=1 vs Workers=8).
	Check string
	Field string
	Want  string
	Got   string
}

// String renders the mismatch in the human-readable report form.
func (m VerifyMismatch) String() string {
	return fmt.Sprintf("%s (seed %d, %s): field %s: expected %s, got %s",
		m.Kernel, m.Seed, m.Check, m.Field, m.Want, m.Got)
}

// VerifyReport is the outcome of a Verify run.
type VerifyReport struct {
	// Checked counts digests compared (golden diffs plus metamorphic
	// comparisons).
	Checked int
	// Updated lists the golden files written in update mode.
	Updated []string
	// Missing lists golden files that do not exist (run with Update to
	// create them).
	Missing []string
	// Mismatches lists every digest difference, golden and metamorphic.
	Mismatches []VerifyMismatch
}

// OK reports whether verification passed: every golden present and every
// comparison clean. An update run is OK by construction.
func (r VerifyReport) OK() bool { return len(r.Mismatches) == 0 && len(r.Missing) == 0 }

// Verify re-runs the selected kernels at the Small size and checks that
// each still computes the same answer: per-kernel result digests (operation
// counts, final-state summaries — never timings; see digest.go) are diffed
// against the golden digests checked in under Dir. With Update set it
// regenerates the goldens instead. With Metamorphic set it additionally
// proves the digests independent of parallelism, trial order, and
// profiling.
//
// The returned error covers harness-level failures only (unknown kernel,
// a kernel run erroring, ctx cancellation); digest drift is reported in the
// VerifyReport so callers can print every mismatch, not just the first.
func Verify(ctx context.Context, opts VerifyOptions) (VerifyReport, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	var rep VerifyReport
	infos, err := suiteKernels(opts.Kernels)
	if err != nil {
		return rep, err
	}
	dir := opts.Dir
	if dir == "" {
		dir = DefaultGoldenDir
	}
	seeds := opts.Seeds
	if len(seeds) == 0 {
		seeds = defaultVerifySeeds
	}
	parallel := opts.Parallel
	if parallel <= 0 {
		parallel = runtime.NumCPU()
	}

	for _, seed := range seeds {
		digests, err := suiteDigests(ctx, opts.Kernels, seed, parallel, Options{})
		if err != nil {
			return rep, err
		}
		for _, info := range infos {
			got := digests[info.Name]
			got.Seed = seed
			if opts.Update {
				if err := golden.Save(dir, got); err != nil {
					return rep, err
				}
				rep.Updated = append(rep.Updated, golden.Path(dir, info.Name, seed))
				continue
			}
			want, err := golden.Load(dir, info.Name, seed)
			if errors.Is(err, fs.ErrNotExist) {
				rep.Missing = append(rep.Missing, golden.Path(dir, info.Name, seed))
				continue
			}
			if err != nil {
				return rep, err
			}
			rep.Checked++
			appendMismatches(&rep, "golden", seed, golden.Diff(want, got))
		}
	}

	if opts.Metamorphic {
		if err := verifyMetamorphic(ctx, &rep, infos, opts.Kernels, seeds[0], parallel); err != nil {
			return rep, err
		}
	}
	return rep, nil
}

// suiteDigests runs the selected kernels once each through the Suite engine
// and digests every result, keyed by kernel name.
func suiteDigests(ctx context.Context, names []string, seed int64, parallel int, base Options) (map[string]golden.Digest, error) {
	base.Size = SizeSmall
	base.Seed = seed
	res, err := Suite(ctx, SuiteOptions{Options: base, Kernels: names, Parallel: parallel})
	if err != nil {
		return nil, err
	}
	if err := res.FirstError(); err != nil {
		return nil, err
	}
	out := make(map[string]golden.Digest, len(res.Kernels))
	for _, kr := range res.Kernels {
		d, err := digestResult(kr.Result)
		if err != nil {
			return nil, err
		}
		d.Seed = seed
		out[kr.Info.Name] = d
	}
	return out, nil
}

// verifyMetamorphic checks the three golden-free equivalence properties.
// Each failure is reported as a mismatch whose Check names the property;
// Want is the reference execution, Got the varied one.
func verifyMetamorphic(ctx context.Context, rep *VerifyReport, infos []Info, names []string, seed int64, parallel int) error {
	// Property 1: parallelism independence. The same sweep at Parallel=1
	// and Parallel=8 must digest identically — per-trial seeding and
	// shard isolation may not leak into results.
	seq, err := suiteDigests(ctx, names, seed, 1, Options{})
	if err != nil {
		return err
	}
	par, err := suiteDigests(ctx, names, seed, 8, Options{})
	if err != nil {
		return err
	}
	for _, info := range infos {
		rep.Checked++
		appendMismatches(rep, "parallel", seed, golden.Diff(seq[info.Name], par[info.Name]))
	}

	// Property 2: trial-order independence. Running seed then seed+1 must
	// digest the same as seed+1 then seed — a kernel holding hidden global
	// state across runs fails here even when each single run looks fine.
	seeds := []int64{seed, seed + 1}
	forward := map[int64]map[string]golden.Digest{}
	backward := map[int64]map[string]golden.Digest{}
	for _, info := range infos {
		for _, s := range seeds { // ascending
			d, err := runDigest(ctx, info, Options{Size: SizeSmall, Seed: s}, nil)
			if err != nil {
				return fmt.Errorf("%s (seed %d): %w", info.Name, s, err)
			}
			if forward[s] == nil {
				forward[s] = map[string]golden.Digest{}
			}
			forward[s][info.Name] = d
		}
		for i := len(seeds) - 1; i >= 0; i-- { // descending
			s := seeds[i]
			d, err := runDigest(ctx, info, Options{Size: SizeSmall, Seed: s}, nil)
			if err != nil {
				return fmt.Errorf("%s (seed %d): %w", info.Name, s, err)
			}
			if backward[s] == nil {
				backward[s] = map[string]golden.Digest{}
			}
			backward[s][info.Name] = d
		}
		for _, s := range seeds {
			rep.Checked++
			appendMismatches(rep, "reorder", s, golden.Diff(forward[s][info.Name], backward[s][info.Name]))
		}
	}

	// Property 3: profiling independence. A run with step-latency
	// instrumentation on must digest identically to one on
	// profile.Disabled() — the "virtually zero effect" hook contract,
	// checked on results instead of timings.
	for _, info := range infos {
		o := Options{Size: SizeSmall, Seed: seed}
		instrumented, err := runDigest(ctx, info, o, nil)
		if err != nil {
			return fmt.Errorf("%s: %w", info.Name, err)
		}
		bare, err := runDigest(ctx, info, o, profile.Disabled())
		if err != nil {
			return fmt.Errorf("%s: %w", info.Name, err)
		}
		rep.Checked++
		appendMismatches(rep, "profile", seed, golden.Diff(instrumented, bare))
	}

	// Property 4: worker-count independence. The kernels with intra-kernel
	// parallelism promise that every Options.Workers >= 1 selects the same
	// deterministic parallel algorithm — partition counts and RNG
	// sub-streams are fixed, the worker count only bounds goroutine
	// concurrency — so Workers=1 and Workers=8 must digest identically.
	var parallelized []string
	for _, info := range infos {
		if workerKernels[info.Name] {
			parallelized = append(parallelized, info.Name)
		}
	}
	if len(parallelized) > 0 {
		w1, err := suiteDigests(ctx, parallelized, seed, parallel, Options{Workers: 1})
		if err != nil {
			return err
		}
		w8, err := suiteDigests(ctx, parallelized, seed, parallel, Options{Workers: 8})
		if err != nil {
			return err
		}
		for _, name := range parallelized {
			rep.Checked++
			appendMismatches(rep, "workers", seed, golden.Diff(w1[name], w8[name]))
		}
	}
	return nil
}

// workerKernels are the kernels honoring Options.Workers — exactly the set
// the metamorphic "workers" property runs on. The goldens themselves stay
// pinned to the serial Workers=0 algorithms; this property is what covers
// the parallel paths.
var workerKernels = map[string]bool{
	"pfl": true, "ekfslam": true, "prm": true,
	"rrt": true, "rrtstar": true, "rrtpp": true,
}

// runDigest executes one kernel run and digests it. A nil profile runs with
// full instrumentation (step latency on, the heavier configuration); an
// explicit profile — profile.Disabled() in the metamorphic check — is used
// as given.
func runDigest(ctx context.Context, info Info, o Options, p *profile.Profile) (golden.Digest, error) {
	if p == nil {
		o.StepLatency = true
		p = newProfile(o)
	}
	r, err := info.runWith(ctx, o, p)
	if err != nil {
		return golden.Digest{}, err
	}
	d, err := digestResult(r)
	if err != nil {
		return golden.Digest{}, err
	}
	d.Seed = o.seed()
	return d, nil
}

func appendMismatches(rep *VerifyReport, check string, seed int64, diffs []golden.Mismatch) {
	for _, m := range diffs {
		rep.Mismatches = append(rep.Mismatches, VerifyMismatch{
			Kernel: m.Kernel,
			Seed:   seed,
			Check:  check,
			Field:  m.Field,
			Want:   m.Want,
			Got:    m.Got,
		})
	}
}
