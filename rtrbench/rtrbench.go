// Package rtrbench is the public API of the RTRBench-Go suite: sixteen
// real-time robotics kernels spanning the perception → planning → control
// pipeline, each runnable with a typical, realistic default configuration
// or a reduced test-sized one, and each reporting the phase-level execution
// breakdown the original paper's characterization is built on.
//
// Quick use:
//
//	res, err := rtrbench.Run("pfl", rtrbench.Options{Size: rtrbench.SizeSmall, Seed: 1})
//	fmt.Println(res.Dominant(), res.Fraction("raycast"))
//
// Kernels() lists the registry; each entry carries the pipeline stage and
// the bottlenecks the paper's Table I attributes to the kernel, so callers
// can verify the reproduction (“does the measured dominant phase match the
// published one?”) programmatically.
package rtrbench

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/profile"
)

// Stage is a robot software pipeline stage (paper Fig. 1).
type Stage string

// The three pipeline stages.
const (
	Perception Stage = "Perception"
	Planning   Stage = "Planning"
	Control    Stage = "Control"
)

// Size selects a configuration scale.
type Size int

const (
	// SizeSmall is a reduced configuration for unit tests and smoke runs
	// (sub-second per kernel).
	SizeSmall Size = iota
	// SizeDefault is the paper-style "typical, realistic configuration"
	// on a representative inputset.
	SizeDefault
)

// Options control a kernel run.
type Options struct {
	Size Size
	// Seed makes stochastic kernels reproducible. Zero means seed 1.
	Seed int64
	// Variant selects a kernel sub-configuration where one exists (e.g.
	// "mapf"/"mapc" for the arm planners, a region index for pfl). Empty
	// selects the default.
	Variant string
	// Deadline arms a per-step real-time deadline: every kernel step
	// (iteration, sample, or planning episode — see the kernel docs) is
	// timed, and Result.Steps reports the latency distribution and how
	// many steps overran. Zero means no deadline.
	Deadline time.Duration
	// StepLatency records the per-step latency distribution without a
	// deadline. Implied by a non-zero Deadline.
	StepLatency bool
	// Fault, when non-nil, enables deterministic chaos injection: sensor
	// dropout, NaN/Inf corruption, noise spikes, step stalls, and injected
	// panics on a schedule derived from (Fault.Seed, kernel, run seed).
	// Injected or genuine panics surface as *KernelError; the faults that
	// fired are listed in Result.Faults.
	Fault *FaultOptions
	// BestEffort asks the anytime/sampling kernels (pp2d's ARA* variant,
	// rrtstar, rrtpp, cem, bo) to degrade gracefully on cancellation or
	// deadline: return the best result found so far, flagged
	// Result.Degraded, instead of failing with ctx.Err(). Kernels without a
	// partial result to offer ignore it.
	BestEffort bool
	// Workers enables intra-kernel parallelism in the kernels that support
	// it (pfl, ekfslam, prm, rrt, rrtstar, rrtpp); the rest ignore it. 0
	// (the default) runs every kernel's legacy serial algorithm — the one
	// the checked-in goldens record. Any Workers >= 1 selects the kernel's
	// deterministic parallel algorithm: results depend only on the seed, and
	// the worker count merely bounds goroutine concurrency, so workers 1 and
	// 8 produce identical digests (`rtrbench verify -metamorphic` proves
	// this). ekfslam's parallel matrix kernels are additionally bit-identical
	// to its serial path. See DESIGN.md "Intra-kernel parallelism".
	Workers int
}

func (o Options) seed() int64 {
	if o.Seed == 0 {
		return 1
	}
	return o.Seed
}

// Phase is one instrumented region of a kernel's region of interest.
type Phase struct {
	Name     string
	Duration time.Duration
	Calls    int64
	// Fraction is the share of ROI time spent exclusively in this phase.
	Fraction float64
}

// Result is the outcome of one kernel execution.
type Result struct {
	Kernel string
	Stage  Stage
	// ROI is the total region-of-interest wall time.
	ROI time.Duration
	// Phases are sorted by descending duration.
	Phases []Phase
	// Counters are kernel operation counts (ray casts, collision checks,
	// L2 norms, string bytes, ...).
	Counters map[string]int64
	// Metrics are kernel-specific scalar outputs (path cost, estimation
	// error, best reward, ...).
	Metrics map[string]float64
	// Series are kernel-specific numeric series (reward curves, velocity
	// profiles) used to regenerate the paper's figures.
	Series map[string][]float64
	// Steps is the per-step latency distribution; nil unless the run had
	// Options.Deadline or Options.StepLatency set.
	Steps *StepStats
	// Inconsistent reports that the profile snapshot was structurally
	// unsound (phases or ROI left open) — a harness bug, not a kernel
	// property.
	Inconsistent bool
	// Degraded reports that the kernel returned a best-effort partial
	// result (see Options.BestEffort) instead of completing its workload.
	// A degraded result is a success with reduced quality, not a failure.
	Degraded bool
	// Faults lists the injected faults that fired during the run (see
	// Options.Fault); nil when chaos injection was off or nothing fired.
	Faults []FaultEvent
}

// StepStats is the per-step latency distribution of one kernel run, the
// real-time quantity (latency quantiles + deadline misses) that a phase
// table cannot express.
type StepStats struct {
	Count int64
	Min   time.Duration
	Mean  time.Duration
	P50   time.Duration
	P95   time.Duration
	P99   time.Duration
	Max   time.Duration
	// Deadline echoes Options.Deadline; zero when only StepLatency was set.
	Deadline time.Duration
	// Misses counts steps whose latency exceeded Deadline.
	Misses int64
}

// Dominant returns the name of the phase with the largest share of ROI
// time, or "" when no phases were recorded.
func (r Result) Dominant() string {
	if len(r.Phases) == 0 {
		return ""
	}
	return r.Phases[0].Name
}

// Fraction returns the ROI share of the named phase (0 when absent).
func (r Result) Fraction(name string) float64 {
	for _, p := range r.Phases {
		if p.Name == name {
			return p.Fraction
		}
	}
	return 0
}

// Metric returns a named metric (0 when absent).
func (r Result) Metric(name string) float64 { return r.Metrics[name] }

// Info describes one registered kernel.
type Info struct {
	// Name is the kernel's short name (e.g. "pfl", "rrtstar").
	Name string
	// Index is the kernel's number in the paper's Table I (1-16).
	Index int
	Stage Stage
	// Description is a one-line summary.
	Description string
	// PaperBottlenecks lists the bottleneck(s) Table I attributes to the
	// kernel.
	PaperBottlenecks []string
	// ExpectDominant lists the harness phase names that would confirm the
	// paper's characterization when one of them is the measured dominant
	// phase.
	ExpectDominant []string

	// runWith executes the kernel against a caller-owned profile (the Suite
	// engine hands each trial its own shard of a profile.Sharded).
	runWith func(context.Context, Options, *profile.Profile) (Result, error)
	// validate configures the kernel from the options and runs its config
	// validation without executing it (see the package-level Validate).
	validate func(Options) error
	// digest reduces a finished Result to the kernel's deterministic
	// golden-digest fields (see digest.go and Verify).
	digest digestFn
}

// The registry is map-backed: name lookups are O(1), and byIndex enforces
// Table I index uniqueness at registration time.
var (
	registry = map[string]Info{}
	byIndex  = map[int]string{}
)

func register(info Info) {
	if _, dup := registry[info.Name]; dup {
		panic(fmt.Sprintf("rtrbench: duplicate kernel name %q", info.Name))
	}
	if prev, dup := byIndex[info.Index]; dup {
		panic(fmt.Sprintf("rtrbench: duplicate kernel index %d (%s vs %s)", info.Index, prev, info.Name))
	}
	registry[info.Name] = info
	byIndex[info.Index] = info.Name
}

// Kernels returns the registry in Table I order.
func Kernels() []Info {
	out := make([]Info, 0, len(registry))
	for _, k := range registry {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Index < out[j].Index })
	return out
}

// Lookup finds a kernel by name.
func Lookup(name string) (Info, bool) {
	k, ok := registry[name]
	return k, ok
}

// Run executes the named kernel with the given options.
func Run(name string, opts Options) (Result, error) {
	return RunContext(context.Background(), name, opts)
}

// Validate configures the named kernel from opts and runs its config
// validation (dimension, bound, and finiteness checks) without executing
// it. It reports the same field-level errors a Run would fail fast with.
func Validate(name string, opts Options) error {
	k, ok := Lookup(name)
	if !ok {
		return fmt.Errorf("rtrbench: unknown kernel %q", name)
	}
	return k.validate(opts)
}

// RunContext executes the named kernel under ctx. Cancellation (or a
// deadline on ctx) aborts the kernel within one step/iteration; the
// returned error is then ctx.Err().
func RunContext(ctx context.Context, name string, opts Options) (Result, error) {
	k, ok := Lookup(name)
	if !ok {
		return Result{}, fmt.Errorf("rtrbench: unknown kernel %q", name)
	}
	return k.runWith(ctx, opts, newProfile(opts))
}

// RunAll executes every kernel sequentially and returns the results in
// Table I order. The first error aborts the sweep. For parallel execution,
// repeated trials, timeouts, or error collection, use Suite.
func RunAll(opts Options) ([]Result, error) {
	var out []Result
	for _, k := range Kernels() {
		r, err := k.runWith(context.Background(), opts, newProfile(opts))
		if err != nil {
			return out, fmt.Errorf("rtrbench: kernel %s: %w", k.Name, err)
		}
		out = append(out, r)
	}
	return out, nil
}
