package rtrbench

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

// TestSuitePoisonedKernelIsolated is the chaos harness's core regression:
// one kernel poisoned with a deterministic injected panic must not take
// down the sweep. Under ContinueOnError the other 15 kernels complete
// normally and the poisoned one surfaces a structured *KernelError with
// fault attribution and its trial index.
func TestSuitePoisonedKernelIsolated(t *testing.T) {
	res, err := Suite(context.Background(), SuiteOptions{
		Options: Options{
			Size:  SizeSmall,
			Seed:  7,
			Fault: &FaultOptions{Seed: 1, Panic: 1, Only: []string{"cem"}},
		},
		Parallel:        4,
		ContinueOnError: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Kernels) != 16 {
		t.Fatalf("got %d kernels, want 16", len(res.Kernels))
	}
	var poisoned *KernelResult
	healthy := 0
	for i := range res.Kernels {
		kr := &res.Kernels[i]
		if kr.Info.Name == "cem" {
			poisoned = kr
			continue
		}
		if kr.Err != nil {
			t.Errorf("%s: err = %v, want nil (panic must stay isolated)", kr.Info.Name, kr.Err)
			continue
		}
		if len(kr.Result.Metrics) == 0 {
			t.Errorf("%s: no metrics", kr.Info.Name)
			continue
		}
		healthy++
	}
	if healthy != 15 {
		t.Errorf("healthy kernels = %d, want 15", healthy)
	}
	if poisoned == nil {
		t.Fatal("cem missing from results")
	}
	var ke *KernelError
	if !errors.As(poisoned.Err, &ke) {
		t.Fatalf("cem err = %v (%T), want *KernelError", poisoned.Err, poisoned.Err)
	}
	if ke.Kernel != "cem" || ke.Trial != 0 {
		t.Errorf("KernelError = {Kernel: %q, Trial: %d}, want {cem, 0}", ke.Kernel, ke.Trial)
	}
	if !strings.Contains(ke.Fault, "injected panic") {
		t.Errorf("KernelError.Fault = %q, want injected-panic attribution", ke.Fault)
	}
	if len(ke.Stack) == 0 {
		t.Error("KernelError.Stack empty, want recovered goroutine stack")
	}
	// The injected panic is also visible in the fault log of the trial.
	if poisoned.Trials == nil || len(poisoned.Trials.Faults) == 0 {
		t.Fatalf("poisoned kernel has no fault events: %+v", poisoned.Trials)
	}
	last := poisoned.Trials.Faults[len(poisoned.Trials.Faults)-1]
	if last.Kind != "panic" || last.Trial != 0 {
		t.Errorf("last fault event = %+v, want panic in trial 0", last)
	}

	// The failure report rolls the same facts into one place.
	fails := res.Failures()
	if len(fails) != 1 {
		t.Fatalf("Failures() = %d entries, want 1: %+v", len(fails), fails)
	}
	if f := fails[0]; f.Kernel != "cem" || f.Trial != 0 || !strings.Contains(f.Fault, "injected panic") {
		t.Errorf("failure report = %+v, want attributed cem trial-0 panic", f)
	}
}

// TestSuiteChaosScheduleDeterministic checks the chaos determinism contract:
// the same chaos seed yields byte-identical fault schedules at parallelism 1
// and 8, across multiple trials.
func TestSuiteChaosScheduleDeterministic(t *testing.T) {
	run := func(parallel int) SuiteResult {
		t.Helper()
		res, err := Suite(context.Background(), SuiteOptions{
			Options: Options{
				Size: SizeSmall,
				Seed: 7,
				Fault: &FaultOptions{
					Seed:    42,
					Dropout: 0.05,
					NaN:     0.02,
					Noise:   0.05,
				},
			},
			Parallel:        parallel,
			Trials:          2,
			ContinueOnError: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	seq := run(1)
	par := run(8)
	anyFaults := false
	for i := range seq.Kernels {
		s, p := seq.Kernels[i], par.Kernels[i]
		if s.Info.Name != p.Info.Name {
			t.Fatalf("order mismatch at %d: %s vs %s", i, s.Info.Name, p.Info.Name)
		}
		var sf, pf []FaultEvent
		if s.Trials != nil {
			sf = s.Trials.Faults
		}
		if p.Trials != nil {
			pf = p.Trials.Faults
		}
		if len(sf) != len(pf) {
			t.Errorf("%s: %d faults sequential vs %d parallel", s.Info.Name, len(sf), len(pf))
			continue
		}
		for j := range sf {
			if sf[j] != pf[j] {
				t.Errorf("%s: fault %d differs: %+v vs %+v", s.Info.Name, j, sf[j], pf[j])
			}
		}
		if len(sf) > 0 {
			anyFaults = true
		}
	}
	// The sensor-threaded kernels must actually have been perturbed, or
	// the comparison above is vacuous.
	if !anyFaults {
		t.Error("no fault events anywhere; injection is not reaching the sensor layer")
	}
}

// TestSuiteRetriesTransientTimeout checks the bounded retry loop: a per-run
// timeout is transient, so the trial is retried exactly Retries times before
// the error is reported.
func TestSuiteRetriesTransientTimeout(t *testing.T) {
	res, err := Suite(context.Background(), SuiteOptions{
		Options:         Options{Size: SizeSmall},
		Kernels:         []string{"pfl"},
		Parallel:        1,
		Timeout:         time.Nanosecond,
		Retries:         2,
		RetryBackoff:    time.Millisecond,
		ContinueOnError: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	kr := res.Kernels[0]
	if !errors.Is(kr.Err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded after retries", kr.Err)
	}
	if kr.Retried != 2 {
		t.Errorf("Retried = %d, want 2", kr.Retried)
	}
}

// TestSuiteRetryNotOnKernelError checks panics are never retried: a
// poisoned trial fails once, immediately.
func TestSuiteRetryNotOnKernelError(t *testing.T) {
	res, err := Suite(context.Background(), SuiteOptions{
		Options: Options{
			Size:  SizeSmall,
			Fault: &FaultOptions{Panic: 1, Only: []string{"cem"}},
		},
		Kernels:         []string{"cem"},
		Parallel:        1,
		Retries:         3,
		ContinueOnError: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	kr := res.Kernels[0]
	var ke *KernelError
	if !errors.As(kr.Err, &ke) {
		t.Fatalf("err = %v, want *KernelError", kr.Err)
	}
	if kr.Retried != 0 {
		t.Errorf("Retried = %d, want 0 (panics are not transient)", kr.Retried)
	}
}

// TestSuiteChaosStallDegradesBestEffort checks graceful degradation end to
// end: injected stalls push cem past its per-run timeout, and BestEffort
// turns what would be a DeadlineExceeded failure into a completed trial
// flagged Degraded.
func TestSuiteChaosStallDegradesBestEffort(t *testing.T) {
	res, err := Suite(context.Background(), SuiteOptions{
		Options: Options{
			Size:       SizeSmall,
			BestEffort: true,
			Fault: &FaultOptions{
				Seed:     3,
				Stall:    1,
				StallFor: 200 * time.Millisecond,
				Only:     []string{"cem"},
			},
		},
		Kernels:  []string{"cem"},
		Parallel: 1,
		// Small cem runs 3 iterations with a 200ms stall after each; the
		// 300ms deadline expires during iteration 2, well after the first
		// iteration completes.
		Timeout:         300 * time.Millisecond,
		ContinueOnError: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	kr := res.Kernels[0]
	if kr.Err != nil {
		t.Fatalf("err = %v, want nil (degraded, not failed)", kr.Err)
	}
	if !kr.Result.Degraded {
		t.Error("Result.Degraded = false, want true")
	}
	if kr.Trials == nil || kr.Trials.Degraded != 1 {
		t.Errorf("Trials = %+v, want Degraded = 1", kr.Trials)
	}
	stalls := 0
	for _, f := range kr.Result.Faults {
		if f.Kind == "stall" {
			stalls++
		}
	}
	if stalls == 0 {
		t.Error("no stall events recorded, want at least one")
	}
}

// TestRunRecoversPanicDirect checks the single-run path (no suite) also
// converts an injected panic to a structured error with Trial -1.
func TestRunRecoversPanicDirect(t *testing.T) {
	_, err := Run("cem", Options{
		Size:  SizeSmall,
		Fault: &FaultOptions{Panic: 1},
	})
	var ke *KernelError
	if !errors.As(err, &ke) {
		t.Fatalf("err = %v (%T), want *KernelError", err, err)
	}
	if ke.Trial != -1 {
		t.Errorf("Trial = %d, want -1 outside a suite", ke.Trial)
	}
	if !strings.Contains(ke.Fault, "injected panic") {
		t.Errorf("Fault = %q, want injected-panic attribution", ke.Fault)
	}
}

// TestValidateRejectsBadOptions checks the public Validate path reaches the
// kernel config validators without running anything.
func TestValidateRejectsBadOptions(t *testing.T) {
	if err := Validate("cem", Options{Size: SizeSmall}); err != nil {
		t.Fatalf("valid options rejected: %v", err)
	}
	if err := Validate("cem", Options{Size: SizeSmall, Variant: "bogus"}); err == nil {
		t.Error("bogus variant accepted by Validate")
	}
	if err := Validate("no-such-kernel", Options{}); err == nil {
		t.Error("unknown kernel accepted by Validate")
	}
}
