package rtrbench

import (
	"context"
	"fmt"

	"repro/internal/core/srec"
	"repro/internal/profile"
)

func init() {
	registerSpec(Info{
		Name: "srec", Index: 3, Stage: Perception,
		Description:      "3D scene reconstruction by ICP registration of depth scans",
		PaperBottlenecks: []string{"Point cloud operations", "matrix operations"},
		ExpectDominant:   []string{"correspondence"},
	}, spec[srec.Config]{
		configure: func(o Options) (srec.Config, error) {
			cfg := srec.DefaultConfig()
			cfg.Seed = o.seed()
			if o.Size == SizeSmall {
				cfg.Cols, cfg.Rows = 80, 60
				cfg.Iterations = 12
			}
			switch o.Variant {
			case "":
			case "plane":
				cfg.Method = srec.PointToPlane
			default:
				return cfg, fmt.Errorf("srec: unknown variant %q", o.Variant)
			}
			return cfg, nil
		},
		// Registration residuals and the ICP iteration/correspondence counts.
		digest: digestOf("rmse_m", "rot_error_rad", "trans_error_m",
			"iterations", "nn_queries", "source_points"),
		run: func(ctx context.Context, cfg srec.Config, p *profile.Profile) (Result, error) {
			kr, err := srec.Run(ctx, cfg, p)
			res := newResult("srec", Perception, p.Snapshot())
			res.Metrics["rmse_m"] = kr.RMSE
			res.Metrics["rot_error_rad"] = kr.RotationError
			res.Metrics["trans_error_m"] = kr.TranslationError
			res.Metrics["iterations"] = float64(kr.Iterations)
			res.Metrics["nn_queries"] = float64(kr.NNQueries)
			res.Metrics["source_points"] = float64(kr.SourcePoints)
			return res, err
		},
	})
}
