package rtrbench

import (
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	ks := Kernels()
	if len(ks) != 16 {
		t.Fatalf("registry has %d kernels, want 16", len(ks))
	}
	// Table I order and indices.
	wantNames := []string{
		"pfl", "ekfslam", "srec", "pp2d", "pp3d", "movtar", "prm", "rrt",
		"rrtstar", "rrtpp", "sym-blkw", "sym-fext", "dmp", "mpc", "cem", "bo",
	}
	for i, k := range ks {
		if k.Name != wantNames[i] {
			t.Fatalf("kernel %d = %q, want %q", i, k.Name, wantNames[i])
		}
		if k.Index != i+1 {
			t.Fatalf("kernel %q index %d, want %d", k.Name, k.Index, i+1)
		}
		if k.Description == "" || len(k.PaperBottlenecks) == 0 || len(k.ExpectDominant) == 0 {
			t.Fatalf("kernel %q missing metadata", k.Name)
		}
	}
}

func TestStagesMatchTable1(t *testing.T) {
	wantStages := map[string]Stage{
		"pfl": Perception, "ekfslam": Perception, "srec": Perception,
		"pp2d": Planning, "pp3d": Planning, "movtar": Planning,
		"prm": Planning, "rrt": Planning, "rrtstar": Planning,
		"rrtpp": Planning, "sym-blkw": Planning, "sym-fext": Planning,
		"dmp": Control, "mpc": Control, "cem": Control, "bo": Control,
	}
	for _, k := range Kernels() {
		if k.Stage != wantStages[k.Name] {
			t.Fatalf("kernel %q stage %q, want %q", k.Name, k.Stage, wantStages[k.Name])
		}
	}
}

func TestLookup(t *testing.T) {
	if _, ok := Lookup("pfl"); !ok {
		t.Fatal("pfl not found")
	}
	if _, ok := Lookup("nonexistent"); ok {
		t.Fatal("bogus kernel found")
	}
}

func TestRunUnknownKernel(t *testing.T) {
	if _, err := Run("nonexistent", Options{}); err == nil {
		t.Fatal("unknown kernel did not error")
	}
}

// TestEveryKernelRunsSmall is the suite-level integration test: all sixteen
// kernels execute error-free at SizeSmall, produce a non-empty ROI and
// phase breakdown, and their measured dominant phase confirms the paper's
// Table I characterization.
func TestEveryKernelRunsSmall(t *testing.T) {
	for _, k := range Kernels() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			res, err := Run(k.Name, Options{Size: SizeSmall, Seed: 1})
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if res.Kernel != k.Name || res.Stage != k.Stage {
				t.Fatalf("result identity: %q/%q", res.Kernel, res.Stage)
			}
			if res.ROI <= 0 {
				t.Fatal("empty ROI")
			}
			if len(res.Phases) == 0 {
				t.Fatal("no phases recorded")
			}
			dom := res.Dominant()
			okDom := false
			for _, e := range k.ExpectDominant {
				if e == dom {
					okDom = true
				}
			}
			if !okDom {
				t.Fatalf("dominant phase %q not in expected set %v (Table I mismatch)",
					dom, k.ExpectDominant)
			}
			if len(res.Metrics) == 0 {
				t.Fatal("no metrics recorded")
			}
		})
	}
}

func TestRunAll(t *testing.T) {
	results, err := RunAll(Options{Size: SizeSmall, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 16 {
		t.Fatalf("RunAll returned %d results", len(results))
	}
}

func TestFractionsWithinROI(t *testing.T) {
	res, err := Run("pp2d", Options{Size: SizeSmall, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, p := range res.Phases {
		if p.Fraction < 0 || p.Fraction > 1.001 {
			t.Fatalf("phase %q fraction %v", p.Name, p.Fraction)
		}
		sum += p.Fraction
	}
	if sum > 1.01 {
		t.Fatalf("fractions sum to %v > 1", sum)
	}
}

func TestVariantSelectsWorkspace(t *testing.T) {
	clutter, err := Run("rrt", Options{Size: SizeSmall, Seed: 1, Variant: "mapc"})
	if err != nil {
		t.Fatal(err)
	}
	free, err := Run("rrt", Options{Size: SizeSmall, Seed: 1, Variant: "mapf"})
	if err != nil {
		t.Fatal(err)
	}
	// The free map needs far fewer samples than the cluttered one.
	if free.Metric("samples") >= clutter.Metric("samples") {
		t.Fatalf("mapf samples %v >= mapc samples %v",
			free.Metric("samples"), clutter.Metric("samples"))
	}
}

func TestSeriesExposed(t *testing.T) {
	res, err := Run("cem", Options{Size: SizeSmall, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series["rewards"]) == 0 || len(res.Series["best_per_iter"]) == 0 {
		t.Fatal("cem reward series missing (needed for Fig. 18)")
	}
	res, err = Run("dmp", Options{Size: SizeSmall, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series["velocity"]) == 0 || len(res.Series["traj_x"]) == 0 {
		t.Fatal("dmp series missing (needed for Fig. 15)")
	}
}

// TestRRTFamilyOrdering verifies the §V.9-10 headline result end-to-end
// through the public API: RRT* is slower but shorter; RRT-PP lands between.
func TestRRTFamilyOrdering(t *testing.T) {
	var rrtCost, ppCost, starCost float64
	var rrtTime, starTime float64
	const seeds = 3
	for seed := int64(1); seed <= seeds; seed++ {
		opts := Options{Size: SizeSmall, Seed: seed}
		a, err := Run("rrt", opts)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run("rrtpp", opts)
		if err != nil {
			t.Fatal(err)
		}
		c, err := Run("rrtstar", opts)
		if err != nil {
			t.Fatal(err)
		}
		rrtCost += a.Metric("path_cost_rad")
		ppCost += b.Metric("path_cost_rad")
		starCost += c.Metric("path_cost_rad")
		rrtTime += a.ROI.Seconds()
		starTime += c.ROI.Seconds()
	}
	if !(starCost < ppCost && ppCost < rrtCost) {
		t.Fatalf("cost ordering violated: rrt=%.2f pp=%.2f star=%.2f",
			rrtCost/seeds, ppCost/seeds, starCost/seeds)
	}
	if starTime <= rrtTime {
		t.Fatalf("RRT* (%vs) not slower than RRT (%vs)", starTime, rrtTime)
	}
}

// TestKernelVariants exercises the extension variants exposed through the
// registry: point-to-plane ICP and RRT-Connect.
func TestKernelVariants(t *testing.T) {
	plane, err := Run("srec", Options{Size: SizeSmall, Seed: 1, Variant: "plane"})
	if err != nil {
		t.Fatal(err)
	}
	point, err := Run("srec", Options{Size: SizeSmall, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if plane.Metric("trans_error_m") >= point.Metric("trans_error_m") {
		t.Fatalf("plane residual %.4f !< point %.4f",
			plane.Metric("trans_error_m"), point.Metric("trans_error_m"))
	}

	conn, err := Run("rrt", Options{Size: SizeSmall, Seed: 1, Variant: "connect"})
	if err != nil {
		t.Fatal(err)
	}
	base, err := Run("rrt", Options{Size: SizeSmall, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if conn.Metric("samples") >= base.Metric("samples") {
		t.Fatalf("connect samples %v !< rrt %v",
			conn.Metric("samples"), base.Metric("samples"))
	}
}

// TestSymBranchingRatio verifies §V.12 through the public API: the
// firefighting domain exposes more parallelism (higher branching).
func TestSymBranchingRatio(t *testing.T) {
	blkw, err := Run("sym-blkw", Options{Size: SizeDefault})
	if err != nil {
		t.Fatal(err)
	}
	fext, err := Run("sym-fext", Options{Size: SizeDefault})
	if err != nil {
		t.Fatal(err)
	}
	if fext.Metric("avg_branching") <= blkw.Metric("avg_branching") {
		t.Fatalf("branching fext=%.2f !> blkw=%.2f",
			fext.Metric("avg_branching"), blkw.Metric("avg_branching"))
	}
}
