package rtrbench

import (
	"repro/internal/core/sym"
)

func init() {
	registerSpec(Info{
		Name: "sym-blkw", Index: 11, Stage: Planning,
		Description:      "Symbolic planning: blocks world",
		PaperBottlenecks: []string{"Graph search", "string manipulation"},
		ExpectDominant:   []string{"search", "strings"},
	}, spec[sym.Config]{
		configure: func(o Options) (sym.Config, error) {
			cfg := sym.DefaultConfig(sym.BlocksWorld)
			if o.Size == SizeSmall {
				cfg.Blocks = 5
			}
			return cfg, noVariant("sym-blkw", o)
		},
		// Plan length and the expansion/string-work counts shared by the
		// symbolic planners (see symDigest).
		digest: symDigest,
		run:    symRun("sym-blkw"),
	})
}
