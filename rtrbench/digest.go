package rtrbench

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"

	"repro/internal/golden"
)

// digestFn reduces a finished Result to the kernel's deterministic digest
// fields. Every adapter in kernel_*.go installs one (registerSpec refuses a
// spec without it): the kernel owns the decision of which of its outputs are
// correctness-bearing.
//
// Ownership rules (enforced by convention here, by construction in
// internal/golden): a digest carries operation counts and final-state
// summaries — path cost and node counts for the planners, pose/landmark
// error checksums for the estimators, solve residuals for the controllers,
// series checksums for the learners. It must NEVER carry wall-clock
// quantities (ROI, step latencies, deadline misses) or anything read from a
// map in iteration order: the digest of a run is required to be
// bit-identical across machines, Parallel=1 vs Parallel=8, trial execution
// order, and profiling on vs profile.Disabled(). Result.Counters are
// recorded through the profile, which drops them when instrumentation is
// off, so digests draw only on Result.Metrics and Result.Series — the
// kernel-native outputs that exist on every run.
type digestFn func(Result) []golden.Field

// metricFields canonically formats the named metrics that exist on r.
// Metrics a kernel stopped reporting simply vanish from the digest, where
// the golden diff names them as missing — no silent shrinkage.
func metricFields(r Result, names ...string) []golden.Field {
	fields := make([]golden.Field, 0, len(names))
	for _, name := range names {
		if v, ok := r.Metrics[name]; ok {
			fields = append(fields, golden.Field{Name: name, Value: golden.Float(v)})
		}
	}
	return fields
}

// seriesFields reduces each named series to a length-prefixed FNV-64a
// checksum over the IEEE-754 bit patterns: a drift anywhere in a reward
// curve or trajectory flips the digest without storing the whole series.
func seriesFields(r Result, names ...string) []golden.Field {
	fields := make([]golden.Field, 0, len(names))
	for _, name := range names {
		s, ok := r.Series[name]
		if !ok {
			continue
		}
		h := fnv.New64a()
		var buf [8]byte
		binary.BigEndian.PutUint64(buf[:], uint64(len(s)))
		h.Write(buf[:])
		for _, v := range s {
			binary.BigEndian.PutUint64(buf[:], math.Float64bits(v))
			h.Write(buf[:])
		}
		fields = append(fields, golden.Field{
			Name:  "series." + name,
			Value: fmt.Sprintf("fnv64a:%016x:len%d", h.Sum64(), len(s)),
		})
	}
	return fields
}

// digestOf is the common adapter hook: a fixed metric list.
func digestOf(metrics ...string) digestFn {
	return func(r Result) []golden.Field { return metricFields(r, metrics...) }
}

// rrtDigest is shared by the rrt/rrtstar/rrtpp adapters (see rrtResult).
var rrtDigest = digestOf("found", "path_cost_rad", "samples", "tree_nodes",
	"nn_queries", "dist_calls", "seg_checks", "rewires", "shortcuts")

// symDigest is shared by the sym-blkw/sym-fext adapters (see symRun).
var symDigest = digestOf("found", "plan_length", "expanded", "generated",
	"string_bytes", "avg_branching", "ground_actions")

// digestResult reduces a finished Result to its kernel's digest via the
// adapter's hook. The digest's Seed is left zero; callers that know the run
// seed (Verify, DigestSum) stamp it for the golden-file identity.
func digestResult(r Result) (golden.Digest, error) {
	info, ok := Lookup(r.Kernel)
	if !ok {
		return golden.Digest{}, fmt.Errorf("rtrbench: digest of unknown kernel %q", r.Kernel)
	}
	d := golden.Digest{Kernel: r.Kernel, Fields: info.digest(r)}
	golden.SortFields(d.Fields)
	return d, nil
}

// DigestSum reduces a finished Result to its kernel's golden digest,
// stamps it with the run seed, and returns the canonical SHA-256 identity
// (hex). This is the content address of the run: two runs with the same
// sum computed the same answer, which is what lets rtrbenchd serve repeat
// submissions from its result store without re-executing.
func DigestSum(r Result, seed int64) (string, error) {
	d, err := digestResult(r)
	if err != nil {
		return "", err
	}
	d.Seed = seed
	return golden.Sum(d)
}
