package rtrbench

import "testing"

// FuzzVariantParsing drives every kernel's variant-string parser (via the
// run-free Validate path) with arbitrary input. Variants include numeric
// parses (movtar's target-region size, srec's dictionary scale), so this is
// the suite's main untrusted-string surface: any input must produce either
// a clean config or an error — never a panic and never a config that fails
// validation only later.
func FuzzVariantParsing(f *testing.F) {
	f.Add(0, "")
	f.Add(1, "connect")
	f.Add(4, "anytime")
	f.Add(7, "4")
	f.Add(7, "-1")
	f.Add(7, "999999999999999999999999")
	f.Add(9, "1e309")
	f.Add(12, "no-such-variant")
	f.Add(3, "ANYTIME")
	f.Add(5, "16\x00")
	f.Fuzz(func(t *testing.T, idx int, variant string) {
		ks := Kernels()
		k := ks[((idx%len(ks))+len(ks))%len(ks)]
		// Must not panic; an error is the correct answer for garbage.
		err := Validate(k.Name, Options{Size: SizeSmall, Variant: variant})
		if err != nil {
			return
		}
		// An accepted variant must also be accepted a second time —
		// parsing cannot be stateful.
		if err := Validate(k.Name, Options{Size: SizeSmall, Variant: variant}); err != nil {
			t.Fatalf("%s: variant %q accepted once then rejected: %v", k.Name, variant, err)
		}
	})
}
