package rtrbench

import (
	"context"

	"repro/internal/core/rrt"
	"repro/internal/profile"
)

func init() {
	registerSpec(Info{
		Name: "rrtpp", Index: 10, Stage: Planning,
		Description:      "RRT with shortcut post-processing",
		PaperBottlenecks: []string{"Collision detection", "nearest neighbor search"},
		ExpectDominant:   []string{"collision"},
	}, spec[rrt.Config]{
		configure: func(o Options) (rrt.Config, error) {
			return rrtConfig("rrtpp", o, o.Variant)
		},
		// Path cost plus the sampling/NN/shortcut operation counts shared
		// by the RRT family (see rrtDigest).
		digest: rrtDigest,
		run: func(ctx context.Context, cfg rrt.Config, p *profile.Profile) (Result, error) {
			kr, err := rrt.RunPP(ctx, cfg, p)
			return rrtResult("rrtpp", p, kr), err
		},
	})
}
