package rtrbench

import (
	"context"

	"repro/internal/core/ekfslam"
	"repro/internal/fault"
	"repro/internal/profile"
)

func init() {
	registerSpec(Info{
		Name: "ekfslam", Index: 2, Stage: Perception,
		Description:      "Simultaneous localization and mapping with an Extended Kalman Filter",
		PaperBottlenecks: []string{"Matrix operations"},
		ExpectDominant:   []string{"matrix"},
	}, spec[ekfslam.Config]{
		configure: func(o Options) (ekfslam.Config, error) {
			cfg := ekfslam.DefaultConfig()
			cfg.Seed = o.seed()
			cfg.Workers = o.Workers
			if o.Size == SizeSmall {
				cfg.Steps = 120
			}
			return cfg, noVariant("ekfslam", o)
		},
		inject: func(cfg *ekfslam.Config, in *fault.Injector) { cfg.Sensor.Fault = in },
		// Final pose/landmark error checksums plus the update/rejection
		// counts: any drift in the filter math moves at least one of these.
		digest: digestOf("pose_error_m", "landmark_error_m", "landmarks_seen",
			"updates", "rejected", "uncertainty"),
		run: func(ctx context.Context, cfg ekfslam.Config, p *profile.Profile) (Result, error) {
			kr, err := ekfslam.Run(ctx, cfg, p)
			res := newResult("ekfslam", Perception, p.Snapshot())
			res.Metrics["pose_error_m"] = kr.PoseError
			res.Metrics["landmark_error_m"] = kr.MeanLandmarkError
			res.Metrics["landmarks_seen"] = float64(kr.LandmarksSeen)
			res.Metrics["updates"] = float64(kr.Updates)
			res.Metrics["rejected"] = float64(kr.Rejected)
			res.Metrics["uncertainty"] = kr.Uncertainty
			return res, err
		},
	})
}
