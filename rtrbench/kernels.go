package rtrbench

import (
	"repro/internal/arm"
	"repro/internal/core/bo"
	"repro/internal/core/cem"
	"repro/internal/core/dmp"
	"repro/internal/core/ekfslam"
	"repro/internal/core/movtar"
	"repro/internal/core/mpc"
	"repro/internal/core/pfl"
	"repro/internal/core/pp2d"
	"repro/internal/core/pp3d"
	"repro/internal/core/prm"
	"repro/internal/core/rrt"
	"repro/internal/core/srec"
	"repro/internal/core/sym"
	"repro/internal/profile"

	"strconv"
)

// newProfile builds a kernel profile configured from the run options
// (deadline and step-latency tracking).
func newProfile(o Options) *profile.Profile {
	p := profile.New()
	if o.Deadline > 0 {
		p.SetDeadline(o.Deadline)
	} else if o.StepLatency {
		p.EnableSteps()
	}
	return p
}

// newResult converts an internal profile report into the public Result.
func newResult(kernel string, stage Stage, rep profile.Report) Result {
	res := Result{
		Kernel:       kernel,
		Stage:        stage,
		ROI:          rep.ROI,
		Counters:     rep.Counters,
		Metrics:      map[string]float64{},
		Series:       map[string][]float64{},
		Inconsistent: rep.Inconsistent,
	}
	if rep.Steps.Count > 0 || rep.Steps.Deadline > 0 {
		res.Steps = &StepStats{
			Count:    rep.Steps.Count,
			Min:      rep.Steps.Min,
			Mean:     rep.Steps.Mean,
			P50:      rep.Steps.P50,
			P95:      rep.Steps.P95,
			P99:      rep.Steps.P99,
			Max:      rep.Steps.Max,
			Deadline: rep.Steps.Deadline,
			Misses:   rep.Steps.Misses,
		}
	}
	for _, ph := range rep.Phases {
		res.Phases = append(res.Phases, Phase{
			Name:     ph.Name,
			Duration: ph.Total,
			Calls:    ph.Calls,
			Fraction: rep.Fraction(ph.Name),
		})
	}
	return res
}

// armWorkspace maps the "mapf"/"mapc" variant strings used by the
// sampling-based planners to the paper's Fig. 9 workspaces. The default is
// Map-C (cluttered).
func armWorkspace(variant string) *arm.Workspace {
	switch variant {
	case "mapf", "free", "f":
		return arm.MapF()
	default:
		return arm.MapC()
	}
}

func init() {
	register(Info{
		Name: "pfl", Index: 1, Stage: Perception,
		Description:      "Particle filter localization with odometry and a laser rangefinder",
		PaperBottlenecks: []string{"Ray-casting"},
		ExpectDominant:   []string{"raycast"},
		run: func(o Options) (Result, error) {
			cfg := pfl.DefaultConfig()
			cfg.Seed = o.seed()
			if o.Size == SizeSmall {
				cfg.Particles = 300
				cfg.Steps = 25
				m := pfl.DefaultMap(cfg.Seed)
				cfg.Map = m
			}
			if o.Variant != "" {
				if reg, err := strconv.Atoi(o.Variant); err == nil {
					cfg.Region = reg
				}
			}
			p := newProfile(o)
			kr, err := pfl.Run(cfg, p)
			res := newResult("pfl", Perception, p.Snapshot())
			res.Metrics["position_error_m"] = kr.PositionError
			res.Metrics["heading_error_rad"] = kr.HeadingError
			res.Metrics["raycasts"] = float64(kr.Raycasts)
			res.Metrics["cells_visited"] = float64(kr.CellsVisited)
			res.Metrics["ess"] = kr.EffectiveSampleSize
			return res, err
		},
	})

	register(Info{
		Name: "ekfslam", Index: 2, Stage: Perception,
		Description:      "Simultaneous localization and mapping with an Extended Kalman Filter",
		PaperBottlenecks: []string{"Matrix operations"},
		ExpectDominant:   []string{"matrix"},
		run: func(o Options) (Result, error) {
			cfg := ekfslam.DefaultConfig()
			cfg.Seed = o.seed()
			if o.Size == SizeSmall {
				cfg.Steps = 120
			}
			p := newProfile(o)
			kr, err := ekfslam.Run(cfg, p)
			res := newResult("ekfslam", Perception, p.Snapshot())
			res.Metrics["pose_error_m"] = kr.PoseError
			res.Metrics["landmark_error_m"] = kr.MeanLandmarkError
			res.Metrics["landmarks_seen"] = float64(kr.LandmarksSeen)
			res.Metrics["updates"] = float64(kr.Updates)
			res.Metrics["uncertainty"] = kr.Uncertainty
			return res, err
		},
	})

	register(Info{
		Name: "srec", Index: 3, Stage: Perception,
		Description:      "3D scene reconstruction by ICP registration of depth scans",
		PaperBottlenecks: []string{"Point cloud operations", "matrix operations"},
		ExpectDominant:   []string{"correspondence"},
		run: func(o Options) (Result, error) {
			cfg := srec.DefaultConfig()
			cfg.Seed = o.seed()
			if o.Size == SizeSmall {
				cfg.Cols, cfg.Rows = 80, 60
				cfg.Iterations = 12
			}
			if o.Variant == "plane" {
				cfg.Method = srec.PointToPlane
			}
			p := newProfile(o)
			kr, err := srec.Run(cfg, p)
			res := newResult("srec", Perception, p.Snapshot())
			res.Metrics["rmse_m"] = kr.RMSE
			res.Metrics["rot_error_rad"] = kr.RotationError
			res.Metrics["trans_error_m"] = kr.TranslationError
			res.Metrics["iterations"] = float64(kr.Iterations)
			res.Metrics["nn_queries"] = float64(kr.NNQueries)
			res.Metrics["source_points"] = float64(kr.SourcePoints)
			return res, err
		},
	})

	register(Info{
		Name: "pp2d", Index: 4, Stage: Planning,
		Description:      "2D path planning for a car footprint with A*",
		PaperBottlenecks: []string{"Collision detection"},
		ExpectDominant:   []string{"collision"},
		run: func(o Options) (Result, error) {
			cfg := pp2d.DefaultConfig()
			cfg.Seed = o.seed()
			size := 512
			if o.Size == SizeSmall {
				size = 160
			}
			cfg.Map = pp2d.DefaultMap(size, cfg.Seed)
			p := newProfile(o)
			kr, err := pp2d.Run(cfg, p)
			res := newResult("pp2d", Planning, p.Snapshot())
			res.Metrics["found"] = boolMetric(kr.Found)
			res.Metrics["path_length_m"] = kr.PathLength
			res.Metrics["expanded"] = float64(kr.Expanded)
			res.Metrics["collision_checks"] = float64(kr.Checks)
			res.Metrics["cells_touched"] = float64(kr.Cells)
			return res, err
		},
	})

	register(Info{
		Name: "pp3d", Index: 5, Stage: Planning,
		Description:      "3D path planning for a UAV with A*",
		PaperBottlenecks: []string{"Collision detection", "graph search"},
		ExpectDominant:   []string{"collision", "search"},
		run: func(o Options) (Result, error) {
			cfg := pp3d.DefaultConfig()
			cfg.Seed = o.seed()
			if o.Size == SizeSmall {
				cfg.Map = pp3d.DefaultMap(64, 64, 16, cfg.Seed)
			}
			p := newProfile(o)
			kr, err := pp3d.Run(cfg, p)
			res := newResult("pp3d", Planning, p.Snapshot())
			res.Metrics["found"] = boolMetric(kr.Found)
			res.Metrics["path_length"] = kr.PathLength
			res.Metrics["expanded"] = float64(kr.Expanded)
			res.Metrics["collision_checks"] = float64(kr.Checks)
			return res, err
		},
	})

	register(Info{
		Name: "movtar", Index: 6, Stage: Planning,
		Description:      "Catching a moving target with Weighted A* over space-time",
		PaperBottlenecks: []string{"Input-dependent"},
		ExpectDominant:   []string{"search", "heuristic"},
		run: func(o Options) (Result, error) {
			cfg := movtar.DefaultConfig()
			cfg.Seed = o.seed()
			if o.Size == SizeSmall {
				cfg.Size = 96
			}
			if o.Variant != "" {
				if n, err := strconv.Atoi(o.Variant); err == nil && n > 8 {
					cfg.Size = n
				}
			}
			p := newProfile(o)
			kr, err := movtar.Run(cfg, p)
			res := newResult("movtar", Planning, p.Snapshot())
			res.Metrics["found"] = boolMetric(kr.Found)
			res.Metrics["catch_time"] = float64(kr.CatchTime)
			res.Metrics["path_cost"] = kr.PathCost
			res.Metrics["expanded"] = float64(kr.Expanded)
			res.Metrics["heuristic_cells"] = float64(kr.HeuristicCells)
			return res, err
		},
	})

	register(Info{
		Name: "prm", Index: 7, Stage: Planning,
		Description:      "Probabilistic roadmap planning for a 5-DoF arm",
		PaperBottlenecks: []string{"Graph search", "L2-norm calculations"},
		ExpectDominant:   []string{"connect", "sample", "query"},
		run: func(o Options) (Result, error) {
			cfg := prm.DefaultConfig()
			cfg.Seed = o.seed()
			if o.Size == SizeSmall {
				cfg.Samples = 700
			}
			cfg.Workspace = armWorkspace(o.Variant)
			p := newProfile(o)
			kr, err := prm.Run(cfg, p)
			res := newResult("prm", Planning, p.Snapshot())
			res.Metrics["found"] = boolMetric(kr.Found)
			res.Metrics["path_cost_rad"] = kr.PathCost
			res.Metrics["roadmap_nodes"] = float64(kr.RoadmapNodes)
			res.Metrics["roadmap_edges"] = float64(kr.RoadmapEdges)
			res.Metrics["expanded"] = float64(kr.Expanded)
			res.Metrics["l2_norms"] = float64(kr.L2Norms)
			res.Metrics["seg_checks"] = float64(kr.SegChecks)
			return res, err
		},
	})

	register(Info{
		Name: "rrt", Index: 8, Stage: Planning,
		Description:      "Rapidly-exploring random tree planning for a 5-DoF arm",
		PaperBottlenecks: []string{"Collision detection", "nearest neighbor search"},
		ExpectDominant:   []string{"collision"},
		run: func(o Options) (Result, error) {
			cfg := rrtConfig(o)
			p := newProfile(o)
			// The "connect" variant runs the bidirectional RRT-Connect
			// extension (see internal/core/rrt RunConnect).
			runFn := rrt.Run
			if o.Variant == "connect" {
				runFn = rrt.RunConnect
			}
			kr, err := runFn(cfg, p)
			return rrtResult("rrt", p, kr), err
		},
	})

	register(Info{
		Name: "rrtstar", Index: 9, Stage: Planning,
		Description:      "Asymptotically optimal RRT* with neighborhood rewiring",
		PaperBottlenecks: []string{"Collision detection", "nearest neighbor search"},
		ExpectDominant:   []string{"collision", "nn"},
		run: func(o Options) (Result, error) {
			cfg := rrtConfig(o)
			p := newProfile(o)
			kr, err := rrt.RunStar(cfg, p)
			return rrtResult("rrtstar", p, kr), err
		},
	})

	register(Info{
		Name: "rrtpp", Index: 10, Stage: Planning,
		Description:      "RRT with shortcut post-processing",
		PaperBottlenecks: []string{"Collision detection", "nearest neighbor search"},
		ExpectDominant:   []string{"collision"},
		run: func(o Options) (Result, error) {
			cfg := rrtConfig(o)
			p := newProfile(o)
			kr, err := rrt.RunPP(cfg, p)
			return rrtResult("rrtpp", p, kr), err
		},
	})

	register(Info{
		Name: "sym-blkw", Index: 11, Stage: Planning,
		Description:      "Symbolic planning: blocks world",
		PaperBottlenecks: []string{"Graph search", "string manipulation"},
		ExpectDominant:   []string{"search", "strings"},
		run: func(o Options) (Result, error) {
			cfg := sym.DefaultConfig(sym.BlocksWorld)
			if o.Size == SizeSmall {
				cfg.Blocks = 5
			}
			p := newProfile(o)
			kr, err := sym.Run(cfg, p)
			return symResult("sym-blkw", p, kr), err
		},
	})

	register(Info{
		Name: "sym-fext", Index: 12, Stage: Planning,
		Description:      "Symbolic planning: firefighting robots",
		PaperBottlenecks: []string{"Graph search", "string manipulation"},
		ExpectDominant:   []string{"search", "strings"},
		run: func(o Options) (Result, error) {
			cfg := sym.DefaultConfig(sym.Firefighter)
			if o.Size == SizeSmall {
				cfg.Locations = 4
				cfg.Pours = 2
			}
			p := newProfile(o)
			kr, err := sym.Run(cfg, p)
			return symResult("sym-fext", p, kr), err
		},
	})

	register(Info{
		Name: "dmp", Index: 13, Stage: Control,
		Description:      "Dynamic movement primitives trajectory generation",
		PaperBottlenecks: []string{"Fine-grained serialization"},
		ExpectDominant:   []string{"rollout", "train"},
		run: func(o Options) (Result, error) {
			cfg := dmp.DefaultConfig()
			if o.Size == SizeSmall {
				cfg.Steps = 600
			}
			p := newProfile(o)
			kr, err := dmp.Run(cfg, p)
			res := newResult("dmp", Control, p.Snapshot())
			if err == nil {
				res.Metrics["track_rmse_m"] = kr.TrackRMSE
				res.Metrics["endpoint_error_m"] = kr.EndpointError
				res.Metrics["serial_steps"] = float64(kr.SerialSteps)
				res.Series["velocity"] = kr.Velocity
				xs := make([]float64, len(kr.Generated.Points))
				ys := make([]float64, len(kr.Generated.Points))
				for i, pt := range kr.Generated.Points {
					xs[i], ys[i] = pt.P.X, pt.P.Y
				}
				res.Series["traj_x"] = xs
				res.Series["traj_y"] = ys
			}
			return res, err
		},
	})

	register(Info{
		Name: "mpc", Index: 14, Stage: Control,
		Description:      "Model predictive control tracking a reference trajectory",
		PaperBottlenecks: []string{"Optimization"},
		ExpectDominant:   []string{"optimize"},
		run: func(o Options) (Result, error) {
			cfg := mpc.DefaultConfig()
			if o.Size == SizeSmall {
				cfg.Steps = 50
				cfg.Horizon = 10
				cfg.Iterations = 15
			}
			p := newProfile(o)
			kr, err := mpc.Run(cfg, p)
			res := newResult("mpc", Control, p.Snapshot())
			res.Metrics["track_rmse_m"] = kr.TrackRMSE
			res.Metrics["max_deviation_m"] = kr.MaxDeviation
			res.Metrics["vel_violations"] = float64(kr.VelViolations)
			res.Metrics["rollouts"] = float64(kr.Rollouts)
			return res, err
		},
	})

	register(Info{
		Name: "cem", Index: 15, Stage: Control,
		Description:      "Cross-entropy method learning a ball-throwing policy",
		PaperBottlenecks: []string{"Sort"},
		ExpectDominant:   []string{"sort", "sample", "update"},
		run: func(o Options) (Result, error) {
			cfg := cem.DefaultConfig()
			cfg.Seed = o.seed()
			p := newProfile(o)
			kr, err := cem.Run(cfg, p)
			res := newResult("cem", Control, p.Snapshot())
			res.Metrics["best_reward"] = kr.BestReward
			res.Metrics["evals"] = float64(kr.Evals)
			res.Series["rewards"] = kr.Rewards
			res.Series["best_per_iter"] = kr.BestPerIter
			return res, err
		},
	})

	register(Info{
		Name: "bo", Index: 16, Stage: Control,
		Description:      "Bayesian optimization (GP-UCB) of the throwing policy",
		PaperBottlenecks: []string{"Sort"},
		ExpectDominant:   []string{"acquisition", "gp-fit", "sort"},
		run: func(o Options) (Result, error) {
			cfg := bo.DefaultConfig()
			cfg.Seed = o.seed()
			if o.Size == SizeSmall {
				cfg.Iterations = 15
				cfg.Candidates = 400
			}
			p := newProfile(o)
			kr, err := bo.Run(cfg, p)
			res := newResult("bo", Control, p.Snapshot())
			res.Metrics["best_reward"] = kr.BestReward
			res.Metrics["evals"] = float64(kr.Evals)
			res.Metrics["gp_fits"] = float64(kr.GPFits)
			res.Metrics["predictions"] = float64(kr.Predictions)
			res.Series["rewards"] = kr.Rewards
			return res, err
		},
	})
}

func boolMetric(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func rrtConfig(o Options) rrt.Config {
	cfg := rrt.DefaultConfig()
	cfg.Seed = o.seed()
	if o.Size == SizeSmall {
		cfg.MaxSamples = 10000
	}
	cfg.Workspace = armWorkspace(o.Variant)
	return cfg
}

func rrtResult(name string, p *profile.Profile, kr rrt.Result) Result {
	res := newResult(name, Planning, p.Snapshot())
	res.Metrics["found"] = boolMetric(kr.Found)
	res.Metrics["path_cost_rad"] = kr.PathCost
	res.Metrics["samples"] = float64(kr.Samples)
	res.Metrics["tree_nodes"] = float64(kr.TreeNodes)
	res.Metrics["nn_queries"] = float64(kr.NNQueries)
	res.Metrics["dist_calls"] = float64(kr.DistCalls)
	res.Metrics["seg_checks"] = float64(kr.SegChecks)
	res.Metrics["rewires"] = float64(kr.Rewires)
	res.Metrics["shortcuts"] = float64(kr.Shortcuts)
	return res
}

func symResult(name string, p *profile.Profile, kr sym.Result) Result {
	res := newResult(name, Planning, p.Snapshot())
	res.Metrics["found"] = boolMetric(kr.Found)
	res.Metrics["plan_length"] = float64(kr.PlanLength)
	res.Metrics["expanded"] = float64(kr.Stats.Expanded)
	res.Metrics["generated"] = float64(kr.Stats.Generated)
	res.Metrics["string_bytes"] = float64(kr.Stats.StringBytes)
	res.Metrics["avg_branching"] = kr.Stats.AvgBranching()
	res.Metrics["ground_actions"] = float64(kr.GroundActions)
	return res
}
