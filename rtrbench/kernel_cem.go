package rtrbench

import (
	"context"

	"repro/internal/core/cem"
	"repro/internal/golden"
	"repro/internal/profile"
)

func init() {
	registerSpec(Info{
		Name: "cem", Index: 15, Stage: Control,
		Description:      "Cross-entropy method learning a ball-throwing policy",
		PaperBottlenecks: []string{"Sort"},
		ExpectDominant:   []string{"sort", "sample", "update"},
	}, spec[cem.Config]{
		configure: func(o Options) (cem.Config, error) {
			cfg := cem.DefaultConfig()
			cfg.Seed = o.seed()
			cfg.BestEffort = o.BestEffort
			if o.Size == SizeSmall {
				cfg.Iterations = 3
				cfg.SamplesPerIter = 8
				cfg.Elite = 3
			}
			return cfg, noVariant("cem", o)
		},
		// Best reward, evaluation count, and reward-curve checksums.
		digest: func(r Result) []golden.Field {
			return append(
				metricFields(r, "best_reward", "evals"),
				seriesFields(r, "rewards", "best_per_iter")...)
		},
		run: func(ctx context.Context, cfg cem.Config, p *profile.Profile) (Result, error) {
			kr, err := cem.Run(ctx, cfg, p)
			res := newResult("cem", Control, p.Snapshot())
			res.Metrics["best_reward"] = kr.BestReward
			res.Metrics["evals"] = float64(kr.Evals)
			res.Series["rewards"] = kr.Rewards
			res.Series["best_per_iter"] = kr.BestPerIter
			res.Degraded = kr.Degraded
			return res, err
		},
	})
}
