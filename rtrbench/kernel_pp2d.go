package rtrbench

import (
	"context"
	"fmt"

	"repro/internal/core/pp2d"
	"repro/internal/profile"
)

func init() {
	registerSpec(Info{
		Name: "pp2d", Index: 4, Stage: Planning,
		Description:      "2D path planning for a car footprint with A*",
		PaperBottlenecks: []string{"Collision detection"},
		ExpectDominant:   []string{"collision"},
	}, spec[pp2d.Config]{
		configure: func(o Options) (pp2d.Config, error) {
			cfg := pp2d.DefaultConfig()
			cfg.Seed = o.seed()
			cfg.BestEffort = o.BestEffort
			size := 512
			if o.Size == SizeSmall {
				size = 160
			}
			cfg.Map = pp2d.DefaultMap(size, cfg.Seed)
			switch o.Variant {
			case "":
			case "anytime":
				// ARA*: successively tighter inflations reusing earlier
				// search effort; the anytime planner the degradation path
				// (Options.BestEffort) falls back on mid-schedule.
				cfg.AnytimeSchedule = []float64{3, 1.5, 1}
			default:
				return cfg, fmt.Errorf("pp2d: unknown variant %q", o.Variant)
			}
			return cfg, nil
		},
		// Path cost plus the expansion/collision-check node counts.
		digest: digestOf("found", "path_length_m", "expanded",
			"collision_checks", "cells_touched", "anytime_rounds"),
		run: func(ctx context.Context, cfg pp2d.Config, p *profile.Profile) (Result, error) {
			kr, err := pp2d.Run(ctx, cfg, p)
			res := newResult("pp2d", Planning, p.Snapshot())
			res.Metrics["found"] = boolMetric(kr.Found)
			res.Metrics["path_length_m"] = kr.PathLength
			res.Metrics["expanded"] = float64(kr.Expanded)
			res.Metrics["collision_checks"] = float64(kr.Checks)
			res.Metrics["cells_touched"] = float64(kr.Cells)
			res.Metrics["anytime_rounds"] = float64(len(kr.Anytime))
			res.Degraded = kr.Degraded
			return res, err
		},
	})
}
