# RTRBench-Go build and verification targets.

GO ?= go

.PHONY: all build test race bench bench-all benchdiff ledger-append ledger-verify ci fmt vet verify golden-update stream

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -count=1 ./...

# Performance snapshot: per-kernel Table 1 benchmarks + zero-alloc step
# benchmarks, exported as BENCH_<date>.json (see scripts/bench.sh).
bench:
	sh scripts/bench.sh

# Full table/figure regeneration harness (see bench_test.go).
bench-all:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# Statistical comparison of two snapshots: make benchdiff OLD=a.json NEW=b.json
# (Mann-Whitney U per benchmark; nonzero exit on significant regressions).
benchdiff:
	$(GO) run ./cmd/benchdiff $(OLD) $(NEW)

# Chain a verified snapshot into the tamper-evident perf ledger:
# make ledger-append SNAP=BENCH_2026-08-07.json (run `make verify` first —
# the snapshot embeds the golden digests it was measured against).
ledger-append:
	$(GO) run ./cmd/benchdiff -ledger append $(SNAP)

# Verify the whole ledger hash chain.
ledger-verify:
	$(GO) run ./cmd/benchdiff -ledger verify

fmt:
	gofmt -l .

vet:
	$(GO) vet ./...

# Correctness gate: diff every kernel's result digest against the goldens in
# rtrbench/testdata/golden/, plus the metamorphic invariance checks
# (parallelism, trial order, profiling on/off).
verify:
	$(GO) run ./cmd/rtrbench verify -metamorphic

# Regenerate the golden digests after an intentional result change. Review
# the diff before committing — every changed field is a changed answer.
golden-update:
	$(GO) run ./cmd/rtrbench verify -update

# Streaming real-time smoke: pfl as a 2ms periodic task for 1s with
# deadline-miss accounting. Override with
# make stream KERNEL=ekfslam PERIOD=5ms DURATION=2s POLICY=anytime-cutoff
KERNEL ?= pfl
PERIOD ?= 2ms
DURATION ?= 1s
POLICY ?= skip-next
stream:
	$(GO) run ./cmd/rtrbench stream -kernel $(KERNEL) -period $(PERIOD) \
		-deadline $(PERIOD) -duration $(DURATION) -policy $(POLICY)

# The full verification gate: gofmt + vet + build + race tests.
ci:
	sh scripts/ci.sh
