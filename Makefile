# RTRBench-Go build and verification targets.

GO ?= go

.PHONY: all build test race bench ci fmt vet

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -count=1 ./...

# Table/figure regeneration harness (see bench_test.go).
bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

fmt:
	gofmt -l .

vet:
	$(GO) vet ./...

# The full verification gate: gofmt + vet + build + race tests.
ci:
	sh scripts/ci.sh
