# RTRBench-Go build and verification targets.

GO ?= go

.PHONY: all build test race bench bench-all ci fmt vet

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -count=1 ./...

# Performance snapshot: per-kernel Table 1 benchmarks + zero-alloc step
# benchmarks, exported as BENCH_<date>.json (see scripts/bench.sh).
bench:
	sh scripts/bench.sh

# Full table/figure regeneration harness (see bench_test.go).
bench-all:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

fmt:
	gofmt -l .

vet:
	$(GO) vet ./...

# The full verification gate: gofmt + vet + build + race tests.
ci:
	sh scripts/ci.sh
