package grid

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestDistanceTransformSinglePoint(t *testing.T) {
	g := NewGrid2D(11, 11)
	g.Set(5, 5, true)
	d := g.DistanceTransform()
	for y := 0; y < 11; y++ {
		for x := 0; x < 11; x++ {
			want := math.Hypot(float64(x-5), float64(y-5))
			if math.Abs(d[y*11+x]-want) > 1e-9 {
				t.Fatalf("d(%d,%d) = %v, want %v", x, y, d[y*11+x], want)
			}
		}
	}
}

func TestDistanceTransformMatchesBruteForce(t *testing.T) {
	if err := quick.Check(func(seed int64) bool {
		r := rng.New(seed)
		w, h := 3+r.Intn(25), 3+r.Intn(25)
		g := NewGrid2D(w, h)
		nObs := 1 + r.Intn(w*h/3)
		for i := 0; i < nObs; i++ {
			g.Set(r.Intn(w), r.Intn(h), true)
		}
		d := g.DistanceTransform()
		// Brute force O(n²) oracle.
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				best := math.Inf(1)
				for oy := 0; oy < h; oy++ {
					for ox := 0; ox < w; ox++ {
						if g.Occupied(ox, oy) {
							dd := math.Hypot(float64(x-ox), float64(y-oy))
							if dd < best {
								best = dd
							}
						}
					}
				}
				if math.Abs(d[y*w+x]-best) > 1e-9 {
					return false
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestDistanceTransformNoObstacles(t *testing.T) {
	g := NewGrid2D(5, 5)
	d := g.DistanceTransform()
	for _, v := range d {
		if v < 1e6 {
			t.Fatalf("obstacle-free distance = %v, want huge", v)
		}
	}
}

func TestSmoothPathStraightensDetour(t *testing.T) {
	g := NewGrid2D(20, 20)
	// An L-shaped path in open space collapses to its endpoints.
	var path []int
	for x := 0; x <= 10; x++ {
		path = append(path, 0*20+x)
	}
	for y := 1; y <= 10; y++ {
		path = append(path, y*20+10)
	}
	sm := g.SmoothPath(path)
	if len(sm) != 2 {
		t.Fatalf("open-space L-path smoothed to %d waypoints, want 2", len(sm))
	}
	if sm[0] != path[0] || sm[1] != path[len(path)-1] {
		t.Fatal("smoothing changed the endpoints")
	}
}

func TestSmoothPathRespectsObstacles(t *testing.T) {
	g := NewGrid2D(20, 20)
	// A wall between the legs of the L forces the bend to survive.
	for y := 0; y < 9; y++ {
		g.Set(5, y+1, true)
	}
	var path []int
	for x := 0; x <= 10; x++ {
		path = append(path, 0*20+x)
	}
	for y := 1; y <= 10; y++ {
		path = append(path, y*20+10)
	}
	sm := g.SmoothPath(path)
	if len(sm) < 3 {
		t.Fatalf("smoothing cut through a wall: %d waypoints", len(sm))
	}
	// Every consecutive pair must be line-of-sight free.
	for i := 1; i < len(sm); i++ {
		x0, y0 := sm[i-1]%20, sm[i-1]/20
		x1, y1 := sm[i]%20, sm[i]/20
		if !g.LineFree2D(x0, y0, x1, y1) {
			t.Fatalf("smoothed segment %d blocked", i)
		}
	}
}

func TestSmoothPathNeverLonger(t *testing.T) {
	if err := quick.Check(func(seed int64) bool {
		r := rng.New(seed)
		g := NewGrid2D(30, 30)
		for i := 0; i < 120; i++ {
			g.Set(r.Intn(30), r.Intn(30), true)
		}
		// Build a random valid staircase path through free cells.
		x, y := 0, 0
		g.Set(0, 0, false)
		path := []int{0}
		for len(path) < 40 {
			nx, ny := x, y
			if r.Float64() < 0.5 && x < 29 {
				nx++
			} else if y < 29 {
				ny++
			}
			if g.Occupied(nx, ny) {
				break
			}
			x, y = nx, ny
			path = append(path, y*30+x)
		}
		if len(path) < 3 {
			return true
		}
		sm := g.SmoothPath(path)
		return pathLen(sm, 30) <= pathLen(path, 30)+1e-9
	}, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func pathLen(path []int, w int) float64 {
	var s float64
	for i := 1; i < len(path); i++ {
		x0, y0 := path[i-1]%w, path[i-1]/w
		x1, y1 := path[i]%w, path[i]/w
		s += math.Hypot(float64(x1-x0), float64(y1-y0))
	}
	return s
}

func TestSmoothPathDegenerate(t *testing.T) {
	g := NewGrid2D(5, 5)
	if got := g.SmoothPath(nil); len(got) != 0 {
		t.Fatal("nil path smoothed to non-empty")
	}
	if got := g.SmoothPath([]int{3}); len(got) != 1 {
		t.Fatal("single-cell path changed")
	}
	if got := g.SmoothPath([]int{3, 4}); len(got) != 2 {
		t.Fatal("two-cell path changed")
	}
}

func TestLineFree3DOpenAndBlocked(t *testing.T) {
	g := NewGrid3D(20, 20, 20)
	if !g.LineFree3D(1, 1, 1, 18, 17, 16) {
		t.Fatal("open-space 3D line reported blocked")
	}
	g.Set(10, 9, 8, true)
	// A line passing right through that voxel must now be blocked.
	if g.LineFree3D(1, 1, 1, 19, 17, 15) {
		// The dominant-axis walk may round past the voxel; use an
		// axis-aligned certain hit instead.
		g2 := NewGrid3D(20, 20, 20)
		g2.Set(10, 5, 5, true)
		if g2.LineFree3D(0, 5, 5, 19, 5, 5) {
			t.Fatal("axis line through obstacle reported clear")
		}
	}
	// Endpoints inside obstacles are blocked.
	if g.LineFree3D(10, 9, 8, 12, 9, 8) {
		t.Fatal("line starting inside an obstacle reported clear")
	}
}

func TestLineFree3DMatchesEndpoints(t *testing.T) {
	g := NewGrid3D(10, 10, 10)
	if !g.LineFree3D(3, 4, 5, 3, 4, 5) {
		t.Fatal("degenerate free line blocked")
	}
	g.Set(3, 4, 5, true)
	if g.LineFree3D(3, 4, 5, 3, 4, 5) {
		t.Fatal("degenerate occupied line clear")
	}
}

func TestSmoothPath3DStraightens(t *testing.T) {
	g := NewGrid3D(20, 20, 20)
	id := func(x, y, z int) int { return (z*g.H+y)*g.W + x }
	// A staircase path in open space collapses to its endpoints.
	var path []int
	for i := 0; i <= 10; i++ {
		path = append(path, id(i, 0, 0))
	}
	for i := 1; i <= 10; i++ {
		path = append(path, id(10, i, 0))
	}
	for i := 1; i <= 10; i++ {
		path = append(path, id(10, 10, i))
	}
	sm := g.SmoothPath3D(path)
	if len(sm) < 2 || len(sm) >= len(path) {
		t.Fatalf("smoothed to %d waypoints from %d", len(sm), len(path))
	}
	if sm[0] != path[0] || sm[len(sm)-1] != path[len(path)-1] {
		t.Fatal("endpoints changed")
	}
}

func TestSmoothPath3DRespectsWalls(t *testing.T) {
	g := NewGrid3D(20, 20, 20)
	// Wall in the middle with a hole the original path threads.
	g.FillBox(10, 0, 0, 10, 19, 19, true)
	g.Set(10, 0, 0, false) // hole at the corner
	id := func(x, y, z int) int { return (z*g.H+y)*g.W + x }
	var path []int
	for x := 0; x <= 9; x++ {
		path = append(path, id(x, 5, 5))
	}
	// descend to the hole
	for y := 4; y >= 0; y-- {
		path = append(path, id(9, y, 5))
	}
	for z := 4; z >= 0; z-- {
		path = append(path, id(9, 0, z))
	}
	path = append(path, id(10, 0, 0), id(11, 0, 0))
	for x := 12; x <= 19; x++ {
		path = append(path, id(x, 0, 0))
	}
	sm := g.SmoothPath3D(path)
	// Every smoothed segment must be line-of-sight clear.
	decode := func(v int) (int, int, int) {
		x := v % g.W
		v /= g.W
		return x, v % g.H, v / g.H
	}
	for i := 1; i < len(sm); i++ {
		x0, y0, z0 := decode(sm[i-1])
		x1, y1, z1 := decode(sm[i])
		if !g.LineFree3D(x0, y0, z0, x1, y1, z1) {
			t.Fatalf("smoothed 3D segment %d blocked", i)
		}
	}
}
