package grid

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The Moving AI Lab benchmark map format (Sturtevant, TCIAIG 2012) is the
// format of the paper's pp2d inputset (Boston_1_1024). A map file looks like:
//
//	type octile
//	height 4
//	width 4
//	map
//	....
//	.@@.
//	.TT.
//	....
//
// Passable terrain is '.' or 'G'; '@', 'O', 'T', 'S', 'W' are treated as
// obstacles for a ground robot. The parser accepts any of these characters
// and rejects everything else.

// ParseMovingAI reads a Moving AI format map.
func ParseMovingAI(r io.Reader) (*Grid2D, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<22)

	var width, height int
	sawMap := false
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "" || strings.HasPrefix(line, "type"):
			// The type line ("octile") does not affect occupancy.
		case strings.HasPrefix(line, "height"):
			v, err := headerValue(line, "height")
			if err != nil {
				return nil, err
			}
			height = v
		case strings.HasPrefix(line, "width"):
			v, err := headerValue(line, "width")
			if err != nil {
				return nil, err
			}
			width = v
		case line == "map":
			sawMap = true
		}
		if sawMap {
			break
		}
	}
	if !sawMap {
		return nil, fmt.Errorf("movingai: missing 'map' header")
	}
	if width <= 0 || height <= 0 {
		return nil, fmt.Errorf("movingai: invalid dimensions %dx%d", width, height)
	}

	g := NewGrid2D(width, height)
	row := 0
	for sc.Scan() && row < height {
		line := sc.Text()
		if len(line) < width {
			return nil, fmt.Errorf("movingai: row %d has %d cells, want %d", row, len(line), width)
		}
		// Moving AI maps list rows top to bottom; our grid's y grows upward.
		y := height - 1 - row
		for x := 0; x < width; x++ {
			switch line[x] {
			case '.', 'G':
				// free
			case '@', 'O', 'T', 'S', 'W':
				g.Set(x, y, true)
			default:
				return nil, fmt.Errorf("movingai: unknown terrain %q at (%d,%d)", line[x], x, row)
			}
		}
		row++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if row != height {
		return nil, fmt.Errorf("movingai: got %d map rows, want %d", row, height)
	}
	return g, nil
}

func headerValue(line, key string) (int, error) {
	fields := strings.Fields(line)
	if len(fields) != 2 || fields[0] != key {
		return 0, fmt.Errorf("movingai: malformed %s line %q", key, line)
	}
	v, err := strconv.Atoi(fields[1])
	if err != nil {
		return 0, fmt.Errorf("movingai: malformed %s value %q", key, fields[1])
	}
	return v, nil
}

// WriteMovingAI serializes a grid in Moving AI format, using '.' for free
// cells and '@' for obstacles.
func WriteMovingAI(w io.Writer, g *Grid2D) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "type octile\nheight %d\nwidth %d\nmap\n", g.H, g.W)
	line := make([]byte, g.W+1)
	line[g.W] = '\n'
	for row := 0; row < g.H; row++ {
		y := g.H - 1 - row
		for x := 0; x < g.W; x++ {
			if g.Occupied(x, y) {
				line[x] = '@'
			} else {
				line[x] = '.'
			}
		}
		if _, err := bw.Write(line); err != nil {
			return err
		}
	}
	return bw.Flush()
}
