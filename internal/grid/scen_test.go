package grid

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestParseScenBasic(t *testing.T) {
	in := "version 1\n" +
		"0\tmaps/dao/arena.map\t49\t49\t1\t11\t1\t13\t2.41421356\n" +
		"5\tcity.map\t100\t100\t0\t0\t99\t99\t140.00712\n"
	scens, err := ParseScen(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(scens) != 2 {
		t.Fatalf("parsed %d scenarios", len(scens))
	}
	s := scens[0]
	if s.Bucket != 0 || s.MapName != "maps/dao/arena.map" || s.MapW != 49 ||
		s.StartX != 1 || s.StartY != 11 || s.GoalX != 1 || s.GoalY != 13 {
		t.Fatalf("scenario = %+v", s)
	}
	if s.OptimalLength < 2.41 || s.OptimalLength > 2.42 {
		t.Fatalf("optimal = %v", s.OptimalLength)
	}
}

func TestParseScenWithoutVersionHeader(t *testing.T) {
	in := "0\tm.map\t10\t10\t0\t0\t9\t9\t12.7\n"
	scens, err := ParseScen(strings.NewReader(in))
	if err != nil || len(scens) != 1 {
		t.Fatalf("scens=%d err=%v", len(scens), err)
	}
}

func TestParseScenErrors(t *testing.T) {
	for name, in := range map[string]string{
		"short line":     "0\tm.map\t10\t10\t0\t0\t9\n",
		"bad int":        "x\tm.map\t10\t10\t0\t0\t9\t9\t1.0\n",
		"bad float":      "0\tm.map\t10\t10\t0\t0\t9\t9\tzzz\n",
		"zero size":      "0\tm.map\t0\t10\t0\t0\t0\t9\t1.0\n",
		"out of bounds":  "0\tm.map\t10\t10\t0\t0\t10\t9\t1.0\n",
		"negative start": "0\tm.map\t10\t10\t-1\t0\t9\t9\t1.0\n",
	} {
		if _, err := ParseScen(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestScenCoordinateConversion(t *testing.T) {
	// Row 0 in scen coordinates is the TOP row => our y = H-1.
	s := Scenario{StartX: 3, StartY: 0, GoalX: 4, GoalY: 9, MapW: 10, MapH: 10}
	x, y := s.StartCell(10)
	if x != 3 || y != 9 {
		t.Fatalf("StartCell = (%d,%d)", x, y)
	}
	x, y = s.GoalCell(10)
	if x != 4 || y != 0 {
		t.Fatalf("GoalCell = (%d,%d)", x, y)
	}
}

func TestScenRoundTrip(t *testing.T) {
	if err := quick.Check(func(seed int64) bool {
		r := rng.New(seed)
		n := 1 + r.Intn(20)
		scens := make([]Scenario, n)
		for i := range scens {
			w, h := 2+r.Intn(100), 2+r.Intn(100)
			scens[i] = Scenario{
				Bucket:  r.Intn(50),
				MapName: "maps/some.map",
				MapW:    w, MapH: h,
				StartX: r.Intn(w), StartY: r.Intn(h),
				GoalX: r.Intn(w), GoalY: r.Intn(h),
				OptimalLength: r.Uniform(0, 500),
			}
		}
		var buf bytes.Buffer
		if err := WriteScen(&buf, scens); err != nil {
			return false
		}
		parsed, err := ParseScen(&buf)
		if err != nil || len(parsed) != n {
			return false
		}
		for i := range scens {
			a, b := scens[i], parsed[i]
			if a.Bucket != b.Bucket || a.MapName != b.MapName ||
				a.StartX != b.StartX || a.GoalY != b.GoalY {
				return false
			}
			if d := a.OptimalLength - b.OptimalLength; d > 1e-6 || d < -1e-6 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestParseScenNeverPanics(t *testing.T) {
	if err := quick.Check(func(raw []byte) bool {
		defer func() {
			if recover() != nil {
				t.Fatal("scen parser panicked")
			}
		}()
		_, _ = ParseScen(bytes.NewReader(raw))
		return true
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
