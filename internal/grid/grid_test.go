package grid

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestGrid2DBasics(t *testing.T) {
	g := NewGrid2D(10, 5)
	if g.Occupied(3, 3) {
		t.Fatal("fresh grid has obstacles")
	}
	g.Set(3, 3, true)
	if !g.Occupied(3, 3) || g.Free(3, 3) {
		t.Fatal("Set did not mark the cell")
	}
	// Out of bounds is occupied.
	if !g.Occupied(-1, 0) || !g.Occupied(10, 0) || !g.Occupied(0, 5) {
		t.Fatal("out-of-bounds cells must read occupied")
	}
	g.Set(-1, -1, true) // must not panic
}

func TestFillAndCount(t *testing.T) {
	g := NewGrid2D(8, 8)
	g.Fill(2, 2, 4, 4, true)
	if got := g.CountOccupied(); got != 9 {
		t.Fatalf("CountOccupied = %d, want 9", got)
	}
	g.Fill(4, 4, 2, 2, false) // reversed corners
	if got := g.CountOccupied(); got != 0 {
		t.Fatalf("after clear CountOccupied = %d", got)
	}
	g.Fill(-5, -5, 100, 100, true) // clipped
	if got := g.CountOccupied(); got != 64 {
		t.Fatalf("clipped fill CountOccupied = %d", got)
	}
}

func TestWorldCellRoundTrip(t *testing.T) {
	g := NewGrid2D(16, 16)
	g.Resolution = 0.25
	for x := 0; x < 16; x++ {
		for y := 0; y < 16; y++ {
			wx, wy := g.CellToWorld(x, y)
			cx, cy := g.WorldToCell(wx, wy)
			if cx != x || cy != y {
				t.Fatalf("round trip (%d,%d) -> (%d,%d)", x, y, cx, cy)
			}
		}
	}
}

func TestInflate(t *testing.T) {
	g := NewGrid2D(9, 9)
	g.Set(4, 4, true)
	inf := g.Inflate(2)
	if got := inf.CountOccupied(); got != 25 {
		t.Fatalf("inflated count = %d, want 25", got)
	}
	if !inf.Occupied(2, 2) || inf.Occupied(1, 1) {
		t.Fatal("inflation radius wrong")
	}
	// Inflate(0) is a plain copy.
	c := g.Inflate(0)
	if c.CountOccupied() != 1 {
		t.Fatal("Inflate(0) changed the grid")
	}
}

func TestScale(t *testing.T) {
	g := NewGrid2D(3, 3)
	g.Set(1, 1, true)
	s := g.Scale(4)
	if s.W != 12 || s.H != 12 {
		t.Fatalf("scaled dims %dx%d", s.W, s.H)
	}
	if got := s.CountOccupied(); got != 16 {
		t.Fatalf("scaled count = %d, want 16", got)
	}
	if s.Resolution != g.Resolution/4 {
		t.Fatalf("scaled resolution = %v", s.Resolution)
	}
	for x := 4; x < 8; x++ {
		for y := 4; y < 8; y++ {
			if !s.Occupied(x, y) {
				t.Fatalf("block cell (%d,%d) free", x, y)
			}
		}
	}
}

func TestMovingAIRoundTrip(t *testing.T) {
	if err := quick.Check(func(seed int64) bool {
		r := rng.New(seed)
		w, h := 2+r.Intn(30), 2+r.Intn(30)
		g := NewGrid2D(w, h)
		for i := 0; i < w*h/3; i++ {
			g.Set(r.Intn(w), r.Intn(h), true)
		}
		var buf bytes.Buffer
		if err := WriteMovingAI(&buf, g); err != nil {
			return false
		}
		parsed, err := ParseMovingAI(&buf)
		if err != nil {
			return false
		}
		if parsed.W != g.W || parsed.H != g.H {
			return false
		}
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				if parsed.Occupied(x, y) != g.Occupied(x, y) {
					return false
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMovingAIParsesTerrainTypes(t *testing.T) {
	input := "type octile\nheight 2\nwidth 5\nmap\n.G@OT\nSW...\n"
	g, err := ParseMovingAI(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	// Row 0 of the file is the TOP row (y = H-1 = 1).
	wantTop := []bool{false, false, true, true, true}
	wantBot := []bool{true, true, false, false, false}
	for x := 0; x < 5; x++ {
		if g.Occupied(x, 1) != wantTop[x] {
			t.Fatalf("top row x=%d", x)
		}
		if g.Occupied(x, 0) != wantBot[x] {
			t.Fatalf("bottom row x=%d", x)
		}
	}
}

func TestMovingAIErrors(t *testing.T) {
	cases := map[string]string{
		"missing map":   "type octile\nheight 2\nwidth 2\n",
		"bad terrain":   "height 1\nwidth 1\nmap\nX\n",
		"short row":     "height 1\nwidth 5\nmap\n..\n",
		"missing rows":  "height 3\nwidth 2\nmap\n..\n",
		"bad height":    "height x\nwidth 2\nmap\n..\n",
		"no dimensions": "map\n..\n",
	}
	for name, in := range cases {
		if _, err := ParseMovingAI(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestMovingAINeverPanicsOnGarbage(t *testing.T) {
	// Robustness: arbitrary byte soup must yield an error, never a panic.
	if err := quick.Check(func(raw []byte) bool {
		defer func() {
			if recover() != nil {
				t.Fatal("parser panicked")
			}
		}()
		_, _ = ParseMovingAI(bytes.NewReader(raw))
		return true
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
	// Headers with hostile dimension values.
	for _, in := range []string{
		"height 999999999999999999999\nwidth 2\nmap\n..\n",
		"height -5\nwidth 2\nmap\n..\n",
		"height 2\nwidth 0\nmap\n\n\n",
		"type octile\nheight 1\nwidth 1\nmap\n",
	} {
		if _, err := ParseMovingAI(strings.NewReader(in)); err == nil {
			t.Errorf("hostile input accepted: %q", in)
		}
	}
}

func TestRaycastOpenSpace(t *testing.T) {
	g := NewGrid2D(100, 100)
	d := g.Raycast(50, 50, 0, 20)
	if d != 20 {
		t.Fatalf("open-space ray = %v, want maxRange 20", d)
	}
}

func TestRaycastHitsWall(t *testing.T) {
	g := NewGrid2D(100, 100)
	for y := 0; y < 100; y++ {
		g.Set(60, y, true)
	}
	d := g.Raycast(50.5, 50.5, 0, 100)
	// The wall cell starts at x=60; ray starts at 50.5.
	if math.Abs(d-9.5) > 1e-9 {
		t.Fatalf("wall ray = %v, want 9.5", d)
	}
	// Diagonal ray.
	d = g.Raycast(50.5, 50.5, math.Pi/4, 100)
	want := 9.5 * math.Sqrt2
	if math.Abs(d-want) > 1e-9 {
		t.Fatalf("diagonal ray = %v, want %v", d, want)
	}
}

func TestRaycastFromOccupied(t *testing.T) {
	g := NewGrid2D(10, 10)
	g.Set(5, 5, true)
	if d := g.Raycast(5.5, 5.5, 0, 10); d != 0 {
		t.Fatalf("ray from obstacle = %v, want 0", d)
	}
}

func TestRaycastBackward(t *testing.T) {
	g := NewGrid2D(100, 100)
	for y := 0; y < 100; y++ {
		g.Set(40, y, true)
	}
	d := g.Raycast(50.5, 50.5, math.Pi, 100)
	// Wall cell [40,41) — the ray traveling -x hits its right edge at 41.
	if math.Abs(d-9.5) > 1e-9 {
		t.Fatalf("backward ray = %v, want 9.5", d)
	}
}

func TestRaycastMatchesBruteForce(t *testing.T) {
	if err := quick.Check(func(seed int64) bool {
		r := rng.New(seed)
		g := NewGrid2D(40, 40)
		for i := 0; i < 80; i++ {
			g.Set(r.Intn(40), r.Intn(40), true)
		}
		ox := r.Uniform(5, 35)
		oy := r.Uniform(5, 35)
		if g.OccupiedWorld(ox, oy) {
			return true
		}
		theta := r.Uniform(-math.Pi, math.Pi)
		got := g.Raycast(ox, oy, theta, 30)

		// Brute force: march in tiny steps until an occupied cell.
		const step = 1e-3
		brute := 30.0
		for d := step; d <= 30; d += step {
			if g.OccupiedWorld(ox+d*math.Cos(theta), oy+d*math.Sin(theta)) {
				brute = d
				break
			}
		}
		return math.Abs(got-brute) < 0.01
	}, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestRaycastCellsCountsWork(t *testing.T) {
	g := NewGrid2D(100, 100)
	_, cells := g.RaycastCells(50.5, 50.5, 0, 20)
	if cells < 19 || cells > 22 {
		t.Fatalf("cells visited = %d, want ~20", cells)
	}
}

func TestLineFree2D(t *testing.T) {
	g := NewGrid2D(20, 20)
	if !g.LineFree2D(1, 1, 18, 18) {
		t.Fatal("clear diagonal reported blocked")
	}
	g.Set(10, 10, true)
	if g.LineFree2D(1, 1, 18, 18) {
		t.Fatal("blocked diagonal reported clear")
	}
	if !g.LineFree2D(1, 1, 1, 1) {
		t.Fatal("trivial line reported blocked")
	}
	if g.LineFree2D(10, 10, 10, 10) {
		t.Fatal("line inside obstacle reported clear")
	}
}

func TestGrid3DBasics(t *testing.T) {
	g := NewGrid3D(4, 5, 6)
	if g.Occupied(1, 2, 3) {
		t.Fatal("fresh voxel occupied")
	}
	g.Set(1, 2, 3, true)
	if !g.Occupied(1, 2, 3) {
		t.Fatal("Set did not mark voxel")
	}
	if !g.Occupied(-1, 0, 0) || !g.Occupied(0, 0, 6) {
		t.Fatal("out-of-bounds voxels must read occupied")
	}
	g.FillBox(0, 0, 0, 1, 1, 1, true)
	if g.CountOccupied() != 8+1-0 && g.CountOccupied() != 9 {
		t.Fatalf("CountOccupied = %d", g.CountOccupied())
	}
}

func TestGrid3DFillBoxClipsAndSwaps(t *testing.T) {
	g := NewGrid3D(3, 3, 3)
	g.FillBox(2, 2, 2, 0, 0, 0, true) // reversed corners
	if g.CountOccupied() != 27 {
		t.Fatalf("CountOccupied = %d, want 27", g.CountOccupied())
	}
	g2 := NewGrid3D(3, 3, 3)
	g2.FillBox(-5, -5, -5, 10, 10, 10, true) // clipped
	if g2.CountOccupied() != 27 {
		t.Fatalf("clipped CountOccupied = %d", g2.CountOccupied())
	}
}

func TestCostGrid(t *testing.T) {
	c := NewCostGrid2D(5, 5, 2)
	if c.Cost(2, 2) != 2 {
		t.Fatalf("Cost = %v", c.Cost(2, 2))
	}
	c.Set(2, 2, 0) // obstacle
	if !math.IsInf(c.Cost(2, 2), 1) || c.Passable(2, 2) {
		t.Fatal("zero-cost cell must be impassable")
	}
	if !math.IsInf(c.Cost(-1, 0), 1) {
		t.Fatal("out-of-bounds cost must be +Inf")
	}
	c.Set(1, 1, 7)
	if c.Cost(1, 1) != 7 {
		t.Fatal("Set did not update cost")
	}
}

func TestCloneIndependence(t *testing.T) {
	g := NewGrid2D(4, 4)
	c := g.Clone()
	c.Set(1, 1, true)
	if g.Occupied(1, 1) {
		t.Fatal("Clone shares storage")
	}
}
