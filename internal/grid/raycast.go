package grid

import "math"

// Raycast traverses the grid from world point (ox, oy) along heading theta
// and returns the distance to the first occupied cell, capped at maxRange.
// It is the particle filter's single hottest operation: the paper attributes
// 67-78% of pfl's execution time to exactly this map traversal.
//
// The implementation is an Amanatides-Woo DDA voxel walk: it visits each
// crossed cell exactly once, preserving the "checking map cells that are
// nearby each other" spatial locality the paper highlights.
func (g *Grid2D) Raycast(ox, oy, theta, maxRange float64) float64 {
	dx := math.Cos(theta)
	dy := math.Sin(theta)

	x, y := g.WorldToCell(ox, oy)
	if g.Occupied(x, y) {
		return 0
	}

	// Per-axis step direction and the parametric distance to the next cell
	// boundary (tMax*) and between boundaries (tDelta*), in world units.
	stepX, stepY := 1, 1
	if dx < 0 {
		stepX = -1
	}
	if dy < 0 {
		stepY = -1
	}

	res := g.Resolution
	tMaxX, tDeltaX := axisInit(ox, dx, res)
	tMaxY, tDeltaY := axisInit(oy, dy, res)

	for {
		var t float64
		if tMaxX < tMaxY {
			t = tMaxX
			tMaxX += tDeltaX
			x += stepX
		} else {
			t = tMaxY
			tMaxY += tDeltaY
			y += stepY
		}
		if t > maxRange {
			return maxRange
		}
		if g.Occupied(x, y) {
			return t
		}
	}
}

// RaycastCells behaves like Raycast but additionally counts the number of
// cells visited, feeding the harness's memory-touch counters.
func (g *Grid2D) RaycastCells(ox, oy, theta, maxRange float64) (dist float64, cells int) {
	dx := math.Cos(theta)
	dy := math.Sin(theta)
	x, y := g.WorldToCell(ox, oy)
	if g.Occupied(x, y) {
		return 0, 1
	}
	stepX, stepY := 1, 1
	if dx < 0 {
		stepX = -1
	}
	if dy < 0 {
		stepY = -1
	}
	res := g.Resolution
	tMaxX, tDeltaX := axisInit(ox, dx, res)
	tMaxY, tDeltaY := axisInit(oy, dy, res)
	for {
		var t float64
		if tMaxX < tMaxY {
			t = tMaxX
			tMaxX += tDeltaX
			x += stepX
		} else {
			t = tMaxY
			tMaxY += tDeltaY
			y += stepY
		}
		cells++
		if t > maxRange {
			return maxRange, cells
		}
		if g.Occupied(x, y) {
			return t, cells
		}
	}
}

// axisInit returns the DDA parameters for one axis: the parametric distance
// from origin o (moving with velocity component d) to the first cell
// boundary, and the distance between consecutive boundaries.
func axisInit(o, d, res float64) (tMax, tDelta float64) {
	if d == 0 {
		return math.Inf(1), math.Inf(1)
	}
	cell := math.Floor(o / res)
	var boundary float64
	if d > 0 {
		boundary = (cell + 1) * res
	} else {
		boundary = cell * res
	}
	tMax = (boundary - o) / d
	tDelta = res / math.Abs(d)
	return tMax, tDelta
}

// LineFree2D reports whether the straight segment between cell centers
// (x0, y0) and (x1, y1) crosses only free cells (Bresenham walk). The RRT
// post-processing kernel uses it for shortcut feasibility tests.
func (g *Grid2D) LineFree2D(x0, y0, x1, y1 int) bool {
	dx := abs(x1 - x0)
	dy := -abs(y1 - y0)
	sx, sy := 1, 1
	if x0 > x1 {
		sx = -1
	}
	if y0 > y1 {
		sy = -1
	}
	err := dx + dy
	x, y := x0, y0
	for {
		if g.Occupied(x, y) {
			return false
		}
		if x == x1 && y == y1 {
			return true
		}
		e2 := 2 * err
		if e2 >= dy {
			err += dy
			x += sx
		}
		if e2 <= dx {
			err += dx
			y += sy
		}
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// LineFree3D reports whether the straight voxel segment between (x0,y0,z0)
// and (x1,y1,z1) crosses only free voxels (3D Bresenham/Amanatides walk on
// the dominant axis). pp3d's path smoothing uses it for shortcut tests.
func (g *Grid3D) LineFree3D(x0, y0, z0, x1, y1, z1 int) bool {
	dx, dy, dz := abs(x1-x0), abs(y1-y0), abs(z1-z0)
	sx, sy, sz := sign(x1-x0), sign(y1-y0), sign(z1-z0)
	x, y, z := x0, y0, z0

	switch {
	case dx >= dy && dx >= dz:
		e1, e2 := 2*dy-dx, 2*dz-dx
		for {
			if g.Occupied(x, y, z) {
				return false
			}
			if x == x1 {
				return true
			}
			if e1 > 0 {
				y += sy
				e1 -= 2 * dx
			}
			if e2 > 0 {
				z += sz
				e2 -= 2 * dx
			}
			e1 += 2 * dy
			e2 += 2 * dz
			x += sx
		}
	case dy >= dx && dy >= dz:
		e1, e2 := 2*dx-dy, 2*dz-dy
		for {
			if g.Occupied(x, y, z) {
				return false
			}
			if y == y1 {
				return true
			}
			if e1 > 0 {
				x += sx
				e1 -= 2 * dy
			}
			if e2 > 0 {
				z += sz
				e2 -= 2 * dy
			}
			e1 += 2 * dx
			e2 += 2 * dz
			y += sy
		}
	default:
		e1, e2 := 2*dx-dz, 2*dy-dz
		for {
			if g.Occupied(x, y, z) {
				return false
			}
			if z == z1 {
				return true
			}
			if e1 > 0 {
				x += sx
				e1 -= 2 * dz
			}
			if e2 > 0 {
				y += sy
				e2 -= 2 * dz
			}
			e1 += 2 * dx
			e2 += 2 * dy
			z += sz
		}
	}
}

func sign(v int) int {
	switch {
	case v > 0:
		return 1
	case v < 0:
		return -1
	default:
		return 0
	}
}

// SmoothPath3D shortcuts a voxel-index path greedily with line-of-sight
// tests, the 3D counterpart of Grid2D.SmoothPath. IDs encode voxels as
// (z*H+y)*W + x.
func (g *Grid3D) SmoothPath3D(path []int) []int {
	if len(path) < 3 {
		return append([]int(nil), path...)
	}
	decode := func(id int) (int, int, int) {
		x := id % g.W
		id /= g.W
		return x, id % g.H, id / g.H
	}
	out := []int{path[0]}
	i := 0
	for i < len(path)-1 {
		j := i + 1
		for k := len(path) - 1; k > j; k-- {
			x0, y0, z0 := decode(path[i])
			x1, y1, z1 := decode(path[k])
			if g.LineFree3D(x0, y0, z0, x1, y1, z1) {
				j = k
				break
			}
		}
		out = append(out, path[j])
		i = j
	}
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
