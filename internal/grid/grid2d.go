// Package grid implements occupancy grids in two and three dimensions,
// the Moving AI map format used by the pp2d inputsets, and grid ray casting.
// It is the shared world-model substrate of the perception kernels (particle
// filter ray casting) and the planning kernels (collision detection, graph
// search).
package grid

import "math"

// Grid2D is a 2D occupancy grid. Cells are addressed by integer (x, y) with
// (0, 0) at the lower-left corner; world coordinates map to cells through
// Resolution (meters per cell).
type Grid2D struct {
	W, H       int
	Resolution float64 // meters per cell; 1.0 when unset semantics are pure cells
	occ        []bool
}

// NewGrid2D returns an all-free grid of the given size with resolution 1.
func NewGrid2D(w, h int) *Grid2D {
	if w <= 0 || h <= 0 {
		panic("grid: non-positive Grid2D dimensions")
	}
	return &Grid2D{W: w, H: h, Resolution: 1, occ: make([]bool, w*h)}
}

// Clone returns a deep copy of g.
func (g *Grid2D) Clone() *Grid2D {
	c := &Grid2D{W: g.W, H: g.H, Resolution: g.Resolution, occ: make([]bool, len(g.occ))}
	copy(c.occ, g.occ)
	return c
}

// InBounds reports whether cell (x, y) lies inside the grid.
func (g *Grid2D) InBounds(x, y int) bool { return x >= 0 && x < g.W && y >= 0 && y < g.H }

// Occupied reports whether cell (x, y) is an obstacle. Out-of-bounds cells
// are treated as occupied, which gives the planners a solid world boundary.
func (g *Grid2D) Occupied(x, y int) bool {
	if !g.InBounds(x, y) {
		return true
	}
	return g.occ[y*g.W+x]
}

// Free reports whether cell (x, y) is traversable.
func (g *Grid2D) Free(x, y int) bool { return !g.Occupied(x, y) }

// Set marks cell (x, y) occupied or free. Out-of-bounds sets are ignored.
func (g *Grid2D) Set(x, y int, occupied bool) {
	if g.InBounds(x, y) {
		g.occ[y*g.W+x] = occupied
	}
}

// Fill marks the rectangle [x0, x1] × [y0, y1] (inclusive) occupied or free,
// clipped to the grid.
func (g *Grid2D) Fill(x0, y0, x1, y1 int, occupied bool) {
	if x0 > x1 {
		x0, x1 = x1, x0
	}
	if y0 > y1 {
		y0, y1 = y1, y0
	}
	for y := max(y0, 0); y <= min(y1, g.H-1); y++ {
		for x := max(x0, 0); x <= min(x1, g.W-1); x++ {
			g.occ[y*g.W+x] = occupied
		}
	}
}

// CountOccupied returns the number of obstacle cells.
func (g *Grid2D) CountOccupied() int {
	n := 0
	for _, o := range g.occ {
		if o {
			n++
		}
	}
	return n
}

// WorldToCell converts world coordinates (meters) to a cell index.
func (g *Grid2D) WorldToCell(wx, wy float64) (int, int) {
	return int(math.Floor(wx / g.Resolution)), int(math.Floor(wy / g.Resolution))
}

// CellToWorld returns the world coordinates of the center of cell (x, y).
func (g *Grid2D) CellToWorld(x, y int) (float64, float64) {
	return (float64(x) + 0.5) * g.Resolution, (float64(y) + 0.5) * g.Resolution
}

// OccupiedWorld reports whether the cell containing world point (wx, wy) is
// an obstacle.
func (g *Grid2D) OccupiedWorld(wx, wy float64) bool {
	x, y := g.WorldToCell(wx, wy)
	return g.Occupied(x, y)
}

// Inflate returns a copy of the grid with every obstacle dilated by r cells
// (Chebyshev radius). Planners use inflation to account for robot extent
// when treating the robot as a point.
func (g *Grid2D) Inflate(r int) *Grid2D {
	if r <= 0 {
		return g.Clone()
	}
	out := NewGrid2D(g.W, g.H)
	out.Resolution = g.Resolution
	for y := 0; y < g.H; y++ {
		for x := 0; x < g.W; x++ {
			if !g.occ[y*g.W+x] {
				continue
			}
			out.Fill(x-r, y-r, x+r, y+r, true)
		}
	}
	return out
}

// Scale returns the grid scaled by an integer factor k: every cell becomes a
// k×k block. This reproduces the map-scaling experiment of the paper's
// Fig. 21, where the comparison map is "scaled by different factors to
// evaluate the implementations in larger (or finer-resolution) environments".
func (g *Grid2D) Scale(k int) *Grid2D {
	if k <= 1 {
		return g.Clone()
	}
	out := NewGrid2D(g.W*k, g.H*k)
	out.Resolution = g.Resolution / float64(k)
	for y := 0; y < g.H; y++ {
		for x := 0; x < g.W; x++ {
			if g.occ[y*g.W+x] {
				out.Fill(x*k, y*k, x*k+k-1, y*k+k-1, true)
			}
		}
	}
	return out
}

// CostGrid2D is a 2D field of per-cell traversal costs, used by the
// moving-target planner (every location "has a particular cost for the
// robot"). Cost 0 marks an impassable cell.
type CostGrid2D struct {
	W, H int
	cost []float64
}

// NewCostGrid2D returns a cost grid with all cells at the given uniform cost.
func NewCostGrid2D(w, h int, uniform float64) *CostGrid2D {
	c := &CostGrid2D{W: w, H: h, cost: make([]float64, w*h)}
	for i := range c.cost {
		c.cost[i] = uniform
	}
	return c
}

// InBounds reports whether (x, y) lies inside the grid.
func (c *CostGrid2D) InBounds(x, y int) bool { return x >= 0 && x < c.W && y >= 0 && y < c.H }

// Cost returns the traversal cost of cell (x, y); out-of-bounds cells and
// obstacles report +Inf.
func (c *CostGrid2D) Cost(x, y int) float64 {
	if !c.InBounds(x, y) {
		return math.Inf(1)
	}
	v := c.cost[y*c.W+x]
	if v <= 0 {
		return math.Inf(1)
	}
	return v
}

// Passable reports whether cell (x, y) can be traversed.
func (c *CostGrid2D) Passable(x, y int) bool { return !math.IsInf(c.Cost(x, y), 1) }

// Set assigns the traversal cost of cell (x, y); v <= 0 marks an obstacle.
func (c *CostGrid2D) Set(x, y int, v float64) {
	if c.InBounds(x, y) {
		c.cost[y*c.W+x] = v
	}
}
