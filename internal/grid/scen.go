package grid

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Scenario is one benchmark problem from a Moving AI ".scen" file: a start
// and goal on a named map, with the published optimal octile length. The
// Moving AI pathfinding benchmarks (the source of the paper's Boston map)
// distribute problem sets in this format; pp2d batch runs consume them.
type Scenario struct {
	Bucket         int
	MapName        string
	MapW, MapH     int
	StartX, StartY int // column, row from the TOP of the map file
	GoalX, GoalY   int
	OptimalLength  float64
}

// StartCell converts the scenario's start to this package's coordinates
// (y grows upward) for a map of height h.
func (s Scenario) StartCell(h int) (int, int) { return s.StartX, h - 1 - s.StartY }

// GoalCell converts the scenario's goal to this package's coordinates.
func (s Scenario) GoalCell(h int) (int, int) { return s.GoalX, h - 1 - s.GoalY }

// ParseScen reads a Moving AI scenario file. The leading "version" line is
// optional, matching files found in the wild.
func ParseScen(r io.Reader) ([]Scenario, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var out []Scenario
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if strings.HasPrefix(strings.ToLower(text), "version") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 9 {
			return nil, fmt.Errorf("scen: line %d has %d fields, want 9", line, len(fields))
		}
		var s Scenario
		var err error
		ints := []*int{&s.Bucket, &s.MapW, &s.MapH, &s.StartX, &s.StartY, &s.GoalX, &s.GoalY}
		idx := []int{0, 2, 3, 4, 5, 6, 7}
		for k, dst := range ints {
			*dst, err = strconv.Atoi(fields[idx[k]])
			if err != nil {
				return nil, fmt.Errorf("scen: line %d field %d: %v", line, idx[k], err)
			}
		}
		s.MapName = fields[1]
		s.OptimalLength, err = strconv.ParseFloat(fields[8], 64)
		if err != nil {
			return nil, fmt.Errorf("scen: line %d optimal length: %v", line, err)
		}
		if s.MapW <= 0 || s.MapH <= 0 {
			return nil, fmt.Errorf("scen: line %d: non-positive map size", line)
		}
		if s.StartX < 0 || s.StartX >= s.MapW || s.StartY < 0 || s.StartY >= s.MapH ||
			s.GoalX < 0 || s.GoalX >= s.MapW || s.GoalY < 0 || s.GoalY >= s.MapH {
			return nil, fmt.Errorf("scen: line %d: coordinates outside the map", line)
		}
		out = append(out, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// WriteScen serializes scenarios in Moving AI format (version 1 header).
func WriteScen(w io.Writer, scens []Scenario) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "version 1"); err != nil {
		return err
	}
	for _, s := range scens {
		if _, err := fmt.Fprintf(bw, "%d\t%s\t%d\t%d\t%d\t%d\t%d\t%d\t%.8f\n",
			s.Bucket, s.MapName, s.MapW, s.MapH,
			s.StartX, s.StartY, s.GoalX, s.GoalY, s.OptimalLength); err != nil {
			return err
		}
	}
	return bw.Flush()
}
