package grid

// Grid3D is a 3D voxel occupancy grid used by the UAV planner (pp3d) and the
// moving-target planner's space-time graph. Voxels are addressed by integer
// (x, y, z).
type Grid3D struct {
	W, H, D    int
	Resolution float64
	occ        []bool
}

// NewGrid3D returns an all-free voxel grid with resolution 1.
func NewGrid3D(w, h, d int) *Grid3D {
	if w <= 0 || h <= 0 || d <= 0 {
		panic("grid: non-positive Grid3D dimensions")
	}
	return &Grid3D{W: w, H: h, D: d, Resolution: 1, occ: make([]bool, w*h*d)}
}

// InBounds reports whether voxel (x, y, z) lies inside the grid.
func (g *Grid3D) InBounds(x, y, z int) bool {
	return x >= 0 && x < g.W && y >= 0 && y < g.H && z >= 0 && z < g.D
}

func (g *Grid3D) idx(x, y, z int) int { return (z*g.H+y)*g.W + x }

// Occupied reports whether voxel (x, y, z) is an obstacle; out-of-bounds
// voxels are occupied.
func (g *Grid3D) Occupied(x, y, z int) bool {
	if !g.InBounds(x, y, z) {
		return true
	}
	return g.occ[g.idx(x, y, z)]
}

// Free reports whether voxel (x, y, z) is traversable.
func (g *Grid3D) Free(x, y, z int) bool { return !g.Occupied(x, y, z) }

// Set marks voxel (x, y, z) occupied or free; out-of-bounds sets are ignored.
func (g *Grid3D) Set(x, y, z int, occupied bool) {
	if g.InBounds(x, y, z) {
		g.occ[g.idx(x, y, z)] = occupied
	}
}

// FillBox marks the inclusive voxel box occupied or free, clipped to the
// grid. Map generators build structures (buildings, tree canopies) from
// boxes.
func (g *Grid3D) FillBox(x0, y0, z0, x1, y1, z1 int, occupied bool) {
	if x0 > x1 {
		x0, x1 = x1, x0
	}
	if y0 > y1 {
		y0, y1 = y1, y0
	}
	if z0 > z1 {
		z0, z1 = z1, z0
	}
	for z := max(z0, 0); z <= min(z1, g.D-1); z++ {
		for y := max(y0, 0); y <= min(y1, g.H-1); y++ {
			for x := max(x0, 0); x <= min(x1, g.W-1); x++ {
				g.occ[g.idx(x, y, z)] = occupied
			}
		}
	}
}

// CountOccupied returns the number of obstacle voxels.
func (g *Grid3D) CountOccupied() int {
	n := 0
	for _, o := range g.occ {
		if o {
			n++
		}
	}
	return n
}
