package grid

import "math"

// DistanceTransform returns, for every cell, the Euclidean distance (in
// cells) to the nearest occupied cell, computed exactly with the
// Felzenszwalb–Huttenlocher two-pass algorithm in O(W·H).
//
// The field powers likelihood-field sensor models, true-Euclidean obstacle
// inflation, and clearance-aware path costs; the suite's ablation
// benchmarks use it as the alternative to per-pose footprint checking.
func (g *Grid2D) DistanceTransform() []float64 {
	w, h := g.W, g.H
	const inf = math.MaxFloat64 / 4

	// Squared distances, initialized per cell: 0 at obstacles.
	d := make([]float64, w*h)
	for i := range d {
		if g.occ[i] {
			d[i] = 0
		} else {
			d[i] = inf
		}
	}

	// 1D squared-distance transform along each column, then each row.
	buf := make([]float64, maxInt2(w, h))
	vtx := make([]int, maxInt2(w, h))
	z := make([]float64, maxInt2(w, h)+1)

	dt1d := func(f []float64, n int, out []float64) {
		k := 0
		vtx[0] = 0
		z[0] = -inf
		z[1] = inf
		for q := 1; q < n; q++ {
			var s float64
			for {
				v := vtx[k]
				s = ((f[q] + float64(q*q)) - (f[v] + float64(v*v))) / float64(2*q-2*v)
				if s > z[k] {
					break
				}
				k--
			}
			k++
			vtx[k] = q
			z[k] = s
			z[k+1] = inf
		}
		k = 0
		for q := 0; q < n; q++ {
			for z[k+1] < float64(q) {
				k++
			}
			v := vtx[k]
			dq := float64(q - v)
			out[q] = dq*dq + f[v]
		}
	}

	col := make([]float64, h)
	colOut := make([]float64, h)
	for x := 0; x < w; x++ {
		for y := 0; y < h; y++ {
			col[y] = d[y*w+x]
		}
		dt1d(col, h, colOut)
		for y := 0; y < h; y++ {
			d[y*w+x] = colOut[y]
		}
	}
	rowOut := make([]float64, w)
	for y := 0; y < h; y++ {
		copy(buf[:w], d[y*w:(y+1)*w])
		dt1d(buf[:w], w, rowOut)
		copy(d[y*w:(y+1)*w], rowOut)
	}

	for i := range d {
		d[i] = math.Sqrt(d[i])
	}
	return d
}

func maxInt2(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// SmoothPath shortcuts a cell-index path in place-order: repeatedly skip
// intermediate waypoints whose direct Bresenham line is collision-free.
// The result visits a subset of the original waypoints, is never longer,
// and stays obstacle-free. Planners use it as cheap grid-level
// post-processing (the 2D analogue of the rrtpp kernel's shortcutting).
func (g *Grid2D) SmoothPath(path []int) []int {
	if len(path) < 3 {
		return append([]int(nil), path...)
	}
	w := g.W
	out := []int{path[0]}
	i := 0
	for i < len(path)-1 {
		// Greedily find the farthest j directly reachable from i.
		j := i + 1
		for k := len(path) - 1; k > j; k-- {
			x0, y0 := path[i]%w, path[i]/w
			x1, y1 := path[k]%w, path[k]/w
			if g.LineFree2D(x0, y0, x1, y1) {
				j = k
				break
			}
		}
		out = append(out, path[j])
		i = j
	}
	return out
}
