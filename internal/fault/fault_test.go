package fault

import (
	"math"
	"reflect"
	"testing"
	"time"
)

func chaosConfig() Config {
	return Config{
		Seed:     7,
		Dropout:  0.2,
		NaN:      0.1,
		Noise:    0.1,
		Stall:    0.5,
		StallFor: time.Microsecond,
	}
}

// drive runs a fixed measurement/step pattern through an injector and
// returns the values Corrupt produced (NaN normalized for comparison).
func drive(in *Injector) ([]float64, []bool) {
	var vals []float64
	var drops []bool
	for step := 0; step < 20; step++ {
		for m := 0; m < 5; m++ {
			drops = append(drops, in.Drop())
			v := in.Corrupt(float64(m) + 1)
			if math.IsNaN(v) {
				v = -12345 // NaN != NaN; normalize for equality checks
			}
			vals = append(vals, v)
		}
		in.OnStep()
	}
	return vals, drops
}

// TestDeterministicSchedule checks two injectors with identical derivation
// inputs produce identical fault decisions and event logs — the property
// the suite's any-parallelism determinism contract rests on.
func TestDeterministicSchedule(t *testing.T) {
	a := New(chaosConfig(), "pfl", 3)
	b := New(chaosConfig(), "pfl", 3)
	av, ad := drive(a)
	bv, bd := drive(b)
	if !reflect.DeepEqual(av, bv) || !reflect.DeepEqual(ad, bd) {
		t.Fatal("same (seed, kernel, run) produced different fault decisions")
	}
	if !reflect.DeepEqual(a.Events(), b.Events()) {
		t.Fatalf("event logs differ:\n%v\n%v", a.Events(), b.Events())
	}
	if len(a.Events()) == 0 {
		t.Fatal("chaos config fired no events over 100 measurements")
	}
}

// TestScheduleVariesAcrossKernelsAndTrials checks the derivation actually
// decorrelates kernels and run seeds.
func TestScheduleVariesAcrossKernelsAndTrials(t *testing.T) {
	base, _ := drive(New(chaosConfig(), "pfl", 3))
	otherKernel, _ := drive(New(chaosConfig(), "ekfslam", 3))
	otherTrial, _ := drive(New(chaosConfig(), "pfl", 4))
	if reflect.DeepEqual(base, otherKernel) {
		t.Error("different kernels share a fault schedule")
	}
	if reflect.DeepEqual(base, otherTrial) {
		t.Error("different run seeds share a fault schedule")
	}
}

// TestNilInjectorIsInert checks the nil injector contract call sites rely
// on.
func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	if in.Drop() {
		t.Error("nil injector dropped a measurement")
	}
	if v := in.Corrupt(3.5); v != 3.5 {
		t.Errorf("nil injector corrupted: %v", v)
	}
	in.OnStep()
	if ev := in.Events(); ev != nil {
		t.Errorf("nil injector recorded events: %v", ev)
	}
}

// TestInactiveConfigs checks New returns the inert injector for zero
// configs and for kernels excluded by Only.
func TestInactiveConfigs(t *testing.T) {
	if New(Config{Seed: 1}, "pfl", 1) != nil {
		t.Error("zero-rate config built an injector")
	}
	cfg := chaosConfig()
	cfg.Only = []string{"cem"}
	if New(cfg, "pfl", 1) != nil {
		t.Error("Only filter did not exclude kernel")
	}
	if New(cfg, "cem", 1) == nil {
		t.Error("Only filter excluded its own kernel")
	}
}

// TestPanicSchedule checks a certain panic fires at step 1 as an
// attributable InjectedPanic, and that sub-certain rates are seed-stable.
func TestPanicSchedule(t *testing.T) {
	in := New(Config{Seed: 1, Panic: 1}, "cem", 9)
	defer func() {
		r := recover()
		ip, ok := r.(*InjectedPanic)
		if !ok {
			t.Fatalf("recovered %v (%T), want *InjectedPanic", r, r)
		}
		if ip.Kernel != "cem" || ip.Step != 1 {
			t.Errorf("InjectedPanic = %+v, want kernel cem step 1", ip)
		}
		evs := in.Events()
		if len(evs) != 1 || evs[0].Kind != KindPanic {
			t.Errorf("events = %v, want one panic event", evs)
		}
	}()
	in.OnStep()
	t.Fatal("panic rate 1 did not panic at step 1")
}

// TestCorruptProducesNonFinite checks NaN-rate-1 corruption always yields a
// non-finite value.
func TestCorruptProducesNonFinite(t *testing.T) {
	in := New(Config{Seed: 2, NaN: 1}, "ekfslam", 1)
	for i := 0; i < 50; i++ {
		v := in.Corrupt(5)
		if !math.IsNaN(v) && !math.IsInf(v, 0) {
			t.Fatalf("Corrupt(5) = %v, want NaN or Inf", v)
		}
	}
}

// TestEventLogTruncation checks the log is bounded and reports overflow.
func TestEventLogTruncation(t *testing.T) {
	in := New(Config{Seed: 3, Dropout: 1}, "pfl", 1)
	for i := 0; i < maxEvents+100; i++ {
		in.Drop()
	}
	evs := in.Events()
	if len(evs) != maxEvents+1 {
		t.Fatalf("got %d events, want %d + truncation marker", len(evs), maxEvents)
	}
	if evs[len(evs)-1].Kind != "truncated" {
		t.Errorf("last event = %v, want truncation marker", evs[len(evs)-1])
	}
}
