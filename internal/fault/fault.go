// Package fault is the suite's deterministic chaos-injection layer. It
// perturbs a kernel run with the failure modes a deployed robot stack must
// survive — sensor dropout, observation noise spikes, NaN/Inf corruption of
// measurement streams, artificial step stalls, and outright kernel panics —
// while keeping the schedule fully reproducible: an Injector is seeded from
// (chaos seed, kernel name, run seed), so the same chaos seed produces the
// same fault schedule for every (kernel, trial) pair regardless of how many
// suite workers run concurrently.
//
// The injector has two independent random streams: one consumed by the
// sensor layer (Drop/Corrupt, called per measurement) and one consumed by
// the execution layer (OnStep, called once per kernel step). Splitting the
// streams keeps each schedule stable even though sensor reads and steps
// interleave differently across kernels.
//
// Every fault that fires is recorded as an Event, so a chaos sweep's
// failures and degradations are attributable in the report.
package fault

import (
	"fmt"
	"math"
	"time"

	"repro/internal/rng"
)

// Kind classifies an injected fault.
type Kind string

// The injectable fault classes.
const (
	// KindDropout drops a sensor measurement (a beam reads max range, a
	// landmark observation is lost).
	KindDropout Kind = "dropout"
	// KindNaN corrupts a measurement to NaN or ±Inf.
	KindNaN Kind = "nan"
	// KindNoise multiplies a measurement error by a large spike factor.
	KindNoise Kind = "noise"
	// KindStall blocks the kernel for a fixed duration at a step boundary.
	KindStall Kind = "stall"
	// KindPanic panics inside the kernel's main loop.
	KindPanic Kind = "panic"
)

// Config sets the per-opportunity fault rates. All rates are probabilities
// in [0, 1]; a zero Config injects nothing.
type Config struct {
	// Seed is the chaos seed. The per-run schedule is derived from it, the
	// kernel name, and the run seed, never from shared state, so schedules
	// are identical at any parallelism.
	Seed int64
	// Dropout is the per-measurement probability of losing the reading.
	Dropout float64
	// NaN is the per-measurement probability of NaN/Inf corruption.
	NaN float64
	// Noise is the per-measurement probability of a noise spike; NoiseScale
	// sizes the spike relative to the measurement magnitude.
	Noise      float64
	NoiseScale float64
	// Stall is the per-step probability of an artificial stall of StallFor.
	Stall    float64
	StallFor time.Duration
	// Panic is the per-run probability that the kernel panics at one of
	// its first steps. A rate >= 1 panics deterministically at step 1.
	Panic float64
	// Only restricts injection to the named kernels (empty = all).
	Only []string
}

// Active reports whether the config injects anything into the named kernel.
func (c Config) Active(kernel string) bool {
	if c.Dropout <= 0 && c.NaN <= 0 && c.Noise <= 0 && c.Stall <= 0 && c.Panic <= 0 {
		return false
	}
	if len(c.Only) == 0 {
		return true
	}
	for _, k := range c.Only {
		if k == kernel {
			return true
		}
	}
	return false
}

// Event is one fault that fired, stamped with the kernel step it fired in
// (the step in progress for sensor faults; 0 before the first step ends).
type Event struct {
	Step   int64
	Kind   Kind
	Detail string
}

// maxEvents bounds the per-run event log; a final synthetic "truncated"
// event reports how many more fired.
const maxEvents = 1024

// InjectedPanic is the value an injector panics with, so recovery layers
// can attribute the panic to chaos injection rather than a kernel bug.
type InjectedPanic struct {
	Kernel string
	Step   int64
}

func (p *InjectedPanic) String() string {
	return fmt.Sprintf("fault: injected panic in %s at step %d", p.Kernel, p.Step)
}

// Injector perturbs one kernel run. A nil *Injector is valid and injects
// nothing, so call sites need no guards. An Injector is not safe for
// concurrent use; each run owns its own (matching the one-Profile-per-run
// discipline of the suite engine).
type Injector struct {
	cfg    Config
	kernel string

	sense *rng.RNG // consumed per measurement (Drop/Corrupt)
	step  *rng.RNG // consumed per step (OnStep)

	stepN   int64
	panicAt int64 // 0 = never

	events    []Event
	truncated int64
}

// New derives the injector for one run. It returns nil — the inert
// injector — when cfg injects nothing into this kernel, so enabling chaos
// for a kernel subset costs the others nothing.
func New(cfg Config, kernel string, runSeed int64) *Injector {
	if !cfg.Active(kernel) {
		return nil
	}
	if cfg.NoiseScale <= 0 {
		cfg.NoiseScale = 10
	}
	if cfg.StallFor <= 0 {
		cfg.StallFor = time.Millisecond
	}
	base := cfg.Seed ^ mix(runSeed) ^ hashName(kernel)
	in := &Injector{
		cfg:    cfg,
		kernel: kernel,
		sense:  rng.New(base ^ 0x53454e53), // "SENS"
		step:   rng.New(base ^ 0x53544550), // "STEP"
	}
	if cfg.Panic > 0 {
		pr := rng.New(base ^ 0x50414e49) // "PANI"
		if cfg.Panic >= 1 {
			in.panicAt = 1
		} else if pr.Float64() < cfg.Panic {
			in.panicAt = 1 + int64(pr.Intn(8))
		}
	}
	return in
}

// mix decorrelates nearby run seeds (suite trials run with base+t) with a
// splitmix64 round so trial schedules are independent.
func mix(seed int64) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// hashName folds a kernel name into a seed component (FNV-1a).
func hashName(s string) int64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return int64(h)
}

// record appends an event, bounded by maxEvents.
func (in *Injector) record(k Kind, detail string) {
	if len(in.events) >= maxEvents {
		in.truncated++
		return
	}
	in.events = append(in.events, Event{Step: in.stepN, Kind: k, Detail: detail})
}

// Drop reports whether the current measurement should be lost. Nil-safe.
func (in *Injector) Drop() bool {
	if in == nil || in.cfg.Dropout <= 0 {
		return false
	}
	if in.sense.Float64() < in.cfg.Dropout {
		in.record(KindDropout, "measurement dropped")
		return true
	}
	return false
}

// Corrupt perturbs one measurement: NaN/Inf corruption first, then a noise
// spike scaled to the measurement magnitude. Nil-safe; returns v unchanged
// when nothing fires.
func (in *Injector) Corrupt(v float64) float64 {
	if in == nil {
		return v
	}
	if in.cfg.NaN > 0 && in.sense.Float64() < in.cfg.NaN {
		// Alternate NaN and ±Inf so both corruption shapes are exercised.
		switch in.sense.Intn(3) {
		case 0:
			in.record(KindNaN, "measurement -> +Inf")
			return math.Inf(1)
		case 1:
			in.record(KindNaN, "measurement -> -Inf")
			return math.Inf(-1)
		default:
			in.record(KindNaN, "measurement -> NaN")
			return math.NaN()
		}
	}
	if in.cfg.Noise > 0 && in.sense.Float64() < in.cfg.Noise {
		mag := math.Abs(v)
		if mag < 1 {
			mag = 1
		}
		spike := in.sense.Normal(0, in.cfg.NoiseScale*mag)
		in.record(KindNoise, fmt.Sprintf("spike %+.3g", spike))
		return v + spike
	}
	return v
}

// OnStep is the uniform per-step injection point (profile.SetStepHook wires
// it into every kernel's StepDone): it fires scheduled stalls and the
// injected panic. Nil-safe.
func (in *Injector) OnStep() {
	if in == nil {
		return
	}
	in.stepN++
	if in.cfg.Stall > 0 && in.step.Float64() < in.cfg.Stall {
		in.record(KindStall, in.cfg.StallFor.String())
		time.Sleep(in.cfg.StallFor)
	}
	if in.panicAt > 0 && in.stepN == in.panicAt {
		in.record(KindPanic, "injected panic")
		panic(&InjectedPanic{Kernel: in.kernel, Step: in.stepN})
	}
}

// Events returns the faults that fired, in order, with a final synthetic
// "truncated" entry when the log overflowed. Nil-safe.
func (in *Injector) Events() []Event {
	if in == nil {
		return nil
	}
	if in.truncated > 0 {
		out := make([]Event, len(in.events), len(in.events)+1)
		copy(out, in.events)
		return append(out, Event{
			Step:   in.stepN,
			Kind:   "truncated",
			Detail: fmt.Sprintf("%d further events not recorded", in.truncated),
		})
	}
	return in.events
}
