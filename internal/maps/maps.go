// Package maps generates the synthetic inputsets that stand in for the
// datasets used by the paper:
//
//   - IndoorMap replaces the CMU Wean Hall occupancy map used by the
//     particle filter kernel (corridors and rooms; five regions evaluated).
//   - CityMap replaces Boston_1_1024 from the Moving AI benchmark for pp2d
//     (street grid with city blocks).
//   - Campus3D replaces the Freiburg fr_campus 3D scan for pp3d (buildings,
//     trees, and an overpass in a voxel grid).
//   - MovtarTerrain builds the moving-target planner's cost landscapes
//     ("every location in the environment has a particular cost").
//   - PRobMap recreates the small PythonRobotics a_star demo map used in the
//     paper's Fig. 21 library comparison.
//
// All generators are deterministic in their seed, so inputsets are
// reproducible across runs and machines.
package maps

import (
	"repro/internal/grid"
	"repro/internal/rng"
)

// IndoorMap builds a corridor-and-room building floor plan of w×h cells.
// The layout follows the structure that drives particle filter ray-casting
// cost: long straight corridors (long rays) connecting rooms with clutter
// (short rays).
func IndoorMap(w, h int, seed int64) *grid.Grid2D {
	w, h = clampDim(w, 16), clampDim(h, 16)
	r := rng.New(seed)
	g := grid.NewGrid2D(w, h)

	// Solid outer walls.
	g.Fill(0, 0, w-1, 0, true)
	g.Fill(0, h-1, w-1, h-1, true)
	g.Fill(0, 0, 0, h-1, true)
	g.Fill(w-1, 0, w-1, h-1, true)

	// A horizontal main corridor across the middle of the floor.
	corridorHalf := maxInt(2, h/20)
	cy := h / 2

	// Rooms above and below the corridor, separated by walls with doors.
	// Room widths are randomized per wall: a localization filter relies on
	// asymmetric structure to break perceptual aliasing between rooms.
	minRoom := maxInt(6, w/24)
	for x0 := 1; x0 < w-minRoom; {
		roomW := minRoom + r.Intn(maxInt(1, w/8))
		if x0+roomW >= w-1 {
			roomW = w - 1 - x0
		}
		// Wall between rooms (vertical), with a gap only at the corridor.
		for y := 1; y < h-1; y++ {
			if y >= cy-corridorHalf && y <= cy+corridorHalf {
				continue
			}
			g.Set(x0+roomW-1, y, true)
		}
		// Wall along the corridor with a random door per room side.
		doorTop := x0 + 1 + r.Intn(maxInt(1, roomW-3))
		doorBot := x0 + 1 + r.Intn(maxInt(1, roomW-3))
		for x := x0; x < x0+roomW-1 && x < w-1; x++ {
			if x != doorTop && x != doorTop+1 {
				g.Set(x, cy+corridorHalf, true)
			}
			if x != doorBot && x != doorBot+1 {
				g.Set(x, cy-corridorHalf, true)
			}
		}
		// Clutter inside the rooms (desks, shelves): varied random boxes,
		// another aliasing breaker.
		for k := 0; k < 2+r.Intn(4); k++ {
			bx := x0 + 1 + r.Intn(maxInt(1, roomW-4))
			byTop := cy + corridorHalf + 2 + r.Intn(maxInt(1, h/2-corridorHalf-6))
			g.Fill(bx, byTop, bx+1+r.Intn(3), byTop+1+r.Intn(3), true)
			byBot := 2 + r.Intn(maxInt(1, h/2-corridorHalf-6))
			g.Fill(bx, byBot, bx+1+r.Intn(3), byBot+1+r.Intn(3), true)
		}
		x0 += roomW
	}

	// Alcoves: irregular niches carved into the corridor walls. They give
	// a laser scan a distinctive side profile at every corridor position,
	// which is what makes localization along a long corridor well-posed
	// (real buildings have doorframes, radiators, and display cases doing
	// this job).
	nAlcoves := maxInt(4, w/12)
	for k := 0; k < nAlcoves; k++ {
		ax := 2 + r.Intn(w-8)
		aw := 2 + r.Intn(4)
		depth := 2 + r.Intn(3)
		if r.Float64() < 0.5 {
			g.Fill(ax, cy+corridorHalf, ax+aw, cy+corridorHalf+depth, false)
		} else {
			g.Fill(ax, cy-corridorHalf-depth, ax+aw, cy-corridorHalf, false)
		}
	}
	return g
}

// IndoorRegion identifies one of the five building parts the paper evaluates
// pfl in. Region returns a free-space starting pose area (cell coordinates)
// for region i in [0, 5).
func IndoorRegion(g *grid.Grid2D, i int) (x, y int) {
	// Regions are spread along the main corridor, which is guaranteed free.
	n := 5
	i = ((i % n) + n) % n
	x = g.W * (2*i + 1) / (2 * n)
	y = g.H / 2
	for dx := 0; dx < g.W; dx++ {
		if g.Free(x+dx, y) {
			return x + dx, y
		}
		if g.Free(x-dx, y) {
			return x - dx, y
		}
	}
	return x, y
}

// CityMap builds a street-grid city snapshot of w×h cells: rectangular
// blocks (obstacles) separated by streets, with occasional plazas and
// diagonal avenues cleared, mimicking the obstacle statistics of the Boston
// map used by pp2d.
func CityMap(w, h int, seed int64) *grid.Grid2D {
	w, h = clampDim(w, 16), clampDim(h, 16)
	r := rng.New(seed)
	g := grid.NewGrid2D(w, h)

	// Block pitch and street width are sized so a car-scale footprint
	// (~10 cells long at the default 0.5 m resolution) can traverse and
	// turn at intersections.
	block := maxInt(24, w/12) // building block pitch
	street := maxInt(10, block/3)
	for by := 0; by < h; by += block {
		for bx := 0; bx < w; bx += block {
			// Leave some lots empty (parks) to vary obstacle patterns.
			if r.Float64() < 0.12 {
				continue
			}
			// Building footprint fills the lot minus the street margin,
			// jittered so edges are not perfectly aligned.
			x0 := bx + street + r.Intn(2)
			y0 := by + street + r.Intn(2)
			x1 := bx + block - 1 - r.Intn(2)
			y1 := by + block - 1 - r.Intn(2)
			if x1 > x0 && y1 > y0 {
				g.Fill(x0, y0, x1, y1, true)
			}
		}
	}
	// A river with bridges: a horizontal obstacle band with gaps, which
	// forces long detours like Boston's Charles River crossings.
	ry := h / 2
	for x := 0; x < w; x++ {
		for y := ry - street; y <= ry+street; y++ {
			g.Set(x, y, true)
		}
	}
	nBridges := maxInt(2, w/(4*block))
	for b := 0; b < nBridges; b++ {
		bx := (b*2 + 1) * w / (2 * nBridges)
		g.Fill(bx-street/2, ry-street, bx+street/2, ry+street, false)
	}
	return g
}

// FreeCellNear returns a free cell at or near (x, y), searching outward in
// Chebyshev rings. It panics if the entire grid is occupied.
func FreeCellNear(g *grid.Grid2D, x, y int) (int, int) {
	for r := 0; r < g.W+g.H; r++ {
		for dy := -r; dy <= r; dy++ {
			for dx := -r; dx <= r; dx++ {
				if maxInt(absInt(dx), absInt(dy)) != r {
					continue
				}
				if g.InBounds(x+dx, y+dy) && g.Free(x+dx, y+dy) {
					return x + dx, y + dy
				}
			}
		}
	}
	panic("maps: no free cell in grid")
}

// Campus3D builds a voxel campus: buildings of varying heights, tree
// canopies (occupied boxes floating above free trunks), and an overpass the
// UAV can fly under or over — the 3D obstacle patterns that drive pp3d's
// collision checks and graph search.
func Campus3D(w, h, d int, seed int64) *grid.Grid3D {
	w, h, d = clampDim(w, 16), clampDim(h, 16), clampDim(d, 8)
	r := rng.New(seed)
	g := grid.NewGrid3D(w, h, d)

	// Ground plane.
	g.FillBox(0, 0, 0, w-1, h-1, 0, true)

	block := maxInt(8, w/12)
	for by := block / 2; by < h-block; by += block {
		for bx := block / 2; bx < w-block; bx += block {
			roll := r.Float64()
			switch {
			case roll < 0.35: // building
				bw := 2 + r.Intn(block/2)
				bh := 2 + r.Intn(block/2)
				height := 2 + r.Intn(maxInt(2, d-3))
				g.FillBox(bx, by, 1, bx+bw, by+bh, height, true)
			case roll < 0.55: // tree: thin trunk, wide canopy
				trunkH := 1 + r.Intn(maxInt(1, d/3))
				g.FillBox(bx, by, 1, bx, by, trunkH, true)
				g.FillBox(bx-1, by-1, trunkH+1, bx+1, by+1, minInt(trunkH+2, d-1), true)
			}
		}
	}
	// Overpass: a horizontal slab at mid altitude spanning the map, with a
	// clear corridor beneath it.
	oz := d / 2
	g.FillBox(0, h/3, oz, w-1, h/3+1, oz, true)
	return g
}

// FreeVoxelNear returns a free voxel at or near (x, y, z).
func FreeVoxelNear(g *grid.Grid3D, x, y, z int) (int, int, int) {
	for r := 0; r < g.W+g.H+g.D; r++ {
		for dz := -r; dz <= r; dz++ {
			for dy := -r; dy <= r; dy++ {
				for dx := -r; dx <= r; dx++ {
					if maxInt(absInt(dx), maxInt(absInt(dy), absInt(dz))) != r {
						continue
					}
					if g.InBounds(x+dx, y+dy, z+dz) && g.Free(x+dx, y+dy, z+dz) {
						return x + dx, y + dy, z + dz
					}
				}
			}
		}
	}
	panic("maps: no free voxel in grid")
}

// MovtarTerrain builds a cost landscape for the moving-target kernel: most
// cells have small cost, ridges of high cost cross the map, and a few
// regions are impassable. Costs are in [1, 10]; obstacles are 0.
func MovtarTerrain(w, h int, seed int64) *grid.CostGrid2D {
	w, h = clampDim(w, 16), clampDim(h, 16)
	r := rng.New(seed)
	c := grid.NewCostGrid2D(w, h, 1)

	// High-cost ridges (e.g. rough terrain) as thick diagonal bands.
	nRidges := maxInt(2, w/32)
	for k := 0; k < nRidges; k++ {
		x0 := r.Intn(w)
		dir := 1
		if r.Float64() < 0.5 {
			dir = -1
		}
		cost := 4 + 6*r.Float64()
		for y := 0; y < h; y++ {
			x := x0 + dir*y/2
			for dx := -2; dx <= 2; dx++ {
				if c.InBounds(x+dx, y) {
					c.Set(x+dx, y, cost)
				}
			}
		}
	}
	// Impassable blocks.
	nBlocks := maxInt(1, w*h/4096)
	for k := 0; k < nBlocks; k++ {
		bx, by := r.Intn(w), r.Intn(h)
		bw, bh := 2+r.Intn(w/8), 2+r.Intn(h/8)
		for y := by; y < minInt(by+bh, h); y++ {
			for x := bx; x < minInt(bx+bw, w); x++ {
				c.Set(x, y, 0)
			}
		}
	}
	// Keep the borders passable so target trajectories can circulate.
	for x := 0; x < w; x++ {
		c.Set(x, 0, 1)
		c.Set(x, h-1, 1)
	}
	for y := 0; y < h; y++ {
		c.Set(0, y, 1)
		c.Set(w-1, y, 1)
	}
	return c
}

// PRobMap recreates the PythonRobotics a_star demo environment used in the
// paper's Fig. 21 comparison: a ~60×60 bounded area with a wall rising from
// the bottom at one third of the width and a wall descending from the top at
// two thirds, forcing an S-shaped route from (10,10) to (50,50).
func PRobMap() *grid.Grid2D {
	const n = 61
	g := grid.NewGrid2D(n, n)
	// Border walls.
	g.Fill(0, 0, n-1, 0, true)
	g.Fill(0, n-1, n-1, n-1, true)
	g.Fill(0, 0, 0, n-1, true)
	g.Fill(n-1, 0, n-1, n-1, true)
	// Wall from the bottom up to 2/3 height at x = 20.
	g.Fill(20, 0, 20, 40, true)
	// Wall from the top down to 1/3 height at x = 40.
	g.Fill(40, 20, 40, n-1, true)
	return g
}

// PRobStartGoal returns the start and goal cells of the PythonRobotics demo
// scenario, scaled by factor k (matching grid.Grid2D.Scale).
func PRobStartGoal(k int) (sx, sy, gx, gy int) {
	if k < 1 {
		k = 1
	}
	return 10 * k, 10 * k, 50 * k, 50 * k
}

// clampDim raises a requested dimension to the generator's structural
// minimum. The layouts carve corridors, streets, and clutter with fixed
// margins (e.g. IndoorMap's alcoves draw from r.Intn(w-8)), so degenerate
// sizes would panic; a caller asking for a tiny or non-positive map gets
// the smallest structurally valid one instead.
func clampDim(v, min int) int {
	if v < min {
		return min
	}
	return v
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
