package maps

import (
	"math"
	"testing"
)

// FuzzIndoorMap drives the indoor-map generator with arbitrary dimensions
// and seeds: any input must yield a structurally valid floor plan — no
// panics on degenerate sizes, sealed outer walls, some free interior for
// the particle filter to localize in, and seed-determinism.
func FuzzIndoorMap(f *testing.F) {
	f.Add(64, 48, int64(1))
	f.Add(400, 300, int64(42))
	f.Add(16, 16, int64(0))
	f.Add(0, -5, int64(99)) // degenerate: clamped, not panicking
	f.Add(9, 7, int64(-1))  // below the alcove margin (r.Intn(w-8))
	f.Add(1, 1000000, int64(3))
	f.Fuzz(func(t *testing.T, w, h int, seed int64) {
		if w > 1024 || h > 1024 {
			t.Skip("bounding fuzz memory")
		}
		g := IndoorMap(w, h, seed)
		if g.W < 16 || g.H < 16 {
			t.Fatalf("dims %dx%d below the structural minimum", g.W, g.H)
		}
		for x := 0; x < g.W; x++ {
			if g.Free(x, 0) || g.Free(x, g.H-1) {
				t.Fatalf("outer wall open at x=%d", x)
			}
		}
		for y := 0; y < g.H; y++ {
			if g.Free(0, y) || g.Free(g.W-1, y) {
				t.Fatalf("outer wall open at y=%d", y)
			}
		}
		free := 0
		for y := 0; y < g.H; y++ {
			for x := 0; x < g.W; x++ {
				if g.Free(x, y) {
					free++
				}
			}
		}
		if free == 0 {
			t.Fatal("map has no free space")
		}
		// Same (dims, seed) must reproduce the same map cell for cell.
		g2 := IndoorMap(w, h, seed)
		for y := 0; y < g.H; y++ {
			for x := 0; x < g.W; x++ {
				if g.Free(x, y) != g2.Free(x, y) {
					t.Fatalf("nondeterministic at (%d,%d)", x, y)
				}
			}
		}
	})
}

// FuzzMovtarTerrain checks the cost-landscape generator on arbitrary
// dimensions and seeds: every passable cell's cost stays in the documented
// [1, 10] band (obstacles report +Inf, never NaN), and the border ring
// stays passable so target trajectories can circulate.
func FuzzMovtarTerrain(f *testing.F) {
	f.Add(64, 64, int64(1))
	f.Add(16, 16, int64(0))
	f.Add(-3, 7, int64(5))
	f.Add(200, 100, int64(-9))
	f.Fuzz(func(t *testing.T, w, h int, seed int64) {
		if w > 1024 || h > 1024 {
			t.Skip("bounding fuzz memory")
		}
		c := MovtarTerrain(w, h, seed)
		for y := 0; y < c.H; y++ {
			for x := 0; x < c.W; x++ {
				v := c.Cost(x, y)
				if math.IsNaN(v) {
					t.Fatalf("cost(%d,%d) is NaN", x, y)
				}
				if !math.IsInf(v, 1) && (v < 1 || v > 10) {
					t.Fatalf("cost(%d,%d) = %v outside [1, 10]", x, y, v)
				}
			}
		}
		for x := 0; x < c.W; x++ {
			if !c.Passable(x, 0) || !c.Passable(x, c.H-1) {
				t.Fatalf("border impassable at x=%d", x)
			}
		}
		for y := 0; y < c.H; y++ {
			if !c.Passable(0, y) || !c.Passable(c.W-1, y) {
				t.Fatalf("border impassable at y=%d", y)
			}
		}
	})
}
