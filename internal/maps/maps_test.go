package maps

import (
	"testing"
	"testing/quick"

	"repro/internal/grid"
)

func TestIndoorMapStructure(t *testing.T) {
	g := IndoorMap(192, 96, 1)
	// Outer walls are solid.
	for x := 0; x < g.W; x++ {
		if !g.Occupied(x, 0) || !g.Occupied(x, g.H-1) {
			t.Fatalf("missing outer wall at x=%d", x)
		}
	}
	for y := 0; y < g.H; y++ {
		if !g.Occupied(0, y) || !g.Occupied(g.W-1, y) {
			t.Fatalf("missing outer wall at y=%d", y)
		}
	}
	// The main corridor is traversable.
	free := 0
	for x := 1; x < g.W-1; x++ {
		if g.Free(x, g.H/2) {
			free++
		}
	}
	if free < g.W/2 {
		t.Fatalf("corridor mostly blocked: %d free cells", free)
	}
	// Deterministic in the seed.
	h := IndoorMap(192, 96, 1)
	for i := 0; i < g.W*g.H; i++ {
		if g.Occupied(i%g.W, i/g.W) != h.Occupied(i%g.W, i/g.W) {
			t.Fatal("IndoorMap not deterministic")
		}
	}
}

func TestIndoorRegionsAreFree(t *testing.T) {
	g := IndoorMap(192, 96, 1)
	for region := 0; region < 5; region++ {
		x, y := IndoorRegion(g, region)
		if !g.Free(x, y) {
			t.Fatalf("region %d start (%d,%d) occupied", region, x, y)
		}
	}
	// Regions wrap and accept negatives.
	x, y := IndoorRegion(g, -1)
	if !g.Free(x, y) {
		t.Fatal("negative region index broken")
	}
}

func TestCityMapHasStreets(t *testing.T) {
	g := CityMap(256, 256, 1)
	occ := g.CountOccupied()
	total := 256 * 256
	if occ < total/10 || occ > total*9/10 {
		t.Fatalf("city occupancy %d/%d out of plausible band", occ, total)
	}
	// The map must be mostly connected: flood fill from a free corner cell
	// should reach a large share of free cells.
	var sx, sy int
	found := false
	for y := 0; y < 20 && !found; y++ {
		for x := 0; x < 20 && !found; x++ {
			if g.Free(x, y) {
				sx, sy, found = x, y, true
			}
		}
	}
	if !found {
		t.Fatal("no free cell near origin")
	}
	reached := floodCount(g, sx, sy)
	freeCells := total - occ
	if reached < freeCells/2 {
		t.Fatalf("flood reached %d of %d free cells — streets disconnected", reached, freeCells)
	}
}

func floodCount(g *grid.Grid2D, sx, sy int) int {
	seen := make([]bool, g.W*g.H)
	stack := []int{sy*g.W + sx}
	seen[stack[0]] = true
	count := 0
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		count++
		x, y := id%g.W, id/g.W
		for _, d := range [4][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
			nx, ny := x+d[0], y+d[1]
			if g.InBounds(nx, ny) && g.Free(nx, ny) && !seen[ny*g.W+nx] {
				seen[ny*g.W+nx] = true
				stack = append(stack, ny*g.W+nx)
			}
		}
	}
	return count
}

func TestFreeCellNear(t *testing.T) {
	g := grid.NewGrid2D(10, 10)
	g.Fill(0, 0, 9, 9, true)
	g.Set(7, 7, false)
	x, y := FreeCellNear(g, 0, 0)
	if x != 7 || y != 7 {
		t.Fatalf("FreeCellNear = (%d,%d)", x, y)
	}
}

func TestCampus3D(t *testing.T) {
	g := Campus3D(80, 80, 16, 1)
	// Ground plane occupied.
	for x := 0; x < 80; x += 7 {
		for y := 0; y < 80; y += 7 {
			if g.Free(x, y, 0) {
				t.Fatalf("ground free at (%d,%d)", x, y)
			}
		}
	}
	// Sky mostly free at top altitude.
	freeTop := 0
	for x := 0; x < 80; x++ {
		for y := 0; y < 80; y++ {
			if g.Free(x, y, 15) {
				freeTop++
			}
		}
	}
	if freeTop < 80*80/2 {
		t.Fatalf("top altitude mostly blocked: %d free", freeTop)
	}
	// Some buildings exist above ground.
	if g.CountOccupied() <= 80*80 {
		t.Fatal("campus has no structures above the ground plane")
	}
}

func TestFreeVoxelNear(t *testing.T) {
	g := grid.NewGrid3D(10, 10, 10)
	g.FillBox(0, 0, 0, 9, 9, 9, true)
	g.Set(3, 4, 5, false)
	x, y, z := FreeVoxelNear(g, 0, 0, 0)
	if x != 3 || y != 4 || z != 5 {
		t.Fatalf("FreeVoxelNear = (%d,%d,%d)", x, y, z)
	}
}

func TestMovtarTerrain(t *testing.T) {
	c := MovtarTerrain(128, 128, 1)
	// Borders passable (target trajectories circulate there).
	for x := 0; x < 128; x++ {
		if !c.Passable(x, 0) || !c.Passable(x, 127) {
			t.Fatalf("border blocked at x=%d", x)
		}
	}
	// Costs in range; some high-cost ridge cells exist.
	high := 0
	for y := 0; y < 128; y++ {
		for x := 0; x < 128; x++ {
			v := c.Cost(x, y)
			if c.Passable(x, y) && (v < 1 || v > 10) {
				t.Fatalf("cost %v out of [1,10] at (%d,%d)", v, x, y)
			}
			if c.Passable(x, y) && v > 3 {
				high++
			}
		}
	}
	if high == 0 {
		t.Fatal("terrain has no ridges")
	}
}

func TestPRobMap(t *testing.T) {
	g := PRobMap()
	sx, sy, gx, gy := PRobStartGoal(1)
	if !g.Free(sx, sy) || !g.Free(gx, gy) {
		t.Fatal("P-Rob start/goal not free")
	}
	// The two internal walls exist.
	if !g.Occupied(20, 10) || !g.Occupied(40, 50) {
		t.Fatal("internal walls missing")
	}
	// Gap above the first wall and below the second.
	if !g.Free(20, 45) || !g.Free(40, 15) {
		t.Fatal("wall gaps missing")
	}
}

func TestPRobStartGoalScales(t *testing.T) {
	if err := quick.Check(func(k8 uint8) bool {
		k := int(k8%16) + 1
		g := PRobMap().Scale(k)
		sx, sy, gx, gy := PRobStartGoal(k)
		return g.Free(sx, sy) && g.Free(gx, gy)
	}, &quick.Config{MaxCount: 16}); err != nil {
		t.Fatal(err)
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a := CityMap(128, 128, 9)
	b := CityMap(128, 128, 9)
	if a.CountOccupied() != b.CountOccupied() {
		t.Fatal("CityMap not deterministic")
	}
	c := Campus3D(40, 40, 10, 9)
	d := Campus3D(40, 40, 10, 9)
	if c.CountOccupied() != d.CountOccupied() {
		t.Fatal("Campus3D not deterministic")
	}
}
