// Package collision implements the collision-detection substrate the
// planning kernels spend most of their time in (the paper attributes >65%
// of pp2d and up to 62% of rrt execution time to collision checks).
//
// The 2D checker tests an oriented rectangular robot footprint (the pp2d
// car, 4.8 m × 1.8 m) against an occupancy grid by sampling the footprint at
// grid resolution — the "checking a cell value" fine-grained operation the
// paper highlights as ideal for hardware acceleration.
package collision

import (
	"math"

	"repro/internal/grid"
)

// Footprint2D checks an oriented rectangle footprint against a 2D occupancy
// grid. Construct once per robot; Check is safe for concurrent use.
type Footprint2D struct {
	G      *grid.Grid2D
	Length float64 // along the robot's heading, meters
	Width  float64 // across the robot, meters

	// Cells counts occupancy-grid lookups across all checks (the paper's
	// fine-grained-parallelism unit of work). Not synchronized; callers
	// running parallel checks keep one Footprint2D per worker.
	Cells int64
	// Checks counts Check invocations.
	Checks int64
}

// Check reports whether the robot footprint at pose (x, y, theta), in world
// coordinates, is free of collisions.
func (f *Footprint2D) Check(x, y, theta float64) bool {
	s, c := math.Sincos(theta)
	return f.CheckOriented(x, y, s, c)
}

// CheckOriented is Check with the heading supplied as (sin, cos) — planners
// with a fixed move set precompute these instead of paying a Sincos per
// collision check.
func (f *Footprint2D) CheckOriented(x, y, s, c float64) bool {
	f.Checks++
	res := f.G.Resolution
	hl, hw := f.Length/2, f.Width/2
	// Sample the footprint interior on a lattice at grid resolution; the
	// half-step inset keeps samples strictly inside the rectangle while the
	// lattice pitch guarantees no grid cell inside the footprint is missed.
	nu := int(math.Ceil(f.Length/res)) + 1
	nv := int(math.Ceil(f.Width/res)) + 1
	for i := 0; i <= nu; i++ {
		u := -hl + float64(i)*f.Length/float64(nu)
		for j := 0; j <= nv; j++ {
			v := -hw + float64(j)*f.Width/float64(nv)
			wx := x + c*u - s*v
			wy := y + s*u + c*v
			f.Cells++
			if f.G.OccupiedWorld(wx, wy) {
				return false
			}
		}
	}
	return true
}

// CheckCell reports whether the footprint centered on grid cell (cx, cy)
// with the given heading is collision-free.
func (f *Footprint2D) CheckCell(cx, cy int, theta float64) bool {
	wx, wy := f.G.CellToWorld(cx, cy)
	return f.Check(wx, wy, theta)
}

// CheckCellOriented is CheckCell with a precomputed (sin, cos) heading.
func (f *Footprint2D) CheckCellOriented(cx, cy int, s, c float64) bool {
	wx, wy := f.G.CellToWorld(cx, cy)
	return f.CheckOriented(wx, wy, s, c)
}

// Point3D checks a point robot (a UAV that "fits in one resolution unit",
// per the paper's pp3d setup) against a voxel grid.
type Point3D struct {
	G *grid.Grid3D

	Cells  int64
	Checks int64
}

// Check reports whether voxel (x, y, z) is free.
func (p *Point3D) Check(x, y, z int) bool {
	p.Checks++
	p.Cells++
	return p.G.Free(x, y, z)
}

// CheckSphere reports whether every voxel within radius r (in voxels) of
// (x, y, z) is free, for UAVs larger than one resolution unit.
func (p *Point3D) CheckSphere(x, y, z, r int) bool {
	p.Checks++
	if r <= 0 {
		p.Cells++
		return p.G.Free(x, y, z)
	}
	r2 := r * r
	for dz := -r; dz <= r; dz++ {
		for dy := -r; dy <= r; dy++ {
			for dx := -r; dx <= r; dx++ {
				if dx*dx+dy*dy+dz*dz > r2 {
					continue
				}
				p.Cells++
				if p.G.Occupied(x+dx, y+dy, z+dz) {
					return false
				}
			}
		}
	}
	return true
}
