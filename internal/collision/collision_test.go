package collision

import (
	"math"
	"testing"

	"repro/internal/grid"
)

func openGrid(w, h int, res float64) *grid.Grid2D {
	g := grid.NewGrid2D(w, h)
	g.Resolution = res
	return g
}

func TestFootprintFreeInOpenSpace(t *testing.T) {
	g := openGrid(100, 100, 0.5)
	f := &Footprint2D{G: g, Length: 4.8, Width: 1.8}
	if !f.Check(25, 25, 0) {
		t.Fatal("footprint in open space reported collision")
	}
	if f.Checks != 1 || f.Cells == 0 {
		t.Fatalf("counters: checks=%d cells=%d", f.Checks, f.Cells)
	}
}

func TestFootprintHitsObstacle(t *testing.T) {
	g := openGrid(100, 100, 0.5)
	g.Set(50, 50, true) // obstacle at world (25.0-25.5)^2
	f := &Footprint2D{G: g, Length: 4.8, Width: 1.8}
	if f.Check(25.25, 25.25, 0) {
		t.Fatal("footprint centered on obstacle reported free")
	}
	// Far away is fine.
	if !f.Check(10, 10, 0) {
		t.Fatal("distant footprint reported collision")
	}
}

func TestFootprintOrientationMatters(t *testing.T) {
	g := openGrid(100, 100, 0.5)
	// A narrow vertical corridor: walls at x=48 and x=55 (world 24 and 27.5),
	// gap of 3 m. The car is 4.8 long x 1.8 wide: fits vertically (width
	// across the gap) but not horizontally (length across the gap).
	for y := 0; y < 100; y++ {
		g.Set(48, y, true)
		g.Set(55, y, true)
	}
	f := &Footprint2D{G: g, Length: 4.8, Width: 1.8}
	cx := (24.5 + 27.5) / 2
	if !f.Check(cx, 25, math.Pi/2) {
		t.Fatal("car aligned with corridor reported collision")
	}
	if f.Check(cx, 25, 0) {
		t.Fatal("car across corridor reported free")
	}
}

func TestFootprintNearBoundary(t *testing.T) {
	g := openGrid(20, 20, 0.5)
	f := &Footprint2D{G: g, Length: 4.8, Width: 1.8}
	// Center close to the map edge: part of the footprint is out of bounds,
	// which reads as occupied.
	if f.Check(0.5, 5, 0) {
		t.Fatal("footprint over the map edge reported free")
	}
}

func TestCheckCell(t *testing.T) {
	g := openGrid(40, 40, 0.5)
	f := &Footprint2D{G: g, Length: 1, Width: 1}
	if !f.CheckCell(20, 20, 0) {
		t.Fatal("CheckCell in open space failed")
	}
	g.Set(20, 20, true)
	if f.CheckCell(20, 20, 0) {
		t.Fatal("CheckCell on obstacle passed")
	}
}

func TestPoint3D(t *testing.T) {
	g := grid.NewGrid3D(10, 10, 10)
	p := &Point3D{G: g}
	if !p.Check(5, 5, 5) {
		t.Fatal("free voxel reported occupied")
	}
	g.Set(5, 5, 5, true)
	if p.Check(5, 5, 5) {
		t.Fatal("occupied voxel reported free")
	}
	if p.Checks != 2 {
		t.Fatalf("Checks = %d", p.Checks)
	}
}

func TestCheckSphere(t *testing.T) {
	g := grid.NewGrid3D(20, 20, 20)
	p := &Point3D{G: g}
	if !p.CheckSphere(10, 10, 10, 3) {
		t.Fatal("open sphere reported collision")
	}
	g.Set(12, 10, 10, true) // within radius 3
	if p.CheckSphere(10, 10, 10, 3) {
		t.Fatal("sphere touching obstacle reported free")
	}
	if !p.CheckSphere(10, 10, 10, 1) {
		t.Fatal("smaller sphere should clear the obstacle")
	}
	// Radius 0 degenerates to a point check.
	if !p.CheckSphere(12, 10, 11, 0) {
		t.Fatal("radius-0 check failed on free voxel")
	}
}
