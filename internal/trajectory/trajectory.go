// Package trajectory provides the timed-path types shared by the control
// kernels: the reference trajectories MPC tracks, the demonstrations DMP
// learns from, and path-cost utilities for the planners.
package trajectory

import (
	"math"

	"repro/internal/geom"
)

// Point is one sample of a timed 2D trajectory.
type Point struct {
	T float64 // seconds
	P geom.Vec2
}

// Trajectory is a time-ordered sequence of samples.
type Trajectory struct {
	Points []Point
}

// Duration returns the time span of the trajectory.
func (tr *Trajectory) Duration() float64 {
	if len(tr.Points) == 0 {
		return 0
	}
	return tr.Points[len(tr.Points)-1].T - tr.Points[0].T
}

// Length returns the arc length of the trajectory.
func (tr *Trajectory) Length() float64 {
	var s float64
	for i := 1; i < len(tr.Points); i++ {
		s += tr.Points[i].P.Dist(tr.Points[i-1].P)
	}
	return s
}

// At returns the position at time t by linear interpolation, clamped to the
// trajectory's time range.
func (tr *Trajectory) At(t float64) geom.Vec2 {
	pts := tr.Points
	if len(pts) == 0 {
		return geom.Vec2{}
	}
	if t <= pts[0].T {
		return pts[0].P
	}
	if t >= pts[len(pts)-1].T {
		return pts[len(pts)-1].P
	}
	// Binary search for the segment containing t.
	lo, hi := 0, len(pts)-1
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if pts[mid].T <= t {
			lo = mid
		} else {
			hi = mid
		}
	}
	a, b := pts[lo], pts[hi]
	if b.T == a.T {
		return a.P
	}
	u := (t - a.T) / (b.T - a.T)
	return geom.Vec2{
		X: geom.Lerp(a.P.X, b.P.X, u),
		Y: geom.Lerp(a.P.Y, b.P.Y, u),
	}
}

// Resample returns the trajectory re-sampled at n uniformly spaced times.
func (tr *Trajectory) Resample(n int) *Trajectory {
	if n < 2 || len(tr.Points) == 0 {
		return tr
	}
	t0 := tr.Points[0].T
	dur := tr.Duration()
	out := &Trajectory{Points: make([]Point, n)}
	for i := 0; i < n; i++ {
		t := t0 + dur*float64(i)/float64(n-1)
		out.Points[i] = Point{T: t, P: tr.At(t)}
	}
	return out
}

// PathLength2D returns the Euclidean length of a cell-index path on a grid
// of width w (IDs encoded y*w+x), in cell units. Planners report path cost
// with it.
func PathLength2D(path []int, w int) float64 {
	var s float64
	for i := 1; i < len(path); i++ {
		x0, y0 := path[i-1]%w, path[i-1]/w
		x1, y1 := path[i]%w, path[i]/w
		dx, dy := float64(x1-x0), float64(y1-y0)
		s += math.Sqrt(dx*dx + dy*dy)
	}
	return s
}

// SCurve generates a smooth S-shaped reference trajectory of the given
// duration: a sinusoidal lateral sweep along a forward motion. It models the
// "long reference trajectory" the paper's MPC kernel follows.
func SCurve(duration float64, n int, speed, amplitude, wavelength float64) *Trajectory {
	out := &Trajectory{Points: make([]Point, n)}
	for i := 0; i < n; i++ {
		t := duration * float64(i) / float64(n-1)
		x := speed * t
		y := amplitude * math.Sin(2*math.Pi*x/wavelength)
		out.Points[i] = Point{T: t, P: geom.Vec2{X: x, Y: y}}
	}
	return out
}

// Demonstration generates the synthetic wheeled-robot demonstration used to
// train DMP (substituting the paper's in-house robot data): a minimum-jerk
// point-to-point profile with a sinusoidal detour.
func Demonstration(duration float64, n int, start, goal geom.Vec2, detour float64) *Trajectory {
	out := &Trajectory{Points: make([]Point, n)}
	dir := goal.Sub(start)
	normal := geom.Vec2{X: -dir.Y, Y: dir.X}.Normalize()
	for i := 0; i < n; i++ {
		u := float64(i) / float64(n-1)
		// Minimum-jerk position profile: 10u^3 - 15u^4 + 6u^5.
		s := u * u * u * (10 + u*(-15+6*u))
		p := start.Add(dir.Scale(s))
		p = p.Add(normal.Scale(detour * math.Sin(math.Pi*u)))
		out.Points[i] = Point{T: duration * u, P: p}
	}
	return out
}
