package trajectory

import (
	"math"
	"testing"

	"repro/internal/geom"
)

func line(n int) *Trajectory {
	tr := &Trajectory{}
	for i := 0; i < n; i++ {
		tr.Points = append(tr.Points, Point{T: float64(i), P: geom.Vec2{X: float64(i)}})
	}
	return tr
}

func TestAtInterpolates(t *testing.T) {
	tr := line(5)
	p := tr.At(2.5)
	if math.Abs(p.X-2.5) > 1e-12 || p.Y != 0 {
		t.Fatalf("At(2.5) = %v", p)
	}
}

func TestAtClamps(t *testing.T) {
	tr := line(5)
	if tr.At(-10) != (geom.Vec2{X: 0}) {
		t.Fatal("At before start did not clamp")
	}
	if tr.At(100) != (geom.Vec2{X: 4}) {
		t.Fatal("At after end did not clamp")
	}
	if (&Trajectory{}).At(1) != (geom.Vec2{}) {
		t.Fatal("At on empty trajectory not zero")
	}
}

func TestDurationLength(t *testing.T) {
	tr := line(5)
	if tr.Duration() != 4 {
		t.Fatalf("Duration = %v", tr.Duration())
	}
	if math.Abs(tr.Length()-4) > 1e-12 {
		t.Fatalf("Length = %v", tr.Length())
	}
}

func TestResample(t *testing.T) {
	tr := line(5)
	rs := tr.Resample(9)
	if len(rs.Points) != 9 {
		t.Fatalf("resampled %d points", len(rs.Points))
	}
	if rs.Points[0].P != tr.Points[0].P || rs.Points[8].P != tr.Points[4].P {
		t.Fatal("resample endpoints changed")
	}
	if math.Abs(rs.Points[4].P.X-2) > 1e-12 {
		t.Fatalf("midpoint = %v", rs.Points[4].P)
	}
}

func TestPathLength2D(t *testing.T) {
	// Path (0,0)->(1,0)->(1,1) on a width-10 grid.
	path := []int{0, 1, 11}
	if got := PathLength2D(path, 10); math.Abs(got-2) > 1e-12 {
		t.Fatalf("PathLength2D = %v", got)
	}
	if PathLength2D(nil, 10) != 0 {
		t.Fatal("empty path has non-zero length")
	}
}

func TestSCurve(t *testing.T) {
	tr := SCurve(10, 101, 2, 1, 5)
	if math.Abs(tr.Duration()-10) > 1e-9 {
		t.Fatalf("Duration = %v", tr.Duration())
	}
	last := tr.Points[len(tr.Points)-1]
	if math.Abs(last.P.X-20) > 1e-9 {
		t.Fatalf("final x = %v, want 20 (speed*duration)", last.P.X)
	}
	// Amplitude bound respected.
	for _, p := range tr.Points {
		if math.Abs(p.P.Y) > 1+1e-9 {
			t.Fatalf("y = %v exceeds amplitude", p.P.Y)
		}
	}
}

func TestDemonstrationEndpoints(t *testing.T) {
	start := geom.Vec2{X: 1, Y: 2}
	goal := geom.Vec2{X: 10, Y: 7}
	tr := Demonstration(2, 100, start, goal, 1.5)
	if tr.Points[0].P.Dist(start) > 1e-9 {
		t.Fatalf("demo start = %v", tr.Points[0].P)
	}
	if tr.Points[len(tr.Points)-1].P.Dist(goal) > 1e-9 {
		t.Fatalf("demo end = %v", tr.Points[len(tr.Points)-1].P)
	}
	// The detour makes the path longer than the straight line.
	if tr.Length() <= start.Dist(goal) {
		t.Fatal("demonstration has no detour")
	}
}

func TestAtBinarySearchManyPoints(t *testing.T) {
	tr := line(1000)
	for _, q := range []float64{0.1, 123.45, 500, 998.9} {
		p := tr.At(q)
		if math.Abs(p.X-q) > 1e-9 {
			t.Fatalf("At(%v) = %v", q, p)
		}
	}
}
