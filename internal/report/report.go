// Package report converts engine results into the rtrbench.report/v1
// schema (internal/obs). It is the one serialization point shared by every
// consumer of suite results — the `rtrbench suite` CLI, cmd/report, and
// the rtrbenchd service — so a result document means the same thing no
// matter which surface emitted it.
package report

import (
	"errors"
	"time"

	"repro/internal/obs"
	"repro/rtrbench"
)

// Suite converts a suite result to the rtrbench.report/v1 kernel array.
func Suite(res rtrbench.SuiteResult) []obs.KernelReport {
	reports := make([]obs.KernelReport, 0, len(res.Kernels))
	for _, k := range res.Kernels {
		reports = append(reports, Kernel(k))
	}
	return reports
}

// Kernel converts one kernel's suite outcome to its report entry.
func Kernel(k rtrbench.KernelResult) obs.KernelReport {
	kr := obs.KernelReport{
		Kernel:           k.Info.Name,
		Stage:            string(k.Info.Stage),
		Index:            k.Info.Index,
		ROISeconds:       k.Result.ROI.Seconds(),
		Inconsistent:     k.Result.Inconsistent,
		Counters:         k.Result.Counters,
		Metrics:          k.Result.Metrics,
		PaperBottlenecks: k.Info.PaperBottlenecks,
	}
	if k.Err != nil {
		kr.Error = k.Err.Error()
		var ke *rtrbench.KernelError
		if errors.As(k.Err, &ke) {
			kr.Fault = ke.Fault
		}
	}
	kr.Degraded = k.Result.Degraded
	dominant, dominantDur := "", time.Duration(0)
	for _, ph := range k.Result.Phases {
		kr.Phases = append(kr.Phases, obs.PhaseReport{
			Name:     ph.Name,
			Seconds:  ph.Duration.Seconds(),
			Calls:    ph.Calls,
			Fraction: ph.Fraction,
		})
		if ph.Duration > dominantDur {
			dominant, dominantDur = ph.Name, ph.Duration
		}
	}
	kr.Dominant = dominant
	kr.Steps = Steps(k.Result.Steps)
	if ts := k.Trials; ts != nil {
		kr.Trials = &obs.TrialsReport{
			Trials:           ts.Trials,
			Retried:          k.Retried,
			Degraded:         ts.Degraded,
			ROIMeanSeconds:   ts.ROIMean.Seconds(),
			ROIMinSeconds:    ts.ROIMin.Seconds(),
			ROIMaxSeconds:    ts.ROIMax.Seconds(),
			ROIStddevSeconds: ts.ROIStddev.Seconds(),
			Counters:         ts.Counters,
			Steps:            Steps(ts.Steps),
		}
		for _, ft := range ts.Faults {
			kr.Trials.Faults = append(kr.Trials.Faults, obs.FaultReport{
				Trial:  ft.Trial,
				Step:   ft.Step,
				Kind:   ft.Kind,
				Detail: ft.Detail,
			})
		}
	}
	return kr
}

// Stream converts a streaming-mode result into its report entry: the
// kernel name plus the stream block. ROISeconds carries the stream's
// elapsed time so generic tooling keyed on it keeps working.
func Stream(res rtrbench.StreamResult) obs.KernelReport {
	s := res.Stream
	return obs.KernelReport{
		Kernel:     res.Kernel,
		ROISeconds: s.Elapsed.Seconds(),
		Degraded:   res.Degraded > 0,
		Stream: &obs.StreamReport{
			Policy:          string(s.Policy),
			PeriodSeconds:   s.Period.Seconds(),
			DeadlineSeconds: s.Deadline.Seconds(),
			Ticks:           s.Ticks,
			Misses:          s.Misses,
			MissRate:        s.MissRate(),
			Sheds:           s.Sheds,
			Cutoffs:         s.Cutoffs,
			Overruns:        s.Overruns,
			Runs:            res.Runs,
			Degraded:        res.Degraded,
			ElapsedSeconds:  s.Elapsed.Seconds(),
			Latency:         obs.StepsFromSummary(s.Latency),
			Jitter:          obs.StepsFromSummary(s.Jitter),
		},
	}
}

// Steps converts a step-latency distribution; nil stays nil.
func Steps(s *rtrbench.StepStats) *obs.StepReport {
	if s == nil {
		return nil
	}
	return &obs.StepReport{
		Count:           s.Count,
		MinSeconds:      s.Min.Seconds(),
		MeanSeconds:     s.Mean.Seconds(),
		P50Seconds:      s.P50.Seconds(),
		P95Seconds:      s.P95.Seconds(),
		P99Seconds:      s.P99.Seconds(),
		MaxSeconds:      s.Max.Seconds(),
		DeadlineSeconds: s.Deadline.Seconds(),
		DeadlineMisses:  s.Misses,
	}
}
