package mat

import "sync"

// minParRows is the smallest per-worker row block worth the goroutine
// overhead. Requests that cannot give every worker at least this many rows
// run serially; callers therefore get bit-identical results for every
// worker count, including 0.
const minParRows = 4

// ParMulInto computes dst = a*b like MulInto, splitting the rows of dst
// across up to workers goroutines. Each row is accumulated by exactly the
// same loop as MulInto, in the same order, so the result is bit-identical
// to the serial product for every worker count. workers <= 1 (or a matrix
// too small to split) degrades to MulInto with no goroutine or allocation
// overhead, which keeps the serial EKF step on its zero-alloc path.
func ParMulInto(dst, a, b *Matrix, workers int) *Matrix {
	if workers > a.Rows/minParRows {
		workers = a.Rows / minParRows
	}
	if workers <= 1 {
		return MulInto(dst, a, b)
	}
	checkMulShapes(dst, a, b)
	chunk := (a.Rows + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if lo >= a.Rows {
			break
		}
		if hi > a.Rows {
			hi = a.Rows
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			mulRows(dst, a, b, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
	return dst
}

// ParTransposeInto computes dst = aᵀ like TransposeInto, splitting the rows
// of dst (the columns of a) across up to workers goroutines. Every element
// is a plain copy, so the result is bit-identical to the serial transpose
// for every worker count. workers <= 1 or a small matrix degrades to
// TransposeInto.
func ParTransposeInto(dst, a *Matrix, workers int) *Matrix {
	if workers > dst.Rows/minParRows {
		workers = dst.Rows / minParRows
	}
	if workers <= 1 {
		return TransposeInto(dst, a)
	}
	checkTransposeShapes(dst, a)
	chunk := (dst.Rows + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if lo >= dst.Rows {
			break
		}
		if hi > dst.Rows {
			hi = dst.Rows
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			// dst row j holds column j of a.
			for j := lo; j < hi; j++ {
				drow := dst.Data[j*dst.Cols : (j+1)*dst.Cols]
				for i := 0; i < a.Rows; i++ {
					drow[i] = a.Data[i*a.Cols+j]
				}
			}
		}(lo, hi)
	}
	wg.Wait()
	return dst
}
