// Package mat implements the dense linear algebra used by the perception and
// control kernels: EKF-SLAM's covariance updates, ICP's cross-covariance and
// rigid-transform estimation, MPC's quadratic cost evaluation, and the
// Gaussian process regression behind Bayesian optimization.
//
// Matrices are small (the paper notes EKF matrices are "proportionate to the
// number of measurement types" and fit in cache), so the implementation
// favours simple cache-friendly row-major loops over blocked algorithms.
// There are no external dependencies; everything is written against the Go
// standard library.
package mat

import (
	"fmt"
	"math"
	"strings"
)

// Matrix is a dense, row-major matrix of float64.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// New returns a zero matrix with the given shape. It panics on non-positive
// dimensions.
func New(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("mat: invalid shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from a slice of equal-length rows.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 || len(rows[0]) == 0 {
		panic("mat: FromRows with empty input")
	}
	m := New(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic("mat: FromRows with ragged rows")
		}
		copy(m.Data[i*m.Cols:(i+1)*m.Cols], r)
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := New(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Zero clears every element of m in place.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// CopyFrom overwrites m with src. Shapes must match.
func (m *Matrix) CopyFrom(src *Matrix) {
	checkSameShape("CopyFrom", m, src)
	copy(m.Data, src.Data)
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var b strings.Builder
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			fmt.Fprintf(&b, "% 10.4f ", m.At(i, j))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Mul returns the matrix product a*b. It panics on shape mismatch.
func Mul(a, b *Matrix) *Matrix {
	return MulInto(New(a.Rows, b.Cols), a, b)
}

// MulInto computes dst = a*b in place and returns dst. dst must have shape
// a.Rows×b.Cols and must not alias a or b; its previous contents are
// discarded. It is the allocation-free hot-path form of Mul.
func MulInto(dst, a, b *Matrix) *Matrix {
	checkMulShapes(dst, a, b)
	mulRows(dst, a, b, 0, a.Rows)
	return dst
}

func checkMulShapes(dst, a, b *Matrix) {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("mat: Mul shape mismatch %dx%d * %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("mat: MulInto dst shape %dx%d, want %dx%d", dst.Rows, dst.Cols, a.Rows, b.Cols))
	}
}

// mulRows computes dst rows [lo, hi) of a*b, zeroing them first. It is the
// shared row kernel of MulInto and ParMulInto: both produce every row with
// the identical accumulation order, which is what makes the parallel product
// bit-identical to the serial one.
func mulRows(dst, a, b *Matrix, lo, hi int) {
	for i := lo; i < hi; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		orow := dst.Data[i*dst.Cols : (i+1)*dst.Cols]
		for j := range orow {
			orow[j] = 0
		}
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Data[k*b.Cols : (k+1)*b.Cols]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
}

// MulVec returns the matrix-vector product a*x.
func MulVec(a *Matrix, x []float64) []float64 {
	return MulVecInto(make([]float64, a.Rows), a, x)
}

// MulVecInto computes dst = a*x in place and returns dst. dst must have
// length a.Rows and must not alias x.
func MulVecInto(dst []float64, a *Matrix, x []float64) []float64 {
	if a.Cols != len(x) {
		panic("mat: MulVec shape mismatch")
	}
	if len(dst) != a.Rows {
		panic("mat: MulVecInto dst length mismatch")
	}
	for i := 0; i < a.Rows; i++ {
		row := a.Data[i*a.Cols : (i+1)*a.Cols]
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		dst[i] = s
	}
	return dst
}

// Add returns a + b.
func Add(a, b *Matrix) *Matrix {
	return AddInto(New(a.Rows, a.Cols), a, b)
}

// AddInto computes dst = a + b in place and returns dst. dst may alias a
// or b.
func AddInto(dst, a, b *Matrix) *Matrix {
	checkSameShape("Add", a, b)
	checkSameShape("AddInto", dst, a)
	for i := range a.Data {
		dst.Data[i] = a.Data[i] + b.Data[i]
	}
	return dst
}

// Sub returns a - b.
func Sub(a, b *Matrix) *Matrix {
	return SubInto(New(a.Rows, a.Cols), a, b)
}

// SubInto computes dst = a - b in place and returns dst. dst may alias a
// or b.
func SubInto(dst, a, b *Matrix) *Matrix {
	checkSameShape("Sub", a, b)
	checkSameShape("SubInto", dst, a)
	for i := range a.Data {
		dst.Data[i] = a.Data[i] - b.Data[i]
	}
	return dst
}

// Scale returns s*a.
func Scale(s float64, a *Matrix) *Matrix {
	out := New(a.Rows, a.Cols)
	for i := range a.Data {
		out.Data[i] = s * a.Data[i]
	}
	return out
}

// Transpose returns aᵀ.
func Transpose(a *Matrix) *Matrix {
	return TransposeInto(New(a.Cols, a.Rows), a)
}

// TransposeInto computes dst = aᵀ in place and returns dst. dst must have
// shape a.Cols×a.Rows and must not alias a.
func TransposeInto(dst, a *Matrix) *Matrix {
	checkTransposeShapes(dst, a)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			dst.Data[j*dst.Cols+i] = a.Data[i*a.Cols+j]
		}
	}
	return dst
}

func checkTransposeShapes(dst, a *Matrix) {
	if dst.Rows != a.Cols || dst.Cols != a.Rows {
		panic(fmt.Sprintf("mat: TransposeInto dst shape %dx%d, want %dx%d", dst.Rows, dst.Cols, a.Cols, a.Rows))
	}
}

func checkSameShape(op string, a, b *Matrix) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("mat: %s shape mismatch %dx%d vs %dx%d", op, a.Rows, a.Cols, b.Rows, b.Cols))
	}
}

// LU holds an LU factorization with partial pivoting: P*A = L*U. A zero LU
// is a valid empty workspace: Refactor sizes it on first use and reuses the
// buffers on every subsequent call with the same dimension, which keeps
// repeated small solves (the EKF's per-observation 2×2 innovation inverse)
// allocation-free after warmup.
type LU struct {
	lu      *Matrix
	pivot   []int
	scratch []float64 // unit-vector / column scratch for InverseInto
	sign    float64   // +1 or -1 from row swaps; 0 if singular
}

// NewLU returns an empty LU workspace pre-sized for n×n systems.
func NewLU(n int) *LU {
	if n <= 0 {
		panic("mat: NewLU with non-positive size")
	}
	return &LU{lu: New(n, n), pivot: make([]int, n), scratch: make([]float64, 2*n)}
}

// Factor computes the LU factorization of a square matrix. A singular matrix
// yields a factorization whose Det is 0 and whose Solve returns an error.
func Factor(a *Matrix) *LU {
	f := &LU{}
	f.Refactor(a)
	return f
}

// Refactor computes the factorization of a into f's workspace. When a has
// the same dimension as the previous factorization the call performs no
// allocation; otherwise the workspace is (re)sized.
func (f *LU) Refactor(a *Matrix) {
	if a.Rows != a.Cols {
		panic("mat: Factor requires a square matrix")
	}
	n := a.Rows
	if f.lu == nil || f.lu.Rows != n {
		f.lu = New(n, n)
		f.pivot = make([]int, n)
		f.scratch = make([]float64, 2*n)
	}
	copy(f.lu.Data, a.Data)
	f.sign = 1
	lu := f.lu.Data
	for i := range f.pivot {
		f.pivot[i] = i
	}
	for col := 0; col < n; col++ {
		// Pivot: largest absolute value in this column at or below the diagonal.
		p := col
		max := math.Abs(lu[col*n+col])
		for r := col + 1; r < n; r++ {
			if v := math.Abs(lu[r*n+col]); v > max {
				max, p = v, r
			}
		}
		if max == 0 {
			f.sign = 0
			return
		}
		if p != col {
			for j := 0; j < n; j++ {
				lu[p*n+j], lu[col*n+j] = lu[col*n+j], lu[p*n+j]
			}
			f.pivot[p], f.pivot[col] = f.pivot[col], f.pivot[p]
			f.sign = -f.sign
		}
		inv := 1 / lu[col*n+col]
		for r := col + 1; r < n; r++ {
			m := lu[r*n+col] * inv
			lu[r*n+col] = m
			if m == 0 {
				continue
			}
			for j := col + 1; j < n; j++ {
				lu[r*n+j] -= m * lu[col*n+j]
			}
		}
	}
}

// Singular reports whether the factored matrix was detected as singular.
func (f *LU) Singular() bool { return f.sign == 0 }

// Det returns the determinant of the factored matrix.
func (f *LU) Det() float64 {
	if f.sign == 0 {
		return 0
	}
	n := f.lu.Rows
	d := f.sign
	for i := 0; i < n; i++ {
		d *= f.lu.Data[i*n+i]
	}
	return d
}

// Solve solves A*x = b for x. It returns an error if A is singular.
func (f *LU) Solve(b []float64) ([]float64, error) {
	x := make([]float64, f.lu.Rows)
	if err := f.SolveInto(x, b); err != nil {
		return nil, err
	}
	return x, nil
}

// SolveInto solves A*x = b into dst without allocating. dst must have length
// n and must not alias b. It returns an error if A is singular.
func (f *LU) SolveInto(dst, b []float64) error {
	n := f.lu.Rows
	if len(b) != n || len(dst) != n {
		panic("mat: Solve dimension mismatch")
	}
	if f.sign == 0 {
		return fmt.Errorf("mat: matrix is singular")
	}
	lu := f.lu.Data
	x := dst
	for i := 0; i < n; i++ {
		x[i] = b[f.pivot[i]]
	}
	// Forward substitution with unit-diagonal L.
	for i := 1; i < n; i++ {
		var s float64
		for j := 0; j < i; j++ {
			s += lu[i*n+j] * x[j]
		}
		x[i] -= s
	}
	// Back substitution with U.
	for i := n - 1; i >= 0; i-- {
		var s float64
		for j := i + 1; j < n; j++ {
			s += lu[i*n+j] * x[j]
		}
		x[i] = (x[i] - s) / lu[i*n+i]
	}
	return nil
}

// InverseInto writes A⁻¹ into dst (n×n) using the workspace's scratch
// buffers, without allocating. It returns an error if A is singular.
func (f *LU) InverseInto(dst *Matrix) error {
	n := f.lu.Rows
	if dst.Rows != n || dst.Cols != n {
		panic("mat: InverseInto dimension mismatch")
	}
	if f.sign == 0 {
		return fmt.Errorf("mat: matrix is singular")
	}
	if len(f.scratch) < 2*n {
		f.scratch = make([]float64, 2*n)
	}
	e, col := f.scratch[:n], f.scratch[n:2*n]
	for j := 0; j < n; j++ {
		for i := range e {
			e[i] = 0
		}
		e[j] = 1
		if err := f.SolveInto(col, e); err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			dst.Data[i*n+j] = col[i]
		}
	}
	return nil
}

// Inverse returns A⁻¹, or an error if A is singular.
func Inverse(a *Matrix) (*Matrix, error) {
	f := Factor(a)
	if f.Singular() {
		return nil, fmt.Errorf("mat: matrix is singular")
	}
	out := New(a.Rows, a.Rows)
	if err := f.InverseInto(out); err != nil {
		return nil, err
	}
	return out, nil
}

// Solve solves A*x = b directly (factor + solve).
func Solve(a *Matrix, b []float64) ([]float64, error) {
	return Factor(a).Solve(b)
}

// Det returns the determinant of a square matrix.
func Det(a *Matrix) float64 { return Factor(a).Det() }

// Cholesky computes the lower-triangular L with A = L*Lᵀ for a symmetric
// positive-definite matrix. It returns an error if A is not positive
// definite (within floating-point tolerance).
func Cholesky(a *Matrix) (*Matrix, error) {
	if a.Rows != a.Cols {
		panic("mat: Cholesky requires a square matrix")
	}
	n := a.Rows
	l := New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			if i == j {
				if s <= 0 {
					return nil, fmt.Errorf("mat: matrix is not positive definite (pivot %d = %g)", i, s)
				}
				l.Set(i, i, math.Sqrt(s))
			} else {
				l.Set(i, j, s/l.At(j, j))
			}
		}
	}
	return l, nil
}

// CholSolve solves A*x = b given the Cholesky factor L of A.
func CholSolve(l *Matrix, b []float64) []float64 {
	n := l.Rows
	if len(b) != n {
		panic("mat: CholSolve dimension mismatch")
	}
	// Solve L*y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for j := 0; j < i; j++ {
			s -= l.At(i, j) * y[j]
		}
		y[i] = s / l.At(i, i)
	}
	// Solve Lᵀ*x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for j := i + 1; j < n; j++ {
			s -= l.At(j, i) * x[j]
		}
		x[i] = s / l.At(i, i)
	}
	return x
}

// QuadForm returns xᵀ*A*x.
func QuadForm(a *Matrix, x []float64) float64 {
	ax := MulVec(a, x)
	var s float64
	for i, v := range x {
		s += v * ax[i]
	}
	return s
}

// SymEigen computes the eigen-decomposition of a symmetric matrix using the
// cyclic Jacobi method. It returns the eigenvalues and a matrix whose columns
// are the corresponding orthonormal eigenvectors. The input must be symmetric;
// only its lower triangle is trusted.
func SymEigen(a *Matrix) (vals []float64, vecs *Matrix) {
	if a.Rows != a.Cols {
		panic("mat: SymEigen requires a square matrix")
	}
	n := a.Rows
	s := a.Clone()
	v := Identity(n)
	const maxSweeps = 64
	for sweep := 0; sweep < maxSweeps; sweep++ {
		var off float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += s.At(i, j) * s.At(i, j)
			}
		}
		if off < 1e-24 {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := s.At(p, q)
				if math.Abs(apq) < 1e-300 {
					continue
				}
				app, aqq := s.At(p, p), s.At(q, q)
				theta := (aqq - app) / (2 * apq)
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				sn := t * c
				// Apply the rotation G(p,q,θ) on both sides: S ← GᵀSG.
				for k := 0; k < n; k++ {
					skp, skq := s.At(k, p), s.At(k, q)
					s.Set(k, p, c*skp-sn*skq)
					s.Set(k, q, sn*skp+c*skq)
				}
				for k := 0; k < n; k++ {
					spk, sqk := s.At(p, k), s.At(q, k)
					s.Set(p, k, c*spk-sn*sqk)
					s.Set(q, k, sn*spk+c*sqk)
				}
				for k := 0; k < n; k++ {
					vkp, vkq := v.At(k, p), v.At(k, q)
					v.Set(k, p, c*vkp-sn*vkq)
					v.Set(k, q, sn*vkp+c*vkq)
				}
			}
		}
	}
	vals = make([]float64, n)
	for i := 0; i < n; i++ {
		vals[i] = s.At(i, i)
	}
	return vals, v
}

// MaxEigenVector returns the eigenvector associated with the largest
// eigenvalue of a symmetric matrix. It is the core of Horn's quaternion
// method for rigid registration in the scene-reconstruction kernel.
func MaxEigenVector(a *Matrix) []float64 {
	vals, vecs := SymEigen(a)
	best := 0
	for i := 1; i < len(vals); i++ {
		if vals[i] > vals[best] {
			best = i
		}
	}
	out := make([]float64, a.Rows)
	for i := range out {
		out[i] = vecs.At(i, best)
	}
	return out
}
