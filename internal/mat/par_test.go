package mat

import (
	"fmt"
	"testing"

	"repro/internal/rng"
)

func parTestMatrix(r *rng.RNG, rows, cols int) *Matrix {
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = r.Uniform(-2, 2)
		if r.Float64() < 0.1 {
			m.Data[i] = 0 // exercise the zero-skip branch of the row kernel
		}
	}
	return m
}

// TestParMulIntoMatchesSerial pins the bit-identity contract: the blocked
// parallel product must equal the serial one exactly — not approximately —
// for every worker count, including shapes that do not divide evenly.
func TestParMulIntoMatchesSerial(t *testing.T) {
	r := rng.New(7)
	shapes := []struct{ m, k, n int }{
		{1, 1, 1}, {3, 5, 2}, {15, 15, 15}, {17, 13, 9}, {64, 31, 47}, {101, 7, 33},
	}
	for _, sh := range shapes {
		a := parTestMatrix(r, sh.m, sh.k)
		b := parTestMatrix(r, sh.k, sh.n)
		want := Mul(a, b)
		for _, workers := range []int{0, 1, 2, 3, 4, 8, 16} {
			t.Run(fmt.Sprintf("%dx%dx%d/w%d", sh.m, sh.k, sh.n, workers), func(t *testing.T) {
				got := New(sh.m, sh.n)
				// Pre-poison dst: the row kernel must overwrite every cell.
				for i := range got.Data {
					got.Data[i] = 1e300
				}
				ParMulInto(got, a, b, workers)
				for i := range want.Data {
					if got.Data[i] != want.Data[i] {
						t.Fatalf("element %d: parallel %v != serial %v", i, got.Data[i], want.Data[i])
					}
				}
			})
		}
	}
}

// TestParTransposeIntoMatchesSerial does the same for the blocked transpose.
func TestParTransposeIntoMatchesSerial(t *testing.T) {
	r := rng.New(11)
	shapes := []struct{ m, n int }{{1, 1}, {3, 7}, {15, 15}, {33, 17}, {64, 5}}
	for _, sh := range shapes {
		a := parTestMatrix(r, sh.m, sh.n)
		want := Transpose(a)
		for _, workers := range []int{0, 1, 2, 4, 8} {
			t.Run(fmt.Sprintf("%dx%d/w%d", sh.m, sh.n, workers), func(t *testing.T) {
				got := New(sh.n, sh.m)
				for i := range got.Data {
					got.Data[i] = 1e300
				}
				ParTransposeInto(got, a, workers)
				for i := range want.Data {
					if got.Data[i] != want.Data[i] {
						t.Fatalf("element %d: parallel %v != serial %v", i, got.Data[i], want.Data[i])
					}
				}
			})
		}
	}
}
