package mat

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func randomMatrix(r *rng.RNG, n int) *Matrix {
	m := New(n, n)
	for i := range m.Data {
		m.Data[i] = r.Uniform(-2, 2)
	}
	return m
}

func TestMulKnown(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	c := Mul(a, b)
	want := FromRows([][]float64{{19, 22}, {43, 50}})
	for i := range want.Data {
		if c.Data[i] != want.Data[i] {
			t.Fatalf("Mul = %v", c)
		}
	}
}

func TestMulIdentity(t *testing.T) {
	r := rng.New(1)
	for n := 1; n <= 6; n++ {
		a := randomMatrix(r, n)
		c := Mul(a, Identity(n))
		for i := range a.Data {
			if !almostEq(c.Data[i], a.Data[i], 1e-12) {
				t.Fatalf("A*I != A at n=%d", n)
			}
		}
	}
}

func TestMulVecMatchesMul(t *testing.T) {
	r := rng.New(2)
	a := randomMatrix(r, 5)
	x := make([]float64, 5)
	for i := range x {
		x[i] = r.Uniform(-1, 1)
	}
	got := MulVec(a, x)
	xm := New(5, 1)
	copy(xm.Data, x)
	want := Mul(a, xm)
	for i := range got {
		if !almostEq(got[i], want.Data[i], 1e-12) {
			t.Fatalf("MulVec mismatch at %d", i)
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	r := rng.New(3)
	a := New(3, 5)
	for i := range a.Data {
		a.Data[i] = r.Uniform(-1, 1)
	}
	tt := Transpose(Transpose(a))
	for i := range a.Data {
		if a.Data[i] != tt.Data[i] {
			t.Fatal("transpose not an involution")
		}
	}
}

func TestSolveKnownSystem(t *testing.T) {
	a := FromRows([][]float64{{2, 1}, {1, 3}})
	x, err := Solve(a, []float64{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	// 2x+y=5, x+3y=10 -> x=1, y=3
	if !almostEq(x[0], 1, 1e-12) || !almostEq(x[1], 3, 1e-12) {
		t.Fatalf("Solve = %v", x)
	}
}

func TestSolveSingular(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := Solve(a, []float64{1, 2}); err == nil {
		t.Fatal("Solve on a singular matrix did not error")
	}
	if Det(a) != 0 {
		t.Fatal("singular determinant non-zero")
	}
}

func TestInverseProperty(t *testing.T) {
	if err := quick.Check(func(seed int64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(5)
		a := randomMatrix(r, n)
		// Diagonal dominance guarantees invertibility.
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+float64(n)*3)
		}
		inv, err := Inverse(a)
		if err != nil {
			return false
		}
		prod := Mul(a, inv)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				want := 0.0
				if i == j {
					want = 1
				}
				if !almostEq(prod.At(i, j), want, 1e-8) {
					return false
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDetProduct(t *testing.T) {
	if err := quick.Check(func(seed int64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(4)
		a, b := randomMatrix(r, n), randomMatrix(r, n)
		da, db, dab := Det(a), Det(b), Det(Mul(a, b))
		return almostEq(dab, da*db, 1e-6*(1+math.Abs(da*db)))
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCholeskySolve(t *testing.T) {
	if err := quick.Check(func(seed int64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(5)
		// Build SPD: A = B*Bᵀ + n*I.
		b := randomMatrix(r, n)
		a := Mul(b, Transpose(b))
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+float64(n))
		}
		l, err := Cholesky(a)
		if err != nil {
			return false
		}
		// Check A = L*Lᵀ.
		llt := Mul(l, Transpose(l))
		for i := range a.Data {
			if !almostEq(llt.Data[i], a.Data[i], 1e-8) {
				return false
			}
		}
		// Check solve.
		rhs := make([]float64, n)
		for i := range rhs {
			rhs[i] = r.Uniform(-1, 1)
		}
		x := CholSolve(l, rhs)
		ax := MulVec(a, x)
		for i := range rhs {
			if !almostEq(ax[i], rhs[i], 1e-8) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 1}}) // eigenvalues 3, -1
	if _, err := Cholesky(a); err == nil {
		t.Fatal("Cholesky accepted an indefinite matrix")
	}
}

func TestSymEigenReconstruction(t *testing.T) {
	if err := quick.Check(func(seed int64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(4)
		b := randomMatrix(r, n)
		a := Mul(b, Transpose(b)) // symmetric PSD
		vals, vecs := SymEigen(a)
		// Check A*v_i = λ_i*v_i per eigenpair.
		for j := 0; j < n; j++ {
			v := make([]float64, n)
			for i := 0; i < n; i++ {
				v[i] = vecs.At(i, j)
			}
			av := MulVec(a, v)
			for i := 0; i < n; i++ {
				if !almostEq(av[i], vals[j]*v[i], 1e-6*(1+math.Abs(vals[j]))) {
					return false
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSymEigenOrthonormal(t *testing.T) {
	r := rng.New(5)
	b := randomMatrix(r, 4)
	a := Mul(b, Transpose(b))
	_, vecs := SymEigen(a)
	vtv := Mul(Transpose(vecs), vecs)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if !almostEq(vtv.At(i, j), want, 1e-8) {
				t.Fatalf("VᵀV[%d][%d] = %v", i, j, vtv.At(i, j))
			}
		}
	}
}

func TestMaxEigenVector(t *testing.T) {
	// Diagonal matrix: max eigenvector is the axis of the largest entry.
	a := FromRows([][]float64{{1, 0, 0}, {0, 5, 0}, {0, 0, 3}})
	v := MaxEigenVector(a)
	if math.Abs(v[1]) < 0.99 {
		t.Fatalf("max eigenvector = %v, want ±e2", v)
	}
}

func TestQuadForm(t *testing.T) {
	a := Identity(3)
	x := []float64{1, 2, 3}
	if got := QuadForm(a, x); !almostEq(got, 14, 1e-12) {
		t.Fatalf("QuadForm = %v", got)
	}
}

func TestShapePanics(t *testing.T) {
	for name, f := range map[string]func(){
		"mul":      func() { Mul(New(2, 3), New(2, 3)) },
		"mulvec":   func() { MulVec(New(2, 3), []float64{1}) },
		"add":      func() { Add(New(2, 2), New(3, 3)) },
		"new":      func() { New(0, 1) },
		"fromrows": func() { FromRows([][]float64{{1, 2}, {3}}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestCloneIndependent(t *testing.T) {
	a := Identity(2)
	b := a.Clone()
	b.Set(0, 0, 9)
	if a.At(0, 0) != 1 {
		t.Fatal("Clone shares storage")
	}
}

func TestIntoVariantsMatchAllocating(t *testing.T) {
	r := rng.New(7)
	for n := 1; n <= 6; n++ {
		a := randomMatrix(r, n)
		b := randomMatrix(r, n)
		x := make([]float64, n)
		for i := range x {
			x[i] = r.Uniform(-2, 2)
		}

		dst := New(n, n)
		MulInto(dst, a, b)
		want := Mul(a, b)
		for i := range want.Data {
			if dst.Data[i] != want.Data[i] {
				t.Fatalf("MulInto differs from Mul at n=%d", n)
			}
		}

		vdst := make([]float64, n)
		MulVecInto(vdst, a, x)
		vwant := MulVec(a, x)
		for i := range vwant {
			if vdst[i] != vwant[i] {
				t.Fatalf("MulVecInto differs from MulVec at n=%d", n)
			}
		}

		AddInto(dst, a, b)
		aw := Add(a, b)
		for i := range aw.Data {
			if dst.Data[i] != aw.Data[i] {
				t.Fatalf("AddInto differs from Add at n=%d", n)
			}
		}
		SubInto(dst, a, b)
		sw := Sub(a, b)
		for i := range sw.Data {
			if dst.Data[i] != sw.Data[i] {
				t.Fatalf("SubInto differs from Sub at n=%d", n)
			}
		}

		tdst := New(n, n)
		TransposeInto(tdst, a)
		tw := Transpose(a)
		for i := range tw.Data {
			if tdst.Data[i] != tw.Data[i] {
				t.Fatalf("TransposeInto differs from Transpose at n=%d", n)
			}
		}
	}
}

func TestAddSubIntoAliasing(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	AddInto(a, a, b) // a += b
	want := FromRows([][]float64{{6, 8}, {10, 12}})
	for i := range want.Data {
		if a.Data[i] != want.Data[i] {
			t.Fatalf("aliased AddInto = %v", a)
		}
	}
	SubInto(a, a, b) // back to the original
	orig := FromRows([][]float64{{1, 2}, {3, 4}})
	for i := range orig.Data {
		if a.Data[i] != orig.Data[i] {
			t.Fatalf("aliased SubInto = %v", a)
		}
	}
}

func TestLUWorkspaceReuse(t *testing.T) {
	r := rng.New(3)
	f := NewLU(4)
	inv := New(4, 4)
	x := make([]float64, 4)
	for trial := 0; trial < 20; trial++ {
		a := randomMatrix(r, 4)
		b := make([]float64, 4)
		for i := range b {
			b[i] = r.Uniform(-2, 2)
		}
		f.Refactor(a)
		if f.Singular() {
			continue
		}
		if err := f.SolveInto(x, b); err != nil {
			t.Fatal(err)
		}
		want, err := Solve(a, b)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if !almostEq(x[i], want[i], 1e-9) {
				t.Fatalf("SolveInto differs from Solve: %v vs %v", x, want)
			}
		}
		if err := f.InverseInto(inv); err != nil {
			t.Fatal(err)
		}
		winv, err := Inverse(a)
		if err != nil {
			t.Fatal(err)
		}
		for i := range winv.Data {
			if !almostEq(inv.Data[i], winv.Data[i], 1e-9) {
				t.Fatalf("InverseInto differs from Inverse")
			}
		}
	}
}

func TestLUWorkspaceResizes(t *testing.T) {
	f := NewLU(2)
	a := FromRows([][]float64{{2, 0, 0}, {0, 3, 0}, {0, 0, 4}})
	f.Refactor(a) // must grow, not panic
	if f.Singular() {
		t.Fatal("diagonal matrix reported singular")
	}
	if d := f.Det(); !almostEq(d, 24, 1e-12) {
		t.Fatalf("Det = %v, want 24", d)
	}
	inv := New(3, 3)
	if err := f.InverseInto(inv); err != nil {
		t.Fatal(err)
	}
	if !almostEq(inv.At(2, 2), 0.25, 1e-12) {
		t.Fatalf("InverseInto wrong: %v", inv)
	}
}

func TestLUSingularWorkspace(t *testing.T) {
	f := NewLU(2)
	f.Refactor(New(2, 2)) // all-zero: singular
	if !f.Singular() {
		t.Fatal("zero matrix not flagged singular")
	}
	if err := f.SolveInto(make([]float64, 2), []float64{1, 2}); err == nil {
		t.Fatal("SolveInto on singular matrix should error")
	}
	if err := f.InverseInto(New(2, 2)); err == nil {
		t.Fatal("InverseInto on singular matrix should error")
	}
}

// TestHotPathOpsAllocationFree pins the contract the EKF scratch machinery
// relies on: once buffers exist, the Into family and the LU workspace do not
// touch the heap.
func TestHotPathOpsAllocationFree(t *testing.T) {
	r := rng.New(5)
	a := randomMatrix(r, 5)
	b := randomMatrix(r, 5)
	dst := New(5, 5)
	tdst := New(5, 5)
	v := make([]float64, 5)
	x := []float64{1, 2, 3, 4, 5}
	f := NewLU(5)
	inv := New(5, 5)
	allocs := testing.AllocsPerRun(100, func() {
		MulInto(dst, a, b)
		TransposeInto(tdst, a)
		AddInto(dst, dst, b)
		SubInto(dst, dst, b)
		MulVecInto(v, a, x)
		f.Refactor(a)
		if !f.Singular() {
			_ = f.SolveInto(v, x)
			_ = f.InverseInto(inv)
		}
	})
	if allocs != 0 {
		t.Fatalf("hot-path ops allocate: %v allocs/op", allocs)
	}
}
