// Package benchfmt owns the suite's benchmark-snapshot format: the
// rtrbench.bench/v2 schema with raw per-run samples, the parser for
// `go test -bench` text output, backward-compatible loading of v1
// snapshots, and the statistical diff between two snapshots.
//
// v1 (rtrbench.bench/v1) recorded one ns/op number per benchmark — an n=1
// sample that cannot support a statistical comparison. v2 keeps every
// repeated `-count` run as a sample, and adds the golden-digest set from
// `rtrbench verify` so a perf snapshot is pinned to a verified-correct
// build. cmd/benchjson produces snapshots, cmd/benchdiff compares them,
// internal/ledger chains them, and internal/obs serves the deltas.
package benchfmt

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"repro/internal/stats"
)

// Schema identifiers accepted by Decode.
const (
	SchemaV1 = "rtrbench.bench/v1"
	SchemaV2 = "rtrbench.bench/v2"
)

// Sample is one benchmark run (one output line of `go test -bench`).
type Sample struct {
	Iterations int64   `json:"iterations"`
	NsOp       float64 `json:"ns_op"`
	BOp        *int64  `json:"b_op,omitempty"`
	AllocsOp   *int64  `json:"allocs_op,omitempty"`
	MBs        float64 `json:"mb_s,omitempty"`
}

// Benchmark is one named benchmark with its repeated samples.
type Benchmark struct {
	Name    string   `json:"name"`
	Pkg     string   `json:"pkg,omitempty"`
	Procs   int      `json:"procs,omitempty"`
	Samples []Sample `json:"samples"`
}

// NsOps returns the ns/op sample values.
func (b Benchmark) NsOps() []float64 {
	out := make([]float64, len(b.Samples))
	for i, s := range b.Samples {
		out[i] = s.NsOp
	}
	return out
}

// AllocsOps returns the allocs/op sample values, or nil if the snapshot
// was taken without -benchmem.
func (b Benchmark) AllocsOps() []int64 {
	var out []int64
	for _, s := range b.Samples {
		if s.AllocsOp != nil {
			out = append(out, *s.AllocsOp)
		}
	}
	return out
}

// MaxAllocsOp returns the largest allocs/op across samples; ok is false
// when no sample carries allocation data.
func (b Benchmark) MaxAllocsOp() (max int64, ok bool) {
	for _, v := range b.AllocsOps() {
		if !ok || v > max {
			max, ok = v, true
		}
	}
	return max, ok
}

// Snapshot is one rtrbench.bench/v2 document: the machine context, the
// golden-digest set the build verified against, and the sampled
// benchmarks.
type Snapshot struct {
	Schema string `json:"schema"`
	Date   string `json:"date"`
	Go     string `json:"go"`
	GOOS   string `json:"goos"`
	GOARCH string `json:"goarch"`
	CPU    string `json:"cpu,omitempty"`
	// GoMaxProcs and NumCPU record the machine shape the samples were taken
	// on (runtime.GOMAXPROCS(0) / runtime.NumCPU()). A Workers/w8 curve
	// measured on one core documents only goroutine overhead, so comparing
	// it against a multi-core run is meaningless — Diff refuses cross-shape
	// comparisons when both sides carry a shape. Zero means unknown
	// (snapshots predating the fields, or decoded v1 documents).
	GoMaxProcs int `json:"gomaxprocs,omitempty"`
	NumCPU     int `json:"numcpu,omitempty"`
	// Goldens maps golden-file stem (e.g. "pfl-seed1") to the SHA-256 of
	// the checked-in digest file, tying the snapshot to the exact answers
	// the build produced.
	Goldens    map[string]string `json:"goldens,omitempty"`
	Benchmarks []Benchmark       `json:"benchmarks"`
}

// Shape describes the CPU shape the snapshot was measured on, or "" when
// the snapshot predates shape stamping.
func (s *Snapshot) Shape() string {
	if s.GoMaxProcs == 0 && s.NumCPU == 0 {
		return ""
	}
	return fmt.Sprintf("gomaxprocs=%d/numcpu=%d", s.GoMaxProcs, s.NumCPU)
}

// Lookup returns the benchmark with the given name, if present.
func (s *Snapshot) Lookup(name string) (Benchmark, bool) {
	for _, b := range s.Benchmarks {
		if b.Name == name {
			return b, true
		}
	}
	return Benchmark{}, false
}

// Add merges one sample into the snapshot: repeated `-count` lines for the
// same (name, pkg, procs) accumulate into that benchmark's sample list, in
// input order, instead of producing duplicate entries.
func (s *Snapshot) Add(name, pkg string, procs int, smp Sample) {
	for i := range s.Benchmarks {
		b := &s.Benchmarks[i]
		if b.Name == name && b.Pkg == pkg && b.Procs == procs {
			b.Samples = append(b.Samples, smp)
			return
		}
	}
	s.Benchmarks = append(s.Benchmarks, Benchmark{
		Name: name, Pkg: pkg, Procs: procs, Samples: []Sample{smp},
	})
}

// v1Benchmark is the flat single-sample shape of rtrbench.bench/v1.
type v1Benchmark struct {
	Name       string  `json:"name"`
	Pkg        string  `json:"pkg"`
	Procs      int     `json:"procs"`
	Iterations int64   `json:"iterations"`
	NsOp       float64 `json:"ns_op"`
	BOp        *int64  `json:"b_op"`
	AllocsOp   *int64  `json:"allocs_op"`
	MBs        float64 `json:"mb_s"`
}

// Decode parses a snapshot document, accepting both schemas: a v1 file is
// converted in place, each flat benchmark becoming a single-sample entry,
// so pre-ledger snapshots (e.g. the checked-in BENCH_2026-08-05.json)
// remain comparable. Single-sample entries can never reach statistical
// significance on their own — stats.Compare guarantees that — so a v1
// baseline is informative but cannot flag.
func Decode(data []byte) (Snapshot, error) {
	var probe struct {
		Schema string `json:"schema"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return Snapshot{}, fmt.Errorf("benchfmt: not a snapshot document: %w", err)
	}
	switch probe.Schema {
	case SchemaV2:
		var s Snapshot
		if err := json.Unmarshal(data, &s); err != nil {
			return Snapshot{}, fmt.Errorf("benchfmt: bad %s document: %w", SchemaV2, err)
		}
		return s, nil
	case SchemaV1:
		var v1 struct {
			Snapshot
			Benchmarks []v1Benchmark `json:"benchmarks"`
		}
		if err := json.Unmarshal(data, &v1); err != nil {
			return Snapshot{}, fmt.Errorf("benchfmt: bad %s document: %w", SchemaV1, err)
		}
		s := v1.Snapshot
		s.Schema = SchemaV2
		s.Benchmarks = nil
		for _, b := range v1.Benchmarks {
			s.Add(b.Name, b.Pkg, b.Procs, Sample{
				Iterations: b.Iterations, NsOp: b.NsOp,
				BOp: b.BOp, AllocsOp: b.AllocsOp, MBs: b.MBs,
			})
		}
		return s, nil
	default:
		return Snapshot{}, fmt.Errorf("benchfmt: unsupported schema %q (want %s or %s)", probe.Schema, SchemaV1, SchemaV2)
	}
}

// Load reads and decodes one snapshot file (either schema).
func Load(path string) (Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Snapshot{}, err
	}
	s, err := Decode(data)
	if err != nil {
		return Snapshot{}, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// Encode renders the snapshot as an indented v2 JSON document with a
// trailing newline.
func (s *Snapshot) Encode() ([]byte, error) {
	s.Schema = SchemaV2
	buf, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(buf, '\n'), nil
}

// cpuSuffix matches the "-N" GOMAXPROCS suffix go test appends to every
// benchmark name (absent only when GOMAXPROCS=1).
var cpuSuffix = regexp.MustCompile(`-(\d+)$`)

// ParseLine parses one `go test -bench` result line of the form
//
//	BenchmarkName-8   100   23492 ns/op   0 B/op   0 allocs/op
//
// into the stripped name, the -cpu procs count, and the sample. ns/op in
// scientific notation (e.g. 6.5e+07, printed by custom ReportMetric values
// and some toolchains for very large timings) parses like any float.
// Unknown trailing metric pairs are ignored, so custom b.ReportMetric units
// do not break parsing. ok is false for lines that are not benchmark
// results (missing iteration count or ns/op).
func ParseLine(line string) (name string, procs int, smp Sample, ok bool) {
	fields := strings.Fields(line)
	if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", 0, Sample{}, false
	}
	name = fields[0]
	// Strip only a trailing -N: an interior dash (sub-benchmark names like
	// Benchmark/pre-sort-8) belongs to the name, and so does a dash suffix
	// that is not purely numeric.
	if m := cpuSuffix.FindStringSubmatch(name); m != nil {
		if p, err := strconv.Atoi(m[1]); err == nil && p > 0 {
			name, procs = name[:len(name)-len(m[0])], p
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return "", 0, Sample{}, false
	}
	smp.Iterations = iters
	seenNs := false
	for i := 2; i+1 < len(fields); i += 2 {
		val, unit := fields[i], fields[i+1]
		switch unit {
		case "ns/op":
			if v, err := strconv.ParseFloat(val, 64); err == nil {
				smp.NsOp, seenNs = v, true
			}
		case "B/op":
			if v, err := strconv.ParseInt(val, 10, 64); err == nil {
				smp.BOp = &v
			}
		case "allocs/op":
			if v, err := strconv.ParseInt(val, 10, 64); err == nil {
				smp.AllocsOp = &v
			}
		case "MB/s":
			if v, err := strconv.ParseFloat(val, 64); err == nil {
				smp.MBs = v
			}
		}
	}
	return name, procs, smp, seenNs
}

// ParseStream reads `go test -bench` text output and merges every result
// line into the snapshot via Add, tracking goos/goarch/cpu/pkg header
// lines along the way. Repeated lines for the same benchmark (from -count)
// become that benchmark's sample list.
func (s *Snapshot) ParseStream(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	pkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			s.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			s.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			s.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			if name, procs, smp, ok := ParseLine(line); ok {
				s.Add(name, pkg, procs, smp)
			}
		}
	}
	return sc.Err()
}

// SplitAlternate partitions every benchmark's samples into two snapshots,
// even-indexed samples to a and odd-indexed to b, preserving metadata and
// goldens. This is the interleaved A/A construction: samples taken
// adjacently in one `go test -count N` run share slow drift (thermal
// state, background load), so a drift that would cleanly separate two
// back-to-back runs lands evenly on both sides and cannot fake a
// significant delta. The CI gate self-test is built on it.
func (s *Snapshot) SplitAlternate() (a, b Snapshot) {
	a, b = *s, *s
	a.Benchmarks, b.Benchmarks = nil, nil
	for _, bench := range s.Benchmarks {
		for i, smp := range bench.Samples {
			if i%2 == 0 {
				a.Add(bench.Name, bench.Pkg, bench.Procs, smp)
			} else {
				b.Add(bench.Name, bench.Pkg, bench.Procs, smp)
			}
		}
	}
	return a, b
}

// Verdict classifies one benchmark's old→new change.
type Verdict string

const (
	// VerdictOK: no statistically significant change above the threshold.
	VerdictOK Verdict = "ok"
	// VerdictRegression: significantly slower, or allocs/op grew.
	VerdictRegression Verdict = "regression"
	// VerdictImprovement: significantly faster.
	VerdictImprovement Verdict = "improvement"
	// VerdictOnlyOld / VerdictOnlyNew: present on one side only.
	VerdictOnlyOld Verdict = "only-old"
	VerdictOnlyNew Verdict = "only-new"
)

// Delta is the comparison verdict for one benchmark.
type Delta struct {
	Name string `json:"name"`
	// Comparison holds the sample summaries, percent delta ± CI, and the
	// Mann-Whitney p-value. Zero-valued for one-sided benchmarks.
	stats.Comparison
	// OldAllocs/NewAllocs are the max allocs/op per side (-1 when the
	// side has no allocation data).
	OldAllocs int64 `json:"old_allocs_op"`
	NewAllocs int64 `json:"new_allocs_op"`
	// AllocRegression reports NewAllocs > OldAllocs. Allocation counts
	// are deterministic, so any growth flags without a significance test.
	AllocRegression bool    `json:"alloc_regression"`
	Verdict         Verdict `json:"verdict"`
}

// DiffOptions configures Diff.
type DiffOptions struct {
	// Stats carries alpha and the percent noise threshold.
	Stats stats.Options
	// Allocs enables the deterministic allocs/op gate: any increase in
	// max allocs/op is a regression.
	Allocs bool
	// IgnoreShape permits comparing snapshots measured on different CPU
	// shapes (GOMAXPROCS/NumCPU). Off by default: cross-shape timing
	// deltas measure the hardware, not the code.
	IgnoreShape bool
}

// ErrShapeMismatch is returned by Diff when the two snapshots were measured
// on different CPU shapes and DiffOptions.IgnoreShape is off.
var ErrShapeMismatch = errors.New("benchfmt: snapshots measured on different CPU shapes")

// Report is the full statistical comparison of two snapshots.
type Report struct {
	OldDate string  `json:"old_date"`
	NewDate string  `json:"new_date"`
	Deltas  []Delta `json:"deltas"`
}

// Regressions returns the deltas whose verdict is a regression.
func (r Report) Regressions() []Delta {
	var out []Delta
	for _, d := range r.Deltas {
		if d.Verdict == VerdictRegression {
			out = append(out, d)
		}
	}
	return out
}

// Diff compares two snapshots benchmark by benchmark. Output is sorted by
// benchmark name; benchmarks present on only one side are reported with
// VerdictOnlyOld/VerdictOnlyNew and never fail the gate.
func Diff(old, new Snapshot, opts DiffOptions) (Report, error) {
	rep := Report{OldDate: old.Date, NewDate: new.Date}
	if !opts.IgnoreShape {
		if os, ns := old.Shape(), new.Shape(); os != "" && ns != "" && os != ns {
			return rep, fmt.Errorf("%w: old %s vs new %s (pass -ignore-shape to compare anyway)",
				ErrShapeMismatch, os, ns)
		}
	}
	names := map[string]bool{}
	for _, b := range old.Benchmarks {
		names[b.Name] = true
	}
	for _, b := range new.Benchmarks {
		names[b.Name] = true
	}
	sorted := make([]string, 0, len(names))
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)

	for _, name := range sorted {
		ob, inOld := old.Lookup(name)
		nb, inNew := new.Lookup(name)
		d := Delta{Name: name, OldAllocs: -1, NewAllocs: -1}
		switch {
		case !inOld:
			d.Verdict = VerdictOnlyNew
		case !inNew:
			d.Verdict = VerdictOnlyOld
		default:
			cmp, err := stats.Compare(ob.NsOps(), nb.NsOps(), opts.Stats)
			if err != nil {
				return rep, fmt.Errorf("benchfmt: %s: %w", name, err)
			}
			d.Comparison = cmp
			if v, ok := ob.MaxAllocsOp(); ok {
				d.OldAllocs = v
			}
			if v, ok := nb.MaxAllocsOp(); ok {
				d.NewAllocs = v
			}
			if opts.Allocs && d.OldAllocs >= 0 && d.NewAllocs > d.OldAllocs {
				d.AllocRegression = true
			}
			switch {
			case d.AllocRegression || (cmp.Significant && cmp.Delta > 0):
				d.Verdict = VerdictRegression
			case cmp.Significant && cmp.Delta < 0:
				d.Verdict = VerdictImprovement
			default:
				d.Verdict = VerdictOK
			}
		}
		rep.Deltas = append(rep.Deltas, d)
	}
	return rep, nil
}
