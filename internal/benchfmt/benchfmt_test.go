package benchfmt

import (
	"strings"
	"testing"

	"repro/internal/stats"
)

func TestParseLineCPUSuffix(t *testing.T) {
	name, procs, smp, ok := ParseLine("BenchmarkEKFSLAMStep-8   \t  100\t     23492 ns/op\t       0 B/op\t       0 allocs/op")
	if !ok {
		t.Fatal("valid -benchmem line rejected")
	}
	if name != "BenchmarkEKFSLAMStep" || procs != 8 {
		t.Fatalf("name/procs = %q/%d", name, procs)
	}
	if smp.Iterations != 100 || smp.NsOp != 23492 {
		t.Fatalf("iterations/ns_op = %d/%v", smp.Iterations, smp.NsOp)
	}
	if smp.BOp == nil || *smp.BOp != 0 || smp.AllocsOp == nil || *smp.AllocsOp != 0 {
		t.Fatalf("b_op/allocs_op = %v/%v", smp.BOp, smp.AllocsOp)
	}
}

func TestParseLineDashesInName(t *testing.T) {
	// Only a trailing purely-numeric -N is the cpu suffix; interior dashes
	// and non-numeric suffixes stay part of the name.
	cases := []struct {
		line      string
		wantName  string
		wantProcs int
	}{
		{"BenchmarkSort/pre-sorted-16 10 5 ns/op", "BenchmarkSort/pre-sorted", 16},
		{"BenchmarkSort/n=100-4 10 5 ns/op", "BenchmarkSort/n=100", 4},
		{"BenchmarkFoo-bar 10 5 ns/op", "BenchmarkFoo-bar", 0},
		{"BenchmarkGOMAXPROCS1 10 5 ns/op", "BenchmarkGOMAXPROCS1", 0},
	}
	for _, tc := range cases {
		name, procs, _, ok := ParseLine(tc.line)
		if !ok {
			t.Fatalf("%q rejected", tc.line)
		}
		if name != tc.wantName || procs != tc.wantProcs {
			t.Errorf("%q: name/procs = %q/%d, want %q/%d", tc.line, name, procs, tc.wantName, tc.wantProcs)
		}
	}
}

func TestParseLineScientificNotation(t *testing.T) {
	name, _, smp, ok := ParseLine("BenchmarkTable1_03_srec-8 \t 1\t9.8828808e+07 ns/op")
	if !ok {
		t.Fatal("scientific-notation ns/op rejected")
	}
	if name != "BenchmarkTable1_03_srec" || smp.NsOp != 9.8828808e+07 {
		t.Fatalf("name/ns_op = %q/%v", name, smp.NsOp)
	}
}

func TestParseLineRejectsNonResults(t *testing.T) {
	for _, line := range []string{
		"BenchmarkFoo",
		"BenchmarkFoo-4 notanumber 5 ns/op",
		"BenchmarkFoo-4 10 xyz MB/s", // no ns/op at all
		"PASS",
		"ok  \trepro\t1.2s",
	} {
		if _, _, _, ok := ParseLine(line); ok {
			t.Errorf("ParseLine accepted %q", line)
		}
	}
}

const sampleStream = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkTable1_01_pfl-8   	       1	65635841 ns/op	  342648 B/op	      35 allocs/op
BenchmarkTable1_01_pfl-8   	       1	66102200 ns/op	  342648 B/op	      35 allocs/op
BenchmarkTable1_01_pfl-8   	       1	65204100 ns/op	  342648 B/op	      35 allocs/op
PASS
pkg: repro/internal/core/ekfslam
BenchmarkEKFSLAMStep-8   	     100	   23492 ns/op	       0 B/op	       0 allocs/op
BenchmarkEKFSLAMStep-8   	     100	   23555 ns/op	       0 B/op	       0 allocs/op
ok	repro	2.1s
`

func TestParseStreamMergesRepeatedLines(t *testing.T) {
	var s Snapshot
	if err := s.ParseStream(strings.NewReader(sampleStream)); err != nil {
		t.Fatal(err)
	}
	if s.GOOS != "linux" || s.GOARCH != "amd64" || !strings.Contains(s.CPU, "Xeon") {
		t.Fatalf("header fields: %+v", s)
	}
	if len(s.Benchmarks) != 2 {
		t.Fatalf("got %d benchmarks, want 2 (repeated lines must merge)", len(s.Benchmarks))
	}
	pfl, ok := s.Lookup("BenchmarkTable1_01_pfl")
	if !ok || len(pfl.Samples) != 3 {
		t.Fatalf("pfl samples = %d, want 3", len(pfl.Samples))
	}
	if pfl.Pkg != "repro" || pfl.Procs != 8 {
		t.Fatalf("pfl pkg/procs = %q/%d", pfl.Pkg, pfl.Procs)
	}
	// Samples keep input order.
	if pfl.Samples[0].NsOp != 65635841 || pfl.Samples[2].NsOp != 65204100 {
		t.Fatalf("sample order: %+v", pfl.NsOps())
	}
	ek, ok := s.Lookup("BenchmarkEKFSLAMStep")
	if !ok || len(ek.Samples) != 2 || ek.Pkg != "repro/internal/core/ekfslam" {
		t.Fatalf("ekfslam = %+v", ek)
	}
	if max, ok := ek.MaxAllocsOp(); !ok || max != 0 {
		t.Fatalf("ekfslam max allocs = %d/%v", max, ok)
	}
}

const v1Doc = `{
  "schema": "rtrbench.bench/v1",
  "date": "2026-08-05",
  "go": "go1.24.0",
  "goos": "linux",
  "goarch": "amd64",
  "cpu": "Intel Xeon",
  "benchmarks": [
    {"name": "BenchmarkTable1_01_pfl", "pkg": "repro", "iterations": 1,
     "ns_op": 65635841, "b_op": 342648, "allocs_op": 35},
    {"name": "BenchmarkEKFSLAMStep", "pkg": "repro/internal/core/ekfslam",
     "procs": 8, "iterations": 100, "ns_op": 23492, "b_op": 0, "allocs_op": 0}
  ]
}`

func TestDecodeV1Compat(t *testing.T) {
	s, err := Decode([]byte(v1Doc))
	if err != nil {
		t.Fatal(err)
	}
	if s.Schema != SchemaV2 || s.Date != "2026-08-05" {
		t.Fatalf("schema/date = %q/%q", s.Schema, s.Date)
	}
	if len(s.Benchmarks) != 2 {
		t.Fatalf("benchmarks = %d", len(s.Benchmarks))
	}
	pfl, ok := s.Lookup("BenchmarkTable1_01_pfl")
	if !ok || len(pfl.Samples) != 1 || pfl.Samples[0].NsOp != 65635841 {
		t.Fatalf("v1 benchmark not converted to single sample: %+v", pfl)
	}
	if pfl.Samples[0].AllocsOp == nil || *pfl.Samples[0].AllocsOp != 35 {
		t.Fatal("v1 allocs_op lost in conversion")
	}
}

func TestDecodeRejectsUnknownSchema(t *testing.T) {
	if _, err := Decode([]byte(`{"schema": "rtrbench.bench/v99"}`)); err == nil {
		t.Fatal("unknown schema accepted")
	}
	if _, err := Decode([]byte(`not json`)); err == nil {
		t.Fatal("non-JSON accepted")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	var s Snapshot
	if err := s.ParseStream(strings.NewReader(sampleStream)); err != nil {
		t.Fatal(err)
	}
	s.Date = "2026-08-07"
	s.Goldens = map[string]string{"pfl-seed1": "abc123"}
	data, err := s.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Goldens["pfl-seed1"] != "abc123" || len(back.Benchmarks) != 2 {
		t.Fatalf("round trip lost data: %+v", back)
	}
}

// snap builds a v2 snapshot with one benchmark per (name → ns/op samples).
func snap(date string, benches map[string][]float64, allocs map[string]int64) Snapshot {
	s := Snapshot{Schema: SchemaV2, Date: date}
	for name, ns := range benches {
		for _, v := range ns {
			smp := Sample{Iterations: 1, NsOp: v}
			if a, ok := allocs[name]; ok {
				av := a
				smp.AllocsOp = &av
			}
			s.Add(name, "repro", 8, smp)
		}
	}
	return s
}

func TestDiffFlagsRegressionNotAA(t *testing.T) {
	base := map[string][]float64{
		"BenchmarkFast": {100, 101, 99, 100, 102},
		"BenchmarkSlow": {1000, 1010, 990, 1000, 1020},
	}
	slowed := map[string][]float64{
		"BenchmarkFast": {100, 101, 99, 100, 102},
		"BenchmarkSlow": {1500, 1510, 1490, 1500, 1520},
	}
	opts := DiffOptions{Stats: stats.Options{Threshold: 5}, Allocs: true}

	rep, err := Diff(snap("a", base, nil), snap("b", slowed, nil), opts)
	if err != nil {
		t.Fatal(err)
	}
	regs := rep.Regressions()
	if len(regs) != 1 || regs[0].Name != "BenchmarkSlow" {
		t.Fatalf("regressions = %+v", regs)
	}

	// A/A: identical sample sets never flag.
	rep, err = Diff(snap("a", base, nil), snap("b", base, nil), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Regressions()) != 0 {
		t.Fatalf("A/A flagged: %+v", rep.Regressions())
	}
}

func TestDiffAllocGate(t *testing.T) {
	ns := map[string][]float64{"BenchmarkX": {100, 101, 99, 100, 102}}
	old := snap("a", ns, map[string]int64{"BenchmarkX": 0})
	grew := snap("b", ns, map[string]int64{"BenchmarkX": 3})

	rep, err := Diff(old, grew, DiffOptions{Stats: stats.Options{Threshold: 5}, Allocs: true})
	if err != nil {
		t.Fatal(err)
	}
	regs := rep.Regressions()
	if len(regs) != 1 || !regs[0].AllocRegression {
		t.Fatalf("alloc growth not flagged: %+v", rep.Deltas)
	}

	// Gate disabled: same snapshots pass.
	rep, err = Diff(old, grew, DiffOptions{Stats: stats.Options{Threshold: 5}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Regressions()) != 0 {
		t.Fatalf("alloc gate fired while disabled: %+v", rep.Regressions())
	}
}

func TestDiffOneSidedBenchmarks(t *testing.T) {
	old := snap("a", map[string][]float64{"BenchmarkGone": {1, 2, 3}}, nil)
	new := snap("b", map[string][]float64{"BenchmarkNew": {1, 2, 3}}, nil)
	rep, err := Diff(old, new, DiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	verdicts := map[string]Verdict{}
	for _, d := range rep.Deltas {
		verdicts[d.Name] = d.Verdict
	}
	if verdicts["BenchmarkGone"] != VerdictOnlyOld || verdicts["BenchmarkNew"] != VerdictOnlyNew {
		t.Fatalf("verdicts = %+v", verdicts)
	}
	if len(rep.Regressions()) != 0 {
		t.Fatal("one-sided benchmarks must not fail the gate")
	}
}

func TestSplitAlternate(t *testing.T) {
	var s Snapshot
	if err := s.ParseStream(strings.NewReader(sampleStream)); err != nil {
		t.Fatal(err)
	}
	s.Goldens = map[string]string{"pfl-seed1": "abc"}
	a, b := s.SplitAlternate()
	if a.Goldens["pfl-seed1"] != "abc" || b.Goldens["pfl-seed1"] != "abc" {
		t.Fatal("split lost metadata")
	}
	pa, _ := a.Lookup("BenchmarkTable1_01_pfl")
	pb, _ := b.Lookup("BenchmarkTable1_01_pfl")
	// 3 samples split 2/1, alternating.
	if len(pa.Samples) != 2 || len(pb.Samples) != 1 {
		t.Fatalf("pfl split %d/%d, want 2/1", len(pa.Samples), len(pb.Samples))
	}
	if pa.Samples[0].NsOp != 65635841 || pb.Samples[0].NsOp != 66102200 || pa.Samples[1].NsOp != 65204100 {
		t.Fatalf("split order wrong: a=%v b=%v", pa.NsOps(), pb.NsOps())
	}
	// A monotonic drift across samples must land on both halves: medians
	// of the halves stay within the sample spread, never fully separated.
	var drift Snapshot
	for i := 0; i < 10; i++ {
		drift.Add("BenchmarkD", "p", 1, Sample{Iterations: 1, NsOp: 100 + 10*float64(i)})
	}
	da, db := drift.SplitAlternate()
	ba, _ := da.Lookup("BenchmarkD")
	bb, _ := db.Lookup("BenchmarkD")
	rep, err := Diff(
		Snapshot{Schema: SchemaV2, Benchmarks: []Benchmark{ba}},
		Snapshot{Schema: SchemaV2, Benchmarks: []Benchmark{bb}},
		DiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Deltas[0].Significant {
		t.Fatalf("interleaved split of pure drift flagged: %+v", rep.Deltas[0])
	}
}

func TestDiffV1BaselineCannotFlag(t *testing.T) {
	// A v1 snapshot is n=1 per benchmark: even a huge delta must stay
	// below significance, by construction of the rank test.
	oldV1, err := Decode([]byte(v1Doc))
	if err != nil {
		t.Fatal(err)
	}
	slowed := snap("b", map[string][]float64{
		"BenchmarkTable1_01_pfl": {2 * 65635841},
		"BenchmarkEKFSLAMStep":   {2 * 23492},
	}, nil)
	rep, err := Diff(oldV1, slowed, DiffOptions{Stats: stats.Options{Threshold: 5}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Regressions()) != 0 {
		t.Fatalf("n=1 vs n=1 comparison flagged: %+v", rep.Regressions())
	}
}
