package prm

import (
	"context"
	"testing"
)

func TestParallelFindsPath(t *testing.T) {
	for _, seed := range []int64{1, 42} {
		cfg := DefaultConfig()
		cfg.Seed = seed
		cfg.Workers = 4
		res, err := Run(context.Background(), cfg, nil)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !res.Found || len(res.Path) < 2 {
			t.Fatalf("seed %d: no path (nodes=%d edges=%d)", seed, res.RoadmapNodes, res.RoadmapEdges)
		}
	}
}

func TestParallelWorkersBitIdentical(t *testing.T) {
	// The determinism contract: for Workers >= 1 the roadmap — and therefore
	// the query result and every counter — is a pure function of the seed;
	// the worker count only bounds concurrency.
	run := func(workers int, lazy bool) Result {
		cfg := DefaultConfig()
		cfg.Samples = 1500
		cfg.Workers = workers
		cfg.Lazy = lazy
		res, err := Run(context.Background(), cfg, nil)
		if err != nil {
			t.Fatalf("workers=%d lazy=%v: %v", workers, lazy, err)
		}
		return res
	}
	for _, lazy := range []bool{false, true} {
		base := run(1, lazy)
		for _, w := range []int{2, 4, 8} {
			got := run(w, lazy)
			if got.Found != base.Found || got.PathCost != base.PathCost ||
				got.RoadmapNodes != base.RoadmapNodes || got.RoadmapEdges != base.RoadmapEdges ||
				got.Expanded != base.Expanded || got.L2Norms != base.L2Norms ||
				got.SegChecks != base.SegChecks || got.LazyRejected != base.LazyRejected {
				t.Fatalf("lazy=%v workers=%d diverged from workers=1:\n  %+v\nvs\n  %+v", lazy, w, got, base)
			}
			for i := range base.Path {
				for j := range base.Path[i] {
					if got.Path[i][j] != base.Path[i][j] {
						t.Fatalf("lazy=%v workers=%d: path[%d][%d] differs", lazy, w, i, j)
					}
				}
			}
		}
	}
}

func TestParallelValidatesWorkers(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Workers = -2
	if _, err := Run(context.Background(), cfg, nil); err == nil {
		t.Fatal("negative Workers accepted")
	}
}
