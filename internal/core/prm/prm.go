// Package prm implements kernel 07.prm: probabilistic-roadmap motion
// planning for a multi-DoF arm manipulator (paper §V.7).
//
// PRM has an offline phase — sample random configurations, keep the
// collision-free ones, connect each to its nearest neighbors with
// collision-checked edges — and an online phase that connects the start and
// goal configurations to the roadmap and searches it with A*. The paper
// notes the online search is the critical path and that frequent L2-norm
// computations (configuration distances in n-dimensional space) are a
// bottleneck; the harness phases and counters here expose both.
package prm

import (
	"context"
	"errors"
	"math"

	"repro/internal/arm"
	"repro/internal/check"
	"repro/internal/geom"
	"repro/internal/kdtree"
	"repro/internal/profile"
	"repro/internal/rng"
	"repro/internal/search"
)

// Config parameterizes a roadmap build + query.
type Config struct {
	// Arm is the manipulator; nil uses the paper's 5-DoF default.
	Arm *arm.Arm
	// Workspace selects the obstacle set; nil uses Map-C (cluttered). Use
	// arm.MapF() for the free map.
	Workspace *arm.Workspace
	// Samples is the number of roadmap samples (collision-free samples
	// kept, so the roadmap has up to this many nodes).
	Samples int
	// K is the number of nearest neighbors to attempt connecting.
	K int
	// EdgeStep is the joint-space collision sampling step, radians.
	EdgeStep float64
	// Lazy enables Lazy PRM (Bohlin & Kavraki): roadmap edges are added
	// without collision checks, and only the edges of candidate paths are
	// validated during the online query — the classic way to move the
	// collision-detection bottleneck off the offline phase.
	Lazy bool
	// Start and Goal configurations; nil picks default reach poses.
	Start, Goal []float64
	Seed        int64
	// Workers enables the partitioned parallel roadmap build: sampling is
	// stratified over fixed dim-0 slabs grown concurrently on per-slab RNG
	// sub-streams, and neighbor connection fans out over worker chunks whose
	// per-node results are folded serially in node order. 0 (the default)
	// runs the legacy serial build. Any Workers >= 1 selects the parallel
	// build, whose results depend only on the seed: the partition count is
	// fixed and the worker count only bounds concurrency, so workers 1 and 8
	// produce bit-identical roadmaps. The online query phase is serial either
	// way. See DESIGN.md "Intra-kernel parallelism".
	Workers int
}

// Validate reports every dimension, bound, and finiteness violation in the
// config.
func (c Config) Validate() error {
	f := check.New("prm")
	f.PositiveInt("Samples", c.Samples)
	f.PositiveInt("K", c.K)
	f.NonNegative("EdgeStep", c.EdgeStep)
	f.NonNegativeInt("Workers", c.Workers)
	dof := 5 // arm.Default5DoF
	if c.Arm != nil {
		dof = c.Arm.DoF()
	}
	for _, cq := range []struct {
		name string
		q    []float64
	}{{"Start", c.Start}, {"Goal", c.Goal}} {
		if cq.q == nil {
			continue
		}
		if len(cq.q) != dof {
			f.Addf("%s has %d joints, arm has %d", cq.name, len(cq.q), dof)
		}
		for i, v := range cq.q {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				f.Addf("%s[%d] is non-finite (%v)", cq.name, i, v)
			}
		}
	}
	return f.Err()
}

// DefaultConfig returns the paper-style setup: a 5-DoF arm in the cluttered
// map with a 4000-sample roadmap.
func DefaultConfig() Config {
	return Config{
		Samples:  4000,
		K:        10,
		EdgeStep: 0.08,
		Seed:     1,
	}
}

// Result reports the query outcome and workload statistics.
type Result struct {
	Found bool
	// Path is the configuration-space path, start to goal.
	Path [][]float64
	// PathCost is the summed joint-space L2 length of the path.
	PathCost float64
	// RoadmapNodes and RoadmapEdges describe the offline graph.
	RoadmapNodes, RoadmapEdges int
	// Expanded counts online A* expansions.
	Expanded int
	// L2Norms counts configuration-distance evaluations (the paper's
	// flagged bottleneck operation).
	L2Norms int64
	// SegChecks counts link-versus-obstacle tests during collision checks.
	SegChecks int64
	// LazyRejected counts roadmap edges discarded by Lazy PRM's deferred
	// validation (0 in eager mode).
	LazyRejected int
}

// Run executes the kernel. Harness phases: offline "sample" and "connect";
// online "query" wrapping the A* search (the critical path the paper calls
// out). A cancelled ctx aborts any of the three phases promptly, returning
// ctx.Err().
func Run(ctx context.Context, cfg Config, prof *profile.Profile) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	a := cfg.Arm
	if a == nil {
		a = arm.Default5DoF()
	}
	ws := cfg.Workspace
	if ws == nil {
		ws = arm.MapC()
	}
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	step := cfg.EdgeStep
	if step <= 0 {
		step = 0.08
	}
	r := rng.New(cfg.Seed)
	dof := a.DoF()

	start, goal := cfg.Start, cfg.Goal
	if start == nil {
		start = arm.DefaultStart(dof)
	}
	if goal == nil {
		goal = arm.DefaultGoal(dof)
	}
	scratch := make([]geom.Vec2, 0, dof+1)
	cfgScratch := make([]float64, dof)
	if !ws.CollisionFree(a, start, scratch) {
		return Result{}, errors.New("prm: start configuration in collision")
	}
	if !ws.CollisionFree(a, goal, scratch) {
		return Result{}, errors.New("prm: goal configuration in collision")
	}

	res := Result{}
	var l2norms int64
	dist := func(x, y []float64) float64 {
		l2norms++
		return arm.ConfigDist(x, y)
	}

	prof.BeginROI()

	// ---- Offline phase: sampling.
	prof.Begin("sample")
	tree := kdtree.New(dof, nil)
	var nodes [][]float64
	if cfg.Workers > 0 {
		var err error
		nodes, err = samplePartitioned(ctx, cfg, a, ws, r, prof)
		if err != nil {
			prof.End()
			prof.EndROI()
			return res, err
		}
		// The kd-tree is built serially in node order, so its shape — and
		// every downstream neighbor query — is independent of scheduling.
		for i, c := range nodes {
			tree.Insert(c, i)
		}
	} else {
		nodes = make([][]float64, 0, cfg.Samples)
		for len(nodes) < cfg.Samples {
			if err := ctx.Err(); err != nil {
				prof.End()
				prof.EndROI()
				return res, err
			}
			c := make([]float64, dof)
			for i := range c {
				c[i] = r.Uniform(-math.Pi, math.Pi)
			}
			if ws.CollisionFree(a, c, scratch) {
				tree.Insert(c, len(nodes))
				nodes = append(nodes, c)
				prof.StepDone() // one step per accepted roadmap sample
			}
		}
	}
	prof.End()

	// ---- Offline phase: connecting k-nearest neighbors. Lazy PRM defers
	// the edge collision checks to query time.
	prof.Begin("connect")
	var adj [][]edge
	var nbrBuf []int // reused k-nearest buffer across all connect queries
	if cfg.Workers > 0 {
		var err error
		adj, err = connectParallel(ctx, cfg, a, ws, step, nodes, tree, &res, &l2norms)
		if err != nil {
			prof.End()
			prof.EndROI()
			return res, err
		}
	} else {
		adj = make([][]edge, len(nodes))
		for i, c := range nodes {
			if i%256 == 0 {
				if err := ctx.Err(); err != nil {
					prof.End()
					prof.EndROI()
					return res, err
				}
			}
			nbrBuf = tree.KNearestAppend(c, cfg.K+1, nbrBuf[:0])
			for _, j := range nbrBuf {
				if j == i || j > i {
					continue // undirected; connect each pair once
				}
				if cfg.Lazy || ws.EdgeFree(a, c, nodes[j], step, scratch, cfgScratch) {
					d := dist(c, nodes[j])
					adj[i] = append(adj[i], edge{j, d})
					adj[j] = append(adj[j], edge{i, d})
					res.RoadmapEdges++
				}
			}
		}
	}
	prof.End()
	prof.StepDone() // roadmap connection is one step

	// ---- Online phase: connect start/goal, then A* over the roadmap.
	prof.Begin("query")
	startID := len(nodes)
	goalID := len(nodes) + 1
	all := append(append([][]float64{}, nodes...), start, goal)
	adj = append(adj, nil, nil)
	connectEndpoint := func(id int, c []float64) {
		nbrBuf = tree.KNearestAppend(c, 3*cfg.K, nbrBuf[:0])
		for _, j := range nbrBuf {
			if cfg.Lazy || ws.EdgeFree(a, c, nodes[j], step, scratch, cfgScratch) {
				d := dist(c, nodes[j])
				adj[id] = append(adj[id], edge{j, d})
				adj[j] = append(adj[j], edge{id, d})
			}
		}
	}
	connectEndpoint(startID, start)
	connectEndpoint(goalID, goal)

	sp := &roadmapSpace{adj: adj}
	h := func(id int) float64 { return dist(all[id], goal) }

	var sr search.Result
	var serr error
	if !cfg.Lazy {
		sr, serr = search.Solve(search.Problem{Space: sp, Start: startID, Goal: goalID, H: h, Ctx: ctx})
	} else {
		// Lazy PRM query loop: search over the optimistic roadmap, validate
		// only the edges on the candidate path, drop invalid ones, repeat.
		validated := map[[2]int]bool{}
		for {
			if serr = ctx.Err(); serr != nil {
				break
			}
			sr, serr = search.Solve(search.Problem{Space: sp, Start: startID, Goal: goalID, H: h, Ctx: ctx})
			if serr != nil || !sr.Found {
				break
			}
			allFree := true
			for i := 1; i < len(sr.Path); i++ {
				u, v := sr.Path[i-1], sr.Path[i]
				key := [2]int{minInt(u, v), maxInt(u, v)}
				if validated[key] {
					continue
				}
				if ws.EdgeFree(a, all[u], all[v], step, scratch, cfgScratch) {
					validated[key] = true
					continue
				}
				sp.removeEdge(u, v)
				res.LazyRejected++
				allFree = false
				break
			}
			if allFree {
				break
			}
		}
	}
	prof.End()
	prof.StepDone() // the online query is one step
	prof.EndROI()

	res.RoadmapNodes = len(nodes)
	res.Found = sr.Found
	res.Expanded = sr.Expanded
	res.L2Norms = l2norms
	res.SegChecks = ws.SegChecks
	if sr.Found {
		res.PathCost = sr.Cost
		for _, id := range sr.Path {
			res.Path = append(res.Path, all[id])
		}
	}
	if serr != nil {
		return res, serr
	}
	return res, nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

type edge struct {
	to   int
	cost float64
}

// roadmapSpace adapts the adjacency lists to the search interface.
type roadmapSpace struct {
	adj [][]edge
}

// removeEdge deletes the undirected edge u-v (Lazy PRM discards edges whose
// deferred collision check fails).
func (s *roadmapSpace) removeEdge(u, v int) {
	drop := func(from, to int) {
		es := s.adj[from]
		for k, e := range es {
			if e.to == to {
				s.adj[from] = append(es[:k], es[k+1:]...)
				return
			}
		}
	}
	drop(u, v)
	drop(v, u)
}

// NumStates implements search.Sized.
func (s *roadmapSpace) NumStates() int { return len(s.adj) }

// Neighbors implements search.Space.
func (s *roadmapSpace) Neighbors(id int, yield func(to int, cost float64)) {
	for _, e := range s.adj[id] {
		yield(e.to, e.cost)
	}
}
