// Parallel roadmap construction for Workers >= 1: stratified partitioned
// sampling (fixed dim-0 slabs, per-slab RNG sub-streams) and chunked
// parallel neighbor connection whose per-node candidate lists are folded
// serially in node order. Both phases are bit-identical for every worker
// count — partitioning and per-slab seeds are fixed up front, connection
// results are pure per-node functions of the shared kd-tree, and only the
// degree of concurrency varies with Workers.
package prm

import (
	"context"
	"math"
	"sync"

	"repro/internal/arm"
	"repro/internal/geom"
	"repro/internal/kdtree"
	"repro/internal/profile"
	"repro/internal/rng"
)

const (
	// samplePartitions is the fixed number of dim-0 sampling slabs,
	// deliberately independent of Config.Workers.
	samplePartitions = 4
	// sampleAttemptFactor bounds rejection sampling per slab: a slab gives
	// up after quota*sampleAttemptFactor draws, so a heavily blocked slab
	// under-fills its quota deterministically instead of spinning forever.
	sampleAttemptFactor = 200
)

// samplePartitioned draws the roadmap samples stratified over fixed dim-0
// slabs, each slab on its own RNG sub-stream and workspace clone, at most
// Workers slabs concurrently. Slab results are concatenated in slab order
// and slab SegChecks are folded into ws.
func samplePartitioned(ctx context.Context, cfg Config, a *arm.Arm, ws *arm.Workspace, r *rng.RNG, prof *profile.Profile) ([][]float64, error) {
	type slab struct {
		lo, hi float64
		quota  int
		seed   int64
		nodes  [][]float64
		seg    int64
	}
	dof := a.DoF()
	width := 2 * math.Pi / samplePartitions
	slabs := make([]*slab, samplePartitions)
	for k := range slabs {
		s := &slab{
			lo:    -math.Pi + float64(k)*width,
			hi:    -math.Pi + float64(k+1)*width,
			quota: cfg.Samples / samplePartitions,
			// Seeds come off the root RNG serially, in slab order.
			seed: int64(r.Uint64()),
		}
		if k < cfg.Samples%samplePartitions {
			s.quota++
		}
		slabs[k] = s
	}

	workers := cfg.Workers
	if workers > samplePartitions {
		workers = samplePartitions
	}
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for _, s := range slabs {
		wg.Add(1)
		go func(s *slab) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			pr := rng.New(s.seed)
			pws := &arm.Workspace{Obstacles: ws.Obstacles}
			scratch := make([]geom.Vec2, 0, dof+1)
			s.nodes = make([][]float64, 0, s.quota)
			for att := 0; att < s.quota*sampleAttemptFactor && len(s.nodes) < s.quota; att++ {
				if ctx.Err() != nil {
					break
				}
				c := make([]float64, dof)
				c[0] = pr.Uniform(s.lo, s.hi)
				for i := 1; i < dof; i++ {
					c[i] = pr.Uniform(-math.Pi, math.Pi)
				}
				if pws.CollisionFree(a, c, scratch) {
					s.nodes = append(s.nodes, c)
				}
			}
			s.seg = pws.SegChecks
		}(s)
	}
	wg.Wait()

	var nodes [][]float64
	for _, s := range slabs {
		nodes = append(nodes, s.nodes...)
		ws.SegChecks += s.seg
		for range s.nodes {
			prof.StepDone() // one step per accepted roadmap sample
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return nodes, nil
}

// connectParallel runs the k-nearest connection phase over worker chunks.
// Each worker takes a kd-tree clone (the candidate heap makes a Tree
// non-reentrant) and a workspace clone, and records node i's accepted
// lower-index neighbors. Because each node's candidates are a pure function
// of the shared tree, the chunking does not affect them; the serial fold in
// node order then rebuilds exactly the adjacency a serial pass would.
func connectParallel(ctx context.Context, cfg Config, a *arm.Arm, ws *arm.Workspace, step float64, nodes [][]float64, tree *kdtree.Tree, res *Result, l2norms *int64) ([][]edge, error) {
	n := len(nodes)
	adj := make([][]edge, n)
	if n == 0 {
		return adj, ctx.Err()
	}
	workers := cfg.Workers
	if workers > n {
		workers = n
	}
	chunk := (n + workers - 1) / workers
	cands := make([][]edge, n) // per-node accepted j<i neighbors, nearest-first
	segs := make([]int64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			wt := tree.Clone()
			wws := &arm.Workspace{Obstacles: ws.Obstacles}
			scratch := make([]geom.Vec2, 0, a.DoF()+1)
			cfgScratch := make([]float64, a.DoF())
			var nbrBuf []int
			for i := lo; i < hi; i++ {
				if ctx.Err() != nil {
					break
				}
				c := nodes[i]
				nbrBuf = wt.KNearestAppend(c, cfg.K+1, nbrBuf[:0])
				for _, j := range nbrBuf {
					if j == i || j > i {
						continue // undirected; connect each pair once
					}
					if cfg.Lazy || wws.EdgeFree(a, c, nodes[j], step, scratch, cfgScratch) {
						cands[i] = append(cands[i], edge{j, arm.ConfigDist(c, nodes[j])})
					}
				}
			}
			segs[w] = wws.SegChecks
		}(w, lo, hi)
	}
	wg.Wait()
	for _, s := range segs {
		ws.SegChecks += s
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for i, es := range cands {
		for _, e := range es {
			adj[i] = append(adj[i], e)
			adj[e.to] = append(adj[e.to], edge{i, e.cost})
			*l2norms++
			res.RoadmapEdges++
		}
	}
	return adj, nil
}
