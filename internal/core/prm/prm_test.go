package prm

import (
	"context"
	"testing"

	"repro/internal/arm"
	"repro/internal/geom"
	"repro/internal/profile"
)

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Samples = 700
	return cfg
}

func TestFindsPathInMapC(t *testing.T) {
	res, err := Run(context.Background(), smallConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || len(res.Path) < 2 {
		t.Fatal("no roadmap path in Map-C")
	}
	if res.RoadmapNodes == 0 || res.RoadmapEdges == 0 {
		t.Fatal("empty roadmap")
	}
	if res.L2Norms == 0 || res.SegChecks == 0 {
		t.Fatal("no distance/collision work recorded")
	}
}

func TestPathIsCollisionFree(t *testing.T) {
	cfg := smallConfig()
	cfg.Workspace = arm.MapC()
	res, err := Run(context.Background(), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	a := arm.Default5DoF()
	ws := arm.MapC() // fresh workspace: counters don't matter here
	var scratch []geom.Vec2
	tmp := make([]float64, a.DoF())
	for i := 1; i < len(res.Path); i++ {
		if !ws.EdgeFree(a, res.Path[i-1], res.Path[i], 0.05, scratch, tmp) {
			t.Fatalf("roadmap path edge %d collides", i)
		}
	}
}

func TestMapFEasierThanMapC(t *testing.T) {
	free := smallConfig()
	free.Workspace = arm.MapF()
	cluttered := smallConfig()
	cluttered.Workspace = arm.MapC()
	a, err1 := Run(context.Background(), free, nil)
	b, err2 := Run(context.Background(), cluttered, nil)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	// The free map connects more edges for the same sample budget.
	if a.RoadmapEdges <= b.RoadmapEdges {
		t.Fatalf("Map-F edges %d <= Map-C edges %d", a.RoadmapEdges, b.RoadmapEdges)
	}
	// And its path should be no longer (direct sweep allowed).
	if a.PathCost > b.PathCost+1e-9 {
		t.Fatalf("Map-F path (%v) longer than Map-C path (%v)", a.PathCost, b.PathCost)
	}
}

func TestOfflineOnlinePhases(t *testing.T) {
	p := profile.New()
	if _, err := Run(context.Background(), smallConfig(), p); err != nil {
		t.Fatal(err)
	}
	rep := p.Snapshot()
	for _, phase := range []string{"sample", "connect", "query"} {
		if rep.Fraction(phase) <= 0 {
			t.Fatalf("phase %q missing from profile", phase)
		}
	}
	// The offline phases dominate the total; the online query is the
	// cheap-but-critical-path part (paper: "paid only once and done
	// offline").
	if rep.Fraction("connect") < rep.Fraction("query") {
		t.Fatal("connect phase should dwarf the online query")
	}
}

func TestMoreSamplesShorterPaths(t *testing.T) {
	sparse := smallConfig()
	sparse.Samples = 400
	dense := smallConfig()
	dense.Samples = 2000
	a, err1 := Run(context.Background(), sparse, nil)
	b, err2 := Run(context.Background(), dense, nil)
	if err1 != nil || err2 != nil {
		t.Skipf("a sparse roadmap may fail to connect: %v %v", err1, err2)
	}
	if b.PathCost > a.PathCost*1.5 {
		t.Fatalf("denser roadmap gave a much worse path: %v vs %v", b.PathCost, a.PathCost)
	}
}

func TestLazyPRMSlashesCollisionWork(t *testing.T) {
	eager := smallConfig()
	lazy := smallConfig()
	lazy.Lazy = true
	a, err1 := Run(context.Background(), eager, nil)
	b, err2 := Run(context.Background(), lazy, nil)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if !b.Found {
		t.Fatal("lazy PRM found no path")
	}
	// The whole point of laziness: orders of magnitude fewer segment tests.
	if b.SegChecks*5 > a.SegChecks {
		t.Fatalf("lazy segchecks %d not ≪ eager %d", b.SegChecks, a.SegChecks)
	}
	// Deferred validation must have pruned at least one optimistic edge in
	// the cluttered map.
	if b.LazyRejected == 0 {
		t.Fatal("lazy PRM validated nothing")
	}
	if a.LazyRejected != 0 {
		t.Fatal("eager PRM reported lazy rejections")
	}
}

func TestLazyPRMPathIsCollisionFree(t *testing.T) {
	cfg := smallConfig()
	cfg.Lazy = true
	cfg.Workspace = arm.MapC()
	res, err := Run(context.Background(), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	a := arm.Default5DoF()
	ws := arm.MapC()
	var scratch []geom.Vec2
	tmp := make([]float64, a.DoF())
	for i := 1; i < len(res.Path); i++ {
		if !ws.EdgeFree(a, res.Path[i-1], res.Path[i], 0.05, scratch, tmp) {
			t.Fatalf("lazy path edge %d collides", i)
		}
	}
}

func TestCollidingEndpointsRejected(t *testing.T) {
	cfg := smallConfig()
	cfg.Start = make([]float64, 5) // straight +X pose collides in Map-C
	if _, err := Run(context.Background(), cfg, nil); err == nil {
		t.Fatal("colliding start accepted")
	}
}

func TestConfigValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Samples = 0
	if _, err := Run(context.Background(), cfg, nil); err == nil {
		t.Fatal("zero samples accepted")
	}
	cfg = DefaultConfig()
	cfg.K = 0
	if _, err := Run(context.Background(), cfg, nil); err == nil {
		t.Fatal("zero K accepted")
	}
}

func TestDeterminism(t *testing.T) {
	a, _ := Run(context.Background(), smallConfig(), nil)
	b, _ := Run(context.Background(), smallConfig(), nil)
	if a.PathCost != b.PathCost || a.RoadmapEdges != b.RoadmapEdges {
		t.Fatal("same seed diverged")
	}
}
