// Package pp3d implements kernel 05.pp3d: 3D path planning for an unmanned
// aerial vehicle (paper §V.5) — A* over a voxel campus with the z dimension
// added. The UAV "is small and fits in one resolution unit", so collision
// detection is a voxel occupancy test per candidate move, and the graph
// search itself — irregular traversal, hard to parallelize — is the second
// major bottleneck the paper identifies.
package pp3d

import (
	"context"

	"repro/internal/check"
	"repro/internal/collision"
	"repro/internal/grid"
	"repro/internal/maps"
	"repro/internal/profile"
	"repro/internal/search"
)

// Config parameterizes a planning run.
type Config struct {
	// Map is the voxel environment; nil builds the default campus
	// (Freiburg fr_campus substitute).
	Map *grid.Grid3D
	// Radius is the UAV's collision radius in voxels; 0 models the paper's
	// point-sized UAV.
	Radius int
	// Start and Goal are voxel coordinates; negative selects a default
	// long route.
	StartX, StartY, StartZ int
	GoalX, GoalY, GoalZ    int
	// Weight inflates the heuristic (1 = plain A*).
	Weight float64
	// Smooth applies line-of-sight shortcutting to the found path
	// (Result.SmoothedPath), the 3D analogue of the rrtpp kernel's
	// post-processing.
	Smooth bool
	Seed   int64
}

// Validate reports every bound and finiteness violation in the config.
func (c Config) Validate() error {
	f := check.New("pp3d")
	f.NonNegativeInt("Radius", c.Radius)
	f.Finite("Weight", c.Weight)
	return f.Err()
}

// DefaultConfig returns the paper-style setup: a long route across the
// campus for a point UAV.
func DefaultConfig() Config {
	return Config{
		Radius: 0,
		StartX: -1, StartY: -1, StartZ: -1,
		GoalX: -1, GoalY: -1, GoalZ: -1,
		Weight: 1,
		Seed:   1,
	}
}

// DefaultMap builds the synthetic campus used when Config.Map is nil.
func DefaultMap(w, h, d int, seed int64) *grid.Grid3D {
	return maps.Campus3D(w, h, d, seed)
}

// Result reports the planning outcome and workload statistics.
type Result struct {
	Found bool
	// Path is the voxel-index path (IDs encoded (z*H+y)*W+x).
	Path []int
	// PathLength is the route length in voxel units.
	PathLength float64
	Expanded   int
	// Checks and Cells count collision queries and voxels touched.
	Checks int64
	Cells  int64
	// SmoothedPath is the line-of-sight shortcut of Path (only when
	// Config.Smooth is set); it visits a subset of Path's voxels.
	SmoothedPath []int
}

// Run executes the kernel. Harness phases: "collision" (voxel checks)
// nested inside "search" (A*). A cancelled ctx aborts the search loop
// promptly, returning ctx.Err().
func Run(ctx context.Context, cfg Config, prof *profile.Profile) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	g := cfg.Map
	if g == nil {
		g = DefaultMap(160, 160, 24, cfg.Seed)
	}
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}

	sx, sy, sz := cfg.StartX, cfg.StartY, cfg.StartZ
	gx, gy, gz := cfg.GoalX, cfg.GoalY, cfg.GoalZ
	if sx < 0 {
		sx, sy, sz = maps.FreeVoxelNear(g, g.W/16, g.H/16, 2)
	}
	if gx < 0 {
		gx, gy, gz = maps.FreeVoxelNear(g, g.W-1-g.W/16, g.H-1-g.H/16, g.D-3)
	}

	checker := &collision.Point3D{G: g}
	base := &search.Grid3DSpace{G: g}
	space := &search.Grid3DSpace{
		G: g,
		Passable: func(x, y, z int) bool {
			prof.Begin("collision")
			var ok bool
			if cfg.Radius > 0 {
				ok = checker.CheckSphere(x, y, z, cfg.Radius)
			} else {
				ok = checker.Check(x, y, z)
			}
			prof.End()
			return ok
		},
	}

	prof.BeginROI()
	prof.Begin("search")
	sr, err := search.Solve(search.Problem{
		Space:  space,
		Start:  base.ID(sx, sy, sz),
		Goal:   base.ID(gx, gy, gz),
		H:      base.EuclideanHeuristic(gx, gy, gz),
		Weight: cfg.Weight,
		Ctx:    ctx,
	})
	prof.End()
	prof.StepDone() // one-shot planner: the whole episode is one step
	prof.EndROI()

	res := Result{
		Found:      sr.Found,
		Path:       sr.Path,
		PathLength: sr.Cost,
		Expanded:   sr.Expanded,
		Checks:     checker.Checks,
		Cells:      checker.Cells,
	}
	if cfg.Smooth && sr.Found {
		res.SmoothedPath = g.SmoothPath3D(sr.Path)
	}
	return res, err
}
