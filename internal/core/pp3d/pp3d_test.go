package pp3d

import (
	"context"
	"testing"

	"repro/internal/grid"
	"repro/internal/profile"
)

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Map = DefaultMap(64, 64, 16, 1)
	return cfg
}

func TestFindsPath(t *testing.T) {
	res, err := Run(context.Background(), smallConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || len(res.Path) < 2 {
		t.Fatal("no path on the campus map")
	}
	if res.Checks == 0 {
		t.Fatal("no collision checks recorded")
	}
}

func TestPathIsValid(t *testing.T) {
	cfg := smallConfig()
	res, err := Run(context.Background(), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	g := cfg.Map
	prevX, prevY, prevZ := -999, 0, 0
	for i, id := range res.Path {
		x := id % g.W
		y := (id / g.W) % g.H
		z := id / (g.W * g.H)
		if g.Occupied(x, y, z) {
			t.Fatalf("path voxel %d occupied", i)
		}
		if i > 0 {
			dx, dy, dz := x-prevX, y-prevY, z-prevZ
			if dx < -1 || dx > 1 || dy < -1 || dy > 1 || dz < -1 || dz > 1 {
				t.Fatalf("non-adjacent step at %d", i)
			}
		}
		prevX, prevY, prevZ = x, y, z
	}
}

func TestProfileSplitsCollisionAndSearch(t *testing.T) {
	p := profile.New()
	if _, err := Run(context.Background(), smallConfig(), p); err != nil {
		t.Fatal(err)
	}
	rep := p.Snapshot()
	cf := rep.Fraction("collision")
	sf := rep.Fraction("search")
	if cf <= 0 || sf <= 0 {
		t.Fatalf("phases missing: collision=%.2f search=%.2f", cf, sf)
	}
	// Paper: both collision detection and graph search are major; together
	// they account for essentially the whole kernel.
	if cf+sf < 0.8 {
		t.Fatalf("collision+search = %.2f of ROI", cf+sf)
	}
}

func TestRadiusMakesPlanningHarder(t *testing.T) {
	point := smallConfig()
	a, err := Run(context.Background(), point, nil)
	if err != nil {
		t.Fatal(err)
	}
	fat := smallConfig()
	fat.Radius = 1
	b, err := Run(context.Background(), fat, nil)
	if err != nil {
		// A fat UAV may legitimately fail on a tight map; that still
		// demonstrates the radius bites.
		return
	}
	if b.Cells <= a.Cells {
		t.Fatal("sphere checks did not touch more voxels than point checks")
	}
}

func TestUnreachableGoal(t *testing.T) {
	g := grid.NewGrid3D(20, 20, 8)
	// Wall across the whole volume.
	g.FillBox(10, 0, 0, 10, 19, 7, true)
	cfg := DefaultConfig()
	cfg.Map = g
	cfg.StartX, cfg.StartY, cfg.StartZ = 2, 10, 3
	cfg.GoalX, cfg.GoalY, cfg.GoalZ = 18, 10, 3
	res, err := Run(context.Background(), cfg, nil)
	if err == nil || res.Found {
		t.Fatal("goal behind a full wall reported reachable")
	}
}

func TestNegativeRadiusRejected(t *testing.T) {
	cfg := smallConfig()
	cfg.Radius = -1
	if _, err := Run(context.Background(), cfg, nil); err == nil {
		t.Fatal("negative radius accepted")
	}
}

func TestSmoothingShortensWaypoints(t *testing.T) {
	cfg := smallConfig()
	cfg.Smooth = true
	res, err := Run(context.Background(), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.SmoothedPath) == 0 {
		t.Fatal("no smoothed path produced")
	}
	if len(res.SmoothedPath) > len(res.Path) {
		t.Fatalf("smoothing grew the path: %d -> %d", len(res.Path), len(res.SmoothedPath))
	}
	if res.SmoothedPath[0] != res.Path[0] ||
		res.SmoothedPath[len(res.SmoothedPath)-1] != res.Path[len(res.Path)-1] {
		t.Fatal("smoothing changed the endpoints")
	}
}

func TestDeterminism(t *testing.T) {
	a, _ := Run(context.Background(), smallConfig(), nil)
	b, _ := Run(context.Background(), smallConfig(), nil)
	if a.Expanded != b.Expanded || a.PathLength != b.PathLength {
		t.Fatal("same seed diverged")
	}
}
