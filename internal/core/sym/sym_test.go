package sym

import (
	"context"
	"strings"
	"testing"

	"repro/internal/profile"
)

func TestBlocksWorldKernel(t *testing.T) {
	cfg := DefaultConfig(BlocksWorld)
	cfg.Blocks = 5
	res, err := Run(context.Background(), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || res.PlanLength == 0 {
		t.Fatal("no blocks-world plan")
	}
	if res.Stats.Expanded == 0 || res.Stats.StringBytes == 0 {
		t.Fatalf("stats empty: %+v", res.Stats)
	}
}

func TestFirefighterKernel(t *testing.T) {
	cfg := DefaultConfig(Firefighter)
	res, err := Run(context.Background(), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatal("no firefighter plan")
	}
	// The final pour must appear.
	found := false
	for _, s := range res.Plan {
		if strings.HasPrefix(s, "PourWater1") {
			found = true
		}
	}
	if !found {
		t.Fatalf("plan never extinguishes: %v", res.Plan)
	}
}

func TestFextBranchingHigher(t *testing.T) {
	blkw, err1 := Run(context.Background(), Config{Domain: BlocksWorld, Blocks: 6}, nil)
	fext, err2 := Run(context.Background(), Config{Domain: Firefighter, Locations: 5, Pours: 3}, nil)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	// Paper §V.12: the firefighting domain exposes more applicable actions
	// per state (≈3.2x in the paper's setup).
	if fext.Stats.AvgBranching() <= blkw.Stats.AvgBranching() {
		t.Fatalf("fext branching %.2f !> blkw %.2f",
			fext.Stats.AvgBranching(), blkw.Stats.AvgBranching())
	}
}

func TestProfilePhases(t *testing.T) {
	p := profile.New()
	if _, err := Run(context.Background(), Config{Domain: Firefighter, Locations: 5, Pours: 3}, p); err != nil {
		t.Fatal(err)
	}
	rep := p.Snapshot()
	if rep.Fraction("search") <= 0 || rep.Fraction("strings") <= 0 {
		t.Fatalf("phases missing: search=%.2f strings=%.2f",
			rep.Fraction("search"), rep.Fraction("strings"))
	}
}

func TestUnknownDomain(t *testing.T) {
	if _, err := Run(context.Background(), Config{Domain: "nope"}, nil); err == nil {
		t.Fatal("unknown domain accepted")
	}
}

func TestMaxExpansionsPropagates(t *testing.T) {
	cfg := Config{Domain: BlocksWorld, Blocks: 7, MaxExpansions: 2}
	if _, err := Run(context.Background(), cfg, nil); err == nil {
		t.Fatal("capped search still produced a plan")
	}
}

func TestDefaultsFilled(t *testing.T) {
	// Zero-value sizes get defaults rather than panicking.
	if _, err := Run(context.Background(), Config{Domain: BlocksWorld}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(context.Background(), Config{Domain: Firefighter}, nil); err != nil {
		t.Fatal(err)
	}
}
