// Package sym implements kernels 11.sym-blkw and 12.sym-fext: symbolic
// planning on the blocks-world and firefighting domains (paper §V.11-12).
// Both kernels share one planner (internal/symbolic); they differ only in
// the domain description, exactly as in the paper ("The kernel uses the
// same symbolic planner as in sym-blkw").
package sym

import (
	"context"
	"errors"

	"repro/internal/check"
	"repro/internal/profile"
	"repro/internal/symbolic"
)

// Domain selects which problem the planner solves.
type Domain string

// The two domains of the paper.
const (
	BlocksWorld Domain = "blkw"
	Firefighter Domain = "fext"
)

// Config parameterizes a planning run.
type Config struct {
	Domain Domain
	// Blocks sizes the blocks-world tower (sym-blkw).
	Blocks int
	// Locations and Pours size the firefighting problem (sym-fext).
	Locations, Pours int
	// MaxExpansions aborts hopeless searches (0 = unlimited).
	MaxExpansions int
	// Additive switches the planner to the h_add heuristic (see
	// internal/symbolic): informed satisficing search instead of the
	// default goal-count A*.
	Additive bool
}

// Validate reports every bound violation in the config.
func (c Config) Validate() error {
	f := check.New("sym")
	f.NonNegativeInt("Blocks", c.Blocks)
	f.NonNegativeInt("Locations", c.Locations)
	f.NonNegativeInt("Pours", c.Pours)
	f.NonNegativeInt("MaxExpansions", c.MaxExpansions)
	return f.Err()
}

// DefaultConfig returns the paper-style setup for the given domain.
func DefaultConfig(d Domain) Config {
	switch d {
	case Firefighter:
		return Config{Domain: Firefighter, Locations: 5, Pours: 3}
	default:
		return Config{Domain: BlocksWorld, Blocks: 7}
	}
}

// Result reports the plan and the planner's work profile.
type Result struct {
	Found bool
	// Plan is the action sequence.
	Plan []string
	// PlanLength is len(Plan).
	PlanLength int
	// Stats carries the planner's expansion/string-work counters, including
	// AvgBranching — the parallelism measure behind the paper's "~3.2x"
	// sym-fext observation.
	Stats symbolic.Stats
	// GroundActions is the size of the grounded action set.
	GroundActions int
}

// Run executes the kernel. Harness phases (from the planner): "search" and
// "strings". A cancelled ctx aborts the planner's search loop promptly and
// returns ctx.Err().
func Run(ctx context.Context, cfg Config, prof *profile.Profile) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	var prob *symbolic.Problem
	switch cfg.Domain {
	case BlocksWorld:
		n := cfg.Blocks
		if n <= 0 {
			n = 7
		}
		prob = symbolic.BlocksWorld(n)
	case Firefighter:
		l, p := cfg.Locations, cfg.Pours
		if l <= 0 {
			l = 5
		}
		if p <= 0 {
			p = 3
		}
		prob = symbolic.Firefighter(l, p)
	default:
		return Result{}, errors.New("sym: unknown domain " + string(cfg.Domain))
	}

	h := symbolic.GoalCount
	if cfg.Additive {
		h = symbolic.Additive
	}
	prof.BeginROI()
	plan := symbolic.SolveWith(prob, symbolic.SolveOptions{
		MaxExpansions: cfg.MaxExpansions,
		Heuristic:     h,
		Prof:          prof,
		Ctx:           ctx,
	})
	if err := ctx.Err(); err != nil {
		prof.EndROI()
		return Result{GroundActions: len(prob.Actions)}, err
	}
	prof.StepDone() // one-shot planner: the whole episode is one step
	prof.EndROI()

	res := Result{GroundActions: len(prob.Actions)}
	if plan == nil {
		return res, errors.New("sym: no plan found")
	}
	if err := symbolic.Validate(prob, plan); err != nil {
		return res, err
	}
	res.Found = true
	res.Plan = plan.Steps
	res.PlanLength = len(plan.Steps)
	res.Stats = plan.Stats
	return res, nil
}
