package pfl

import (
	"testing"

	"repro/internal/profile"
)

// benchConfig is DefaultConfig scaled down so one step is benchmark-sized:
// the structure (global init with over-provisioning, resampling, annealing)
// is unchanged, only the population is smaller.
func benchConfig() Config {
	cfg := DefaultConfig()
	cfg.Particles = 200
	cfg.InitFactor = 4
	return cfg
}

// BenchmarkPFLStep measures one steady-state particle-filter
// motion/raycast/weight/resample cycle with profiling disabled. The benchmark
// first asserts the step is allocation-free after warmup: the particle
// population is double-buffered across resamples and the scan buffer is
// reused, so steady-state allocation churn in the inner loop would be a
// regression in exactly the quantity the harness measures. scripts/ci.sh
// gates allocs/op == 0 here.
func BenchmarkPFLStep(b *testing.B) {
	var res Result
	s, err := newState(benchConfig(), &res)
	if err != nil {
		b.Fatal(err)
	}
	prof := profile.Disabled()
	// Warmup: drive past the initial over-provisioned population's first
	// resample so both halves of the particle double buffer exist and the
	// population has reached its steady-state size.
	for i := 0; i < 10; i++ {
		s.step(prof)
	}
	if res.Resamples == 0 {
		b.Fatal("warmup never resampled; benchmark would not cover the double-buffer swap")
	}
	if allocs := testing.AllocsPerRun(100, func() { s.step(prof) }); allocs != 0 {
		b.Fatalf("steady-state PFL step allocates: %v allocs/op", allocs)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.step(prof)
	}
}

// BenchmarkPFLStepLikelihoodField is the likelihood-field ablation variant:
// endpoint scoring against the precomputed distance field instead of per-beam
// ray casting. Not part of the CI allocation gate, but it shares the same
// buffers and should stay allocation-free too.
func BenchmarkPFLStepLikelihoodField(b *testing.B) {
	cfg := benchConfig()
	cfg.LikelihoodField = true
	var res Result
	s, err := newState(cfg, &res)
	if err != nil {
		b.Fatal(err)
	}
	s.distField = s.g.DistanceTransform()
	prof := profile.Disabled()
	for i := 0; i < 10; i++ {
		s.step(prof)
	}
	if allocs := testing.AllocsPerRun(100, func() { s.step(prof) }); allocs != 0 {
		b.Fatalf("steady-state likelihood-field step allocates: %v allocs/op", allocs)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.step(prof)
	}
}
