// Package pfl implements kernel 01.pfl: particle filter localization
// (Monte Carlo localization) of a mobile robot with an odometer and a laser
// rangefinder on a known occupancy map (paper §V.1).
//
// The filter maintains a population of pose hypotheses (particles), updates
// them with sampled odometry, weighs them by matching simulated laser
// ray-casts against the sensed ranges, and resamples when the effective
// sample size drops. Ray-casting — every particle traversing the map along
// every beam direction — is the kernel's dominant phase; the paper measures
// 67-78% of execution time there, and the harness regions in this
// implementation reproduce that breakdown.
//
// Two initialization modes exist, both present in the MCL literature:
// global (uniform over free space, the paper's Fig. 2 setting — the initial
// population is over-provisioned so the narrow true-pose basin gets seeded)
// and tracking (Gaussian around a prior pose, the common deployed setting).
// Global localization of a 1000 m² building is a genuinely hard inference
// problem: production systems throw 10^5 particles at it, and some seeds
// still converge to an aliased room. EXPERIMENTS.md reports the measured
// convergence rate.
package pfl

import (
	"context"
	"errors"
	"math"
	"sync"

	"repro/internal/check"
	"repro/internal/geom"
	"repro/internal/grid"
	"repro/internal/maps"
	"repro/internal/profile"
	"repro/internal/rng"
	"repro/internal/sensor"
)

// Config parameterizes one localization run. All fields have sensible
// defaults via DefaultConfig; every one is settable from cmd/rtrbench flags,
// matching the paper's "completely flexible" CLI contract.
type Config struct {
	Map    *grid.Grid2D // known environment; nil builds the default indoor map
	Region int          // which of the 5 building parts to start in (paper evaluates five)
	// Start overrides the robot's true starting pose (default: the center
	// of the selected Region).
	Start     *geom.Pose2
	Particles int // steady-state particle population size
	Steps     int // motion/measurement cycles
	Laser     sensor.Laser
	Odom      sensor.OdometryModel
	StepLen   float64 // commanded forward motion per step, meters

	// ModelSigma is the sensor-model range standard deviation used for
	// weighting (deliberately larger than the laser's true noise: global
	// localization needs a forgiving likelihood so partially matching
	// particles survive early resampling rounds).
	ModelSigma float64
	// ZHit and ZRand mix the Gaussian hit model with a uniform floor, the
	// standard beam mixture model.
	ZHit, ZRand float64
	// AnnealFrom and AnnealDecay control likelihood annealing: beam
	// log-likelihood increments are divided by a temperature that starts at
	// AnnealFrom and decays toward 1. A smooth early likelihood keeps broad
	// hypotheses alive until the population has found the right basin.
	AnnealFrom, AnnealDecay float64
	// InitFactor over-provisions the initial uniform draw by this factor;
	// the population returns to Particles at the first resampling. Global
	// localization needs the initial draw to seed the (tiny) true-pose
	// basin at least once.
	InitFactor int
	// InjectRate is the fraction of particles replaced by fresh uniform
	// samples at each resampling (augmented MCL), enabling recovery from a
	// wrong converged hypothesis.
	InjectRate float64

	// Workers shards the per-particle hot loops — the motion update and the
	// ray-casting measurement update — across up to this many goroutines.
	// 0 (the default) runs the legacy serial algorithm. Any Workers >= 1
	// selects the deterministic parallel algorithm: the motion update draws
	// one tick base from the main RNG and gives particle i the sub-stream
	// seeded by base+i, so results are bit-identical for every worker count
	// (1 worker and 64 workers digest the same); the weigh fan-out is pure
	// and needs no sub-streams. See DESIGN.md "Intra-kernel parallelism".
	Workers int

	// LikelihoodField replaces the beam ray-cast model with AMCL's
	// likelihood-field model: each measured beam endpoint is scored by its
	// distance to the nearest obstacle (a precomputed distance transform).
	// This is the ablation that removes the paper's ray-casting bottleneck
	// entirely — the reason Intel's ray-casting accelerator (§V.1) targets
	// the beam model.
	LikelihoodField bool

	// TrackingPrior, when non-nil, switches to tracking mode: particles
	// initialize from a Gaussian around this pose instead of uniformly.
	TrackingPrior *geom.Pose2
	// TrackingSpread is the positional std-dev (meters) of the tracking
	// prior; the heading spread is TrackingSpread/2 radians.
	TrackingSpread float64

	Seed int64
}

// Validate reports every dimension, bound, and finiteness violation in the
// config.
func (c Config) Validate() error {
	f := check.New("pfl")
	f.PositiveInt("Particles", c.Particles)
	f.PositiveInt("Steps", c.Steps)
	f.NonNegative("StepLen", c.StepLen)
	f.NonNegative("ModelSigma", c.ModelSigma)
	f.NonNegative("ZHit", c.ZHit)
	f.NonNegative("ZRand", c.ZRand)
	f.Finite("AnnealFrom", c.AnnealFrom)
	f.Finite("AnnealDecay", c.AnnealDecay)
	f.Prob("InjectRate", c.InjectRate)
	f.NonNegativeInt("InitFactor", c.InitFactor)
	f.NonNegativeInt("Workers", c.Workers)
	// The laser feeds two divisions: a zero MaxRange turns the uniform
	// mixture floor into +Inf, and a zero NumBeams allocates an empty scan.
	f.PositiveInt("Laser.NumBeams", c.Laser.NumBeams)
	f.Positive("Laser.MaxRange", c.Laser.MaxRange)
	f.NonNegative("TrackingSpread", c.TrackingSpread)
	if c.Start != nil {
		f.Finite("Start.X", c.Start.X)
		f.Finite("Start.Y", c.Start.Y)
		f.Finite("Start.Theta", c.Start.Theta)
	}
	return f.Err()
}

// DefaultConfig returns the "typical, realistic configuration" used in the
// paper-style evaluation: an indoor building map, 2000 particles, global
// initialization.
func DefaultConfig() Config {
	return Config{
		Region:      0,
		Particles:   2000,
		Steps:       100,
		Laser:       sensor.DefaultLaser(),
		Odom:        sensor.DefaultOdometryModel(),
		StepLen:     0.2,
		ModelSigma:  0.4,
		ZHit:        0.9,
		ZRand:       0.1,
		AnnealFrom:  16,
		AnnealDecay: 0.85,
		InitFactor:  25,
		InjectRate:  0.005,
		Seed:        1,
	}
}

// DefaultMap builds the synthetic indoor building (Wean Hall substitute)
// used when Config.Map is nil.
func DefaultMap(seed int64) *grid.Grid2D {
	g := maps.IndoorMap(192, 96, seed)
	g.Resolution = 0.25 // 48 m x 24 m floor
	return g
}

// Result reports the outcome of a localization run.
type Result struct {
	// Estimate is the filter's mode estimate after the final update.
	Estimate geom.Pose2
	// Truth is the robot's true final pose.
	Truth geom.Pose2
	// PositionError is the Euclidean distance between estimate and truth.
	PositionError float64
	// HeadingError is the absolute heading difference, radians.
	HeadingError float64
	// Raycasts counts individual ray-cast operations performed.
	Raycasts int64
	// CellsVisited counts occupancy cells touched by ray casting (the
	// spatial-locality work unit the paper highlights).
	CellsVisited int64
	// Resamples counts resampling events (ESS-triggered).
	Resamples int
	// EffectiveSampleSize is the final-step ESS, a filter health measure.
	EffectiveSampleSize float64
}

type particle struct {
	pose geom.Pose2
	logw float64
}

// wshard is one worker's measurement-update contribution.
type wshard struct {
	raycasts, cells int64
}

// state carries the particle population and every buffer the filter step
// reuses. The particle slices are double-buffered across resampling steps
// and the scan/weight buffers are caller-owned, so a steady-state step
// performs no heap allocation (the property BenchmarkPFLStep pins and
// scripts/ci.sh gates). See DESIGN.md "Scratch-buffer ownership" for the
// aliasing rules.
type state struct {
	cfg   Config
	g     *grid.Grid2D
	r     *rng.RNG
	truth geom.Pose2
	// parts is the live population; spare is the inactive half of the
	// resampling double buffer (cap >= cfg.Particles). lowVarianceResample
	// writes into spare, then the two swap.
	parts, spare []particle
	weights      []float64
	scan         []float64
	distField    []float64
	shards       []wshard

	sigma2, zHit, randFloor float64
	temper, decay           float64

	res *Result
}

// newState validates cfg, resolves defaults, and draws the initial particle
// population (global uniform or tracking prior).
func newState(cfg Config, res *Result) (*state, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g := cfg.Map
	if g == nil {
		g = DefaultMap(cfg.Seed)
	}
	r := rng.New(cfg.Seed)

	// Ground-truth robot starting pose: explicit, or the center of the
	// requested building region.
	var truth geom.Pose2
	if cfg.Start != nil {
		truth = *cfg.Start
		if g.OccupiedWorld(truth.X, truth.Y) {
			return nil, errors.New("pfl: start pose is inside an obstacle")
		}
	} else {
		sx, sy := maps.IndoorRegion(g, cfg.Region)
		wx, wy := g.CellToWorld(sx, sy)
		truth = geom.Pose2{X: wx, Y: wy, Theta: 0}
	}

	// Sensor-model parameters with defaults.
	sigma := cfg.ModelSigma
	if sigma <= 0 {
		sigma = 0.4
	}
	zHit, zRand := cfg.ZHit, cfg.ZRand
	if zHit <= 0 {
		zHit = 0.9
	}
	if zRand <= 0 {
		zRand = 0.1
	}
	temper := cfg.AnnealFrom
	if temper < 1 {
		temper = 1
	}
	decay := cfg.AnnealDecay
	if decay <= 0 || decay >= 1 {
		decay = 0.85
	}

	// Initial population.
	var parts []particle
	if cfg.TrackingPrior != nil {
		spread := cfg.TrackingSpread
		if spread <= 0 {
			spread = 1.0
		}
		parts = make([]particle, cfg.Particles)
		for i := range parts {
			parts[i] = particle{pose: samplePriorPose(r, g, *cfg.TrackingPrior, spread)}
		}
	} else {
		initFactor := cfg.InitFactor
		if initFactor < 1 {
			initFactor = 1
		}
		parts = make([]particle, cfg.Particles*initFactor)
		for i := range parts {
			parts[i] = particle{pose: sampleFreePose(r, g)}
		}
	}
	s := &state{
		cfg:       cfg,
		g:         g,
		r:         r,
		truth:     truth,
		parts:     parts,
		spare:     make([]particle, cfg.Particles),
		weights:   make([]float64, len(parts)),
		scan:      make([]float64, cfg.Laser.NumBeams),
		sigma2:    sigma * sigma,
		zHit:      zHit,
		randFloor: zRand / cfg.Laser.MaxRange,
		temper:    temper,
		decay:     decay,
		res:       res,
	}
	if cfg.Workers > 0 {
		s.shards = make([]wshard, cfg.Workers)
	}
	return s, nil
}

// weigh ray-casts every beam for every particle in parts and accumulates the
// annealed log-likelihood. Ray-casting here is the paper's notion —
// traversing the map per beam and matching the traverse distance with the
// sensed data — and dominates execution. It is deterministic, so the
// parallel path (Workers > 0) produces bit-identical results for every
// worker count. weigh only reads shared state (scan, map, config), so
// shards may run it concurrently on disjoint sub-slices.
func (s *state) weigh(parts []particle, prof *profile.Profile) (raycasts, cells int64) {
	cfg, g, scan := &s.cfg, s.g, s.scan
	for i := range parts {
		p := &parts[i]
		if g.OccupiedWorld(p.pose.X, p.pose.Y) {
			p.logw = math.Inf(-1)
			continue
		}
		logw := 0.0
		if cfg.LikelihoodField {
			// Ablation: score measured endpoints against the
			// distance field — no map traversal at all.
			prof.Begin("weight")
			for b := 0; b < cfg.Laser.NumBeams; b++ {
				if scan[b] >= cfg.Laser.MaxRange-1e-9 {
					continue // max-range readings carry no endpoint
				}
				theta := p.pose.Theta + cfg.Laser.BeamAngle(b)
				exn, eyn := p.pose.X+scan[b]*math.Cos(theta), p.pose.Y+scan[b]*math.Sin(theta)
				cx, cy := g.WorldToCell(exn, eyn)
				d := cfg.Laser.MaxRange
				if g.InBounds(cx, cy) {
					d = s.distField[cy*g.W+cx] * g.Resolution
				}
				logw += math.Log(s.zHit*math.Exp(-d*d/(2*s.sigma2)) + s.randFloor)
			}
			p.logw += logw / s.temper
			prof.End()
			continue
		}
		prof.Begin("raycast")
		for b := 0; b < cfg.Laser.NumBeams; b++ {
			theta := p.pose.Theta + cfg.Laser.BeamAngle(b)
			expected, n := g.RaycastCells(p.pose.X, p.pose.Y, theta, cfg.Laser.MaxRange)
			raycasts++
			cells += int64(n)
			d := scan[b] - expected
			logw += math.Log(s.zHit*math.Exp(-d*d/(2*s.sigma2)) + s.randFloor)
		}
		prof.End()
		prof.Begin("weight")
		p.logw += logw / s.temper
		prof.End()
	}
	return raycasts, cells
}

// step advances the simulation and the filter by one motion/measurement
// cycle. The phase breakdown matches the paper: "motion", "raycast",
// "weight", "resample".
func (s *state) step(prof *profile.Profile) {
	cfg, g, r := &s.cfg, s.g, s.r
	// -- Simulate the world (outside any kernel phase): move the robot
	// and take a scan. The commanded motion turns away from obstacles.
	odo := commandMotion(g, s.truth, cfg.StepLen)
	s.truth = odo.Apply(s.truth)
	cfg.Laser.ScanInto(s.scan, r, g, s.truth)
	for i, d := range s.scan {
		if math.IsNaN(d) || math.IsInf(d, 0) {
			// A real driver discards unparseable returns; score them as
			// max-range misses so corrupted beams (fault injection)
			// cannot poison the particle weights with NaN.
			s.scan[i] = cfg.Laser.MaxRange
		}
	}

	// -- Motion update: sample the odometry model per particle.
	prof.Begin("motion")
	if cfg.Workers > 0 {
		// Deterministic parallel motion: one base value is drawn serially
		// from the main RNG, and particle i samples from the sub-stream
		// seeded by base+i. The population after the update is a pure
		// function of (base, i) — independent of the worker count and of
		// goroutine scheduling — so any Workers >= 1 is bit-identical.
		tickBase := int64(r.Uint64())
		workers := cfg.Workers
		if workers > len(s.parts) {
			workers = len(s.parts)
		}
		chunk := (len(s.parts) + workers - 1) / workers
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			lo := w * chunk
			hi := lo + chunk
			if lo >= len(s.parts) {
				break
			}
			if hi > len(s.parts) {
				hi = len(s.parts)
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				var pr rng.RNG // stack-allocated: the fan-out stays alloc-light
				for i := lo; i < hi; i++ {
					pr.Seed(tickBase + int64(i))
					noisy := cfg.Odom.Sample(&pr, odo)
					s.parts[i].pose = noisy.Apply(s.parts[i].pose)
				}
			}(lo, hi)
		}
		wg.Wait()
	} else {
		for i := range s.parts {
			noisy := cfg.Odom.Sample(r, odo)
			s.parts[i].pose = noisy.Apply(s.parts[i].pose)
		}
	}
	prof.End()

	// -- Measurement update.
	if cfg.Workers > 0 {
		// Wall time of the whole fan-out is attributed to "raycast" on
		// the main profile (per-worker phase times would sum past the
		// ROI); workers run with profiling off.
		workers := cfg.Workers
		var wg sync.WaitGroup
		chunk := (len(s.parts) + workers - 1) / workers
		// Zero every shard before the fan-out: after the over-provisioned
		// initial population shrinks at the first resample, high-indexed
		// workers have no slice to weigh and never overwrite their shard,
		// so a stale previous-tick shard would be re-accumulated into the
		// counters every remaining tick.
		for i := range s.shards {
			s.shards[i] = wshard{}
		}
		prof.Begin("raycast")
		for w := 0; w < workers; w++ {
			lo := w * chunk
			hi := lo + chunk
			if lo >= len(s.parts) {
				break
			}
			if hi > len(s.parts) {
				hi = len(s.parts)
			}
			wg.Add(1)
			go func(w, lo, hi int) {
				defer wg.Done()
				rc, cl := s.weigh(s.parts[lo:hi], profile.Disabled())
				s.shards[w] = wshard{raycasts: rc, cells: cl}
			}(w, lo, hi)
		}
		wg.Wait()
		prof.End()
		for _, sh := range s.shards {
			s.res.Raycasts += sh.raycasts
			s.res.CellsVisited += sh.cells
		}
	} else {
		rc, cl := s.weigh(s.parts, prof)
		s.res.Raycasts += rc
		s.res.CellsVisited += cl
	}

	// -- Normalize and resample when the effective sample size drops
	// (or the over-provisioned initial population must shrink).
	prof.Begin("weight")
	ess, ok := normalize(s.parts, s.weights)
	s.res.EffectiveSampleSize = ess
	prof.End()

	prof.Begin("resample")
	if !ok {
		// Degenerate weights: re-seed uniformly; the filter recovers
		// on later updates.
		for i := range s.parts {
			s.parts[i] = particle{pose: sampleFreePose(r, g)}
		}
	} else if ess < float64(cfg.Particles)/2 || len(s.parts) > cfg.Particles {
		// Resample into the spare half of the double buffer, then swap —
		// no per-resample allocation.
		next := s.spare[:cfg.Particles]
		lowVarianceResample(r, s.parts, s.weights[:len(s.parts)], next)
		// Augmented MCL: a few fresh uniform samples enable recovery.
		for i := range next {
			if r.Float64() < cfg.InjectRate {
				next[i] = particle{pose: sampleFreePose(r, g)}
			}
		}
		s.parts, s.spare = next, s.parts
		s.res.Resamples++
	}
	prof.End()

	// Anneal the likelihood temperature toward 1.
	s.temper = 1 + (s.temper-1)*s.decay
}

// Run executes the kernel. The profile (may be nil) receives the ROI and the
// phase breakdown: "raycast", "motion", "weight", "resample". A cancelled
// ctx aborts between filter steps, returning ctx.Err().
func Run(ctx context.Context, cfg Config, prof *profile.Profile) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	res := Result{}
	s, err := newState(cfg, &res)
	if err != nil {
		return Result{}, err
	}

	prof.BeginROI()
	// The likelihood-field ablation precomputes the obstacle distance
	// field once (inside the ROI: it replaces per-step ray casting).
	if cfg.LikelihoodField {
		prof.Begin("distfield")
		s.distField = s.g.DistanceTransform()
		prof.End()
	}
	for step := 0; step < cfg.Steps; step++ {
		if err := ctx.Err(); err != nil {
			prof.EndROI()
			return res, err
		}
		s.step(prof)
		prof.StepDone()
	}
	prof.EndROI()

	normalize(s.parts, s.weights)
	res.Estimate = modeEstimate(s.parts, s.weights)
	res.Truth = s.truth
	res.PositionError = math.Hypot(res.Estimate.X-s.truth.X, res.Estimate.Y-s.truth.Y)
	res.HeadingError = math.Abs(geom.AngleDiff(res.Estimate.Theta, s.truth.Theta))
	return res, nil
}

// normalize converts cumulative log-weights into normalized linear weights
// (into the weights buffer) and returns the effective sample size. ok is
// false when every particle has zero likelihood.
func normalize(parts []particle, weights []float64) (ess float64, ok bool) {
	maxLW := math.Inf(-1)
	for i := range parts {
		if parts[i].logw > maxLW {
			maxLW = parts[i].logw
		}
	}
	if math.IsInf(maxLW, -1) {
		return 0, false
	}
	var sum float64
	for i := range parts {
		w := math.Exp(parts[i].logw - maxLW)
		weights[i] = w
		sum += w
	}
	if sum <= 0 {
		return 0, false
	}
	var sum2 float64
	for i := range parts {
		weights[i] /= sum
		sum2 += weights[i] * weights[i]
	}
	return 1 / sum2, true
}

// modeEstimate returns the weighted mean of the particles within 2 m of the
// highest-weight particle (a single-cluster mode estimator; the posterior
// can be multi-modal in aliased buildings, where a global mean is
// meaningless).
func modeEstimate(parts []particle, weights []float64) geom.Pose2 {
	best := 0
	for i := range parts {
		if weights[i] > weights[best] {
			best = i
		}
	}
	center := parts[best].pose
	const radius = 2.0
	var wsum, ex, ey, sc, ss float64
	for i, p := range parts {
		dx := p.pose.X - center.X
		dy := p.pose.Y - center.Y
		if dx*dx+dy*dy > radius*radius {
			continue
		}
		w := weights[i]
		wsum += w
		ex += w * p.pose.X
		ey += w * p.pose.Y
		sc += w * math.Cos(p.pose.Theta)
		ss += w * math.Sin(p.pose.Theta)
	}
	if wsum == 0 {
		return center
	}
	return geom.Pose2{X: ex / wsum, Y: ey / wsum, Theta: math.Atan2(ss/wsum, sc/wsum)}
}

// sampleAttempts bounds rejection sampling of free poses.
const sampleAttempts = 100000

func sampleFreePose(r *rng.RNG, g *grid.Grid2D) geom.Pose2 {
	w := float64(g.W) * g.Resolution
	h := float64(g.H) * g.Resolution
	for i := 0; i < sampleAttempts; i++ {
		x := r.Uniform(0, w)
		y := r.Uniform(0, h)
		if !g.OccupiedWorld(x, y) {
			return geom.Pose2{X: x, Y: y, Theta: r.Uniform(-math.Pi, math.Pi)}
		}
	}
	panic("pfl: could not sample a free pose; map has no free space")
}

func samplePriorPose(r *rng.RNG, g *grid.Grid2D, prior geom.Pose2, spread float64) geom.Pose2 {
	for i := 0; i < sampleAttempts; i++ {
		p := geom.Pose2{
			X:     prior.X + r.Normal(0, spread),
			Y:     prior.Y + r.Normal(0, spread),
			Theta: geom.NormalizeAngle(prior.Theta + r.Normal(0, spread/2)),
		}
		if !g.OccupiedWorld(p.X, p.Y) {
			return p
		}
	}
	return prior
}

// commandMotion produces the robot's commanded odometry for one step:
// forward motion, turning when the path ahead is blocked.
func commandMotion(g *grid.Grid2D, pose geom.Pose2, stepLen float64) sensor.Odometry {
	ahead := g.Raycast(pose.X, pose.Y, pose.Theta, 3*stepLen)
	if ahead < 2*stepLen {
		// Blocked: rotate in place toward the more open side.
		left := g.Raycast(pose.X, pose.Y, pose.Theta+math.Pi/2, 5*stepLen)
		right := g.Raycast(pose.X, pose.Y, pose.Theta-math.Pi/2, 5*stepLen)
		turn := math.Pi / 6
		if right > left {
			turn = -turn
		}
		return sensor.Odometry{DeltaRot1: turn}
	}
	return sensor.Odometry{DeltaTrans: stepLen}
}

// lowVarianceResample draws len(dst) particles from src (with normalized
// weights ws) using the standard low-variance (systematic) resampler.
// Resampled particles restart weight accumulation from zero log-weight.
func lowVarianceResample(r *rng.RNG, src []particle, ws []float64, dst []particle) {
	m := len(dst)
	step := 1 / float64(m)
	u := r.Uniform(0, step)
	c := ws[0]
	i := 0
	for k := 0; k < m; k++ {
		for u > c && i < len(src)-1 {
			i++
			c += ws[i]
		}
		dst[k] = particle{pose: src[i].pose}
		u += step
	}
}
