package pfl

import (
	"context"
	"testing"

	"repro/internal/geom"
	"repro/internal/profile"
)

// trackingConfig returns a fast, deterministic tracking-mode setup: the
// filter starts from a coarse prior near the true start (region 0 of the
// default map) and must lock on.
func trackingConfig() Config {
	cfg := DefaultConfig()
	cfg.Particles = 400
	cfg.Steps = 40
	prior := geom.Pose2{X: 5.0, Y: 12.1, Theta: 0}
	cfg.TrackingPrior = &prior
	cfg.TrackingSpread = 1.5
	return cfg
}

func TestTrackingConverges(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		cfg := trackingConfig()
		cfg.Seed = seed
		res, err := Run(context.Background(), cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.PositionError > 1 {
			t.Fatalf("seed %d: position error %.2f m", seed, res.PositionError)
		}
	}
}

func TestGlobalLocalizationConverges(t *testing.T) {
	// Global localization from a uniform prior (the paper's Fig. 2
	// scenario). Convergence is seed-dependent — the building has aliased
	// rooms — so the test pins a seed known to converge; EXPERIMENTS.md
	// reports the measured rate across seeds.
	cfg := DefaultConfig()
	cfg.Seed = 1
	res, err := Run(context.Background(), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.PositionError > 1 {
		t.Fatalf("position error %.2f m — global localization lost", res.PositionError)
	}
	if res.HeadingError > 0.3 {
		t.Fatalf("heading error %.2f rad", res.HeadingError)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	cfg := trackingConfig()
	a, err1 := Run(context.Background(), cfg, nil)
	b, err2 := Run(context.Background(), cfg, nil)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if a.Estimate != b.Estimate || a.Raycasts != b.Raycasts {
		t.Fatal("same seed produced different runs")
	}
}

func TestSeedChangesRun(t *testing.T) {
	cfg := trackingConfig()
	a, _ := Run(context.Background(), cfg, nil)
	cfg.Seed = 2
	b, _ := Run(context.Background(), cfg, nil)
	if a.Estimate == b.Estimate {
		t.Fatal("different seeds produced identical estimates")
	}
}

func TestRaycastDominatesProfile(t *testing.T) {
	cfg := trackingConfig()
	p := profile.New()
	if _, err := Run(context.Background(), cfg, p); err != nil {
		t.Fatal(err)
	}
	rep := p.Snapshot()
	if rep.Dominant() != "raycast" {
		t.Fatalf("dominant phase = %q, want raycast (paper: 67-78%%)", rep.Dominant())
	}
	if f := rep.Fraction("raycast"); f < 0.5 {
		t.Fatalf("raycast fraction = %.2f, want > 0.5", f)
	}
}

func TestAllFiveRegionsRun(t *testing.T) {
	for region := 0; region < 5; region++ {
		cfg := trackingConfig()
		cfg.Region = region
		cfg.TrackingPrior = nil // global; we only check it executes
		cfg.InitFactor = 3
		cfg.Steps = 5
		cfg.Particles = 100
		if _, err := Run(context.Background(), cfg, nil); err != nil {
			t.Fatalf("region %d: %v", region, err)
		}
	}
}

func TestRaycastWorkScalesWithParticles(t *testing.T) {
	cfg := trackingConfig()
	cfg.Steps = 10
	cfg.Particles = 100
	small, _ := Run(context.Background(), cfg, nil)
	cfg.Particles = 400
	big, _ := Run(context.Background(), cfg, nil)
	if big.Raycasts <= small.Raycasts {
		t.Fatal("ray casts did not scale with particle count")
	}
}

func TestConfigValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Particles = 0
	if _, err := Run(context.Background(), cfg, nil); err == nil {
		t.Fatal("zero particles accepted")
	}
	cfg = DefaultConfig()
	cfg.Steps = -1
	if _, err := Run(context.Background(), cfg, nil); err == nil {
		t.Fatal("negative steps accepted")
	}
}

func TestEffectiveSampleSizeSane(t *testing.T) {
	res, err := Run(context.Background(), trackingConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.EffectiveSampleSize < 1 {
		t.Fatalf("ESS = %v", res.EffectiveSampleSize)
	}
	if res.Resamples == 0 {
		t.Fatal("filter never resampled")
	}
}

func TestParallelWorkersBitIdentical(t *testing.T) {
	// The determinism contract for Workers >= 1: the parallel algorithm's
	// results are a pure function of the seed — the worker count only bounds
	// goroutine concurrency. Run the identical config at several counts and
	// require bit-identical estimates and counters.
	base := trackingConfig()
	base.Workers = 1
	a, err := Run(context.Background(), base, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8, 64} {
		cfg := trackingConfig()
		cfg.Workers = workers
		b, err := Run(context.Background(), cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		if a.Estimate != b.Estimate || a.Raycasts != b.Raycasts || a.CellsVisited != b.CellsVisited {
			t.Fatalf("workers=%d diverged from workers=1: %+v vs %+v", workers, b, a)
		}
	}
}

// TestStaleShardRegression is the regression test for the worker-shard
// accounting bug: the parallel weigh fan-out never cleared s.shards, so once
// the over-provisioned initial population shrank at the first resample,
// workers with no particle range left (lo >= len(parts)) kept their
// first-tick shard, and the accumulation loop re-added those stale
// Raycasts/CellsVisited every later tick. With 64 workers and a 50-particle
// steady state only workers 0-49 stay active, so pre-fix the 64-worker run
// inflates its counters relative to the 8-worker run of the very same
// algorithm. This test failed before shards were zeroed per tick.
func TestStaleShardRegression(t *testing.T) {
	run := func(workers int) Result {
		cfg := DefaultConfig()
		cfg.Particles = 50
		cfg.InitFactor = 25 // tick 1 weighs 1250 particles, later ticks 50
		cfg.Steps = 4
		cfg.Workers = workers
		res, err := Run(context.Background(), cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	few, many := run(8), run(64)
	if few.Raycasts != many.Raycasts || few.CellsVisited != many.CellsVisited {
		t.Fatalf("stale shards re-accumulated: workers=64 counted %d raycasts / %d cells, workers=8 counted %d / %d",
			many.Raycasts, many.CellsVisited, few.Raycasts, few.CellsVisited)
	}
	if few.Estimate != many.Estimate {
		t.Fatalf("worker count changed the estimate: %+v vs %+v", many.Estimate, few.Estimate)
	}
}

func TestSensorDropoutTolerated(t *testing.T) {
	// Failure injection: 20% of beams read max range. The filter must
	// still track (the mixture model's uniform floor absorbs outliers).
	cfg := trackingConfig()
	cfg.Laser.Dropout = 0.2
	res, err := Run(context.Background(), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.PositionError > 2 {
		t.Fatalf("position error %.2f m under 20%% beam dropout", res.PositionError)
	}
}

func TestLikelihoodFieldAblation(t *testing.T) {
	cfg := trackingConfig()
	cfg.LikelihoodField = true
	p := profile.New()
	res, err := Run(context.Background(), cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	// Still localizes...
	if res.PositionError > 1.5 {
		t.Fatalf("likelihood-field tracking error %.2f m", res.PositionError)
	}
	// ...but the ray-casting bottleneck is gone.
	if res.Raycasts != 0 {
		t.Fatalf("likelihood field still cast %d rays", res.Raycasts)
	}
	rep := p.Snapshot()
	if rep.Fraction("raycast") > 0.01 {
		t.Fatalf("raycast still %.2f of ROI", rep.Fraction("raycast"))
	}
	if rep.Fraction("weight") <= 0 {
		t.Fatal("weight phase missing")
	}
}

func TestCountersPopulated(t *testing.T) {
	res, err := Run(context.Background(), trackingConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Raycasts == 0 || res.CellsVisited <= res.Raycasts {
		t.Fatalf("raycasts=%d cells=%d", res.Raycasts, res.CellsVisited)
	}
}
