// Partitioned parallel tree growth for Run and RunStar, after BoxPlanner's
// KD-partitioned parallel RRT (SNIPPETS.md Snippet 2): the first joint's
// range is split into growPartitions fixed slabs, each slab grows its own
// tree concurrently on its own seeded RNG sub-stream, and a serial merge
// bridges the partition trees into one before the goal connection.
//
// Determinism contract: the partition count, the per-partition seeds, and
// the merge order are all fixed — Config.Workers only bounds how many
// partitions grow at the same time. Every Workers >= 1 therefore produces
// bit-identical results; Workers == 0 keeps the legacy serial algorithm
// (and the goldens recorded against it).
package rrt

import (
	"context"
	"errors"
	"math"
	"sort"
	"sync"

	"repro/internal/arm"
	"repro/internal/geom"
	"repro/internal/kdtree"
	"repro/internal/profile"
	"repro/internal/rng"
)

const (
	// growPartitions is the fixed number of dim-0 slabs. It is deliberately
	// independent of Config.Workers: partitioning defines the algorithm,
	// workers only schedule it.
	growPartitions = 4
	// rootAttempts bounds the rejection sampling of a collision-free root
	// inside a slab; a slab that is entirely blocked simply grows nothing.
	rootAttempts = 2000
	// bridgeCandidates is how many nearest cross-tree pairs a merge pass
	// edge-checks before giving up on a partition for the pass.
	bridgeCandidates = 8
)

// slabOf maps a dim-0 joint value to its partition index.
func slabOf(v float64) int {
	k := int((v + math.Pi) / (2 * math.Pi / growPartitions))
	if k < 0 {
		k = 0
	}
	if k >= growPartitions {
		k = growPartitions - 1
	}
	return k
}

// partGrower is one slab's growth task: a private planner (own workspace
// clone, own kd-tree, own RNG sub-stream, own counters) plus the slab
// bounds and sample quota.
type partGrower struct {
	p        *planner
	lo, hi   float64
	quota    int
	goalBias bool // only the slab containing the goal samples it directly
	rooted   bool
	merged   bool
}

// newPartPlanner builds a partition-private planner sharing only immutable
// state (arm geometry, obstacle set) with the main one. Counters, scratch,
// kd-tree, and RNG are all private so partitions can grow concurrently.
func newPartPlanner(cfg Config, a *arm.Arm, obstacles *arm.Workspace, seed int64) *planner {
	return &planner{
		cfg: cfg, arm: a,
		ws:      &arm.Workspace{Obstacles: obstacles.Obstacles},
		r:       rng.New(seed),
		prof:    profile.Disabled(),
		tree:    kdtree.New(a.DoF(), nil),
		scratch: make([]geom.Vec2, 0, a.DoF()+1),
		cfgTmp:  make([]float64, a.DoF()),
		res:     &Result{},
	}
}

// sample draws a slab-restricted configuration (goal-biased only in the
// goal slab, mirroring the serial sampler).
func (g *partGrower) sample(dst []float64) {
	p := g.p
	if g.goalBias && p.r.Float64() < p.cfg.Bias {
		copy(dst, p.cfg.Goal)
		return
	}
	dst[0] = p.r.Uniform(g.lo, g.hi)
	for i := 1; i < len(dst); i++ {
		dst[i] = p.r.Uniform(-math.Pi, math.Pi)
	}
}

// rootIn rejection-samples a collision-free root inside the slab.
func (g *partGrower) rootIn() bool {
	p := g.p
	c := make([]float64, p.arm.DoF())
	for i := 0; i < rootAttempts; i++ {
		c[0] = p.r.Uniform(g.lo, g.hi)
		for d := 1; d < len(c); d++ {
			c[d] = p.r.Uniform(-math.Pi, math.Pi)
		}
		if p.collisionFree(c) {
			p.addNode(c, -1, 0)
			return true
		}
	}
	return false
}

// grow runs the slab's sample budget: the plain RRT extend loop, or the
// RRT* choose-parent/rewire loop, entirely within the partition tree.
func (g *partGrower) grow(ctx context.Context, star bool) {
	if !g.rooted {
		if !g.rootIn() {
			return
		}
		g.rooted = true
	}
	p := g.p
	sample := make([]float64, p.arm.DoF())
	newCfg := make([]float64, p.arm.DoF())
	for i := 0; i < g.quota; i++ {
		if ctx.Err() != nil {
			return
		}
		p.res.Samples++
		g.sample(sample)
		ni := p.nearest(sample)
		p.steer(p.nodes[ni].cfg, sample, newCfg)
		if !p.edgeFree(p.nodes[ni].cfg, newCfg) {
			continue
		}
		if !star {
			p.addNode(newCfg, ni, p.nodes[ni].cost+arm.ConfigDist(p.nodes[ni].cfg, newCfg))
			continue
		}
		// RRT*: cheapest parent in the neighborhood, then rewire through
		// the new node — the same operations as the serial RunStar loop,
		// scoped to the partition tree. Goal evaluation waits for the merge.
		neighbors := p.near(newCfg)
		parent := ni
		cost := p.nodes[ni].cost + arm.ConfigDist(p.nodes[ni].cfg, newCfg)
		for _, j := range neighbors {
			if j == ni {
				continue
			}
			c := p.nodes[j].cost + arm.ConfigDist(p.nodes[j].cfg, newCfg)
			if c < cost && p.edgeFree(p.nodes[j].cfg, newCfg) {
				parent, cost = j, c
			}
		}
		id := p.addNode(newCfg, parent, cost)
		for _, j := range neighbors {
			if j == parent {
				continue
			}
			nj := &p.nodes[j]
			c := cost + arm.ConfigDist(newCfg, nj.cfg)
			if c+1e-12 < nj.cost {
				if !p.edgeFree(newCfg, nj.cfg) {
					continue
				}
				old := nj.parent
				if old >= 0 {
					ch := p.nodes[old].children
					for k, v := range ch {
						if v == j {
							p.nodes[old].children = append(ch[:k], ch[k+1:]...)
							break
						}
					}
				}
				nj.parent = id
				p.nodes[id].children = append(p.nodes[id].children, j)
				delta := c - nj.cost
				nj.cost = c
				p.propagate(j, delta)
				p.res.Rewires++
			}
		}
	}
}

// absorbCounters folds the partition-private counters into the main result
// in partition order, so the totals are independent of scheduling.
func (p *planner) absorbCounters(growers []*partGrower) {
	for _, g := range growers {
		if g.p == p {
			continue
		}
		p.res.Samples += g.p.res.Samples
		p.res.NNQueries += g.p.res.NNQueries
		p.res.Rewires += g.p.res.Rewires
		p.tree.DistCalls += g.p.tree.DistCalls
		p.ws.SegChecks += g.p.ws.SegChecks
	}
}

// bridge tries to splice partition g's tree into the main tree: it finds
// the nearest main-tree node for every partition node (in node order),
// edge-checks the closest candidate pairs nearest-first, and on the first
// collision-free motion re-roots the partition tree at the bridge node and
// inserts it in BFS order. Returns false when no candidate motion is free.
func (p *planner) bridge(g *partGrower) bool {
	type cand struct {
		part, main int
		d          float64
	}
	cands := make([]cand, 0, len(g.p.nodes))
	for i := range g.p.nodes {
		m := p.nearest(g.p.nodes[i].cfg)
		cands = append(cands, cand{i, m, arm.ConfigDist(g.p.nodes[i].cfg, p.nodes[m].cfg)})
	}
	// Stable sort: distance ties resolve by partition node index, keeping
	// the merge deterministic.
	sort.SliceStable(cands, func(a, b int) bool { return cands[a].d < cands[b].d })
	tries := bridgeCandidates
	if tries > len(cands) {
		tries = len(cands)
	}
	for t := 0; t < tries; t++ {
		c := cands[t]
		if !p.edgeFree(p.nodes[c.main].cfg, g.p.nodes[c.part].cfg) {
			continue
		}
		p.splice(g, c.part, c.main, c.d)
		return true
	}
	return false
}

// splice re-roots partition g's tree at node b and inserts every partition
// node into the main tree, b attached under main node m. Costs are
// recomputed from edge lengths along the new rooting during the BFS.
func (p *planner) splice(g *partGrower, b, m int, bridgeDist float64) {
	nodes := g.p.nodes
	// Re-root at b: reverse the parent chain b -> old root, then rebuild
	// the children lists from the new parent pointers.
	prev := -1
	for cur := b; cur != -1; {
		next := nodes[cur].parent
		nodes[cur].parent = prev
		prev, cur = cur, next
	}
	for i := range nodes {
		nodes[i].children = nodes[i].children[:0]
	}
	for i := range nodes {
		if pa := nodes[i].parent; pa >= 0 {
			nodes[pa].children = append(nodes[pa].children, i)
		}
	}
	idmap := make([]int, len(nodes))
	for i := range idmap {
		idmap[i] = -1
	}
	idmap[b] = p.addNode(nodes[b].cfg, m, p.nodes[m].cost+bridgeDist)
	queue := make([]int, 0, len(nodes))
	queue = append(queue, b)
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		mc := idmap[cur]
		for _, ch := range nodes[cur].children {
			idmap[ch] = p.addNode(nodes[ch].cfg, mc, p.nodes[mc].cost+arm.ConfigDist(nodes[cur].cfg, nodes[ch].cfg))
			queue = append(queue, ch)
		}
	}
}

// runParallel is the Workers >= 1 algorithm behind Run (star=false) and
// RunStar (star=true): partitioned concurrent growth, deterministic serial
// merge, then goal connection on the merged tree.
func runParallel(ctx context.Context, cfg Config, prof *profile.Profile, star bool) (Result, error) {
	var res Result
	prof.BeginROI()
	p, err := newPlanner(cfg, prof, &res)
	if err != nil {
		prof.EndROI()
		return res, err
	}
	if star && cfg.Radius <= 0 {
		prof.EndROI()
		return res, errors.New("rrt: RRT* requires a positive Radius")
	}
	cfg = p.cfg // defaults resolved by newPlanner

	// Per-partition seeds come from the root RNG in slab order, then the
	// start partition (the main planner itself) switches to its own
	// sub-stream — every partition's draw sequence is fixed up front.
	seeds := make([]int64, growPartitions)
	for k := range seeds {
		seeds[k] = int64(p.r.Uint64())
	}
	startSlab := slabOf(cfg.Start[0])
	goalSlab := slabOf(cfg.Goal[0])

	growers := make([]*partGrower, growPartitions)
	width := 2 * math.Pi / growPartitions
	for k := range growers {
		g := &partGrower{
			lo:       -math.Pi + float64(k)*width,
			hi:       -math.Pi + float64(k+1)*width,
			quota:    cfg.MaxSamples / growPartitions,
			goalBias: k == goalSlab,
		}
		if k < cfg.MaxSamples%growPartitions {
			g.quota++
		}
		switch {
		case k == startSlab:
			p.r = rng.New(seeds[k])
			g.p = p
			g.rooted = true
			g.merged = true // the main tree is the merge target
		case k == goalSlab:
			// Root the goal slab's tree at the goal itself (newPlanner
			// already verified it is collision-free): once this partition
			// bridges, the merged tree reaches the goal region exactly.
			g.p = newPartPlanner(cfg, p.arm, p.ws, seeds[k])
			g.p.addNode(cfg.Goal, -1, 0)
			g.rooted = true
		default:
			g.p = newPartPlanner(cfg, p.arm, p.ws, seeds[k])
		}
		growers[k] = g
	}

	// Fan the partitions out over at most Workers goroutines. The main
	// planner grows concurrently too, so its profile is swapped out for the
	// duration; the whole fan-out's wall time lands in the "grow" phase.
	workers := cfg.Workers
	if workers > growPartitions {
		workers = growPartitions
	}
	mainProf := p.prof
	p.prof = profile.Disabled()
	prof.Begin("grow")
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for _, g := range growers {
		wg.Add(1)
		go func(g *partGrower) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			g.grow(ctx, star)
		}(g)
	}
	wg.Wait()
	prof.End()
	p.prof = mainProf
	prof.StepDone() // the fan-out is one step; merge and goal connect follow

	p.absorbCounters(growers)
	if err := ctx.Err(); err != nil {
		if !star || !cfg.BestEffort {
			p.collectStats()
			prof.EndROI()
			return res, err
		}
		// RRT* best effort: merge whatever grew and report the best goal
		// connection it holds, degraded.
		res.Degraded = true
	}

	// Serial deterministic merge, in slab order; unbridgeable partitions
	// retry after later ones land (their nodes may provide the stepping
	// stone), until a full pass makes no progress.
	for {
		progress := false
		for _, g := range growers {
			if g.merged || !g.rooted {
				continue
			}
			if p.bridge(g) {
				g.merged = true
				progress = true
			}
		}
		if !progress {
			break
		}
	}
	prof.StepDone()

	// Goal connection on the merged tree: the cheapest goal-tolerant node
	// with a free closing motion (the serial RunStar re-evaluation, scanned
	// in node order), with a greedy straight-line extension as fallback.
	bestGoal := -1
	bestCost := math.Inf(1)
	for i := range p.nodes {
		d := arm.ConfigDist(p.nodes[i].cfg, cfg.Goal)
		if d > cfg.GoalTol {
			continue
		}
		if total := p.nodes[i].cost + d; total < bestCost && p.edgeFree(p.nodes[i].cfg, cfg.Goal) {
			bestGoal, bestCost = i, total
		}
	}
	if bestGoal < 0 && len(p.nodes) > 0 {
		// RRT-Connect-style extend: steer repeatedly from the nearest node
		// straight toward the goal while the motion stays free. Purely
		// deterministic — no sampling — so the contract holds.
		cur := p.nearest(cfg.Goal)
		newCfg := make([]float64, p.arm.DoF())
		maxSteps := int(arm.ConfigDist(p.nodes[cur].cfg, cfg.Goal)/cfg.Epsilon) + 2
		for s := 0; s < maxSteps; s++ {
			p.steer(p.nodes[cur].cfg, cfg.Goal, newCfg)
			if !p.edgeFree(p.nodes[cur].cfg, newCfg) {
				break
			}
			cur = p.addNode(newCfg, cur, p.nodes[cur].cost+arm.ConfigDist(p.nodes[cur].cfg, newCfg))
			if d := arm.ConfigDist(newCfg, cfg.Goal); d <= cfg.GoalTol && p.edgeFree(newCfg, cfg.Goal) {
				bestGoal, bestCost = cur, p.nodes[cur].cost+d
				break
			}
		}
	}
	if bestGoal >= 0 {
		p.finish(bestGoal)
	}
	p.collectStats()
	prof.StepDone()
	prof.EndROI()
	if !res.Found {
		if res.Degraded {
			return res, ctx.Err()
		}
		if star {
			return res, errors.New("rrt: RRT* found no path within sample budget")
		}
		return res, errors.New("rrt: no path within sample budget")
	}
	return res, nil
}
