package rrt

import (
	"context"
	"errors"
	"math"

	"repro/internal/arm"
	"repro/internal/kdtree"
	"repro/internal/profile"
)

// RunConnect executes RRT-Connect (Kuffner & LaValle), the bidirectional
// variant that grows one tree from the start and one from the goal and
// greedily connects them. It is the de-facto standard sampling planner for
// manipulators (the paper's OMPL-style baseline space) and typically finds
// first solutions one to two orders of magnitude faster than plain RRT on
// cluttered arm problems — the suite includes it as the natural extension
// of kernels 08-10.
//
// Harness phases match Run: "sample", "nn", "collision". A cancelled ctx
// aborts between sampling iterations, returning ctx.Err().
func RunConnect(ctx context.Context, cfg Config, prof *profile.Profile) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	var res Result
	prof.BeginROI()
	p, err := newPlanner(cfg, prof, &res)
	if err != nil {
		prof.EndROI()
		return res, err
	}
	dof := p.arm.DoF()

	// Tree A was seeded with the start by newPlanner; tree B grows from
	// the goal with its own storage.
	type btree struct {
		nodes []node
		kd    *kdtree.Tree
	}
	goalTree := &btree{kd: kdtree.New(dof, nil)}
	addB := func(cfgv []float64, parent int, cost float64) int {
		c := append([]float64(nil), cfgv...)
		id := len(goalTree.nodes)
		goalTree.nodes = append(goalTree.nodes, node{cfg: c, parent: parent, cost: cost})
		goalTree.kd.Insert(c, id)
		return id
	}
	addB(p.cfg.Goal, -1, 0)

	sample := make([]float64, dof)
	qNew := make([]float64, dof)
	qStep := make([]float64, dof)

	// extend moves a tree one epsilon toward target; returns the new node
	// id and whether the target itself was reached.
	extendA := func(target []float64) (int, bool) {
		ni := p.nearest(target)
		d := p.steer(p.nodes[ni].cfg, target, qNew)
		if !p.edgeFree(p.nodes[ni].cfg, qNew) {
			return -1, false
		}
		id := p.addNode(qNew, ni, p.nodes[ni].cost+d)
		return id, arm.ConfigDist(qNew, target) < 1e-9
	}
	nearestB := func(q []float64) int {
		p.prof.Begin("nn")
		id, _, _ := goalTree.kd.Nearest(q)
		res.NNQueries++
		p.prof.End()
		return id
	}

	var bridgeA, bridgeB = -1, -1
	for res.Samples = 0; res.Samples < cfg.MaxSamples && bridgeA < 0; res.Samples++ {
		if err := ctx.Err(); err != nil {
			res.TreeNodes = len(p.nodes) + len(goalTree.nodes)
			res.DistCalls = p.tree.DistCalls + goalTree.kd.DistCalls
			res.SegChecks = p.ws.SegChecks
			prof.EndROI()
			return res, err
		}
		p.sample(sample)

		// EXTEND tree A toward the sample.
		aid, _ := extendA(sample)
		if aid < 0 {
			p.prof.StepDone() // one step per sampling iteration
			continue
		}

		// CONNECT tree B toward the new A node: greedy repeated extension.
		target := p.nodes[aid].cfg
		bi := nearestB(target)
		cur := goalTree.nodes[bi].cfg
		curID := bi
		for {
			d := arm.ConfigDist(cur, target)
			if d <= p.cfg.Epsilon {
				copy(qStep, target)
			} else {
				t := p.cfg.Epsilon / d
				for i := range qStep {
					qStep[i] = cur[i] + t*(target[i]-cur[i])
				}
			}
			if !p.edgeFree(cur, qStep) {
				break
			}
			step := arm.ConfigDist(cur, qStep)
			curID = addB(qStep, curID, goalTree.nodes[curID].cost+step)
			cur = goalTree.nodes[curID].cfg
			if arm.ConfigDist(cur, target) < 1e-9 {
				bridgeA, bridgeB = aid, curID
				break
			}
		}
		p.prof.StepDone()
	}

	if bridgeA >= 0 {
		// Path: start-tree root..bridgeA, then goal tree bridgeB..root.
		pathA, costA := p.pathTo(bridgeA)
		var revB [][]float64
		costB := goalTree.nodes[bridgeB].cost
		for i := goalTree.nodes[bridgeB].parent; i != -1; i = goalTree.nodes[i].parent {
			revB = append(revB, goalTree.nodes[i].cfg)
		}
		path := append(pathA, revB...)
		res.Found = true
		res.Path = path
		res.PathCost = costA + costB
	}
	res.TreeNodes = len(p.nodes) + len(goalTree.nodes)
	res.DistCalls = p.tree.DistCalls + goalTree.kd.DistCalls
	res.SegChecks = p.ws.SegChecks
	prof.EndROI()
	if !res.Found {
		return res, errors.New("rrt: RRT-Connect found no path within sample budget")
	}
	return res, nil
}

// pathCostOf returns the joint-space length of a path (exported-free helper
// shared by tests).
func pathCostOf(path [][]float64) float64 {
	var s float64
	for i := 1; i < len(path); i++ {
		s += arm.ConfigDist(path[i-1], path[i])
	}
	if math.IsNaN(s) {
		return math.Inf(1)
	}
	return s
}
