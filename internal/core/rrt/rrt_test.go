package rrt

import (
	"context"
	"testing"

	"repro/internal/arm"
	"repro/internal/geom"
	"repro/internal/profile"
)

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.MaxSamples = 10000
	return cfg
}

func validatePath(t *testing.T, path [][]float64, cfg Config) {
	t.Helper()
	a := cfg.Arm
	if a == nil {
		a = arm.Default5DoF()
	}
	ws := arm.MapC()
	var scratch []geom.Vec2
	tmp := make([]float64, a.DoF())
	if len(path) < 2 {
		t.Fatal("degenerate path")
	}
	start, goal := cfg.Start, cfg.Goal
	if start == nil {
		start = arm.DefaultStart(a.DoF())
	}
	if goal == nil {
		goal = arm.DefaultGoal(a.DoF())
	}
	if arm.ConfigDist(path[0], start) > 1e-9 {
		t.Fatal("path does not start at the start configuration")
	}
	if arm.ConfigDist(path[len(path)-1], goal) > 1e-9 {
		t.Fatal("path does not end at the goal configuration")
	}
	for i := 1; i < len(path); i++ {
		if !ws.EdgeFree(a, path[i-1], path[i], 0.05, scratch, tmp) {
			t.Fatalf("path edge %d collides", i)
		}
	}
}

func TestRRTFindsValidPath(t *testing.T) {
	cfg := smallConfig()
	res, err := Run(context.Background(), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	validatePath(t, res.Path, cfg)
	if res.Samples == 0 || res.TreeNodes < 2 || res.NNQueries == 0 {
		t.Fatalf("workload stats empty: %+v", res)
	}
}

func TestRRTStarFindsValidShorterPath(t *testing.T) {
	cfg := smallConfig()
	base, err := Run(context.Background(), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	star, err := RunStar(context.Background(), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	validatePath(t, star.Path, cfg)
	if star.PathCost >= base.PathCost {
		t.Fatalf("RRT* path (%v) not shorter than RRT (%v)", star.PathCost, base.PathCost)
	}
	if star.Rewires == 0 {
		t.Fatal("RRT* never rewired")
	}
}

func TestRRTPPBetweenRRTAndStar(t *testing.T) {
	cfg := smallConfig()
	base, err1 := Run(context.Background(), cfg, nil)
	pp, err2 := RunPP(context.Background(), cfg, nil)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	validatePath(t, pp.Path, cfg)
	if pp.PathCost > base.PathCost+1e-9 {
		t.Fatalf("post-processing worsened the path: %v > %v", pp.PathCost, base.PathCost)
	}
	if pp.Shortcuts == 0 {
		t.Fatal("post-processing made no shortcuts")
	}
}

func TestCollisionAndNNPhasesPresent(t *testing.T) {
	// Phase presence is deterministic; phase *dominance* is a wall-time
	// property and noisy when the host is loaded (e.g. the parallel -race
	// CI sweep), so allow a few attempts before declaring it violated.
	var dominant string
	for attempt := 0; attempt < 3; attempt++ {
		p := profile.New()
		if _, err := Run(context.Background(), smallConfig(), p); err != nil {
			t.Fatal(err)
		}
		rep := p.Snapshot()
		if rep.Fraction("collision") <= 0 || rep.Fraction("nn") <= 0 {
			t.Fatalf("phases missing: collision=%.2f nn=%.2f",
				rep.Fraction("collision"), rep.Fraction("nn"))
		}
		dominant = rep.Dominant()
		if dominant == "collision" {
			return
		}
	}
	t.Fatalf("dominant = %q, want collision (paper: <= 62%%)", dominant)
}

func TestRRTStarNNWorkGrows(t *testing.T) {
	// Paper §V.9: nearest-neighbor work grows under rewiring (its time
	// share reaches 49%). Time shares are noisy on fast runs, so assert on
	// the deterministic work counters, averaged over seeds: RRT* performs
	// far more distance evaluations per drawn sample than RRT.
	var rrtPer, starPer float64
	for seed := int64(1); seed <= 3; seed++ {
		cfg := smallConfig()
		cfg.Seed = seed
		a, err := Run(context.Background(), cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		b, err := RunStar(context.Background(), cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		rrtPer += float64(a.DistCalls) / float64(a.Samples)
		starPer += float64(b.DistCalls) / float64(b.Samples)
	}
	if starPer <= rrtPer {
		t.Fatalf("NN work per sample: rrt*=%.1f !> rrt=%.1f", starPer/3, rrtPer/3)
	}
}

func TestMapFEasy(t *testing.T) {
	cfg := smallConfig()
	cfg.Workspace = arm.MapF()
	res, err := Run(context.Background(), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	// In the free map the planner should connect almost directly.
	direct := arm.ConfigDist(arm.DefaultStart(5), arm.DefaultGoal(5))
	if res.PathCost > 3*direct {
		t.Fatalf("Map-F path cost %v vs direct %v", res.PathCost, direct)
	}
}

func TestGoalBiasHelps(t *testing.T) {
	// Without goal bias, hitting the goal-tolerance ball in 5-D by chance
	// is essentially impossible; with it, RRT connects quickly. (This is
	// why the original kernel exposes --bias on its CLI.)
	biased := smallConfig()
	biased.Bias = 0.2
	biased.Workspace = arm.MapF()
	weak := smallConfig()
	weak.Bias = 0.005
	weak.Workspace = arm.MapF()
	a, err := Run(context.Background(), biased, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, errWeak := Run(context.Background(), weak, nil)
	if errWeak != nil {
		return // weak bias exhausting the budget also demonstrates the point
	}
	if a.Samples > b.Samples {
		t.Fatalf("strong bias used more samples: %d vs %d", a.Samples, b.Samples)
	}
}

func TestConfigValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxSamples = 0
	if _, err := Run(context.Background(), cfg, nil); err == nil {
		t.Fatal("zero samples accepted")
	}
	cfg = DefaultConfig()
	cfg.Epsilon = 0
	if _, err := Run(context.Background(), cfg, nil); err == nil {
		t.Fatal("zero epsilon accepted")
	}
	cfg = smallConfig()
	cfg.Radius = 0
	if _, err := RunStar(context.Background(), cfg, nil); err == nil {
		t.Fatal("RRT* with zero radius accepted")
	}
}

func TestRRTConnectFindsValidPath(t *testing.T) {
	cfg := smallConfig()
	res, err := RunConnect(context.Background(), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	validatePath(t, res.Path, cfg)
	if res.TreeNodes < 2 {
		t.Fatal("no trees grown")
	}
}

func TestRRTConnectFasterThanRRT(t *testing.T) {
	// RRT-Connect's defining property: far fewer samples to the first
	// solution. Compare total samples over seeds (deterministic metric).
	var rrtSamples, connSamples int
	for seed := int64(1); seed <= 3; seed++ {
		cfg := smallConfig()
		cfg.Seed = seed
		a, err := Run(context.Background(), cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		b, err := RunConnect(context.Background(), cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		rrtSamples += a.Samples
		connSamples += b.Samples
	}
	if connSamples >= rrtSamples {
		t.Fatalf("RRT-Connect used %d samples, RRT %d", connSamples, rrtSamples)
	}
}

func TestRRTConnectPathEndpoints(t *testing.T) {
	cfg := smallConfig()
	res, err := RunConnect(context.Background(), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Path cost must equal the sum of its segment lengths (internal
	// consistency between the two joined trees).
	if got := pathCostOf(res.Path); got > res.PathCost+1e-6 || got < res.PathCost-1e-6 {
		t.Fatalf("declared cost %.4f != recomputed %.4f", res.PathCost, got)
	}
}

func TestCollidingStartRejected(t *testing.T) {
	cfg := smallConfig()
	cfg.Start = make([]float64, 5) // straight +X pose collides in Map-C
	if _, err := Run(context.Background(), cfg, nil); err == nil {
		t.Fatal("colliding start accepted")
	}
}

func TestDeterminism(t *testing.T) {
	a, _ := Run(context.Background(), smallConfig(), nil)
	b, _ := Run(context.Background(), smallConfig(), nil)
	if a.PathCost != b.PathCost || a.Samples != b.Samples {
		t.Fatal("same seed diverged")
	}
}

func TestTinySampleBudgetFails(t *testing.T) {
	cfg := smallConfig()
	cfg.MaxSamples = 5
	if _, err := Run(context.Background(), cfg, nil); err == nil {
		t.Fatal("5-sample RRT claimed success in Map-C")
	}
}
