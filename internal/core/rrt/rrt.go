// Package rrt implements kernels 08.rrt, 09.rrtstar, and 10.rrtpp:
// rapidly-exploring random trees for high-DoF arm planning in dynamic
// environments (paper §V.8-10).
//
//   - Run grows a plain RRT: sample, find the nearest tree node, steer a
//     bounded step toward the sample, collision-check the motion, extend.
//     Collision detection (≤62% of time) and nearest-neighbor search (≤31%)
//     dominate, as the paper measures.
//   - RunStar grows an RRT*: each new node chooses the cheapest parent in
//     its neighborhood and rewires neighbors through itself when that
//     shortens their paths. Rewiring multiplies nearest-neighbor work (the
//     paper sees its share grow to 49%) and makes RRT* several times slower
//     while producing markedly shorter paths.
//   - RunPP post-processes a plain RRT path by randomized shortcutting
//     (triangle inequality), landing between RRT and RRT* in both execution
//     time and path cost.
package rrt

import (
	"context"
	"errors"
	"math"

	"repro/internal/arm"
	"repro/internal/check"
	"repro/internal/geom"
	"repro/internal/kdtree"
	"repro/internal/profile"
	"repro/internal/rng"
)

// Config parameterizes a planning run; it mirrors the original kernel's CLI
// (--bias, --epsilon, --radius, --samples, ...; paper Fig. 20).
type Config struct {
	// Arm is the manipulator; nil uses the paper's 5-DoF default.
	Arm *arm.Arm
	// Workspace selects the obstacle set; nil uses Map-C.
	Workspace *arm.Workspace
	// Start and Goal configurations; nil picks default reach poses.
	Start, Goal []float64
	// Bias is the probability of sampling the goal directly.
	Bias float64
	// Epsilon is the maximum extension step, radians (the CLI's
	// "minimum movement").
	Epsilon float64
	// Radius is the RRT* neighborhood distance, radians.
	Radius float64
	// GoalTol declares success when a node is within this joint-space
	// distance of the goal and the connecting motion is free.
	GoalTol float64
	// MaxSamples bounds the number of random samples drawn.
	MaxSamples int
	// EdgeStep is the collision sampling step along motions, radians.
	EdgeStep float64
	// ShortcutIters is the number of shortcut attempts in RunPP.
	ShortcutIters int
	Seed          int64
	// BestEffort makes cancellation degrade instead of fail for the anytime
	// variants: RunStar returns the best goal connection found so far and
	// RunPP returns the partially shortcut path, both with Result.Degraded
	// set, rather than ctx.Err(). Plain Run has no partial result to offer
	// and always fails on cancellation.
	BestEffort bool
	// Workers enables BoxPlanner-style partitioned parallel growth for Run
	// and RunStar (and RunPP's underlying RRT): the configuration space is
	// split into fixed dim-0 slabs, each grown as an independent tree on its
	// own seeded RNG sub-stream, then spliced into one tree by a
	// deterministic serial bridge/merge. 0 (the default) runs the legacy
	// serial algorithm. Any Workers >= 1 selects the parallel algorithm,
	// whose results depend only on the seed: the partition count is fixed
	// and the worker count only bounds goroutine concurrency, so workers 1
	// and 8 produce bit-identical results. RunConnect ignores Workers. See
	// DESIGN.md "Intra-kernel parallelism".
	Workers int
}

// Validate reports every dimension, bound, and finiteness violation in the
// config.
func (c Config) Validate() error {
	f := check.New("rrt")
	f.PositiveInt("MaxSamples", c.MaxSamples)
	f.Positive("Epsilon", c.Epsilon)
	f.Prob("Bias", c.Bias)
	f.NonNegative("Radius", c.Radius)
	f.NonNegative("GoalTol", c.GoalTol)
	f.NonNegative("EdgeStep", c.EdgeStep)
	f.NonNegativeInt("Workers", c.Workers)
	dof := 5 // arm.Default5DoF
	if c.Arm != nil {
		dof = c.Arm.DoF()
	}
	for _, cq := range []struct {
		name string
		q    []float64
	}{{"Start", c.Start}, {"Goal", c.Goal}} {
		name, q := cq.name, cq.q
		if q == nil {
			continue
		}
		if len(q) != dof {
			f.Addf("%s has %d joints, arm has %d", name, len(q), dof)
		}
		for i, v := range q {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				f.Addf("%s[%d] is non-finite (%v)", name, i, v)
			}
		}
	}
	return f.Err()
}

// DefaultConfig returns the paper-style setup for the 5-DoF arm.
func DefaultConfig() Config {
	return Config{
		Bias:          0.08,
		Epsilon:       0.35,
		Radius:        0.9,
		GoalTol:       0.35,
		MaxSamples:    15000,
		EdgeStep:      0.08,
		ShortcutIters: 15,
		Seed:          1,
	}
}

// Result reports the planning outcome and workload statistics.
type Result struct {
	Found bool
	// Path is the configuration-space path, start to goal.
	Path [][]float64
	// PathCost is the joint-space L2 length of the path.
	PathCost float64
	// Samples drawn and TreeNodes grown.
	Samples, TreeNodes int
	// NNQueries counts nearest/radius queries; DistCalls the distance
	// evaluations they performed.
	NNQueries, DistCalls int64
	// SegChecks counts link-versus-obstacle segment tests.
	SegChecks int64
	// Rewires counts RRT* rewiring operations performed.
	Rewires int64
	// Shortcuts counts successful RunPP shortcuts.
	Shortcuts int64
	// Degraded is set when BestEffort turned a cancellation into a
	// best-so-far result (RunStar's best goal connection at cancel time,
	// RunPP's partially shortcut path).
	Degraded bool
}

type node struct {
	cfg      []float64
	parent   int
	cost     float64
	children []int
}

type planner struct {
	cfg     Config
	arm     *arm.Arm
	ws      *arm.Workspace
	r       *rng.RNG
	prof    *profile.Profile
	tree    *kdtree.Tree
	nodes   []node
	scratch []geom.Vec2
	cfgTmp  []float64
	nbrBuf  []int // reused RRT* neighborhood buffer; valid until the next near()
	res     *Result
}

func newPlanner(cfg Config, prof *profile.Profile, res *Result) (*planner, error) {
	a := cfg.Arm
	if a == nil {
		a = arm.Default5DoF()
	}
	ws := cfg.Workspace
	if ws == nil {
		ws = arm.MapC()
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Start == nil {
		cfg.Start = arm.DefaultStart(a.DoF())
	}
	if cfg.Goal == nil {
		cfg.Goal = arm.DefaultGoal(a.DoF())
	}
	if cfg.EdgeStep <= 0 {
		cfg.EdgeStep = 0.08
	}
	p := &planner{
		cfg: cfg, arm: a, ws: ws,
		r:       rng.New(cfg.Seed),
		prof:    prof,
		tree:    kdtree.New(a.DoF(), nil),
		scratch: make([]geom.Vec2, 0, a.DoF()+1),
		cfgTmp:  make([]float64, a.DoF()),
		res:     res,
	}
	if !p.collisionFree(cfg.Start) {
		return nil, errors.New("rrt: start configuration in collision")
	}
	if !p.collisionFree(cfg.Goal) {
		return nil, errors.New("rrt: goal configuration in collision")
	}
	p.addNode(cfg.Start, -1, 0)
	return p, nil
}

func (p *planner) addNode(cfg []float64, parent int, cost float64) int {
	c := append([]float64(nil), cfg...)
	id := len(p.nodes)
	p.nodes = append(p.nodes, node{cfg: c, parent: parent, cost: cost})
	if parent >= 0 {
		p.nodes[parent].children = append(p.nodes[parent].children, id)
	}
	p.tree.Insert(c, id)
	return id
}

func (p *planner) collisionFree(cfg []float64) bool {
	p.prof.Begin("collision")
	ok := p.ws.CollisionFree(p.arm, cfg, p.scratch)
	p.prof.End()
	return ok
}

func (p *planner) edgeFree(a, b []float64) bool {
	p.prof.Begin("collision")
	ok := p.ws.EdgeFree(p.arm, a, b, p.cfg.EdgeStep, p.scratch, p.cfgTmp)
	p.prof.End()
	return ok
}

// sample draws a goal-biased uniform random configuration into dst.
func (p *planner) sample(dst []float64) {
	p.prof.Begin("sample")
	if p.r.Float64() < p.cfg.Bias {
		copy(dst, p.cfg.Goal)
	} else {
		for i := range dst {
			dst[i] = p.r.Uniform(-math.Pi, math.Pi)
		}
	}
	p.prof.End()
}

// nearest returns the tree node closest to q.
func (p *planner) nearest(q []float64) int {
	p.prof.Begin("nn")
	id, _, _ := p.tree.Nearest(q)
	p.res.NNQueries++
	p.prof.End()
	return id
}

// near returns the tree nodes within the RRT* neighborhood of q. The
// returned slice aliases a planner-owned buffer and is only valid until the
// next call.
func (p *planner) near(q []float64) []int {
	p.prof.Begin("nn")
	p.nbrBuf = p.tree.RadiusAppend(q, p.cfg.Radius*p.cfg.Radius, p.nbrBuf[:0])
	p.res.NNQueries++
	p.prof.End()
	return p.nbrBuf
}

// steer moves from the tree node toward the sample by at most Epsilon,
// writing the result into dst. It returns the motion length.
func (p *planner) steer(from, sample, dst []float64) float64 {
	d := arm.ConfigDist(from, sample)
	if d <= p.cfg.Epsilon {
		copy(dst, sample)
		return d
	}
	t := p.cfg.Epsilon / d
	for i := range dst {
		dst[i] = from[i] + t*(sample[i]-from[i])
	}
	return p.cfg.Epsilon
}

// pathTo extracts the configuration path from the root to node id.
func (p *planner) pathTo(id int) ([][]float64, float64) {
	var rev [][]float64
	for i := id; i != -1; i = p.nodes[i].parent {
		rev = append(rev, p.nodes[i].cfg)
	}
	out := make([][]float64, len(rev))
	for i := range rev {
		out[i] = rev[len(rev)-1-i]
	}
	return out, p.nodes[id].cost
}

func (p *planner) finish(goalNode int) {
	path, cost := p.pathTo(goalNode)
	// Append the exact goal configuration.
	gc := append([]float64(nil), p.cfg.Goal...)
	cost += arm.ConfigDist(path[len(path)-1], gc)
	path = append(path, gc)
	p.res.Found = true
	p.res.Path = path
	p.res.PathCost = cost
}

func (p *planner) collectStats() {
	p.res.TreeNodes = len(p.nodes)
	p.res.DistCalls = p.tree.DistCalls
	p.res.SegChecks = p.ws.SegChecks
}

// Run executes the plain RRT kernel. Harness phases: "sample", "nn",
// "collision". A cancelled ctx aborts between sampling iterations,
// returning ctx.Err().
func Run(ctx context.Context, cfg Config, prof *profile.Profile) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if cfg.Workers > 0 {
		return runParallel(ctx, cfg, prof, false)
	}
	var res Result
	prof.BeginROI()
	p, err := newPlanner(cfg, prof, &res)
	if err != nil {
		prof.EndROI()
		return res, err
	}
	sample := make([]float64, p.arm.DoF())
	newCfg := make([]float64, p.arm.DoF())
	for res.Samples = 0; res.Samples < cfg.MaxSamples; res.Samples++ {
		if err := ctx.Err(); err != nil {
			p.collectStats()
			prof.EndROI()
			return res, err
		}
		p.sample(sample)
		ni := p.nearest(sample)
		p.steer(p.nodes[ni].cfg, sample, newCfg)
		if !p.edgeFree(p.nodes[ni].cfg, newCfg) {
			prof.StepDone() // one step per sampling iteration
			continue
		}
		id := p.addNode(newCfg, ni, p.nodes[ni].cost+arm.ConfigDist(p.nodes[ni].cfg, newCfg))
		if arm.ConfigDist(newCfg, p.cfg.Goal) <= p.cfg.GoalTol && p.edgeFree(newCfg, p.cfg.Goal) {
			p.finish(id)
			prof.StepDone()
			break
		}
		prof.StepDone()
	}
	p.collectStats()
	prof.EndROI()
	if !res.Found {
		return res, errors.New("rrt: no path within sample budget")
	}
	return res, nil
}

// RunStar executes the RRT* kernel. Harness phases add "rewire" on top of
// RRT's. The search continues through the full sample budget, improving the
// best goal connection as the tree densifies. A cancelled ctx aborts
// between sampling iterations, returning ctx.Err().
func RunStar(ctx context.Context, cfg Config, prof *profile.Profile) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if cfg.Workers > 0 {
		return runParallel(ctx, cfg, prof, true)
	}
	var res Result
	prof.BeginROI()
	p, err := newPlanner(cfg, prof, &res)
	if err != nil {
		prof.EndROI()
		return res, err
	}
	if cfg.Radius <= 0 {
		prof.EndROI()
		return res, errors.New("rrt: RRT* requires a positive Radius")
	}
	sample := make([]float64, p.arm.DoF())
	newCfg := make([]float64, p.arm.DoF())
	bestGoal := -1
	bestCost := math.Inf(1)

	for res.Samples = 0; res.Samples < cfg.MaxSamples; res.Samples++ {
		if err := ctx.Err(); err != nil {
			if cfg.BestEffort {
				// Fall through to the final goal re-evaluation: whatever
				// connection the tree holds now is the degraded answer.
				res.Degraded = true
				break
			}
			p.collectStats()
			prof.EndROI()
			return res, err
		}
		p.sample(sample)
		ni := p.nearest(sample)
		p.steer(p.nodes[ni].cfg, sample, newCfg)
		if !p.edgeFree(p.nodes[ni].cfg, newCfg) {
			prof.StepDone() // one step per sampling iteration
			continue
		}

		// Choose the cheapest collision-free parent in the neighborhood.
		neighbors := p.near(newCfg)
		parent := ni
		cost := p.nodes[ni].cost + arm.ConfigDist(p.nodes[ni].cfg, newCfg)
		for _, j := range neighbors {
			if j == ni {
				continue
			}
			c := p.nodes[j].cost + arm.ConfigDist(p.nodes[j].cfg, newCfg)
			if c < cost && p.edgeFree(p.nodes[j].cfg, newCfg) {
				parent, cost = j, c
			}
		}
		id := p.addNode(newCfg, parent, cost)

		// Rewire: route neighbors through the new node when cheaper.
		prof.Begin("rewire")
		for _, j := range neighbors {
			if j == parent {
				continue
			}
			nj := &p.nodes[j]
			c := cost + arm.ConfigDist(newCfg, nj.cfg)
			if c+1e-12 < nj.cost {
				prof.End() // attribute the edge check to "collision"
				free := p.edgeFree(newCfg, nj.cfg)
				prof.Begin("rewire")
				if !free {
					continue
				}
				// Detach from the old parent, attach under the new node.
				old := nj.parent
				if old >= 0 {
					ch := p.nodes[old].children
					for k, v := range ch {
						if v == j {
							p.nodes[old].children = append(ch[:k], ch[k+1:]...)
							break
						}
					}
				}
				nj.parent = id
				p.nodes[id].children = append(p.nodes[id].children, j)
				delta := c - nj.cost
				nj.cost = c
				p.propagate(j, delta)
				res.Rewires++
			}
		}
		prof.End()

		if arm.ConfigDist(newCfg, p.cfg.Goal) <= p.cfg.GoalTol {
			total := cost + arm.ConfigDist(newCfg, p.cfg.Goal)
			if total < bestCost && p.edgeFree(newCfg, p.cfg.Goal) {
				bestGoal, bestCost = id, total
			}
		}
		prof.StepDone()
	}
	// Rewiring keeps lowering node costs after they connect to the goal,
	// so re-evaluate every goal-tolerant node with its final tree cost.
	for _, j := range p.near(p.cfg.Goal) {
		d := arm.ConfigDist(p.nodes[j].cfg, p.cfg.Goal)
		if d > p.cfg.GoalTol {
			continue
		}
		total := p.nodes[j].cost + d
		if total < bestCost && p.edgeFree(p.nodes[j].cfg, p.cfg.Goal) {
			bestGoal, bestCost = j, total
		}
	}
	if bestGoal >= 0 {
		p.finish(bestGoal)
	}
	p.collectStats()
	prof.EndROI()
	if !res.Found {
		if res.Degraded {
			// Cancelled before any goal connection existed: nothing to
			// degrade to, so this is a genuine failure.
			return res, ctx.Err()
		}
		return res, errors.New("rrt: RRT* found no path within sample budget")
	}
	return res, nil
}

// propagate adds delta to the cost of every descendant of id (rewiring
// shifted the subtree's root cost).
func (p *planner) propagate(id int, delta float64) {
	for _, c := range p.nodes[id].children {
		p.nodes[c].cost += delta
		p.propagate(c, delta)
	}
}

// RunPP executes the RRT-with-post-processing kernel: a plain RRT run
// followed by randomized shortcutting. Harness phases add "shortcut". A
// cancelled ctx aborts either stage, returning ctx.Err().
func RunPP(ctx context.Context, cfg Config, prof *profile.Profile) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	res, err := Run(ctx, cfg, prof)
	if err != nil || !res.Found {
		return res, err
	}
	iters := cfg.ShortcutIters
	if iters <= 0 {
		iters = 15
	}
	r := rng.New(cfg.Seed + 0x5c)
	a := cfg.Arm
	if a == nil {
		a = arm.Default5DoF()
	}
	ws := cfg.Workspace
	if ws == nil {
		ws = arm.MapC()
	}
	step := cfg.EdgeStep
	if step <= 0 {
		step = 0.08
	}
	scratch := make([]geom.Vec2, 0, a.DoF()+1)
	cfgTmp := make([]float64, a.DoF())

	prof.BeginROI()
	prof.Begin("shortcut")
	path := res.Path
	for it := 0; it < iters && len(path) > 2; it++ {
		if err := ctx.Err(); err != nil {
			prof.End()
			prof.EndROI()
			res.Path = path
			res.PathCost = pathCost(path)
			if cfg.BestEffort {
				// The RRT path is valid however few shortcuts ran; return
				// the partially shortcut path as the degraded result.
				res.Degraded = true
				return res, nil
			}
			return res, err
		}
		i := r.Intn(len(path) - 2)
		j := i + 2 + r.Intn(len(path)-i-2)
		// Shortcut i -> j if the direct motion is free (triangle
		// inequality guarantees it is no longer than the detour).
		prof.End() // attribute the edge check to "collision"
		free := ws.EdgeFree(a, path[i], path[j], step, scratch, cfgTmp)
		prof.Begin("shortcut")
		if !free {
			prof.StepDone() // one step per shortcut attempt
			continue
		}
		path = append(path[:i+1], path[j:]...)
		res.Shortcuts++
		prof.StepDone()
	}
	prof.End()
	prof.EndROI()

	res.Path = path
	res.PathCost = pathCost(path)
	// Shortcutting ran on its own workspace instance when cfg.Workspace was
	// nil, so add rather than overwrite the counter.
	if cfg.Workspace == nil {
		res.SegChecks += ws.SegChecks
	} else {
		res.SegChecks = ws.SegChecks
	}
	return res, nil
}

func pathCost(path [][]float64) float64 {
	var s float64
	for i := 1; i < len(path); i++ {
		s += arm.ConfigDist(path[i-1], path[i])
	}
	return s
}
