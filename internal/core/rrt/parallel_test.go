package rrt

import (
	"context"
	"testing"
)

// resultFingerprint collapses a Result into the fields the determinism
// contract covers (everything except the path slice identity).
type resultFingerprint struct {
	found                bool
	cost                 float64
	samples, treeNodes   int
	nnQueries, distCalls int64
	segChecks, rewires   int64
	pathLen              int
}

func fingerprint(r Result) resultFingerprint {
	return resultFingerprint{
		found: r.Found, cost: r.PathCost,
		samples: r.Samples, treeNodes: r.TreeNodes,
		nnQueries: r.NNQueries, distCalls: r.DistCalls,
		segChecks: r.SegChecks, rewires: r.Rewires,
		pathLen: len(r.Path),
	}
}

func parallelTestConfig(seed int64) Config {
	cfg := DefaultConfig()
	cfg.Seed = seed
	cfg.MaxSamples = 10000
	return cfg
}

func TestParallelFindsPath(t *testing.T) {
	for _, seed := range []int64{1, 42} {
		cfg := parallelTestConfig(seed)
		cfg.Workers = 4
		res, err := Run(context.Background(), cfg, nil)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !res.Found || len(res.Path) < 2 {
			t.Fatalf("seed %d: no path (%+v)", seed, fingerprint(res))
		}
	}
}

func TestParallelStarFindsPath(t *testing.T) {
	for _, seed := range []int64{1, 42} {
		cfg := parallelTestConfig(seed)
		cfg.Workers = 4
		res, err := RunStar(context.Background(), cfg, nil)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !res.Found {
			t.Fatalf("seed %d: no path (%+v)", seed, fingerprint(res))
		}
	}
}

func TestParallelWorkersBitIdentical(t *testing.T) {
	// The determinism contract: for Workers >= 1 the result is a pure
	// function of the seed — the worker count only bounds concurrency.
	runs := []struct {
		name string
		fn   func(context.Context, Config) (Result, error)
	}{
		{"rrt", func(ctx context.Context, cfg Config) (Result, error) { return Run(ctx, cfg, nil) }},
		{"rrtstar", func(ctx context.Context, cfg Config) (Result, error) { return RunStar(ctx, cfg, nil) }},
		{"rrtpp", func(ctx context.Context, cfg Config) (Result, error) { return RunPP(ctx, cfg, nil) }},
	}
	for _, rn := range runs {
		cfg := parallelTestConfig(1)
		cfg.Workers = 1
		base, err := rn.fn(context.Background(), cfg)
		if err != nil {
			t.Fatalf("%s workers=1: %v", rn.name, err)
		}
		for _, w := range []int{2, 4, 8} {
			cfg := parallelTestConfig(1)
			cfg.Workers = w
			got, err := rn.fn(context.Background(), cfg)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", rn.name, w, err)
			}
			if fingerprint(got) != fingerprint(base) {
				t.Fatalf("%s workers=%d diverged from workers=1:\n  %+v\nvs\n  %+v",
					rn.name, w, fingerprint(got), fingerprint(base))
			}
			for i := range base.Path {
				for j := range base.Path[i] {
					if got.Path[i][j] != base.Path[i][j] {
						t.Fatalf("%s workers=%d: path[%d][%d] = %v, want %v",
							rn.name, w, i, j, got.Path[i][j], base.Path[i][j])
					}
				}
			}
		}
	}
}

func TestParallelValidatesWorkers(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Workers = -1
	if _, err := Run(context.Background(), cfg, nil); err == nil {
		t.Fatal("negative Workers accepted")
	}
}
