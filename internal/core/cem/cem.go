// Package cem implements kernel 15.cem: cross-entropy-method reinforcement
// learning of a ball-throwing policy (paper §V.15).
//
// The policy is a Gaussian over the throw parameters (two joint angles and
// a release force). Each iteration samples a population, collects rewards
// from the physics environment, sorts the samples by reward to select the
// elite, and refits the Gaussian to the elite — shifting the policy toward
// samples with larger rewards. As in the paper, the environment rollouts
// are external to the kernel's region of interest (the paper used V-REP as
// a separate simulator); within the ROI the sort "for finding the largest
// rewards" is the non-trivial bottleneck the paper measures at around one
// third of execution time.
package cem

import (
	"context"
	"math"
	"sort"

	"repro/internal/check"
	"repro/internal/physics"
	"repro/internal/profile"
	"repro/internal/rng"
)

// Config parameterizes a learning run.
type Config struct {
	// World is the throwing environment; nil uses the default scenario.
	World *physics.World
	// Iterations and SamplesPerIter follow the paper's setup: "We execute
	// CEM for five iterations and draw fifteen samples in every iteration."
	Iterations, SamplesPerIter int
	// Elite is the number of top samples refitting the policy.
	Elite int
	// InitStd scales the initial exploration relative to the bounds box.
	InitStd float64
	// MinStd floors the per-dimension standard deviation.
	MinStd float64
	Seed   int64
	// BestEffort makes a cancelled context degrade instead of fail: once at
	// least one learning iteration has completed, cancellation returns the
	// best policy so far with Result.Degraded set, rather than ctx.Err().
	BestEffort bool
}

// Validate reports every bound and finiteness violation in the config.
func (c Config) Validate() error {
	f := check.New("cem")
	f.PositiveInt("Iterations", c.Iterations)
	f.PositiveInt("SamplesPerIter", c.SamplesPerIter)
	f.Finite("InitStd", c.InitStd)
	f.NonNegative("MinStd", c.MinStd)
	return f.Err()
}

// DefaultConfig returns the paper's configuration: 5 iterations × 15
// samples.
func DefaultConfig() Config {
	return Config{
		Iterations:     5,
		SamplesPerIter: 15,
		Elite:          4,
		InitStd:        0.3,
		MinStd:         1e-3,
		Seed:           1,
	}
}

// Result reports learning progress and the final policy.
type Result struct {
	// Rewards holds every sample's reward in evaluation order (the series
	// behind the paper's Fig. 18).
	Rewards []float64
	// BestPerIter is the best reward seen in each iteration.
	BestPerIter []float64
	// BestReward and BestParams describe the best sample overall.
	BestReward float64
	BestParams physics.ThrowParams
	// Evals counts environment rollouts.
	Evals int64
	// Degraded is set when BestEffort returned early on cancellation with
	// the best-so-far policy instead of completing all iterations.
	Degraded bool
}

// Run executes the kernel. Harness phases: "sample" (drawing the
// population), "sort" (ranking by reward), "update" (refitting the
// Gaussian); environment rollouts are outside the ROI. A cancelled ctx
// aborts between learning iterations, returning ctx.Err().
func Run(ctx context.Context, cfg Config, prof *profile.Profile) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	elite := cfg.Elite
	if elite <= 0 || elite > cfg.SamplesPerIter {
		elite = maxInt(1, cfg.SamplesPerIter/4)
	}
	world := cfg.World
	if world == nil {
		world = physics.DefaultWorld()
	}
	bounds := physics.DefaultBounds()
	r := rng.New(cfg.Seed)

	// Initial policy: centered in the bounds box with broad exploration.
	const dim = 3
	lo, hi := bounds.Lo.Vec(), bounds.Hi.Vec()
	mean := make([]float64, dim)
	std := make([]float64, dim)
	for i := 0; i < dim; i++ {
		mean[i] = (lo[i] + hi[i]) / 2
		std[i] = cfg.InitStd * (hi[i] - lo[i])
	}

	res := Result{BestReward: math.Inf(-1)}
	type scored struct {
		params []float64
		reward float64
	}
	pop := make([]scored, cfg.SamplesPerIter)
	for i := range pop {
		pop[i].params = make([]float64, dim)
	}

	for iter := 0; iter < cfg.Iterations; iter++ {
		if err := ctx.Err(); err != nil {
			if cfg.BestEffort && iter > 0 {
				res.Degraded = true
				break
			}
			return res, err
		}
		// ---- Draw the population (ROI).
		prof.BeginROI()
		prof.Begin("sample")
		for i := range pop {
			for d := 0; d < dim; d++ {
				v := r.Normal(mean[d], std[d])
				if v < lo[d] {
					v = lo[d]
				} else if v > hi[d] {
					v = hi[d]
				}
				pop[i].params[d] = v
			}
		}
		prof.End()
		prof.EndROI()

		// ---- Environment rollouts (outside the ROI, like the paper's
		// V-REP process).
		best := math.Inf(-1)
		for i := range pop {
			p := physics.ParamsFromVec(pop[i].params)
			pop[i].reward = world.Reward(p)
			res.Rewards = append(res.Rewards, pop[i].reward)
			if pop[i].reward > best {
				best = pop[i].reward
			}
			if pop[i].reward > res.BestReward {
				res.BestReward = pop[i].reward
				res.BestParams = p
			}
		}
		res.BestPerIter = append(res.BestPerIter, best)

		// ---- Rank and refit (ROI).
		prof.BeginROI()
		prof.Begin("sort")
		sort.Slice(pop, func(i, j int) bool { return pop[i].reward > pop[j].reward })
		prof.End()

		prof.Begin("update")
		for d := 0; d < dim; d++ {
			var m float64
			for i := 0; i < elite; i++ {
				m += pop[i].params[d]
			}
			m /= float64(elite)
			var v float64
			for i := 0; i < elite; i++ {
				dd := pop[i].params[d] - m
				v += dd * dd
			}
			v /= float64(elite)
			mean[d] = m
			std[d] = math.Max(math.Sqrt(v), cfg.MinStd)
		}
		prof.End()
		prof.EndROI()
		// One step = one full learning iteration, rollouts included (the
		// step clock spans ROI gaps; see profile.StepDone).
		prof.StepDone()
	}

	res.Evals = world.Evals
	return res, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
