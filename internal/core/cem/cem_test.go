package cem

import (
	"context"
	"testing"

	"repro/internal/profile"
)

func TestLearningImprovesReward(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Iterations = 8
	res, err := Run(context.Background(), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.BestPerIter) != 8 {
		t.Fatalf("iterations recorded: %d", len(res.BestPerIter))
	}
	first := res.BestPerIter[0]
	last := res.BestPerIter[len(res.BestPerIter)-1]
	if last < first {
		t.Fatalf("reward degraded: %.3f -> %.3f", first, last)
	}
	// Rewards are negative distances; a trained policy should land within
	// ~40 cm of the goal.
	if res.BestReward < -0.4 {
		t.Fatalf("best reward %.3f — learning failed", res.BestReward)
	}
}

func TestPaperConfiguration(t *testing.T) {
	// 5 iterations x 15 samples (paper §V.15).
	res, err := Run(context.Background(), DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rewards) != 75 {
		t.Fatalf("evaluated %d samples, want 75", len(res.Rewards))
	}
	if res.Evals != 75 {
		t.Fatalf("environment evals %d, want 75", res.Evals)
	}
}

func TestProfileHasSortPhase(t *testing.T) {
	p := profile.New()
	if _, err := Run(context.Background(), DefaultConfig(), p); err != nil {
		t.Fatal(err)
	}
	rep := p.Snapshot()
	for _, phase := range []string{"sample", "sort", "update"} {
		if rep.Fraction(phase) <= 0 {
			t.Fatalf("phase %q missing", phase)
		}
	}
	// The paper measures sort at roughly one third of the kernel; allow a
	// generous band.
	if f := rep.Fraction("sort"); f < 0.05 || f > 0.8 {
		t.Fatalf("sort fraction %.2f outside plausible band", f)
	}
}

func TestDeterminism(t *testing.T) {
	a, _ := Run(context.Background(), DefaultConfig(), nil)
	b, _ := Run(context.Background(), DefaultConfig(), nil)
	if a.BestReward != b.BestReward {
		t.Fatal("same seed diverged")
	}
}

func TestSeedMatters(t *testing.T) {
	cfg := DefaultConfig()
	a, _ := Run(context.Background(), cfg, nil)
	cfg.Seed = 99
	b, _ := Run(context.Background(), cfg, nil)
	if a.Rewards[0] == b.Rewards[0] {
		t.Fatal("different seeds produced identical first samples")
	}
}

func TestEliteDefaulting(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Elite = 0 // auto
	if _, err := Run(context.Background(), cfg, nil); err != nil {
		t.Fatal(err)
	}
	cfg.Elite = 999 // > population, clamps
	if _, err := Run(context.Background(), cfg, nil); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Iterations = 0
	if _, err := Run(context.Background(), cfg, nil); err == nil {
		t.Fatal("zero iterations accepted")
	}
}

func TestPolicyVarianceShrinks(t *testing.T) {
	// Indirect check: with many iterations the population converges, so
	// late-iteration best rewards should be near the overall best.
	cfg := DefaultConfig()
	cfg.Iterations = 10
	res, err := Run(context.Background(), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	last := res.BestPerIter[len(res.BestPerIter)-1]
	if last < res.BestReward-0.5 {
		t.Fatalf("final iteration best %.3f far from overall best %.3f", last, res.BestReward)
	}
}
