package bo

import (
	"context"
	"testing"

	"repro/internal/profile"
)

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Iterations = 15
	cfg.Candidates = 300
	return cfg
}

func TestLearningImprovesReward(t *testing.T) {
	res, err := Run(context.Background(), smallConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// The BO-chosen samples should beat the random seeding.
	seedBest := res.Rewards[0]
	for _, r := range res.Rewards[:5] {
		if r > seedBest {
			seedBest = r
		}
	}
	if res.BestReward < seedBest {
		t.Fatal("BO never improved on random seeding")
	}
	if res.BestReward < -0.5 {
		t.Fatalf("best reward %.3f — learning failed", res.BestReward)
	}
}

func TestPaperIterationCount(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Candidates = 200 // keep the test quick; iteration count is the point
	res, err := Run(context.Background(), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	// 45 BO iterations + 5 seeds (paper Fig. 19 runs 45 learning steps).
	if len(res.Rewards) != 50 {
		t.Fatalf("evaluated %d samples, want 50", len(res.Rewards))
	}
	if res.GPFits != 45 {
		t.Fatalf("GP fits %d, want 45", res.GPFits)
	}
}

func TestComputeHeavierThanCEM(t *testing.T) {
	res, err := Run(context.Background(), smallConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Paper §V.16: bo is computationally far more intensive than cem.
	// CEM's entire run makes 75 environment evals and no model work; BO
	// performs thousands of GP posterior evaluations.
	if res.Predictions < 1000 {
		t.Fatalf("only %d predictions — BO not compute-heavy", res.Predictions)
	}
}

func TestProfilePhases(t *testing.T) {
	p := profile.New()
	if _, err := Run(context.Background(), smallConfig(), p); err != nil {
		t.Fatal(err)
	}
	rep := p.Snapshot()
	for _, phase := range []string{"gp-fit", "acquisition", "sort"} {
		if rep.Fraction(phase) <= 0 {
			t.Fatalf("phase %q missing", phase)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a, _ := Run(context.Background(), smallConfig(), nil)
	b, _ := Run(context.Background(), smallConfig(), nil)
	if a.BestReward != b.BestReward {
		t.Fatal("same seed diverged")
	}
}

func TestConfigValidation(t *testing.T) {
	for _, mutate := range []func(*Config){
		func(c *Config) { c.Iterations = 0 },
		func(c *Config) { c.InitSamples = 0 },
		func(c *Config) { c.Candidates = 0 },
	} {
		cfg := DefaultConfig()
		mutate(&cfg)
		if _, err := Run(context.Background(), cfg, nil); err == nil {
			t.Fatal("invalid config accepted")
		}
	}
}

func TestRewardsAllNonPositive(t *testing.T) {
	res, err := Run(context.Background(), smallConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res.Rewards {
		if r > 0 {
			t.Fatalf("reward[%d] = %v > 0 (reward is -|dist|)", i, r)
		}
	}
}
