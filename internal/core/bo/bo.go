// Package bo implements kernel 16.bo: Bayesian optimization of the
// ball-throwing policy (paper §V.16).
//
// Each of the 45 learning iterations fits a Gaussian process to every
// observation so far, scores a candidate pool with the upper-confidence-
// bound acquisition function, sorts the candidates to pick the most
// promising throw, and evaluates it in the environment. The GP fit and the
// per-candidate posterior predictions make bo far more computationally
// intensive than cem, and the candidate ranking keeps more metadata, so its
// sort phase is several times more expensive — both effects the paper
// reports and the harness reproduces.
package bo

import (
	"context"
	"math"
	"sort"

	"repro/internal/check"
	"repro/internal/gp"
	"repro/internal/physics"
	"repro/internal/profile"
	"repro/internal/rng"
)

// Config parameterizes a learning run.
type Config struct {
	// World is the throwing environment; nil uses the default scenario.
	World *physics.World
	// Iterations is the number of BO steps (paper: 45).
	Iterations int
	// InitSamples seeds the GP with random observations before BO starts.
	InitSamples int
	// Candidates is the size of the random pool scored by the acquisition
	// function each iteration.
	Candidates int
	// Beta is the UCB exploration weight.
	Beta float64
	// LengthScale, SignalVar, NoiseVar are the GP hyperparameters.
	LengthScale, SignalVar, NoiseVar float64
	Seed                             int64
	// BestEffort makes a cancelled context degrade instead of fail: once at
	// least one BO iteration has completed, cancellation returns the best
	// policy so far with Result.Degraded set, rather than ctx.Err().
	BestEffort bool
}

// Validate reports every bound and finiteness violation in the config.
func (c Config) Validate() error {
	f := check.New("bo")
	f.PositiveInt("Iterations", c.Iterations)
	f.PositiveInt("InitSamples", c.InitSamples)
	f.PositiveInt("Candidates", c.Candidates)
	f.Finite("Beta", c.Beta)
	f.Positive("LengthScale", c.LengthScale)
	f.Positive("SignalVar", c.SignalVar)
	f.NonNegative("NoiseVar", c.NoiseVar)
	return f.Err()
}

// DefaultConfig returns the paper's configuration: 45 iterations with a
// GP-UCB learner.
func DefaultConfig() Config {
	return Config{
		Iterations:  45,
		InitSamples: 5,
		Candidates:  2000,
		Beta:        2.0,
		LengthScale: 0.6,
		SignalVar:   1.0,
		NoiseVar:    0.01,
		Seed:        1,
	}
}

// Result reports learning progress and the final policy.
type Result struct {
	// Rewards holds the reward of each evaluated sample in order (the
	// series behind the paper's Fig. 19); the first InitSamples entries are
	// the random seeds.
	Rewards []float64
	// BestReward and BestParams describe the best sample found.
	BestReward float64
	BestParams physics.ThrowParams
	// GPFits counts Gaussian-process fits; Predictions counts posterior
	// evaluations (the compute-intensity measure versus cem).
	GPFits, Predictions int64
	// Evals counts environment rollouts.
	Evals int64
	// Degraded is set when BestEffort returned early on cancellation with
	// the best-so-far policy instead of completing all iterations.
	Degraded bool
}

// Run executes the kernel. Harness phases: "gp-fit" (Cholesky of the kernel
// matrix), "acquisition" (posterior + UCB per candidate), "sort" (ranking
// candidates); environment rollouts are outside the ROI. A cancelled ctx
// aborts between optimization iterations, returning ctx.Err().
func Run(ctx context.Context, cfg Config, prof *profile.Profile) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	world := cfg.World
	if world == nil {
		world = physics.DefaultWorld()
	}
	bounds := physics.DefaultBounds()
	r := rng.New(cfg.Seed)
	lo, hi := bounds.Lo.Vec(), bounds.Hi.Vec()
	const dim = 3

	res := Result{BestReward: math.Inf(-1)}
	var xs [][]float64
	var ys []float64

	evaluate := func(x []float64) {
		p := physics.ParamsFromVec(x)
		reward := world.Reward(p)
		xs = append(xs, append([]float64(nil), x...))
		ys = append(ys, reward)
		res.Rewards = append(res.Rewards, reward)
		if reward > res.BestReward {
			res.BestReward = reward
			res.BestParams = p
		}
	}

	// Random seeding (environment interaction; outside the ROI).
	for i := 0; i < cfg.InitSamples; i++ {
		x := make([]float64, dim)
		for d := 0; d < dim; d++ {
			x[d] = r.Uniform(lo[d], hi[d])
		}
		evaluate(x)
	}

	// normalize maps a parameter vector to [0,1]^dim so one GP length
	// scale fits all dimensions.
	normalize := func(x []float64) []float64 {
		out := make([]float64, dim)
		for d := 0; d < dim; d++ {
			out[d] = (x[d] - lo[d]) / (hi[d] - lo[d])
		}
		return out
	}

	type scored struct {
		x   []float64
		ucb float64
	}
	cands := make([]scored, cfg.Candidates)

	for iter := 0; iter < cfg.Iterations; iter++ {
		if err := ctx.Err(); err != nil {
			if cfg.BestEffort && iter > 0 {
				res.Degraded = true
				break
			}
			return res, err
		}
		prof.BeginROI()

		// ---- Fit the GP on everything observed so far.
		prof.Begin("gp-fit")
		model := gp.New(cfg.LengthScale, cfg.SignalVar, cfg.NoiseVar)
		nx := make([][]float64, len(xs))
		for i, x := range xs {
			nx[i] = normalize(x)
		}
		err := model.Fit(nx, ys)
		prof.End()
		if err != nil {
			prof.EndROI()
			return res, err
		}
		res.GPFits++

		// ---- Score a random candidate pool with UCB.
		prof.Begin("acquisition")
		for i := range cands {
			x := make([]float64, dim)
			for d := 0; d < dim; d++ {
				x[d] = r.Uniform(lo[d], hi[d])
			}
			cands[i] = scored{x: x, ucb: model.UCB(normalize(x), cfg.Beta)}
			res.Predictions++
		}
		prof.End()

		// ---- Rank candidates; the best UCB is the next throw. (The sort
		// keeps full candidate metadata, which is why it outweighs cem's.)
		prof.Begin("sort")
		sort.Slice(cands, func(i, j int) bool { return cands[i].ucb > cands[j].ucb })
		prof.End()

		prof.EndROI()

		// Environment rollout (outside the ROI).
		evaluate(cands[0].x)
		// One step = one full BO iteration, rollout included (the step
		// clock spans ROI gaps; see profile.StepDone).
		prof.StepDone()
	}

	res.Evals = world.Evals
	return res, nil
}
