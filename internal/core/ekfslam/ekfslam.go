// Package ekfslam implements kernel 02.ekfslam: simultaneous localization
// and mapping with an Extended Kalman Filter (paper §V.2).
//
// The robot drives a circuit through an environment with point landmarks,
// observing noisy range and bearing to each visible landmark. The EKF
// maintains a joint Gaussian over the robot pose and all landmark positions;
// each motion prediction and each measurement update is dominated by dense
// matrix multiplications and a matrix inversion — the operations the paper
// measures at more than 85% of execution time and that this implementation
// wraps in the "matrix" harness phase.
package ekfslam

import (
	"context"
	"math"

	"repro/internal/check"
	"repro/internal/geom"
	"repro/internal/mat"
	"repro/internal/profile"
	"repro/internal/rng"
	"repro/internal/sensor"
)

// Config parameterizes a SLAM run.
type Config struct {
	Landmarks []sensor.Landmark // nil builds the default 6-landmark ring (paper's Fig. 3 setup)
	Steps     int
	Dt        float64 // seconds per step
	V         float64 // commanded forward velocity, m/s
	Omega     float64 // commanded angular velocity, rad/s
	Sensor    sensor.RangeBearingSensor
	// MotionNoise are the standard deviations of the executed (true) motion:
	// translational (m per step) and rotational (rad per step).
	MotionNoiseTrans float64
	MotionNoiseRot   float64
	// UnknownAssociation drops the sensor's landmark identities: the filter
	// must associate each observation itself by Mahalanobis gating —
	// matching it to the landmark with the smallest normalized innovation,
	// initializing a new landmark when nothing gates in. This is the
	// realistic SLAM setting; the default (known correspondences) matches
	// the paper's synthetic six-landmark setup.
	UnknownAssociation bool
	// GateAccept and GateNew are the Mahalanobis-distance² thresholds for
	// accepting an association (default: χ²₂ at 95% = 5.99) and for
	// declaring a new landmark (default 25, deliberately above the χ² 99%
	// point — see Run). Observations falling between the two are ambiguous
	// and discarded.
	GateAccept, GateNew float64
	Seed                int64
}

// DefaultConfig returns the paper-style setup: six landmarks, a circular
// drive, Gaussian noise on every range/bearing measurement.
func DefaultConfig() Config {
	return Config{
		Steps: 500,
		Dt:    0.1,
		V:     1.0,
		Omega: 0.15,
		Sensor: sensor.RangeBearingSensor{
			MaxRange:   20,
			SigmaRange: 0.10,
			SigmaBear:  0.01,
		},
		MotionNoiseTrans: 0.005,
		MotionNoiseRot:   0.002,
		Seed:             1,
	}
}

// Validate reports every dimension, bound, and finiteness violation in the
// config.
func (c Config) Validate() error {
	f := check.New("ekfslam")
	f.PositiveInt("Steps", c.Steps)
	f.Positive("Dt", c.Dt)
	f.Finite("V", c.V)
	f.Finite("Omega", c.Omega)
	f.NonNegative("Sensor.MaxRange", c.Sensor.MaxRange)
	f.NonNegative("Sensor.SigmaRange", c.Sensor.SigmaRange)
	f.NonNegative("Sensor.SigmaBear", c.Sensor.SigmaBear)
	f.NonNegative("MotionNoiseTrans", c.MotionNoiseTrans)
	f.NonNegative("MotionNoiseRot", c.MotionNoiseRot)
	f.NonNegative("GateAccept", c.GateAccept)
	f.NonNegative("GateNew", c.GateNew)
	for i, lm := range c.Landmarks {
		if !finite(lm.P.X) || !finite(lm.P.Y) {
			f.Addf("Landmarks[%d] has non-finite position (%v, %v)", i, lm.P.X, lm.P.Y)
		}
	}
	return f.Err()
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// DefaultLandmarks returns six landmarks spread around the robot's circuit,
// mirroring the paper's synthetic setting with six landmarks.
func DefaultLandmarks() []sensor.Landmark {
	// The default circuit is a circle of radius V/Omega ≈ 6.7 m centered at
	// (0, R); landmarks ring that circle.
	return []sensor.Landmark{
		{ID: 0, P: geom.Vec2{X: 10, Y: 0}},
		{ID: 1, P: geom.Vec2{X: 12, Y: 10}},
		{ID: 2, P: geom.Vec2{X: 5, Y: 16}},
		{ID: 3, P: geom.Vec2{X: -6, Y: 14}},
		{ID: 4, P: geom.Vec2{X: -10, Y: 4}},
		{ID: 5, P: geom.Vec2{X: -2, Y: -5}},
	}
}

// Result reports estimation quality and workload statistics.
type Result struct {
	// PoseError is the final Euclidean error of the robot position estimate.
	PoseError float64
	// MeanLandmarkError averages the Euclidean estimation error over
	// landmarks that were observed at least once.
	MeanLandmarkError float64
	// LandmarksSeen counts landmarks initialized in the state.
	LandmarksSeen int
	// Updates counts measurement updates performed.
	Updates int64
	// Discarded counts observations dropped as ambiguous by the
	// data-association gate (unknown-association mode only).
	Discarded int64
	// Rejected counts observations rejected by the finite-value guard
	// (NaN/Inf range or bearing, as fault injection produces). A corrupted
	// measurement must never reach the covariance update: one NaN in the
	// innovation poisons the whole joint state irreversibly.
	Rejected int64
	// EstimatedPath holds the filter's pose estimate at every step (for the
	// examples' Fig. 3-style output).
	EstimatedPath []geom.Pose2
	// TruePath holds the simulated true poses.
	TruePath []geom.Pose2
	// Uncertainty is the trace of the final covariance, an overall
	// confidence measure.
	Uncertainty float64
}

// Run executes the kernel. Harness phases: "matrix" (matrix multiplications
// and the innovation-covariance inversion), "jacobian" (building the sparse
// Jacobians), "sensor" (simulating measurements, outside the estimation
// work).
func Run(ctx context.Context, cfg Config, prof *profile.Profile) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	lms := cfg.Landmarks
	if lms == nil {
		lms = DefaultLandmarks()
	}
	nL := len(lms)
	// With unknown association the filter may transiently create spurious
	// landmarks, so the state reserves extra slots.
	capSlots := nL
	if cfg.UnknownAssociation {
		capSlots = 2 * nL
	}
	dim := 3 + 2*capSlots
	gateAccept := cfg.GateAccept
	if gateAccept <= 0 {
		gateAccept = 5.99 // χ²(2) at 95%
	}
	gateNew := cfg.GateNew
	if gateNew <= 0 {
		// Conservative: a textbook χ²(2)-99% gate (9.21) still spawns
		// duplicate landmarks during the early, high-covariance steps;
		// requiring a much larger surprise before declaring a new landmark
		// recovers the true landmark count on the default scenario.
		gateNew = 25
	}
	r := rng.New(cfg.Seed)

	// State: pose + landmark positions; covariance starts near-certain for
	// the pose and "unknown" (huge variance) for landmarks.
	mu := make([]float64, dim)
	sigma := mat.New(dim, dim)
	const unseenVar = 1e6
	for i := 3; i < dim; i++ {
		sigma.Set(i, i, unseenVar)
	}
	seen := make([]bool, capSlots)
	slots := 0 // initialized landmark slots (unknown-association mode)

	truth := geom.Pose2{}
	qr := cfg.Sensor.SigmaRange * cfg.Sensor.SigmaRange
	qb := cfg.Sensor.SigmaBear * cfg.Sensor.SigmaBear
	if qr == 0 {
		qr = 1e-6
	}
	if qb == 0 {
		qb = 1e-6
	}

	res := Result{}
	prof.BeginROI()
	for step := 0; step < cfg.Steps; step++ {
		if err := ctx.Err(); err != nil {
			prof.EndROI()
			return res, err
		}
		// --- Simulate the world: true motion with execution noise, then a
		// noisy observation batch.
		prof.Begin("sensor")
		v := cfg.V + r.Normal(0, cfg.MotionNoiseTrans/cfg.Dt)
		w := cfg.Omega + r.Normal(0, cfg.MotionNoiseRot/cfg.Dt)
		truth = integrate(truth, v, w, cfg.Dt)
		obs := cfg.Sensor.Observe(r, truth, lms)
		prof.End()

		// --- EKF predict with the commanded control.
		predict(mu, sigma, cfg, prof)

		// --- EKF update per observation: either trusting the sensor's
		// identities, or associating by Mahalanobis gating.
		for _, z := range obs {
			if !finite(z.Range) || !finite(z.Bearing) || z.Range < 0 {
				res.Rejected++
				continue
			}
			if !cfg.UnknownAssociation {
				update(mu, sigma, seen, z.ID, z, qr, qb, prof)
				res.Updates++
				continue
			}
			prof.Begin("associate")
			best, bestD2 := -1, math.Inf(1)
			for j := 0; j < slots; j++ {
				if d2, ok := mahalanobis(mu, sigma, j, z, qr, qb); ok && d2 < bestD2 {
					best, bestD2 = j, d2
				}
			}
			prof.End()
			switch {
			case best >= 0 && bestD2 < gateAccept:
				update(mu, sigma, seen, best, z, qr, qb, prof)
				res.Updates++
			case bestD2 > gateNew && slots < capSlots:
				update(mu, sigma, seen, slots, z, qr, qb, prof)
				slots++
				res.Updates++
			default:
				res.Discarded++ // ambiguous observation
			}
		}

		res.TruePath = append(res.TruePath, truth)
		res.EstimatedPath = append(res.EstimatedPath, geom.Pose2{X: mu[0], Y: mu[1], Theta: mu[2]})
		prof.StepDone()
	}
	prof.EndROI()

	res.PoseError = math.Hypot(mu[0]-truth.X, mu[1]-truth.Y)
	var errSum float64
	var matched int
	if cfg.UnknownAssociation {
		// The filter's landmark indices are its own; score each true
		// landmark against the nearest estimate.
		res.LandmarksSeen = slots
		for _, lm := range lms {
			best := math.Inf(1)
			for j := 0; j < slots; j++ {
				d := math.Hypot(mu[3+2*j]-lm.P.X, mu[3+2*j+1]-lm.P.Y)
				if d < best {
					best = d
				}
			}
			if !math.IsInf(best, 1) {
				errSum += best
				matched++
			}
		}
	} else {
		for i, lm := range lms {
			if !seen[i] {
				continue
			}
			res.LandmarksSeen++
			matched++
			errSum += math.Hypot(mu[3+2*i]-lm.P.X, mu[3+2*i+1]-lm.P.Y)
		}
	}
	if matched > 0 {
		res.MeanLandmarkError = errSum / float64(matched)
	}
	for i := 0; i < dim; i++ {
		res.Uncertainty += sigma.At(i, i)
	}
	return res, nil
}

func integrate(p geom.Pose2, v, w, dt float64) geom.Pose2 {
	if math.Abs(w) < 1e-9 {
		return geom.Pose2{
			X:     p.X + v*dt*math.Cos(p.Theta),
			Y:     p.Y + v*dt*math.Sin(p.Theta),
			Theta: p.Theta,
		}
	}
	return geom.Pose2{
		X:     p.X + v/w*(math.Sin(p.Theta+w*dt)-math.Sin(p.Theta)),
		Y:     p.Y + v/w*(math.Cos(p.Theta)-math.Cos(p.Theta+w*dt)),
		Theta: geom.NormalizeAngle(p.Theta + w*dt),
	}
}

// predict applies the motion model to the mean and propagates the full joint
// covariance: Σ ← G Σ Gᵀ + R, with dense (3+2N)² multiplications.
func predict(mu []float64, sigma *mat.Matrix, cfg Config, prof *profile.Profile) {
	dim := len(mu)
	v, w, dt := cfg.V, cfg.Omega, cfg.Dt

	prof.Begin("jacobian")
	theta := mu[2]
	g := mat.Identity(dim)
	var dx, dy float64
	if math.Abs(w) < 1e-9 {
		dx = v * dt * math.Cos(theta)
		dy = v * dt * math.Sin(theta)
		g.Set(0, 2, -v*dt*math.Sin(theta))
		g.Set(1, 2, v*dt*math.Cos(theta))
	} else {
		dx = v / w * (math.Sin(theta+w*dt) - math.Sin(theta))
		dy = v / w * (math.Cos(theta) - math.Cos(theta+w*dt))
		g.Set(0, 2, v/w*(math.Cos(theta+w*dt)-math.Cos(theta)))
		g.Set(1, 2, v/w*(math.Sin(theta+w*dt)-math.Sin(theta)))
	}
	prof.End()

	mu[0] += dx
	mu[1] += dy
	mu[2] = geom.NormalizeAngle(mu[2] + w*dt)

	prof.Begin("matrix")
	gs := mat.Mul(g, sigma)
	newSigma := mat.Mul(gs, mat.Transpose(g))
	// Process noise enters only the pose block.
	nt := cfg.MotionNoiseTrans * cfg.MotionNoiseTrans
	nr := cfg.MotionNoiseRot * cfg.MotionNoiseRot
	newSigma.Set(0, 0, newSigma.At(0, 0)+nt)
	newSigma.Set(1, 1, newSigma.At(1, 1)+nt)
	newSigma.Set(2, 2, newSigma.At(2, 2)+nr)
	copy(sigma.Data, newSigma.Data)
	prof.End()
}

// mahalanobis returns the squared normalized innovation distance of
// observation z against landmark slot j — the association statistic of
// gated nearest-neighbor data association. ok is false for degenerate
// geometry.
func mahalanobis(mu []float64, sigma *mat.Matrix, j int, z sensor.RangeBearing, qr, qb float64) (float64, bool) {
	li := 3 + 2*j
	dx := mu[li] - mu[0]
	dy := mu[li+1] - mu[1]
	q := dx*dx + dy*dy
	if q < 1e-12 {
		return 0, false
	}
	sq := math.Sqrt(q)
	nuR := z.Range - sq
	nuB := geom.NormalizeAngle(z.Bearing - geom.NormalizeAngle(math.Atan2(dy, dx)-mu[2]))

	// 2×2 innovation covariance from the pose+landmark sub-blocks (the
	// cross terms with other landmarks do not affect this 2×2 within
	// numerical noise for gating purposes, and the full product is built
	// during the actual update).
	dim := len(mu)
	h := mat.New(2, dim)
	h.Set(0, 0, -dx/sq)
	h.Set(0, 1, -dy/sq)
	h.Set(1, 0, dy/q)
	h.Set(1, 1, -dx/q)
	h.Set(1, 2, -1)
	h.Set(0, li, dx/sq)
	h.Set(0, li+1, dy/sq)
	h.Set(1, li, -dy/q)
	h.Set(1, li+1, dx/q)
	s := mat.Mul(mat.Mul(h, sigma), mat.Transpose(h))
	s.Set(0, 0, s.At(0, 0)+qr)
	s.Set(1, 1, s.At(1, 1)+qb)
	sInv, err := mat.Inverse(s)
	if err != nil {
		return 0, false
	}
	nu := []float64{nuR, nuB}
	return mat.QuadForm(sInv, nu), true
}

// update folds one range-bearing observation into landmark slot j.
func update(mu []float64, sigma *mat.Matrix, seen []bool, j int, z sensor.RangeBearing, qr, qb float64, prof *profile.Profile) {
	dim := len(mu)
	li := 3 + 2*j

	if !seen[j] {
		// Initialize the landmark from the observation.
		mu[li] = mu[0] + z.Range*math.Cos(z.Bearing+mu[2])
		mu[li+1] = mu[1] + z.Range*math.Sin(z.Bearing+mu[2])
		seen[j] = true
	}

	prof.Begin("jacobian")
	dx := mu[li] - mu[0]
	dy := mu[li+1] - mu[1]
	q := dx*dx + dy*dy
	if q < 1e-12 {
		prof.End()
		return
	}
	sq := math.Sqrt(q)
	zhatR := sq
	zhatB := geom.NormalizeAngle(math.Atan2(dy, dx) - mu[2])

	// Dense 2×dim measurement Jacobian (sparse in theory; the paper's
	// kernel performs the full-width matrix products, which is exactly what
	// makes matrix ops dominate).
	h := mat.New(2, dim)
	h.Set(0, 0, -dx/sq)
	h.Set(0, 1, -dy/sq)
	h.Set(1, 0, dy/q)
	h.Set(1, 1, -dx/q)
	h.Set(1, 2, -1)
	h.Set(0, li, dx/sq)
	h.Set(0, li+1, dy/sq)
	h.Set(1, li, -dy/q)
	h.Set(1, li+1, dx/q)
	prof.End()

	prof.Begin("matrix")
	ht := mat.Transpose(h)
	sht := mat.Mul(sigma, ht) // dim×2
	s := mat.Mul(h, sht)      // 2×2 innovation covariance
	s.Set(0, 0, s.At(0, 0)+qr)
	s.Set(1, 1, s.At(1, 1)+qb)
	sInv, err := mat.Inverse(s)
	if err != nil {
		prof.End()
		return // numerically degenerate observation; skip
	}
	k := mat.Mul(sht, sInv) // dim×2 Kalman gain

	innov := []float64{z.Range - zhatR, geom.NormalizeAngle(z.Bearing - zhatB)}
	dmu := mat.MulVec(k, innov)
	for i := 0; i < dim; i++ {
		mu[i] += dmu[i]
	}
	mu[2] = geom.NormalizeAngle(mu[2])

	kh := mat.Mul(k, h) // dim×dim
	ikh := mat.Sub(mat.Identity(dim), kh)
	newSigma := mat.Mul(ikh, sigma)
	// The (I−KH)Σ form loses symmetry to floating-point error a little more
	// each update, and asymmetry corrupts the Mahalanobis gating; re-impose
	// Σ ← (Σ + Σᵀ)/2 before committing.
	symmetrize(newSigma)
	copy(sigma.Data, newSigma.Data)
	prof.End()
}

// symmetrize overwrites m with (m + mᵀ)/2.
func symmetrize(m *mat.Matrix) {
	for i := 0; i < m.Rows; i++ {
		for j := i + 1; j < m.Cols; j++ {
			v := 0.5 * (m.At(i, j) + m.At(j, i))
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
}
