// Package ekfslam implements kernel 02.ekfslam: simultaneous localization
// and mapping with an Extended Kalman Filter (paper §V.2).
//
// The robot drives a circuit through an environment with point landmarks,
// observing noisy range and bearing to each visible landmark. The EKF
// maintains a joint Gaussian over the robot pose and all landmark positions;
// each motion prediction and each measurement update is dominated by dense
// matrix multiplications and a matrix inversion — the operations the paper
// measures at more than 85% of execution time and that this implementation
// wraps in the "matrix" harness phase.
package ekfslam

import (
	"context"
	"math"

	"repro/internal/check"
	"repro/internal/geom"
	"repro/internal/mat"
	"repro/internal/profile"
	"repro/internal/rng"
	"repro/internal/sensor"
)

// Config parameterizes a SLAM run.
type Config struct {
	Landmarks []sensor.Landmark // nil builds the default 6-landmark ring (paper's Fig. 3 setup)
	Steps     int
	Dt        float64 // seconds per step
	V         float64 // commanded forward velocity, m/s
	Omega     float64 // commanded angular velocity, rad/s
	Sensor    sensor.RangeBearingSensor
	// MotionNoise are the standard deviations of the executed (true) motion:
	// translational (m per step) and rotational (rad per step).
	MotionNoiseTrans float64
	MotionNoiseRot   float64
	// UnknownAssociation drops the sensor's landmark identities: the filter
	// must associate each observation itself by Mahalanobis gating —
	// matching it to the landmark with the smallest normalized innovation,
	// initializing a new landmark when nothing gates in. This is the
	// realistic SLAM setting; the default (known correspondences) matches
	// the paper's synthetic six-landmark setup.
	UnknownAssociation bool
	// GateAccept and GateNew are the Mahalanobis-distance² thresholds for
	// accepting an association (default: χ²₂ at 95% = 5.99) and for
	// declaring a new landmark (default 25, deliberately above the χ² 99%
	// point — see Run). Observations falling between the two are ambiguous
	// and discarded.
	GateAccept, GateNew float64
	Seed                int64
	// Workers bounds the goroutines used by the blocked parallel matrix
	// products behind predict and update (mat.ParMulInto/ParTransposeInto).
	// The blocked kernels accumulate in exactly the serial order, so every
	// worker count — including 0, the serial default — produces bit-identical
	// results; 0 additionally keeps the step allocation-free. See DESIGN.md
	// "Intra-kernel parallelism".
	Workers int
}

// DefaultConfig returns the paper-style setup: six landmarks, a circular
// drive, Gaussian noise on every range/bearing measurement.
func DefaultConfig() Config {
	return Config{
		Steps: 500,
		Dt:    0.1,
		V:     1.0,
		Omega: 0.15,
		Sensor: sensor.RangeBearingSensor{
			MaxRange:   20,
			SigmaRange: 0.10,
			SigmaBear:  0.01,
		},
		MotionNoiseTrans: 0.005,
		MotionNoiseRot:   0.002,
		Seed:             1,
	}
}

// Validate reports every dimension, bound, and finiteness violation in the
// config.
func (c Config) Validate() error {
	f := check.New("ekfslam")
	f.PositiveInt("Steps", c.Steps)
	f.Positive("Dt", c.Dt)
	f.Finite("V", c.V)
	f.Finite("Omega", c.Omega)
	f.NonNegative("Sensor.MaxRange", c.Sensor.MaxRange)
	f.NonNegative("Sensor.SigmaRange", c.Sensor.SigmaRange)
	f.NonNegative("Sensor.SigmaBear", c.Sensor.SigmaBear)
	f.NonNegative("MotionNoiseTrans", c.MotionNoiseTrans)
	f.NonNegative("MotionNoiseRot", c.MotionNoiseRot)
	f.NonNegative("GateAccept", c.GateAccept)
	f.NonNegative("GateNew", c.GateNew)
	f.NonNegativeInt("Workers", c.Workers)
	for i, lm := range c.Landmarks {
		if !finite(lm.P.X) || !finite(lm.P.Y) {
			f.Addf("Landmarks[%d] has non-finite position (%v, %v)", i, lm.P.X, lm.P.Y)
		}
	}
	return f.Err()
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// DefaultLandmarks returns six landmarks spread around the robot's circuit,
// mirroring the paper's synthetic setting with six landmarks.
func DefaultLandmarks() []sensor.Landmark {
	// The default circuit is a circle of radius V/Omega ≈ 6.7 m centered at
	// (0, R); landmarks ring that circle.
	return []sensor.Landmark{
		{ID: 0, P: geom.Vec2{X: 10, Y: 0}},
		{ID: 1, P: geom.Vec2{X: 12, Y: 10}},
		{ID: 2, P: geom.Vec2{X: 5, Y: 16}},
		{ID: 3, P: geom.Vec2{X: -6, Y: 14}},
		{ID: 4, P: geom.Vec2{X: -10, Y: 4}},
		{ID: 5, P: geom.Vec2{X: -2, Y: -5}},
	}
}

// Result reports estimation quality and workload statistics.
type Result struct {
	// PoseError is the final Euclidean error of the robot position estimate.
	PoseError float64
	// MeanLandmarkError averages the Euclidean estimation error over
	// landmarks that were observed at least once.
	MeanLandmarkError float64
	// LandmarksSeen counts landmarks initialized in the state.
	LandmarksSeen int
	// Updates counts measurement updates performed.
	Updates int64
	// Discarded counts observations dropped as ambiguous by the
	// data-association gate (unknown-association mode only).
	Discarded int64
	// Rejected counts observations rejected by the finite-value guard
	// (NaN/Inf range or bearing, as fault injection produces). A corrupted
	// measurement must never reach the covariance update: one NaN in the
	// innovation poisons the whole joint state irreversibly.
	Rejected int64
	// EstimatedPath holds the filter's pose estimate at every step (for the
	// examples' Fig. 3-style output).
	EstimatedPath []geom.Pose2
	// TruePath holds the simulated true poses.
	TruePath []geom.Pose2
	// Uncertainty is the trace of the final covariance, an overall
	// confidence measure.
	Uncertainty float64
}

// filter carries the joint EKF state plus the preallocated scratch the
// predict/update cycle writes into. After newFilter (and once every landmark
// has been observed, so the observation buffer has reached capacity) a step
// performs no heap allocation — the property BenchmarkEKFSLAMStep pins and
// scripts/ci.sh gates. See DESIGN.md "Scratch-buffer ownership" for the
// aliasing rules.
type filter struct {
	cfg                 Config
	lms                 []sensor.Landmark
	dim                 int
	capSlots            int
	gateAccept, gateNew float64
	qr, qb              float64
	r                   *rng.RNG
	mu                  []float64
	sigma               *mat.Matrix
	seen                []bool
	slots               int // initialized landmark slots (unknown-association mode)
	truth               geom.Pose2
	obsBuf              []sensor.RangeBearing
	sc                  scratch
	res                 *Result
}

// scratch holds every intermediate matrix and vector of one EKF step, sized
// once at construction. The filter owns these buffers exclusively; no callee
// retains a reference past its return.
type scratch struct {
	g        *mat.Matrix // dim×dim motion Jacobian (identity + two entries)
	gt       *mat.Matrix // dim×dim gᵀ
	gs       *mat.Matrix // dim×dim g·Σ in predict; (I−KH) in update
	newSigma *mat.Matrix // dim×dim next covariance before commit
	h        *mat.Matrix // 2×dim measurement Jacobian
	ht       *mat.Matrix // dim×2 hᵀ
	hs       *mat.Matrix // 2×dim h·Σ (association gating)
	sht      *mat.Matrix // dim×2 Σ·hᵀ
	s        *mat.Matrix // 2×2 innovation covariance
	sInv     *mat.Matrix // 2×2
	k        *mat.Matrix // dim×2 Kalman gain
	kh       *mat.Matrix // dim×dim K·H
	lu       *mat.LU     // 2×2 factorization workspace
	innov    []float64   // 2
	dmu      []float64   // dim
}

func newScratch(dim int) scratch {
	sc := scratch{
		g:        mat.Identity(dim),
		gt:       mat.New(dim, dim),
		gs:       mat.New(dim, dim),
		newSigma: mat.New(dim, dim),
		h:        mat.New(2, dim),
		ht:       mat.New(dim, 2),
		hs:       mat.New(2, dim),
		sht:      mat.New(dim, 2),
		s:        mat.New(2, 2),
		sInv:     mat.New(2, 2),
		k:        mat.New(dim, 2),
		kh:       mat.New(dim, dim),
		lu:       mat.NewLU(2),
		innov:    make([]float64, 2),
		dmu:      make([]float64, dim),
	}
	return sc
}

// newFilter validates cfg and builds the filter state: pose + landmark
// positions, with covariance near-certain for the pose and "unknown" (huge
// variance) for landmarks.
func newFilter(cfg Config, res *Result) (*filter, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	lms := cfg.Landmarks
	if lms == nil {
		lms = DefaultLandmarks()
	}
	nL := len(lms)
	// With unknown association the filter may transiently create spurious
	// landmarks, so the state reserves extra slots.
	capSlots := nL
	if cfg.UnknownAssociation {
		capSlots = 2 * nL
	}
	dim := 3 + 2*capSlots
	gateAccept := cfg.GateAccept
	if gateAccept <= 0 {
		gateAccept = 5.99 // χ²(2) at 95%
	}
	gateNew := cfg.GateNew
	if gateNew <= 0 {
		// Conservative: a textbook χ²(2)-99% gate (9.21) still spawns
		// duplicate landmarks during the early, high-covariance steps;
		// requiring a much larger surprise before declaring a new landmark
		// recovers the true landmark count on the default scenario.
		gateNew = 25
	}
	f := &filter{
		cfg:        cfg,
		lms:        lms,
		dim:        dim,
		capSlots:   capSlots,
		gateAccept: gateAccept,
		gateNew:    gateNew,
		qr:         cfg.Sensor.SigmaRange * cfg.Sensor.SigmaRange,
		qb:         cfg.Sensor.SigmaBear * cfg.Sensor.SigmaBear,
		r:          rng.New(cfg.Seed),
		mu:         make([]float64, dim),
		sigma:      mat.New(dim, dim),
		seen:       make([]bool, capSlots),
		obsBuf:     make([]sensor.RangeBearing, 0, nL),
		sc:         newScratch(dim),
		res:        res,
	}
	const unseenVar = 1e6
	for i := 3; i < dim; i++ {
		f.sigma.Set(i, i, unseenVar)
	}
	if f.qr == 0 {
		f.qr = 1e-6
	}
	if f.qb == 0 {
		f.qb = 1e-6
	}
	return f, nil
}

// step advances the world simulation by one control cycle and folds the
// resulting observation batch into the EKF.
func (f *filter) step(prof *profile.Profile) {
	cfg := &f.cfg
	// --- Simulate the world: true motion with execution noise, then a
	// noisy observation batch.
	prof.Begin("sensor")
	v := cfg.V + f.r.Normal(0, cfg.MotionNoiseTrans/cfg.Dt)
	w := cfg.Omega + f.r.Normal(0, cfg.MotionNoiseRot/cfg.Dt)
	f.truth = integrate(f.truth, v, w, cfg.Dt)
	f.obsBuf = cfg.Sensor.ObserveInto(f.obsBuf[:0], f.r, f.truth, f.lms)
	prof.End()

	// --- EKF predict with the commanded control.
	f.predict(prof)

	// --- EKF update per observation: either trusting the sensor's
	// identities, or associating by Mahalanobis gating.
	for _, z := range f.obsBuf {
		if !finite(z.Range) || !finite(z.Bearing) || z.Range < 0 {
			f.res.Rejected++
			continue
		}
		if !cfg.UnknownAssociation {
			f.update(z.ID, z, prof)
			f.res.Updates++
			continue
		}
		prof.Begin("associate")
		best, bestD2 := -1, math.Inf(1)
		for j := 0; j < f.slots; j++ {
			if d2, ok := f.mahalanobis(j, z); ok && d2 < bestD2 {
				best, bestD2 = j, d2
			}
		}
		prof.End()
		switch {
		case best >= 0 && bestD2 < f.gateAccept:
			f.update(best, z, prof)
			f.res.Updates++
		case bestD2 > f.gateNew && f.slots < f.capSlots:
			f.update(f.slots, z, prof)
			f.slots++
			f.res.Updates++
		default:
			f.res.Discarded++ // ambiguous observation
		}
	}
}

// finalize computes the estimation-quality summary into the result.
func (f *filter) finalize() {
	res := f.res
	mu := f.mu
	res.PoseError = math.Hypot(mu[0]-f.truth.X, mu[1]-f.truth.Y)
	var errSum float64
	var matched int
	if f.cfg.UnknownAssociation {
		// The filter's landmark indices are its own; score each true
		// landmark against the nearest estimate. The nearest match is found
		// on squared distances — one sqrt per landmark at the end instead of
		// a hypot per candidate.
		res.LandmarksSeen = f.slots
		for _, lm := range f.lms {
			best := math.Inf(1)
			for j := 0; j < f.slots; j++ {
				ex := mu[3+2*j] - lm.P.X
				ey := mu[3+2*j+1] - lm.P.Y
				if d2 := ex*ex + ey*ey; d2 < best {
					best = d2
				}
			}
			if !math.IsInf(best, 1) {
				errSum += math.Sqrt(best)
				matched++
			}
		}
	} else {
		for i, lm := range f.lms {
			if !f.seen[i] {
				continue
			}
			res.LandmarksSeen++
			matched++
			errSum += math.Hypot(mu[3+2*i]-lm.P.X, mu[3+2*i+1]-lm.P.Y)
		}
	}
	if matched > 0 {
		res.MeanLandmarkError = errSum / float64(matched)
	}
	for i := 0; i < f.dim; i++ {
		res.Uncertainty += f.sigma.At(i, i)
	}
}

// Run executes the kernel. Harness phases: "matrix" (matrix multiplications
// and the innovation-covariance inversion), "jacobian" (building the sparse
// Jacobians), "sensor" (simulating measurements, outside the estimation
// work).
func Run(ctx context.Context, cfg Config, prof *profile.Profile) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	res := Result{}
	f, err := newFilter(cfg, &res)
	if err != nil {
		return Result{}, err
	}
	res.TruePath = make([]geom.Pose2, 0, cfg.Steps)
	res.EstimatedPath = make([]geom.Pose2, 0, cfg.Steps)

	prof.BeginROI()
	for step := 0; step < cfg.Steps; step++ {
		if err := ctx.Err(); err != nil {
			prof.EndROI()
			return res, err
		}
		f.step(prof)
		res.TruePath = append(res.TruePath, f.truth)
		res.EstimatedPath = append(res.EstimatedPath, geom.Pose2{X: f.mu[0], Y: f.mu[1], Theta: f.mu[2]})
		prof.StepDone()
	}
	prof.EndROI()

	f.finalize()
	return res, nil
}

func integrate(p geom.Pose2, v, w, dt float64) geom.Pose2 {
	if math.Abs(w) < 1e-9 {
		return geom.Pose2{
			X:     p.X + v*dt*math.Cos(p.Theta),
			Y:     p.Y + v*dt*math.Sin(p.Theta),
			Theta: p.Theta,
		}
	}
	return geom.Pose2{
		X:     p.X + v/w*(math.Sin(p.Theta+w*dt)-math.Sin(p.Theta)),
		Y:     p.Y + v/w*(math.Cos(p.Theta)-math.Cos(p.Theta+w*dt)),
		Theta: geom.NormalizeAngle(p.Theta + w*dt),
	}
}

// predict applies the motion model to the mean and propagates the full joint
// covariance: Σ ← G Σ Gᵀ + R, with dense (3+2N)² multiplications.
func (f *filter) predict(prof *profile.Profile) {
	cfg := &f.cfg
	mu, sigma, sc := f.mu, f.sigma, &f.sc
	v, w, dt := cfg.V, cfg.Omega, cfg.Dt

	prof.Begin("jacobian")
	theta := mu[2]
	// sc.g stays the identity between calls; only the two motion-Jacobian
	// entries change, and both are overwritten every call.
	g := sc.g
	var dx, dy float64
	if math.Abs(w) < 1e-9 {
		dx = v * dt * math.Cos(theta)
		dy = v * dt * math.Sin(theta)
		g.Set(0, 2, -v*dt*math.Sin(theta))
		g.Set(1, 2, v*dt*math.Cos(theta))
	} else {
		dx = v / w * (math.Sin(theta+w*dt) - math.Sin(theta))
		dy = v / w * (math.Cos(theta) - math.Cos(theta+w*dt))
		g.Set(0, 2, v/w*(math.Cos(theta+w*dt)-math.Cos(theta)))
		g.Set(1, 2, v/w*(math.Sin(theta+w*dt)-math.Sin(theta)))
	}
	prof.End()

	mu[0] += dx
	mu[1] += dy
	mu[2] = geom.NormalizeAngle(mu[2] + w*dt)

	prof.Begin("matrix")
	mat.ParMulInto(sc.gs, g, sigma, cfg.Workers)
	mat.ParTransposeInto(sc.gt, g, cfg.Workers)
	newSigma := mat.ParMulInto(sc.newSigma, sc.gs, sc.gt, cfg.Workers)
	// Process noise enters only the pose block.
	nt := cfg.MotionNoiseTrans * cfg.MotionNoiseTrans
	nr := cfg.MotionNoiseRot * cfg.MotionNoiseRot
	newSigma.Set(0, 0, newSigma.At(0, 0)+nt)
	newSigma.Set(1, 1, newSigma.At(1, 1)+nt)
	newSigma.Set(2, 2, newSigma.At(2, 2)+nr)
	sigma.CopyFrom(newSigma)
	prof.End()
}

// fillH writes the sparse 2×dim range-bearing measurement Jacobian for a
// landmark at state offset li into sc.h (zeroing it first).
func (sc *scratch) fillH(li int, dx, dy, q, sq float64) *mat.Matrix {
	h := sc.h
	h.Zero()
	h.Set(0, 0, -dx/sq)
	h.Set(0, 1, -dy/sq)
	h.Set(1, 0, dy/q)
	h.Set(1, 1, -dx/q)
	h.Set(1, 2, -1)
	h.Set(0, li, dx/sq)
	h.Set(0, li+1, dy/sq)
	h.Set(1, li, -dy/q)
	h.Set(1, li+1, dx/q)
	return h
}

// invertS adds the measurement noise to the 2×2 innovation covariance sc.s
// and inverts it into sc.sInv through the reusable LU workspace. ok is false
// when the covariance is numerically singular.
func (f *filter) invertS() bool {
	sc := &f.sc
	sc.s.Set(0, 0, sc.s.At(0, 0)+f.qr)
	sc.s.Set(1, 1, sc.s.At(1, 1)+f.qb)
	sc.lu.Refactor(sc.s)
	return sc.lu.InverseInto(sc.sInv) == nil
}

// mahalanobis returns the squared normalized innovation distance of
// observation z against landmark slot j — the association statistic of
// gated nearest-neighbor data association. ok is false for degenerate
// geometry.
func (f *filter) mahalanobis(j int, z sensor.RangeBearing) (float64, bool) {
	mu, sc := f.mu, &f.sc
	li := 3 + 2*j
	dx := mu[li] - mu[0]
	dy := mu[li+1] - mu[1]
	q := dx*dx + dy*dy
	if q < 1e-12 {
		return 0, false
	}
	sq := math.Sqrt(q)
	nuR := z.Range - sq
	nuB := geom.NormalizeAngle(z.Bearing - geom.NormalizeAngle(math.Atan2(dy, dx)-mu[2]))

	// 2×2 innovation covariance from the pose+landmark sub-blocks (the
	// cross terms with other landmarks do not affect this 2×2 within
	// numerical noise for gating purposes, and the full product is built
	// during the actual update).
	h := sc.fillH(li, dx, dy, q, sq)
	mat.MulInto(sc.hs, h, f.sigma)
	mat.TransposeInto(sc.ht, h)
	mat.MulInto(sc.s, sc.hs, sc.ht)
	if !f.invertS() {
		return 0, false
	}
	// νᵀ S⁻¹ ν, unrolled for the 2×2 case.
	si := sc.sInv
	return nuR*(si.At(0, 0)*nuR+si.At(0, 1)*nuB) +
		nuB*(si.At(1, 0)*nuR+si.At(1, 1)*nuB), true
}

// update folds one range-bearing observation into landmark slot j.
func (f *filter) update(j int, z sensor.RangeBearing, prof *profile.Profile) {
	mu, sigma, sc := f.mu, f.sigma, &f.sc
	dim := f.dim
	li := 3 + 2*j

	if !f.seen[j] {
		// Initialize the landmark from the observation.
		mu[li] = mu[0] + z.Range*math.Cos(z.Bearing+mu[2])
		mu[li+1] = mu[1] + z.Range*math.Sin(z.Bearing+mu[2])
		f.seen[j] = true
	}

	prof.Begin("jacobian")
	dx := mu[li] - mu[0]
	dy := mu[li+1] - mu[1]
	q := dx*dx + dy*dy
	if q < 1e-12 {
		prof.End()
		return
	}
	sq := math.Sqrt(q)
	zhatR := sq
	zhatB := geom.NormalizeAngle(math.Atan2(dy, dx) - mu[2])

	// Dense 2×dim measurement Jacobian (sparse in theory; the paper's
	// kernel performs the full-width matrix products, which is exactly what
	// makes matrix ops dominate).
	h := sc.fillH(li, dx, dy, q, sq)
	prof.End()

	prof.Begin("matrix")
	workers := f.cfg.Workers
	mat.ParTransposeInto(sc.ht, h, workers)
	sht := mat.ParMulInto(sc.sht, sigma, sc.ht, workers) // dim×2
	mat.MulInto(sc.s, h, sht)                            // 2×2 innovation covariance
	if !f.invertS() {
		prof.End()
		return // numerically degenerate observation; skip
	}
	k := mat.ParMulInto(sc.k, sht, sc.sInv, workers) // dim×2 Kalman gain

	sc.innov[0] = z.Range - zhatR
	sc.innov[1] = geom.NormalizeAngle(z.Bearing - zhatB)
	mat.MulVecInto(sc.dmu, k, sc.innov)
	for i := 0; i < dim; i++ {
		mu[i] += sc.dmu[i]
	}
	mu[2] = geom.NormalizeAngle(mu[2])

	kh := mat.ParMulInto(sc.kh, k, h, workers) // dim×dim
	// ikh = I − KH, built in place in the gs scratch (idle outside predict).
	ikh := sc.gs
	for i := range ikh.Data {
		ikh.Data[i] = -kh.Data[i]
	}
	for i := 0; i < dim; i++ {
		ikh.Data[i*dim+i] += 1
	}
	newSigma := mat.ParMulInto(sc.newSigma, ikh, sigma, workers)
	// The (I−KH)Σ form loses symmetry to floating-point error a little more
	// each update, and asymmetry corrupts the Mahalanobis gating; re-impose
	// Σ ← (Σ + Σᵀ)/2 before committing.
	symmetrize(newSigma)
	sigma.CopyFrom(newSigma)
	prof.End()
}

// symmetrize overwrites m with (m + mᵀ)/2.
func symmetrize(m *mat.Matrix) {
	for i := 0; i < m.Rows; i++ {
		for j := i + 1; j < m.Cols; j++ {
			v := 0.5 * (m.At(i, j) + m.At(j, i))
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
}
