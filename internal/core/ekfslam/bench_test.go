package ekfslam

import (
	"testing"

	"repro/internal/profile"
)

// BenchmarkEKFSLAMStep measures one steady-state EKF predict/update cycle
// with profiling disabled — the per-step cost the paper's Table I breaks
// down. The benchmark first asserts the step is allocation-free after
// warmup: steady-state allocation churn in the kernel inner loop would
// perturb exactly the quantity the harness measures, so scripts/ci.sh gates
// allocs/op == 0 here.
func BenchmarkEKFSLAMStep(b *testing.B) {
	var res Result
	f, err := newFilter(DefaultConfig(), &res)
	if err != nil {
		b.Fatal(err)
	}
	prof := profile.Disabled()
	// Warmup: drive until every landmark has been observed at least once so
	// the observation buffer and landmark slots have reached steady state.
	for i := 0; i < 50; i++ {
		f.step(prof)
	}
	if allocs := testing.AllocsPerRun(100, func() { f.step(prof) }); allocs != 0 {
		b.Fatalf("steady-state EKF step allocates: %v allocs/op", allocs)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.step(prof)
	}
}

// BenchmarkEKFSLAMStepAssoc is the unknown-association variant: the
// Mahalanobis gating loop runs per observation on top of the update. It is
// not part of the zero-alloc CI gate but shares the same scratch machinery,
// so it should stay allocation-free too.
func BenchmarkEKFSLAMStepAssoc(b *testing.B) {
	cfg := DefaultConfig()
	cfg.UnknownAssociation = true
	var res Result
	f, err := newFilter(cfg, &res)
	if err != nil {
		b.Fatal(err)
	}
	prof := profile.Disabled()
	for i := 0; i < 50; i++ {
		f.step(prof)
	}
	if allocs := testing.AllocsPerRun(100, func() { f.step(prof) }); allocs != 0 {
		b.Fatalf("steady-state association step allocates: %v allocs/op", allocs)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.step(prof)
	}
}
