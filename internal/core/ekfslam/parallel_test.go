package ekfslam

import (
	"context"
	"testing"
)

func TestWorkersBitIdenticalToSerial(t *testing.T) {
	// Unlike the planners and the particle filter, ekfslam's parallelism is
	// pure blocked matrix math: the row blocks accumulate in exactly the
	// serial order, so every worker count — including the serial 0 — must
	// produce bit-identical state. This keeps the serial goldens valid for
	// parallel runs.
	run := func(workers int, unknown bool) Result {
		cfg := DefaultConfig()
		cfg.Steps = 120
		cfg.UnknownAssociation = unknown
		cfg.Workers = workers
		res, err := Run(context.Background(), cfg, nil)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return res
	}
	for _, unknown := range []bool{false, true} {
		base := run(0, unknown)
		for _, w := range []int{1, 2, 4, 8} {
			got := run(w, unknown)
			if got.PoseError != base.PoseError ||
				got.MeanLandmarkError != base.MeanLandmarkError ||
				got.Uncertainty != base.Uncertainty ||
				got.Updates != base.Updates ||
				got.Discarded != base.Discarded ||
				got.LandmarksSeen != base.LandmarksSeen {
				t.Fatalf("unknown=%v workers=%d diverged from serial:\n  pose %v vs %v\n  lm %v vs %v\n  unc %v vs %v",
					unknown, w, got.PoseError, base.PoseError,
					got.MeanLandmarkError, base.MeanLandmarkError,
					got.Uncertainty, base.Uncertainty)
			}
			for i := range base.EstimatedPath {
				if got.EstimatedPath[i] != base.EstimatedPath[i] {
					t.Fatalf("unknown=%v workers=%d: estimated pose %d differs", unknown, w, i)
				}
			}
		}
	}
}

func TestWorkersValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Workers = -1
	if _, err := Run(context.Background(), cfg, nil); err == nil {
		t.Fatal("negative Workers accepted")
	}
}
