package ekfslam

import (
	"context"
	"math"
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/geom"
	"repro/internal/mat"
	"repro/internal/profile"
	"repro/internal/sensor"
)

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Steps = 150
	return cfg
}

func TestSLAMEstimatesLandmarks(t *testing.T) {
	res, err := Run(context.Background(), smallConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.LandmarksSeen == 0 {
		t.Fatal("no landmarks observed")
	}
	// With 10 cm range noise the landmark estimates should be decimeter
	// accurate after 150 steps.
	if res.MeanLandmarkError > 0.5 {
		t.Fatalf("mean landmark error %.3f m", res.MeanLandmarkError)
	}
	if res.PoseError > 0.5 {
		t.Fatalf("pose error %.3f m", res.PoseError)
	}
}

func TestSLAMBeatsDeadReckoning(t *testing.T) {
	// With heavy motion noise, the filtered pose must track truth far
	// better than integrating commands blindly. Dead-reckoning drift is
	// implicit: we simply require sub-meter error despite noise that would
	// accumulate to meters over the run.
	cfg := smallConfig()
	cfg.MotionNoiseTrans = 0.02
	cfg.Steps = 300
	res, err := Run(context.Background(), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.PoseError > 1.0 {
		t.Fatalf("pose error %.3f m with measurement updates", res.PoseError)
	}
}

func TestUncertaintyShrinksWithObservations(t *testing.T) {
	short := smallConfig()
	short.Steps = 20
	long := smallConfig()
	long.Steps = 400
	a, err1 := Run(context.Background(), short, nil)
	b, err2 := Run(context.Background(), long, nil)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if b.Uncertainty >= a.Uncertainty {
		t.Fatalf("uncertainty grew with more observations: %v -> %v", a.Uncertainty, b.Uncertainty)
	}
}

func TestMatrixOpsDominate(t *testing.T) {
	p := profile.New()
	if _, err := Run(context.Background(), smallConfig(), p); err != nil {
		t.Fatal(err)
	}
	rep := p.Snapshot()
	if rep.Dominant() != "matrix" {
		t.Fatalf("dominant = %q, want matrix", rep.Dominant())
	}
	if f := rep.Fraction("matrix"); f < 0.70 {
		t.Fatalf("matrix fraction %.2f, want > 0.70 (paper: > 85%%)", f)
	}
}

func TestDeterminism(t *testing.T) {
	a, _ := Run(context.Background(), smallConfig(), nil)
	b, _ := Run(context.Background(), smallConfig(), nil)
	if a.PoseError != b.PoseError || a.Updates != b.Updates {
		t.Fatal("same seed diverged")
	}
}

func TestPathsRecorded(t *testing.T) {
	cfg := smallConfig()
	res, err := Run(context.Background(), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TruePath) != cfg.Steps || len(res.EstimatedPath) != cfg.Steps {
		t.Fatalf("paths %d/%d, want %d", len(res.TruePath), len(res.EstimatedPath), cfg.Steps)
	}
}

func TestConfigValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Steps = 0
	if _, err := Run(context.Background(), cfg, nil); err == nil {
		t.Fatal("zero steps accepted")
	}
}

func TestUnknownAssociationConverges(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		cfg := DefaultConfig()
		cfg.UnknownAssociation = true
		cfg.Seed = seed
		res, err := Run(context.Background(), cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		// The gated filter must recover the true landmark count — no
		// duplicates, no misses.
		if res.LandmarksSeen != len(DefaultLandmarks()) {
			t.Fatalf("seed %d: estimated %d landmarks, want %d",
				seed, res.LandmarksSeen, len(DefaultLandmarks()))
		}
		if res.PoseError > 0.5 || res.MeanLandmarkError > 0.5 {
			t.Fatalf("seed %d: pose %.3f lm %.3f", seed, res.PoseError, res.MeanLandmarkError)
		}
		// The ambiguity band must actually discard something on a noisy run.
		if res.Discarded == 0 {
			t.Fatalf("seed %d: gate discarded nothing", seed)
		}
	}
}

func TestUnknownAssociationAccuracyComparable(t *testing.T) {
	known := DefaultConfig()
	unknown := DefaultConfig()
	unknown.UnknownAssociation = true
	a, err1 := Run(context.Background(), known, nil)
	b, err2 := Run(context.Background(), unknown, nil)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	// Self-association costs some accuracy but must stay the same order.
	if b.MeanLandmarkError > 5*a.MeanLandmarkError+0.1 {
		t.Fatalf("unknown-association landmark error %.3f vs known %.3f",
			b.MeanLandmarkError, a.MeanLandmarkError)
	}
}

func TestIntermittentVisibilityTolerated(t *testing.T) {
	// Failure injection: a short sensor range makes landmarks drop in and
	// out of view. The filter must stay consistent (no divergence) even
	// with sparse updates.
	cfg := smallConfig()
	cfg.Sensor.MaxRange = 9
	cfg.Steps = 400
	res, err := Run(context.Background(), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.LandmarksSeen == 0 {
		t.Skip("range too short to see any landmark on this circuit")
	}
	if res.PoseError > 2 {
		t.Fatalf("pose error %.2f m with intermittent visibility", res.PoseError)
	}
}

func TestNoObservationsDegradesGracefully(t *testing.T) {
	// Zero sensor range: pure dead reckoning. The filter must not crash,
	// and its uncertainty must exceed the observed filter's.
	blind := smallConfig()
	blind.Sensor.MaxRange = 0.001
	seeing := smallConfig()
	a, err1 := Run(context.Background(), blind, nil)
	b, err2 := Run(context.Background(), seeing, nil)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if a.Updates != 0 {
		t.Fatalf("blind run performed %d updates", a.Updates)
	}
	// Compare pose-block uncertainty only: the blind covariance keeps the
	// huge unseen-landmark priors, so compare pose errors instead.
	if a.PoseError < b.PoseError {
		t.Fatal("dead reckoning outperformed the filter (suspicious)")
	}
}

func TestNoNoiseNearPerfect(t *testing.T) {
	cfg := smallConfig()
	cfg.Sensor.SigmaRange = 1e-6
	cfg.Sensor.SigmaBear = 1e-6
	cfg.MotionNoiseTrans = 1e-9
	cfg.MotionNoiseRot = 1e-9
	res, err := Run(context.Background(), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanLandmarkError > 0.01 {
		t.Fatalf("noiseless landmark error %.4f m", res.MeanLandmarkError)
	}
}

// TestNaNMeasurementsRejected injects NaN/Inf into the range stream via the
// chaos layer and checks the finite-value guard keeps the filter sane: the
// corrupted observations are counted in Rejected, never reach the update,
// and the final state stays finite and accurate.
func TestNaNMeasurementsRejected(t *testing.T) {
	cfg := smallConfig()
	cfg.Sensor.Fault = fault.New(fault.Config{Seed: 11, NaN: 0.2}, "ekfslam", 1)
	res, err := Run(context.Background(), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rejected == 0 {
		t.Fatal("20% NaN injection produced zero rejected observations")
	}
	for i, p := range res.EstimatedPath {
		if math.IsNaN(p.X) || math.IsNaN(p.Y) || math.IsNaN(p.Theta) {
			t.Fatalf("NaN reached the state estimate at step %d", i)
		}
	}
	if math.IsNaN(res.Uncertainty) || math.IsInf(res.Uncertainty, 0) {
		t.Fatalf("non-finite final covariance trace: %v", res.Uncertainty)
	}
	// The surviving observations still localize the robot.
	if res.PoseError > 1.0 {
		t.Fatalf("pose error %.3f m under 20%% NaN injection", res.PoseError)
	}
}

// TestValidateReportsAllViolations checks the field-level validator catches
// finiteness violations, not just the legacy Steps/Dt check.
func TestValidateReportsAllViolations(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Dt = math.NaN()
	cfg.Sensor.SigmaRange = -1
	cfg.Landmarks = []sensor.Landmark{{ID: 0, P: geom.Vec2{X: math.Inf(1)}}}
	err := cfg.Validate()
	if err == nil {
		t.Fatal("malformed config validated clean")
	}
	for _, want := range []string{"Dt", "SigmaRange", "Landmarks[0]"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("validation error missing %q: %v", want, err)
		}
	}
}

// TestCovarianceStaysSymmetric runs the filter and checks the maintained
// covariance would pass a symmetry audit (the update path re-imposes
// Σ = (Σ+Σᵀ)/2).
func TestCovarianceStaysSymmetric(t *testing.T) {
	m := mat.New(3, 3)
	m.Set(0, 1, 1)
	m.Set(1, 0, 3)
	m.Set(0, 2, -2)
	symmetrize(m)
	if m.At(0, 1) != 2 || m.At(1, 0) != 2 {
		t.Fatalf("symmetrize failed: %v vs %v", m.At(0, 1), m.At(1, 0))
	}
	if m.At(0, 2) != -1 || m.At(2, 0) != -1 {
		t.Fatalf("symmetrize failed on zero mirror: %v vs %v", m.At(0, 2), m.At(2, 0))
	}
}

// TestAssociationScoringMatchesHypot proves the squared-distance refactor of
// the landmark scoring loop changed no association decision: on a seeded
// unknown-association run, the nearest-estimate match chosen for every true
// landmark — and the resulting mean landmark error — are identical to the
// per-candidate math.Hypot formulation it replaced.
func TestAssociationScoringMatchesHypot(t *testing.T) {
	cfg := DefaultConfig()
	cfg.UnknownAssociation = true
	cfg.Seed = 42
	var res Result
	f, err := newFilter(cfg, &res)
	if err != nil {
		t.Fatal(err)
	}
	prof := profile.Disabled()
	for i := 0; i < cfg.Steps; i++ {
		f.step(prof)
	}
	f.finalize()

	// Reference: the pre-refactor scoring, hypot per candidate.
	var errSum float64
	var matched int
	for _, lm := range f.lms {
		best := math.Inf(1)
		bestJ := -1
		for j := 0; j < f.slots; j++ {
			d := math.Hypot(f.mu[3+2*j]-lm.P.X, f.mu[3+2*j+1]-lm.P.Y)
			if d < best {
				best, bestJ = d, j
			}
		}
		if bestJ < 0 {
			continue
		}
		// The squared-distance path must pick the same slot.
		sqBest := math.Inf(1)
		sqJ := -1
		for j := 0; j < f.slots; j++ {
			ex := f.mu[3+2*j] - lm.P.X
			ey := f.mu[3+2*j+1] - lm.P.Y
			if d2 := ex*ex + ey*ey; d2 < sqBest {
				sqBest, sqJ = d2, j
			}
		}
		if sqJ != bestJ {
			t.Fatalf("landmark %d: squared-distance match %d != hypot match %d", lm.ID, sqJ, bestJ)
		}
		errSum += best
		matched++
	}
	if matched == 0 {
		t.Fatal("no landmarks matched on the seeded run")
	}
	want := errSum / float64(matched)
	if math.Abs(res.MeanLandmarkError-want) > 1e-9 {
		t.Fatalf("MeanLandmarkError = %v, hypot formulation gives %v", res.MeanLandmarkError, want)
	}
	if res.Updates == 0 || res.LandmarksSeen == 0 {
		t.Fatalf("seeded run made no associations: %+v", res)
	}
}
