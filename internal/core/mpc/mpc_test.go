package mpc

import (
	"context"
	"testing"

	"repro/internal/profile"
	"repro/internal/trajectory"
)

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Steps = 60
	cfg.Horizon = 10
	cfg.Iterations = 20
	return cfg
}

func TestTracksReference(t *testing.T) {
	res, err := Run(context.Background(), smallConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// The reference moves at 5 m/s with 6 m swings; decent tracking keeps
	// RMS error within a couple of meters from a standing start.
	if res.TrackRMSE > 3 {
		t.Fatalf("tracking RMSE %.3f m", res.TrackRMSE)
	}
	if res.Rollouts == 0 {
		t.Fatal("optimizer did no work")
	}
}

func TestRespectsVelocityCap(t *testing.T) {
	cfg := smallConfig()
	res, err := Run(context.Background(), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.VelViolations > cfg.Steps/20 {
		t.Fatalf("%d velocity violations in %d steps", res.VelViolations, cfg.Steps)
	}
}

func TestOptimizationDominates(t *testing.T) {
	p := profile.New()
	if _, err := Run(context.Background(), smallConfig(), p); err != nil {
		t.Fatal(err)
	}
	rep := p.Snapshot()
	if rep.Dominant() != "optimize" {
		t.Fatalf("dominant = %q, want optimize", rep.Dominant())
	}
	if f := rep.Fraction("optimize"); f < 0.8 {
		t.Fatalf("optimize fraction %.2f, want > 0.8 (paper: > 80%%)", f)
	}
}

func TestMoreIterationsTrackBetter(t *testing.T) {
	weak := smallConfig()
	weak.Iterations = 2
	strong := smallConfig()
	strong.Iterations = 40
	a, err1 := Run(context.Background(), weak, nil)
	b, err2 := Run(context.Background(), strong, nil)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if b.TrackRMSE >= a.TrackRMSE {
		t.Fatalf("40 iters (%.3f) not better than 2 iters (%.3f)", b.TrackRMSE, a.TrackRMSE)
	}
}

func TestCustomReference(t *testing.T) {
	cfg := smallConfig()
	cfg.Reference = trajectory.SCurve(30, 600, 3, 2, 20)
	res, err := Run(context.Background(), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.TrackRMSE > 3 {
		t.Fatalf("custom reference RMSE %.3f", res.TrackRMSE)
	}
}

func TestPathRecorded(t *testing.T) {
	cfg := smallConfig()
	res, err := Run(context.Background(), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Path.Points) != cfg.Steps {
		t.Fatalf("path has %d points, want %d", len(res.Path.Points), cfg.Steps)
	}
}

func TestConfigValidation(t *testing.T) {
	for _, mutate := range []func(*Config){
		func(c *Config) { c.Horizon = 0 },
		func(c *Config) { c.Steps = 0 },
		func(c *Config) { c.Dt = 0 },
	} {
		cfg := DefaultConfig()
		mutate(&cfg)
		if _, err := Run(context.Background(), cfg, nil); err == nil {
			t.Fatal("invalid config accepted")
		}
	}
}

func TestInfeasibleReferenceDegradesGracefully(t *testing.T) {
	// Failure injection: the velocity cap is below the reference speed, so
	// perfect tracking is impossible. The controller must neither crash
	// nor violate its constraints; it falls behind boundedly.
	cfg := smallConfig()
	cfg.VMax = 2 // reference moves at 5 m/s
	res, err := Run(context.Background(), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.VelViolations > cfg.Steps/10 {
		t.Fatalf("%d velocity violations while saturated", res.VelViolations)
	}
	// It must actually saturate (large deviation), not teleport.
	if res.MaxDeviation < 1 {
		t.Fatalf("max deviation %.2f m — caps not binding?", res.MaxDeviation)
	}
}

func TestDeterminism(t *testing.T) {
	a, _ := Run(context.Background(), smallConfig(), nil)
	b, _ := Run(context.Background(), smallConfig(), nil)
	if a.TrackRMSE != b.TrackRMSE {
		t.Fatal("MPC (deterministic) diverged between runs")
	}
}
