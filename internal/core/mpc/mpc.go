// Package mpc implements kernel 14.mpc: model predictive control of a
// self-driving car following a long reference trajectory while respecting
// velocity and acceleration limits (paper §V.14).
//
// At every control step the kernel solves a finite-horizon optimization:
// find the control sequence (acceleration, steering rate) over the horizon
// that minimizes deviation from the reference plus control effort, subject
// to box constraints on the controls and a velocity cap. The solver is
// projected gradient descent on the shooting formulation; solving this
// optimization is the kernel's dominant phase — the paper measures more
// than 80% of execution time there.
package mpc

import (
	"context"
	"math"

	"repro/internal/check"
	"repro/internal/geom"
	"repro/internal/profile"
	"repro/internal/trajectory"
)

// Config parameterizes a tracking run.
type Config struct {
	// Reference is the trajectory to follow; nil builds the default long
	// S-curve.
	Reference *trajectory.Trajectory
	// Horizon is the number of lookahead steps per optimization.
	Horizon int
	// Steps is the number of closed-loop control steps.
	Steps int
	// Dt is the control period, seconds.
	Dt float64
	// VMax and AMax are the velocity and acceleration caps; OmegaMax caps
	// the steering rate.
	VMax, AMax, OmegaMax float64
	// Iterations is the gradient-descent iteration budget per step.
	Iterations int
	// LearnRate is the gradient step size.
	LearnRate float64
	// WEffort weights control effort; WVel weights velocity-cap violation.
	WEffort, WVel float64
}

// Validate reports every bound and finiteness violation in the config.
func (c Config) Validate() error {
	f := check.New("mpc")
	f.PositiveInt("Horizon", c.Horizon)
	f.PositiveInt("Steps", c.Steps)
	f.Positive("Dt", c.Dt)
	f.NonNegative("VMax", c.VMax)
	f.NonNegative("AMax", c.AMax)
	f.NonNegative("OmegaMax", c.OmegaMax)
	f.NonNegativeInt("Iterations", c.Iterations)
	f.NonNegative("LearnRate", c.LearnRate)
	f.NonNegative("WEffort", c.WEffort)
	f.NonNegative("WVel", c.WVel)
	return f.Err()
}

// DefaultConfig returns the paper-style setup: a long reference with
// predefined velocity and acceleration caps.
func DefaultConfig() Config {
	return Config{
		Horizon:    20,
		Steps:      300,
		Dt:         0.1,
		VMax:       8,
		AMax:       3,
		OmegaMax:   1.5,
		Iterations: 40,
		LearnRate:  0.08,
		WEffort:    0.05,
		WVel:       50,
	}
}

// DefaultReference builds the default reference: a 60 s S-curve at 5 m/s.
func DefaultReference() *trajectory.Trajectory {
	return trajectory.SCurve(60, 1200, 5, 6, 40)
}

// Result reports tracking quality and workload statistics.
type Result struct {
	// TrackRMSE is the closed-loop RMS position error, meters.
	TrackRMSE float64
	// MaxDeviation is the worst position error, meters.
	MaxDeviation float64
	// VelViolations counts steps where |v| exceeded VMax by > 1%.
	VelViolations int
	// Rollouts counts model rollouts performed by the optimizer.
	Rollouts int64
	// Path is the executed trajectory.
	Path *trajectory.Trajectory
}

// state is the car model: position, heading, speed.
type state struct {
	x, y, theta, v float64
}

// step integrates the kinematic car one period. The drivetrain physically
// saturates at ±vmax, so the velocity limit is hard in the plant (the cost
// additionally penalizes approaching it, which keeps the optimizer away
// from the saturation region when the reference is feasible).
func step(s state, a, omega, dt, vmax float64) state {
	return state{
		x:     s.x + s.v*math.Cos(s.theta)*dt,
		y:     s.y + s.v*math.Sin(s.theta)*dt,
		theta: geom.NormalizeAngle(s.theta + omega*dt),
		v:     geom.Clamp(s.v+a*dt, -vmax, vmax),
	}
}

// Run executes the kernel. Harness phases: "optimize" (the per-step solver)
// and "simulate" (plant integration between solves). A cancelled ctx aborts
// between control steps, returning ctx.Err().
func Run(ctx context.Context, cfg Config, prof *profile.Profile) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	ref := cfg.Reference
	if ref == nil {
		ref = DefaultReference()
	}
	h := cfg.Horizon

	res := Result{Path: &trajectory.Trajectory{}}
	// The car starts on the reference, already rolling at the reference
	// speed and heading (the paper's car follows "a long reference
	// trajectory" in steady state, not from a standstill).
	p0 := ref.At(0)
	p1 := ref.At(cfg.Dt)
	d := p1.Sub(p0)
	cur := state{x: p0.X, y: p0.Y, theta: d.Angle(), v: math.Min(d.Norm()/cfg.Dt, cfg.VMax)}

	// Warm-started control sequence: accelerations and steering rates.
	accel := make([]float64, h)
	omega := make([]float64, h)
	gradA := make([]float64, h)
	gradW := make([]float64, h)
	trialA := make([]float64, h)
	trialW := make([]float64, h)

	// cost evaluates the horizon cost of the control sequence from s0 at
	// time t0. It is the optimization objective.
	cost := func(s0 state, t0 float64, acc, om []float64) float64 {
		res.Rollouts++
		s := s0
		var c float64
		for k := 0; k < h; k++ {
			s = step(s, acc[k], om[k], cfg.Dt, cfg.VMax)
			r := ref.At(t0 + float64(k+1)*cfg.Dt)
			dx, dy := s.x-r.X, s.y-r.Y
			c += dx*dx + dy*dy
			c += cfg.WEffort * (acc[k]*acc[k] + om[k]*om[k])
			if over := math.Abs(s.v) - cfg.VMax; over > 0 {
				c += cfg.WVel * over * over
			}
		}
		return c
	}

	var sumSq float64
	prof.BeginROI()
	for stepI := 0; stepI < cfg.Steps; stepI++ {
		if err := ctx.Err(); err != nil {
			prof.EndROI()
			return res, err
		}
		t := float64(stepI) * cfg.Dt

		// ---- Solve the horizon optimization by projected gradient
		// descent with central finite differences and a backtracking line
		// search (normalized steps keep the solver stable over long runs).
		prof.Begin("optimize")
		const fd = 1e-4
		for it := 0; it < cfg.Iterations; it++ {
			base := cost(cur, t, accel, omega)
			var gnorm2 float64
			for k := 0; k < h; k++ {
				oa := accel[k]
				accel[k] = oa + fd
				cp := cost(cur, t, accel, omega)
				accel[k] = oa - fd
				cm := cost(cur, t, accel, omega)
				accel[k] = oa
				gradA[k] = (cp - cm) / (2 * fd)

				ow := omega[k]
				omega[k] = ow + fd
				cp = cost(cur, t, accel, omega)
				omega[k] = ow - fd
				cm = cost(cur, t, accel, omega)
				omega[k] = ow
				gradW[k] = (cp - cm) / (2 * fd)
				gnorm2 += gradA[k]*gradA[k] + gradW[k]*gradW[k]
			}
			gnorm := math.Sqrt(gnorm2)
			if gnorm < 1e-12 {
				break
			}
			// Backtracking: shrink the (normalized) step until the cost
			// decreases, projecting onto the control boxes.
			improved := false
			for step := cfg.LearnRate * 10; step > cfg.LearnRate/100; step /= 3 {
				for k := 0; k < h; k++ {
					trialA[k] = geom.Clamp(accel[k]-step*gradA[k]/gnorm, -cfg.AMax, cfg.AMax)
					trialW[k] = geom.Clamp(omega[k]-step*gradW[k]/gnorm, -cfg.OmegaMax, cfg.OmegaMax)
				}
				if cost(cur, t, trialA, trialW) < base {
					copy(accel, trialA)
					copy(omega, trialW)
					improved = true
					break
				}
			}
			if !improved {
				break
			}
		}
		prof.End()

		// ---- Apply the first control to the plant and shift the sequence
		// (warm start for the next solve).
		prof.Begin("simulate")
		cur = step(cur, accel[0], omega[0], cfg.Dt, cfg.VMax)
		copy(accel, accel[1:])
		copy(omega, omega[1:])
		accel[h-1] = 0
		omega[h-1] = 0

		r := ref.At(t + cfg.Dt)
		dx, dy := cur.x-r.X, cur.y-r.Y
		dev := math.Hypot(dx, dy)
		sumSq += dev * dev
		if dev > res.MaxDeviation {
			res.MaxDeviation = dev
		}
		if math.Abs(cur.v) > cfg.VMax*1.01 {
			res.VelViolations++
		}
		res.Path.Points = append(res.Path.Points, trajectory.Point{
			T: t + cfg.Dt,
			P: geom.Vec2{X: cur.x, Y: cur.y},
		})
		prof.End()
		prof.StepDone()
	}
	prof.EndROI()

	res.TrackRMSE = math.Sqrt(sumSq / float64(cfg.Steps))
	return res, nil
}
