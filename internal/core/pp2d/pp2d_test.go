package pp2d

import (
	"context"
	"math"
	"testing"

	"repro/internal/collision"
	"repro/internal/grid"
	"repro/internal/profile"
)

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Map = DefaultMap(160, 1)
	return cfg
}

func TestFindsPath(t *testing.T) {
	res, err := Run(context.Background(), smallConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || len(res.Path) == 0 {
		t.Fatal("no path found on default city map")
	}
	if res.PathLength <= 0 {
		t.Fatalf("path length %v", res.PathLength)
	}
	if res.Checks == 0 || res.Cells == 0 {
		t.Fatal("no collision work recorded")
	}
}

func TestPathIsCollisionFree(t *testing.T) {
	cfg := smallConfig()
	res, err := Run(context.Background(), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	checker := &collision.Footprint2D{G: cfg.Map, Length: cfg.CarLength, Width: cfg.CarWidth}
	w := cfg.Map.W
	for i := 1; i < len(res.Path); i++ {
		x0, y0 := res.Path[i-1]%w, res.Path[i-1]/w
		x1, y1 := res.Path[i]%w, res.Path[i]/w
		dx, dy := x1-x0, y1-y0
		if dx < -1 || dx > 1 || dy < -1 || dy > 1 || (dx == 0 && dy == 0) {
			t.Fatalf("non-adjacent step (%d,%d)->(%d,%d)", x0, y0, x1, y1)
		}
		theta := math.Atan2(float64(dy), float64(dx))
		if !checker.CheckCell(x1, y1, theta) {
			t.Fatalf("path step %d collides at (%d,%d)", i, x1, y1)
		}
	}
}

func TestCollisionDominatesProfile(t *testing.T) {
	p := profile.New()
	if _, err := Run(context.Background(), smallConfig(), p); err != nil {
		t.Fatal(err)
	}
	rep := p.Snapshot()
	if rep.Dominant() != "collision" {
		t.Fatalf("dominant = %q, want collision (paper: > 65%%)", rep.Dominant())
	}
	if f := rep.Fraction("collision"); f < 0.5 {
		t.Fatalf("collision fraction %.2f", f)
	}
}

func TestBlockedMapErrors(t *testing.T) {
	g := grid.NewGrid2D(50, 50)
	g.Resolution = 0.5
	g.Fill(0, 0, 49, 49, true)
	cfg := DefaultConfig()
	cfg.Map = g
	if _, err := Run(context.Background(), cfg, nil); err == nil {
		t.Fatal("fully blocked map did not error")
	}
}

func TestUnreachableGoal(t *testing.T) {
	g := grid.NewGrid2D(60, 60)
	g.Resolution = 0.5
	// A full wall splits the map.
	for y := 0; y < 60; y++ {
		g.Set(30, y, true)
	}
	cfg := DefaultConfig()
	cfg.Map = g
	cfg.StartX, cfg.StartY = 10, 30
	cfg.GoalX, cfg.GoalY = 50, 30
	res, err := Run(context.Background(), cfg, nil)
	if err == nil || res.Found {
		t.Fatal("wall-separated goal reported reachable")
	}
}

func TestExplicitStartGoal(t *testing.T) {
	g := grid.NewGrid2D(80, 80)
	g.Resolution = 0.5
	cfg := DefaultConfig()
	cfg.Map = g
	cfg.StartX, cfg.StartY = 20, 20
	cfg.GoalX, cfg.GoalY = 60, 60
	res, err := Run(context.Background(), cfg, nil)
	if err != nil || !res.Found {
		t.Fatalf("open-map plan failed: %v", err)
	}
	// Optimal diagonal distance * resolution.
	want := 40 * math.Sqrt2 * 0.5
	if math.Abs(res.PathLength-want) > 1e-6 {
		t.Fatalf("path length %v, want %v (straight diagonal)", res.PathLength, want)
	}
}

func TestCollisionStartRejected(t *testing.T) {
	g := grid.NewGrid2D(40, 40)
	g.Resolution = 0.5
	g.Fill(8, 8, 12, 12, true)
	cfg := DefaultConfig()
	cfg.Map = g
	cfg.StartX, cfg.StartY = 10, 10 // inside the block
	cfg.GoalX, cfg.GoalY = 30, 30
	if _, err := Run(context.Background(), cfg, nil); err == nil {
		t.Fatal("start inside an obstacle accepted")
	}
}

func TestInvalidFootprint(t *testing.T) {
	cfg := smallConfig()
	cfg.CarLength = 0
	if _, err := Run(context.Background(), cfg, nil); err == nil {
		t.Fatal("zero-length car accepted")
	}
}

func TestAnytimePlanningImproves(t *testing.T) {
	cfg := smallConfig()
	cfg.AnytimeSchedule = []float64{3, 1.5, 1}
	res, err := Run(context.Background(), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Anytime) != 3 {
		t.Fatalf("got %d anytime rounds", len(res.Anytime))
	}
	for i := 1; i < len(res.Anytime); i++ {
		if res.Anytime[i].PathLength > res.Anytime[i-1].PathLength+1e-9 {
			t.Fatalf("round %d worsened the path: %.2f -> %.2f",
				i, res.Anytime[i-1].PathLength, res.Anytime[i].PathLength)
		}
	}
	// The final round at ε=1 must match plain optimal A*.
	plain := smallConfig()
	opt, err := Run(context.Background(), plain, nil)
	if err != nil {
		t.Fatal(err)
	}
	if diff := res.PathLength - opt.PathLength; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("anytime final %.4f != optimal %.4f", res.PathLength, opt.PathLength)
	}
}

func TestWeightedSearchFasterButCostlier(t *testing.T) {
	base := smallConfig()
	res1, err := Run(context.Background(), base, nil)
	if err != nil {
		t.Fatal(err)
	}
	weighted := smallConfig()
	weighted.Weight = 3
	res2, err := Run(context.Background(), weighted, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Expanded > res1.Expanded {
		t.Fatalf("weighted A* expanded more states (%d > %d)", res2.Expanded, res1.Expanded)
	}
	if res2.PathLength < res1.PathLength-1e-9 {
		t.Fatal("weighted A* found a shorter path than optimal A*")
	}
}
