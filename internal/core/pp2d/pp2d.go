// Package pp2d implements kernel 04.pp2d: 2D path planning for a mobile
// robot (paper §V.4) — a self-driving car navigating a city snapshot with
// A*, Euclidean heuristic, and footprint collision detection.
//
// The search treats the car as an oriented rectangle (4.8 m × 1.8 m, the
// paper's dimensions); every candidate move performs a footprint collision
// check against the occupancy grid. Those checks are the kernel's dominant
// phase — the paper measures more than 65% of execution time in collision
// detection — and the harness regions here reproduce that breakdown.
package pp2d

import (
	"context"
	"errors"
	"math"

	"repro/internal/check"
	"repro/internal/collision"
	"repro/internal/grid"
	"repro/internal/maps"
	"repro/internal/profile"
	"repro/internal/search"
)

// Config parameterizes a planning run.
type Config struct {
	// Map is the environment; nil builds the default city map (Boston
	// substitute). The map's Resolution is meters per cell.
	Map *grid.Grid2D
	// CarLength and CarWidth are the robot footprint, meters.
	CarLength, CarWidth float64
	// Start and Goal are cell coordinates; negative values select the
	// default long route across the map.
	StartX, StartY, GoalX, GoalY int
	// Weight inflates the heuristic (1 = plain A*).
	Weight float64
	// AnytimeSchedule, when non-empty, runs ARA* instead of a single
	// search: a non-increasing sequence of heuristic inflations (e.g.
	// [3, 2, 1]) producing successively better paths that reuse earlier
	// search effort. Result.Anytime records every improvement; the final
	// round populates the usual Path/PathLength fields.
	AnytimeSchedule []float64
	Seed            int64
	// BestEffort makes a cancelled ARA* degrade instead of fail: once at
	// least one improvement round has produced a path, cancellation returns
	// that best-so-far path with Result.Degraded set, rather than ctx.Err().
	// It has no effect on the single-shot search, which has no intermediate
	// solution to fall back on.
	BestEffort bool
}

// Validate reports every dimension, bound, and finiteness violation in the
// config.
func (c Config) Validate() error {
	f := check.New("pp2d")
	f.Positive("CarLength", c.CarLength)
	f.Positive("CarWidth", c.CarWidth)
	f.Finite("Weight", c.Weight)
	for i, eps := range c.AnytimeSchedule {
		if math.IsNaN(eps) || math.IsInf(eps, 0) || eps < 1 {
			f.Addf("AnytimeSchedule[%d] must be a finite inflation >= 1 (got %v)", i, eps)
		}
		if i > 0 && eps > c.AnytimeSchedule[i-1] {
			f.Addf("AnytimeSchedule must be non-increasing (entry %d: %v > %v)", i, eps, c.AnytimeSchedule[i-1])
		}
	}
	return f.Err()
}

// DefaultConfig returns the paper-style setup: a 1024² city at 0.5 m
// resolution and the 4.8 m × 1.8 m car on a long route.
func DefaultConfig() Config {
	return Config{
		CarLength: 4.8,
		CarWidth:  1.8,
		StartX:    -1, StartY: -1, GoalX: -1, GoalY: -1,
		Weight: 1,
		Seed:   1,
	}
}

// DefaultMap builds the synthetic city used when Config.Map is nil.
func DefaultMap(size int, seed int64) *grid.Grid2D {
	g := maps.CityMap(size, size, seed)
	g.Resolution = 0.5
	return g
}

// Result reports the planning outcome and workload statistics.
type Result struct {
	Found bool
	// Path is the cell-index path (IDs encoded y*W+x).
	Path []int
	// PathLength is the route length in meters.
	PathLength float64
	// Expanded counts A* expansions; Checks and Cells count footprint
	// collision checks and the occupancy cells they touched.
	Expanded int
	Checks   int64
	Cells    int64
	// Anytime records the ARA* improvement sequence when
	// Config.AnytimeSchedule is set: (epsilon, path length in meters,
	// expansions of that round).
	Anytime []AnytimeRound
	// Degraded is set when BestEffort turned a cancelled ARA* into a
	// best-so-far result: Path holds the last completed round's path, at a
	// worse suboptimality bound than the schedule's final epsilon.
	Degraded bool
}

// AnytimeRound is one ARA* improvement.
type AnytimeRound struct {
	Epsilon    float64
	PathLength float64
	Expanded   int
}

// Run executes the kernel. Harness phases: "collision" (footprint checks)
// nested inside "search" (A*); the profile attributes time exclusively, so
// the two fractions are directly comparable to the paper's. A cancelled ctx
// aborts the search loop promptly, returning ctx.Err().
func Run(ctx context.Context, cfg Config, prof *profile.Profile) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	g := cfg.Map
	if g == nil {
		g = DefaultMap(512, cfg.Seed)
	}
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}

	checker := &collision.Footprint2D{G: g, Length: cfg.CarLength, Width: cfg.CarWidth}
	space := &carSpace{g: g, checker: checker, prof: prof}

	sx, sy, gx, gy := cfg.StartX, cfg.StartY, cfg.GoalX, cfg.GoalY
	var ok bool
	if sx < 0 || sy < 0 {
		sx, sy, ok = feasibleCellNear(g, checker, g.W/16, g.H/16)
		if !ok {
			return Result{}, errors.New("pp2d: no feasible start pose on map")
		}
	} else if !checker.CheckCell(sx, sy, 0) {
		return Result{}, errors.New("pp2d: start pose is in collision")
	}
	if gx < 0 || gy < 0 {
		gx, gy, ok = feasibleCellNear(g, checker, g.W-1-g.W/16, g.H-1-g.H/16)
		if !ok {
			return Result{}, errors.New("pp2d: no feasible goal pose on map")
		}
	} else if !checker.CheckCell(gx, gy, 0) {
		return Result{}, errors.New("pp2d: goal pose is in collision")
	}

	base := &search.Grid2DSpace{G: g}
	h := base.EuclideanHeuristic(gx, gy)

	problem := search.Problem{
		Space:  space,
		Start:  base.ID(sx, sy),
		Goal:   base.ID(gx, gy),
		H:      h,
		Weight: cfg.Weight,
		Ctx:    ctx,
	}

	prof.BeginROI()
	prof.Begin("search")
	var res Result
	var err error
	if len(cfg.AnytimeSchedule) > 0 {
		var rounds []search.AnytimeResult
		rounds, err = search.SolveAnytime(problem, cfg.AnytimeSchedule)
		if err != nil && cfg.BestEffort && len(rounds) > 0 && ctx.Err() != nil {
			// Cancelled mid-schedule with at least one completed round:
			// degrade to its path instead of failing.
			res.Degraded = true
			err = nil
		}
		for _, r := range rounds {
			res.Anytime = append(res.Anytime, AnytimeRound{
				Epsilon:    r.Epsilon,
				PathLength: r.Cost * g.Resolution,
				Expanded:   r.Expanded,
			})
			res.Found = true
			res.Path = r.Path
			res.PathLength = r.Cost * g.Resolution
			res.Expanded += r.Expanded
		}
	} else {
		var sr search.Result
		sr, err = search.Solve(problem)
		res.Found = sr.Found
		res.Path = sr.Path
		res.Expanded = sr.Expanded
		if sr.Found {
			res.PathLength = sr.Cost * g.Resolution
		}
	}
	prof.End()
	prof.StepDone() // one-shot planner: the whole episode is one step
	prof.EndROI()

	res.Checks = checker.Checks
	res.Cells = checker.Cells
	return res, err
}

// FeasibleCellNear searches outward from cell (x, y) for a cell where a
// car footprint of the given dimensions fits with axis-aligned heading.
// Callers composing pipelines (e.g. planning from a localization estimate)
// use it to snap a pose onto plannable ground.
func FeasibleCellNear(g *grid.Grid2D, carLength, carWidth float64, x, y int) (int, int, bool) {
	probe := &collision.Footprint2D{G: g, Length: carLength, Width: carWidth}
	return feasibleCellNear(g, probe, x, y)
}

// feasibleCellNear searches outward from (x, y) for a cell where the car's
// footprint fits with axis-aligned heading. Feasibility checks during the
// outward search do not count toward the kernel's collision statistics.
func feasibleCellNear(g *grid.Grid2D, checker *collision.Footprint2D, x, y int) (int, int, bool) {
	probe := collision.Footprint2D{G: g, Length: checker.Length, Width: checker.Width}
	for r := 0; r < g.W+g.H; r++ {
		for dy := -r; dy <= r; dy++ {
			for dx := -r; dx <= r; dx++ {
				if maxAbs(dx, dy) != r {
					continue
				}
				nx, ny := x+dx, y+dy
				if g.InBounds(nx, ny) && g.Free(nx, ny) && probe.CheckCell(nx, ny, 0) {
					return nx, ny, true
				}
			}
		}
	}
	return 0, 0, false
}

func maxAbs(a, b int) int {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	if a > b {
		return a
	}
	return b
}

// carSpace is the 8-connected grid space whose traversability test is the
// car's footprint collision check, oriented along the direction of motion.
type carSpace struct {
	g       *grid.Grid2D
	checker *collision.Footprint2D
	prof    *profile.Profile
}

// NumStates implements search.Sized.
func (s *carSpace) NumStates() int { return s.g.W * s.g.H }

// moves lists the 8-connected steps with their costs and precomputed
// heading sines/cosines (the footprint is checked oriented along the motion
// direction; precomputing avoids a Sincos per collision check).
var moves = func() [8]struct {
	dx, dy   int
	cost     float64
	sin, cos float64
} {
	dirs := [8][3]float64{
		{1, 0, 1}, {-1, 0, 1}, {0, 1, 1}, {0, -1, 1},
		{1, 1, math.Sqrt2}, {1, -1, math.Sqrt2}, {-1, 1, math.Sqrt2}, {-1, -1, math.Sqrt2},
	}
	var out [8]struct {
		dx, dy   int
		cost     float64
		sin, cos float64
	}
	for i, d := range dirs {
		theta := math.Atan2(d[1], d[0])
		s, c := math.Sincos(theta)
		out[i] = struct {
			dx, dy   int
			cost     float64
			sin, cos float64
		}{int(d[0]), int(d[1]), d[2], s, c}
	}
	return out
}()

// Neighbors implements search.Space: a move is feasible when the car's
// footprint, headed along the move direction, is collision-free at the
// destination cell.
func (s *carSpace) Neighbors(id int, yield func(to int, cost float64)) {
	w := s.g.W
	x, y := id%w, id/w
	for _, m := range moves {
		nx, ny := x+m.dx, y+m.dy
		if !s.g.InBounds(nx, ny) {
			continue
		}
		s.prof.Begin("collision")
		ok := s.checker.CheckCellOriented(nx, ny, m.sin, m.cos)
		s.prof.End()
		if !ok {
			continue
		}
		yield(ny*w+nx, m.cost)
	}
}
