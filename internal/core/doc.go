// Package core is the parent of the sixteen RTRBench kernel packages — the
// paper's primary contribution. Each kernel lives in its own subpackage:
//
//	Perception: pfl, ekfslam, srec
//	Planning:   pp2d, pp3d, movtar, prm, rrt (kernels 08-10), sym (11-12)
//	Control:    dmp, mpc, cem, bo
//
// Every kernel package follows the same contract: a Config struct with
// documented, paper-faithful defaults (DefaultConfig), a
// Run(ctx, Config, *profile.Profile) entry point whose profile receives
// the region-of-interest and named phase breakdown, and a Result struct
// with the kernel's quality metrics and operation counters. Cancelling ctx
// aborts the run within one step/iteration with ctx.Err(); a nil ctx is
// treated as context.Background(). The public registry over all kernels is
// repro/rtrbench.
package core
