package dmp

import (
	"context"
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/profile"
	"repro/internal/trajectory"
)

func TestTracksDemonstration(t *testing.T) {
	res, err := Run(context.Background(), DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// The demo travels ~15 m; the rollout should track within a fraction.
	if res.TrackRMSE > 1.0 {
		t.Fatalf("tracking RMSE %.3f m", res.TrackRMSE)
	}
	if res.EndpointError > 0.5 {
		t.Fatalf("endpoint error %.3f m", res.EndpointError)
	}
	if res.SerialSteps == 0 {
		t.Fatal("no integration steps recorded")
	}
}

func TestMoreBasisBetterTracking(t *testing.T) {
	coarse := DefaultConfig()
	coarse.Basis = 5
	fine := DefaultConfig()
	fine.Basis = 80
	a, err1 := Run(context.Background(), coarse, nil)
	b, err2 := Run(context.Background(), fine, nil)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if b.TrackRMSE >= a.TrackRMSE {
		t.Fatalf("80 basis (%.3f) not better than 5 basis (%.3f)", b.TrackRMSE, a.TrackRMSE)
	}
}

func TestGoalConvergence(t *testing.T) {
	// DMP's defining property: the rollout converges to the demo's goal
	// even from a different number of steps.
	cfg := DefaultConfig()
	cfg.Steps = 3000
	res, err := Run(context.Background(), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	demo := DefaultDemo()
	goal := demo.Points[len(demo.Points)-1].P
	last := res.Generated.Points[len(res.Generated.Points)-1].P
	if last.Dist(goal) > 0.5 {
		t.Fatalf("rollout ends at %v, goal %v", last, goal)
	}
}

func TestVelocityProfileShape(t *testing.T) {
	res, err := Run(context.Background(), DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Starts and ends near rest; peaks in between (minimum-jerk-like demo).
	v := res.Velocity
	if v[0] > 0.5 {
		t.Fatalf("initial speed %v", v[0])
	}
	var peak float64
	for _, s := range v {
		if s > peak {
			peak = s
		}
	}
	if peak < 1 {
		t.Fatalf("peak speed %v — trajectory never moved", peak)
	}
	if v[len(v)-1] > peak/2 {
		t.Fatalf("final speed %v not decaying (peak %v)", v[len(v)-1], peak)
	}
}

func TestTemporalScaling(t *testing.T) {
	slow := DefaultConfig()
	slow.Tau = 2 // twice as slow
	res, err := Run(context.Background(), slow, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Same endpoint, same path shape, at half the speed.
	demo := DefaultDemo()
	goal := demo.Points[len(demo.Points)-1].P
	last := res.Generated.Points[len(res.Generated.Points)-1].P
	if last.Dist(goal) > 0.8 {
		t.Fatalf("scaled rollout ends at %v, goal %v", last, goal)
	}
	var peak float64
	for _, s := range res.Velocity {
		if s > peak {
			peak = s
		}
	}
	fast, _ := Run(context.Background(), DefaultConfig(), nil)
	var fastPeak float64
	for _, s := range fast.Velocity {
		if s > fastPeak {
			fastPeak = s
		}
	}
	if peak > fastPeak {
		t.Fatalf("tau=2 peak speed %v > tau=1 peak %v", peak, fastPeak)
	}
}

func TestCustomDemo(t *testing.T) {
	demo := trajectory.Demonstration(2, 200, geom.Vec2{}, geom.Vec2{X: 5, Y: 0}, 0)
	cfg := DefaultConfig()
	cfg.Demo = demo
	res, err := Run(context.Background(), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.TrackRMSE > 0.5 {
		t.Fatalf("straight-line tracking RMSE %.3f", res.TrackRMSE)
	}
}

func TestPhases(t *testing.T) {
	p := profile.New()
	if _, err := Run(context.Background(), DefaultConfig(), p); err != nil {
		t.Fatal(err)
	}
	rep := p.Snapshot()
	if rep.Fraction("train") <= 0 || rep.Fraction("rollout") <= 0 {
		t.Fatalf("phases: train=%.2f rollout=%.2f",
			rep.Fraction("train"), rep.Fraction("rollout"))
	}
}

func TestConfigValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Basis = 0
	if _, err := Run(context.Background(), cfg, nil); err == nil {
		t.Fatal("zero basis accepted")
	}
	cfg = DefaultConfig()
	cfg.Steps = 1
	if _, err := Run(context.Background(), cfg, nil); err == nil {
		t.Fatal("single-step rollout accepted")
	}
	cfg = DefaultConfig()
	cfg.Demo = &trajectory.Trajectory{}
	if _, err := Run(context.Background(), cfg, nil); err == nil {
		t.Fatal("empty demonstration accepted")
	}
}

func TestRolloutFinite(t *testing.T) {
	res, err := Run(context.Background(), DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range res.Generated.Points {
		if math.IsNaN(p.P.X) || math.IsNaN(p.P.Y) || math.IsInf(p.P.X, 0) {
			t.Fatalf("rollout diverged at step %d: %v", i, p.P)
		}
	}
}
