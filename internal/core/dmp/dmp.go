// Package dmp implements kernel 13.dmp: dynamic movement primitives
// (paper §V.13, after Schaal et al.) — a control kernel that generates a
// smooth trajectory tracking a demonstrated path.
//
// DMP models each coordinate with a spring-damper "transformation system"
// modulated by a learned forcing term of Gaussian basis functions; the
// forcing weights are fit from a single demonstration by locally weighted
// regression ("imitation learning ... typically through a single
// demonstration"). The rollout integrates position, velocity, and
// acceleration incrementally — the tight serial dependence behind the
// paper's low-ILP (IPC < 1) observation — and the harness separates that
// "rollout" phase from the "train" regression phase.
package dmp

import (
	"context"
	"errors"
	"math"

	"repro/internal/check"
	"repro/internal/geom"
	"repro/internal/profile"
	"repro/internal/trajectory"
)

// Config parameterizes training and rollout.
type Config struct {
	// Demo is the demonstrated trajectory; nil generates the default
	// wheeled-robot demonstration (see DESIGN.md substitutions).
	Demo *trajectory.Trajectory
	// Basis is the number of Gaussian basis functions per dimension.
	Basis int
	// K and D are the spring and damper gains (D defaults to critical
	// damping, 2√K).
	K, D float64
	// AlphaX is the canonical system decay rate.
	AlphaX float64
	// Steps is the number of rollout integration steps.
	Steps int
	// Tau scales rollout duration relative to the demonstration (1 =
	// same speed).
	Tau float64
}

// Validate reports every bound and finiteness violation in the config.
func (c Config) Validate() error {
	f := check.New("dmp")
	f.PositiveInt("Basis", c.Basis)
	if c.Steps <= 1 {
		f.Addf("Steps must be > 1 (got %d)", c.Steps)
	}
	f.NonNegative("K", c.K)
	f.NonNegative("D", c.D)
	f.NonNegative("AlphaX", c.AlphaX)
	f.NonNegative("Tau", c.Tau)
	return f.Err()
}

// DefaultConfig returns the paper-style setup: 50 basis functions, rollout
// matched to the demonstration length.
func DefaultConfig() Config {
	return Config{
		Basis:  50,
		K:      150,
		AlphaX: 4,
		Steps:  2000,
		Tau:    1,
	}
}

// DefaultDemo generates the default demonstration: a 1.5 s smooth motion
// with a lateral detour, like the reference trajectory in the paper's
// Fig. 15.
func DefaultDemo() *trajectory.Trajectory {
	return trajectory.Demonstration(1.5, 300, geom.Vec2{}, geom.Vec2{X: 12, Y: 8}, 2.0)
}

// Result reports tracking quality and the generated profiles.
type Result struct {
	// Generated is the rolled-out trajectory (paper Fig. 15 left).
	Generated *trajectory.Trajectory
	// Velocity is the speed profile over time (paper Fig. 15 right).
	Velocity []float64
	// TrackRMSE is the RMS position error against the (time-aligned)
	// demonstration.
	TrackRMSE float64
	// EndpointError is the distance between the rollout's and the
	// demonstration's final points.
	EndpointError float64
	// SerialSteps counts rollout integration steps (each dependent on the
	// previous — the kernel's serialization measure).
	SerialSteps int64
}

// dmp1d is the per-dimension transformation system.
type dmp1d struct {
	w       []float64 // basis weights
	centers []float64
	widths  []float64
	y0, g   float64
	k, d    float64
}

// Run trains on the demonstration and rolls the primitive out. Harness
// phases: "train" (basis regression) and "rollout" (serial integration). A
// cancelled ctx aborts between integration steps, returning ctx.Err().
func Run(ctx context.Context, cfg Config, prof *profile.Profile) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	demo := cfg.Demo
	if demo == nil {
		demo = DefaultDemo()
	}
	if len(demo.Points) < 3 {
		return Result{}, errors.New("dmp: demonstration too short")
	}
	k := cfg.K
	if k <= 0 {
		k = 150
	}
	d := cfg.D
	if d <= 0 {
		d = 2 * math.Sqrt(k)
	}
	ax := cfg.AlphaX
	if ax <= 0 {
		ax = 4
	}
	tau := cfg.Tau
	if tau <= 0 {
		tau = 1
	}
	duration := demo.Duration()

	res := Result{}
	prof.BeginROI()

	// ---- Train: resample the demo uniformly, differentiate, and fit the
	// forcing term per dimension with locally weighted regression.
	prof.Begin("train")
	n := len(demo.Points)
	uniform := demo.Resample(n)
	dt := duration / float64(n-1)
	xs := make([]float64, n) // canonical phase at each demo sample
	x := 1.0
	for i := range xs {
		xs[i] = x
		x += -ax * x * dt / duration // canonical runs on the demo's clock
	}
	dims := [2][]float64{make([]float64, n), make([]float64, n)}
	for i, p := range uniform.Points {
		dims[0][i] = p.P.X
		dims[1][i] = p.P.Y
	}
	var systems [2]dmp1d
	for dim := 0; dim < 2; dim++ {
		systems[dim] = fit1D(dims[dim], xs, dt, duration, cfg.Basis, k, d, ax)
	}
	prof.End()
	prof.StepDone() // training is one step; each rollout tick is another

	// ---- Rollout: incremental integration of the canonical and
	// transformation systems. Every step depends on the previous one.
	prof.Begin("rollout")
	steps := cfg.Steps
	rdt := duration * tau / float64(steps-1)
	gen := &trajectory.Trajectory{Points: make([]trajectory.Point, steps)}
	vel := make([]float64, steps)
	y := [2]float64{systems[0].y0, systems[1].y0}
	v := [2]float64{0, 0}
	x = 1.0
	for s := 0; s < steps; s++ {
		if err := ctx.Err(); err != nil {
			prof.End()
			prof.EndROI()
			return res, err
		}
		gen.Points[s] = trajectory.Point{
			T: float64(s) * rdt,
			P: geom.Vec2{X: y[0], Y: y[1]},
		}
		// v is the scaled velocity τẏ; report the physical speed ẏ.
		vel[s] = math.Hypot(v[0], v[1]) / (tau * duration)
		for dim := 0; dim < 2; dim++ {
			sys := &systems[dim]
			f := sys.force(x)
			// τ v̇ = K(g−y) − Dv − K(g−y0)x + K f(x)
			// τ v̇ = K(g−y) − Dv − K(g−y0)x + Kf ; τ ẏ = v
			vdot := (k*(sys.g-y[dim]) - d*v[dim] - k*(sys.g-sys.y0)*x + k*f) / (tau * duration)
			v[dim] += vdot * rdt
			y[dim] += v[dim] / (tau * duration) * rdt
		}
		x += -ax * x / (tau * duration) * rdt
		res.SerialSteps++
		prof.StepDone()
	}
	prof.End()
	prof.EndROI()

	res.Generated = gen
	res.Velocity = vel

	// Tracking error against the time-aligned demonstration.
	var sum float64
	for _, p := range gen.Points {
		ref := uniform.At(p.T / tau)
		dd := p.P.Sub(ref)
		sum += dd.Norm2()
	}
	res.TrackRMSE = math.Sqrt(sum / float64(len(gen.Points)))
	res.EndpointError = gen.Points[len(gen.Points)-1].P.Dist(uniform.Points[len(uniform.Points)-1].P)
	return res, nil
}

// fit1D learns the forcing weights for one dimension.
func fit1D(ys, xs []float64, dt, duration float64, basis int, k, d, ax float64) dmp1d {
	n := len(ys)
	y0, g := ys[0], ys[n-1]

	// Numerical differentiation (scaled to the canonical clock).
	vs := make([]float64, n)
	as := make([]float64, n)
	for i := 1; i < n-1; i++ {
		vs[i] = (ys[i+1] - ys[i-1]) / (2 * dt) * duration
	}
	vs[0], vs[n-1] = 0, 0
	for i := 1; i < n-1; i++ {
		as[i] = (vs[i+1] - vs[i-1]) / (2 * dt) * duration
	}

	// Target forcing: f_t = (τ v̇ + D v − K(g−y))/K + (g−y0) x.
	ft := make([]float64, n)
	for i := 0; i < n; i++ {
		ft[i] = (as[i]+d*vs[i]-k*(g-ys[i]))/k + (g-y0)*xs[i]
	}

	// Basis centers spaced exponentially in phase (uniform in time).
	sys := dmp1d{
		w:       make([]float64, basis),
		centers: make([]float64, basis),
		widths:  make([]float64, basis),
		y0:      y0, g: g, k: k, d: d,
	}
	for b := 0; b < basis; b++ {
		t := float64(b) / float64(basis-1)
		sys.centers[b] = math.Exp(-ax * t)
	}
	for b := 0; b < basis; b++ {
		var next float64
		if b+1 < basis {
			next = sys.centers[b+1]
		} else {
			next = sys.centers[b] * 0.5
		}
		diff := sys.centers[b] - next
		sys.widths[b] = 1 / (diff*diff + 1e-9)
	}

	// Locally weighted regression per basis: w_b = Σψξf / Σψξ².
	for b := 0; b < basis; b++ {
		var num, den float64
		for i := 0; i < n; i++ {
			psi := math.Exp(-sys.widths[b] * (xs[i] - sys.centers[b]) * (xs[i] - sys.centers[b]))
			xi := xs[i]
			num += psi * xi * ft[i]
			den += psi * xi * xi
		}
		if den > 1e-12 {
			sys.w[b] = num / den
		}
	}
	return sys
}

// force evaluates the learned forcing term at phase x.
func (s *dmp1d) force(x float64) float64 {
	var num, den float64
	for b := range s.w {
		psi := math.Exp(-s.widths[b] * (x - s.centers[b]) * (x - s.centers[b]))
		num += psi * s.w[b]
		den += psi
	}
	if den < 1e-12 {
		return 0
	}
	return num / den * x
}
