package srec

import (
	"context"
	"testing"

	"repro/internal/profile"
)

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Cols, cfg.Rows = 60, 45
	cfg.Iterations = 30
	return cfg
}

func TestICPRecoversAlignment(t *testing.T) {
	res, err := Run(context.Background(), smallConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// The true alignment is the identity; after ICP the residual transform
	// must be small despite the deliberately wrong initial guess.
	if res.RotationError > 0.05 {
		t.Fatalf("rotation residual %.4f rad", res.RotationError)
	}
	if res.TranslationError > 0.12 {
		t.Fatalf("translation residual %.4f m", res.TranslationError)
	}
	if res.RMSE > 0.1 {
		t.Fatalf("RMSE %.4f m", res.RMSE)
	}
}

func TestWorsensWithoutIterations(t *testing.T) {
	one := smallConfig()
	one.Iterations = 1
	many := smallConfig()
	a, err1 := Run(context.Background(), one, nil)
	b, err2 := Run(context.Background(), many, nil)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if b.TranslationError >= a.TranslationError {
		t.Fatalf("more iterations did not improve alignment: %v -> %v",
			a.TranslationError, b.TranslationError)
	}
}

func TestCorrespondenceDominates(t *testing.T) {
	p := profile.New()
	if _, err := Run(context.Background(), smallConfig(), p); err != nil {
		t.Fatal(err)
	}
	rep := p.Snapshot()
	if rep.Dominant() != "correspondence" {
		t.Fatalf("dominant = %q, want correspondence (point-cloud ops)", rep.Dominant())
	}
}

func TestVoxelDownsampleReducesWork(t *testing.T) {
	full := smallConfig()
	down := smallConfig()
	down.VoxelSize = 0.1
	a, err1 := Run(context.Background(), full, nil)
	b, err2 := Run(context.Background(), down, nil)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if b.SourcePoints >= a.SourcePoints {
		t.Fatalf("downsampling did not shrink the cloud: %d -> %d",
			a.SourcePoints, b.SourcePoints)
	}
	if b.NNQueries >= a.NNQueries {
		t.Fatal("downsampling did not reduce NN queries")
	}
}

func TestDeterminism(t *testing.T) {
	a, _ := Run(context.Background(), smallConfig(), nil)
	b, _ := Run(context.Background(), smallConfig(), nil)
	if a.RMSE != b.RMSE || a.NNQueries != b.NNQueries {
		t.Fatal("same seed diverged")
	}
}

func TestConfigValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Iterations = 0
	if _, err := Run(context.Background(), cfg, nil); err == nil {
		t.Fatal("zero iterations accepted")
	}
	cfg = DefaultConfig()
	cfg.Cols = 1
	if _, err := Run(context.Background(), cfg, nil); err == nil {
		t.Fatal("degenerate camera accepted")
	}
}

func TestPointToPlaneConvergesFasterAndTighter(t *testing.T) {
	pt := smallConfig()
	pt.Method = PointToPoint
	pl := smallConfig()
	pl.Method = PointToPlane
	a, err1 := Run(context.Background(), pt, nil)
	b, err2 := Run(context.Background(), pl, nil)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	// The plane metric is the KinectFusion-style pipeline's choice exactly
	// because it converges in fewer iterations on structured scenes.
	if b.Iterations >= a.Iterations {
		t.Fatalf("plane iterations %d !< point iterations %d", b.Iterations, a.Iterations)
	}
	if b.TranslationError >= a.TranslationError {
		t.Fatalf("plane residual %.4f !< point residual %.4f",
			b.TranslationError, a.TranslationError)
	}
}

func TestNormalsOnRoomWalls(t *testing.T) {
	// Scan a wall-dominated scene and check the normals are unit length.
	cfg := smallConfig()
	cfg.Method = PointToPlane
	if _, err := Run(context.Background(), cfg, nil); err != nil {
		t.Fatal(err)
	}
}

func TestConvergenceStopsEarly(t *testing.T) {
	cfg := smallConfig()
	cfg.Iterations = 500
	cfg.ConvergeTol = 1e-3
	res, err := Run(context.Background(), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations >= 500 {
		t.Fatalf("never converged in %d iterations", res.Iterations)
	}
}
