// Package srec implements kernel 03.srec: 3D scene reconstruction by
// registering point clouds with the iterative closest point (ICP) algorithm
// (paper §V.3, after Keller et al.'s real-time point-based fusion).
//
// Two depth-camera scans of the same scene, taken from different poses, are
// reconciled: ICP alternates a correspondence search (nearest neighbor per
// source point — the irregular-memory-access phase the paper identifies as
// the dominant bottleneck) with a rigid-transform estimate from the matched
// pairs (cross-covariance accumulation and Horn's quaternion eigenproblem —
// the "massive matrix operations" secondary bottleneck).
package srec

import (
	"context"
	"errors"
	"math"

	"repro/internal/check"
	"repro/internal/geom"
	"repro/internal/kdtree"
	"repro/internal/mat"
	"repro/internal/pointcloud"
	"repro/internal/profile"
	"repro/internal/rng"
)

// Method selects the ICP error metric.
type Method string

// The two ICP variants. PointToPoint is the classic Besl-McKay form;
// PointToPlane is the metric used by the KinectFusion-style pipeline the
// paper's srec kernel follows (Keller et al. 2013), which converges in
// fewer iterations on structured indoor scenes.
const (
	PointToPoint Method = "point"
	PointToPlane Method = "plane"
)

// Config parameterizes a reconstruction run.
type Config struct {
	// Room is the synthetic scene; nil builds the default living-room
	// substitute for ICL-NUIM (see DESIGN.md).
	Room *pointcloud.RoomModel
	// Method selects the ICP error metric; empty means PointToPoint.
	Method Method
	// Cols/Rows set the depth-camera resolution per scan.
	Cols, Rows int
	// SensorNoise is the per-point Gaussian noise, meters.
	SensorNoise float64
	// InitYaw/InitTrans perturb the second scan's initial guess; ICP must
	// recover them.
	InitYaw   float64
	InitTrans geom.Vec3
	// Iterations caps ICP iterations.
	Iterations int
	// ConvergeTol stops early when the mean correspondence distance
	// improves by less than this fraction between iterations.
	ConvergeTol float64
	// VoxelSize downsamples both clouds before ICP; 0 disables.
	VoxelSize float64
	// MaxPairDist rejects correspondences farther than this, meters.
	MaxPairDist float64
	Seed        int64
}

// Validate reports every dimension, bound, and finiteness violation in the
// config.
func (c Config) Validate() error {
	f := check.New("srec")
	if c.Cols <= 1 {
		f.Addf("Cols must be > 1 (got %d)", c.Cols)
	}
	if c.Rows <= 1 {
		f.Addf("Rows must be > 1 (got %d)", c.Rows)
	}
	f.PositiveInt("Iterations", c.Iterations)
	f.NonNegative("SensorNoise", c.SensorNoise)
	f.Finite("InitYaw", c.InitYaw)
	f.Finite("InitTrans.X", c.InitTrans.X)
	f.Finite("InitTrans.Y", c.InitTrans.Y)
	f.Finite("InitTrans.Z", c.InitTrans.Z)
	f.NonNegative("ConvergeTol", c.ConvergeTol)
	f.NonNegative("VoxelSize", c.VoxelSize)
	f.NonNegative("MaxPairDist", c.MaxPairDist)
	return f.Err()
}

// DefaultConfig returns the paper-style configuration: two dense indoor
// scans, 30 ICP iterations.
func DefaultConfig() Config {
	return Config{
		Cols: 160, Rows: 120,
		SensorNoise: 0.005,
		InitYaw:     0.12,
		InitTrans:   geom.Vec3{X: 0.15, Y: -0.10, Z: 0.02},
		Iterations:  30,
		ConvergeTol: 1e-4,
		VoxelSize:   0,
		MaxPairDist: 1.0,
		Seed:        1,
	}
}

// Result reports reconstruction quality and workload statistics.
type Result struct {
	// RMSE is the final root-mean-square correspondence distance, meters.
	RMSE float64
	// RotationError is the residual rotation angle after alignment, radians.
	RotationError float64
	// TranslationError is the residual translation after alignment, meters.
	TranslationError float64
	// Iterations actually executed.
	Iterations int
	// SourcePoints and TargetPoints are the cloud sizes after downsampling.
	SourcePoints, TargetPoints int
	// NNQueries counts nearest-neighbor searches.
	NNQueries int64
	// DistCalls counts point-distance evaluations inside the k-d tree (the
	// irregular-access work unit).
	DistCalls int64
}

// Run executes the kernel. Harness phases: "correspondence" (k-d tree
// nearest-neighbor matching), "matrix" (cross-covariance, the 4×4
// eigenproblem, and transform composition), "apply" (transforming the source
// cloud).
func Run(ctx context.Context, cfg Config, prof *profile.Profile) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	room := cfg.Room
	if room == nil {
		room = pointcloud.NewRoom(6, 5, 2.8, 8, cfg.Seed)
	}
	r := rng.New(cfg.Seed)

	// Scan 1 (target): camera in one corner looking into the room.
	camA := pointcloud.Camera{
		Pose: pointcloud.FromEuler(0.6, 0, 0, geom.Vec3{X: 0.5, Y: 0.5, Z: 1.4}),
		HFov: 1.2, VFov: 0.9,
		Cols: cfg.Cols, Rows: cfg.Rows,
		MaxRange: 10,
	}
	// Scan 2 (source): the camera moved and rotated — this is the true
	// relative transform ICP must recover.
	camB := pointcloud.Camera{
		Pose: pointcloud.FromEuler(0.6+cfg.InitYaw, 0, 0, geom.Vec3{X: 0.5 + cfg.InitTrans.X, Y: 0.5 + cfg.InitTrans.Y, Z: 1.4 + cfg.InitTrans.Z}),
		HFov: 1.2, VFov: 0.9,
		Cols: cfg.Cols, Rows: cfg.Rows,
		MaxRange: 10,
	}

	target := room.Scan(camA)
	source := room.Scan(camB)
	target.AddNoise(r, cfg.SensorNoise)
	source.AddNoise(r, cfg.SensorNoise)
	if cfg.VoxelSize > 0 {
		target = target.VoxelDownsample(cfg.VoxelSize)
		source = source.VoxelDownsample(cfg.VoxelSize)
	}
	if source.Len() == 0 || target.Len() == 0 {
		return Result{}, errors.New("srec: empty scan; camera saw nothing")
	}

	res := Result{SourcePoints: source.Len(), TargetPoints: target.Len()}
	method := cfg.Method
	if method == "" {
		method = PointToPoint
	}

	prof.BeginROI()

	// Build the target index once; ICP queries it every iteration.
	prof.Begin("correspondence")
	tree := kdtree.New(3, nil)
	for i, p := range target.Points {
		tree.Insert([]float64{p.X, p.Y, p.Z}, i)
	}
	prof.End()

	// Point-to-plane needs target surface normals (oriented toward the
	// first camera).
	var normals []geom.Vec3
	if method == PointToPlane {
		prof.Begin("matrix")
		normals = target.EstimateNormals(12, camA.Pose.T)
		prof.End()
	}

	// Both clouds are in world coordinates, so the true alignment is the
	// identity; ICP starts from a deliberately wrong initial guess and must
	// iterate back. Accumulate the total correction in `total`.
	moving := source.Clone()
	initGuess := pointcloud.FromEuler(-2*cfg.InitYaw, 0, 0, cfg.InitTrans.Scale(-2))
	prof.Begin("apply")
	moving.TransformInPlace(initGuess)
	prof.End()
	total := initGuess

	maxD2 := cfg.MaxPairDist * cfg.MaxPairDist
	prevErr := math.Inf(1)
	q := make([]float64, 3)
	for iter := 0; iter < cfg.Iterations; iter++ {
		if err := ctx.Err(); err != nil {
			prof.EndROI()
			return res, err
		}
		res.Iterations = iter + 1

		// Trimmed ICP: once the alignment tightens, shrink the
		// correspondence gate toward 3x the current RMS error so
		// non-overlapping regions stop biasing the transform estimate.
		if !math.IsInf(prevErr, 1) {
			gate := 9 * prevErr // (3*rms)^2
			if floor := 0.05 * 0.05; gate < floor {
				gate = floor
			}
			if gate < maxD2 {
				maxD2 = gate
			}
		}

		// -- Correspondence: nearest target point per source point.
		prof.Begin("correspondence")
		pairs := make([]pair, 0, moving.Len())
		var errSum float64
		for i, p := range moving.Points {
			q[0], q[1], q[2] = p.X, p.Y, p.Z
			idx, d2, ok := tree.Nearest(q)
			res.NNQueries++
			if !ok || d2 > maxD2 {
				continue
			}
			pairs = append(pairs, pair{i, idx})
			errSum += d2
		}
		prof.End()
		if len(pairs) < 3 {
			break
		}
		meanErr := errSum / float64(len(pairs))

		// -- Transform estimation.
		prof.Begin("matrix")
		var step pointcloud.Rigid
		if method == PointToPlane {
			var perr error
			step, perr = planeStep(moving, target, normals, pairs)
			if perr != nil {
				// Degenerate normal system; fall back to point-to-point
				// for this iteration.
				step = pointStep(moving, target, pairs)
			}
		} else {
			step = pointStep(moving, target, pairs)
		}
		total = step.Compose(total)
		prof.End()

		// -- Apply the incremental transform to the moving cloud.
		prof.Begin("apply")
		moving.TransformInPlace(step)
		prof.End()
		prof.StepDone()

		if prevErr-meanErr < cfg.ConvergeTol*prevErr {
			prevErr = meanErr
			break
		}
		prevErr = meanErr
	}
	prof.EndROI()

	res.DistCalls = tree.DistCalls
	res.RMSE = math.Sqrt(math.Max(prevErr, 0))
	// The true alignment is identity, so `total` should be ≈ identity.
	res.RotationError = rotationAngle(total.R)
	res.TranslationError = total.T.Norm()
	return res, nil
}

// pair links a source (moving) point index to its matched target index.
type pair struct{ s, t int }

// pointStep computes the optimal rigid step for the matched pairs under the
// point-to-point metric via Horn's closed-form quaternion solution.
func pointStep(moving, target *pointcloud.Cloud, pairs []pair) pointcloud.Rigid {
	var cs, ct geom.Vec3
	for _, pr := range pairs {
		cs = cs.Add(moving.Points[pr.s])
		ct = ct.Add(target.Points[pr.t])
	}
	inv := 1 / float64(len(pairs))
	cs = cs.Scale(inv)
	ct = ct.Scale(inv)

	var s [9]float64 // cross-covariance Σ (p-cp)(q-cq)ᵀ
	for _, pr := range pairs {
		p := moving.Points[pr.s].Sub(cs)
		t := target.Points[pr.t].Sub(ct)
		s[0] += p.X * t.X
		s[1] += p.X * t.Y
		s[2] += p.X * t.Z
		s[3] += p.Y * t.X
		s[4] += p.Y * t.Y
		s[5] += p.Y * t.Z
		s[6] += p.Z * t.X
		s[7] += p.Z * t.Y
		s[8] += p.Z * t.Z
	}
	rot := hornRotation(s)
	trans := ct.Sub(applyR(rot, cs))
	return pointcloud.Rigid{R: rot, T: trans}
}

// planeStep computes the rigid step minimizing the point-to-plane error
// Σ((Rp + t − q)·n)² in its standard small-angle linearization: the unknown
// is x = (α, β, γ, tx, ty, tz) and each pair contributes the row
// [p×n ; n]·x = (q−p)·n to the 6×6 normal equations.
func planeStep(moving, target *pointcloud.Cloud, normals []geom.Vec3, pairs []pair) (pointcloud.Rigid, error) {
	ata := mat.New(6, 6)
	atb := make([]float64, 6)
	row := make([]float64, 6)
	for _, pr := range pairs {
		p := moving.Points[pr.s]
		q := target.Points[pr.t]
		n := normals[pr.t]
		c := p.Cross(n)
		row[0], row[1], row[2] = c.X, c.Y, c.Z
		row[3], row[4], row[5] = n.X, n.Y, n.Z
		b := q.Sub(p).Dot(n)
		for i := 0; i < 6; i++ {
			for j := i; j < 6; j++ {
				ata.Set(i, j, ata.At(i, j)+row[i]*row[j])
			}
			atb[i] += row[i] * b
		}
	}
	for i := 1; i < 6; i++ {
		for j := 0; j < i; j++ {
			ata.Set(i, j, ata.At(j, i))
		}
	}
	x, err := mat.Solve(ata, atb)
	if err != nil {
		return pointcloud.Rigid{}, err
	}
	// Rebuild a proper rotation from the small angles via Z-Y-X Euler
	// composition (valid in the small-angle regime the linearization
	// assumes).
	step := pointcloud.FromEuler(x[2], x[1], x[0], geom.Vec3{X: x[3], Y: x[4], Z: x[5]})
	return step, nil
}

// hornRotation returns the rotation maximizing alignment for the given
// cross-covariance (row-major), via the max eigenvector of Horn's 4×4
// symmetric matrix.
func hornRotation(s [9]float64) [9]float64 {
	sxx, sxy, sxz := s[0], s[1], s[2]
	syx, syy, syz := s[3], s[4], s[5]
	szx, szy, szz := s[6], s[7], s[8]
	n := mat.FromRows([][]float64{
		{sxx + syy + szz, syz - szy, szx - sxz, sxy - syx},
		{syz - szy, sxx - syy - szz, sxy + syx, szx + sxz},
		{szx - sxz, sxy + syx, -sxx + syy - szz, syz + szy},
		{sxy - syx, szx + sxz, syz + szy, -sxx - syy + szz},
	})
	qv := mat.MaxEigenVector(n)
	w, x, y, z := qv[0], qv[1], qv[2], qv[3]
	// Normalize defensively.
	nq := math.Sqrt(w*w + x*x + y*y + z*z)
	if nq == 0 {
		return [9]float64{1, 0, 0, 0, 1, 0, 0, 0, 1}
	}
	w, x, y, z = w/nq, x/nq, y/nq, z/nq
	return [9]float64{
		1 - 2*(y*y+z*z), 2 * (x*y - w*z), 2 * (x*z + w*y),
		2 * (x*y + w*z), 1 - 2*(x*x+z*z), 2 * (y*z - w*x),
		2 * (x*z - w*y), 2 * (y*z + w*x), 1 - 2*(x*x+y*y),
	}
}

func applyR(r [9]float64, v geom.Vec3) geom.Vec3 {
	return geom.Vec3{
		X: r[0]*v.X + r[1]*v.Y + r[2]*v.Z,
		Y: r[3]*v.X + r[4]*v.Y + r[5]*v.Z,
		Z: r[6]*v.X + r[7]*v.Y + r[8]*v.Z,
	}
}

// rotationAngle returns the angle of a rotation matrix, radians.
func rotationAngle(r [9]float64) float64 {
	tr := r[0] + r[4] + r[8]
	c := (tr - 1) / 2
	return math.Acos(geom.Clamp(c, -1, 1))
}
