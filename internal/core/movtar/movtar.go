// Package movtar implements kernel 06.movtar: planning to catch a moving
// target (paper §V.6). The environment is 2D with per-cell traversal costs;
// planning happens in 3D with time as the third dimension. The robot knows
// the target's trajectory and must intercept it at minimum cost.
//
// Before the search, a backward Dijkstra pass computes an environment-aware
// heuristic field ("accounting for obstacles"); the search itself is
// Weighted A* with the heuristic inflated by ε. The paper's evaluation
// highlights that the heuristic precomputation's share of end-to-end time
// is input-dependent: up to 62% on small environments, vanishing on large
// ones where the space-time search dominates — the size sweep in
// cmd/report and the benchmarks reproduce that crossover.
package movtar

import (
	"context"
	"errors"
	"math"

	"repro/internal/check"
	"repro/internal/grid"
	"repro/internal/maps"
	"repro/internal/pq"
	"repro/internal/profile"
	"repro/internal/search"
)

// Config parameterizes a pursuit run.
type Config struct {
	// Terrain is the cost landscape; nil builds the default synthetic
	// terrain of the given Size.
	Terrain *grid.CostGrid2D
	// Size is the square terrain edge used when Terrain is nil.
	Size int
	// Epsilon is the Weighted A* inflation factor (paper's ε).
	Epsilon float64
	// TargetPeriod is how many robot steps pass per target step; 2 makes
	// the robot twice as fast as the target, guaranteeing interception is
	// possible.
	TargetPeriod int
	// MaxTime caps the planning horizon in robot steps (0 = auto).
	MaxTime int
	Seed    int64
}

// Validate reports every bound and finiteness violation in the config.
func (c Config) Validate() error {
	f := check.New("movtar")
	if math.IsNaN(c.Epsilon) || math.IsInf(c.Epsilon, 0) || c.Epsilon < 1 {
		f.Addf("Epsilon must be a finite inflation >= 1 (got %v)", c.Epsilon)
	}
	f.NonNegativeInt("Size", c.Size)
	f.NonNegativeInt("TargetPeriod", c.TargetPeriod)
	f.NonNegativeInt("MaxTime", c.MaxTime)
	return f.Err()
}

// DefaultConfig returns a mid-sized pursuit problem.
func DefaultConfig() Config {
	return Config{
		Size:         256,
		Epsilon:      2.0,
		TargetPeriod: 2,
		Seed:         1,
	}
}

// Result reports the pursuit outcome and workload statistics.
type Result struct {
	Found bool
	// CatchTime is the interception time in robot steps.
	CatchTime int
	// PathCost is the accumulated traversal cost of the robot's path.
	PathCost float64
	// Expanded counts space-time states expanded by WA*.
	Expanded int
	// HeuristicCells counts cells settled by the backward Dijkstra pass.
	HeuristicCells int
	// TargetPathLen is the length of the target's trajectory in cells.
	TargetPathLen int
}

// Run executes the kernel. Harness phases: "heuristic" (backward Dijkstra
// field) and "search" (space-time Weighted A*). A cancelled ctx aborts
// either phase promptly, returning ctx.Err().
func Run(ctx context.Context, cfg Config, prof *profile.Profile) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	terrain := cfg.Terrain
	if terrain == nil {
		size := cfg.Size
		if size <= 0 {
			size = 256
		}
		terrain = maps.MovtarTerrain(size, size, cfg.Seed)
	}
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	period := cfg.TargetPeriod
	if period <= 0 {
		period = 2
	}
	w, h := terrain.W, terrain.H

	// The target walks a minimum-cost route along the far side of the map
	// (away from the robot's corner), computed on the same terrain, then
	// waits at its destination. The robot must chase across the map, so
	// interception effort scales with the environment.
	cspace := &search.CostGrid2DSpace{C: terrain}
	tStart := passableNear(terrain, w-2, 1)
	tGoal := passableNear(terrain, w-2, h-2)
	tr, err := search.Solve(search.Problem{
		Space: cspace,
		Start: cspace.ID(tStart[0], tStart[1]),
		Goal:  cspace.ID(tGoal[0], tGoal[1]),
	})
	if err != nil {
		return Result{}, errors.New("movtar: could not build a target trajectory")
	}
	targetPath := tr.Path

	robotStart := passableNear(terrain, 1, 1)

	maxTime := cfg.MaxTime
	if maxTime <= 0 {
		// The robot is `period`× faster than the target, so chasing it to
		// the end of its route plus a map crossing always suffices.
		maxTime = period*len(targetPath) + (w + h)
	}

	res := Result{TargetPathLen: len(targetPath)}

	prof.BeginROI()

	// --- Backward Dijkstra heuristic: minimum traversal cost from every
	// cell to any cell the target ever visits (multi-source).
	prof.Begin("heuristic")
	hField := make([]float64, w*h)
	for i := range hField {
		hField[i] = math.Inf(1)
	}
	open := pq.NewIndexedHeap(1024)
	for _, id := range targetPath {
		hField[id] = 0
		open.Update(id, 0)
	}
	for open.Len() > 0 {
		if res.HeuristicCells%4096 == 0 {
			if err := ctx.Err(); err != nil {
				prof.End()
				prof.EndROI()
				return res, err
			}
		}
		id, d := open.Pop()
		if d > hField[id] {
			continue
		}
		res.HeuristicCells++
		cspace.Neighbors(id, func(to int, cost float64) {
			if nd := d + cost; nd < hField[to] {
				hField[to] = nd
				open.Update(to, nd)
			}
		})
	}
	prof.End()

	if math.IsInf(hField[cspace.ID(robotStart[0], robotStart[1])], 1) {
		prof.EndROI()
		return res, errors.New("movtar: robot start cannot reach the target trajectory")
	}

	// --- Space-time Weighted A*: state = (x, y, t). The robot moves
	// 8-connected or waits; the target advances every `period` steps.
	targetAt := func(t int) int {
		i := t / period
		if i >= len(targetPath) {
			i = len(targetPath) - 1
		}
		return targetPath[i]
	}
	space := &pursuitSpace{terrain: terrain, maxTime: maxTime}
	// Dense search bookkeeping is dramatically faster but needs one slot
	// per space-time state; fall back to sparse maps on big problems.
	// The dense book commits only the pages the search touches, so the
	// threshold guards address-space use, not resident memory.
	if states := w * h * maxTime; states <= 64<<20 {
		space.states = states
	}
	heur := func(id int) float64 {
		cell := id % (w * h)
		return hField[cell]
	}
	isGoal := func(id int) bool {
		t := id / (w * h)
		return id%(w*h) == targetAt(t)
	}

	prof.Begin("search")
	sr, serr := search.Solve(search.Problem{
		Space:  space,
		Start:  cspace.ID(robotStart[0], robotStart[1]), // t = 0
		IsGoal: isGoal,
		H:      heur,
		Weight: cfg.Epsilon,
		Ctx:    ctx,
	})
	prof.End()
	prof.StepDone()
	prof.EndROI()

	res.Found = sr.Found
	res.Expanded = sr.Expanded
	if sr.Found {
		res.PathCost = sr.Cost
		res.CatchTime = sr.Path[len(sr.Path)-1] / (w * h)
	}
	if serr != nil {
		return res, serr
	}
	return res, nil
}

// pursuitSpace is the space-time graph: id = t*(W*H) + y*W + x.
type pursuitSpace struct {
	terrain *grid.CostGrid2D
	maxTime int
	states  int // dense state count, 0 = use sparse bookkeeping
}

// NumStates implements search.Sized when the space-time volume fits in
// dense bookkeeping.
func (s *pursuitSpace) NumStates() int { return s.states }

// Neighbors implements search.Space. Waiting costs the cell's own traversal
// cost (time is never free), moves cost step length times the destination
// cell cost.
func (s *pursuitSpace) Neighbors(id int, yield func(to int, cost float64)) {
	w, h := s.terrain.W, s.terrain.H
	plane := w * h
	cell := id % plane
	t := id / plane
	if t+1 >= s.maxTime {
		return
	}
	x, y := cell%w, cell/w
	next := (t + 1) * plane

	// Wait in place.
	yield(next+cell, s.terrain.Cost(x, y))

	for dy := -1; dy <= 1; dy++ {
		for dx := -1; dx <= 1; dx++ {
			if dx == 0 && dy == 0 {
				continue
			}
			nx, ny := x+dx, y+dy
			c := s.terrain.Cost(nx, ny)
			if math.IsInf(c, 1) {
				continue
			}
			step := 1.0
			if dx != 0 && dy != 0 {
				step = math.Sqrt2
			}
			yield(next+ny*w+nx, step*c)
		}
	}
}

func passableNear(c *grid.CostGrid2D, x, y int) [2]int {
	for r := 0; r < c.W+c.H; r++ {
		for dy := -r; dy <= r; dy++ {
			for dx := -r; dx <= r; dx++ {
				nx, ny := x+dx, y+dy
				if c.InBounds(nx, ny) && c.Passable(nx, ny) {
					return [2]int{nx, ny}
				}
			}
		}
	}
	panic("movtar: no passable cell")
}
