package movtar

import (
	"context"
	"testing"

	"repro/internal/grid"
	"repro/internal/profile"
)

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Size = 64
	return cfg
}

func TestCatchesTarget(t *testing.T) {
	res, err := Run(context.Background(), smallConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatal("robot never caught the target")
	}
	if res.CatchTime <= 0 || res.PathCost <= 0 {
		t.Fatalf("catch time %d, cost %v", res.CatchTime, res.PathCost)
	}
	if res.HeuristicCells == 0 {
		t.Fatal("backward Dijkstra settled no cells")
	}
}

func TestProfileHasBothPhases(t *testing.T) {
	p := profile.New()
	if _, err := Run(context.Background(), smallConfig(), p); err != nil {
		t.Fatal(err)
	}
	rep := p.Snapshot()
	if rep.Fraction("heuristic") <= 0 || rep.Fraction("search") <= 0 {
		t.Fatalf("phases: heuristic=%.3f search=%.3f",
			rep.Fraction("heuristic"), rep.Fraction("search"))
	}
}

func TestHeuristicShareGrowsOnSmallerMaps(t *testing.T) {
	share := func(size int) float64 {
		var total, heur float64
		for seed := int64(1); seed <= 3; seed++ {
			cfg := DefaultConfig()
			cfg.Size = size
			cfg.Seed = seed
			p := profile.New()
			if _, err := Run(context.Background(), cfg, p); err != nil {
				t.Fatalf("size %d seed %d: %v", size, seed, err)
			}
			rep := p.Snapshot()
			total++
			heur += rep.Fraction("heuristic")
		}
		return heur / total
	}
	small := share(32)
	large := share(128)
	// The paper's §V.6 claim: heuristic contribution is input-dependent and
	// grows as the environment shrinks.
	if small <= large {
		t.Fatalf("heuristic share small=%.3f !> large=%.3f", small, large)
	}
}

func TestEpsilonSpeedsSearch(t *testing.T) {
	strict := smallConfig()
	strict.Epsilon = 1.0
	loose := smallConfig()
	loose.Epsilon = 3.0
	a, err1 := Run(context.Background(), strict, nil)
	b, err2 := Run(context.Background(), loose, nil)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if b.Expanded > a.Expanded {
		t.Fatalf("ε=3 expanded more states than ε=1 (%d > %d)", b.Expanded, a.Expanded)
	}
	// Inflation can only trade cost upward.
	if b.PathCost < a.PathCost-1e-9 {
		t.Fatal("inflated search found a cheaper path than admissible search")
	}
}

func TestCustomTerrain(t *testing.T) {
	terrain := grid.NewCostGrid2D(48, 48, 1)
	cfg := DefaultConfig()
	cfg.Terrain = terrain
	res, err := Run(context.Background(), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatal("uniform terrain pursuit failed")
	}
}

func TestInvalidEpsilon(t *testing.T) {
	cfg := smallConfig()
	cfg.Epsilon = 0.5
	if _, err := Run(context.Background(), cfg, nil); err == nil {
		t.Fatal("epsilon < 1 accepted")
	}
}

func TestDeterminism(t *testing.T) {
	a, _ := Run(context.Background(), smallConfig(), nil)
	b, _ := Run(context.Background(), smallConfig(), nil)
	if a.CatchTime != b.CatchTime || a.Expanded != b.Expanded {
		t.Fatal("same seed diverged")
	}
}

func TestMaxTimeTooShortFails(t *testing.T) {
	cfg := smallConfig()
	cfg.MaxTime = 3 // cannot possibly reach the target
	res, err := Run(context.Background(), cfg, nil)
	if err == nil && res.Found {
		t.Fatal("caught the target within an impossible horizon")
	}
}
