// Package geom provides the 2D/3D geometric primitives shared by the
// perception, planning, and control kernels: vectors, planar poses, angle
// arithmetic, and segment/box intersection predicates used by the collision
// substrates.
package geom

import "math"

// Vec2 is a point or direction in the plane.
type Vec2 struct {
	X, Y float64
}

// Add returns v + w.
func (v Vec2) Add(w Vec2) Vec2 { return Vec2{v.X + w.X, v.Y + w.Y} }

// Sub returns v - w.
func (v Vec2) Sub(w Vec2) Vec2 { return Vec2{v.X - w.X, v.Y - w.Y} }

// Scale returns s*v.
func (v Vec2) Scale(s float64) Vec2 { return Vec2{s * v.X, s * v.Y} }

// Dot returns the dot product v·w.
func (v Vec2) Dot(w Vec2) float64 { return v.X*w.X + v.Y*w.Y }

// Cross returns the z component of the 3D cross product v×w.
func (v Vec2) Cross(w Vec2) float64 { return v.X*w.Y - v.Y*w.X }

// Norm returns the Euclidean length of v.
func (v Vec2) Norm() float64 { return math.Hypot(v.X, v.Y) }

// Norm2 returns the squared Euclidean length of v.
func (v Vec2) Norm2() float64 { return v.X*v.X + v.Y*v.Y }

// Dist returns the Euclidean distance between v and w.
func (v Vec2) Dist(w Vec2) float64 { return v.Sub(w).Norm() }

// Normalize returns v scaled to unit length; the zero vector is returned
// unchanged.
func (v Vec2) Normalize() Vec2 {
	n := v.Norm()
	if n == 0 {
		return v
	}
	return v.Scale(1 / n)
}

// Rotate returns v rotated by theta radians counter-clockwise.
func (v Vec2) Rotate(theta float64) Vec2 {
	s, c := math.Sincos(theta)
	return Vec2{c*v.X - s*v.Y, s*v.X + c*v.Y}
}

// Angle returns the heading of v in radians, in (-pi, pi].
func (v Vec2) Angle() float64 { return math.Atan2(v.Y, v.X) }

// Vec3 is a point or direction in 3D space.
type Vec3 struct {
	X, Y, Z float64
}

// Add returns v + w.
func (v Vec3) Add(w Vec3) Vec3 { return Vec3{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v - w.
func (v Vec3) Sub(w Vec3) Vec3 { return Vec3{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Scale returns s*v.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{s * v.X, s * v.Y, s * v.Z} }

// Dot returns the dot product v·w.
func (v Vec3) Dot(w Vec3) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Cross returns the cross product v×w.
func (v Vec3) Cross(w Vec3) Vec3 {
	return Vec3{
		v.Y*w.Z - v.Z*w.Y,
		v.Z*w.X - v.X*w.Z,
		v.X*w.Y - v.Y*w.X,
	}
}

// Norm returns the Euclidean length of v.
func (v Vec3) Norm() float64 { return math.Sqrt(v.Norm2()) }

// Norm2 returns the squared Euclidean length of v.
func (v Vec3) Norm2() float64 { return v.X*v.X + v.Y*v.Y + v.Z*v.Z }

// Dist returns the Euclidean distance between v and w.
func (v Vec3) Dist(w Vec3) float64 { return v.Sub(w).Norm() }

// Normalize returns v scaled to unit length; the zero vector is returned
// unchanged.
func (v Vec3) Normalize() Vec3 {
	n := v.Norm()
	if n == 0 {
		return v
	}
	return v.Scale(1 / n)
}

// Pose2 is a planar robot pose: position plus heading.
type Pose2 struct {
	X, Y, Theta float64
}

// Position returns the translational part of the pose.
func (p Pose2) Position() Vec2 { return Vec2{p.X, p.Y} }

// Transform maps a point expressed in the pose's local frame to the world
// frame.
func (p Pose2) Transform(local Vec2) Vec2 {
	s, c := math.Sincos(p.Theta)
	return Vec2{
		p.X + c*local.X - s*local.Y,
		p.Y + s*local.X + c*local.Y,
	}
}

// Compose returns the pose obtained by applying q in p's frame (p ∘ q).
func (p Pose2) Compose(q Pose2) Pose2 {
	w := p.Transform(Vec2{q.X, q.Y})
	return Pose2{w.X, w.Y, NormalizeAngle(p.Theta + q.Theta)}
}

// NormalizeAngle wraps an angle to (-pi, pi].
func NormalizeAngle(a float64) float64 {
	a = math.Mod(a, 2*math.Pi)
	if a <= -math.Pi {
		a += 2 * math.Pi
	} else if a > math.Pi {
		a -= 2 * math.Pi
	}
	return a
}

// AngleDiff returns the smallest signed difference a-b, wrapped to (-pi, pi].
func AngleDiff(a, b float64) float64 { return NormalizeAngle(a - b) }

// Segment is a 2D line segment between A and B.
type Segment struct {
	A, B Vec2
}

// Length returns the segment's Euclidean length.
func (s Segment) Length() float64 { return s.A.Dist(s.B) }

// Intersects reports whether segments s and t intersect (including
// end-point touching and collinear overlap).
func (s Segment) Intersects(t Segment) bool {
	d1 := direction(t.A, t.B, s.A)
	d2 := direction(t.A, t.B, s.B)
	d3 := direction(s.A, s.B, t.A)
	d4 := direction(s.A, s.B, t.B)
	if ((d1 > 0 && d2 < 0) || (d1 < 0 && d2 > 0)) &&
		((d3 > 0 && d4 < 0) || (d3 < 0 && d4 > 0)) {
		return true
	}
	switch {
	case d1 == 0 && onSegment(t.A, t.B, s.A):
		return true
	case d2 == 0 && onSegment(t.A, t.B, s.B):
		return true
	case d3 == 0 && onSegment(s.A, s.B, t.A):
		return true
	case d4 == 0 && onSegment(s.A, s.B, t.B):
		return true
	}
	return false
}

func direction(a, b, c Vec2) float64 { return c.Sub(a).Cross(b.Sub(a)) }

func onSegment(a, b, p Vec2) bool {
	return math.Min(a.X, b.X) <= p.X && p.X <= math.Max(a.X, b.X) &&
		math.Min(a.Y, b.Y) <= p.Y && p.Y <= math.Max(a.Y, b.Y)
}

// DistPointSegment returns the Euclidean distance from point p to segment s.
func DistPointSegment(p Vec2, s Segment) float64 {
	ab := s.B.Sub(s.A)
	denom := ab.Norm2()
	if denom == 0 {
		return p.Dist(s.A)
	}
	t := p.Sub(s.A).Dot(ab) / denom
	if t < 0 {
		t = 0
	} else if t > 1 {
		t = 1
	}
	return p.Dist(s.A.Add(ab.Scale(t)))
}

// AABB is a 2D axis-aligned bounding box.
type AABB struct {
	Min, Max Vec2
}

// Contains reports whether p lies inside the box (boundary inclusive).
func (b AABB) Contains(p Vec2) bool {
	return p.X >= b.Min.X && p.X <= b.Max.X && p.Y >= b.Min.Y && p.Y <= b.Max.Y
}

// IntersectsSegment reports whether segment s touches the box. The test
// combines endpoint containment with edge-by-edge intersection, which is
// exact for the axis-aligned case.
func (b AABB) IntersectsSegment(s Segment) bool {
	if b.Contains(s.A) || b.Contains(s.B) {
		return true
	}
	corners := [4]Vec2{
		b.Min,
		{b.Max.X, b.Min.Y},
		b.Max,
		{b.Min.X, b.Max.Y},
	}
	for i := 0; i < 4; i++ {
		edge := Segment{corners[i], corners[(i+1)%4]}
		if s.Intersects(edge) {
			return true
		}
	}
	return false
}

// Circle is a disc with center C and radius R.
type Circle struct {
	C Vec2
	R float64
}

// Contains reports whether p lies inside the circle (boundary inclusive).
func (c Circle) Contains(p Vec2) bool { return c.C.Dist(p) <= c.R }

// IntersectsSegment reports whether segment s passes through the circle.
func (c Circle) IntersectsSegment(s Segment) bool {
	return DistPointSegment(c.C, s) <= c.R
}

// Lerp returns the linear interpolation a + t*(b-a).
func Lerp(a, b, t float64) float64 { return a + t*(b-a) }

// Clamp limits x to [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
