package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestVec2Basics(t *testing.T) {
	v := Vec2{3, 4}
	if v.Norm() != 5 {
		t.Fatalf("Norm = %v, want 5", v.Norm())
	}
	if v.Norm2() != 25 {
		t.Fatalf("Norm2 = %v, want 25", v.Norm2())
	}
	if got := v.Add(Vec2{1, -1}); got != (Vec2{4, 3}) {
		t.Fatalf("Add = %v", got)
	}
	if got := v.Scale(2); got != (Vec2{6, 8}) {
		t.Fatalf("Scale = %v", got)
	}
	if got := v.Dot(Vec2{1, 1}); got != 7 {
		t.Fatalf("Dot = %v", got)
	}
	if got := (Vec2{1, 0}).Cross(Vec2{0, 1}); got != 1 {
		t.Fatalf("Cross = %v", got)
	}
}

func TestRotatePreservesNorm(t *testing.T) {
	if err := quick.Check(func(x, y, theta float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) || math.IsNaN(y) || math.IsInf(y, 0) ||
			math.IsNaN(theta) || math.IsInf(theta, 0) {
			return true
		}
		x = math.Mod(x, 1e6)
		y = math.Mod(y, 1e6)
		v := Vec2{x, y}
		r := v.Rotate(math.Mod(theta, 10))
		return almostEq(v.Norm(), r.Norm(), 1e-6*(1+v.Norm()))
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRotateQuarterTurn(t *testing.T) {
	r := Vec2{1, 0}.Rotate(math.Pi / 2)
	if !almostEq(r.X, 0, 1e-12) || !almostEq(r.Y, 1, 1e-12) {
		t.Fatalf("rotate(e_x, 90°) = %v", r)
	}
}

func TestNormalizeAngle(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0, 0},
		{math.Pi, math.Pi},
		{-math.Pi, math.Pi},
		{3 * math.Pi, math.Pi},
		{2 * math.Pi, 0},
		{-math.Pi / 2, -math.Pi / 2},
	}
	for _, c := range cases {
		if got := NormalizeAngle(c.in); !almostEq(got, c.want, 1e-12) {
			t.Errorf("NormalizeAngle(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestNormalizeAngleRangeProperty(t *testing.T) {
	if err := quick.Check(func(a float64) bool {
		if math.IsNaN(a) || math.IsInf(a, 0) {
			return true
		}
		a = math.Mod(a, 1e4)
		n := NormalizeAngle(a)
		if n <= -math.Pi || n > math.Pi {
			return false
		}
		// The wrapped angle must be equivalent mod 2π.
		d := math.Mod(a-n, 2*math.Pi)
		return almostEq(d, 0, 1e-6) || almostEq(math.Abs(d), 2*math.Pi, 1e-6)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPose2Transform(t *testing.T) {
	p := Pose2{X: 1, Y: 2, Theta: math.Pi / 2}
	w := p.Transform(Vec2{1, 0}) // forward in local frame = +Y in world
	if !almostEq(w.X, 1, 1e-12) || !almostEq(w.Y, 3, 1e-12) {
		t.Fatalf("Transform = %v", w)
	}
}

func TestPose2ComposeIdentity(t *testing.T) {
	if err := quick.Check(func(x, y, th float64) bool {
		if math.IsNaN(x+y+th) || math.IsInf(x+y+th, 0) {
			return true
		}
		p := Pose2{math.Mod(x, 100), math.Mod(y, 100), NormalizeAngle(th)}
		q := p.Compose(Pose2{})
		return almostEq(p.X, q.X, 1e-9) && almostEq(p.Y, q.Y, 1e-9) &&
			almostEq(AngleDiff(p.Theta, q.Theta), 0, 1e-9)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSegmentIntersects(t *testing.T) {
	cross := Segment{Vec2{0, 0}, Vec2{2, 2}}
	if !cross.Intersects(Segment{Vec2{0, 2}, Vec2{2, 0}}) {
		t.Fatal("crossing segments reported disjoint")
	}
	if cross.Intersects(Segment{Vec2{3, 0}, Vec2{4, 0}}) {
		t.Fatal("disjoint segments reported crossing")
	}
	// Touching at an endpoint counts.
	if !cross.Intersects(Segment{Vec2{2, 2}, Vec2{3, 3}}) {
		t.Fatal("touching segments reported disjoint")
	}
	// Collinear overlap counts.
	if !cross.Intersects(Segment{Vec2{1, 1}, Vec2{3, 3}}) {
		t.Fatal("collinear overlapping segments reported disjoint")
	}
}

func TestDistPointSegment(t *testing.T) {
	s := Segment{Vec2{0, 0}, Vec2{10, 0}}
	if d := DistPointSegment(Vec2{5, 3}, s); !almostEq(d, 3, 1e-12) {
		t.Fatalf("mid distance = %v", d)
	}
	if d := DistPointSegment(Vec2{-4, 3}, s); !almostEq(d, 5, 1e-12) {
		t.Fatalf("endpoint distance = %v", d)
	}
	// Degenerate segment.
	p := Segment{Vec2{1, 1}, Vec2{1, 1}}
	if d := DistPointSegment(Vec2{4, 5}, p); !almostEq(d, 5, 1e-12) {
		t.Fatalf("degenerate distance = %v", d)
	}
}

func TestAABBSegment(t *testing.T) {
	b := AABB{Vec2{0, 0}, Vec2{1, 1}}
	if !b.IntersectsSegment(Segment{Vec2{-1, 0.5}, Vec2{2, 0.5}}) {
		t.Fatal("through segment missed")
	}
	if !b.IntersectsSegment(Segment{Vec2{0.5, 0.5}, Vec2{0.6, 0.6}}) {
		t.Fatal("contained segment missed")
	}
	if b.IntersectsSegment(Segment{Vec2{2, 2}, Vec2{3, 3}}) {
		t.Fatal("distant segment hit")
	}
}

func TestCircleSegment(t *testing.T) {
	c := Circle{Vec2{0, 0}, 1}
	if !c.IntersectsSegment(Segment{Vec2{-2, 0}, Vec2{2, 0}}) {
		t.Fatal("diameter segment missed")
	}
	if c.IntersectsSegment(Segment{Vec2{-2, 1.5}, Vec2{2, 1.5}}) {
		t.Fatal("tangent-above segment hit")
	}
}

func TestVec3CrossOrthogonal(t *testing.T) {
	if err := quick.Check(func(ax, ay, az, bx, by, bz float64) bool {
		bad := func(f float64) bool { return math.IsNaN(f) || math.IsInf(f, 0) }
		if bad(ax) || bad(ay) || bad(az) || bad(bx) || bad(by) || bad(bz) {
			return true
		}
		a := Vec3{math.Mod(ax, 100), math.Mod(ay, 100), math.Mod(az, 100)}
		b := Vec3{math.Mod(bx, 100), math.Mod(by, 100), math.Mod(bz, 100)}
		c := a.Cross(b)
		tol := 1e-6 * (1 + a.Norm()*b.Norm())
		return almostEq(c.Dot(a), 0, tol) && almostEq(c.Dot(b), 0, tol)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestClampLerp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Fatal("Clamp broken")
	}
	if Lerp(2, 4, 0.5) != 3 {
		t.Fatal("Lerp broken")
	}
}

func TestNormalizeZeroVec(t *testing.T) {
	if (Vec2{}).Normalize() != (Vec2{}) {
		t.Fatal("zero Vec2 normalize changed value")
	}
	if (Vec3{}).Normalize() != (Vec3{}) {
		t.Fatal("zero Vec3 normalize changed value")
	}
}
