package stats

import (
	"math"
	"testing"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// Known-answer exact Mann-Whitney p-values: for tie-free samples the
// two-sided p is 2 * P(U ≤ min(u, nm-u)) under the uniform permutation
// distribution, so fully-separated samples of sizes (n, n) give
// p = 2 / C(2n, n).
func TestMannWhitneyExactKnownAnswers(t *testing.T) {
	cases := []struct {
		name string
		x, y []float64
		want float64
	}{
		// U = 0, C(6,3) = 20 → p = 2/20.
		{"separated n3", []float64{1, 2, 3}, []float64{4, 5, 6}, 0.1},
		// U = 0, C(10,5) = 252 → p = 2/252.
		{"separated n5", []float64{1, 2, 3, 4, 5}, []float64{6, 7, 8, 9, 10}, 2.0 / 252},
		// Reversed direction must give the same two-sided p.
		{"separated n5 reversed", []float64{6, 7, 8, 9, 10}, []float64{1, 2, 3, 4, 5}, 2.0 / 252},
		// Perfect interleaving carries almost no evidence: x = {1,3,5},
		// y = {2,4,6} has U = 3 (of max 9); P(U ≤ 3) = 7/20 → p = 0.7.
		{"interleaved", []float64{1, 3, 5}, []float64{2, 4, 6}, 0.7},
		// n=1 vs m=1 can never flag.
		{"n1 vs m1", []float64{1}, []float64{100}, 1},
		// n=1 vs m=5, fully separated: P(U ≤ 0) = 1/6 → p = 1/3. Still
		// far above any sane alpha — a lone sample cannot flag.
		{"n1 vs m5", []float64{0}, []float64{1, 2, 3, 4, 5}, 2.0 / 6},
	}
	for _, tc := range cases {
		p, err := MannWhitney(tc.x, tc.y)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if !almost(p, tc.want, 1e-12) {
			t.Errorf("%s: p = %v, want %v", tc.name, p, tc.want)
		}
	}
}

func TestMannWhitneyIdenticalSamples(t *testing.T) {
	// All values tied across both sides: zero variance in the rank sum,
	// p must be exactly 1 (tie-corrected approximation path).
	p, err := MannWhitney([]float64{5, 5, 5, 5}, []float64{5, 5, 5, 5})
	if err != nil {
		t.Fatal(err)
	}
	if p != 1 {
		t.Fatalf("identical samples: p = %v, want 1", p)
	}
}

func TestMannWhitneyTiesApproximation(t *testing.T) {
	// Tied samples route through the normal approximation; a clear
	// separation must still be significant and symmetric.
	x := []float64{1, 1, 2, 2, 3, 3, 4, 4}
	y := []float64{10, 10, 11, 11, 12, 12, 13, 13}
	p, err := MannWhitney(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if p >= 0.01 {
		t.Fatalf("separated tied samples: p = %v, want < 0.01", p)
	}
	p2, err := MannWhitney(y, x)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(p, p2, 1e-12) {
		t.Fatalf("two-sided p not symmetric: %v vs %v", p, p2)
	}
}

func TestMannWhitneyLargeSamplesApproximation(t *testing.T) {
	// Above exactLimit the approximation path runs; a one-σ-ish shift over
	// n=30 per side is decisively significant, an identical pair is not.
	var x, y, z []float64
	for i := 0; i < 30; i++ {
		v := float64(i % 7)
		x = append(x, 100+v)
		y = append(y, 110+v)
		z = append(z, 100+v)
	}
	p, err := MannWhitney(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if p >= 1e-6 {
		t.Fatalf("shifted n=30: p = %v, want < 1e-6", p)
	}
	p, err = MannWhitney(x, z)
	if err != nil {
		t.Fatal(err)
	}
	if p < 0.9 {
		t.Fatalf("identical n=30: p = %v, want ≈ 1", p)
	}
}

func TestMannWhitneyEmpty(t *testing.T) {
	if _, err := MannWhitney(nil, []float64{1}); err == nil {
		t.Fatal("empty x accepted")
	}
	if _, err := MannWhitney([]float64{1}, nil); err == nil {
		t.Fatal("empty y accepted")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2})
	if s.N != 4 || s.Mean != 2.5 || s.Median != 2.5 || s.Min != 1 || s.Max != 4 {
		t.Fatalf("summary = %+v", s)
	}
	// Sample stddev of {1,2,3,4} = sqrt(5/3).
	if !almost(s.Stddev, math.Sqrt(5.0/3.0), 1e-12) {
		t.Fatalf("stddev = %v", s.Stddev)
	}
	odd := Summarize([]float64{9, 7, 8})
	if odd.Median != 8 {
		t.Fatalf("odd median = %v", odd.Median)
	}
}

func TestCompareFlagsRealRegression(t *testing.T) {
	old := []float64{100, 101, 99, 100, 102}
	slow := []float64{150, 151, 149, 150, 152}
	c, err := Compare(old, slow, Options{Threshold: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !c.Significant {
		t.Fatalf("50%% slowdown not significant: %+v", c)
	}
	if !almost(c.Delta, 50, 0.5) {
		t.Fatalf("delta = %v, want ≈ +50", c.Delta)
	}
	if c.P >= 0.05 {
		t.Fatalf("p = %v, want < 0.05", c.P)
	}
	if c.CI <= 0 {
		t.Fatalf("CI = %v, want > 0", c.CI)
	}
}

func TestCompareAAIsNotSignificant(t *testing.T) {
	// A/A: same distribution, realistic jitter. Must not flag.
	a := []float64{100, 103, 98, 101, 99}
	b := []float64{101, 99, 102, 100, 98}
	c, err := Compare(a, b, Options{Threshold: 5})
	if err != nil {
		t.Fatal(err)
	}
	if c.Significant {
		t.Fatalf("A/A comparison flagged: %+v", c)
	}
}

func TestCompareThresholdEdges(t *testing.T) {
	// A perfectly consistent +4% shift: statistically significant, but the
	// noise threshold decides whether it flags.
	old := []float64{100, 100, 100, 100, 100, 101, 101, 101, 101, 101}
	new := []float64{104, 104, 104, 104, 104, 105, 105, 105, 105, 105}
	c, err := Compare(old, new, Options{Threshold: 5})
	if err != nil {
		t.Fatal(err)
	}
	if c.P >= 0.05 {
		t.Fatalf("consistent shift should have small p, got %v", c.P)
	}
	if c.Significant {
		t.Fatalf("+%.1f%% delta flagged despite 5%% threshold", c.Delta)
	}
	// Threshold exactly at the delta: |Delta| ≥ threshold flags.
	c, err = Compare(old, new, Options{Threshold: c.Delta})
	if err != nil {
		t.Fatal(err)
	}
	if !c.Significant {
		t.Fatalf("delta exactly at threshold should flag: %+v", c)
	}
	// Threshold 0 means alpha alone decides.
	c, err = Compare(old, new, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !c.Significant {
		t.Fatalf("threshold 0 should flag a significant shift: %+v", c)
	}
}

func TestCompareMismatchedSampleCounts(t *testing.T) {
	old := []float64{100, 101, 99}
	new := []float64{200, 201, 199, 200, 202, 198, 201, 199}
	c, err := Compare(old, new, Options{Threshold: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !c.Significant {
		t.Fatalf("n=3 vs m=8 doubling not significant: %+v", c)
	}
	if c.Old.N != 3 || c.New.N != 8 {
		t.Fatalf("sample counts = %d/%d", c.Old.N, c.New.N)
	}
}

func TestCompareSingleSamplesCannotFlag(t *testing.T) {
	// The v1-snapshot case: one sample per side. However large the delta,
	// it must never reach significance.
	c, err := Compare([]float64{100}, []float64{10000}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if c.Significant {
		t.Fatalf("n=1 vs n=1 flagged: %+v", c)
	}
	if c.P != 1 {
		t.Fatalf("n=1 vs n=1 p = %v, want 1", c.P)
	}
	if c.CI != 0 {
		t.Fatalf("n=1 CI = %v, want 0", c.CI)
	}
}

func TestCompareEmpty(t *testing.T) {
	if _, err := Compare(nil, []float64{1}, Options{}); err == nil {
		t.Fatal("empty old accepted")
	}
}

func TestCompareNegativeDeltaImprovement(t *testing.T) {
	old := []float64{200, 201, 199, 200, 202}
	new := []float64{100, 101, 99, 100, 102}
	c, err := Compare(old, new, Options{Threshold: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !c.Significant || c.Delta >= 0 {
		t.Fatalf("2x speedup should flag with negative delta: %+v", c)
	}
}
