// Package stats is the statistical substrate of the perf ledger: it decides
// whether two sets of repeated benchmark samples differ by more than noise.
//
// The suite's perf claims rest on latency measurements, and a single
// `go test -bench` run is an n=1 sample of a noisy distribution (scheduler
// jitter, cache state, thermal throttling). Comparing two n=1 numbers and
// calling the difference a speedup is exactly the methodological sin
// RT-Bench and RobotPerf warn against. This package implements the
// benchstat-style discipline instead: collect repeated samples per
// benchmark (`-count`), test the two sample sets with the Mann-Whitney U
// rank test (distribution-free, robust to the long right tails benchmark
// latencies have), and only call a delta real when it is both statistically
// significant (p < alpha) and larger than an explicit noise threshold.
//
// The U test is exact (full permutation distribution via dynamic
// programming) for small tie-free samples — the common `-count 5..20` case —
// and falls back to the normal approximation with tie correction and
// continuity correction otherwise, matching the classic treatment in
// Mann & Whitney (1947) and golang.org/x/perf.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds the descriptive statistics of one sample set.
type Summary struct {
	N      int     `json:"n"`
	Mean   float64 `json:"mean"`
	Median float64 `json:"median"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
	Stddev float64 `json:"stddev"` // sample standard deviation (n-1 denominator)
}

// Summarize computes descriptive statistics; an empty sample yields a zero
// Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	for _, x := range xs {
		s.Mean += x
		s.Min = math.Min(s.Min, x)
		s.Max = math.Max(s.Max, x)
	}
	s.Mean /= float64(s.N)
	if s.N > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Stddev = math.Sqrt(ss / float64(s.N-1))
	}
	s.Median = Median(xs)
	return s
}

// Median returns the sample median (mean of the two central order
// statistics for even n). The input is not modified.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	n := len(sorted)
	if n%2 == 1 {
		return sorted[n/2]
	}
	return (sorted[n/2-1] + sorted[n/2]) / 2
}

// exactLimit bounds the sample sizes for which MannWhitney computes the
// exact permutation distribution; beyond it the normal approximation is
// already accurate to well under the alpha levels anyone uses.
const exactLimit = 25

// MannWhitney returns the two-sided p-value of the Mann-Whitney U test
// (Wilcoxon rank-sum) for the hypothesis that x and y are drawn from the
// same distribution. Tie-free samples with len ≤ exactLimit use the exact
// permutation distribution; larger or tied samples use the normal
// approximation with tie correction and continuity correction. Degenerate
// inputs that carry no evidence (a sample of n=1 vs m=1, or all values
// identical) return p = 1, so they can never flag.
func MannWhitney(x, y []float64) (float64, error) {
	n, m := len(x), len(y)
	if n == 0 || m == 0 {
		return 1, fmt.Errorf("stats: Mann-Whitney needs non-empty samples (n=%d, m=%d)", n, m)
	}

	ranks, tieSum, tied := rankAll(x, y)
	// Rank-sum of x, then U = W - n(n+1)/2.
	var w float64
	for i := 0; i < n; i++ {
		w += ranks[i]
	}
	u := w - float64(n*(n+1))/2

	if !tied && n <= exactLimit && m <= exactLimit {
		return exactP(int(math.Round(u)), n, m), nil
	}

	mean := float64(n) * float64(m) / 2
	nTot := float64(n + m)
	variance := float64(n) * float64(m) / 12 * (nTot + 1 - tieSum/(nTot*(nTot-1)))
	if variance <= 0 {
		// Every value tied with every other: no evidence of a difference.
		return 1, nil
	}
	// Continuity correction: shrink |U - mean| by 1/2.
	z := (math.Abs(u-mean) - 0.5) / math.Sqrt(variance)
	if z < 0 {
		z = 0
	}
	// Two-sided tail of the standard normal: 2*(1 - Phi(z)) = erfc(z/sqrt2).
	return math.Erfc(z / math.Sqrt2), nil
}

// rankAll assigns mid-ranks to the concatenation x||y and reports the tie
// correction term sum(t^3 - t) and whether any tie exists.
func rankAll(x, y []float64) (ranks []float64, tieSum float64, tied bool) {
	n := len(x) + len(y)
	all := make([]float64, 0, n)
	all = append(all, x...)
	all = append(all, y...)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return all[idx[a]] < all[idx[b]] })

	ranks = make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && all[idx[j+1]] == all[idx[i]] {
			j++
		}
		// Positions i..j (0-based) share the mid-rank.
		mid := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			ranks[idx[k]] = mid
		}
		if t := float64(j - i + 1); t > 1 {
			tied = true
			tieSum += t*t*t - t
		}
		i = j + 1
	}
	return ranks, tieSum, tied
}

// exactP computes the exact two-sided p-value of observing U statistic u
// for tie-free samples of sizes n and m, by counting rank-subset
// assignments with dynamic programming. The U distribution is symmetric
// about nm/2, so the two-sided p is twice the smaller tail, capped at 1.
func exactP(u, n, m int) float64 {
	// counts[j][s]: number of ways to choose j of the first i ranks with
	// U-contribution s. Using the standard recurrence on U directly:
	// c(i, j, s) = c(i-1, j, s) + c(i-1, j-1, s-(i-j)) where picking rank i
	// as the j-th chosen element contributes (i-j) pairs won against y.
	maxU := n * m
	counts := make([][]float64, n+1)
	for j := range counts {
		counts[j] = make([]float64, maxU+1)
	}
	counts[0][0] = 1
	for i := 1; i <= n+m; i++ {
		for j := min(i, n); j >= 1; j-- {
			c := i - j // U contribution of choosing element i as j-th pick
			if c > maxU {
				continue
			}
			row, prev := counts[j], counts[j-1]
			for s := maxU; s >= c; s-- {
				row[s] += prev[s-c]
			}
		}
	}
	var total, tail float64
	lo := u
	if maxU-u < lo {
		lo = maxU - u
	}
	for s, c := range counts[n] {
		total += c
		if s <= lo {
			tail += c
		}
	}
	p := 2 * tail / total
	if p > 1 {
		p = 1
	}
	return p
}

// Options configures Compare.
type Options struct {
	// Alpha is the significance level for the Mann-Whitney test
	// (default 0.05).
	Alpha float64
	// Threshold is the noise floor in percent: a delta smaller in
	// magnitude is never significant regardless of p (default 0).
	Threshold float64
}

func (o Options) alpha() float64 {
	if o.Alpha <= 0 {
		return 0.05
	}
	return o.Alpha
}

// Comparison is the verdict on one benchmark's old-vs-new sample sets.
// Delta and CI are percentages relative to the old median/mean; for
// latency-like metrics a positive Delta means the new code is slower.
type Comparison struct {
	Old Summary `json:"old"`
	New Summary `json:"new"`
	// Delta is the percent change of the median, new vs old.
	Delta float64 `json:"delta_pct"`
	// CI is the ± half-width, in percent of the old mean, of the 95%
	// confidence interval on the difference of means (Welch standard
	// error, t quantile). Zero when either side has n < 2.
	CI float64 `json:"ci_pct"`
	// P is the two-sided Mann-Whitney p-value.
	P float64 `json:"p"`
	// Significant reports P < alpha AND |Delta| ≥ threshold.
	Significant bool `json:"significant"`
}

// Compare runs the full benchstat-style comparison of two sample sets.
// Sample counts need not match. Samples of n=1 cannot reach significance:
// their permutation p-value is ≥ 2/(n+m choose n) ≥ 1/3 > any sane alpha.
func Compare(old, new []float64, opts Options) (Comparison, error) {
	if len(old) == 0 || len(new) == 0 {
		return Comparison{}, fmt.Errorf("stats: Compare needs non-empty samples (old n=%d, new n=%d)", len(old), len(new))
	}
	c := Comparison{Old: Summarize(old), New: Summarize(new)}
	if c.Old.Median != 0 {
		c.Delta = (c.New.Median - c.Old.Median) / math.Abs(c.Old.Median) * 100
	}
	p, err := MannWhitney(old, new)
	if err != nil {
		return c, err
	}
	c.P = p
	if c.Old.N > 1 && c.New.N > 1 && c.Old.Mean != 0 {
		se := math.Sqrt(c.Old.Stddev*c.Old.Stddev/float64(c.Old.N) +
			c.New.Stddev*c.New.Stddev/float64(c.New.N))
		c.CI = tQuantile975(welchDF(c.Old, c.New)) * se / math.Abs(c.Old.Mean) * 100
	}
	c.Significant = c.P < opts.alpha() && math.Abs(c.Delta) >= opts.Threshold
	return c, nil
}

// welchDF is the Welch–Satterthwaite effective degrees of freedom for the
// difference of the two sample means.
func welchDF(a, b Summary) float64 {
	va := a.Stddev * a.Stddev / float64(a.N)
	vb := b.Stddev * b.Stddev / float64(b.N)
	if va+vb == 0 {
		return float64(a.N + b.N - 2)
	}
	num := (va + vb) * (va + vb)
	den := va*va/float64(a.N-1) + vb*vb/float64(b.N-1)
	if den == 0 {
		return float64(a.N + b.N - 2)
	}
	return num / den
}

// t975 tabulates the 0.975 quantile of Student's t for df 1..30; larger df
// use the normal 1.96. Indexed by df-1.
var t975 = [30]float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

func tQuantile975(df float64) float64 {
	if df < 1 {
		df = 1
	}
	i := int(df)
	if i > len(t975) {
		return 1.960
	}
	return t975[i-1]
}
