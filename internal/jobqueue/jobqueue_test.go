package jobqueue

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// eventually polls cond for up to 2s.
func eventually(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// finishAll is the well-behaved executor: finish every job with its own
// request as the result.
func finishAll(_ context.Context, batch []*Job[int, int]) {
	for _, j := range batch {
		j.Finish(j.Req, nil)
	}
}

// TestBackpressureQueueFull pins the admission-control contract: with the
// single worker wedged and the dispatch pipeline saturated, exactly
// Capacity more jobs are admitted and the next submission fails with
// ErrQueueFull — deterministically, because the test first drives the
// pipeline into its known saturated state (one batch executing, one batch
// dispatched and waiting, buffer empty).
func TestBackpressureQueueFull(t *testing.T) {
	const capacity = 3
	release := make(chan struct{})
	var flushes atomic.Int32
	q := New(context.Background(), Options{
		Capacity:  capacity,
		BatchSize: 1,
		MaxWait:   time.Hour,
		Workers:   1,
		OnBatch:   func(int) { flushes.Add(1) },
	}, func(_ context.Context, batch []*Job[int, int]) {
		<-release
		finishAll(nil, batch)
	})

	var admitted []*Job[int, int]
	submit := func(v int) *Job[int, int] {
		t.Helper()
		j, err := q.Submit(v)
		if err != nil {
			t.Fatalf("Submit(%d): %v", v, err)
		}
		admitted = append(admitted, j)
		return j
	}

	// Saturate the pipeline: batch 1 is executing (worker blocked on
	// release), batch 2 is flushed and waiting for the worker. Both
	// flushes are observable, after which the channel buffer is empty.
	submit(1)
	submit(2)
	eventually(t, "two flushes", func() bool { return flushes.Load() == 2 })

	// Now the buffer admits exactly Capacity more.
	for v := 3; v < 3+capacity; v++ {
		submit(v)
	}
	if _, err := q.Submit(99); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("Submit at capacity: err = %v, want ErrQueueFull", err)
	}
	if got := q.Depth(); got != capacity {
		t.Errorf("Depth = %d, want %d", got, capacity)
	}

	// Unwedge: every admitted job must complete with its own result.
	close(release)
	for _, j := range admitted {
		res, err := j.Wait(context.Background())
		if err != nil || res != j.Req {
			t.Errorf("job %d: res=%d err=%v", j.Req, res, err)
		}
	}
}

// TestPartialBatchFlushOnMaxWait pins the max-wait flush: a lone job in a
// BatchSize-4 queue must not wait for companions forever — it flushes as a
// batch of one once MaxWait elapses.
func TestPartialBatchFlushOnMaxWait(t *testing.T) {
	const maxWait = 30 * time.Millisecond
	q := New(context.Background(), Options{BatchSize: 4, MaxWait: maxWait}, finishAll)
	defer q.Drain(context.Background())

	j, err := q.Submit(7)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if id, size := j.Batch(); id == 0 || size != 1 {
		t.Errorf("Batch() = (%d, %d), want a dispatched batch of 1", id, size)
	}
	ts := j.Times()
	if ts.Enqueued.IsZero() || ts.Started.IsZero() || ts.Done.IsZero() {
		t.Fatalf("missing stage timestamps: %+v", ts)
	}
	if wait := ts.Started.Sub(ts.Enqueued); wait < maxWait-5*time.Millisecond {
		t.Errorf("partial batch flushed after %v, want ~MaxWait (%v)", wait, maxWait)
	}
	if !ts.Started.Before(ts.Done) && !ts.Started.Equal(ts.Done) {
		t.Errorf("Started %v after Done %v", ts.Started, ts.Done)
	}
}

// TestBatchCoalescing pins the size-threshold flush: jobs submitted
// together share one batch, observable through matching batch ids, without
// waiting for MaxWait.
func TestBatchCoalescing(t *testing.T) {
	q := New(context.Background(), Options{BatchSize: 2, MaxWait: time.Hour}, finishAll)
	defer q.Drain(context.Background())

	a, err := q.Submit(1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := q.Submit(2)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if _, err := a.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	aid, asize := a.Batch()
	bid, bsize := b.Batch()
	if aid != bid || asize != 2 || bsize != 2 {
		t.Errorf("batches not coalesced: a=(%d,%d) b=(%d,%d)", aid, asize, bid, bsize)
	}
}

// TestGracefulDrain pins the shutdown contract: Drain completes every
// admitted job (in flight and still queued), rejects new submissions with
// ErrDraining, and loses or duplicates nothing.
func TestGracefulDrain(t *testing.T) {
	var executed atomic.Int32
	q := New(context.Background(), Options{Capacity: 16, BatchSize: 2, MaxWait: 5 * time.Millisecond, Workers: 1},
		func(_ context.Context, batch []*Job[int, int]) {
			time.Sleep(20 * time.Millisecond) // long enough for Drain to start first
			for _, j := range batch {
				executed.Add(1)
				j.Finish(j.Req, nil)
			}
		})

	const n = 6
	jobs := make([]*Job[int, int], 0, n)
	for v := 0; v < n; v++ {
		j, err := q.Submit(v)
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}

	var wg sync.WaitGroup
	wg.Add(1)
	var drainErr error
	go func() {
		defer wg.Done()
		drainErr = q.Drain(context.Background())
	}()

	// Submissions during the drain are rejected with the typed error. A
	// probe that sneaks in before the drain flag flips is a legitimately
	// admitted job — track it so the completion accounting stays exact.
	eventually(t, "draining rejection", func() bool {
		j, err := q.Submit(99)
		if err == nil {
			jobs = append(jobs, j)
			return false
		}
		return errors.Is(err, ErrDraining)
	})

	wg.Wait()
	if drainErr != nil {
		t.Fatalf("Drain: %v", drainErr)
	}
	for _, j := range jobs {
		if !j.Finished() {
			t.Fatalf("job %d lost by drain", j.Req)
		}
		if res, err := j.Result(); err != nil || res != j.Req {
			t.Errorf("job %d: res=%d err=%v", j.Req, res, err)
		}
	}
	if got := executed.Load(); got != int32(len(jobs)) {
		t.Errorf("executed %d jobs, want %d (no losses, no duplicates)", got, len(jobs))
	}
	// Drain is idempotent.
	if err := q.Drain(context.Background()); err != nil {
		t.Errorf("second Drain: %v", err)
	}
}

// TestDrainDeadline: a Drain whose context expires while work is in
// flight reports the context error instead of blocking forever.
func TestDrainDeadline(t *testing.T) {
	release := make(chan struct{})
	q := New(context.Background(), Options{BatchSize: 1, MaxWait: time.Millisecond},
		func(_ context.Context, batch []*Job[int, int]) {
			<-release
			finishAll(nil, batch)
		})
	j, err := q.Submit(1)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := q.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Drain err = %v, want DeadlineExceeded", err)
	}
	close(release)
	if err := q.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if res, err := j.Result(); err != nil || res != 1 {
		t.Errorf("in-flight job after late drain: res=%d err=%v", res, err)
	}
}

// TestExecutorMisbehavior pins the no-lost-jobs guarantee: jobs an
// executor drops or panics over are finished with an error instead of
// hanging their waiters.
func TestExecutorMisbehavior(t *testing.T) {
	t.Run("dropped", func(t *testing.T) {
		q := New(context.Background(), Options{BatchSize: 1, MaxWait: time.Millisecond},
			func(context.Context, []*Job[int, int]) {}) // finishes nothing
		j, err := q.Submit(1)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := j.Wait(context.Background()); err == nil {
			t.Fatal("dropped job completed without error")
		}
	})
	t.Run("panic", func(t *testing.T) {
		q := New(context.Background(), Options{BatchSize: 1, MaxWait: time.Millisecond},
			func(context.Context, []*Job[int, int]) { panic("executor bug") })
		j, err := q.Submit(1)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := j.Wait(context.Background()); err == nil {
			t.Fatal("panicking executor's job completed without error")
		}
		// The queue survives: the next job still executes.
		j2, err := q.Submit(2)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := j2.Wait(context.Background()); err == nil {
			t.Fatal("want panic error again (same executor), got nil")
		}
	})
}

// TestDoubleFinishIsNoOp pins exactly-once completion.
func TestDoubleFinishIsNoOp(t *testing.T) {
	q := New(context.Background(), Options{BatchSize: 1, MaxWait: time.Millisecond},
		func(_ context.Context, batch []*Job[int, int]) {
			for _, j := range batch {
				j.Finish(j.Req, nil)
				j.Finish(-1, errors.New("duplicate"))
			}
		})
	j, err := q.Submit(5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := j.Wait(context.Background())
	if err != nil || res != 5 {
		t.Fatalf("first Finish not authoritative: res=%d err=%v", res, err)
	}
}
