package jobqueue

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// eventually polls cond for up to 2s.
func eventually(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// finishAll is the well-behaved executor: finish every job with its own
// request as the result.
func finishAll(_ context.Context, batch []*Job[int, int]) {
	for _, j := range batch {
		j.Finish(j.Req, nil)
	}
}

// TestBackpressureQueueFull pins the admission-control contract: with the
// single worker wedged and the dispatch pipeline saturated, exactly
// Capacity more jobs are admitted and the next submission fails with
// ErrQueueFull — deterministically, because the test first drives the
// pipeline into its known saturated state (one batch executing, one batch
// dispatched and waiting, buffer empty).
func TestBackpressureQueueFull(t *testing.T) {
	const capacity = 3
	release := make(chan struct{})
	var flushes atomic.Int32
	q := New(context.Background(), Options{
		Capacity:  capacity,
		BatchSize: 1,
		MaxWait:   time.Hour,
		Workers:   1,
		OnBatch:   func(int) { flushes.Add(1) },
	}, func(_ context.Context, batch []*Job[int, int]) {
		<-release
		finishAll(nil, batch)
	})

	var admitted []*Job[int, int]
	submit := func(v int) *Job[int, int] {
		t.Helper()
		j, err := q.Submit(v)
		if err != nil {
			t.Fatalf("Submit(%d): %v", v, err)
		}
		admitted = append(admitted, j)
		return j
	}

	// Saturate the pipeline: batch 1 is executing (worker blocked on
	// release), batch 2 is flushed and waiting for the worker. Both
	// flushes are observable, after which the channel buffer is empty.
	submit(1)
	submit(2)
	eventually(t, "two flushes", func() bool { return flushes.Load() == 2 })

	// Now the buffer admits exactly Capacity more.
	for v := 3; v < 3+capacity; v++ {
		submit(v)
	}
	if _, err := q.Submit(99); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("Submit at capacity: err = %v, want ErrQueueFull", err)
	}
	if got := q.Depth(); got != capacity {
		t.Errorf("Depth = %d, want %d", got, capacity)
	}

	// Unwedge: every admitted job must complete with its own result.
	close(release)
	for _, j := range admitted {
		res, err := j.Wait(context.Background())
		if err != nil || res != j.Req {
			t.Errorf("job %d: res=%d err=%v", j.Req, res, err)
		}
	}
}

// TestPartialBatchFlushOnMaxWait pins the max-wait flush: a lone job in a
// BatchSize-4 queue must not wait for companions forever — it flushes as a
// batch of one once MaxWait elapses.
func TestPartialBatchFlushOnMaxWait(t *testing.T) {
	const maxWait = 30 * time.Millisecond
	q := New(context.Background(), Options{BatchSize: 4, MaxWait: maxWait}, finishAll)
	defer q.Drain(context.Background())

	j, err := q.Submit(7)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if id, size := j.Batch(); id == 0 || size != 1 {
		t.Errorf("Batch() = (%d, %d), want a dispatched batch of 1", id, size)
	}
	ts := j.Times()
	if ts.Enqueued.IsZero() || ts.Started.IsZero() || ts.Done.IsZero() {
		t.Fatalf("missing stage timestamps: %+v", ts)
	}
	if wait := ts.Started.Sub(ts.Enqueued); wait < maxWait-5*time.Millisecond {
		t.Errorf("partial batch flushed after %v, want ~MaxWait (%v)", wait, maxWait)
	}
	if !ts.Started.Before(ts.Done) && !ts.Started.Equal(ts.Done) {
		t.Errorf("Started %v after Done %v", ts.Started, ts.Done)
	}
}

// TestBatchCoalescing pins the size-threshold flush: jobs submitted
// together share one batch, observable through matching batch ids, without
// waiting for MaxWait.
func TestBatchCoalescing(t *testing.T) {
	q := New(context.Background(), Options{BatchSize: 2, MaxWait: time.Hour}, finishAll)
	defer q.Drain(context.Background())

	a, err := q.Submit(1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := q.Submit(2)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if _, err := a.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	aid, asize := a.Batch()
	bid, bsize := b.Batch()
	if aid != bid || asize != 2 || bsize != 2 {
		t.Errorf("batches not coalesced: a=(%d,%d) b=(%d,%d)", aid, asize, bid, bsize)
	}
}

// TestGracefulDrain pins the shutdown contract: Drain completes every
// admitted job (in flight and still queued), rejects new submissions with
// ErrDraining, and loses or duplicates nothing.
func TestGracefulDrain(t *testing.T) {
	var executed atomic.Int32
	q := New(context.Background(), Options{Capacity: 16, BatchSize: 2, MaxWait: 5 * time.Millisecond, Workers: 1},
		func(_ context.Context, batch []*Job[int, int]) {
			time.Sleep(20 * time.Millisecond) // long enough for Drain to start first
			for _, j := range batch {
				executed.Add(1)
				j.Finish(j.Req, nil)
			}
		})

	const n = 6
	jobs := make([]*Job[int, int], 0, n)
	for v := 0; v < n; v++ {
		j, err := q.Submit(v)
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}

	var wg sync.WaitGroup
	wg.Add(1)
	var drainErr error
	go func() {
		defer wg.Done()
		drainErr = q.Drain(context.Background())
	}()

	// Submissions during the drain are rejected with the typed error. A
	// probe that sneaks in before the drain flag flips is a legitimately
	// admitted job — track it so the completion accounting stays exact.
	eventually(t, "draining rejection", func() bool {
		j, err := q.Submit(99)
		if err == nil {
			jobs = append(jobs, j)
			return false
		}
		return errors.Is(err, ErrDraining)
	})

	wg.Wait()
	if drainErr != nil {
		t.Fatalf("Drain: %v", drainErr)
	}
	for _, j := range jobs {
		if !j.Finished() {
			t.Fatalf("job %d lost by drain", j.Req)
		}
		if res, err := j.Result(); err != nil || res != j.Req {
			t.Errorf("job %d: res=%d err=%v", j.Req, res, err)
		}
	}
	if got := executed.Load(); got != int32(len(jobs)) {
		t.Errorf("executed %d jobs, want %d (no losses, no duplicates)", got, len(jobs))
	}
	// Drain is idempotent.
	if err := q.Drain(context.Background()); err != nil {
		t.Errorf("second Drain: %v", err)
	}
}

// TestDrainDeadline: a Drain whose context expires while work is in
// flight reports the context error instead of blocking forever.
func TestDrainDeadline(t *testing.T) {
	release := make(chan struct{})
	q := New(context.Background(), Options{BatchSize: 1, MaxWait: time.Millisecond},
		func(_ context.Context, batch []*Job[int, int]) {
			<-release
			finishAll(nil, batch)
		})
	j, err := q.Submit(1)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := q.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Drain err = %v, want DeadlineExceeded", err)
	}
	close(release)
	if err := q.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if res, err := j.Result(); err != nil || res != 1 {
		t.Errorf("in-flight job after late drain: res=%d err=%v", res, err)
	}
}

// TestExecutorMisbehavior pins the no-lost-jobs guarantee: jobs an
// executor drops or panics over are finished with an error instead of
// hanging their waiters.
func TestExecutorMisbehavior(t *testing.T) {
	t.Run("dropped", func(t *testing.T) {
		q := New(context.Background(), Options{BatchSize: 1, MaxWait: time.Millisecond},
			func(context.Context, []*Job[int, int]) {}) // finishes nothing
		j, err := q.Submit(1)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := j.Wait(context.Background()); err == nil {
			t.Fatal("dropped job completed without error")
		}
	})
	t.Run("panic", func(t *testing.T) {
		q := New(context.Background(), Options{BatchSize: 1, MaxWait: time.Millisecond},
			func(context.Context, []*Job[int, int]) { panic("executor bug") })
		j, err := q.Submit(1)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := j.Wait(context.Background()); err == nil {
			t.Fatal("panicking executor's job completed without error")
		}
		// The queue survives: the next job still executes.
		j2, err := q.Submit(2)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := j2.Wait(context.Background()); err == nil {
			t.Fatal("want panic error again (same executor), got nil")
		}
	})
}

// TestDoubleFinishIsNoOp pins exactly-once completion.
func TestDoubleFinishIsNoOp(t *testing.T) {
	q := New(context.Background(), Options{BatchSize: 1, MaxWait: time.Millisecond},
		func(_ context.Context, batch []*Job[int, int]) {
			for _, j := range batch {
				j.Finish(j.Req, nil)
				j.Finish(-1, errors.New("duplicate"))
			}
		})
	j, err := q.Submit(5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := j.Wait(context.Background())
	if err != nil || res != 5 {
		t.Fatalf("first Finish not authoritative: res=%d err=%v", res, err)
	}
}

// TestWeightedRoundRobinFairness pins the no-starvation property: with a
// flooder holding a long backlog and a slow client submitting one job,
// WRR dequeue interleaves them — the slow client's job is dispatched
// within the first few batches instead of behind the entire backlog.
func TestWeightedRoundRobinFairness(t *testing.T) {
	release := make(chan struct{})
	var mu sync.Mutex
	var dispatched []string // client of each executed job, in dispatch order
	q := New(context.Background(), Options{
		Capacity:  64,
		BatchSize: 2,
		MaxWait:   time.Millisecond,
		Workers:   1,
	}, func(_ context.Context, batch []*Job[int, int]) {
		<-release
		mu.Lock()
		for _, j := range batch {
			dispatched = append(dispatched, j.Client())
		}
		mu.Unlock()
		finishAll(nil, batch)
	})

	// The flooder stacks 10 jobs while the worker is wedged; then the slow
	// client submits one.
	var jobs []*Job[int, int]
	for i := 0; i < 10; i++ {
		j, err := q.SubmitClient("flood", i)
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	slow, err := q.SubmitClient("slow", 99)
	if err != nil {
		t.Fatal(err)
	}
	jobs = append(jobs, slow)
	close(release)
	for _, j := range jobs {
		if _, err := j.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
	}

	mu.Lock()
	defer mu.Unlock()
	pos := -1
	for i, c := range dispatched {
		if c == "slow" {
			pos = i
			break
		}
	}
	// Round-robin alternates flood/slow from wherever the collector is, so
	// the slow job must appear within the first WRR cycle (here: first 4
	// dispatches is generous; FIFO would place it last, at index 10).
	if pos < 0 || pos > 4 {
		t.Fatalf("slow client dispatched at position %d of %v, want early interleave", pos, dispatched)
	}
}

// TestClientWeights: a weight-3 client gets ~3x the dispatch share of a
// weight-1 client from interleaved backlogs.
func TestClientWeights(t *testing.T) {
	release := make(chan struct{})
	var mu sync.Mutex
	var order []string
	q := New(context.Background(), Options{
		Capacity:  64,
		BatchSize: 4,
		MaxWait:   time.Millisecond,
		Workers:   1,
		ClientWeight: func(c string) int {
			if c == "heavy" {
				return 3
			}
			return 1
		},
	}, func(_ context.Context, batch []*Job[int, int]) {
		<-release
		mu.Lock()
		for _, j := range batch {
			order = append(order, j.Client())
		}
		mu.Unlock()
		finishAll(nil, batch)
	})

	var jobs []*Job[int, int]
	for i := 0; i < 6; i++ {
		for _, c := range []string{"heavy", "light"} {
			j, err := q.SubmitClient(c, i)
			if err != nil {
				t.Fatal(err)
			}
			jobs = append(jobs, j)
		}
	}
	close(release)
	for _, j := range jobs {
		if _, err := j.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
	}

	// In the first full WRR cycle (4 dispatches with both queues deep),
	// heavy takes 3 and light takes 1.
	mu.Lock()
	defer mu.Unlock()
	heavy := 0
	for _, c := range order[:4] {
		if c == "heavy" {
			heavy++
		}
	}
	if heavy != 3 {
		t.Fatalf("first cycle gave heavy %d of 4 slots, want 3 (order %v)", heavy, order)
	}
}

// TestRateLimit: a client that outruns its token bucket gets a typed
// RateLimitError with a positive Retry-After, and a different client is
// unaffected (buckets are per-client).
func TestRateLimit(t *testing.T) {
	q := New(context.Background(), Options{
		Capacity:      64,
		BatchSize:     1,
		MaxWait:       time.Millisecond,
		RatePerClient: 0.5, // one token per 2s: burst of 1, then limited
		Burst:         1,
	}, finishAll)
	defer q.Drain(context.Background())

	if _, err := q.SubmitClient("a", 1); err != nil {
		t.Fatalf("first submit: %v", err)
	}
	_, err := q.SubmitClient("a", 2)
	var rl *RateLimitError
	if !errors.As(err, &rl) || !errors.Is(err, ErrRateLimited) {
		t.Fatalf("second submit err = %v, want RateLimitError", err)
	}
	if rl.RetryAfter <= 0 || rl.RetryAfter > 2*time.Second {
		t.Fatalf("RetryAfter = %v, want (0, 2s]", rl.RetryAfter)
	}
	if rl.Client != "a" {
		t.Fatalf("Client = %q", rl.Client)
	}
	// Another client's bucket is untouched.
	if _, err := q.SubmitClient("b", 3); err != nil {
		t.Fatalf("other client: %v", err)
	}
}

// TestPerClientCapacity: one client cannot occupy the whole queue; its
// overflow is rejected while another client still admits.
func TestPerClientCapacity(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	q := New(context.Background(), Options{
		Capacity:          8,
		PerClientCapacity: 2,
		BatchSize:         1,
		MaxWait:           time.Hour, // hold jobs in the queue
		Workers:           1,
	}, func(_ context.Context, batch []*Job[int, int]) {
		<-release
		finishAll(nil, batch)
	})

	// The flooder fills its share (+ up to 2 in the dispatch pipeline).
	full := false
	for i := 0; i < 8; i++ {
		if _, err := q.SubmitClient("flood", i); err != nil {
			if !errors.Is(err, ErrQueueFull) {
				t.Fatalf("flood submit %d: %v", i, err)
			}
			full = true
			break
		}
	}
	if !full {
		t.Fatal("flooder never hit its per-client bound")
	}
	// The slow client still has room.
	if _, err := q.SubmitClient("slow", 99); err != nil {
		t.Fatalf("slow client rejected: %v", err)
	}
}

// TestWatchdogRetriesThenFails is the wedged-executor drill: an executor
// that never returns is cancelled by the watchdog, abandoned after the
// grace period, retried with backoff, and the job ends terminally failed
// carrying its attempt count — the worker is never lost.
func TestWatchdogRetriesThenFails(t *testing.T) {
	var attempts atomic.Int32
	var abandoned atomic.Int32
	var retries atomic.Int32
	q := New(context.Background(), Options{
		BatchSize:       1,
		MaxWait:         time.Millisecond,
		Workers:         1,
		JobTimeout:      30 * time.Millisecond,
		AbandonGrace:    10 * time.Millisecond,
		MaxAttempts:     3,
		RetryBackoff:    5 * time.Millisecond,
		RetryBackoffCap: 20 * time.Millisecond,
		Seed:            1,
		OnAbandon:       func() { abandoned.Add(1) },
		OnRetry:         func(string, int, time.Duration) { retries.Add(1) },
	}, func(ctx context.Context, batch []*Job[int, int]) {
		attempts.Add(1)
		<-make(chan struct{}) // wedged: ignores ctx, never finishes
	})

	j, err := q.Submit(1)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := j.Wait(ctx); err == nil {
		t.Fatal("wedged job completed without error")
	} else if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("terminal err = %v, want a deadline-rooted failure", err)
	} else if !strings.Contains(err.Error(), "after 3 attempt(s)") {
		t.Fatalf("terminal err = %v, want attempt count", err)
	}
	if got := j.Attempts(); got != 3 {
		t.Errorf("Attempts = %d, want 3", got)
	}
	if got := attempts.Load(); got != 3 {
		t.Errorf("executor invoked %d times, want 3", got)
	}
	if abandoned.Load() != 3 || retries.Load() != 2 {
		t.Errorf("abandoned=%d retries=%d, want 3 and 2", abandoned.Load(), retries.Load())
	}
}

// TestWatchdogHonoredCancellation: an executor that *does* honor the
// cancellation is retried without abandonment, and a later good attempt
// succeeds.
func TestWatchdogHonoredCancellation(t *testing.T) {
	var attempts atomic.Int32
	var abandoned atomic.Int32
	q := New(context.Background(), Options{
		BatchSize:       1,
		MaxWait:         time.Millisecond,
		Workers:         1,
		JobTimeout:      25 * time.Millisecond,
		AbandonGrace:    time.Second,
		MaxAttempts:     3,
		RetryBackoff:    time.Millisecond,
		RetryBackoffCap: 5 * time.Millisecond,
		Seed:            1,
		OnAbandon:       func() { abandoned.Add(1) },
	}, func(ctx context.Context, batch []*Job[int, int]) {
		if attempts.Add(1) < 3 {
			<-ctx.Done() // slow but obedient: return unfinished on cancel
			return
		}
		finishAll(nil, batch)
	})

	j, err := q.Submit(7)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	res, err := j.Wait(ctx)
	if err != nil || res != 7 {
		t.Fatalf("job = (%d, %v), want success on attempt 3", res, err)
	}
	if got := j.Attempts(); got != 3 {
		t.Errorf("Attempts = %d, want 3", got)
	}
	if abandoned.Load() != 0 {
		t.Errorf("abandoned %d obedient executors", abandoned.Load())
	}
}

// TestTransientErrorClassification: an executor-reported error the
// classifier deems transient is retried; a permanent one fails
// immediately on the first attempt.
func TestTransientErrorClassification(t *testing.T) {
	transientErr := errors.New("transient blip")
	permanentErr := errors.New("hard failure")
	var attempts atomic.Int32
	q := New(context.Background(), Options{
		BatchSize:       1,
		MaxWait:         time.Millisecond,
		MaxAttempts:     3,
		RetryBackoff:    time.Millisecond,
		RetryBackoffCap: 2 * time.Millisecond,
		Seed:            1,
		Transient:       func(err error) bool { return errors.Is(err, transientErr) },
	}, func(_ context.Context, batch []*Job[int, int]) {
		for _, j := range batch {
			switch {
			case j.Req < 0:
				j.Finish(0, permanentErr)
			case attempts.Add(1) < 3:
				j.Finish(0, transientErr)
			default:
				j.Finish(j.Req, nil)
			}
		}
	})
	defer q.Drain(context.Background())

	j, err := q.Submit(5)
	if err != nil {
		t.Fatal(err)
	}
	res, werr := j.Wait(context.Background())
	if werr != nil || res != 5 {
		t.Fatalf("transient job = (%d, %v), want recovery", res, werr)
	}
	if j.Attempts() != 3 {
		t.Errorf("Attempts = %d, want 3", j.Attempts())
	}

	p, err := q.Submit(-1)
	if err != nil {
		t.Fatal(err)
	}
	if _, werr := p.Wait(context.Background()); !errors.Is(werr, permanentErr) {
		t.Fatalf("permanent job err = %v, want %v unretried", werr, permanentErr)
	}
	if p.Attempts() != 1 {
		t.Errorf("permanent job Attempts = %d, want 1", p.Attempts())
	}
}

// TestDrainWaitsForRetries: a job in retry backoff when Drain begins is
// still completed — retry timers count as admitted work.
func TestDrainWaitsForRetries(t *testing.T) {
	transientErr := context.DeadlineExceeded
	var attempts atomic.Int32
	q := New(context.Background(), Options{
		BatchSize:       1,
		MaxWait:         time.Millisecond,
		MaxAttempts:     2,
		RetryBackoff:    30 * time.Millisecond,
		RetryBackoffCap: 60 * time.Millisecond,
		Seed:            1,
	}, func(_ context.Context, batch []*Job[int, int]) {
		for _, j := range batch {
			if attempts.Add(1) == 1 {
				j.Finish(0, transientErr)
				continue
			}
			j.Finish(j.Req, nil)
		}
	})

	j, err := q.Submit(9)
	if err != nil {
		t.Fatal(err)
	}
	// Let the first attempt fail, then drain while the retry timer runs.
	eventually(t, "first attempt", func() bool { return attempts.Load() >= 1 })
	if err := q.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !j.Finished() {
		t.Fatal("drain returned with the retrying job unfinished")
	}
	if res, err := j.Result(); err != nil || res != 9 {
		t.Fatalf("retried job = (%d, %v) after drain", res, err)
	}
}
