// Package jobqueue is the bounded, batching, multi-tenant job queue
// behind rtrbenchd: the layer that turns independent request/response
// submissions into the batched execution stream a benchmark service
// needs, without letting one client starve the rest or one wedged
// executor occupy a worker forever.
//
// Admission is per-client: every submission names a client, lands in that
// client's FIFO, and is policed by a token bucket (RatePerClient/Burst —
// a flooding client gets a typed RateLimitError carrying a Retry-After
// hint) and by both a per-client and a total capacity bound (ErrQueueFull).
// The collector drains the client queues with weighted round-robin, so a
// client submitting at 10x the rate of another still only gets its
// weight's share of each batch and the slow client's jobs keep flowing.
// Batches flush on whichever comes first of a size threshold and a
// max-wait timer, and a small worker pool executes them.
//
// Execution is watched: JobTimeout bounds each dispatched batch (scaled
// by its size), a fired watchdog cancels the batch's context, and an
// executor that ignores even the cancellation is abandoned after a grace
// period — its goroutine is cut loose and the worker slot recovered
// (exactly-once Finish makes late completions from the abandoned attempt
// harmless). Jobs that failed transiently — watchdog cancellations, or
// errors the Transient classifier accepts — are requeued with capped
// exponential backoff plus jitter up to MaxAttempts, then finished with a
// terminal error carrying the attempt count.
//
// Shutdown is a graceful drain: new submissions are rejected with
// ErrDraining while everything already admitted — queued, in flight, or
// waiting out a retry backoff — runs to completion. The executor contract
// plus a finish-of-last-resort sweep guarantee no job is ever lost or
// completed twice.
package jobqueue

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// ErrQueueFull is the typed admission-control rejection: the queue (or
// the submitting client's share of it) is at capacity and the submission
// was not admitted. Callers translate it into backpressure (HTTP 429,
// retry with backoff).
var ErrQueueFull = errors.New("jobqueue: queue full")

// ErrDraining rejects submissions arriving after Drain began: the queue
// still completes admitted work but admits nothing new.
var ErrDraining = errors.New("jobqueue: draining")

// ErrRateLimited is the sentinel RateLimitError matches via errors.Is.
var ErrRateLimited = errors.New("jobqueue: rate limited")

// RateLimitError rejects a submission that outran its client's token
// bucket. RetryAfter is when the bucket will next hold a whole token —
// the value an HTTP layer puts in a Retry-After header.
type RateLimitError struct {
	Client     string
	RetryAfter time.Duration
}

func (e *RateLimitError) Error() string {
	return fmt.Sprintf("jobqueue: client %q rate limited (retry after %v)", e.Client, e.RetryAfter)
}

// Is makes errors.Is(err, ErrRateLimited) match.
func (e *RateLimitError) Is(target error) bool { return target == ErrRateLimited }

// errDropped is the finish-of-last-resort error for a job its executor
// returned without finishing — a bug in the executor, surfaced to the
// waiter instead of hanging it forever.
var errDropped = errors.New("jobqueue: executor returned without finishing job")

// Timestamps records the per-stage lifecycle instants of one job. Enqueued
// is stamped at admission, Started when a worker picks up the job's batch
// (the latest attempt's start, under retries), Done when the job finishes.
// A zero instant means the stage has not been reached.
type Timestamps struct {
	Enqueued time.Time
	Started  time.Time
	Done     time.Time
}

// Job is one admitted unit of work. The submitting side waits on it
// (Wait/DoneCh); the executing side completes it exactly once (Finish).
type Job[Req, Res any] struct {
	// Req is the submission payload, immutable after Submit.
	Req Req

	q *Queue[Req, Res]

	mu        sync.Mutex
	times     Timestamps
	client    string
	batch     int // 1-based flush sequence number; 0 until dispatched
	batchSize int
	attempts  int // dispatches so far
	// retryWait marks a job sitting out a backoff or re-queued by the
	// watchdog; everRetried stays set for the rest of its life and routes
	// all further error completions through the settle path.
	retryWait   bool
	everRetried bool
	// pendingErr is a transient failure recorded (not completed) by
	// Finish, consumed by settle to decide retry vs terminal.
	pendingErr error
	res        Res
	err        error

	once sync.Once
	done chan struct{}
}

// Finish completes the job with a result or error. Success always
// completes (first success wins — duplicate calls are no-ops, which is
// what makes "no duplicated results" a structural property instead of a
// convention). An error may instead be recorded for retry: when the
// queue's Transient classifier accepts it and attempts remain — or when
// the job has already been through a watchdog retry, so the settle path
// owns its terminal state — Finish stores it and leaves the job pending;
// the queue requeues it with backoff or finishes it terminally after the
// batch settles.
func (j *Job[Req, Res]) Finish(res Res, err error) {
	if err == nil {
		j.complete(res, nil)
		return
	}
	j.mu.Lock()
	retryable := j.q != nil && j.q.retryEnabled() &&
		(j.everRetried || (j.q.transient(err) && j.attempts < j.q.maxAttempts()))
	if retryable && !j.finished() {
		j.pendingErr = err
		j.mu.Unlock()
		return
	}
	j.mu.Unlock()
	j.complete(res, err)
}

// complete is the exactly-once completion.
func (j *Job[Req, Res]) complete(res Res, err error) {
	j.once.Do(func() {
		j.mu.Lock()
		j.res, j.err = res, err
		j.times.Done = time.Now()
		j.retryWait = false
		j.mu.Unlock()
		close(j.done)
	})
}

// finished is Finished without the lock (callers hold j.mu or don't care).
func (j *Job[Req, Res]) finished() bool {
	select {
	case <-j.done:
		return true
	default:
		return false
	}
}

// DoneCh is closed when the job has finished.
func (j *Job[Req, Res]) DoneCh() <-chan struct{} { return j.done }

// Finished reports whether the job has completed.
func (j *Job[Req, Res]) Finished() bool { return j.finished() }

// Wait blocks until the job finishes or ctx is cancelled, returning the
// job's result or the first of (job error, ctx error).
func (j *Job[Req, Res]) Wait(ctx context.Context) (Res, error) {
	select {
	case <-j.done:
		return j.Result()
	case <-ctx.Done():
		var zero Res
		return zero, ctx.Err()
	}
}

// Result returns the finished job's result and error; before Finish it
// returns the zero result and a nil error (check Finished or use Wait).
func (j *Job[Req, Res]) Result() (Res, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.res, j.err
}

// Times returns a snapshot of the per-stage timestamps.
func (j *Job[Req, Res]) Times() Timestamps {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.times
}

// Batch returns the 1-based flush sequence number this job was dispatched
// in and the number of jobs that shared it (both 0 until dispatch). Jobs
// reporting the same number were coalesced into one flush — the observable
// evidence of batching.
func (j *Job[Req, Res]) Batch() (id, size int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.batch, j.batchSize
}

// Attempts returns the number of times the job has been dispatched to an
// executor (1 for a job that never needed a retry; 0 before dispatch).
func (j *Job[Req, Res]) Attempts() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.attempts
}

// Retrying reports whether the job is sitting out a retry backoff or has
// been requeued by the watchdog and not yet completed.
func (j *Job[Req, Res]) Retrying() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.retryWait && !j.finished()
}

// Client returns the client the job was submitted under.
func (j *Job[Req, Res]) Client() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.client
}

func (j *Job[Req, Res]) markStarted(batch, size int, at time.Time) {
	j.mu.Lock()
	j.times.Started = at
	j.batch, j.batchSize = batch, size
	j.attempts++
	j.retryWait = false
	j.mu.Unlock()
}

// Options configures a Queue.
type Options struct {
	// Capacity bounds the jobs admitted but not yet dispatched to a
	// worker, summed over all clients; Submit fails with ErrQueueFull at
	// capacity. <= 0 means 64.
	Capacity int
	// PerClientCapacity bounds one client's share of the queue; <= 0
	// means Capacity (no per-client bound). Setting it below Capacity is
	// what keeps a flooding client from filling the whole queue and
	// starving everyone else at admission.
	PerClientCapacity int
	// BatchSize flushes a batch as soon as it holds this many jobs.
	// <= 0 means 8.
	BatchSize int
	// MaxWait flushes a partial batch this long after its first job
	// arrived, bounding the latency a lonely job pays for batching.
	// <= 0 means 50ms.
	MaxWait time.Duration
	// Workers is the number of concurrent batch executors. <= 0 means 1.
	Workers int

	// RatePerClient, when > 0, token-bucket rate limits each client to
	// this many admissions per second (burst up to Burst). Rejections are
	// *RateLimitError with a Retry-After hint.
	RatePerClient float64
	// Burst is the token-bucket size; <= 0 means max(1, ceil(rate)).
	Burst int
	// ClientWeight maps a client to its weighted-round-robin share of
	// each batch; nil or non-positive results mean weight 1.
	ClientWeight func(client string) int

	// JobTimeout is the per-job execution budget; a dispatched batch gets
	// JobTimeout x len(batch) (jobs in a batch run sequentially), after
	// which its context is cancelled. 0 disables the watchdog.
	JobTimeout time.Duration
	// AbandonGrace is how long after cancellation the watchdog waits for
	// a wedged executor to return before cutting its goroutine loose and
	// recovering the worker slot. <= 0 means 2s.
	AbandonGrace time.Duration
	// MaxAttempts is the total number of dispatches a job may consume
	// (first attempt + retries). <= 0 means 1: no retries.
	MaxAttempts int
	// RetryBackoff is the base of the capped exponential retry backoff
	// (base, 2*base, 4*base, ... up to RetryBackoffCap), each delay
	// jittered by ±50%. <= 0 means 100ms.
	RetryBackoff time.Duration
	// RetryBackoffCap caps the exponential growth. <= 0 means 5s.
	RetryBackoffCap time.Duration
	// Seed seeds the jitter RNG for reproducible tests; 0 seeds from the
	// clock.
	Seed int64
	// Transient classifies executor-reported errors as retryable; nil
	// means errors.Is(err, context.DeadlineExceeded). Watchdog
	// cancellations are always transient.
	Transient func(error) bool

	// OnDepth, when non-nil, observes every queue-depth change (jobs
	// admitted but not yet started) — the metrics-gauge hook.
	OnDepth func(depth int)
	// OnBatch, when non-nil, observes every flush with the batch size.
	OnBatch func(size int)
	// OnRateLimited, when non-nil, observes every rate-limit rejection.
	OnRateLimited func(client string)
	// OnDequeue, when non-nil, observes every job leaving the queue for a
	// dispatch, with the client it was submitted under — the per-tenant
	// throughput hook (fairness is only observable per client).
	OnDequeue func(client string)
	// OnRetry, when non-nil, observes every scheduled retry with the
	// attempt number just failed and the backoff chosen.
	OnRetry func(client string, attempt int, backoff time.Duration)
	// OnAbandon, when non-nil, observes every wedged executor the
	// watchdog cut loose.
	OnAbandon func()
}

func (o Options) withDefaults() Options {
	if o.Capacity <= 0 {
		o.Capacity = 64
	}
	if o.PerClientCapacity <= 0 || o.PerClientCapacity > o.Capacity {
		o.PerClientCapacity = o.Capacity
	}
	if o.BatchSize <= 0 {
		o.BatchSize = 8
	}
	if o.MaxWait <= 0 {
		o.MaxWait = 50 * time.Millisecond
	}
	if o.Workers <= 0 {
		o.Workers = 1
	}
	if o.Burst <= 0 {
		o.Burst = int(math.Max(1, math.Ceil(o.RatePerClient)))
	}
	if o.AbandonGrace <= 0 {
		o.AbandonGrace = 2 * time.Second
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 1
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = 100 * time.Millisecond
	}
	if o.RetryBackoffCap <= 0 {
		o.RetryBackoffCap = 5 * time.Second
	}
	return o
}

// Queue is a bounded, fair, batching job queue with watchdogged
// execution. Construct with New; the zero value is not usable.
type Queue[Req, Res any] struct {
	opts Options
	exec func(context.Context, []*Job[Req, Res])

	mu       sync.Mutex
	clients  map[string]*client[Req, Res]
	order    []string // round-robin visiting order (registration order)
	rrIdx    int
	pending  int // jobs queued across all clients
	inflight int // jobs dispatched, not yet settled
	retries  int // retry timers outstanding
	draining bool
	notify   chan struct{} // coalesced "state changed" signal to the collector

	batches chan []*Job[Req, Res]

	rngMu sync.Mutex
	rng   *rand.Rand

	depth   atomic.Int64
	batchID atomic.Int64
	wg      sync.WaitGroup // collector + workers + retry timers
}

// client is one tenant's FIFO and token bucket.
type client[Req, Res any] struct {
	queue  []*Job[Req, Res]
	credit int // WRR credit left in the current turn

	tokens float64
	last   time.Time
}

// New builds the queue and starts its collector and worker goroutines.
//
// exec is the batch executor: it receives every dispatched batch and must
// Finish each job in it. The contract is enforced, not trusted — if exec
// panics, returns with unfinished jobs, or wedges past the watchdog, the
// queue finishes (or requeues) them so no waiter hangs. ctx is the
// execution context handed through to exec; cancelling it is a hard abort
// for in-flight work (use Drain for the graceful path). Executors must
// treat ctx cancellation as the watchdog's cancel signal and return.
func New[Req, Res any](ctx context.Context, opts Options, exec func(context.Context, []*Job[Req, Res])) *Queue[Req, Res] {
	if ctx == nil {
		ctx = context.Background()
	}
	opts = opts.withDefaults()
	seed := opts.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	q := &Queue[Req, Res]{
		opts:    opts,
		exec:    exec,
		clients: map[string]*client[Req, Res]{},
		notify:  make(chan struct{}, 1),
		batches: make(chan []*Job[Req, Res]),
		rng:     rand.New(rand.NewSource(seed)),
	}
	q.wg.Add(1)
	go q.collect()
	for i := 0; i < opts.Workers; i++ {
		q.wg.Add(1)
		go q.work(ctx)
	}
	return q
}

func (q *Queue[Req, Res]) retryEnabled() bool { return q.opts.MaxAttempts > 1 }
func (q *Queue[Req, Res]) maxAttempts() int   { return q.opts.MaxAttempts }

func (q *Queue[Req, Res]) transient(err error) bool {
	if q.opts.Transient != nil {
		return q.opts.Transient(err)
	}
	return errors.Is(err, context.DeadlineExceeded)
}

// Submit admits a job for the anonymous client. See SubmitClient.
func (q *Queue[Req, Res]) Submit(req Req) (*Job[Req, Res], error) {
	return q.SubmitClient("", req)
}

// SubmitClient admits a job carrying req on behalf of clientID, or
// rejects it without blocking: *RateLimitError when the client outran its
// token bucket, ErrQueueFull at the total or per-client capacity,
// ErrDraining after Drain began.
func (q *Queue[Req, Res]) SubmitClient(clientID string, req Req) (*Job[Req, Res], error) {
	j := &Job[Req, Res]{Req: req, q: q, done: make(chan struct{})}
	j.times.Enqueued = time.Now()
	j.client = clientID

	q.mu.Lock()
	if q.draining {
		q.mu.Unlock()
		return nil, ErrDraining
	}
	c := q.clientLocked(clientID)
	if q.opts.RatePerClient > 0 {
		if wait, ok := c.takeToken(q.opts, time.Now()); !ok {
			q.mu.Unlock()
			if q.opts.OnRateLimited != nil {
				q.opts.OnRateLimited(clientID)
			}
			return nil, &RateLimitError{Client: clientID, RetryAfter: wait}
		}
	}
	if q.pending >= q.opts.Capacity {
		q.mu.Unlock()
		return nil, fmt.Errorf("%w (capacity %d)", ErrQueueFull, q.opts.Capacity)
	}
	if len(c.queue) >= q.opts.PerClientCapacity {
		q.mu.Unlock()
		return nil, fmt.Errorf("%w (client %q at per-client capacity %d)", ErrQueueFull, clientID, q.opts.PerClientCapacity)
	}
	c.queue = append(c.queue, j)
	q.pending++
	q.notifyLocked()
	q.mu.Unlock()
	q.noteDepth(1)
	return j, nil
}

// clientLocked returns (creating if needed) the client record, pruning
// stale tenants when the map grows large. Callers hold q.mu.
func (q *Queue[Req, Res]) clientLocked(id string) *client[Req, Res] {
	if c, ok := q.clients[id]; ok {
		return c
	}
	if len(q.clients) >= 64 {
		q.pruneClientsLocked(id)
	}
	c := &client[Req, Res]{tokens: float64(q.opts.Burst), last: time.Now()}
	q.clients[id] = c
	q.order = append(q.order, id)
	return c
}

// pruneClientsLocked drops tenants with nothing queued and a fully
// refilled bucket — indistinguishable from a fresh client, so dropping
// them changes no behavior.
func (q *Queue[Req, Res]) pruneClientsLocked(keep string) {
	now := time.Now()
	kept := q.order[:0]
	for _, id := range q.order {
		c := q.clients[id]
		full := q.opts.RatePerClient <= 0 ||
			c.tokens+now.Sub(c.last).Seconds()*q.opts.RatePerClient >= float64(q.opts.Burst)
		if id != keep && len(c.queue) == 0 && full {
			delete(q.clients, id)
			continue
		}
		kept = append(kept, id)
	}
	q.order = kept
	if len(q.order) > 0 {
		q.rrIdx %= len(q.order)
	} else {
		q.rrIdx = 0
	}
}

// takeToken refills and spends one token; on failure it reports how long
// until a whole token accrues.
func (c *client[Req, Res]) takeToken(opts Options, now time.Time) (retryAfter time.Duration, ok bool) {
	c.tokens = math.Min(float64(opts.Burst), c.tokens+now.Sub(c.last).Seconds()*opts.RatePerClient)
	c.last = now
	if c.tokens >= 1 {
		c.tokens--
		return 0, true
	}
	need := (1 - c.tokens) / opts.RatePerClient
	return time.Duration(need * float64(time.Second)), false
}

// Depth returns the number of jobs admitted but not yet started.
func (q *Queue[Req, Res]) Depth() int { return int(q.depth.Load()) }

// notifyLocked pokes the collector; the channel is a coalesced signal.
func (q *Queue[Req, Res]) notifyLocked() {
	select {
	case q.notify <- struct{}{}:
	default:
	}
}

// Drain stops admission (Submit fails with ErrDraining) and waits until
// every already-admitted job — queued, in flight, or waiting out a retry
// backoff — has finished. It returns nil on a complete drain, or ctx's
// error if the deadline expires first (admitted work keeps running; Drain
// can be called again to keep waiting). Drain is idempotent and safe to
// call concurrently.
func (q *Queue[Req, Res]) Drain(ctx context.Context) error {
	q.mu.Lock()
	if !q.draining {
		q.draining = true
		q.notifyLocked()
	}
	q.mu.Unlock()

	done := make(chan struct{})
	go func() {
		q.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// takeOneLocked pops the next job under weighted round-robin: each client
// in visiting order gets up to weight() consecutive jobs per turn, then
// the turn passes. Completed jobs (a late success from an abandoned
// attempt) are dropped on the floor. Callers hold q.mu.
func (q *Queue[Req, Res]) takeOneLocked() *Job[Req, Res] {
	for q.pending > 0 {
		n := len(q.order)
		var j *Job[Req, Res]
		for i := 0; i < n; i++ {
			id := q.order[q.rrIdx]
			c := q.clients[id]
			if len(c.queue) == 0 {
				c.credit = 0
				q.rrIdx = (q.rrIdx + 1) % n
				continue
			}
			if c.credit <= 0 {
				c.credit = q.weight(id)
			}
			j = c.queue[0]
			c.queue = c.queue[1:]
			c.credit--
			if c.credit == 0 || len(c.queue) == 0 {
				c.credit = 0
				q.rrIdx = (q.rrIdx + 1) % n
			}
			break
		}
		if j == nil {
			return nil // inconsistent pending count; be safe
		}
		q.pending--
		q.noteDepth(-1)
		if j.finished() {
			continue // stale requeue of a job a late Finish already completed
		}
		return j
	}
	return nil
}

func (q *Queue[Req, Res]) weight(id string) int {
	if q.opts.ClientWeight == nil {
		return 1
	}
	if w := q.opts.ClientWeight(id); w > 0 {
		return w
	}
	return 1
}

// idleLocked reports whether a draining queue has nothing left to do.
func (q *Queue[Req, Res]) idleLocked() bool {
	return q.draining && q.pending == 0 && q.inflight == 0 && q.retries == 0
}

// collect gathers submissions into batches: a batch opens on its first
// job and flushes when it reaches BatchSize or when MaxWait has elapsed
// since it opened, whichever comes first. On drain it keeps collecting
// until every admitted job (including watchdog requeues) has settled,
// then closes the dispatch channel.
func (q *Queue[Req, Res]) collect() {
	defer q.wg.Done()
	defer close(q.batches)
	for {
		first := q.takeBlocking()
		if first == nil {
			return
		}
		batch := []*Job[Req, Res]{first}
		timer := time.NewTimer(q.opts.MaxWait)
	gather:
		for len(batch) < q.opts.BatchSize {
			q.mu.Lock()
			j := q.takeOneLocked()
			q.mu.Unlock()
			if j != nil {
				batch = append(batch, j)
				continue
			}
			select {
			case <-q.notify:
			case <-timer.C:
				break gather
			}
		}
		timer.Stop()
		q.dispatch(batch)
	}
}

// takeBlocking waits for the next job; nil means the queue has drained
// to empty and the collector should exit.
func (q *Queue[Req, Res]) takeBlocking() *Job[Req, Res] {
	for {
		q.mu.Lock()
		if j := q.takeOneLocked(); j != nil {
			q.mu.Unlock()
			return j
		}
		if q.idleLocked() {
			q.mu.Unlock()
			return nil
		}
		q.mu.Unlock()
		<-q.notify
	}
}

// dispatch stamps the batch and hands it to a worker.
func (q *Queue[Req, Res]) dispatch(batch []*Job[Req, Res]) {
	id := int(q.batchID.Add(1))
	now := time.Now()
	for _, j := range batch {
		j.markStarted(id, len(batch), now)
	}
	q.mu.Lock()
	q.inflight += len(batch)
	q.mu.Unlock()
	if q.opts.OnBatch != nil {
		q.opts.OnBatch(len(batch))
	}
	if q.opts.OnDequeue != nil {
		for _, j := range batch {
			q.opts.OnDequeue(j.Client())
		}
	}
	q.batches <- batch
}

// work executes dispatched batches until the collector closes the stream.
func (q *Queue[Req, Res]) work(ctx context.Context) {
	defer q.wg.Done()
	for batch := range q.batches {
		q.runBatch(ctx, batch)
	}
}

// runBatch executes one batch under the watchdog: the batch context is
// cancelled once the execution budget (JobTimeout x batch size) expires,
// and an executor that ignores the cancellation past AbandonGrace is
// abandoned — the worker reclaims its slot and settles the batch without
// it. Exactly-once Finish makes anything the abandoned goroutine does
// later harmless.
func (q *Queue[Req, Res]) runBatch(ctx context.Context, batch []*Job[Req, Res]) {
	bctx := ctx
	cancel := context.CancelFunc(func() {})
	if q.opts.JobTimeout > 0 {
		bctx, cancel = context.WithTimeout(ctx, q.opts.JobTimeout*time.Duration(len(batch)))
	}
	defer cancel()
	execDone := make(chan struct{})
	go func() {
		defer close(execDone)
		defer func() {
			if rec := recover(); rec != nil {
				for _, j := range batch {
					var zero Res
					j.Finish(zero, fmt.Errorf("jobqueue: executor panic: %v", rec))
				}
			}
		}()
		q.exec(bctx, batch)
	}()

	watchdogFired := false
	if q.opts.JobTimeout > 0 {
		select {
		case <-execDone:
		case <-bctx.Done():
			watchdogFired = errors.Is(bctx.Err(), context.DeadlineExceeded)
			// The executor was cancelled; give it the grace period to
			// honor the cancellation before cutting it loose.
			grace := time.NewTimer(q.opts.AbandonGrace)
			select {
			case <-execDone:
			case <-grace.C:
				if q.opts.OnAbandon != nil {
					q.opts.OnAbandon()
				}
			}
			grace.Stop()
		}
	} else {
		<-execDone
	}
	q.settle(batch, watchdogFired)
}

// settle is the single post-execution authority over every job of a
// batch: completed jobs pass through; jobs holding a recorded transient
// error, and jobs a fired watchdog left unfinished, are requeued with
// backoff or finished terminally once their attempts are spent; anything
// else unfinished is an executor bug completed with errDropped.
func (q *Queue[Req, Res]) settle(batch []*Job[Req, Res], watchdogFired bool) {
	for _, j := range batch {
		j.mu.Lock()
		if j.finished() {
			j.pendingErr = nil
			j.mu.Unlock()
			continue
		}
		cause := j.pendingErr
		j.pendingErr = nil
		if cause == nil {
			if !watchdogFired {
				j.mu.Unlock()
				var zero Res
				j.complete(zero, errDropped)
				continue
			}
			cause = fmt.Errorf("jobqueue: watchdog: job exceeded its %v execution budget: %w",
				q.opts.JobTimeout, context.DeadlineExceeded)
		}
		attempts := j.attempts
		if attempts >= q.maxAttempts() {
			j.mu.Unlock()
			var zero Res
			j.complete(zero, fmt.Errorf("jobqueue: job failed after %d attempt(s): %w", attempts, cause))
			continue
		}
		j.retryWait = true
		j.everRetried = true
		client := j.client
		j.mu.Unlock()
		q.scheduleRetry(j, client, attempts)
	}
	q.mu.Lock()
	q.inflight -= len(batch)
	q.notifyLocked()
	q.mu.Unlock()
}

// scheduleRetry requeues j on its client's queue after a capped
// exponential backoff with ±50% jitter. The timer counts as admitted work
// for Drain.
func (q *Queue[Req, Res]) scheduleRetry(j *Job[Req, Res], client string, failedAttempt int) {
	backoff := q.opts.RetryBackoff << uint(failedAttempt-1)
	if backoff > q.opts.RetryBackoffCap || backoff <= 0 {
		backoff = q.opts.RetryBackoffCap
	}
	q.rngMu.Lock()
	factor := 0.5 + q.rng.Float64() // [0.5, 1.5)
	q.rngMu.Unlock()
	backoff = time.Duration(float64(backoff) * factor)
	if q.opts.OnRetry != nil {
		q.opts.OnRetry(client, failedAttempt, backoff)
	}

	q.mu.Lock()
	q.retries++
	q.mu.Unlock()
	q.wg.Add(1)
	go func() {
		defer q.wg.Done()
		time.Sleep(backoff)
		q.mu.Lock()
		q.retries--
		// Requeue even while draining: the job was admitted before the
		// drain and the drain waits for it.
		c := q.clientLocked(client)
		c.queue = append(c.queue, j)
		q.pending++
		q.notifyLocked()
		q.mu.Unlock()
		q.noteDepth(1)
	}()
}

func (q *Queue[Req, Res]) noteDepth(delta int) {
	d := q.depth.Add(int64(delta))
	if q.opts.OnDepth != nil {
		q.opts.OnDepth(int(d))
	}
}
