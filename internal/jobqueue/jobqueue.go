// Package jobqueue is the bounded, batching job queue behind rtrbenchd:
// the layer that turns independent request/response submissions into the
// batched execution stream a multi-tenant benchmark service needs.
//
// The shape is the classic channel-based batcher: submissions land on a
// bounded channel (admission control — a full queue rejects with the typed
// ErrQueueFull instead of blocking the caller), a collector goroutine
// gathers them into batches flushed on whichever comes first of a size
// threshold and a max-wait timer, and a small worker pool executes the
// batches. Every job carries a per-request completion channel and
// per-stage timestamps (enqueue, start, done), so callers can both wait
// for their own result and observe how the batcher coalesced the load.
//
// Shutdown is a graceful drain: new submissions are rejected with
// ErrDraining while everything already admitted — queued or in flight —
// runs to completion. The executor contract plus a finish-of-last-resort
// sweep guarantee no job is ever lost or completed twice.
package jobqueue

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// ErrQueueFull is the typed admission-control rejection: the queue is at
// capacity and the submission was not admitted. Callers translate it into
// backpressure (HTTP 429, retry with backoff).
var ErrQueueFull = errors.New("jobqueue: queue full")

// ErrDraining rejects submissions arriving after Drain began: the queue
// still completes admitted work but admits nothing new.
var ErrDraining = errors.New("jobqueue: draining")

// errDropped is the finish-of-last-resort error for a job its executor
// returned without finishing — a bug in the executor, surfaced to the
// waiter instead of hanging it forever.
var errDropped = errors.New("jobqueue: executor returned without finishing job")

// Timestamps records the per-stage lifecycle instants of one job. Enqueued
// is stamped at admission, Started when a worker picks up the job's batch,
// Done when the job finishes. A zero instant means the stage has not been
// reached.
type Timestamps struct {
	Enqueued time.Time
	Started  time.Time
	Done     time.Time
}

// Job is one admitted unit of work. The submitting side waits on it
// (Wait/DoneCh); the executing side completes it exactly once (Finish).
type Job[Req, Res any] struct {
	// Req is the submission payload, immutable after Submit.
	Req Req

	mu        sync.Mutex
	times     Timestamps
	batch     int // 1-based flush sequence number; 0 until dispatched
	batchSize int
	res       Res
	err       error

	once sync.Once
	done chan struct{}
}

// Finish completes the job with a result or error, stamping the Done
// timestamp and waking every waiter. Only the first call has any effect:
// a duplicate Finish (retry logic gone wrong, executor sweep racing a
// slow executor) is a no-op, which is what makes "no duplicated results"
// a structural property instead of a convention.
func (j *Job[Req, Res]) Finish(res Res, err error) {
	j.once.Do(func() {
		j.mu.Lock()
		j.res, j.err = res, err
		j.times.Done = time.Now()
		j.mu.Unlock()
		close(j.done)
	})
}

// DoneCh is closed when the job has finished.
func (j *Job[Req, Res]) DoneCh() <-chan struct{} { return j.done }

// Finished reports whether the job has completed.
func (j *Job[Req, Res]) Finished() bool {
	select {
	case <-j.done:
		return true
	default:
		return false
	}
}

// Wait blocks until the job finishes or ctx is cancelled, returning the
// job's result or the first of (job error, ctx error).
func (j *Job[Req, Res]) Wait(ctx context.Context) (Res, error) {
	select {
	case <-j.done:
		return j.Result()
	case <-ctx.Done():
		var zero Res
		return zero, ctx.Err()
	}
}

// Result returns the finished job's result and error; before Finish it
// returns the zero result and a nil error (check Finished or use Wait).
func (j *Job[Req, Res]) Result() (Res, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.res, j.err
}

// Times returns a snapshot of the per-stage timestamps.
func (j *Job[Req, Res]) Times() Timestamps {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.times
}

// Batch returns the 1-based flush sequence number this job was dispatched
// in and the number of jobs that shared it (both 0 until dispatch). Jobs
// reporting the same number were coalesced into one flush — the observable
// evidence of batching.
func (j *Job[Req, Res]) Batch() (id, size int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.batch, j.batchSize
}

func (j *Job[Req, Res]) markStarted(batch, size int, at time.Time) {
	j.mu.Lock()
	j.times.Started = at
	j.batch, j.batchSize = batch, size
	j.mu.Unlock()
}

// Options configures a Queue.
type Options struct {
	// Capacity bounds the jobs admitted but not yet dispatched to a
	// worker; Submit fails with ErrQueueFull at capacity. <= 0 means 64.
	Capacity int
	// BatchSize flushes a batch as soon as it holds this many jobs.
	// <= 0 means 8.
	BatchSize int
	// MaxWait flushes a partial batch this long after its first job
	// arrived, bounding the latency a lonely job pays for batching.
	// <= 0 means 50ms.
	MaxWait time.Duration
	// Workers is the number of concurrent batch executors. <= 0 means 1.
	Workers int
	// OnDepth, when non-nil, observes every queue-depth change (jobs
	// admitted but not yet started) — the metrics-gauge hook.
	OnDepth func(depth int)
	// OnBatch, when non-nil, observes every flush with the batch size.
	OnBatch func(size int)
}

func (o Options) withDefaults() Options {
	if o.Capacity <= 0 {
		o.Capacity = 64
	}
	if o.BatchSize <= 0 {
		o.BatchSize = 8
	}
	if o.MaxWait <= 0 {
		o.MaxWait = 50 * time.Millisecond
	}
	if o.Workers <= 0 {
		o.Workers = 1
	}
	return o
}

// Queue is a bounded job queue with batched dispatch. Construct with New;
// the zero value is not usable.
type Queue[Req, Res any] struct {
	opts Options
	exec func(context.Context, []*Job[Req, Res])

	jobs    chan *Job[Req, Res]
	batches chan []*Job[Req, Res]

	mu       sync.Mutex // guards draining against the Submit send
	draining bool

	depth   atomic.Int64
	batchID atomic.Int64
	wg      sync.WaitGroup // collector + workers
}

// New builds the queue and starts its collector and worker goroutines.
//
// exec is the batch executor: it receives every dispatched batch and must
// Finish each job in it. The contract is enforced, not trusted — if exec
// panics or returns with unfinished jobs, the queue finishes them with an
// error so no waiter hangs. ctx is the execution context handed through to
// exec; cancelling it is a hard abort for in-flight work (use Drain for
// the graceful path).
func New[Req, Res any](ctx context.Context, opts Options, exec func(context.Context, []*Job[Req, Res])) *Queue[Req, Res] {
	if ctx == nil {
		ctx = context.Background()
	}
	opts = opts.withDefaults()
	q := &Queue[Req, Res]{
		opts:    opts,
		exec:    exec,
		jobs:    make(chan *Job[Req, Res], opts.Capacity),
		batches: make(chan []*Job[Req, Res]),
	}
	q.wg.Add(1)
	go q.collect()
	for i := 0; i < opts.Workers; i++ {
		q.wg.Add(1)
		go q.work(ctx)
	}
	return q
}

// Submit admits a job carrying req, or rejects it without blocking:
// ErrQueueFull at capacity, ErrDraining after Drain began.
func (q *Queue[Req, Res]) Submit(req Req) (*Job[Req, Res], error) {
	j := &Job[Req, Res]{Req: req, done: make(chan struct{})}
	j.times.Enqueued = time.Now()

	q.mu.Lock()
	defer q.mu.Unlock()
	if q.draining {
		return nil, ErrDraining
	}
	select {
	case q.jobs <- j:
	default:
		return nil, ErrQueueFull
	}
	q.noteDepth(1)
	return j, nil
}

// Depth returns the number of jobs admitted but not yet started.
func (q *Queue[Req, Res]) Depth() int { return int(q.depth.Load()) }

// Drain stops admission (Submit fails with ErrDraining) and waits until
// every already-admitted job — queued or in flight — has finished. It
// returns nil on a complete drain, or ctx's error if the deadline expires
// first (admitted work keeps running; Drain can be called again to keep
// waiting). Drain is idempotent and safe to call concurrently.
func (q *Queue[Req, Res]) Drain(ctx context.Context) error {
	q.mu.Lock()
	if !q.draining {
		q.draining = true
		close(q.jobs) // collector flushes the backlog, then exits
	}
	q.mu.Unlock()

	done := make(chan struct{})
	go func() {
		q.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// collect gathers submissions into batches: a batch opens on its first
// job and flushes when it reaches BatchSize or when MaxWait has elapsed
// since it opened, whichever comes first. On drain it flushes whatever
// remains and closes the dispatch channel.
func (q *Queue[Req, Res]) collect() {
	defer q.wg.Done()
	defer close(q.batches)
	for {
		first, ok := <-q.jobs
		if !ok {
			return
		}
		batch := []*Job[Req, Res]{first}
		timer := time.NewTimer(q.opts.MaxWait)
	gather:
		for len(batch) < q.opts.BatchSize {
			select {
			case j, ok := <-q.jobs:
				if !ok {
					break gather // draining: flush what we have
				}
				batch = append(batch, j)
			case <-timer.C:
				break gather // partial batch, max-wait expired
			}
		}
		timer.Stop()
		q.dispatch(batch)
		// After a drain-triggered flush the next loop iteration reads the
		// closed channel (draining any still-buffered jobs first) and
		// exits once it is empty.
	}
}

// dispatch stamps the batch and hands it to a worker.
func (q *Queue[Req, Res]) dispatch(batch []*Job[Req, Res]) {
	id := int(q.batchID.Add(1))
	now := time.Now()
	for _, j := range batch {
		j.markStarted(id, len(batch), now)
	}
	q.noteDepth(-len(batch))
	if q.opts.OnBatch != nil {
		q.opts.OnBatch(len(batch))
	}
	q.batches <- batch
}

// work executes dispatched batches until the collector closes the stream.
func (q *Queue[Req, Res]) work(ctx context.Context) {
	defer q.wg.Done()
	for batch := range q.batches {
		q.execBatch(ctx, batch)
	}
}

// execBatch runs the executor under the no-lost-jobs guarantee: a panic is
// converted into per-job errors, and any job the executor forgot to Finish
// is finished with errDropped.
func (q *Queue[Req, Res]) execBatch(ctx context.Context, batch []*Job[Req, Res]) {
	defer func() {
		rec := recover()
		for _, j := range batch {
			if rec != nil {
				var zero Res
				j.Finish(zero, fmt.Errorf("jobqueue: executor panic: %v", rec))
			} else if !j.Finished() {
				var zero Res
				j.Finish(zero, errDropped)
			}
		}
	}()
	q.exec(ctx, batch)
}

func (q *Queue[Req, Res]) noteDepth(delta int) {
	d := q.depth.Add(int64(delta))
	if q.opts.OnDepth != nil {
		q.opts.OnDepth(int(d))
	}
}
