package stream

import (
	"context"
	"sync"
	"time"
)

// Clock abstracts time for the periodic scheduler so the overload-policy
// arithmetic (release times, deadlines, misses, sheds) is testable without
// wall-clock flakiness. The scheduler only ever reads Now and waits with
// Sleep; it never owns timers directly.
type Clock interface {
	Now() time.Time
	// Sleep blocks until d has elapsed or ctx is done, in which case it
	// returns ctx.Err(). A non-positive d returns immediately (after a ctx
	// check).
	Sleep(ctx context.Context, d time.Duration) error
}

// WallClock is the real time.Now/time.Timer clock used outside tests.
type WallClock struct{}

// Now returns time.Now().
func (WallClock) Now() time.Time { return time.Now() }

// Sleep waits for d or for ctx cancellation, whichever comes first.
func (WallClock) Sleep(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// VirtualClock is a deterministic manual clock: Sleep advances simulated
// time instantly, and synthetic workloads model execution time by calling
// Advance. With one scheduler goroutine and at most one worker goroutine
// that only touches the clock while the scheduler is blocked waiting on it
// (the streamDriver protocol guarantees this alternation), every run is
// bit-reproducible — the property the overload-policy tests rely on.
type VirtualClock struct {
	mu  sync.Mutex
	now time.Time
}

// NewVirtualClock returns a virtual clock starting at start.
func NewVirtualClock(start time.Time) *VirtualClock {
	return &VirtualClock{now: start}
}

// Now returns the current simulated time.
func (c *VirtualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Sleep advances simulated time by d without blocking.
func (c *VirtualClock) Sleep(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	c.Advance(d)
	return nil
}

// Advance moves simulated time forward by d (synthetic work). Negative
// deltas are ignored: simulated time never runs backwards.
func (c *VirtualClock) Advance(d time.Duration) {
	if d <= 0 {
		return
	}
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}
