package stream

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/obs"
)

var epoch = time.Unix(1700000000, 0)

// syntheticStep models per-tick execution time on a virtual clock: tick i
// advances the clock by exec[i] (or def beyond the list). Under a cutoff
// tick it honors the deadline: it advances only to Tick.Deadline and
// returns ErrCutoff when the modeled work would run past it.
func syntheticStep(clk *VirtualClock, exec []time.Duration, def time.Duration) Step {
	call := 0
	return func(_ context.Context, t Tick) error {
		d := def
		if call < len(exec) {
			d = exec[call]
		}
		call++
		if t.Cutoff {
			if budget := t.Deadline.Sub(clk.Now()); d > budget {
				clk.Advance(budget)
				return ErrCutoff
			}
		}
		clk.Advance(d)
		return nil
	}
}

// The three policy tests share one overload scenario — a 10ms period with
// one 25ms step in an otherwise 4ms workload — and must each produce an
// exact, hand-derived tick/miss/shed/cutoff count. That determinism is the
// point of the virtual clock: no wall-clock noise, same counts every run.

func TestPolicySkipNextDeterministic(t *testing.T) {
	clk := NewVirtualClock(epoch)
	step := syntheticStep(clk, []time.Duration{4 * time.Millisecond, 25 * time.Millisecond}, 4*time.Millisecond)
	res, err := Run(context.Background(), Options{
		Period:   10 * time.Millisecond,
		Duration: 100 * time.Millisecond,
		Policy:   PolicySkipNext,
		Clock:    clk,
	}, step)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Releases 0,10 run; the 25ms step at release 10 finishes at 35, so
	// releases 20 and 30 are shed and the task re-syncs at 40..90.
	if res.Ticks != 8 {
		t.Errorf("Ticks = %d, want 8", res.Ticks)
	}
	if res.Misses != 1 {
		t.Errorf("Misses = %d, want 1", res.Misses)
	}
	if res.Sheds != 2 {
		t.Errorf("Sheds = %d, want 2", res.Sheds)
	}
	if res.Overruns != 1 {
		t.Errorf("Overruns = %d, want 1", res.Overruns)
	}
	if res.Cutoffs != 0 {
		t.Errorf("Cutoffs = %d, want 0", res.Cutoffs)
	}
	if res.Deadline != 10*time.Millisecond {
		t.Errorf("Deadline = %v, want the implicit period", res.Deadline)
	}
	if res.Latency.Misses != 1 || res.Latency.Count != 8 {
		t.Errorf("Latency summary = count %d misses %d, want 8/1", res.Latency.Count, res.Latency.Misses)
	}
	if got, want := res.MissRate(), 1.0/8; got != want {
		t.Errorf("MissRate = %v, want %v", got, want)
	}
	if res.Elapsed != 94*time.Millisecond {
		t.Errorf("Elapsed = %v, want 94ms", res.Elapsed)
	}
}

func TestPolicyQueueDeterministic(t *testing.T) {
	clk := NewVirtualClock(epoch)
	step := syntheticStep(clk, []time.Duration{4 * time.Millisecond, 25 * time.Millisecond}, 4*time.Millisecond)
	res, err := Run(context.Background(), Options{
		Period:   10 * time.Millisecond,
		Duration: 100 * time.Millisecond,
		Policy:   PolicyQueue,
		Clock:    clk,
	}, step)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Every release 0..90 stays scheduled; the backlog after the 25ms step
	// causes cascading lateness: releases 10, 20, and 30 all miss before
	// the task catches back up at release 40.
	if res.Ticks != 10 {
		t.Errorf("Ticks = %d, want 10", res.Ticks)
	}
	if res.Misses != 3 {
		t.Errorf("Misses = %d, want 3", res.Misses)
	}
	if res.Sheds != 0 {
		t.Errorf("Sheds = %d, want 0", res.Sheds)
	}
	if res.Overruns != 3 {
		t.Errorf("Overruns = %d, want 3", res.Overruns)
	}
	// Release 20 starts at 35: the max queueing jitter is exactly 15ms.
	if res.Jitter.Max != 15*time.Millisecond {
		t.Errorf("Jitter.Max = %v, want 15ms", res.Jitter.Max)
	}
}

func TestPolicyAnytimeCutoffDeterministic(t *testing.T) {
	clk := NewVirtualClock(epoch)
	step := syntheticStep(clk, []time.Duration{4 * time.Millisecond, 25 * time.Millisecond}, 4*time.Millisecond)
	res, err := Run(context.Background(), Options{
		Period:   10 * time.Millisecond,
		Duration: 100 * time.Millisecond,
		Policy:   PolicyAnytimeCutoff,
		Clock:    clk,
	}, step)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// The 25ms step is cut off at its 20ms absolute deadline, so the task
	// never falls more than one period behind: all 10 releases execute,
	// with exactly one cutoff (counted as a miss).
	if res.Ticks != 10 {
		t.Errorf("Ticks = %d, want 10", res.Ticks)
	}
	if res.Misses != 1 {
		t.Errorf("Misses = %d, want 1", res.Misses)
	}
	if res.Cutoffs != 1 {
		t.Errorf("Cutoffs = %d, want 1", res.Cutoffs)
	}
	if res.Sheds != 0 {
		t.Errorf("Sheds = %d, want 0", res.Sheds)
	}
	if res.Overruns != 1 {
		t.Errorf("Overruns = %d, want 1", res.Overruns)
	}
}

func TestExplicitDeadlineTighterThanPeriod(t *testing.T) {
	clk := NewVirtualClock(epoch)
	// 4ms of work against a 3ms deadline in a 10ms period: every tick
	// misses but the task never falls behind the period grid.
	step := syntheticStep(clk, nil, 4*time.Millisecond)
	res, err := Run(context.Background(), Options{
		Period:   10 * time.Millisecond,
		Deadline: 3 * time.Millisecond,
		MaxTicks: 5,
		Clock:    clk,
	}, step)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Ticks != 5 || res.Misses != 5 || res.Sheds != 0 || res.Overruns != 0 {
		t.Errorf("got ticks=%d misses=%d sheds=%d overruns=%d, want 5/5/0/0",
			res.Ticks, res.Misses, res.Sheds, res.Overruns)
	}
	if got := res.MissRate(); got != 1.0 {
		t.Errorf("MissRate = %v, want 1", got)
	}
}

func TestMaxTicksBound(t *testing.T) {
	clk := NewVirtualClock(epoch)
	res, err := Run(context.Background(), Options{
		Period:   time.Millisecond,
		MaxTicks: 7,
		Clock:    clk,
	}, syntheticStep(clk, nil, 100*time.Microsecond))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Ticks != 7 {
		t.Errorf("Ticks = %d, want 7", res.Ticks)
	}
}

func TestCancellationReturnsPartialResult(t *testing.T) {
	clk := NewVirtualClock(epoch)
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	step := func(context.Context, Tick) error {
		calls++
		clk.Advance(time.Millisecond)
		if calls == 3 {
			cancel()
		}
		return nil
	}
	res, err := Run(ctx, Options{Period: 2 * time.Millisecond, Clock: clk}, step)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res.Ticks != 3 {
		t.Errorf("Ticks = %d, want 3 before cancellation", res.Ticks)
	}
}

func TestStepErrorAbortsStream(t *testing.T) {
	clk := NewVirtualClock(epoch)
	boom := errors.New("boom")
	step := func(_ context.Context, t Tick) error {
		if t.Index == 2 {
			return boom
		}
		clk.Advance(time.Millisecond)
		return nil
	}
	res, err := Run(context.Background(), Options{Period: 2 * time.Millisecond, MaxTicks: 10, Clock: clk}, step)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if res.Ticks != 2 {
		t.Errorf("Ticks = %d, want 2 completed before the failure", res.Ticks)
	}
}

func TestUnboundedStreamRejectedOnlyByContext(t *testing.T) {
	// An Options with neither Duration nor MaxTicks is legal (the CLI
	// bounds it; a library caller bounds it with ctx): prove it ends
	// cleanly on cancellation rather than validating it away.
	clk := NewVirtualClock(epoch)
	ctx, cancel := context.WithCancel(context.Background())
	n := 0
	step := func(context.Context, Tick) error {
		n++
		if n >= 50 {
			cancel()
		}
		clk.Advance(time.Millisecond)
		return nil
	}
	res, err := Run(ctx, Options{Period: time.Millisecond, Clock: clk}, step)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res.Ticks != 50 {
		t.Errorf("Ticks = %d, want 50", res.Ticks)
	}
}

func TestOptionValidation(t *testing.T) {
	cases := []Options{
		{},                          // no period
		{Period: -time.Millisecond}, // negative period
		{Period: time.Millisecond, Deadline: -1},
		{Period: time.Millisecond, Duration: -1},
		{Period: time.Millisecond, MaxTicks: -1},
		{Period: time.Millisecond, Policy: "drop-oldest"},
	}
	for i, o := range cases {
		if _, err := Run(context.Background(), o, func(context.Context, Tick) error { return nil }); err == nil {
			t.Errorf("case %d: invalid options accepted", i)
		}
	}
}

func TestParsePolicy(t *testing.T) {
	if p, err := ParsePolicy(""); err != nil || p != PolicySkipNext {
		t.Errorf("ParsePolicy(\"\") = %v, %v; want skip-next default", p, err)
	}
	for _, s := range []string{"skip-next", "queue", "anytime-cutoff"} {
		if p, err := ParsePolicy(s); err != nil || string(p) != s {
			t.Errorf("ParsePolicy(%q) = %v, %v", s, p, err)
		}
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Error("ParsePolicy accepted an unknown policy")
	}
}

func TestLiveRegistryExport(t *testing.T) {
	clk := NewVirtualClock(epoch)
	reg := &obs.Registry{}
	step := syntheticStep(clk, []time.Duration{4 * time.Millisecond, 25 * time.Millisecond}, 4*time.Millisecond)
	res, err := Run(context.Background(), Options{
		Period:   10 * time.Millisecond,
		Duration: 100 * time.Millisecond,
		Policy:   PolicySkipNext,
		Clock:    clk,
		Live:     reg,
	}, step)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	counters := reg.Snapshot()
	if counters["stream_ticks"] != res.Ticks {
		t.Errorf("live stream_ticks = %d, want %d", counters["stream_ticks"], res.Ticks)
	}
	if counters["stream_deadline_misses"] != res.Misses {
		t.Errorf("live stream_deadline_misses = %d, want %d", counters["stream_deadline_misses"], res.Misses)
	}
	if counters["stream_sheds"] != res.Sheds {
		t.Errorf("live stream_sheds = %d, want %d", counters["stream_sheds"], res.Sheds)
	}
	gauges := reg.Gauges()
	if want := int64(res.MissRate() * 1e6); gauges["stream_miss_rate_ppm"] != want {
		t.Errorf("live stream_miss_rate_ppm = %d, want %d", gauges["stream_miss_rate_ppm"], want)
	}
	if gauges["stream_last_latency_ns"] != int64(4*time.Millisecond) {
		t.Errorf("live stream_last_latency_ns = %d, want the final 4ms tick", gauges["stream_last_latency_ns"])
	}
}

func TestWallClockSleepHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := (WallClock{}).Sleep(ctx, time.Hour); !errors.Is(err, context.Canceled) {
		t.Fatalf("Sleep on a cancelled ctx = %v, want context.Canceled", err)
	}
	if err := (WallClock{}).Sleep(context.Background(), -time.Second); err != nil {
		t.Fatalf("negative Sleep = %v, want nil", err)
	}
}
