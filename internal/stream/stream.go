// Package stream is the periodic real-time scheduler behind `rtrbench
// stream`: it models a kernel as a long-lived periodic task the way
// RT-Bench frames benchmarks — each tick arms a release time and an
// absolute deadline, runs one unit of work, and accounts latency
// (release→completion), jitter (release→start), and deadline hits/misses
// into obs histograms. When the task falls behind, a configurable overload
// policy decides what happens to the backlog:
//
//   - PolicySkipNext (load shedding): releases that would start in the past
//     are skipped — the task re-synchronizes to the period grid and each
//     skipped release counts as a shed.
//   - PolicyQueue: every release stays scheduled; a late task works through
//     the backlog with cascading lateness (jitter grows, misses cascade).
//   - PolicyAnytimeCutoff: the work itself is cut off at the deadline
//     (Tick.Cutoff asks the step to stop and return ErrCutoff), trading
//     result quality for schedulability — the streaming analogue of
//     Options.BestEffort.
//
// The scheduler is clock-agnostic (see Clock): production runs use the wall
// clock, tests drive a VirtualClock for deterministic miss/shed/cutoff
// counts. It knows nothing about kernels; rtrbench/stream.go adapts
// registered kernels onto the Step contract via the profile StepDone
// boundary.
package stream

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/obs"
)

// Policy selects the scheduler's overload behavior when a step overruns its
// period.
type Policy string

// The three overload policies.
const (
	PolicySkipNext      Policy = "skip-next"
	PolicyQueue         Policy = "queue"
	PolicyAnytimeCutoff Policy = "anytime-cutoff"
)

// ParsePolicy maps a user-facing policy string onto a Policy. The empty
// string selects PolicySkipNext, the default.
func ParsePolicy(s string) (Policy, error) {
	switch Policy(s) {
	case "":
		return PolicySkipNext, nil
	case PolicySkipNext, PolicyQueue, PolicyAnytimeCutoff:
		return Policy(s), nil
	default:
		return "", fmt.Errorf("stream: unknown policy %q (want %s, %s, or %s)",
			s, PolicySkipNext, PolicyQueue, PolicyAnytimeCutoff)
	}
}

// ErrCutoff is the sentinel a Step returns when it stopped at the deadline
// under PolicyAnytimeCutoff. The scheduler counts the tick as a cutoff (and
// a miss — the work did not complete in time) and keeps streaming; any
// other step error aborts the stream.
var ErrCutoff = errors.New("stream: step cut off at deadline")

// Tick describes one release of the periodic task.
type Tick struct {
	// Index is the 0-based tick number.
	Index int64
	// Release is the scheduled release time of this tick.
	Release time.Time
	// Start is when the step actually began (Start−Release is the jitter).
	Start time.Time
	// Deadline is the absolute deadline (Release + the relative deadline).
	Deadline time.Time
	// Cutoff is set under PolicyAnytimeCutoff: the step should stop at
	// Deadline and return ErrCutoff instead of running to completion.
	Cutoff bool
}

// Step executes one unit of periodic work. The scheduler calls it once per
// non-shed release; returning ErrCutoff marks an anytime cutoff, any other
// non-nil error aborts the stream.
type Step func(ctx context.Context, t Tick) error

// Options configure one streaming run.
type Options struct {
	// Period is the release interval (required, > 0).
	Period time.Duration
	// Deadline is the relative deadline armed at each release. Zero means
	// an implicit deadline equal to the period.
	Deadline time.Duration
	// Duration bounds the stream: no release is scheduled at or after
	// start+Duration. Zero means unbounded (the stream then ends on
	// MaxTicks or context cancellation).
	Duration time.Duration
	// MaxTicks, when > 0, stops the stream after that many executed ticks.
	MaxTicks int64
	// Policy is the overload policy; empty selects PolicySkipNext.
	Policy Policy
	// Clock injects a time source; nil uses the wall clock.
	Clock Clock
	// Live, when non-nil, receives running rtrbench_stream_* counters and
	// gauges (ticks, misses, sheds, cutoffs, last latency, miss rate) for
	// the /metrics endpoint while the stream runs.
	Live *obs.Registry
}

// normalize validates o and fills defaults.
func (o Options) normalize() (Options, error) {
	if o.Period <= 0 {
		return o, fmt.Errorf("stream: Period must be > 0 (got %v)", o.Period)
	}
	if o.Deadline < 0 {
		return o, fmt.Errorf("stream: Deadline must be >= 0 (got %v)", o.Deadline)
	}
	if o.Deadline == 0 {
		o.Deadline = o.Period
	}
	if o.Duration < 0 {
		return o, fmt.Errorf("stream: Duration must be >= 0 (got %v)", o.Duration)
	}
	if o.MaxTicks < 0 {
		return o, fmt.Errorf("stream: MaxTicks must be >= 0 (got %d)", o.MaxTicks)
	}
	p, err := ParsePolicy(string(o.Policy))
	if err != nil {
		return o, err
	}
	o.Policy = p
	if o.Clock == nil {
		o.Clock = WallClock{}
	}
	return o, nil
}

// Result is the accounting of one finished (or cancelled) stream.
type Result struct {
	// Policy, Period, and Deadline echo the normalized configuration.
	Policy   Policy
	Period   time.Duration
	Deadline time.Duration
	// Ticks counts executed releases (sheds excluded).
	Ticks int64
	// Misses counts ticks that completed after their absolute deadline;
	// cutoffs are included (cut-off work did not complete in time).
	Misses int64
	// Sheds counts releases skipped by PolicySkipNext while behind.
	Sheds int64
	// Cutoffs counts ticks cut off at the deadline (PolicyAnytimeCutoff).
	Cutoffs int64
	// Overruns counts ticks that finished at or after the next scheduled
	// release — the "task is behind" events the overload policy acts on.
	Overruns int64
	// Elapsed is the stream's total wall (or virtual) time.
	Elapsed time.Duration
	// Latency summarizes release→completion time per tick; its Deadline and
	// Misses fields carry the deadline accounting.
	Latency obs.Summary
	// Jitter summarizes release→start delay per tick.
	Jitter obs.Summary
}

// MissRate is the fraction of executed ticks that missed their deadline.
func (r Result) MissRate() float64 {
	if r.Ticks == 0 {
		return 0
	}
	return float64(r.Misses) / float64(r.Ticks)
}

// Run drives step as a periodic task until the configured Duration or
// MaxTicks bound is reached (returning the accounting with a nil error) or
// ctx is cancelled (returning the partial accounting with ctx.Err()).
func Run(ctx context.Context, opts Options, step Step) (Result, error) {
	opts, err := opts.normalize()
	if err != nil {
		return Result{}, err
	}
	clk := opts.Clock
	latency := obs.NewHistogram()
	jitter := obs.NewHistogram()
	res := Result{Policy: opts.Policy, Period: opts.Period, Deadline: opts.Deadline}
	finish := func() Result {
		res.Latency = latency.Summary()
		res.Latency.Deadline = opts.Deadline
		res.Latency.Misses = res.Misses
		res.Jitter = jitter.Summary()
		return res
	}

	start := clk.Now()
	var end time.Time
	if opts.Duration > 0 {
		end = start.Add(opts.Duration)
	}
	release := start
	for index := int64(0); ; index++ {
		if opts.MaxTicks > 0 && res.Ticks >= opts.MaxTicks {
			break
		}
		if !end.IsZero() && !release.Before(end) {
			break
		}
		now := clk.Now()
		if now.Before(release) {
			if err := clk.Sleep(ctx, release.Sub(now)); err != nil {
				res.Elapsed = clk.Now().Sub(start)
				return finish(), err
			}
			now = clk.Now()
		}
		if err := ctx.Err(); err != nil {
			res.Elapsed = clk.Now().Sub(start)
			return finish(), err
		}
		tick := Tick{
			Index:    index,
			Release:  release,
			Start:    now,
			Deadline: release.Add(opts.Deadline),
			Cutoff:   opts.Policy == PolicyAnytimeCutoff,
		}
		stepErr := step(ctx, tick)
		done := clk.Now()
		if stepErr != nil && !errors.Is(stepErr, ErrCutoff) {
			res.Elapsed = done.Sub(start)
			if ctx.Err() != nil && errors.Is(stepErr, ctx.Err()) {
				return finish(), stepErr
			}
			return finish(), fmt.Errorf("stream: tick %d: %w", index, stepErr)
		}

		res.Ticks++
		latency.Record(done.Sub(tick.Release))
		jitter.Record(tick.Start.Sub(tick.Release))
		cut := errors.Is(stepErr, ErrCutoff)
		miss := cut || done.After(tick.Deadline)
		if miss {
			res.Misses++
		}
		if cut {
			res.Cutoffs++
		}

		// Overload handling: next is where the period grid says the next
		// release belongs. Finishing at or past it is an overrun; skip-next
		// sheds the releases already in the past, queue (and anytime-cutoff,
		// whose steps are bounded by deadline <= anything the caller set)
		// keeps them scheduled and works through the backlog.
		overrun, sheds := false, int64(0)
		next := release.Add(opts.Period)
		if !done.Before(next) {
			overrun = true
			res.Overruns++
			if opts.Policy == PolicySkipNext {
				for !done.Before(next) {
					next = next.Add(opts.Period)
					sheds++
				}
				res.Sheds += sheds
			}
		}
		release = next

		if opts.Live != nil {
			publishLive(opts.Live, &res, tickStats{
				latency: done.Sub(tick.Release),
				miss:    miss,
				cut:     cut,
				overrun: overrun,
				sheds:   sheds,
			})
		}
	}
	res.Elapsed = clk.Now().Sub(start)
	return finish(), nil
}

// tickStats is the per-tick delta handed to the live exporter.
type tickStats struct {
	latency time.Duration
	miss    bool
	cut     bool
	overrun bool
	sheds   int64
}

// publishLive mirrors per-tick accounting into the live registry under the
// stream_* names (rtrbench_stream_* once the /metrics prefix is applied).
// Counters accumulate across streams sharing a registry (a daemon serving
// many streaming jobs); the two gauges carry the latest stream's state.
func publishLive(reg *obs.Registry, res *Result, t tickStats) {
	reg.Add("stream_ticks", 1)
	if t.miss {
		reg.Add("stream_deadline_misses", 1)
	}
	if t.cut {
		reg.Add("stream_cutoffs", 1)
	}
	if t.overrun {
		reg.Add("stream_overruns", 1)
	}
	if t.sheds > 0 {
		reg.Add("stream_sheds", t.sheds)
	}
	reg.SetGauge("stream_last_latency_ns", int64(t.latency))
	reg.SetGauge("stream_miss_rate_ppm", int64(res.MissRate()*1e6))
}
