package profile

import "sync"

// Sharded hands each worker goroutine its own Profile so parallel kernels
// can instrument without sharing a clock or taking a lock on the hot path.
// Profile itself is intentionally single-threaded (zero synchronization
// cost in the common case, mirroring the paper's "virtually zero effect on
// performance" hook contract); Sharded restores goroutine safety at the
// boundaries: Shard is safe to call concurrently, and Snapshot merges every
// shard into one aggregate report.
//
// Usage:
//
//	sh := profile.NewSharded(p) // p configures the shards (deadline, steps)
//	for w := 0; w < workers; w++ {
//		shard := sh.Shard()
//		go func() { ... shard.Begin("phase") ... }()
//	}
//	// after all workers have quiesced:
//	rep := sh.Snapshot()
//
// Snapshot must not race with shard use: merge only after the workers have
// finished (a shard snapshotted mid-phase yields an Inconsistent report,
// not a data race on the aggregate — but the shard's own fields would race).
type Sharded struct {
	mu     sync.Mutex
	parent *Profile
	shards []*Profile
}

// NewSharded returns a sharded wrapper whose shards inherit parent's
// configuration (enabled/disabled state, deadline, step tracking, tracing).
// A nil parent behaves like New(). If parent is disabled, every shard is
// disabled and Snapshot returns an empty report — the disabled no-op
// contract extends across the fan-out.
func NewSharded(parent *Profile) *Sharded {
	if parent == nil {
		parent = New()
	}
	return &Sharded{parent: parent}
}

// Shard returns a fresh Profile for one worker. Safe for concurrent use.
func (s *Sharded) Shard() *Profile {
	if !s.parent.Enabled() {
		return Disabled()
	}
	p := New()
	if s.parent.steps != nil {
		p.EnableSteps()
		p.deadline = s.parent.deadline
	}
	p.traced = s.parent.traced
	p.live = s.parent.live
	s.mu.Lock()
	s.shards = append(s.shards, p)
	s.mu.Unlock()
	return p
}

// Snapshot merges every shard into the parent profile and returns the
// aggregate report. Call it after the workers have quiesced; a shard with
// an open ROI or phase marks the report Inconsistent (see Profile.Merge).
// Snapshot may be called repeatedly — each call re-merges shards created
// since the last call and only those, so no shard is double-counted.
func (s *Sharded) Snapshot() Report {
	s.mu.Lock()
	pending := s.shards
	s.shards = nil
	s.mu.Unlock()
	for _, sh := range pending {
		s.parent.Merge(sh)
	}
	return s.parent.Snapshot()
}
