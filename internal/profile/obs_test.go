package profile

import (
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestThreeLevelNestedExclusive(t *testing.T) {
	p := New()
	p.BeginROI()
	p.Begin("a")
	spin(1 * time.Millisecond)
	p.Begin("b")
	spin(1 * time.Millisecond)
	p.Begin("c")
	spin(4 * time.Millisecond)
	p.End()
	spin(1 * time.Millisecond)
	p.End()
	spin(1 * time.Millisecond)
	p.End()
	p.EndROI()

	r := p.Snapshot()
	a, _ := r.Phase("a")
	b, _ := r.Phase("b")
	c, _ := r.Phase("c")
	// c ran 4ms; a and b each ran ~2ms exclusive. Exclusive attribution
	// must hold through the full depth, not just one level.
	if c.Total < 3*time.Millisecond {
		t.Fatalf("c = %v", c.Total)
	}
	if a.Total >= c.Total || b.Total >= c.Total {
		t.Fatalf("exclusive attribution broken: a=%v b=%v c=%v", a.Total, b.Total, c.Total)
	}
	// Exclusive totals must not exceed the ROI.
	if sum := a.Total + b.Total + c.Total; sum > r.ROI+time.Millisecond {
		t.Fatalf("phases sum %v > ROI %v", sum, r.ROI)
	}
	if r.Inconsistent {
		t.Fatal("balanced profile flagged inconsistent")
	}
}

func TestMergeAssociative(t *testing.T) {
	// Profiles are constructed deterministically (no wall clock) so the
	// associativity check can demand exact equality.
	build := func(n int64) func() *Profile {
		return func() *Profile {
			p := New()
			p.EnableSteps()
			p.roiTotal = time.Duration(n) * time.Millisecond
			p.phases["x"] = &phase{total: time.Duration(n) * time.Millisecond, calls: 1}
			p.steps.Record(time.Duration(n) * time.Millisecond)
			p.counters["ops"] = n
			return p
		}
	}
	mkA, mkB, mkC := build(1), build(2), build(3)

	// (a ⊕ b) ⊕ c
	a1, b1, c1 := mkA(), mkB(), mkC()
	a1.Merge(b1)
	a1.Merge(c1)
	r1 := a1.Snapshot()

	// a ⊕ (b ⊕ c)
	a2, b2, c2 := mkA(), mkB(), mkC()
	b2.Merge(c2)
	a2.Merge(b2)
	r2 := a2.Snapshot()

	if r1.Counters["ops"] != 6 || r2.Counters["ops"] != 6 {
		t.Fatalf("counters: %d vs %d", r1.Counters["ops"], r2.Counters["ops"])
	}
	x1, _ := r1.Phase("x")
	x2, _ := r2.Phase("x")
	if x1.Calls != 3 || x2.Calls != 3 || x1.Total != x2.Total {
		t.Fatalf("phase x differs: %+v vs %+v", x1, x2)
	}
	if r1.ROI != r2.ROI || r1.ROI != 6*time.Millisecond {
		t.Fatalf("ROI differs: %v vs %v", r1.ROI, r2.ROI)
	}
	if r1.Steps != r2.Steps {
		t.Fatalf("steps differ: %+v vs %+v", r1.Steps, r2.Steps)
	}
	if r1.Steps.Count != 3 {
		t.Fatalf("steps = %+v", r1.Steps)
	}
}

func TestMergeIntoDisabledIsDocumentedNoop(t *testing.T) {
	d := Disabled()
	src := New()
	src.BeginROI()
	src.Span("x", func() { spin(time.Millisecond) })
	src.EndROI()
	d.Merge(src)
	if r := d.Snapshot(); r.ROI != 0 || len(r.Phases) != 0 {
		t.Fatalf("disabled receiver recorded merge: %+v", r)
	}
	var nilP *Profile
	nilP.Merge(src) // must not panic
}

func TestMergeOpenROI(t *testing.T) {
	src := New()
	src.BeginROI()
	spin(2 * time.Millisecond)
	// src deliberately left with an open ROI.

	dst := New()
	dst.Merge(src)
	r := dst.Snapshot()
	if !r.Inconsistent {
		t.Fatal("open-ROI merge not flagged inconsistent")
	}
	if r.ROI < 2*time.Millisecond {
		t.Fatalf("in-flight ROI time dropped: %v", r.ROI)
	}
	// src must be untouched and still usable.
	src.EndROI()
	if sr := src.Snapshot(); sr.Inconsistent || sr.ROI < 2*time.Millisecond {
		t.Fatalf("merge mutated other: %+v", sr)
	}
}

func TestMergeOpenPhasePropagatesInconsistency(t *testing.T) {
	src := New()
	src.BeginROI()
	src.Begin("stuck")

	dst := New()
	dst.Merge(src)
	if !dst.Snapshot().Inconsistent {
		t.Fatal("open-phase merge not flagged")
	}
	// Inconsistency must survive further merges.
	final := New()
	final.Merge(dst)
	if !final.Snapshot().Inconsistent {
		t.Fatal("inconsistency dropped by second merge")
	}
}

func TestSnapshotInconsistencyFlag(t *testing.T) {
	p := New()
	p.BeginROI()
	p.Begin("outer")
	p.Begin("inner")
	r := p.Snapshot()
	if !r.Inconsistent {
		t.Fatal("open ROI + phases not flagged")
	}
	if len(r.OpenPhases) != 2 || r.OpenPhases[0] != "outer" || r.OpenPhases[1] != "inner" {
		t.Fatalf("OpenPhases = %v", r.OpenPhases)
	}
	if !strings.Contains(r.String(), "inconsistent") {
		t.Fatalf("String() hides inconsistency:\n%s", r.String())
	}
	// Closing everything clears the flag on the next snapshot.
	p.End()
	p.End()
	p.EndROI()
	if r := p.Snapshot(); r.Inconsistent {
		t.Fatalf("balanced profile still flagged: %v", r.OpenPhases)
	}
}

func TestStepLatencyAndDeadline(t *testing.T) {
	p := New()
	p.SetDeadline(500 * time.Microsecond)
	p.BeginROI()
	for i := 0; i < 5; i++ {
		spin(100 * time.Microsecond)
		p.StepDone()
	}
	spin(2 * time.Millisecond) // one slow step
	p.StepDone()
	p.EndROI()

	r := p.Snapshot()
	if r.Steps.Count != 6 {
		t.Fatalf("steps = %d", r.Steps.Count)
	}
	if r.Steps.Deadline != 500*time.Microsecond {
		t.Fatalf("deadline = %v", r.Steps.Deadline)
	}
	if r.Steps.Misses != 1 {
		t.Fatalf("misses = %d", r.Steps.Misses)
	}
	if r.Steps.Max < 2*time.Millisecond {
		t.Fatalf("max = %v", r.Steps.Max)
	}
	if r.Steps.P50 > r.Steps.P99 || r.Steps.P99 > r.Steps.Max {
		t.Fatalf("quantiles out of order: %+v", r.Steps)
	}
	if !strings.Contains(r.String(), "misses=1") {
		t.Fatalf("String() missing deadline line:\n%s", r.String())
	}
}

func TestStepDoneWithoutEnableIsNoop(t *testing.T) {
	p := New()
	p.BeginROI()
	p.StepDone()
	p.EndROI()
	if r := p.Snapshot(); r.Steps.Count != 0 {
		t.Fatalf("untracked steps recorded: %+v", r.Steps)
	}
}

func TestCEMStyleRepeatedROIKeepsStepCadence(t *testing.T) {
	// cem opens and closes the ROI several times per iteration; the step
	// mark must persist across EndROI/BeginROI so each StepDone measures a
	// full iteration, not just the last ROI fragment.
	p := New()
	p.EnableSteps()
	for i := 0; i < 3; i++ {
		p.BeginROI()
		spin(200 * time.Microsecond)
		p.EndROI()
		spin(100 * time.Microsecond) // out-of-ROI work
		p.BeginROI()
		spin(200 * time.Microsecond)
		p.EndROI()
		p.StepDone()
	}
	r := p.Snapshot()
	if r.Steps.Count != 3 {
		t.Fatalf("steps = %d", r.Steps.Count)
	}
	if r.Steps.Min < 400*time.Microsecond {
		t.Fatalf("step fragmented: min = %v", r.Steps.Min)
	}
}

func TestReset(t *testing.T) {
	p := New()
	p.SetDeadline(time.Microsecond)
	p.EnableTrace()
	p.BeginROI()
	p.Span("x", func() { spin(time.Millisecond) })
	p.StepDone()
	p.EndROI()
	p.Count("n", 7)
	p.Begin("left-open")

	p.Reset()
	r := p.Snapshot()
	if r.ROI != 0 || len(r.Phases) != 0 || len(r.Counters) != 0 {
		t.Fatalf("reset left data: %+v", r)
	}
	if r.Steps.Count != 0 || r.Steps.Misses != 0 || len(r.Trace) != 0 {
		t.Fatalf("reset left step/trace data: %+v", r)
	}
	if r.Inconsistent {
		t.Fatal("reset left inconsistency flag")
	}
	// Configuration survives: deadline still armed, tracing still on.
	p.BeginROI()
	spin(100 * time.Microsecond)
	p.StepDone()
	p.EndROI()
	r = p.Snapshot()
	if r.Steps.Count != 1 || r.Steps.Misses != 1 || r.Steps.Deadline != time.Microsecond {
		t.Fatalf("config lost after reset: %+v", r.Steps)
	}
	if len(r.Trace) == 0 {
		t.Fatal("tracing lost after reset")
	}
}

func TestTraceEvents(t *testing.T) {
	p := New()
	p.EnableTrace()
	p.EnableSteps()
	p.BeginROI()
	p.Span("raycast", func() { spin(time.Millisecond) })
	p.StepDone()
	p.EndROI()

	r := p.Snapshot()
	// Expect: raycast phase, step, ROI — all complete events.
	if len(r.Trace) != 3 {
		t.Fatalf("trace events = %d: %+v", len(r.Trace), r.Trace)
	}
	names := map[string]bool{}
	for i, ev := range r.Trace {
		names[ev.Name] = true
		if ev.Ph != "X" || ev.Pid != obs.TracePid || ev.Dur <= 0 {
			t.Fatalf("bad event: %+v", ev)
		}
		if ev.Ts < 0 {
			t.Fatalf("negative rebased ts: %+v", ev)
		}
		if i > 0 && ev.Ts < r.Trace[i-1].Ts {
			t.Fatalf("events unsorted at %d", i)
		}
	}
	for _, want := range []string{"ROI", "raycast", "step"} {
		if !names[want] {
			t.Fatalf("missing %q in trace: %v", want, names)
		}
	}
	if r.Trace[0].Ts != 0 {
		t.Fatalf("earliest event not rebased to 0: %v", r.Trace[0].Ts)
	}
}

func TestTraceMarksDeadlineMiss(t *testing.T) {
	p := New()
	p.SetDeadline(time.Microsecond)
	p.EnableTrace()
	p.BeginROI()
	spin(time.Millisecond)
	p.StepDone()
	p.EndROI()
	var found bool
	for _, ev := range p.Snapshot().Trace {
		if ev.Name == "step" && ev.Args["deadline_miss"] == true {
			found = true
		}
	}
	if !found {
		t.Fatal("missed step not marked in trace")
	}
}

func TestPublishLive(t *testing.T) {
	reg := &obs.Registry{}
	p := New()
	p.SetDeadline(time.Microsecond)
	p.PublishLive(reg)
	p.BeginROI()
	p.Count("cells", 10)
	spin(time.Millisecond)
	p.StepDone()
	p.EndROI()
	snap := reg.Snapshot()
	if snap["cells"] != 10 || snap["steps_total"] != 1 || snap["deadline_misses_total"] != 1 {
		t.Fatalf("live counters = %v", snap)
	}
}

func TestDisabledZeroAlloc(t *testing.T) {
	p := Disabled()
	fn := func() {}
	allocs := testing.AllocsPerRun(200, func() {
		p.BeginROI()
		p.Begin("x")
		p.Count("c", 1)
		p.StepDone()
		p.End()
		p.Span("y", fn)
		p.EndROI()
	})
	if allocs != 0 {
		t.Fatalf("disabled profile allocates: %v allocs/op", allocs)
	}
}
