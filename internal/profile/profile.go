// Package profile is the suite's region-of-interest (ROI) harness. It plays
// the role zsim hooks play in the original RTRBench: kernels mark the start
// and end of their ROI and of named phases inside it (ray-casting, collision
// detection, nearest-neighbor search, matrix operations, sorting, ...), and
// the harness accumulates wall time and operation counts per phase.
//
// The paper's evaluation numbers are fractions of ROI time spent in each
// bottleneck phase; Report.Fraction reproduces exactly that quantity. Like
// the zsim hooks ("no effect on correctness and virtually zero effect on
// performance", §VI), a disabled Profile turns every call into a cheap no-op
// so benchmarks can run without instrumentation overhead; bench_test.go
// asserts the disabled fast path stays allocation-free.
//
// On top of the phase breakdown the profile offers three observability
// extensions (all opt-in, all no-ops until enabled):
//
//   - Step latency: kernels call StepDone at the end of each iteration of
//     their main loop (a filter cycle, an ICP iteration, a sampling step, a
//     full planning episode for one-shot planners). SetDeadline arms a
//     real-time deadline; the snapshot reports the per-step latency
//     distribution (p50/p95/p99/max) and the deadline-miss count — the
//     quantity a real-time suite must report that a phase table cannot.
//   - Tracing: EnableTrace records begin/end events for every phase, ROI,
//     and step; Report.Trace exports them as Chrome trace_event JSON
//     (chrome://tracing, Perfetto).
//   - Live counters: PublishLive mirrors operation counters, step counts,
//     and deadline misses into an obs.Registry so the --httpdebug /metrics
//     endpoint can expose them while the kernel runs.
package profile

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/obs"
)

// Profile accumulates phase timings and counters for one kernel execution.
// A nil or disabled Profile is safe to use; all methods become no-ops.
// Profile is not safe for concurrent use by multiple goroutines; parallel
// kernels keep one Profile per worker and Merge them (see Sharded).
type Profile struct {
	disabled bool

	roiStart time.Time
	roiTotal time.Duration
	inROI    bool

	phases   map[string]*phase
	counters map[string]int64

	stack []frame // active nested phases

	// inconsistent records that merged-in state was structurally unsound
	// (an open ROI or open phases on the source profile).
	inconsistent bool

	// Step latency (nil steps = tracking off; see EnableSteps/SetDeadline).
	steps    *obs.Histogram
	deadline time.Duration
	misses   int64
	stepMark time.Time

	// Tracing (see EnableTrace).
	traced bool
	spans  []span

	// Live counter export (see PublishLive).
	live *obs.Registry

	// Step hook (see SetStepHook).
	stepHook func()
}

type phase struct {
	total time.Duration
	calls int64
}

type frame struct {
	name  string
	start time.Time
	// child time is subtracted from the parent so phase fractions are
	// exclusive: nested regions never double-count.
	child time.Duration
}

// span is one recorded trace interval (or instant, when dur < 0 is never
// used — misses are flagged separately).
type span struct {
	name  string
	start time.Time
	dur   time.Duration
	tid   int
	miss  bool // step exceeded the deadline
}

// New returns an enabled, empty profile.
func New() *Profile {
	return &Profile{
		phases:   make(map[string]*phase),
		counters: make(map[string]int64),
	}
}

// Disabled returns a profile whose methods are no-ops.
func Disabled() *Profile { return &Profile{disabled: true} }

// Enabled reports whether the profile records anything.
func (p *Profile) Enabled() bool { return p != nil && !p.disabled }

// EnableSteps turns on per-step latency recording without a deadline.
func (p *Profile) EnableSteps() {
	if !p.Enabled() || p.steps != nil {
		return
	}
	p.steps = obs.NewHistogram()
}

// SetDeadline arms a per-step real-time deadline and enables step latency
// recording. A non-positive d disables the deadline but keeps recording.
func (p *Profile) SetDeadline(d time.Duration) {
	if !p.Enabled() {
		return
	}
	p.EnableSteps()
	if d < 0 {
		d = 0
	}
	p.deadline = d
}

// EnableTrace turns on begin/end event recording for phases, the ROI, and
// steps. The snapshot exports them in Chrome trace_event form.
func (p *Profile) EnableTrace() {
	if !p.Enabled() {
		return
	}
	p.traced = true
}

// PublishLive mirrors counters, step totals, and deadline misses into reg
// as they happen, for live exposition on the debug server's /metrics
// endpoint. A nil reg turns mirroring off.
func (p *Profile) PublishLive(reg *obs.Registry) {
	if !p.Enabled() {
		return
	}
	p.live = reg
}

// SetStepHook installs fn to run at every StepDone of this enabled profile,
// before latency bookkeeping. Because all kernels call StepDone once per
// iteration of their main loop, the hook is a uniform per-step injection
// point — the chaos layer uses it to fire stalls and injected panics without
// per-kernel wiring. A nil fn removes the hook. No-op on disabled profiles,
// which is what shields warmup runs (they use Disabled()) from injection.
func (p *Profile) SetStepHook(fn func()) {
	if !p.Enabled() {
		return
	}
	p.stepHook = fn
}

// BeginROI marks the start of the kernel's region of interest. The first
// BeginROI also starts the first step interval when step tracking is on.
func (p *Profile) BeginROI() {
	if !p.Enabled() {
		return
	}
	p.inROI = true
	p.roiStart = time.Now()
	if p.steps != nil && p.stepMark.IsZero() {
		p.stepMark = p.roiStart
	}
}

// EndROI marks the end of the region of interest.
func (p *Profile) EndROI() {
	if !p.Enabled() || !p.inROI {
		return
	}
	elapsed := time.Since(p.roiStart)
	p.roiTotal += elapsed
	p.inROI = false
	if p.traced {
		p.spans = append(p.spans, span{name: "ROI", start: p.roiStart, dur: elapsed, tid: obs.TraceTidPhases})
	}
}

// Begin opens a named phase. Phases may nest; time spent in an inner phase
// is attributed to the inner phase only.
func (p *Profile) Begin(name string) {
	if !p.Enabled() {
		return
	}
	p.stack = append(p.stack, frame{name: name, start: time.Now()})
}

// End closes the innermost open phase.
func (p *Profile) End() {
	if !p.Enabled() || len(p.stack) == 0 {
		return
	}
	f := p.stack[len(p.stack)-1]
	p.stack = p.stack[:len(p.stack)-1]
	elapsed := time.Since(f.start)
	ph := p.phases[f.name]
	if ph == nil {
		ph = &phase{}
		p.phases[f.name] = ph
	}
	ph.total += elapsed - f.child
	ph.calls++
	if len(p.stack) > 0 {
		p.stack[len(p.stack)-1].child += elapsed
	}
	if p.traced {
		// The trace span keeps the inclusive duration: the viewer shows
		// nesting visually, while the phase table stays exclusive.
		p.spans = append(p.spans, span{name: f.name, start: f.start, dur: elapsed, tid: obs.TraceTidPhases})
	}
}

// Span runs fn inside a named phase. It is the preferred form for short
// regions because it cannot be left unbalanced.
func (p *Profile) Span(name string, fn func()) {
	p.Begin(name)
	fn()
	p.End()
}

// Count adds delta to a named operation counter (cells visited, distance
// evaluations, string bytes touched, ...).
func (p *Profile) Count(name string, delta int64) {
	if !p.Enabled() {
		return
	}
	p.counters[name] += delta
	if p.live != nil {
		p.live.Add(name, delta)
	}
}

// StepDone closes one step interval: it records the wall time since the
// previous StepDone (or since the first BeginROI for the first step) into
// the latency histogram and checks it against the armed deadline. It also
// fires the step hook, if one is installed. Without step tracking or a hook
// it is a no-op, so the hot path of uninstrumented runs pays a single branch.
func (p *Profile) StepDone() {
	if !p.Enabled() {
		return
	}
	if p.stepHook != nil {
		p.stepHook()
	}
	if p.steps == nil {
		return
	}
	now := time.Now()
	if p.stepMark.IsZero() {
		// No interval open yet (StepDone before any BeginROI): start one.
		p.stepMark = now
		return
	}
	d := now.Sub(p.stepMark)
	p.stepMark = now
	p.steps.Record(d)
	miss := p.deadline > 0 && d > p.deadline
	if miss {
		p.misses++
	}
	if p.traced {
		p.spans = append(p.spans, span{name: "step", start: now.Add(-d), dur: d, tid: obs.TraceTidSteps, miss: miss})
	}
	if p.live != nil {
		p.live.Add("steps_total", 1)
		if miss {
			p.live.Add("deadline_misses_total", 1)
		}
	}
}

// Reset clears all accumulated data — phases, counters, ROI time, step
// latencies, misses, trace events, and the inconsistency flag — while
// keeping configuration (deadline, step tracking, tracing, live registry).
// Harness loops reuse one Profile across repetitions without reallocating
// the maps. Open phases and an open ROI are discarded.
//
// When live export is on, Reset also withdraws everything this profile
// already pushed into the registry (operation counters, steps_total,
// deadline_misses_total). Without that, a reset-and-retried run — the suite
// engine resets a trial's shard after a failed attempt — would leave the
// discarded attempt's steps and misses in the live gauges forever, so
// /metrics would disagree with the final Snapshot.
func (p *Profile) Reset() {
	if !p.Enabled() {
		return
	}
	if p.live != nil {
		for name, v := range p.counters {
			if v != 0 {
				p.live.Add(name, -v)
			}
		}
		if p.steps != nil {
			if n := p.steps.Count(); n > 0 {
				p.live.Add("steps_total", -n)
			}
			if p.misses > 0 {
				p.live.Add("deadline_misses_total", -p.misses)
			}
		}
	}
	p.roiStart = time.Time{}
	p.roiTotal = 0
	p.inROI = false
	for k := range p.phases {
		delete(p.phases, k)
	}
	for k := range p.counters {
		delete(p.counters, k)
	}
	p.stack = p.stack[:0]
	p.inconsistent = false
	if p.steps != nil {
		p.steps.Reset()
	}
	p.misses = 0
	p.stepMark = time.Time{}
	p.spans = p.spans[:0]
}

// Merge folds other's phases, counters, ROI time, step latencies, deadline
// misses, and trace events into p.
//
// Merge on a nil or disabled receiver is a deliberate no-op: a disabled
// aggregate discards worker data instead of resurrecting instrumentation
// the caller turned off. Merging a nil or disabled other is likewise a
// no-op.
//
// If other has an open ROI or open phases at merge time (a worker that was
// not quiesced), Merge folds the in-flight ROI time accrued so far and
// marks the receiver's snapshots Inconsistent rather than silently dropping
// the in-flight work. other is never mutated.
func (p *Profile) Merge(other *Profile) {
	if !p.Enabled() || other == nil || other.disabled {
		return
	}
	p.roiTotal += other.roiTotal
	if other.inROI {
		// In-flight ROI time: count what has accrued, flag the snapshot.
		p.roiTotal += time.Since(other.roiStart)
		p.inconsistent = true
	}
	if len(other.stack) > 0 || other.inconsistent {
		p.inconsistent = true
	}
	for name, ph := range other.phases {
		dst := p.phases[name]
		if dst == nil {
			dst = &phase{}
			p.phases[name] = dst
		}
		dst.total += ph.total
		dst.calls += ph.calls
	}
	for name, v := range other.counters {
		p.counters[name] += v
	}
	if other.steps != nil {
		p.EnableSteps()
		p.steps.Merge(other.steps)
		p.misses += other.misses
		if p.deadline == 0 {
			p.deadline = other.deadline
		}
	}
	if len(other.spans) > 0 {
		p.spans = append(p.spans, other.spans...)
	}
}

// Report is an immutable snapshot of a profile.
type Report struct {
	ROI    time.Duration
	Phases []PhaseStat
	// Counters are operation counts (always non-nil).
	Counters map[string]int64
	// Steps is the per-step latency distribution and deadline accounting;
	// Steps.Count == 0 and Steps.Deadline == 0 mean step tracking was off.
	Steps obs.Summary
	// Inconsistent is set when the snapshot was taken with phases still
	// open or the ROI still running (in-flight time is NOT included in the
	// totals), or when Merge folded in a profile in that state. Tests treat
	// it as a harness bug.
	Inconsistent bool
	// OpenPhases lists the names on the phase stack at snapshot time,
	// innermost last (diagnostic detail for Inconsistent).
	OpenPhases []string
	// Trace holds the Chrome trace_event export when tracing was enabled,
	// with timestamps rebased so the earliest event starts at 0.
	Trace []obs.TraceEvent
}

// PhaseStat is the accumulated cost of one named phase.
type PhaseStat struct {
	Name  string
	Total time.Duration
	Calls int64
}

// Snapshot returns the current report. Open phases and an open ROI are not
// folded into the totals; instead the report's Inconsistent flag is raised
// and OpenPhases lists the offenders, so harness bugs surface instead of
// silently dropping in-flight time.
func (p *Profile) Snapshot() Report {
	r := Report{Counters: map[string]int64{}}
	if !p.Enabled() {
		return r
	}
	r.ROI = p.roiTotal
	for name, ph := range p.phases {
		r.Phases = append(r.Phases, PhaseStat{Name: name, Total: ph.total, Calls: ph.calls})
	}
	sort.Slice(r.Phases, func(i, j int) bool { return r.Phases[i].Total > r.Phases[j].Total })
	for k, v := range p.counters {
		r.Counters[k] = v
	}
	if p.inROI || len(p.stack) > 0 || p.inconsistent {
		r.Inconsistent = true
		for _, f := range p.stack {
			r.OpenPhases = append(r.OpenPhases, f.name)
		}
	}
	if p.steps != nil {
		r.Steps = p.steps.Summary()
		r.Steps.Deadline = p.deadline
		r.Steps.Misses = p.misses
	}
	if p.traced {
		r.Trace = p.traceEvents()
	}
	return r
}

// traceEvents converts recorded spans to trace_event form, rebased so the
// earliest span is t=0.
func (p *Profile) traceEvents() []obs.TraceEvent {
	if len(p.spans) == 0 {
		return []obs.TraceEvent{}
	}
	epoch := p.spans[0].start
	for _, s := range p.spans[1:] {
		if s.start.Before(epoch) {
			epoch = s.start
		}
	}
	events := make([]obs.TraceEvent, 0, len(p.spans))
	for _, s := range p.spans {
		ev := obs.TraceEvent{
			Name: s.name,
			Ph:   "X",
			Ts:   float64(s.start.Sub(epoch)) / float64(time.Microsecond),
			Dur:  float64(s.dur) / float64(time.Microsecond),
			Pid:  obs.TracePid,
			Tid:  s.tid,
		}
		if s.miss {
			ev.Args = map[string]interface{}{"deadline_miss": true}
		}
		events = append(events, ev)
	}
	// The viewer requires events sorted by timestamp.
	sort.SliceStable(events, func(i, j int) bool { return events[i].Ts < events[j].Ts })
	return events
}

// Fraction returns the share of ROI time spent in the named phase, in
// [0, 1]. It returns 0 when the ROI is empty or the phase is unknown.
func (r Report) Fraction(name string) float64 {
	if r.ROI <= 0 {
		return 0
	}
	for _, ph := range r.Phases {
		if ph.Name == name {
			return float64(ph.Total) / float64(r.ROI)
		}
	}
	return 0
}

// Phase returns the stats for a named phase and whether it exists.
func (r Report) Phase(name string) (PhaseStat, bool) {
	for _, ph := range r.Phases {
		if ph.Name == name {
			return ph, true
		}
	}
	return PhaseStat{}, false
}

// Dominant returns the name of the phase with the largest share of ROI time,
// or "" if no phases were recorded.
func (r Report) Dominant() string {
	if len(r.Phases) == 0 {
		return ""
	}
	return r.Phases[0].Name
}

// String renders the report as the characterization table used by
// cmd/report: phase, time, calls, and percentage of ROI, followed by the
// step-latency distribution when recorded.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "ROI: %v\n", r.ROI)
	if r.Inconsistent {
		fmt.Fprintf(&b, "  WARNING: inconsistent snapshot (open phases: %v)\n", r.OpenPhases)
	}
	for _, ph := range r.Phases {
		pct := 0.0
		if r.ROI > 0 {
			pct = 100 * float64(ph.Total) / float64(r.ROI)
		}
		fmt.Fprintf(&b, "  %-24s %12v  calls=%-10d %5.1f%%\n", ph.Name, ph.Total, ph.Calls, pct)
	}
	if r.Steps.Count > 0 {
		fmt.Fprintf(&b, "  steps %d  p50=%v p95=%v p99=%v max=%v\n",
			r.Steps.Count, r.Steps.P50, r.Steps.P95, r.Steps.P99, r.Steps.Max)
		if r.Steps.Deadline > 0 {
			fmt.Fprintf(&b, "  deadline %v  misses=%d\n", r.Steps.Deadline, r.Steps.Misses)
		}
	}
	if len(r.Counters) > 0 {
		keys := make([]string, 0, len(r.Counters))
		for k := range r.Counters {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, "  #%-23s %d\n", k, r.Counters[k])
		}
	}
	return b.String()
}
