// Package profile is the suite's region-of-interest (ROI) harness. It plays
// the role zsim hooks play in the original RTRBench: kernels mark the start
// and end of their ROI and of named phases inside it (ray-casting, collision
// detection, nearest-neighbor search, matrix operations, sorting, ...), and
// the harness accumulates wall time and operation counts per phase.
//
// The paper's evaluation numbers are fractions of ROI time spent in each
// bottleneck phase; Report.Fraction reproduces exactly that quantity. Like
// the zsim hooks ("no effect on correctness and virtually zero effect on
// performance", §VI), a disabled Profile turns every call into a cheap no-op
// so benchmarks can run without instrumentation overhead.
package profile

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Profile accumulates phase timings and counters for one kernel execution.
// A nil or disabled Profile is safe to use; all methods become no-ops.
// Profile is not safe for concurrent use by multiple goroutines; parallel
// kernels keep one Profile per worker and Merge them.
type Profile struct {
	disabled bool

	roiStart time.Time
	roiTotal time.Duration
	inROI    bool

	phases   map[string]*phase
	counters map[string]int64

	stack []frame // active nested phases
}

type phase struct {
	total time.Duration
	calls int64
}

type frame struct {
	name  string
	start time.Time
	// child time is subtracted from the parent so phase fractions are
	// exclusive: nested regions never double-count.
	child time.Duration
}

// New returns an enabled, empty profile.
func New() *Profile {
	return &Profile{
		phases:   make(map[string]*phase),
		counters: make(map[string]int64),
	}
}

// Disabled returns a profile whose methods are no-ops.
func Disabled() *Profile { return &Profile{disabled: true} }

// Enabled reports whether the profile records anything.
func (p *Profile) Enabled() bool { return p != nil && !p.disabled }

// BeginROI marks the start of the kernel's region of interest.
func (p *Profile) BeginROI() {
	if !p.Enabled() {
		return
	}
	p.inROI = true
	p.roiStart = time.Now()
}

// EndROI marks the end of the region of interest.
func (p *Profile) EndROI() {
	if !p.Enabled() || !p.inROI {
		return
	}
	p.roiTotal += time.Since(p.roiStart)
	p.inROI = false
}

// Begin opens a named phase. Phases may nest; time spent in an inner phase
// is attributed to the inner phase only.
func (p *Profile) Begin(name string) {
	if !p.Enabled() {
		return
	}
	p.stack = append(p.stack, frame{name: name, start: time.Now()})
}

// End closes the innermost open phase.
func (p *Profile) End() {
	if !p.Enabled() || len(p.stack) == 0 {
		return
	}
	f := p.stack[len(p.stack)-1]
	p.stack = p.stack[:len(p.stack)-1]
	elapsed := time.Since(f.start)
	ph := p.phases[f.name]
	if ph == nil {
		ph = &phase{}
		p.phases[f.name] = ph
	}
	ph.total += elapsed - f.child
	ph.calls++
	if len(p.stack) > 0 {
		p.stack[len(p.stack)-1].child += elapsed
	}
}

// Span runs fn inside a named phase. It is the preferred form for short
// regions because it cannot be left unbalanced.
func (p *Profile) Span(name string, fn func()) {
	p.Begin(name)
	fn()
	p.End()
}

// Count adds delta to a named operation counter (cells visited, distance
// evaluations, string bytes touched, ...).
func (p *Profile) Count(name string, delta int64) {
	if !p.Enabled() {
		return
	}
	p.counters[name] += delta
}

// Merge folds other's phases and counters into p. ROI time is summed.
func (p *Profile) Merge(other *Profile) {
	if !p.Enabled() || other == nil || other.disabled {
		return
	}
	p.roiTotal += other.roiTotal
	for name, ph := range other.phases {
		dst := p.phases[name]
		if dst == nil {
			dst = &phase{}
			p.phases[name] = dst
		}
		dst.total += ph.total
		dst.calls += ph.calls
	}
	for name, v := range other.counters {
		p.counters[name] += v
	}
}

// Report is an immutable snapshot of a profile.
type Report struct {
	ROI      time.Duration
	Phases   []PhaseStat
	Counters map[string]int64
}

// PhaseStat is the accumulated cost of one named phase.
type PhaseStat struct {
	Name  string
	Total time.Duration
	Calls int64
}

// Snapshot returns the current report. Open phases and an open ROI are not
// included.
func (p *Profile) Snapshot() Report {
	r := Report{Counters: map[string]int64{}}
	if !p.Enabled() {
		return r
	}
	r.ROI = p.roiTotal
	for name, ph := range p.phases {
		r.Phases = append(r.Phases, PhaseStat{Name: name, Total: ph.total, Calls: ph.calls})
	}
	sort.Slice(r.Phases, func(i, j int) bool { return r.Phases[i].Total > r.Phases[j].Total })
	for k, v := range p.counters {
		r.Counters[k] = v
	}
	return r
}

// Fraction returns the share of ROI time spent in the named phase, in
// [0, 1]. It returns 0 when the ROI is empty or the phase is unknown.
func (r Report) Fraction(name string) float64 {
	if r.ROI <= 0 {
		return 0
	}
	for _, ph := range r.Phases {
		if ph.Name == name {
			return float64(ph.Total) / float64(r.ROI)
		}
	}
	return 0
}

// Phase returns the stats for a named phase and whether it exists.
func (r Report) Phase(name string) (PhaseStat, bool) {
	for _, ph := range r.Phases {
		if ph.Name == name {
			return ph, true
		}
	}
	return PhaseStat{}, false
}

// Dominant returns the name of the phase with the largest share of ROI time,
// or "" if no phases were recorded.
func (r Report) Dominant() string {
	if len(r.Phases) == 0 {
		return ""
	}
	return r.Phases[0].Name
}

// String renders the report as the characterization table used by
// cmd/report: phase, time, calls, and percentage of ROI.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "ROI: %v\n", r.ROI)
	for _, ph := range r.Phases {
		pct := 0.0
		if r.ROI > 0 {
			pct = 100 * float64(ph.Total) / float64(r.ROI)
		}
		fmt.Fprintf(&b, "  %-24s %12v  calls=%-10d %5.1f%%\n", ph.Name, ph.Total, ph.Calls, pct)
	}
	if len(r.Counters) > 0 {
		keys := make([]string, 0, len(r.Counters))
		for k := range r.Counters {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, "  #%-23s %d\n", k, r.Counters[k])
		}
	}
	return b.String()
}
