package profile

import (
	"sync"
	"testing"
	"time"
)

// TestShardedParallelWorkers is the suite's race check for the sharded
// harness: run it under `go test -race` (scripts/ci.sh does). Each worker
// owns its shard exclusively; only Shard and Snapshot synchronize.
func TestShardedParallelWorkers(t *testing.T) {
	parent := New()
	parent.SetDeadline(time.Second)
	sh := NewSharded(parent)

	const workers = 8
	const iters = 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		shard := sh.Shard()
		go func() {
			defer wg.Done()
			shard.BeginROI()
			for i := 0; i < iters; i++ {
				shard.Span("work", func() { spin(50 * time.Microsecond) })
				shard.Count("ops", 1)
				shard.StepDone()
			}
			shard.EndROI()
		}()
	}
	wg.Wait()

	r := sh.Snapshot()
	if r.Inconsistent {
		t.Fatalf("quiesced workers yielded inconsistent report: %v", r.OpenPhases)
	}
	if r.Counters["ops"] != workers*iters {
		t.Fatalf("ops = %d, want %d", r.Counters["ops"], workers*iters)
	}
	work, ok := r.Phase("work")
	if !ok || work.Calls != workers*iters {
		t.Fatalf("work calls = %d", work.Calls)
	}
	if r.Steps.Count != workers*iters {
		t.Fatalf("steps = %d", r.Steps.Count)
	}
	if r.Steps.Misses != 0 {
		t.Fatalf("misses = %d with a 1s deadline", r.Steps.Misses)
	}
}

func TestShardedConcurrentShardCreation(t *testing.T) {
	sh := NewSharded(nil)
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			shard := sh.Shard()
			shard.BeginROI()
			shard.Count("n", 1)
			shard.EndROI()
		}()
	}
	wg.Wait()
	if r := sh.Snapshot(); r.Counters["n"] != 16 {
		t.Fatalf("n = %d", r.Counters["n"])
	}
}

func TestShardedDisabledParent(t *testing.T) {
	sh := NewSharded(Disabled())
	shard := sh.Shard()
	if shard.Enabled() {
		t.Fatal("shard of disabled parent is enabled")
	}
	shard.BeginROI()
	shard.Count("n", 1)
	shard.EndROI()
	if r := sh.Snapshot(); r.ROI != 0 || len(r.Counters) != 0 {
		t.Fatalf("disabled sharded recorded: %+v", r)
	}
}

func TestShardedRepeatedSnapshotNoDoubleCount(t *testing.T) {
	sh := NewSharded(nil)
	s1 := sh.Shard()
	s1.Count("n", 1)
	r := sh.Snapshot()
	if r.Counters["n"] != 1 {
		t.Fatalf("n = %d", r.Counters["n"])
	}
	// A second snapshot with no new shards must not re-merge s1.
	r = sh.Snapshot()
	if r.Counters["n"] != 1 {
		t.Fatalf("double-counted: n = %d", r.Counters["n"])
	}
	s2 := sh.Shard()
	s2.Count("n", 4)
	if r = sh.Snapshot(); r.Counters["n"] != 5 {
		t.Fatalf("n = %d", r.Counters["n"])
	}
}

func TestShardedInheritsStepConfig(t *testing.T) {
	parent := New()
	parent.SetDeadline(time.Microsecond)
	sh := NewSharded(parent)
	shard := sh.Shard()
	shard.BeginROI()
	spin(time.Millisecond)
	shard.StepDone()
	shard.EndROI()
	r := sh.Snapshot()
	if r.Steps.Count != 1 || r.Steps.Misses != 1 {
		t.Fatalf("shard did not inherit deadline: %+v", r.Steps)
	}
	if r.Steps.Deadline != time.Microsecond {
		t.Fatalf("deadline = %v", r.Steps.Deadline)
	}
}
