package profile

import (
	"strings"
	"testing"
	"time"
)

func spin(d time.Duration) {
	end := time.Now().Add(d)
	for time.Now().Before(end) {
	}
}

func TestPhaseAccumulation(t *testing.T) {
	p := New()
	p.BeginROI()
	p.Span("a", func() { spin(2 * time.Millisecond) })
	p.Span("a", func() { spin(2 * time.Millisecond) })
	p.Span("b", func() { spin(1 * time.Millisecond) })
	p.EndROI()

	r := p.Snapshot()
	if r.ROI < 4*time.Millisecond {
		t.Fatalf("ROI = %v", r.ROI)
	}
	a, ok := r.Phase("a")
	if !ok || a.Calls != 2 || a.Total < 3*time.Millisecond {
		t.Fatalf("phase a = %+v ok=%v", a, ok)
	}
	if r.Dominant() != "a" {
		t.Fatalf("dominant = %q", r.Dominant())
	}
	if f := r.Fraction("a"); f < 0.4 || f > 1 {
		t.Fatalf("fraction a = %v", f)
	}
	if r.Fraction("nonexistent") != 0 {
		t.Fatal("missing phase has non-zero fraction")
	}
}

func TestNestedPhasesExclusive(t *testing.T) {
	p := New()
	p.BeginROI()
	p.Begin("outer")
	spin(1 * time.Millisecond)
	p.Begin("inner")
	spin(4 * time.Millisecond)
	p.End()
	spin(1 * time.Millisecond)
	p.End()
	p.EndROI()

	r := p.Snapshot()
	inner, _ := r.Phase("inner")
	outer, _ := r.Phase("outer")
	// The outer phase must exclude the inner's 4ms.
	if outer.Total >= inner.Total {
		t.Fatalf("outer %v >= inner %v — no exclusive attribution", outer.Total, inner.Total)
	}
	if inner.Total < 3*time.Millisecond {
		t.Fatalf("inner = %v", inner.Total)
	}
}

func TestFractionsSumBelowOne(t *testing.T) {
	p := New()
	p.BeginROI()
	p.Span("x", func() { spin(time.Millisecond) })
	p.Span("y", func() { spin(time.Millisecond) })
	spin(time.Millisecond) // unattributed ROI time
	p.EndROI()
	r := p.Snapshot()
	sum := r.Fraction("x") + r.Fraction("y")
	if sum > 1.0001 {
		t.Fatalf("fractions sum to %v > 1", sum)
	}
}

func TestCounters(t *testing.T) {
	p := New()
	p.Count("cells", 10)
	p.Count("cells", 5)
	r := p.Snapshot()
	if r.Counters["cells"] != 15 {
		t.Fatalf("counter = %d", r.Counters["cells"])
	}
}

func TestDisabledIsNoop(t *testing.T) {
	p := Disabled()
	p.BeginROI()
	p.Begin("x")
	p.End()
	p.Count("c", 1)
	p.EndROI()
	r := p.Snapshot()
	if r.ROI != 0 || len(r.Phases) != 0 || len(r.Counters) != 0 {
		t.Fatalf("disabled profile recorded: %+v", r)
	}
	if p.Enabled() {
		t.Fatal("Disabled().Enabled() = true")
	}
}

func TestNilProfileSafe(t *testing.T) {
	var p *Profile
	p.BeginROI()
	p.Begin("x")
	p.End()
	p.Count("c", 1)
	p.EndROI()
	p.Span("y", func() {})
	if p.Enabled() {
		t.Fatal("nil profile enabled")
	}
}

func TestUnbalancedEndIgnored(t *testing.T) {
	p := New()
	p.End() // no matching Begin
	r := p.Snapshot()
	if len(r.Phases) != 0 {
		t.Fatal("unbalanced End created a phase")
	}
}

func TestMerge(t *testing.T) {
	a := New()
	a.BeginROI()
	a.Span("x", func() { spin(time.Millisecond) })
	a.EndROI()
	a.Count("n", 1)

	b := New()
	b.BeginROI()
	b.Span("x", func() { spin(time.Millisecond) })
	b.Span("y", func() { spin(time.Millisecond) })
	b.EndROI()
	b.Count("n", 2)

	a.Merge(b)
	r := a.Snapshot()
	x, _ := r.Phase("x")
	if x.Calls != 2 {
		t.Fatalf("merged x calls = %d", x.Calls)
	}
	if _, ok := r.Phase("y"); !ok {
		t.Fatal("merged phase y missing")
	}
	if r.Counters["n"] != 3 {
		t.Fatalf("merged counter = %d", r.Counters["n"])
	}
	if r.ROI < 2*time.Millisecond {
		t.Fatalf("merged ROI = %v", r.ROI)
	}
}

func TestStringRendering(t *testing.T) {
	p := New()
	p.BeginROI()
	p.Span("raycast", func() { spin(time.Millisecond) })
	p.EndROI()
	p.Count("cells", 42)
	s := p.Snapshot().String()
	if !strings.Contains(s, "raycast") || !strings.Contains(s, "cells") {
		t.Fatalf("render missing fields:\n%s", s)
	}
}

func TestSnapshotSortedByDuration(t *testing.T) {
	p := New()
	p.BeginROI()
	p.Span("short", func() { spin(time.Millisecond) })
	p.Span("long", func() { spin(5 * time.Millisecond) })
	p.EndROI()
	r := p.Snapshot()
	if r.Phases[0].Name != "long" {
		t.Fatalf("phases not sorted: %v first", r.Phases[0].Name)
	}
}

func TestStepHook(t *testing.T) {
	p := New()
	var fired int
	p.SetStepHook(func() { fired++ })
	// The hook must fire even without step-latency tracking enabled.
	p.StepDone()
	p.StepDone()
	if fired != 2 {
		t.Fatalf("hook fired %d times, want 2", fired)
	}
	p.SetStepHook(nil)
	p.StepDone()
	if fired != 2 {
		t.Fatalf("removed hook still fired (%d calls)", fired)
	}

	d := Disabled()
	d.SetStepHook(func() { t.Fatal("hook installed on disabled profile") })
	d.StepDone()
}
