package profile

import (
	"testing"
	"time"

	"repro/internal/obs"
)

// missStep forces one deadline-missing step on p: with a 1ns deadline, any
// real interval between two step marks overruns it.
func missStep(p *Profile) {
	time.Sleep(100 * time.Microsecond)
	p.StepDone()
}

// TestResetWithdrawsLivePublishes is the regression test for the live-gauge
// divergence: the suite engine resets a trial's shard after a failed
// attempt, and before the fix the discarded attempt's steps_total /
// deadline_misses_total / operation counters stayed behind in the registry,
// so /metrics drifted away from the final Snapshot with every retry.
func TestResetWithdrawsLivePublishes(t *testing.T) {
	reg := &obs.Registry{}
	p := New()
	p.SetDeadline(time.Nanosecond)
	p.PublishLive(reg)

	// Failed attempt: two steps (both miss the 1ns deadline) and some
	// operation counts, then the engine-style Reset.
	p.BeginROI()
	missStep(p)
	missStep(p)
	p.Count("raycasts", 7)
	p.EndROI()
	p.Reset()

	// Successful attempt: one step, one count.
	p.BeginROI()
	missStep(p)
	p.Count("raycasts", 3)
	p.EndROI()

	rep := p.Snapshot()
	live := reg.Snapshot()
	if rep.Steps.Count != 1 || rep.Steps.Misses != 1 {
		t.Fatalf("snapshot after reset = %d steps / %d misses, want 1/1", rep.Steps.Count, rep.Steps.Misses)
	}
	if live["steps_total"] != rep.Steps.Count {
		t.Errorf("live steps_total = %d, want snapshot count %d", live["steps_total"], rep.Steps.Count)
	}
	if live["deadline_misses_total"] != rep.Steps.Misses {
		t.Errorf("live deadline_misses_total = %d, want snapshot misses %d", live["deadline_misses_total"], rep.Steps.Misses)
	}
	if live["raycasts"] != rep.Counters["raycasts"] {
		t.Errorf("live raycasts = %d, want snapshot counter %d", live["raycasts"], rep.Counters["raycasts"])
	}
}

// TestShardedMergeFoldsMissesOnce proves deadline misses fold exactly once
// across shards no matter how often the aggregate is snapshotted — the
// property the streaming mode's sustained accounting leans on.
func TestShardedMergeFoldsMissesOnce(t *testing.T) {
	parent := New()
	parent.SetDeadline(time.Nanosecond)
	sh := NewSharded(parent)

	for i := 0; i < 3; i++ {
		shard := sh.Shard()
		shard.BeginROI()
		missStep(shard)
		missStep(shard)
		shard.EndROI()
	}

	first := sh.Snapshot()
	if first.Steps.Count != 6 || first.Steps.Misses != 6 {
		t.Fatalf("merged snapshot = %d steps / %d misses, want 6/6", first.Steps.Count, first.Steps.Misses)
	}
	// Repeated snapshots must not re-merge already-folded shards.
	for i := 0; i < 3; i++ {
		again := sh.Snapshot()
		if again.Steps.Count != 6 || again.Steps.Misses != 6 {
			t.Fatalf("snapshot %d re-counted shards: %d steps / %d misses", i, again.Steps.Count, again.Steps.Misses)
		}
	}
}

// TestShardedLiveGaugeMatchesSnapshot runs the full engine-shaped sequence —
// shards publishing live, one shard reset mid-way (a retried attempt), then
// the merge — and requires the live deadline_misses_total gauge to equal the
// final Snapshot().Steps.Misses exactly.
func TestShardedLiveGaugeMatchesSnapshot(t *testing.T) {
	reg := &obs.Registry{}
	parent := New()
	parent.SetDeadline(time.Nanosecond)
	parent.PublishLive(reg)
	sh := NewSharded(parent)

	// Shard A: a failed attempt (2 misses) that the engine resets, then a
	// clean retry (1 miss).
	a := sh.Shard()
	a.BeginROI()
	missStep(a)
	missStep(a)
	a.EndROI()
	a.Reset()
	a.BeginROI()
	missStep(a)
	a.EndROI()

	// Shard B: a straightforward attempt (2 misses).
	b := sh.Shard()
	b.BeginROI()
	missStep(b)
	missStep(b)
	b.EndROI()

	rep := sh.Snapshot()
	live := reg.Snapshot()
	if rep.Steps.Misses != 3 {
		t.Fatalf("merged misses = %d, want 3 (1 retried + 2)", rep.Steps.Misses)
	}
	if live["deadline_misses_total"] != rep.Steps.Misses {
		t.Errorf("live deadline_misses_total = %d, want snapshot misses %d",
			live["deadline_misses_total"], rep.Steps.Misses)
	}
	if live["steps_total"] != rep.Steps.Count {
		t.Errorf("live steps_total = %d, want snapshot count %d", live["steps_total"], rep.Steps.Count)
	}
}

// TestResetWithoutLiveRegistry keeps the fix scoped: Reset on a profile
// with no live registry must stay a pure in-memory clear.
func TestResetWithoutLiveRegistry(t *testing.T) {
	p := New()
	p.SetDeadline(time.Nanosecond)
	p.BeginROI()
	missStep(p)
	p.EndROI()
	p.Reset()
	rep := p.Snapshot()
	if rep.Steps.Count != 0 || rep.Steps.Misses != 0 {
		t.Fatalf("reset did not clear steps: %+v", rep.Steps)
	}
}
