package naive

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/grid"
	"repro/internal/maps"
	"repro/internal/rng"
	"repro/internal/search"
)

// optimizedCost runs the suite's point A* as the reference implementation.
func optimizedCost(g *grid.Grid2D, sx, sy, gx, gy int) (float64, bool) {
	sp := &search.Grid2DSpace{G: g}
	res, err := search.Solve(search.Problem{
		Space: sp,
		Start: sp.ID(sx, sy),
		Goal:  sp.ID(gx, gy),
		H:     sp.OctileHeuristic(gx, gy),
	})
	return res.Cost, err == nil
}

func TestBaselinesMatchOptimizedOnPRobMap(t *testing.T) {
	g := maps.PRobMap()
	sx, sy, gx, gy := maps.PRobStartGoal(1)
	want, ok := optimizedCost(g, sx, sy, gx, gy)
	if !ok {
		t.Fatal("optimized found no path on the P-Rob map")
	}
	ri := Interp(g, sx, sy, gx, gy)
	rc := Copy(g, sx, sy, gx, gy)
	if !ri.Found || !rc.Found {
		t.Fatal("baseline found no path")
	}
	if math.Abs(ri.Cost-want) > 1e-9 {
		t.Fatalf("Interp cost %v != optimized %v", ri.Cost, want)
	}
	if math.Abs(rc.Cost-want) > 1e-9 {
		t.Fatalf("Copy cost %v != optimized %v", rc.Cost, want)
	}
}

func TestBaselinesEquivalentOnRandomMaps(t *testing.T) {
	if err := quick.Check(func(seed int64) bool {
		r := rng.New(seed)
		g := grid.NewGrid2D(15, 15)
		for i := 0; i < 50; i++ {
			g.Set(r.Intn(15), r.Intn(15), true)
		}
		g.Set(0, 0, false)
		g.Set(14, 14, false)
		want, ok := optimizedCost(g, 0, 0, 14, 14)
		ri := Interp(g, 0, 0, 14, 14)
		rc := Copy(g, 0, 0, 14, 14)
		if ri.Found != ok || rc.Found != ok {
			return false
		}
		if !ok {
			return true
		}
		return math.Abs(ri.Cost-want) < 1e-9 && math.Abs(rc.Cost-want) < 1e-9
	}, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPathsAreValid(t *testing.T) {
	g := maps.PRobMap()
	sx, sy, gx, gy := maps.PRobStartGoal(1)
	for name, res := range map[string]Result{
		"interp": Interp(g, sx, sy, gx, gy),
		"copy":   Copy(g, sx, sy, gx, gy),
	} {
		if !res.Found {
			t.Fatalf("%s: no path", name)
		}
		p := res.Path
		if p[0] != [2]int{sx, sy} || p[len(p)-1] != [2]int{gx, gy} {
			t.Fatalf("%s: endpoints %v...%v", name, p[0], p[len(p)-1])
		}
		for i, cell := range p {
			if g.Occupied(cell[0], cell[1]) {
				t.Fatalf("%s: path cell %v occupied", name, cell)
			}
			if i > 0 {
				dx := abs(cell[0] - p[i-1][0])
				dy := abs(cell[1] - p[i-1][1])
				if dx > 1 || dy > 1 || (dx == 0 && dy == 0) {
					t.Fatalf("%s: non-adjacent step %v -> %v", name, p[i-1], cell)
				}
			}
		}
	}
}

func TestNoCornerCutting(t *testing.T) {
	// Two diagonal obstacles: the only legal route is the long way around.
	g := grid.NewGrid2D(3, 3)
	g.Set(1, 0, true)
	g.Set(0, 1, true)
	ri := Interp(g, 0, 0, 2, 2)
	rc := Copy(g, 0, 0, 2, 2)
	if ri.Found || rc.Found {
		t.Fatal("baselines cut a blocked corner (start is walled in)")
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
