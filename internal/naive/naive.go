// Package naive contains deliberately inefficient A* implementations that
// stand in for the educational libraries of the paper's Fig. 21 comparison:
//
//   - Interp mimics PythonRobotics' a_star.py: dynamically typed boxed
//     values, nodes stored in maps keyed by formatted strings, and an open
//     "set" scanned linearly for its minimum each iteration (Python's
//     min(open_set, ...) idiom). This reproduces the interpreter-style
//     overhead that makes P-Rob 357x-3469x slower than RTRBench.
//
//   - Copy mimics CppRobotics' a_star.cpp, whose "main source of
//     inefficiency is passing large data structures to functions needlessly
//     by value instead of by reference" (paper §VII): every neighbor
//     expansion receives a fresh copy of the occupancy data.
//
// Both produce the same optimal paths as the optimized pp2d kernel — they
// are correctness-equivalent, performance-degenerate baselines, and the
// property tests hold them to that.
package naive

import (
	"fmt"
	"math"

	"repro/internal/grid"
)

// Result mirrors the optimized planner's output for comparison.
type Result struct {
	Found    bool
	Path     [][2]int
	Cost     float64
	Expanded int
}

// Interp runs P-Rob-style A* from (sx, sy) to (gx, gy) on g with 8-connected
// moves and octile costs, treating the robot as a point (the PythonRobotics
// demo setup).
func Interp(g *grid.Grid2D, sx, sy, gx, gy int) Result {
	// Boxed, dynamically-typed node records, keyed by formatted strings —
	// the data layout an interpreter would give us.
	type anyMap = map[string]interface{}
	key := func(x, y int) string { return fmt.Sprintf("%d,%d", x, y) }

	newNode := func(x, y int, cost float64, parent string) anyMap {
		return anyMap{"x": x, "y": y, "cost": cost, "parent": parent}
	}
	heuristic := func(x, y int) float64 {
		dx, dy := float64(x-gx), float64(y-gy)
		return math.Sqrt(dx*dx + dy*dy)
	}

	open := map[string]anyMap{}
	closed := map[string]anyMap{}
	open[key(sx, sy)] = newNode(sx, sy, 0, "")

	moves := [][3]float64{
		{1, 0, 1}, {-1, 0, 1}, {0, 1, 1}, {0, -1, 1},
		{1, 1, math.Sqrt2}, {1, -1, math.Sqrt2}, {-1, 1, math.Sqrt2}, {-1, -1, math.Sqrt2},
	}

	var res Result
	for len(open) > 0 {
		// Linear scan for the open node with minimal f — the
		// min(open_set, key=...) pattern.
		var bestKey string
		bestF := math.Inf(1)
		for k, n := range open {
			f := n["cost"].(float64) + heuristic(n["x"].(int), n["y"].(int))
			if f < bestF {
				bestF, bestKey = f, k
			}
		}
		cur := open[bestKey]
		delete(open, bestKey)
		closed[bestKey] = cur
		res.Expanded++

		cx, cy := cur["x"].(int), cur["y"].(int)
		if cx == gx && cy == gy {
			res.Found = true
			res.Cost = cur["cost"].(float64)
			res.Path = interpPath(closed, bestKey, key(sx, sy))
			return res
		}

		for _, m := range moves {
			nx, ny := cx+int(m[0]), cy+int(m[1])
			if !g.InBounds(nx, ny) || g.Occupied(nx, ny) {
				continue
			}
			// Disallow corner cutting, matching the optimized kernel.
			if m[0] != 0 && m[1] != 0 &&
				(g.Occupied(cx+int(m[0]), cy) || g.Occupied(cx, cy+int(m[1]))) {
				continue
			}
			nk := key(nx, ny)
			if _, ok := closed[nk]; ok {
				continue
			}
			ncost := cur["cost"].(float64) + m[2]
			if exist, ok := open[nk]; ok && exist["cost"].(float64) <= ncost {
				continue
			}
			open[nk] = newNode(nx, ny, ncost, bestKey)
		}
	}
	return res
}

func interpPath(closed map[string]map[string]interface{}, goalKey, startKey string) [][2]int {
	var rev [][2]int
	k := goalKey
	for {
		n := closed[k]
		rev = append(rev, [2]int{n["x"].(int), n["y"].(int)})
		if k == startKey {
			break
		}
		k = n["parent"].(string)
	}
	out := make([][2]int, len(rev))
	for i := range rev {
		out[i] = rev[len(rev)-1-i]
	}
	return out
}

// Copy runs C-Rob-style A*: algorithmically identical to the optimized
// planner (binary-heap open list), but the occupancy data is copied into
// every expansion call instead of being passed by reference.
func Copy(g *grid.Grid2D, sx, sy, gx, gy int) Result {
	w, h := g.W, g.H
	// Flatten occupancy once; the waste is in re-copying it per expansion.
	occ := make([]bool, w*h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			occ[y*w+x] = g.Occupied(x, y)
		}
	}

	n := w * h
	gScore := make([]float64, n)
	parent := make([]int32, n)
	closed := make([]bool, n)
	for i := range gScore {
		gScore[i] = math.Inf(1)
		parent[i] = -1
	}

	var heap []item
	push := func(it item) {
		heap = append(heap, it)
		i := len(heap) - 1
		for i > 0 {
			p := (i - 1) / 2
			if heap[p].f <= heap[i].f {
				break
			}
			heap[p], heap[i] = heap[i], heap[p]
			i = p
		}
	}
	pop := func() item {
		top := heap[0]
		last := len(heap) - 1
		heap[0] = heap[last]
		heap = heap[:last]
		i := 0
		for {
			l, r := 2*i+1, 2*i+2
			s := i
			if l < len(heap) && heap[l].f < heap[s].f {
				s = l
			}
			if r < len(heap) && heap[r].f < heap[s].f {
				s = r
			}
			if s == i {
				break
			}
			heap[s], heap[i] = heap[i], heap[s]
			i = s
		}
		return top
	}

	heur := func(id int) float64 {
		x, y := id%w, id/w
		dx, dy := float64(x-gx), float64(y-gy)
		return math.Sqrt(dx*dx + dy*dy)
	}

	start := sy*w + sx
	goal := gy*w + gx
	gScore[start] = 0
	parent[start] = int32(start)
	push(item{start, heur(start)})

	var res Result
	for len(heap) > 0 {
		cur := pop()
		if closed[cur.id] {
			continue
		}
		closed[cur.id] = true
		res.Expanded++
		if cur.id == goal {
			res.Found = true
			res.Cost = gScore[cur.id]
			for id := goal; ; id = int(parent[id]) {
				res.Path = append(res.Path, [2]int{id % w, id / w})
				if id == start {
					break
				}
			}
			for i, j := 0, len(res.Path)-1; i < j; i, j = i+1, j-1 {
				res.Path[i], res.Path[j] = res.Path[j], res.Path[i]
			}
			return res
		}
		// The needless by-value pass: the map, the g-scores, and the closed
		// set are all copied into the expansion call — the "passing large
		// data structures to functions needlessly by value" pathology the
		// paper found in C-Rob. Reads go through the copies; writes go to
		// the real arrays so the algorithm stays correct.
		expandCopy(
			append([]bool(nil), occ...),
			append([]float64(nil), gScore...),
			append([]bool(nil), closed...),
			w, h, cur.id, gScore, parent, closed, heur, push)
	}
	return res
}

type item struct {
	id int
	f  float64
}

// expandCopy generates successors of id, reading from its own private
// copies of the occupancy data, g-scores, and closed set.
func expandCopy(occ []bool, gCopy []float64, closedCopy []bool,
	w, h, id int, gScore []float64, parent []int32, closed []bool,
	heur func(int) float64, push func(item)) {
	x, y := id%w, id/w
	occAt := func(x, y int) bool {
		if x < 0 || x >= w || y < 0 || y >= h {
			return true
		}
		return occ[y*w+x]
	}
	try := func(nx, ny int, cost float64) {
		if occAt(nx, ny) {
			return
		}
		nid := ny*w + nx
		if closedCopy[nid] {
			return
		}
		ng := gCopy[id] + cost
		if ng >= gCopy[nid] {
			return
		}
		gScore[nid] = ng
		parent[nid] = int32(id)
		push(item{nid, ng + heur(nid)})
	}
	try(x+1, y, 1)
	try(x-1, y, 1)
	try(x, y+1, 1)
	try(x, y-1, 1)
	if !occAt(x+1, y) && !occAt(x, y+1) {
		try(x+1, y+1, math.Sqrt2)
	}
	if !occAt(x-1, y) && !occAt(x, y+1) {
		try(x-1, y+1, math.Sqrt2)
	}
	if !occAt(x+1, y) && !occAt(x, y-1) {
		try(x+1, y-1, math.Sqrt2)
	}
	if !occAt(x-1, y) && !occAt(x, y-1) {
		try(x-1, y-1, math.Sqrt2)
	}
}
