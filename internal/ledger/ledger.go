// Package ledger chains benchmark snapshots into a tamper-evident
// longitudinal history. Each entry embeds one rtrbench.bench/v2 snapshot
// (raw samples plus the golden-digest set the build verified against) and
// the SHA-256 of the previous entry's canonical encoding — the
// hash-anchored audit-log construction: mutating, dropping, or reordering
// any entry breaks every hash downstream, so a perf claim months later is
// still checkable against the exact verified build that produced it.
//
// The on-disk format is JSON Lines (one entry per line, append-only),
// which is what makes an append O(1) and a diff of two ledger states a
// plain text diff. cmd/benchdiff owns the CLI surface (-ledger
// append/verify/show) and internal/obs serves the chain on /ledger.
package ledger

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"

	"repro/internal/benchfmt"
)

// Schema identifies the entry format.
const Schema = "rtrbench.ledger/v1"

// GenesisHash anchors the first entry of every chain.
const GenesisHash = "0000000000000000000000000000000000000000000000000000000000000000"

// Entry is one link of the chain.
type Entry struct {
	Schema string `json:"schema"`
	// Index is the entry's position in the chain, starting at 0.
	Index int `json:"index"`
	// Note is an optional free-form annotation ("PR 6 baseline", ...).
	Note string `json:"note,omitempty"`
	// Snapshot is the full benchmark snapshot, including its Goldens set.
	Snapshot benchfmt.Snapshot `json:"snapshot"`
	// PrevHash is the Hash of the previous entry (GenesisHash for index 0).
	PrevHash string `json:"prev_hash"`
	// Hash is the SHA-256 (hex) of this entry's canonical encoding with
	// the Hash field itself blanked. Set by Seal.
	Hash string `json:"hash"`
}

// ComputeHash returns the canonical hash of the entry: SHA-256 over the
// deterministic JSON encoding (struct fields in declaration order, map
// keys sorted) with Hash cleared.
func ComputeHash(e Entry) (string, error) {
	e.Hash = ""
	data, err := json.Marshal(e)
	if err != nil {
		return "", fmt.Errorf("ledger: encode entry %d: %w", e.Index, err)
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), nil
}

// Seal fills in Schema and Hash; Index and PrevHash must already be set.
func Seal(e Entry) (Entry, error) {
	e.Schema = Schema
	h, err := ComputeHash(e)
	if err != nil {
		return e, err
	}
	e.Hash = h
	return e, nil
}

// Load reads a JSONL ledger file. A missing file is an empty (valid)
// ledger. Load does not verify the chain; callers that care run
// VerifyChain on the result.
func Load(path string) ([]Entry, error) {
	f, err := os.Open(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()

	var entries []Entry
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	line := 0
	for sc.Scan() {
		line++
		text := bytes.TrimSpace(sc.Bytes())
		if len(text) == 0 {
			continue
		}
		var e Entry
		if err := json.Unmarshal(text, &e); err != nil {
			return nil, fmt.Errorf("ledger: %s:%d: %w", path, line, err)
		}
		if e.Schema != Schema {
			return nil, fmt.Errorf("ledger: %s:%d: unsupported schema %q", path, line, e.Schema)
		}
		entries = append(entries, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("ledger: %s: %w", path, err)
	}
	return entries, nil
}

// VerifyChain checks the whole chain: contiguous indices from 0, each
// entry's Hash recomputes from its contents, and each PrevHash equals the
// predecessor's Hash (GenesisHash for the first). The error names the
// first broken entry, distinguishing a tampered entry (its own hash no
// longer matches) from a broken link (a predecessor was altered, replaced,
// or removed).
func VerifyChain(entries []Entry) error {
	prev := GenesisHash
	for i, e := range entries {
		if e.Index != i {
			return fmt.Errorf("ledger: entry %d: index %d out of sequence (missing or reordered predecessor)", i, e.Index)
		}
		want, err := ComputeHash(e)
		if err != nil {
			return err
		}
		if e.Hash != want {
			return fmt.Errorf("ledger: entry %d: hash mismatch — entry contents were altered after sealing", i)
		}
		if e.PrevHash != prev {
			return fmt.Errorf("ledger: entry %d: prev_hash does not match entry %d — predecessor missing or tampered", i, i-1)
		}
		prev = e.Hash
	}
	return nil
}

// Append verifies the existing chain at path, seals the snapshot as the
// next entry, and appends it as one JSONL line. It returns the sealed
// entry. An append onto a broken chain is refused: the point of the ledger
// is that nothing lands on top of tampered history.
func Append(path string, snap benchfmt.Snapshot, note string) (Entry, error) {
	entries, err := Load(path)
	if err != nil {
		return Entry{}, err
	}
	if err := VerifyChain(entries); err != nil {
		return Entry{}, fmt.Errorf("refusing to append: %w", err)
	}
	e := Entry{
		Index:    len(entries),
		Note:     note,
		Snapshot: snap,
		PrevHash: GenesisHash,
	}
	if n := len(entries); n > 0 {
		e.PrevHash = entries[n-1].Hash
	}
	e, err = Seal(e)
	if err != nil {
		return Entry{}, err
	}
	data, err := json.Marshal(e)
	if err != nil {
		return Entry{}, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return Entry{}, err
	}
	defer f.Close()
	if _, err := f.Write(append(data, '\n')); err != nil {
		return Entry{}, err
	}
	return e, f.Close()
}

// LatestPair returns the snapshots of the last two entries, for the
// "latest deltas" views (obs /ledger, benchdiff -ledger diff). ok is false
// when the chain has fewer than two entries.
func LatestPair(entries []Entry) (old, new benchfmt.Snapshot, ok bool) {
	if len(entries) < 2 {
		return benchfmt.Snapshot{}, benchfmt.Snapshot{}, false
	}
	return entries[len(entries)-2].Snapshot, entries[len(entries)-1].Snapshot, true
}
