package ledger

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/benchfmt"
)

func testSnap(date string, ns float64) benchfmt.Snapshot {
	s := benchfmt.Snapshot{Schema: benchfmt.SchemaV2, Date: date,
		Goldens: map[string]string{"pfl-seed1": "deadbeef"}}
	for i := 0; i < 3; i++ {
		s.Add("BenchmarkX", "repro", 8, benchfmt.Sample{Iterations: 1, NsOp: ns + float64(i)})
	}
	return s
}

func buildChain(t *testing.T, n int) (string, []Entry) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "ledger.jsonl")
	for i := 0; i < n; i++ {
		if _, err := Append(path, testSnap("2026-08-0"+string(rune('1'+i)), 100*float64(i+1)), ""); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != n {
		t.Fatalf("loaded %d entries, want %d", len(entries), n)
	}
	return path, entries
}

func TestAppendLoadVerifyRoundTrip(t *testing.T) {
	_, entries := buildChain(t, 3)
	if err := VerifyChain(entries); err != nil {
		t.Fatalf("fresh chain does not verify: %v", err)
	}
	if entries[0].PrevHash != GenesisHash {
		t.Fatalf("entry 0 prev_hash = %q", entries[0].PrevHash)
	}
	for i := 1; i < 3; i++ {
		if entries[i].PrevHash != entries[i-1].Hash {
			t.Fatalf("entry %d not linked to predecessor", i)
		}
		if entries[i].Index != i {
			t.Fatalf("entry %d has index %d", i, entries[i].Index)
		}
	}
}

func TestVerifyDetectsTamperedMiddleEntry(t *testing.T) {
	path, _ := buildChain(t, 3)
	// Tamper with entry 1's benchmark data directly in the file, the way
	// someone would quietly improve an old number.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	var e Entry
	if err := json.Unmarshal([]byte(lines[1]), &e); err != nil {
		t.Fatal(err)
	}
	e.Snapshot.Benchmarks[0].Samples[0].NsOp = 1 // "we were always fast"
	forged, err := json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	lines[1] = string(forged)
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	entries, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	err = VerifyChain(entries)
	if err == nil || !strings.Contains(err.Error(), "entry 1") || !strings.Contains(err.Error(), "hash mismatch") {
		t.Fatalf("tampered middle entry not detected: %v", err)
	}
	// And nothing may be appended on top of the broken chain.
	if _, err := Append(path, testSnap("2026-08-09", 1), ""); err == nil {
		t.Fatal("append onto a tampered chain succeeded")
	}
}

func TestVerifyDetectsReSealedForgery(t *testing.T) {
	// A smarter forger re-seals the tampered entry so its own hash is
	// valid again; the successor's prev_hash must still expose it.
	path, entries := buildChain(t, 3)
	forgedEntry := entries[1]
	forgedEntry.Snapshot.Benchmarks[0].Samples[0].NsOp = 1
	forgedEntry, err := Seal(forgedEntry)
	if err != nil {
		t.Fatal(err)
	}
	forged, err := json.Marshal(forgedEntry)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(path)
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	lines[1] = string(forged)
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	err = VerifyChain(loaded)
	if err == nil || !strings.Contains(err.Error(), "entry 2") || !strings.Contains(err.Error(), "prev_hash") {
		t.Fatalf("re-sealed forgery not detected: %v", err)
	}
}

func TestVerifyDetectsMissingPredecessor(t *testing.T) {
	path, _ := buildChain(t, 3)
	data, _ := os.ReadFile(path)
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	// Drop the middle entry entirely.
	if err := os.WriteFile(path, []byte(lines[0]+"\n"+lines[2]+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	entries, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	err = VerifyChain(entries)
	if err == nil || !strings.Contains(err.Error(), "out of sequence") {
		t.Fatalf("missing predecessor not detected: %v", err)
	}
}

func TestLoadMissingFileIsEmptyLedger(t *testing.T) {
	entries, err := Load(filepath.Join(t.TempDir(), "absent.jsonl"))
	if err != nil || entries != nil {
		t.Fatalf("missing file: entries=%v err=%v", entries, err)
	}
	if err := VerifyChain(nil); err != nil {
		t.Fatalf("empty chain must verify: %v", err)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.jsonl")
	if err := os.WriteFile(path, []byte("{\"schema\":\"bogus/v1\"}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("bogus schema accepted")
	}
	if err := os.WriteFile(path, []byte("not json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("non-JSON line accepted")
	}
}

func TestLatestPair(t *testing.T) {
	_, entries := buildChain(t, 3)
	old, latest, ok := LatestPair(entries)
	if !ok || old.Date != entries[1].Snapshot.Date || latest.Date != entries[2].Snapshot.Date {
		t.Fatalf("LatestPair = %q/%q ok=%v", old.Date, latest.Date, ok)
	}
	if _, _, ok := LatestPair(entries[:1]); ok {
		t.Fatal("LatestPair on a 1-entry chain reported ok")
	}
}

func TestHashCoversGoldens(t *testing.T) {
	// The golden-digest set is inside the hash: changing it invalidates
	// the entry. This is what ties a perf claim to a verified build.
	_, entries := buildChain(t, 1)
	e := entries[0]
	e.Snapshot.Goldens["pfl-seed1"] = "cafebabe"
	h, err := ComputeHash(e)
	if err != nil {
		t.Fatal(err)
	}
	if h == e.Hash {
		t.Fatal("hash did not change when goldens changed")
	}
}
