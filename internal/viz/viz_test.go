package viz

import (
	"strings"
	"testing"

	"repro/internal/geom"
	"repro/internal/grid"
)

func TestMapRendersObstaclesAndPath(t *testing.T) {
	g := grid.NewGrid2D(32, 32)
	g.Fill(10, 10, 20, 20, true)
	path := []int{0, 1, 2, 3*32 + 3}
	out := NewMap(g, 32).Path(path).String()
	if !strings.Contains(out, "#") {
		t.Fatal("no obstacles rendered")
	}
	if !strings.ContainsRune(out, 'S') || !strings.ContainsRune(out, 'G') {
		t.Fatal("start/goal glyphs missing")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) == 0 || len(lines[0]) == 0 {
		t.Fatal("empty rendering")
	}
	// Every line has the same width.
	for _, l := range lines {
		if len(l) != len(lines[0]) {
			t.Fatal("ragged rendering")
		}
	}
}

func TestMapDownsamples(t *testing.T) {
	g := grid.NewGrid2D(512, 512)
	out := NewMap(g, 64).String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines[0]) > 70 {
		t.Fatalf("rendering %d columns wide, want <= ~64", len(lines[0]))
	}
}

func TestMarkWorld(t *testing.T) {
	g := grid.NewGrid2D(16, 16)
	g.Resolution = 0.5
	out := NewMap(g, 16).MarkWorld(geom.Vec2{X: 4, Y: 4}).String()
	if !strings.ContainsRune(out, 'o') {
		t.Fatal("world marker missing")
	}
}

func TestSeries(t *testing.T) {
	out := Series([]float64{0, 1, 2, 3, 4, 5}, 12, 4)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("height %d, want 4", len(lines))
	}
	// The rising series fills the bottom row fully and the top row partly.
	bottom := lines[3]
	if strings.Count(bottom, "#") != 12 {
		t.Fatalf("bottom row = %q", bottom)
	}
	top := lines[0]
	if strings.Count(top, "#") == 0 || strings.Count(top, "#") == 12 {
		t.Fatalf("top row = %q", top)
	}
}

func TestSeriesDegenerate(t *testing.T) {
	if Series(nil, 10, 3) != "" {
		t.Fatal("empty series rendered")
	}
	if Series([]float64{5, 5, 5}, 10, 3) == "" {
		t.Fatal("constant series not rendered")
	}
}
