// Package viz renders occupancy grids, paths, and particle clouds as ASCII
// art for the examples and for debugging test failures. It has no role in
// the benchmarks themselves (rendering is never inside a kernel ROI).
package viz

import (
	"strings"

	"repro/internal/geom"
	"repro/internal/grid"
)

// Glyphs used by Render, exported so callers can document their output.
const (
	GlyphFree     = ' '
	GlyphObstacle = '#'
	GlyphPath     = '*'
	GlyphStart    = 'S'
	GlyphGoal     = 'G'
	GlyphMark     = 'o'
)

// Map renders a grid with optional overlays, downsampling to at most
// maxCols text columns (aspect is preserved approximately; one text row
// covers two grid rows to compensate for character cells being tall).
type Map struct {
	g       *grid.Grid2D
	maxCols int
	overlay map[[2]int]byte // cell -> glyph, in full-resolution cells
}

// NewMap prepares a renderer for g, targeting at most maxCols text columns
// (minimum 16).
func NewMap(g *grid.Grid2D, maxCols int) *Map {
	if maxCols < 16 {
		maxCols = 16
	}
	return &Map{g: g, maxCols: maxCols, overlay: map[[2]int]byte{}}
}

// Path overlays a cell-index path (IDs encoded y*W+x).
func (m *Map) Path(path []int) *Map {
	for i, id := range path {
		x, y := id%m.g.W, id/m.g.W
		glyph := byte(GlyphPath)
		if i == 0 {
			glyph = GlyphStart
		} else if i == len(path)-1 {
			glyph = GlyphGoal
		}
		m.overlay[[2]int{x, y}] = glyph
	}
	return m
}

// MarkCell overlays a single cell with the generic marker glyph.
func (m *Map) MarkCell(x, y int) *Map {
	m.overlay[[2]int{x, y}] = GlyphMark
	return m
}

// MarkWorld overlays the cell containing a world-coordinate point.
func (m *Map) MarkWorld(p geom.Vec2) *Map {
	x, y := m.g.WorldToCell(p.X, p.Y)
	return m.MarkCell(x, y)
}

// String renders the map: top row first, one character per block of cells.
// Overlay glyphs win over terrain; within a block, the most "interesting"
// glyph (start/goal > path/mark > obstacle) is shown.
func (m *Map) String() string {
	step := (m.g.W + m.maxCols - 1) / m.maxCols
	if step < 1 {
		step = 1
	}
	stepY := step * 2 // character cells are ~2x taller than wide

	rank := func(b byte) int {
		switch b {
		case GlyphStart, GlyphGoal:
			return 3
		case GlyphPath, GlyphMark:
			return 2
		case GlyphObstacle:
			return 1
		default:
			return 0
		}
	}

	var sb strings.Builder
	for yTop := m.g.H - 1; yTop >= 0; yTop -= stepY {
		for x0 := 0; x0 < m.g.W; x0 += step {
			best := byte(GlyphFree)
			for dy := 0; dy < stepY; dy++ {
				for dx := 0; dx < step; dx++ {
					x, y := x0+dx, yTop-dy
					if !m.g.InBounds(x, y) {
						continue
					}
					glyph := byte(GlyphFree)
					if ov, ok := m.overlay[[2]int{x, y}]; ok {
						glyph = ov
					} else if m.g.Occupied(x, y) {
						glyph = GlyphObstacle
					}
					if rank(glyph) > rank(best) {
						best = glyph
					}
				}
			}
			sb.WriteByte(best)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Series renders a numeric series as a fixed-width ASCII sparkline with the
// given height in rows (used by the examples for reward/velocity curves).
func Series(xs []float64, width, height int) string {
	if len(xs) == 0 || width < 2 || height < 1 {
		return ""
	}
	min, max := xs[0], xs[0]
	for _, v := range xs {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	span := max - min
	if span == 0 {
		span = 1
	}
	cols := make([]int, width)
	for c := 0; c < width; c++ {
		i := c * (len(xs) - 1) / (width - 1)
		cols[c] = int((xs[i] - min) / span * float64(height-1))
	}
	var sb strings.Builder
	for row := height - 1; row >= 0; row-- {
		for c := 0; c < width; c++ {
			if cols[c] >= row {
				sb.WriteByte('#')
			} else {
				sb.WriteByte(' ')
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
