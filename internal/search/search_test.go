package search

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/grid"
	"repro/internal/rng"
)

// lineGraph is a simple unsized (sparse-book) space: 0 - 1 - 2 - ... - n-1.
type lineGraph struct{ n int }

func (l lineGraph) Neighbors(id int, yield func(int, float64)) {
	if id+1 < l.n {
		yield(id+1, 1)
	}
	if id > 0 {
		yield(id-1, 1)
	}
}

func TestDijkstraLine(t *testing.T) {
	res, err := Solve(Problem{Space: lineGraph{10}, Start: 0, Goal: 9})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || res.Cost != 9 || len(res.Path) != 10 {
		t.Fatalf("res = %+v", res)
	}
	for i, id := range res.Path {
		if id != i {
			t.Fatalf("path[%d] = %d", i, id)
		}
	}
}

func TestNoPath(t *testing.T) {
	g := grid.NewGrid2D(5, 5)
	for y := 0; y < 5; y++ {
		g.Set(2, y, true) // wall across the map
	}
	sp := &Grid2DSpace{G: g}
	_, err := Solve(Problem{Space: sp, Start: sp.ID(0, 0), Goal: sp.ID(4, 4)})
	if err != ErrNoPath {
		t.Fatalf("err = %v, want ErrNoPath", err)
	}
}

func TestAStarMatchesDijkstraOnRandomGrids(t *testing.T) {
	if err := quick.Check(func(seed int64) bool {
		r := rng.New(seed)
		g := grid.NewGrid2D(20, 20)
		for i := 0; i < 100; i++ {
			g.Set(r.Intn(20), r.Intn(20), true)
		}
		g.Set(0, 0, false)
		g.Set(19, 19, false)
		sp := &Grid2DSpace{G: g}
		start, goal := sp.ID(0, 0), sp.ID(19, 19)

		dij, errD := Solve(Problem{Space: sp, Start: start, Goal: goal})
		ast, errA := Solve(Problem{
			Space: sp, Start: start, Goal: goal,
			H: sp.OctileHeuristic(19, 19),
		})
		if (errD == nil) != (errA == nil) {
			return false
		}
		if errD != nil {
			return true // both found no path
		}
		// A* with an admissible heuristic must match Dijkstra's cost and
		// expand no more states.
		if math.Abs(dij.Cost-ast.Cost) > 1e-9 {
			return false
		}
		return ast.Expanded <= dij.Expanded
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestWeightedAStarBoundedSuboptimality(t *testing.T) {
	if err := quick.Check(func(seed int64) bool {
		r := rng.New(seed)
		g := grid.NewGrid2D(25, 25)
		for i := 0; i < 150; i++ {
			g.Set(r.Intn(25), r.Intn(25), true)
		}
		g.Set(0, 0, false)
		g.Set(24, 24, false)
		sp := &Grid2DSpace{G: g}
		start, goal := sp.ID(0, 0), sp.ID(24, 24)
		const eps = 2.0

		opt, errO := Solve(Problem{Space: sp, Start: start, Goal: goal, H: sp.OctileHeuristic(24, 24)})
		wa, errW := Solve(Problem{Space: sp, Start: start, Goal: goal, H: sp.OctileHeuristic(24, 24), Weight: eps})
		if (errO == nil) != (errW == nil) {
			return false
		}
		if errO != nil {
			return true
		}
		// WA* with inflation ε guarantees cost <= ε * optimal.
		return wa.Cost <= eps*opt.Cost+1e-9 && wa.Cost >= opt.Cost-1e-9
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSparseAndDenseBookkeepingAgree(t *testing.T) {
	// The same graph solved with a Sized space (dense book) and an
	// anonymous wrapper (sparse book) must produce identical costs.
	type wrapper struct{ Space } // hides NumStates
	if err := quick.Check(func(seed int64) bool {
		r := rng.New(seed)
		g := grid.NewGrid2D(15, 15)
		for i := 0; i < 60; i++ {
			g.Set(r.Intn(15), r.Intn(15), true)
		}
		g.Set(0, 0, false)
		g.Set(14, 14, false)
		sp := &Grid2DSpace{G: g}
		start, goal := sp.ID(0, 0), sp.ID(14, 14)

		dense, errD := Solve(Problem{Space: sp, Start: start, Goal: goal})
		sparse, errS := Solve(Problem{Space: wrapper{sp}, Start: start, Goal: goal})
		if (errD == nil) != (errS == nil) {
			return false
		}
		if errD != nil {
			return true
		}
		return math.Abs(dense.Cost-sparse.Cost) < 1e-9 && dense.Expanded == sparse.Expanded
	}, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestGoalPredicate(t *testing.T) {
	// Accept any state >= 5 on the line graph.
	res, err := Solve(Problem{
		Space:  lineGraph{100},
		Start:  0,
		IsGoal: func(id int) bool { return id >= 5 },
	})
	if err != nil || !res.Found || res.Cost != 5 {
		t.Fatalf("res=%+v err=%v", res, err)
	}
}

func TestMaxExpansions(t *testing.T) {
	_, err := Solve(Problem{
		Space: lineGraph{1000}, Start: 0, Goal: 999,
		MaxExpansions: 10,
	})
	if err != ErrNoPath {
		t.Fatalf("err = %v, want ErrNoPath after expansion cap", err)
	}
}

func TestNegativeEdgePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative edge cost did not panic")
		}
	}()
	bad := spaceFunc(func(id int, yield func(int, float64)) {
		if id == 0 {
			yield(1, -1)
		}
	})
	Solve(Problem{Space: bad, Start: 0, Goal: 1}) //nolint:errcheck
}

type spaceFunc func(int, func(int, float64))

func (f spaceFunc) Neighbors(id int, yield func(int, float64)) { f(id, yield) }

func TestDijkstraAllDistances(t *testing.T) {
	g := grid.NewGrid2D(10, 10)
	sp := &Grid2DSpace{G: g, FourConnected: true}
	dist := DijkstraAll(sp, sp.ID(0, 0))
	// Manhattan distances on an empty 4-connected grid.
	for y := 0; y < 10; y++ {
		for x := 0; x < 10; x++ {
			want := float64(x + y)
			if math.Abs(dist[sp.ID(x, y)]-want) > 1e-9 {
				t.Fatalf("dist(%d,%d) = %v, want %v", x, y, dist[sp.ID(x, y)], want)
			}
		}
	}
}

func TestDijkstraAllUnreachable(t *testing.T) {
	g := grid.NewGrid2D(5, 5)
	for y := 0; y < 5; y++ {
		g.Set(2, y, true)
	}
	sp := &Grid2DSpace{G: g}
	dist := DijkstraAll(sp, sp.ID(0, 0))
	if !math.IsInf(dist[sp.ID(4, 4)], 1) {
		t.Fatal("unreachable cell has finite distance")
	}
}

func TestDiagonalCornerCutting(t *testing.T) {
	// Two blocked cardinals must forbid the diagonal between them.
	g := grid.NewGrid2D(3, 3)
	g.Set(1, 0, true)
	g.Set(0, 1, true)
	sp := &Grid2DSpace{G: g}
	found := false
	sp.Neighbors(sp.ID(0, 0), func(to int, cost float64) {
		if to == sp.ID(1, 1) {
			found = true
		}
	})
	if found {
		t.Fatal("diagonal move cut an obstacle corner")
	}
}

func TestGrid3DSpaceNeighborCosts(t *testing.T) {
	g := grid.NewGrid3D(3, 3, 3)
	sp := &Grid3DSpace{G: g}
	count := 0
	sp.Neighbors(sp.ID(1, 1, 1), func(to int, cost float64) {
		count++
		x, y, z := sp.Voxel(to)
		dx, dy, dz := x-1, y-1, z-1
		want := math.Sqrt(float64(dx*dx + dy*dy + dz*dz))
		if math.Abs(cost-want) > 1e-12 {
			t.Fatalf("edge cost %v, want %v", cost, want)
		}
	})
	if count != 26 {
		t.Fatalf("center voxel has %d neighbors, want 26", count)
	}
	sp6 := &Grid3DSpace{G: g, SixConnected: true}
	count = 0
	sp6.Neighbors(sp6.ID(1, 1, 1), func(int, float64) { count++ })
	if count != 6 {
		t.Fatalf("six-connected center has %d neighbors", count)
	}
}

func TestCostGridSpace(t *testing.T) {
	c := grid.NewCostGrid2D(3, 3, 2)
	c.Set(1, 1, 0) // obstacle at center
	sp := &CostGrid2DSpace{C: c}
	sp.Neighbors(sp.ID(0, 0), func(to int, cost float64) {
		x, y := sp.Cell(to)
		if x == 1 && y == 1 {
			t.Fatal("yielded an impassable cell")
		}
		if x == 1 && y == 0 && cost != 2 {
			t.Fatalf("cardinal cost = %v, want 2", cost)
		}
	})
}
