package search

import (
	"math"

	"repro/internal/pq"
)

// AnytimeResult is one solution of an anytime search: the path found at a
// particular heuristic inflation, with the expansions spent on that
// improvement round (cumulative work is the sum over rounds).
type AnytimeResult struct {
	Epsilon  float64
	Path     []int
	Cost     float64
	Expanded int
}

// SolveAnytime runs ARA* (Anytime Repairing A*, Likhachev et al.): a
// sequence of Weighted-A* searches with decreasing inflation that reuse
// earlier search effort. The first solution arrives with the largest ε in
// the schedule (fast, suboptimal within ε·C*); each subsequent round
// repairs the solution at a smaller ε instead of searching from scratch —
// locally inconsistent states are carried over rather than re-expanded.
//
// The schedule must be non-increasing and end at the final desired bound
// (1.0 for optimal). The problem's IsGoal must be nil (ARA* needs a
// concrete goal state to track f(goal)).
func SolveAnytime(p Problem, schedule []float64) ([]AnytimeResult, error) {
	if p.Space == nil {
		panic("search: nil Space")
	}
	if p.IsGoal != nil {
		panic("search: SolveAnytime requires a concrete Goal, not IsGoal")
	}
	if len(schedule) == 0 {
		schedule = []float64{1}
	}
	h := p.H
	if h == nil {
		h = func(int) float64 { return 0 }
	}

	var book bookkeeping
	var open *pq.IndexedHeap
	if s, ok := p.Space.(Sized); ok && s.NumStates() > 0 {
		book = newDenseBook(s.NumStates())
		open = pq.NewIndexedHeapDense(s.NumStates())
	} else {
		book = newSparseBook()
		open = pq.NewIndexedHeap(64)
	}

	book.setG(p.Start, 0)
	book.setParent(p.Start, p.Start)

	goal := p.Goal
	gGoal := func() float64 {
		if v, ok := book.gOk(goal); ok {
			return v
		}
		return math.Inf(1)
	}

	var results []AnytimeResult
	// incons collects locally inconsistent states discovered while closed;
	// they re-enter OPEN at the next ε.
	var incons []int
	// closedRound marks states closed in the current improvement round.
	closedRound := map[int]int{}
	round := 0

	open.Push(p.Start, schedule[0]*h(p.Start))

	for _, eps := range schedule {
		round++
		// Re-prioritize OPEN under the new ε and merge INCONS into it.
		for _, id := range incons {
			if !open.Contains(id) {
				open.Push(id, 0) // priority fixed below
			}
		}
		incons = incons[:0]
		reprioritize(open, book, h, eps)

		expanded := 0
		for open.Len() > 0 {
			if p.Ctx != nil && expanded%ctxCheckStride == 0 {
				if err := p.Ctx.Err(); err != nil {
					return results, err
				}
			}
			// Stop when the incumbent is provably within ε of optimal
			// under the current inflation: f(goal) <= min key.
			_, minKey := open.Peek()
			if gGoal() <= minKey {
				break
			}
			id, _ := open.Pop()
			if closedRound[id] == round {
				continue
			}
			closedRound[id] = round
			expanded++
			gid := book.g(id)
			p.Space.Neighbors(id, func(to int, cost float64) {
				if cost < 0 {
					panic("search: negative edge cost")
				}
				ng := gid + cost
				if old, ok := book.gOk(to); ok && old <= ng {
					return
				}
				book.setG(to, ng)
				book.setParent(to, id)
				if closedRound[to] == round {
					// Locally inconsistent: defer to the next round.
					incons = append(incons, to)
					return
				}
				open.Update(to, ng+eps*h(to))
			})
		}

		if math.IsInf(gGoal(), 1) {
			return results, ErrNoPath
		}
		results = append(results, AnytimeResult{
			Epsilon:  eps,
			Path:     reconstruct(book, p.Start, goal),
			Cost:     gGoal(),
			Expanded: expanded,
		})
	}
	return results, nil
}

// Peek is needed on the open list; pq.IndexedHeap stores the minimum at
// slot 0 — expose it via a tiny helper here to keep pq's API small.
func reprioritize(open *pq.IndexedHeap, book bookkeeping, h Heuristic, eps float64) {
	// Rebuild by draining and re-pushing with the new priorities. O(n log n),
	// amortized against the round's expansions.
	var ids []int
	for open.Len() > 0 {
		id, _ := open.Pop()
		ids = append(ids, id)
	}
	for _, id := range ids {
		open.Push(id, book.g(id)+eps*h(id))
	}
}
