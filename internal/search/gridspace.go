package search

import (
	"math"

	"repro/internal/grid"
)

// Grid2DSpace adapts an occupancy grid to the search interface with
// 8-connected moves and octile edge costs. State IDs encode cells as
// y*W + x.
type Grid2DSpace struct {
	G *grid.Grid2D
	// Passable overrides the traversability test; nil means grid free-ness.
	// pp2d installs its footprint collision checker here, which is how
	// collision detection ends up on the search's critical path.
	Passable func(x, y int) bool
	// FourConnected restricts moves to the cardinal directions.
	FourConnected bool
}

// NumStates implements Sized.
func (s *Grid2DSpace) NumStates() int { return s.G.W * s.G.H }

// ID returns the state ID of cell (x, y).
func (s *Grid2DSpace) ID(x, y int) int { return y*s.G.W + x }

// Cell returns the cell of state ID id.
func (s *Grid2DSpace) Cell(id int) (x, y int) { return id % s.G.W, id / s.G.W }

func (s *Grid2DSpace) passable(x, y int) bool {
	if !s.G.InBounds(x, y) {
		return false
	}
	if s.Passable != nil {
		return s.Passable(x, y)
	}
	return s.G.Free(x, y)
}

// Neighbors implements Space.
func (s *Grid2DSpace) Neighbors(id int, yield func(to int, cost float64)) {
	x, y := s.Cell(id)
	const diagCost = math.Sqrt2
	// Cardinal moves.
	if s.passable(x+1, y) {
		yield(id+1, 1)
	}
	if s.passable(x-1, y) {
		yield(id-1, 1)
	}
	if s.passable(x, y+1) {
		yield(id+s.G.W, 1)
	}
	if s.passable(x, y-1) {
		yield(id-s.G.W, 1)
	}
	if s.FourConnected {
		return
	}
	// Diagonal moves require both adjacent cardinals to be free so the
	// robot cannot cut obstacle corners.
	if s.passable(x+1, y+1) && s.passable(x+1, y) && s.passable(x, y+1) {
		yield(id+s.G.W+1, diagCost)
	}
	if s.passable(x-1, y+1) && s.passable(x-1, y) && s.passable(x, y+1) {
		yield(id+s.G.W-1, diagCost)
	}
	if s.passable(x+1, y-1) && s.passable(x+1, y) && s.passable(x, y-1) {
		yield(id-s.G.W+1, diagCost)
	}
	if s.passable(x-1, y-1) && s.passable(x-1, y) && s.passable(x, y-1) {
		yield(id-s.G.W-1, diagCost)
	}
}

// EuclideanHeuristic returns the straight-line distance heuristic to cell
// (gx, gy); it is the heuristic the paper uses for pp2d ("We use Euclidean
// distance as the heuristic function").
func (s *Grid2DSpace) EuclideanHeuristic(gx, gy int) Heuristic {
	w := s.G.W
	return func(id int) float64 {
		x, y := id%w, id/w
		dx, dy := float64(x-gx), float64(y-gy)
		return math.Sqrt(dx*dx + dy*dy)
	}
}

// OctileHeuristic returns the octile-distance heuristic to cell (gx, gy),
// which is admissible and tighter than Euclidean for 8-connected grids.
func (s *Grid2DSpace) OctileHeuristic(gx, gy int) Heuristic {
	w := s.G.W
	return func(id int) float64 {
		x, y := id%w, id/w
		dx := math.Abs(float64(x - gx))
		dy := math.Abs(float64(y - gy))
		if dx < dy {
			dx, dy = dy, dx
		}
		return dx + (math.Sqrt2-1)*dy
	}
}

// Grid3DSpace adapts a voxel grid with 26-connected moves and Euclidean
// edge costs. State IDs encode voxels as (z*H + y)*W + x.
type Grid3DSpace struct {
	G *grid.Grid3D
	// Passable overrides the traversability test; nil means voxel free-ness.
	Passable func(x, y, z int) bool
	// SixConnected restricts moves to the axis directions.
	SixConnected bool
}

// NumStates implements Sized.
func (s *Grid3DSpace) NumStates() int { return s.G.W * s.G.H * s.G.D }

// ID returns the state ID of voxel (x, y, z).
func (s *Grid3DSpace) ID(x, y, z int) int { return (z*s.G.H+y)*s.G.W + x }

// Voxel returns the voxel of state ID id.
func (s *Grid3DSpace) Voxel(id int) (x, y, z int) {
	x = id % s.G.W
	id /= s.G.W
	y = id % s.G.H
	z = id / s.G.H
	return
}

func (s *Grid3DSpace) passable(x, y, z int) bool {
	if !s.G.InBounds(x, y, z) {
		return false
	}
	if s.Passable != nil {
		return s.Passable(x, y, z)
	}
	return s.G.Free(x, y, z)
}

// Neighbors implements Space.
func (s *Grid3DSpace) Neighbors(id int, yield func(to int, cost float64)) {
	x, y, z := s.Voxel(id)
	for dz := -1; dz <= 1; dz++ {
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				if dx == 0 && dy == 0 && dz == 0 {
					continue
				}
				n := dx*dx + dy*dy + dz*dz
				if s.SixConnected && n != 1 {
					continue
				}
				nx, ny, nz := x+dx, y+dy, z+dz
				if !s.passable(nx, ny, nz) {
					continue
				}
				yield(s.ID(nx, ny, nz), math.Sqrt(float64(n)))
			}
		}
	}
}

// EuclideanHeuristic returns the straight-line distance heuristic to voxel
// (gx, gy, gz).
func (s *Grid3DSpace) EuclideanHeuristic(gx, gy, gz int) Heuristic {
	return func(id int) float64 {
		x, y, z := s.Voxel(id)
		dx, dy, dz := float64(x-gx), float64(y-gy), float64(z-gz)
		return math.Sqrt(dx*dx + dy*dy + dz*dz)
	}
}

// CostGrid2DSpace adapts a cost field to the search interface: moving into a
// cell pays the geometric step length times the destination cell's cost.
// The moving-target kernel plans over this space (and its time-extended
// variant).
type CostGrid2DSpace struct {
	C *grid.CostGrid2D
}

// NumStates implements Sized.
func (s *CostGrid2DSpace) NumStates() int { return s.C.W * s.C.H }

// ID returns the state ID of cell (x, y).
func (s *CostGrid2DSpace) ID(x, y int) int { return y*s.C.W + x }

// Cell returns the cell of state ID id.
func (s *CostGrid2DSpace) Cell(id int) (x, y int) { return id % s.C.W, id / s.C.W }

// Neighbors implements Space (8-connected).
func (s *CostGrid2DSpace) Neighbors(id int, yield func(to int, cost float64)) {
	x, y := s.Cell(id)
	for dy := -1; dy <= 1; dy++ {
		for dx := -1; dx <= 1; dx++ {
			if dx == 0 && dy == 0 {
				continue
			}
			nx, ny := x+dx, y+dy
			c := s.C.Cost(nx, ny)
			if math.IsInf(c, 1) {
				continue
			}
			step := 1.0
			if dx != 0 && dy != 0 {
				step = math.Sqrt2
			}
			yield(s.ID(nx, ny), step*c)
		}
	}
}
