package search

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/grid"
	"repro/internal/rng"
)

func randomGrid(seed int64, n, obstacles int) (*grid.Grid2D, *Grid2DSpace) {
	r := rng.New(seed)
	g := grid.NewGrid2D(n, n)
	for i := 0; i < obstacles; i++ {
		g.Set(r.Intn(n), r.Intn(n), true)
	}
	g.Set(0, 0, false)
	g.Set(n-1, n-1, false)
	return g, &Grid2DSpace{G: g}
}

func TestAnytimeFinalRoundOptimal(t *testing.T) {
	if err := quick.Check(func(seed int64) bool {
		_, sp := randomGrid(seed, 25, 180)
		start, goal := sp.ID(0, 0), sp.ID(24, 24)
		h := sp.OctileHeuristic(24, 24)

		opt, errO := Solve(Problem{Space: sp, Start: start, Goal: goal, H: h})
		results, errA := SolveAnytime(Problem{Space: sp, Start: start, Goal: goal, H: h},
			[]float64{3, 2, 1.5, 1})
		if (errO == nil) != (errA == nil) {
			return false
		}
		if errO != nil {
			return true
		}
		final := results[len(results)-1]
		return math.Abs(final.Cost-opt.Cost) < 1e-9
	}, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestAnytimeCostsNonIncreasing(t *testing.T) {
	if err := quick.Check(func(seed int64) bool {
		_, sp := randomGrid(seed, 30, 260)
		start, goal := sp.ID(0, 0), sp.ID(29, 29)
		h := sp.OctileHeuristic(29, 29)
		results, err := SolveAnytime(Problem{Space: sp, Start: start, Goal: goal, H: h},
			[]float64{5, 3, 2, 1.2, 1})
		if err != nil {
			return true // unreachable instance
		}
		for i := 1; i < len(results); i++ {
			if results[i].Cost > results[i-1].Cost+1e-9 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestAnytimeBoundedSuboptimality(t *testing.T) {
	if err := quick.Check(func(seed int64) bool {
		_, sp := randomGrid(seed, 25, 200)
		start, goal := sp.ID(0, 0), sp.ID(24, 24)
		h := sp.OctileHeuristic(24, 24)
		opt, errO := Solve(Problem{Space: sp, Start: start, Goal: goal, H: h})
		results, errA := SolveAnytime(Problem{Space: sp, Start: start, Goal: goal, H: h},
			[]float64{3, 1.5})
		if (errO == nil) != (errA == nil) {
			return false
		}
		if errO != nil {
			return true
		}
		// Each round's cost is within its ε of optimal.
		for _, r := range results {
			if r.Cost > r.Epsilon*opt.Cost+1e-9 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestAnytimePathsValid(t *testing.T) {
	g, sp := randomGrid(11, 40, 480)
	start, goal := sp.ID(0, 0), sp.ID(39, 39)
	h := sp.OctileHeuristic(39, 39)
	results, err := SolveAnytime(Problem{Space: sp, Start: start, Goal: goal, H: h},
		[]float64{4, 2, 1})
	if err != nil {
		t.Skip("instance unreachable")
	}
	for _, r := range results {
		if r.Path[0] != start || r.Path[len(r.Path)-1] != goal {
			t.Fatalf("eps=%v: bad endpoints", r.Epsilon)
		}
		for i, id := range r.Path {
			x, y := sp.Cell(id)
			if g.Occupied(x, y) {
				t.Fatalf("eps=%v: path cell %d occupied", r.Epsilon, i)
			}
			if i > 0 {
				px, py := sp.Cell(r.Path[i-1])
				dx, dy := x-px, y-py
				if dx < -1 || dx > 1 || dy < -1 || dy > 1 {
					t.Fatalf("eps=%v: non-adjacent step", r.Epsilon)
				}
			}
		}
	}
}

func TestAnytimeReusesSearchEffort(t *testing.T) {
	// ARA*'s point: the later rounds are much cheaper than searching from
	// scratch. Compare total expansions of the schedule against the sum of
	// independent WA* searches at each ε.
	g, sp := randomGrid(3, 80, 2000)
	_ = g
	start, goal := sp.ID(0, 0), sp.ID(79, 79)
	h := sp.OctileHeuristic(79, 79)
	schedule := []float64{3, 2, 1.5, 1.2, 1}

	results, err := SolveAnytime(Problem{Space: sp, Start: start, Goal: goal, H: h}, schedule)
	if err != nil {
		t.Skip("instance unreachable")
	}
	araTotal := 0
	for _, r := range results {
		araTotal += r.Expanded
	}
	indepTotal := 0
	for _, eps := range schedule {
		r, err := Solve(Problem{Space: sp, Start: start, Goal: goal, H: h, Weight: eps})
		if err != nil {
			t.Fatal(err)
		}
		indepTotal += r.Expanded
	}
	if araTotal >= indepTotal {
		t.Fatalf("ARA* expanded %d, independent searches %d — no reuse", araTotal, indepTotal)
	}
}

func TestAnytimeRequiresGoalState(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("IsGoal accepted")
		}
	}()
	_, sp := randomGrid(1, 10, 10)
	SolveAnytime(Problem{ //nolint:errcheck
		Space: sp, Start: 0,
		IsGoal: func(int) bool { return false },
	}, []float64{1})
}

func TestAnytimeNoPath(t *testing.T) {
	g := grid.NewGrid2D(10, 10)
	for y := 0; y < 10; y++ {
		g.Set(5, y, true)
	}
	sp := &Grid2DSpace{G: g}
	_, err := SolveAnytime(Problem{Space: sp, Start: sp.ID(0, 0), Goal: sp.ID(9, 9),
		H: sp.OctileHeuristic(9, 9)}, []float64{2, 1})
	if err != ErrNoPath {
		t.Fatalf("err = %v", err)
	}
}
