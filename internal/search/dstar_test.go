package search

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/grid"
	"repro/internal/rng"
)

func heur2(sp *Grid2DSpace) func(a, b int) float64 {
	w := sp.G.W
	return func(a, b int) float64 {
		ax, ay := a%w, a/w
		bx, by := b%w, b/w
		dx := math.Abs(float64(ax - bx))
		dy := math.Abs(float64(ay - by))
		if dx < dy {
			dx, dy = dy, dx
		}
		return dx + (math.Sqrt2-1)*dy
	}
}

func TestDStarMatchesAStarStatic(t *testing.T) {
	if err := quick.Check(func(seed int64) bool {
		r := rng.New(seed)
		g := grid.NewGrid2D(20, 20)
		for i := 0; i < 110; i++ {
			g.Set(r.Intn(20), r.Intn(20), true)
		}
		g.Set(0, 0, false)
		g.Set(19, 19, false)
		sp := &Grid2DSpace{G: g}
		start, goal := sp.ID(0, 0), sp.ID(19, 19)

		ast, errA := Solve(Problem{Space: sp, Start: start, Goal: goal, H: sp.OctileHeuristic(19, 19)})
		d := NewIncremental(sp, start, goal, heur2(sp))
		_, cost, errD := d.Plan()
		if (errA == nil) != (errD == nil) {
			return false
		}
		if errA != nil {
			return true
		}
		return math.Abs(ast.Cost-cost) < 1e-9
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDStarRepairsAfterObstacle(t *testing.T) {
	g := grid.NewGrid2D(30, 30)
	sp := &Grid2DSpace{G: g}
	start, goal := sp.ID(0, 15), sp.ID(29, 15)
	d := NewIncremental(sp, start, goal, heur2(sp))
	path, cost0, err := d.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cost0-29) > 1e-9 {
		t.Fatalf("open-row cost %v, want 29", cost0)
	}

	// Drop a wall across the planned path, leaving a gap at the top.
	var changed []int
	for y := 2; y < 30; y++ {
		g.Set(15, y, true)
		changed = append(changed, sp.ID(15, y))
	}
	d.NotifyChanged(changed...)
	path, cost1, err := d.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if cost1 <= cost0 {
		t.Fatalf("repair cost %v did not grow past %v", cost1, cost0)
	}
	// The repaired path must be valid and match a from-scratch A*.
	for i, id := range path {
		x, y := sp.Cell(id)
		if g.Occupied(x, y) {
			t.Fatalf("repaired path cell %d occupied", i)
		}
	}
	fresh, err2 := Solve(Problem{Space: sp, Start: start, Goal: goal, H: sp.OctileHeuristic(29, 15)})
	if err2 != nil {
		t.Fatal(err2)
	}
	if math.Abs(fresh.Cost-cost1) > 1e-9 {
		t.Fatalf("repaired cost %v != fresh optimal %v", cost1, fresh.Cost)
	}
}

func TestDStarRepairCheaperThanReplan(t *testing.T) {
	// On a big map with a small perturbation, the repair must expand far
	// fewer vertices than a fresh search.
	g := maps2Big()
	sp := &Grid2DSpace{G: g}
	start, goal := sp.ID(2, 2), sp.ID(g.W-3, g.H-3)
	d := NewIncremental(sp, start, goal, heur2(sp))
	if _, _, err := d.Plan(); err != nil {
		t.Fatal(err)
	}
	initialExpanded := d.Expanded

	// Small local change near the path's middle.
	cx, cy := g.W/2, g.H/2
	var changed []int
	for dy := 0; dy < 3; dy++ {
		g.Set(cx, cy+dy, true)
		changed = append(changed, sp.ID(cx, cy+dy))
	}
	d.NotifyChanged(changed...)
	if _, _, err := d.Plan(); err != nil {
		t.Fatal(err)
	}
	repairExpanded := d.Expanded - initialExpanded

	fresh, err := Solve(Problem{Space: sp, Start: start, Goal: goal, H: sp.OctileHeuristic(g.W-3, g.H-3)})
	if err != nil {
		t.Fatal(err)
	}
	if repairExpanded*3 > fresh.Expanded {
		t.Fatalf("repair expanded %d, fresh search %d — no reuse", repairExpanded, fresh.Expanded)
	}
}

func maps2Big() *grid.Grid2D {
	g := grid.NewGrid2D(120, 120)
	r := rng.New(7)
	for i := 0; i < 1500; i++ {
		g.Set(r.Intn(120), r.Intn(120), true)
	}
	g.Set(2, 2, false)
	g.Set(117, 117, false)
	return g
}

func TestDStarMoveTo(t *testing.T) {
	g := grid.NewGrid2D(20, 20)
	sp := &Grid2DSpace{G: g}
	start, goal := sp.ID(0, 0), sp.ID(19, 19)
	d := NewIncremental(sp, start, goal, heur2(sp))
	path, _, err := d.Plan()
	if err != nil {
		t.Fatal(err)
	}
	// Advance the robot three steps along the path and replan.
	d.MoveTo(path[3])
	p2, cost2, err := d.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if p2[0] != path[3] {
		t.Fatal("replanned path does not start at the robot")
	}
	want := 19*math.Sqrt2 - heur2(sp)(start, path[3])
	if math.Abs(cost2-want) > 1e-6 {
		t.Fatalf("cost after move %v, want %v", cost2, want)
	}
}

func TestDStarNoPath(t *testing.T) {
	g := grid.NewGrid2D(10, 10)
	for y := 0; y < 10; y++ {
		g.Set(5, y, true)
	}
	sp := &Grid2DSpace{G: g}
	d := NewIncremental(sp, sp.ID(0, 0), sp.ID(9, 9), heur2(sp))
	if _, _, err := d.Plan(); err != ErrNoPath {
		t.Fatalf("err = %v", err)
	}
	// Opening a door makes it solvable after notification.
	g.Set(5, 4, false)
	d.NotifyChanged(sp.ID(5, 4))
	if _, _, err := d.Plan(); err != nil {
		t.Fatalf("after opening: %v", err)
	}
}

func TestDStarRequiresSized(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unsized space accepted")
		}
	}()
	NewIncremental(lineGraph{5}, 0, 4, func(a, b int) float64 { return 0 })
}
