// Package search implements the best-first graph search algorithms that
// drive the planning kernels: A* (pp2d, pp3d, prm, symbolic planning),
// Dijkstra, Weighted A* (the moving-target kernel inflates its heuristic by
// ε, per Pohl 1970), and the backward-Dijkstra heuristic field the
// moving-target kernel precomputes "in an environment-aware manner".
//
// The search is generic over a Space: states are dense or sparse integer
// IDs, successors are produced through a callback so that hot loops do not
// allocate. Spaces that report their state count get slice-backed search
// bookkeeping; unbounded spaces (the symbolic planner's implicit state
// graph) fall back to maps.
package search

import (
	"context"
	"errors"
	"math"

	"repro/internal/pq"
)

// Space is a directed graph over integer state IDs.
type Space interface {
	// Neighbors invokes yield for every successor of id with the edge cost.
	Neighbors(id int, yield func(to int, cost float64))
}

// Sized is implemented by spaces with a known, dense state range [0, n).
// Solve uses slice-backed bookkeeping for such spaces.
type Sized interface {
	NumStates() int
}

// Heuristic estimates cost-to-goal from a state. It must be non-negative;
// admissibility is required only for optimality, not correctness.
type Heuristic func(id int) float64

// Problem describes one search episode.
type Problem struct {
	Space Space
	Start int

	// Goal is the target state used when IsGoal is nil.
	Goal int
	// IsGoal, when non-nil, generalizes the goal test (the moving-target
	// kernel accepts any state that intercepts the target's trajectory).
	IsGoal func(id int) bool

	// H is the heuristic; nil runs Dijkstra.
	H Heuristic
	// Weight inflates the heuristic (Weighted A*). Values <= 1 mean plain
	// A*. The paper's movtar kernel uses ε > 1 to trade path cost for
	// search speed.
	Weight float64

	// MaxExpansions aborts the search after this many expansions
	// (0 = unlimited).
	MaxExpansions int

	// Ctx, when non-nil, cancels the search: Solve polls it every
	// ctxCheckStride expansions and returns the partial Result with
	// Ctx.Err(). A nil Ctx is never polled (no overhead).
	Ctx context.Context
}

// Result reports the outcome of a search.
type Result struct {
	Found    bool
	Path     []int // start..goal, empty when !Found
	Cost     float64
	Expanded int // states popped from the open list
	Genered  int // successor edges generated
}

// ErrNoPath is returned when the goal is unreachable.
var ErrNoPath = errors.New("search: no path to goal")

// ctxCheckStride bounds how stale a cancellation can go unnoticed: the
// context is polled once per this many expansions, keeping the check off
// the per-neighbor fast path while still aborting within microseconds.
const ctxCheckStride = 1024

// Solve runs best-first search on p. It returns ErrNoPath when the open list
// empties (or MaxExpansions is hit) without reaching a goal state.
func Solve(p Problem) (Result, error) {
	if p.Space == nil {
		panic("search: nil Space")
	}
	isGoal := p.IsGoal
	if isGoal == nil {
		goal := p.Goal
		isGoal = func(id int) bool { return id == goal }
	}
	h := p.H
	if h == nil {
		h = func(int) float64 { return 0 }
	}
	w := p.Weight
	if w < 1 {
		w = 1
	}

	var book bookkeeping
	var open *pq.IndexedHeap
	if s, ok := p.Space.(Sized); ok && s.NumStates() > 0 {
		book = newDenseBook(s.NumStates())
		open = pq.NewIndexedHeapDense(s.NumStates())
	} else {
		book = newSparseBook()
		open = pq.NewIndexedHeap(64)
	}
	book.setG(p.Start, 0)
	book.setParent(p.Start, p.Start)
	open.Push(p.Start, w*h(p.Start))

	var res Result
	for open.Len() > 0 {
		if p.Ctx != nil && res.Expanded%ctxCheckStride == 0 {
			if err := p.Ctx.Err(); err != nil {
				return res, err
			}
		}
		id, _ := open.Pop()
		if book.closed(id) {
			continue
		}
		book.close(id)
		res.Expanded++

		if isGoal(id) {
			res.Found = true
			res.Cost = book.g(id)
			res.Path = reconstruct(book, p.Start, id)
			return res, nil
		}
		if p.MaxExpansions > 0 && res.Expanded >= p.MaxExpansions {
			break
		}

		gid := book.g(id)
		p.Space.Neighbors(id, func(to int, cost float64) {
			res.Genered++
			if cost < 0 {
				panic("search: negative edge cost")
			}
			if book.closed(to) {
				return
			}
			ng := gid + cost
			if old, ok := book.gOk(to); ok && old <= ng {
				return
			}
			book.setG(to, ng)
			book.setParent(to, id)
			open.Update(to, ng+w*h(to))
		})
	}
	return res, ErrNoPath
}

func reconstruct(book bookkeeping, start, goal int) []int {
	var rev []int
	for id := goal; ; id = book.parent(id) {
		rev = append(rev, id)
		if id == start {
			break
		}
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// bookkeeping abstracts dense (slice) vs sparse (map) search state.
type bookkeeping interface {
	g(id int) float64
	gOk(id int) (float64, bool)
	setG(id int, v float64)
	parent(id int) int
	setParent(id, p int)
	closed(id int) bool
	close(id int)
}

// denseBook keeps search state in flat arrays. All arrays are zero-value
// initialized (the runtime hands back zeroed pages), so construction is
// O(1) in touched memory: par uses 0 as "unvisited" and stores parent+1,
// and gv is only meaningful where par != 0. Untouched pages are never
// committed, so a dense book over a large state space costs only the
// states the search actually visits.
type denseBook struct {
	gv      []float64
	par     []uint32
	closedB []bool
}

func newDenseBook(n int) *denseBook {
	return &denseBook{
		gv:      make([]float64, n),
		par:     make([]uint32, n),
		closedB: make([]bool, n),
	}
}

func (b *denseBook) g(id int) float64 { return b.gv[id] }
func (b *denseBook) gOk(id int) (float64, bool) {
	if b.par[id] == 0 {
		return 0, false
	}
	return b.gv[id], true
}
func (b *denseBook) setG(id int, v float64) { b.gv[id] = v }
func (b *denseBook) parent(id int) int      { return int(b.par[id]) - 1 }
func (b *denseBook) setParent(id, p int)    { b.par[id] = uint32(p + 1) }
func (b *denseBook) closed(id int) bool     { return b.closedB[id] }
func (b *denseBook) close(id int)           { b.closedB[id] = true }

type sparseBook struct {
	gv      map[int]float64
	par     map[int]int
	closedM map[int]struct{}
}

func newSparseBook() *sparseBook {
	return &sparseBook{
		gv:      make(map[int]float64),
		par:     make(map[int]int),
		closedM: make(map[int]struct{}),
	}
}

func (b *sparseBook) g(id int) float64 { return b.gv[id] }
func (b *sparseBook) gOk(id int) (float64, bool) {
	v, ok := b.gv[id]
	return v, ok
}
func (b *sparseBook) setG(id int, v float64) { b.gv[id] = v }
func (b *sparseBook) parent(id int) int      { return b.par[id] }
func (b *sparseBook) setParent(id, p int)    { b.par[id] = p }
func (b *sparseBook) closed(id int) bool {
	_, ok := b.closedM[id]
	return ok
}
func (b *sparseBook) close(id int) { b.closedM[id] = struct{}{} }

// DijkstraAll computes the cost of the cheapest path from source to every
// reachable state of a sized space. Unreached states report +Inf.
//
// The moving-target kernel runs this backward from the goal region over the
// reversed graph to obtain its environment-aware heuristic field ("before
// starting planning, the backward Dijkstra algorithm is executed to
// calculate the heuristic values").
func DijkstraAll(sp Space, source int) []float64 {
	sized, ok := sp.(Sized)
	if !ok {
		panic("search: DijkstraAll requires a Sized space")
	}
	n := sized.NumStates()
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	open := pq.NewIndexedHeap(256)
	dist[source] = 0
	open.Push(source, 0)
	for open.Len() > 0 {
		id, d := open.Pop()
		if d > dist[id] {
			continue
		}
		sp.Neighbors(id, func(to int, cost float64) {
			nd := d + cost
			if nd < dist[to] {
				dist[to] = nd
				open.Update(to, nd)
			}
		})
	}
	return dist
}
