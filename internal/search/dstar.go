package search

import "math"

// Incremental is a D* Lite planner (Koenig & Likhachev, 2002): it computes
// a shortest path once and then *repairs* it after edge-cost changes or
// robot motion, reusing previous search effort instead of replanning from
// scratch. It is the incremental counterpart of the suite's A*: the paper's
// planning kernels assume static worlds, and D* Lite is the standard answer
// when the pp2d/pp3d environments change mid-execution (the "dynamic
// environments" the RRT kernels motivate).
//
// The space must be undirected (successor and predecessor sets coincide),
// which holds for all of the suite's grid spaces, and must be Sized.
type Incremental struct {
	sp    Space
	h     func(a, b int) float64
	start int
	goal  int
	km    float64
	last  int

	g, rhs []float64
	open   *keyHeap

	// Expanded counts vertex expansions across all Plan calls — the
	// measure of how much work repair saves versus a fresh search.
	Expanded int
}

// NewIncremental prepares a D* Lite instance for the given undirected sized
// space, start, goal, and a consistent heuristic h(a, b) estimating the
// cost between two states.
func NewIncremental(sp Space, start, goal int, h func(a, b int) float64) *Incremental {
	sized, ok := sp.(Sized)
	if !ok || sized.NumStates() <= 0 {
		panic("search: Incremental requires a Sized space")
	}
	n := sized.NumStates()
	d := &Incremental{
		sp: sp, h: h, start: start, goal: goal, last: start,
		g: make([]float64, n), rhs: make([]float64, n),
		open: newKeyHeap(n),
	}
	for i := range d.g {
		d.g[i] = math.Inf(1)
		d.rhs[i] = math.Inf(1)
	}
	d.rhs[goal] = 0
	d.open.push(goal, d.key(goal))
	return d
}

func (d *Incremental) key(s int) [2]float64 {
	m := math.Min(d.g[s], d.rhs[s])
	return [2]float64{m + d.h(d.start, s) + d.km, m}
}

func keyLess(a, b [2]float64) bool {
	if a[0] != b[0] {
		return a[0] < b[0]
	}
	return a[1] < b[1]
}

func (d *Incremental) updateVertex(u int) {
	if u != d.goal {
		best := math.Inf(1)
		d.sp.Neighbors(u, func(s int, c float64) {
			if v := c + d.g[s]; v < best {
				best = v
			}
		})
		d.rhs[u] = best
	}
	d.open.remove(u)
	if d.g[u] != d.rhs[u] {
		d.open.push(u, d.key(u))
	}
}

// computeShortestPath is the core repair loop.
func (d *Incremental) computeShortestPath() {
	for d.open.len() > 0 {
		u, kOld := d.open.top()
		kStart := d.key(d.start)
		if !keyLess(kOld, kStart) && d.rhs[d.start] == d.g[d.start] {
			break
		}
		kNew := d.key(u)
		switch {
		case keyLess(kOld, kNew):
			d.open.pop()
			d.open.push(u, kNew)
		case d.g[u] > d.rhs[u]:
			d.open.pop()
			d.g[u] = d.rhs[u]
			d.Expanded++
			d.sp.Neighbors(u, func(s int, c float64) {
				d.updateVertex(s)
			})
		default:
			d.open.pop()
			d.g[u] = math.Inf(1)
			d.Expanded++
			d.updateVertex(u)
			d.sp.Neighbors(u, func(s int, c float64) {
				d.updateVertex(s)
			})
		}
	}
}

// Plan computes (or repairs) the shortest path from the current start to
// the goal. It returns the path and its cost, or ErrNoPath.
func (d *Incremental) Plan() ([]int, float64, error) {
	d.computeShortestPath()
	if math.IsInf(d.rhs[d.start], 1) {
		return nil, 0, ErrNoPath
	}
	// Extract by greedy descent: from start repeatedly step to the
	// successor minimizing c + g.
	path := []int{d.start}
	cur := d.start
	var cost float64
	for cur != d.goal {
		best := -1
		bestV := math.Inf(1)
		var bestC float64
		d.sp.Neighbors(cur, func(s int, c float64) {
			if v := c + d.g[s]; v < bestV {
				bestV, best, bestC = v, s, c
			}
		})
		if best < 0 || math.IsInf(bestV, 1) {
			return nil, 0, ErrNoPath
		}
		cost += bestC
		cur = best
		path = append(path, cur)
		if len(path) > len(d.g)+1 {
			return nil, 0, ErrNoPath // cycle guard (inconsistent state)
		}
	}
	return path, cost, nil
}

// MoveTo informs the planner that the robot advanced to state s (usually
// along the last planned path). Subsequent Plan calls search from s.
func (d *Incremental) MoveTo(s int) {
	if s == d.start {
		return
	}
	d.km += d.h(d.last, s)
	d.last = s
	d.start = s
}

// NotifyChanged tells the planner that the edges incident to the given
// states changed (e.g. cells toggled between free and blocked). The
// affected vertices and their neighbors are re-evaluated; the next Plan
// call repairs the solution.
func (d *Incremental) NotifyChanged(ids ...int) {
	for _, u := range ids {
		d.updateVertex(u)
		d.sp.Neighbors(u, func(s int, c float64) {
			d.updateVertex(s)
		})
	}
}

// keyHeap is a binary min-heap over [2]float64 lexicographic keys with a
// dense position index, sized to the state universe.
type keyHeap struct {
	items []int
	keys  [][2]float64
	pos   []int32 // slot+1; 0 = absent
}

func newKeyHeap(universe int) *keyHeap {
	return &keyHeap{pos: make([]int32, universe)}
}

func (h *keyHeap) len() int { return len(h.items) }

func (h *keyHeap) push(item int, key [2]float64) {
	if h.pos[item] != 0 {
		// Replace in place.
		i := int(h.pos[item]) - 1
		old := h.keys[i]
		h.keys[i] = key
		if keyLess(key, old) {
			h.up(i)
		} else {
			h.down(i)
		}
		return
	}
	h.items = append(h.items, item)
	h.keys = append(h.keys, key)
	h.pos[item] = int32(len(h.items))
	h.up(len(h.items) - 1)
}

func (h *keyHeap) top() (int, [2]float64) { return h.items[0], h.keys[0] }

func (h *keyHeap) pop() int {
	item := h.items[0]
	h.swap(0, len(h.items)-1)
	h.items = h.items[:len(h.items)-1]
	h.keys = h.keys[:len(h.keys)-1]
	h.pos[item] = 0
	if len(h.items) > 0 {
		h.down(0)
	}
	return item
}

func (h *keyHeap) remove(item int) {
	p := h.pos[item]
	if p == 0 {
		return
	}
	i := int(p) - 1
	last := len(h.items) - 1
	h.swap(i, last)
	h.items = h.items[:last]
	h.keys = h.keys[:last]
	h.pos[item] = 0
	if i < last {
		h.down(i)
		h.up(i)
	}
}

func (h *keyHeap) swap(i, j int) {
	h.items[i], h.items[j] = h.items[j], h.items[i]
	h.keys[i], h.keys[j] = h.keys[j], h.keys[i]
	h.pos[h.items[i]] = int32(i + 1)
	h.pos[h.items[j]] = int32(j + 1)
}

func (h *keyHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !keyLess(h.keys[i], h.keys[parent]) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *keyHeap) down(i int) {
	n := len(h.items)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && keyLess(h.keys[l], h.keys[smallest]) {
			smallest = l
		}
		if r < n && keyLess(h.keys[r], h.keys[smallest]) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.swap(i, smallest)
		i = smallest
	}
}
