// Package physics simulates the ball-throwing robot used by the learning
// kernels (cem, bo). It replaces the paper's V-REP simulation (see
// DESIGN.md): a 2-DoF planar arm releases a ball whose flight is integrated
// ballistically; the learner only ever observes the reward, so the
// optimization code paths are identical to the paper's setup.
package physics

import (
	"math"

	"repro/internal/geom"
)

// ThrowParams are the learnable throwing parameters: the two joint angles at
// release and the scalar release force (paper §V.15: "learn the best force
// and configuration (joints' angles)").
type ThrowParams struct {
	Joint1, Joint2 float64 // radians
	Force          float64 // Newtons (impulse magnitude)
}

// Bounds describe the legal parameter box the learners sample from.
type Bounds struct {
	Lo, Hi ThrowParams
}

// DefaultBounds returns a sensible search box: shoulder in [0, π/2], elbow
// in [-π/2, π/2], force in [1, 30] N.
func DefaultBounds() Bounds {
	return Bounds{
		Lo: ThrowParams{Joint1: 0, Joint2: -math.Pi / 2, Force: 1},
		Hi: ThrowParams{Joint1: math.Pi / 2, Joint2: math.Pi / 2, Force: 30},
	}
}

// Clamp limits p to the bounds box.
func (b Bounds) Clamp(p ThrowParams) ThrowParams {
	return ThrowParams{
		Joint1: geom.Clamp(p.Joint1, b.Lo.Joint1, b.Hi.Joint1),
		Joint2: geom.Clamp(p.Joint2, b.Lo.Joint2, b.Hi.Joint2),
		Force:  geom.Clamp(p.Force, b.Lo.Force, b.Hi.Force),
	}
}

// Vec converts the parameters to a 3-vector for generic optimizers.
func (p ThrowParams) Vec() []float64 { return []float64{p.Joint1, p.Joint2, p.Force} }

// ParamsFromVec rebuilds parameters from a 3-vector.
func ParamsFromVec(v []float64) ThrowParams {
	return ThrowParams{Joint1: v[0], Joint2: v[1], Force: v[2]}
}

// World is the throwing scenario: a 2-DoF arm on a pedestal throwing at a
// goal marker on the ground.
type World struct {
	Link1, Link2 float64 // arm link lengths, meters
	BaseHeight   float64 // pedestal height, meters
	BallMass     float64 // kg
	Gravity      float64 // m/s², positive down
	GoalX        float64 // goal distance from the base, meters
	Dt           float64 // integration step, seconds

	// Evals counts physics rollouts, the learning kernels' sample budget.
	Evals int64
}

// DefaultWorld returns the scenario used by the kernels' default configs.
func DefaultWorld() *World {
	return &World{
		Link1: 0.5, Link2: 0.4,
		BaseHeight: 0.8,
		BallMass:   0.15,
		Gravity:    9.81,
		GoalX:      3.0,
		Dt:         1e-3,
	}
}

// Throw simulates one throw and returns the ball's landing x coordinate.
func (w *World) Throw(p ThrowParams) float64 {
	w.Evals++
	// Release point from arm forward kinematics.
	t1 := p.Joint1
	t12 := p.Joint1 + p.Joint2
	x := w.Link1*math.Cos(t1) + w.Link2*math.Cos(t12)
	y := w.BaseHeight + w.Link1*math.Sin(t1) + w.Link2*math.Sin(t12)

	// The impulse acts along the end-effector's tangential direction
	// (perpendicular to the last link), launching the ball.
	dirX := -math.Sin(t12)
	dirY := math.Cos(t12)
	v := p.Force / w.BallMass * 0.1 // impulse over 0.1 s contact
	vx := v * dirX
	vy := v * dirY

	// Explicit Euler ballistic integration until ground impact.
	for y > 0 {
		x += vx * w.Dt
		y += vy * w.Dt
		vy -= w.Gravity * w.Dt
		if vy < 0 && y <= 0 {
			break
		}
		// A wildly misconfigured throw going straight up terminates too.
		if y > 1e3 {
			break
		}
	}
	return x
}

// Reward returns the learning reward of a throw: negative absolute distance
// between the landing point and the goal ("the reward ... is how close the
// final location of the ball is to the goal"). Higher is better; 0 is a
// perfect hit.
func (w *World) Reward(p ThrowParams) float64 {
	return -math.Abs(w.Throw(p) - w.GoalX)
}
