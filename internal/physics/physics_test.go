package physics

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestThrowDeterministic(t *testing.T) {
	p := ThrowParams{Joint1: 0.8, Joint2: -0.2, Force: 15}
	a := DefaultWorld().Throw(p)
	b := DefaultWorld().Throw(p)
	if a != b {
		t.Fatalf("same throw landed at %v and %v", a, b)
	}
}

func TestRewardNonPositiveAndPerfectAtGoal(t *testing.T) {
	if err := quick.Check(func(seed int64) bool {
		r := rng.New(seed)
		w := DefaultWorld()
		b := DefaultBounds()
		p := ThrowParams{
			Joint1: r.Uniform(b.Lo.Joint1, b.Hi.Joint1),
			Joint2: r.Uniform(b.Lo.Joint2, b.Hi.Joint2),
			Force:  r.Uniform(b.Lo.Force, b.Hi.Force),
		}
		return w.Reward(p) <= 0
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestHarderThrowsFlyFarther(t *testing.T) {
	w := DefaultWorld()
	// A forward-throwing configuration: joint1+joint2 < 0 makes the
	// tangential release direction point toward +X.
	base := ThrowParams{Joint1: 0.3, Joint2: -0.8, Force: 5}
	prev := w.Throw(base)
	for f := 10.0; f <= 30; f += 5 {
		p := base
		p.Force = f
		d := w.Throw(p)
		if d <= prev {
			t.Fatalf("force %v landed at %v, not farther than %v", f, d, prev)
		}
		prev = d
	}
}

func TestGoalIsReachable(t *testing.T) {
	// Some parameter in the bounds box must land close to the goal —
	// otherwise the learning kernels cannot show improving rewards.
	w := DefaultWorld()
	b := DefaultBounds()
	r := rng.New(1)
	best := math.Inf(-1)
	for i := 0; i < 3000; i++ {
		p := ThrowParams{
			Joint1: r.Uniform(b.Lo.Joint1, b.Hi.Joint1),
			Joint2: r.Uniform(b.Lo.Joint2, b.Hi.Joint2),
			Force:  r.Uniform(b.Lo.Force, b.Hi.Force),
		}
		if rew := w.Reward(p); rew > best {
			best = rew
		}
	}
	if best < -0.1 {
		t.Fatalf("best random reward = %v; goal unreachable within bounds", best)
	}
}

func TestBoundsClamp(t *testing.T) {
	b := DefaultBounds()
	p := b.Clamp(ThrowParams{Joint1: 99, Joint2: -99, Force: 0})
	if p.Joint1 != b.Hi.Joint1 || p.Joint2 != b.Lo.Joint2 || p.Force != b.Lo.Force {
		t.Fatalf("Clamp = %+v", p)
	}
}

func TestVecRoundTrip(t *testing.T) {
	p := ThrowParams{Joint1: 0.1, Joint2: 0.2, Force: 3}
	if got := ParamsFromVec(p.Vec()); got != p {
		t.Fatalf("round trip = %+v", got)
	}
}

func TestEvalsCounted(t *testing.T) {
	w := DefaultWorld()
	w.Throw(ThrowParams{Force: 5})
	w.Reward(ThrowParams{Force: 5})
	if w.Evals != 2 {
		t.Fatalf("Evals = %d, want 2", w.Evals)
	}
}

func TestBallLandsOnGround(t *testing.T) {
	// Landing x must be finite for any bounded throw.
	w := DefaultWorld()
	b := DefaultBounds()
	r := rng.New(2)
	for i := 0; i < 200; i++ {
		p := ThrowParams{
			Joint1: r.Uniform(b.Lo.Joint1, b.Hi.Joint1),
			Joint2: r.Uniform(b.Lo.Joint2, b.Hi.Joint2),
			Force:  r.Uniform(b.Lo.Force, b.Hi.Force),
		}
		x := w.Throw(p)
		if math.IsNaN(x) || math.IsInf(x, 0) {
			t.Fatalf("throw diverged: %v for %+v", x, p)
		}
	}
}
