package pointcloud

import (
	"math"

	"repro/internal/geom"
	"repro/internal/kdtree"
	"repro/internal/mat"
)

// EstimateNormals computes a unit surface normal per point by local PCA:
// the normal is the eigenvector of the k-neighborhood's covariance with the
// smallest eigenvalue. Normals are oriented toward the given viewpoint
// (the camera position), the standard disambiguation for depth scans.
//
// Point-to-plane ICP — the registration used by the KinectFusion-style
// pipeline the paper's srec kernel follows — needs these normals on the
// target cloud.
func (c *Cloud) EstimateNormals(k int, viewpoint geom.Vec3) []geom.Vec3 {
	n := c.Len()
	normals := make([]geom.Vec3, n)
	if n == 0 {
		return normals
	}
	if k < 3 {
		k = 3
	}
	tree := kdtree.New(3, nil)
	for i, p := range c.Points {
		tree.Insert([]float64{p.X, p.Y, p.Z}, i)
	}
	q := make([]float64, 3)
	for i, p := range c.Points {
		q[0], q[1], q[2] = p.X, p.Y, p.Z
		nn := tree.KNearest(q, k)
		if len(nn) < 3 {
			normals[i] = geom.Vec3{Z: 1}
			continue
		}
		// Covariance of the neighborhood.
		var mean geom.Vec3
		for _, j := range nn {
			mean = mean.Add(c.Points[j])
		}
		mean = mean.Scale(1 / float64(len(nn)))
		cov := mat.New(3, 3)
		for _, j := range nn {
			d := c.Points[j].Sub(mean)
			cov.Set(0, 0, cov.At(0, 0)+d.X*d.X)
			cov.Set(0, 1, cov.At(0, 1)+d.X*d.Y)
			cov.Set(0, 2, cov.At(0, 2)+d.X*d.Z)
			cov.Set(1, 1, cov.At(1, 1)+d.Y*d.Y)
			cov.Set(1, 2, cov.At(1, 2)+d.Y*d.Z)
			cov.Set(2, 2, cov.At(2, 2)+d.Z*d.Z)
		}
		cov.Set(1, 0, cov.At(0, 1))
		cov.Set(2, 0, cov.At(0, 2))
		cov.Set(2, 1, cov.At(1, 2))

		vals, vecs := mat.SymEigen(cov)
		min := 0
		for j := 1; j < 3; j++ {
			if vals[j] < vals[min] {
				min = j
			}
		}
		normal := geom.Vec3{X: vecs.At(0, min), Y: vecs.At(1, min), Z: vecs.At(2, min)}
		nl := normal.Norm()
		if nl == 0 || math.IsNaN(nl) {
			normal = geom.Vec3{Z: 1}
		} else {
			normal = normal.Scale(1 / nl)
		}
		// Orient toward the viewpoint.
		if viewpoint.Sub(p).Dot(normal) < 0 {
			normal = normal.Scale(-1)
		}
		normals[i] = normal
	}
	return normals
}
