// Package pointcloud provides the point-cloud substrate of the scene
// reconstruction kernel: cloud storage, rigid transforms, centroids, voxel
// downsampling, and a synthetic depth-camera scanner that replaces the
// ICL-NUIM living_room dataset (see DESIGN.md's substitution table).
package pointcloud

import (
	"math"

	"repro/internal/geom"
	"repro/internal/rng"
)

// Cloud is an ordered set of 3D points.
type Cloud struct {
	Points []geom.Vec3
}

// New returns an empty cloud with capacity hint n.
func New(n int) *Cloud { return &Cloud{Points: make([]geom.Vec3, 0, n)} }

// Len returns the number of points.
func (c *Cloud) Len() int { return len(c.Points) }

// Clone returns a deep copy of the cloud.
func (c *Cloud) Clone() *Cloud {
	out := &Cloud{Points: make([]geom.Vec3, len(c.Points))}
	copy(out.Points, c.Points)
	return out
}

// Centroid returns the arithmetic mean of the points. The zero vector is
// returned for an empty cloud.
func (c *Cloud) Centroid() geom.Vec3 {
	if len(c.Points) == 0 {
		return geom.Vec3{}
	}
	var s geom.Vec3
	for _, p := range c.Points {
		s = s.Add(p)
	}
	return s.Scale(1 / float64(len(c.Points)))
}

// Rigid is a rigid-body transform: rotation (row-major 3×3) then translation.
type Rigid struct {
	R [9]float64
	T geom.Vec3
}

// IdentityRigid returns the identity transform.
func IdentityRigid() Rigid {
	return Rigid{R: [9]float64{1, 0, 0, 0, 1, 0, 0, 0, 1}}
}

// Apply maps point p through the transform.
func (t Rigid) Apply(p geom.Vec3) geom.Vec3 {
	return geom.Vec3{
		X: t.R[0]*p.X + t.R[1]*p.Y + t.R[2]*p.Z + t.T.X,
		Y: t.R[3]*p.X + t.R[4]*p.Y + t.R[5]*p.Z + t.T.Y,
		Z: t.R[6]*p.X + t.R[7]*p.Y + t.R[8]*p.Z + t.T.Z,
	}
}

// Compose returns the transform equivalent to applying u first, then t.
func (t Rigid) Compose(u Rigid) Rigid {
	var out Rigid
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			var s float64
			for k := 0; k < 3; k++ {
				s += t.R[3*i+k] * u.R[3*k+j]
			}
			out.R[3*i+j] = s
		}
	}
	out.T = t.Apply(u.T)
	return out
}

// FromEuler builds a rotation from Z-Y-X Euler angles (yaw, pitch, roll)
// plus a translation.
func FromEuler(yaw, pitch, roll float64, t geom.Vec3) Rigid {
	sy, cy := math.Sincos(yaw)
	sp, cp := math.Sincos(pitch)
	sr, cr := math.Sincos(roll)
	return Rigid{
		R: [9]float64{
			cy * cp, cy*sp*sr - sy*cr, cy*sp*cr + sy*sr,
			sy * cp, sy*sp*sr + cy*cr, sy*sp*cr - cy*sr,
			-sp, cp * sr, cp * cr,
		},
		T: t,
	}
}

// Transform returns a new cloud with every point mapped through t.
func (c *Cloud) Transform(t Rigid) *Cloud {
	out := &Cloud{Points: make([]geom.Vec3, len(c.Points))}
	for i, p := range c.Points {
		out.Points[i] = t.Apply(p)
	}
	return out
}

// TransformInPlace maps every point of the cloud through t.
func (c *Cloud) TransformInPlace(t Rigid) {
	for i, p := range c.Points {
		c.Points[i] = t.Apply(p)
	}
}

// AddNoise perturbs every point with isotropic Gaussian noise of the given
// standard deviation, modeling depth-sensor error.
func (c *Cloud) AddNoise(r *rng.RNG, sigma float64) {
	for i := range c.Points {
		c.Points[i].X += r.Normal(0, sigma)
		c.Points[i].Y += r.Normal(0, sigma)
		c.Points[i].Z += r.Normal(0, sigma)
	}
}

// VoxelDownsample returns a cloud with at most one point (the centroid of
// the bucket) per voxel of the given size. ICP pipelines downsample to bound
// correspondence-search cost.
func (c *Cloud) VoxelDownsample(voxel float64) *Cloud {
	if voxel <= 0 {
		return c.Clone()
	}
	type acc struct {
		sum geom.Vec3
		n   int
	}
	buckets := make(map[[3]int32]*acc, len(c.Points)/4+1)
	for _, p := range c.Points {
		key := [3]int32{
			int32(math.Floor(p.X / voxel)),
			int32(math.Floor(p.Y / voxel)),
			int32(math.Floor(p.Z / voxel)),
		}
		a := buckets[key]
		if a == nil {
			a = &acc{}
			buckets[key] = a
		}
		a.sum = a.sum.Add(p)
		a.n++
	}
	out := New(len(buckets))
	for _, a := range buckets {
		out.Points = append(out.Points, a.sum.Scale(1/float64(a.n)))
	}
	return out
}

// RoomModel is a procedural "living room": an axis-aligned room shell with
// boxes (furniture) inside. It substitutes for the ICL-NUIM living_room
// scene: what drives ICP cost is surface area, overlap, and clutter, all of
// which the model controls.
type RoomModel struct {
	W, D, H float64 // room extents (x, y, z)
	Boxes   []Box
}

// Box is an axis-aligned box obstacle inside the room.
type Box struct {
	Min, Max geom.Vec3
}

// NewRoom builds a room of the given extents with n furniture boxes placed
// deterministically from seed.
func NewRoom(w, d, h float64, n int, seed int64) *RoomModel {
	r := rng.New(seed)
	room := &RoomModel{W: w, D: d, H: h}
	for i := 0; i < n; i++ {
		bw := r.Uniform(0.3, w/4)
		bd := r.Uniform(0.3, d/4)
		bh := r.Uniform(0.3, h/2)
		x := r.Uniform(0.2, w-bw-0.2)
		y := r.Uniform(0.2, d-bd-0.2)
		room.Boxes = append(room.Boxes, Box{
			Min: geom.Vec3{X: x, Y: y, Z: 0},
			Max: geom.Vec3{X: x + bw, Y: y + bd, Z: bh},
		})
	}
	return room
}

// rayHit returns the distance along direction dir from origin o to the
// nearest surface of the room shell or a furniture box, or +Inf.
func (m *RoomModel) rayHit(o, dir geom.Vec3) float64 {
	best := math.Inf(1)
	// Room shell: the ray exits the room at the nearest wall plane.
	for axis := 0; axis < 3; axis++ {
		oc, dc, lim := component(o, dir, axis, m)
		if dc > 0 {
			if t := (lim - oc) / dc; t > 1e-9 && t < best {
				best = t
			}
		} else if dc < 0 {
			if t := -oc / dc; t > 1e-9 && t < best {
				best = t
			}
		}
	}
	// Furniture boxes (slab test).
	for _, b := range m.Boxes {
		if t, hit := rayBox(o, dir, b); hit && t < best {
			best = t
		}
	}
	return best
}

func component(o, d geom.Vec3, axis int, m *RoomModel) (oc, dc, lim float64) {
	switch axis {
	case 0:
		return o.X, d.X, m.W
	case 1:
		return o.Y, d.Y, m.D
	default:
		return o.Z, d.Z, m.H
	}
}

func rayBox(o, d geom.Vec3, b Box) (float64, bool) {
	tmin, tmax := 0.0, math.Inf(1)
	for axis := 0; axis < 3; axis++ {
		var oc, dc, lo, hi float64
		switch axis {
		case 0:
			oc, dc, lo, hi = o.X, d.X, b.Min.X, b.Max.X
		case 1:
			oc, dc, lo, hi = o.Y, d.Y, b.Min.Y, b.Max.Y
		default:
			oc, dc, lo, hi = o.Z, d.Z, b.Min.Z, b.Max.Z
		}
		if dc == 0 {
			if oc < lo || oc > hi {
				return 0, false
			}
			continue
		}
		t1 := (lo - oc) / dc
		t2 := (hi - oc) / dc
		if t1 > t2 {
			t1, t2 = t2, t1
		}
		if t1 > tmin {
			tmin = t1
		}
		if t2 < tmax {
			tmax = t2
		}
		if tmin > tmax {
			return 0, false
		}
	}
	if tmin <= 1e-9 {
		return 0, false
	}
	return tmin, true
}

// Camera describes a pinhole depth camera for the synthetic scanner.
type Camera struct {
	Pose       Rigid   // camera-to-world
	HFov, VFov float64 // field of view, radians
	Cols, Rows int     // image resolution
	MaxRange   float64
}

// Scan renders a depth image of the room from the camera and returns the
// back-projected point cloud in world coordinates. Points at max range
// (no hit) are dropped, as a real depth camera would.
func (m *RoomModel) Scan(cam Camera) *Cloud {
	out := New(cam.Cols * cam.Rows)
	for r := 0; r < cam.Rows; r++ {
		v := (float64(r)/float64(cam.Rows-1) - 0.5) * cam.VFov
		for c := 0; c < cam.Cols; c++ {
			u := (float64(c)/float64(cam.Cols-1) - 0.5) * cam.HFov
			// Camera frame: +X forward, +Y left, +Z up.
			dir := geom.Vec3{X: math.Cos(v) * math.Cos(u), Y: math.Cos(v) * math.Sin(u), Z: math.Sin(v)}
			worldDir := cam.Pose.Apply(dir).Sub(cam.Pose.T) // rotate only
			origin := cam.Pose.T
			t := m.rayHit(origin, worldDir)
			if math.IsInf(t, 1) || t > cam.MaxRange {
				continue
			}
			out.Points = append(out.Points, origin.Add(worldDir.Scale(t)))
		}
	}
	return out
}
