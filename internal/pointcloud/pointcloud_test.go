package pointcloud

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/geom"
	"repro/internal/rng"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func vecAlmostEq(a, b geom.Vec3, tol float64) bool {
	return almostEq(a.X, b.X, tol) && almostEq(a.Y, b.Y, tol) && almostEq(a.Z, b.Z, tol)
}

func TestIdentityRigid(t *testing.T) {
	p := geom.Vec3{X: 1, Y: 2, Z: 3}
	if got := IdentityRigid().Apply(p); got != p {
		t.Fatalf("identity moved the point: %v", got)
	}
}

func TestFromEulerYawQuarterTurn(t *testing.T) {
	tr := FromEuler(math.Pi/2, 0, 0, geom.Vec3{})
	got := tr.Apply(geom.Vec3{X: 1})
	if !vecAlmostEq(got, geom.Vec3{Y: 1}, 1e-12) {
		t.Fatalf("yaw 90° of e_x = %v", got)
	}
}

func TestComposeMatchesSequentialApply(t *testing.T) {
	if err := quick.Check(func(seed int64) bool {
		r := rng.New(seed)
		a := FromEuler(r.Uniform(-3, 3), r.Uniform(-1, 1), r.Uniform(-3, 3),
			geom.Vec3{X: r.Uniform(-5, 5), Y: r.Uniform(-5, 5), Z: r.Uniform(-5, 5)})
		b := FromEuler(r.Uniform(-3, 3), r.Uniform(-1, 1), r.Uniform(-3, 3),
			geom.Vec3{X: r.Uniform(-5, 5), Y: r.Uniform(-5, 5), Z: r.Uniform(-5, 5)})
		p := geom.Vec3{X: r.Uniform(-5, 5), Y: r.Uniform(-5, 5), Z: r.Uniform(-5, 5)}
		return vecAlmostEq(a.Compose(b).Apply(p), a.Apply(b.Apply(p)), 1e-9)
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRigidPreservesDistances(t *testing.T) {
	if err := quick.Check(func(seed int64) bool {
		r := rng.New(seed)
		tr := FromEuler(r.Uniform(-3, 3), r.Uniform(-1.5, 1.5), r.Uniform(-3, 3),
			geom.Vec3{X: 1, Y: 2, Z: 3})
		p := geom.Vec3{X: r.Uniform(-5, 5), Y: r.Uniform(-5, 5), Z: r.Uniform(-5, 5)}
		q := geom.Vec3{X: r.Uniform(-5, 5), Y: r.Uniform(-5, 5), Z: r.Uniform(-5, 5)}
		return almostEq(p.Dist(q), tr.Apply(p).Dist(tr.Apply(q)), 1e-9)
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCentroid(t *testing.T) {
	c := New(3)
	c.Points = append(c.Points,
		geom.Vec3{X: 0, Y: 0, Z: 0},
		geom.Vec3{X: 2, Y: 4, Z: 6},
	)
	got := c.Centroid()
	if !vecAlmostEq(got, geom.Vec3{X: 1, Y: 2, Z: 3}, 1e-12) {
		t.Fatalf("centroid = %v", got)
	}
	if (&Cloud{}).Centroid() != (geom.Vec3{}) {
		t.Fatal("empty centroid not zero")
	}
}

func TestTransformRoundTrip(t *testing.T) {
	r := rng.New(3)
	c := New(10)
	for i := 0; i < 10; i++ {
		c.Points = append(c.Points, geom.Vec3{X: r.Uniform(-2, 2), Y: r.Uniform(-2, 2), Z: r.Uniform(-2, 2)})
	}
	fwd := FromEuler(0.7, 0.2, -0.3, geom.Vec3{X: 1, Y: -2, Z: 0.5})
	moved := c.Transform(fwd)
	if vecAlmostEq(moved.Points[0], c.Points[0], 1e-12) {
		t.Fatal("transform was a no-op")
	}
	// The original cloud is untouched (Transform copies).
	if c.Len() != 10 {
		t.Fatal("source length changed")
	}
}

func TestVoxelDownsample(t *testing.T) {
	c := New(4)
	c.Points = append(c.Points,
		geom.Vec3{X: 0.1, Y: 0.1, Z: 0.1},
		geom.Vec3{X: 0.2, Y: 0.2, Z: 0.2}, // same 0.5-voxel as above
		geom.Vec3{X: 3, Y: 3, Z: 3},
	)
	d := c.VoxelDownsample(0.5)
	if d.Len() != 2 {
		t.Fatalf("downsampled to %d points, want 2", d.Len())
	}
	// Zero voxel size is a no-op copy.
	if c.VoxelDownsample(0).Len() != 3 {
		t.Fatal("voxel 0 changed the cloud")
	}
}

func TestScanProducesPointsInsideRoom(t *testing.T) {
	room := NewRoom(6, 5, 2.8, 5, 1)
	cam := Camera{
		Pose: FromEuler(0.7, 0, 0, geom.Vec3{X: 0.5, Y: 0.5, Z: 1.4}),
		HFov: 1.2, VFov: 0.9,
		Cols: 40, Rows: 30,
		MaxRange: 20,
	}
	cloud := room.Scan(cam)
	if cloud.Len() == 0 {
		t.Fatal("scan saw nothing")
	}
	for _, p := range cloud.Points {
		if p.X < -1e-6 || p.X > 6+1e-6 || p.Y < -1e-6 || p.Y > 5+1e-6 || p.Z < -1e-6 || p.Z > 2.8+1e-6 {
			t.Fatalf("scan point %v outside the room", p)
		}
	}
}

func TestScanHitsFurniture(t *testing.T) {
	// One big box right in front of the camera: rays must stop at its face.
	room := &RoomModel{W: 10, D: 10, H: 3,
		Boxes: []Box{{Min: geom.Vec3{X: 4, Y: 0, Z: 0}, Max: geom.Vec3{X: 5, Y: 10, Z: 3}}}}
	cam := Camera{
		Pose: IdentityRigid(),
		HFov: 0.3, VFov: 0.3,
		Cols: 5, Rows: 5,
		MaxRange: 20,
	}
	cam.Pose.T = geom.Vec3{X: 1, Y: 5, Z: 1.5}
	cloud := room.Scan(cam)
	if cloud.Len() == 0 {
		t.Fatal("scan saw nothing")
	}
	for _, p := range cloud.Points {
		if p.X > 4.01 {
			t.Fatalf("ray went through the box: %v", p)
		}
		if !almostEq(p.X, 4, 0.05) {
			t.Fatalf("ray did not stop at the box face: %v", p)
		}
	}
}

func TestAddNoiseDeterministic(t *testing.T) {
	mk := func() *Cloud {
		c := New(5)
		for i := 0; i < 5; i++ {
			c.Points = append(c.Points, geom.Vec3{X: float64(i)})
		}
		c.AddNoise(rng.New(7), 0.01)
		return c
	}
	a, b := mk(), mk()
	for i := range a.Points {
		if a.Points[i] != b.Points[i] {
			t.Fatal("noise not reproducible for equal seeds")
		}
	}
}
