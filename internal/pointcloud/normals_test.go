package pointcloud

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/rng"
)

// planeCloud samples points on the plane z = 0 in [0,1]².
func planeCloud(n int, seed int64) *Cloud {
	r := rng.New(seed)
	c := New(n)
	for i := 0; i < n; i++ {
		c.Points = append(c.Points, geom.Vec3{X: r.Float64(), Y: r.Float64(), Z: 0})
	}
	return c
}

func TestNormalsOnPlane(t *testing.T) {
	c := planeCloud(300, 1)
	viewpoint := geom.Vec3{Z: 5} // looking down from above
	normals := c.EstimateNormals(10, viewpoint)
	if len(normals) != c.Len() {
		t.Fatalf("%d normals for %d points", len(normals), c.Len())
	}
	for i, n := range normals {
		if math.Abs(n.Norm()-1) > 1e-9 {
			t.Fatalf("normal %d not unit: %v", i, n.Norm())
		}
		// The plane's normal is ±Z; viewpoint orientation makes it +Z.
		if n.Z < 0.99 {
			t.Fatalf("normal %d = %+v, want ~+Z", i, n)
		}
	}
}

func TestNormalsOrientationFollowsViewpoint(t *testing.T) {
	c := planeCloud(200, 2)
	below := c.EstimateNormals(10, geom.Vec3{Z: -5})
	for i, n := range below {
		if n.Z > -0.99 {
			t.Fatalf("normal %d = %+v, want ~-Z when viewed from below", i, n)
		}
	}
}

func TestNormalsOnSphere(t *testing.T) {
	// Points on a unit sphere: the outward normal at p is p itself.
	r := rng.New(3)
	c := New(400)
	for i := 0; i < 400; i++ {
		v := geom.Vec3{X: r.StdNormal(), Y: r.StdNormal(), Z: r.StdNormal()}
		c.Points = append(c.Points, v.Normalize())
	}
	// A distant external viewpoint orients most normals outward only on the
	// visible hemisphere; instead orient from the center outward by using a
	// huge viewpoint along each axis — simplest robust check: estimate with
	// center as viewpoint and expect INWARD normals.
	normals := c.EstimateNormals(12, geom.Vec3{})
	agree := 0
	for i, n := range normals {
		if n.Dot(c.Points[i]) < 0 {
			agree++ // oriented toward the center as requested
		}
	}
	if agree < 380 {
		t.Fatalf("only %d/400 normals point toward the viewpoint", agree)
	}
}

func TestNormalsDegenerateClouds(t *testing.T) {
	empty := New(0)
	if got := empty.EstimateNormals(8, geom.Vec3{}); len(got) != 0 {
		t.Fatal("empty cloud produced normals")
	}
	tiny := New(2)
	tiny.Points = append(tiny.Points, geom.Vec3{}, geom.Vec3{X: 1})
	normals := tiny.EstimateNormals(8, geom.Vec3{Z: 1})
	for _, n := range normals {
		if math.Abs(n.Norm()-1) > 1e-9 {
			t.Fatal("degenerate cloud normal not unit")
		}
	}
}
