package sensor

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/grid"
	"repro/internal/rng"
)

func TestOdometryApply(t *testing.T) {
	p := geom.Pose2{X: 1, Y: 1, Theta: 0}
	o := Odometry{DeltaRot1: math.Pi / 2, DeltaTrans: 2, DeltaRot2: -math.Pi / 2}
	q := o.Apply(p)
	if math.Abs(q.X-1) > 1e-12 || math.Abs(q.Y-3) > 1e-12 {
		t.Fatalf("pose after odometry = %+v", q)
	}
	if math.Abs(q.Theta) > 1e-12 {
		t.Fatalf("heading after odometry = %v", q.Theta)
	}
}

func TestOdometryModelNoiseless(t *testing.T) {
	m := OdometryModel{} // zero alphas = no noise
	r := rng.New(1)
	o := Odometry{DeltaTrans: 1, DeltaRot1: 0.1, DeltaRot2: -0.1}
	s := m.Sample(r, o)
	if s != o {
		t.Fatalf("zero-noise sample changed odometry: %+v", s)
	}
}

func TestOdometryModelAddsNoise(t *testing.T) {
	m := DefaultOdometryModel()
	r := rng.New(2)
	o := Odometry{DeltaTrans: 1}
	var spread float64
	for i := 0; i < 100; i++ {
		s := m.Sample(r, o)
		spread += math.Abs(s.DeltaTrans - 1)
	}
	if spread == 0 {
		t.Fatal("noisy model produced exact odometry 100 times")
	}
}

func TestLaserBeamAngles(t *testing.T) {
	l := Laser{NumBeams: 3, FOV: math.Pi, MaxRange: 10}
	if a := l.BeamAngle(0); math.Abs(a+math.Pi/2) > 1e-12 {
		t.Fatalf("beam 0 angle = %v", a)
	}
	if a := l.BeamAngle(1); math.Abs(a) > 1e-12 {
		t.Fatalf("beam 1 angle = %v", a)
	}
	if a := l.BeamAngle(2); math.Abs(a-math.Pi/2) > 1e-12 {
		t.Fatalf("beam 2 angle = %v", a)
	}
	single := Laser{NumBeams: 1, FOV: math.Pi}
	if single.BeamAngle(0) != 0 {
		t.Fatal("single-beam angle not forward")
	}
}

func TestLaserScanAgainstWall(t *testing.T) {
	g := grid.NewGrid2D(100, 100)
	for y := 0; y < 100; y++ {
		g.Set(60, y, true)
	}
	l := Laser{NumBeams: 1, FOV: 0, MaxRange: 50, Sigma: 0}
	scan := l.Scan(nil, g, geom.Pose2{X: 50.5, Y: 50.5, Theta: 0})
	if len(scan) != 1 {
		t.Fatalf("scan size %d", len(scan))
	}
	if math.Abs(scan[0]-9.5) > 1e-9 {
		t.Fatalf("scan = %v, want 9.5", scan[0])
	}
}

func TestLaserScanClampsToMaxRange(t *testing.T) {
	g := grid.NewGrid2D(50, 50)
	l := Laser{NumBeams: 5, FOV: 1, MaxRange: 8, Sigma: 0.5}
	scan := l.Scan(rng.New(1), g, geom.Pose2{X: 25, Y: 25})
	for _, d := range scan {
		if d < 0 || d > 8 {
			t.Fatalf("scan value %v outside [0, 8]", d)
		}
	}
}

func TestRangeBearingObserve(t *testing.T) {
	s := RangeBearingSensor{MaxRange: 100}
	lms := []Landmark{{ID: 7, P: geom.Vec2{X: 3, Y: 4}}}
	obs := s.Observe(nil, geom.Pose2{}, lms)
	if len(obs) != 1 || obs[0].ID != 7 {
		t.Fatalf("obs = %+v", obs)
	}
	if math.Abs(obs[0].Range-5) > 1e-12 {
		t.Fatalf("range = %v", obs[0].Range)
	}
	want := math.Atan2(4, 3)
	if math.Abs(obs[0].Bearing-want) > 1e-12 {
		t.Fatalf("bearing = %v, want %v", obs[0].Bearing, want)
	}
}

func TestRangeBearingHeadingSubtracted(t *testing.T) {
	s := RangeBearingSensor{MaxRange: 100}
	lms := []Landmark{{ID: 0, P: geom.Vec2{X: 0, Y: 5}}}
	obs := s.Observe(nil, geom.Pose2{Theta: math.Pi / 2}, lms)
	if math.Abs(obs[0].Bearing) > 1e-12 {
		t.Fatalf("bearing = %v, want 0 (landmark dead ahead)", obs[0].Bearing)
	}
}

func TestRangeBearingMaxRange(t *testing.T) {
	s := RangeBearingSensor{MaxRange: 2}
	lms := []Landmark{
		{ID: 0, P: geom.Vec2{X: 1, Y: 0}},
		{ID: 1, P: geom.Vec2{X: 50, Y: 0}},
	}
	obs := s.Observe(nil, geom.Pose2{}, lms)
	if len(obs) != 1 || obs[0].ID != 0 {
		t.Fatalf("obs = %+v, want only landmark 0", obs)
	}
}

func TestRangeBearingNoiseDeterministic(t *testing.T) {
	s := RangeBearingSensor{MaxRange: 100, SigmaRange: 0.1, SigmaBear: 0.05}
	lms := []Landmark{{ID: 0, P: geom.Vec2{X: 10, Y: 0}}}
	a := s.Observe(rng.New(5), geom.Pose2{}, lms)
	b := s.Observe(rng.New(5), geom.Pose2{}, lms)
	if a[0] != b[0] {
		t.Fatal("noise not reproducible for equal seeds")
	}
	if a[0].Range == 10 {
		t.Fatal("noisy observation exactly equals truth (suspicious)")
	}
}
