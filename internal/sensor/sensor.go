// Package sensor simulates the robot's proprioceptive and exteroceptive
// sensors: the odometer and laser rangefinder that feed the particle filter
// ("the odometer measures the distance traveled by the robot at each step...
// the laser rangefinder casts rays in different directions"), and the
// range-bearing landmark sensor that feeds EKF-SLAM ("the robot constantly
// reads its distance and angle with the landmarks... We add
// Gaussian-distributed noise to each sensor measurement").
package sensor

import (
	"math"

	"repro/internal/fault"
	"repro/internal/geom"
	"repro/internal/grid"
	"repro/internal/rng"
)

// Odometry is one step of relative motion in the robot frame, as reported by
// wheel encoders.
type Odometry struct {
	DeltaTrans float64 // distance traveled, meters
	DeltaRot1  float64 // heading change before translating
	DeltaRot2  float64 // heading change after translating
}

// Apply returns the pose obtained by executing the odometry step from p.
func (o Odometry) Apply(p geom.Pose2) geom.Pose2 {
	theta := p.Theta + o.DeltaRot1
	return geom.Pose2{
		X:     p.X + o.DeltaTrans*math.Cos(theta),
		Y:     p.Y + o.DeltaTrans*math.Sin(theta),
		Theta: geom.NormalizeAngle(theta + o.DeltaRot2),
	}
}

// OdometryModel holds the standard odometry noise parameters (rotational and
// translational noise mixing, as in Thrun et al.'s Probabilistic Robotics).
type OdometryModel struct {
	Alpha1, Alpha2, Alpha3, Alpha4 float64
}

// DefaultOdometryModel returns typical indoor-robot noise parameters.
func DefaultOdometryModel() OdometryModel {
	return OdometryModel{Alpha1: 0.02, Alpha2: 0.02, Alpha3: 0.05, Alpha4: 0.02}
}

// Sample draws a noisy execution of odometry o for one particle.
func (m OdometryModel) Sample(r *rng.RNG, o Odometry) Odometry {
	t, r1, r2 := o.DeltaTrans, o.DeltaRot1, o.DeltaRot2
	return Odometry{
		DeltaRot1:  r1 + r.Normal(0, math.Sqrt(m.Alpha1*r1*r1+m.Alpha2*t*t)),
		DeltaTrans: t + r.Normal(0, math.Sqrt(m.Alpha3*t*t+m.Alpha4*(r1*r1+r2*r2))),
		DeltaRot2:  r2 + r.Normal(0, math.Sqrt(m.Alpha1*r2*r2+m.Alpha2*t*t)),
	}
}

// Laser is a simulated planar laser rangefinder attached to the robot.
type Laser struct {
	NumBeams int
	FOV      float64 // total field of view, radians
	MaxRange float64 // meters
	Sigma    float64 // per-beam Gaussian range noise
	// Dropout is the probability that a beam fails and returns MaxRange
	// (glass, absorption, specular surfaces). Failure-injection tests use
	// it to exercise filter robustness.
	Dropout float64
	// Fault, when non-nil, is the chaos layer's injector: it can drop
	// beams and corrupt ranges (NaN/Inf, noise spikes) on a deterministic
	// schedule independent of the kernel's own noise stream.
	Fault *fault.Injector
}

// DefaultLaser returns a 37-beam, 270°, 25 m scanner with 5 cm noise,
// a typical indoor lidar decimated to 7.5° spacing. The count is odd so one
// beam points straight ahead — in corridor environments the long forward
// ray carries most of the position information along the corridor axis.
func DefaultLaser() Laser {
	return Laser{NumBeams: 37, FOV: 1.5 * math.Pi, MaxRange: 25, Sigma: 0.05}
}

// BeamAngle returns the robot-frame angle of beam i.
func (l Laser) BeamAngle(i int) float64 {
	if l.NumBeams == 1 {
		return 0
	}
	return -l.FOV/2 + l.FOV*float64(i)/float64(l.NumBeams-1)
}

// Scan casts all beams from the given pose on the map and returns the
// measured ranges with Gaussian noise added (clamped to [0, MaxRange]).
// Dropped-out beams read MaxRange.
func (l Laser) Scan(r *rng.RNG, g *grid.Grid2D, pose geom.Pose2) []float64 {
	return l.ScanInto(make([]float64, l.NumBeams), r, g, pose)
}

// ScanInto is Scan writing into a caller-owned buffer of length NumBeams,
// the allocation-free form the particle filter's steady-state step uses. It
// returns out.
func (l Laser) ScanInto(out []float64, r *rng.RNG, g *grid.Grid2D, pose geom.Pose2) []float64 {
	if len(out) != l.NumBeams {
		panic("sensor: ScanInto buffer length != NumBeams")
	}
	for i := range out {
		if r != nil && l.Dropout > 0 && r.Float64() < l.Dropout {
			out[i] = l.MaxRange
			continue
		}
		if l.Fault.Drop() {
			out[i] = l.MaxRange
			continue
		}
		theta := pose.Theta + l.BeamAngle(i)
		d := g.Raycast(pose.X, pose.Y, theta, l.MaxRange)
		if r != nil && l.Sigma > 0 {
			d += r.Normal(0, l.Sigma)
		}
		// Injected corruption happens after clamping, like a fault in the
		// driver or transport rather than in the physics.
		out[i] = l.Fault.Corrupt(geom.Clamp(d, 0, l.MaxRange))
	}
	return out
}

// Landmark is a point feature in the EKF-SLAM world.
type Landmark struct {
	ID int
	P  geom.Vec2
}

// RangeBearing is one landmark observation: distance and relative angle.
type RangeBearing struct {
	ID      int
	Range   float64
	Bearing float64
}

// RangeBearingSensor observes landmarks within MaxRange with Gaussian noise.
type RangeBearingSensor struct {
	MaxRange   float64
	SigmaRange float64
	SigmaBear  float64
	// Fault, when non-nil, deterministically drops observations and
	// corrupts ranges (NaN/Inf, noise spikes) — the chaos layer's handle
	// into the EKF-SLAM measurement stream.
	Fault *fault.Injector
}

// Observe returns the noisy observations of all landmarks visible from pose.
func (s RangeBearingSensor) Observe(r *rng.RNG, pose geom.Pose2, lms []Landmark) []RangeBearing {
	return s.ObserveInto(nil, r, pose, lms)
}

// ObserveInto appends the noisy observations of all landmarks visible from
// pose to out (typically buf[:0] of a reused buffer) and returns the
// extended slice. Once the buffer has grown to len(lms) capacity no further
// allocation occurs.
func (s RangeBearingSensor) ObserveInto(out []RangeBearing, r *rng.RNG, pose geom.Pose2, lms []Landmark) []RangeBearing {
	for _, lm := range lms {
		dx := lm.P.X - pose.X
		dy := lm.P.Y - pose.Y
		d := math.Hypot(dx, dy)
		if s.MaxRange > 0 && d > s.MaxRange {
			continue
		}
		if s.Fault.Drop() {
			continue
		}
		b := geom.NormalizeAngle(math.Atan2(dy, dx) - pose.Theta)
		if r != nil {
			d += r.Normal(0, s.SigmaRange)
			b = geom.NormalizeAngle(b + r.Normal(0, s.SigmaBear))
		}
		if d < 0 {
			d = 0
		}
		out = append(out, RangeBearing{ID: lm.ID, Range: s.Fault.Corrupt(d), Bearing: b})
	}
	return out
}
