// Package arm models the planar n-DoF arm manipulator used by the
// sampling-based planning kernels (prm, rrt, rrtstar, rrtpp) and the
// learning kernels' throwing robot. It provides forward kinematics,
// configuration-space interpolation, the workspace obstacle sets Map-C
// (cluttered) and Map-F (free) from the paper's Fig. 9, and the collision
// checks that dominate those kernels' execution time.
package arm

import (
	"math"

	"repro/internal/geom"
)

// Arm is a planar serial manipulator with fixed base, n revolute joints, and
// per-joint link lengths. A configuration is a vector of n joint angles in
// radians; angle i is measured relative to link i-1.
type Arm struct {
	Base  geom.Vec2
	Links []float64 // link lengths, meters
}

// New returns an arm with the given base position and link lengths.
func New(base geom.Vec2, links ...float64) *Arm {
	if len(links) == 0 {
		panic("arm: at least one link required")
	}
	ls := make([]float64, len(links))
	copy(ls, links)
	return &Arm{Base: base, Links: ls}
}

// DoF returns the number of joints.
func (a *Arm) DoF() int { return len(a.Links) }

// Reach returns the maximum distance the end-effector can be from the base.
func (a *Arm) Reach() float64 {
	var s float64
	for _, l := range a.Links {
		s += l
	}
	return s
}

// ForwardKinematics returns the world positions of every joint, base first,
// end-effector last (len = DoF+1). The result is appended to dst to let hot
// loops reuse a buffer.
func (a *Arm) ForwardKinematics(config []float64, dst []geom.Vec2) []geom.Vec2 {
	if len(config) != len(a.Links) {
		panic("arm: configuration dimension mismatch")
	}
	dst = append(dst[:0], a.Base)
	p := a.Base
	theta := 0.0
	for i, l := range a.Links {
		theta += config[i]
		s, c := math.Sincos(theta)
		p = geom.Vec2{X: p.X + l*c, Y: p.Y + l*s}
		dst = append(dst, p)
	}
	return dst
}

// EndEffector returns the end-effector position for a configuration.
func (a *Arm) EndEffector(config []float64) geom.Vec2 {
	p := a.Base
	theta := 0.0
	for i, l := range a.Links {
		theta += config[i]
		s, c := math.Sincos(theta)
		p = geom.Vec2{X: p.X + l*c, Y: p.Y + l*s}
	}
	return p
}

// ConfigDist returns the Euclidean distance between two configurations in
// joint-angle space — the L2-norm computation the paper flags as a prm
// bottleneck.
func ConfigDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// Interpolate writes a + t*(b-a) into dst and returns it.
func Interpolate(a, b []float64, t float64, dst []float64) []float64 {
	dst = dst[:0]
	for i := range a {
		dst = append(dst, a[i]+t*(b[i]-a[i]))
	}
	return dst
}

// Obstacle is a workspace obstacle the arm links must not cross.
type Obstacle interface {
	// HitsSegment reports whether the segment (a link) intersects the
	// obstacle.
	HitsSegment(s geom.Segment) bool
}

// RectObstacle is an axis-aligned rectangular obstacle.
type RectObstacle struct{ Box geom.AABB }

// HitsSegment implements Obstacle.
func (o RectObstacle) HitsSegment(s geom.Segment) bool { return o.Box.IntersectsSegment(s) }

// CircleObstacle is a disc obstacle.
type CircleObstacle struct{ Circle geom.Circle }

// HitsSegment implements Obstacle.
func (o CircleObstacle) HitsSegment(s geom.Segment) bool { return o.Circle.IntersectsSegment(s) }

// Workspace is the environment the arm operates in.
type Workspace struct {
	Obstacles []Obstacle

	// SegChecks counts link-versus-obstacle segment tests, the unit of
	// collision-detection work reported by the harness.
	SegChecks int64
}

// CollisionFree reports whether the arm at the given configuration avoids
// every obstacle. It runs forward kinematics and tests each link segment
// against each obstacle. The scratch slice (may be nil) avoids allocation in
// hot loops.
func (w *Workspace) CollisionFree(a *Arm, config []float64, scratch []geom.Vec2) bool {
	joints := a.ForwardKinematics(config, scratch)
	for i := 0; i+1 < len(joints); i++ {
		seg := geom.Segment{A: joints[i], B: joints[i+1]}
		for _, obs := range w.Obstacles {
			w.SegChecks++
			if obs.HitsSegment(seg) {
				return false
			}
		}
	}
	return true
}

// EdgeFree reports whether the straight joint-space motion from config a to
// config b stays collision-free, sampled at the given angular step
// (radians). Both endpoints are checked.
func (w *Workspace) EdgeFree(arm *Arm, a, b []float64, step float64, scratch []geom.Vec2, cfgScratch []float64) bool {
	d := ConfigDist(a, b)
	n := int(math.Ceil(d/step)) + 1
	for i := 0; i <= n; i++ {
		t := float64(i) / float64(n)
		cfg := Interpolate(a, b, t, cfgScratch)
		if !w.CollisionFree(arm, cfg, scratch) {
			return false
		}
	}
	return true
}

// MapF returns the paper's free workspace (Fig. 9 left): a 50 cm × 50 cm
// area, obstacle-free except the workspace bounds. The arm's base sits at
// the center.
func MapF() *Workspace { return &Workspace{} }

// MapC returns the paper's cluttered workspace (Fig. 9 right): rectangles
// and discs distributed around a 50 cm × 50 cm area, leaving channels the
// arm must thread. Dimensions are in meters, base at the origin.
//
// The clutter is laid out so the suite's default start (upper-left reach)
// and goal (lower-left reach) poses are free, the direct leftward sweep
// between them is blocked, and the rightward detour threads gaps between
// obstacles — every planner pays heavily for collision checking, exactly
// the profile the paper reports.
func MapC() *Workspace {
	return &Workspace{Obstacles: []Obstacle{
		// Left blocker: forbids the direct sweep through the -X sector.
		RectObstacle{geom.AABB{Min: geom.Vec2{X: -0.26, Y: -0.04}, Max: geom.Vec2{X: -0.14, Y: 0.04}}},
		// Right-side clutter the detour must thread.
		CircleObstacle{geom.Circle{C: geom.Vec2{X: 0.13, Y: 0.13}, R: 0.05}},
		CircleObstacle{geom.Circle{C: geom.Vec2{X: 0.13, Y: -0.13}, R: 0.05}},
		RectObstacle{geom.AABB{Min: geom.Vec2{X: 0.20, Y: -0.03}, Max: geom.Vec2{X: 0.26, Y: 0.03}}},
		// Top and bottom blockers near the vertical axis.
		RectObstacle{geom.AABB{Min: geom.Vec2{X: -0.03, Y: 0.18}, Max: geom.Vec2{X: 0.03, Y: 0.26}}},
		RectObstacle{geom.AABB{Min: geom.Vec2{X: -0.03, Y: -0.26}, Max: geom.Vec2{X: 0.03, Y: -0.18}}},
	}}
}

// Default5DoF returns the 5-DoF manipulator modeled in the paper (joint
// lengths sized so the arm's reach covers the 50 cm workspace).
func Default5DoF() *Arm {
	return New(geom.Vec2{}, 0.06, 0.06, 0.05, 0.05, 0.04)
}

// DefaultStart and DefaultGoal return the suite's canonical query for the
// Fig. 9 workspaces: a gently curled reach into the upper-left sector and
// its mirror image in the lower-left sector. Both are collision-free in
// Map-C and Map-F.
func DefaultStart(dof int) []float64 { return reachPose(dof, +1) }

// DefaultGoal returns the lower-left reach pose (see DefaultStart).
func DefaultGoal(dof int) []float64 { return reachPose(dof, -1) }

func reachPose(dof int, sign float64) []float64 {
	c := make([]float64, dof)
	c[0] = sign * 2.5 // ≈143°: upper-left (+) or lower-left (−) sector
	for i := 1; i < dof; i++ {
		c[i] = sign * 0.1
	}
	return c
}
