package arm

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/geom"
	"repro/internal/rng"
)

func TestForwardKinematicsStraight(t *testing.T) {
	a := New(geom.Vec2{}, 1, 1, 1)
	joints := a.ForwardKinematics([]float64{0, 0, 0}, nil)
	if len(joints) != 4 {
		t.Fatalf("joints = %d, want 4", len(joints))
	}
	for i, j := range joints {
		if math.Abs(j.X-float64(i)) > 1e-12 || math.Abs(j.Y) > 1e-12 {
			t.Fatalf("joint %d at %v", i, j)
		}
	}
}

func TestForwardKinematicsElbow(t *testing.T) {
	a := New(geom.Vec2{}, 1, 1)
	ee := a.EndEffector([]float64{math.Pi / 2, -math.Pi / 2})
	// First link up, second link turns back to +X direction.
	if math.Abs(ee.X-1) > 1e-12 || math.Abs(ee.Y-1) > 1e-12 {
		t.Fatalf("end effector at %v", ee)
	}
}

func TestLinkLengthsPreserved(t *testing.T) {
	if err := quick.Check(func(seed int64) bool {
		r := rng.New(seed)
		a := Default5DoF()
		cfg := make([]float64, a.DoF())
		for i := range cfg {
			cfg[i] = r.Uniform(-math.Pi, math.Pi)
		}
		joints := a.ForwardKinematics(cfg, nil)
		for i := 0; i < a.DoF(); i++ {
			if math.Abs(joints[i].Dist(joints[i+1])-a.Links[i]) > 1e-9 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestReach(t *testing.T) {
	a := Default5DoF()
	want := 0.06 + 0.06 + 0.05 + 0.05 + 0.04
	if math.Abs(a.Reach()-want) > 1e-12 {
		t.Fatalf("Reach = %v", a.Reach())
	}
	// No configuration exceeds the reach.
	r := rng.New(2)
	for k := 0; k < 100; k++ {
		cfg := make([]float64, a.DoF())
		for i := range cfg {
			cfg[i] = r.Uniform(-math.Pi, math.Pi)
		}
		if a.EndEffector(cfg).Dist(a.Base) > a.Reach()+1e-9 {
			t.Fatal("end effector beyond reach")
		}
	}
}

func TestConfigDist(t *testing.T) {
	if d := ConfigDist([]float64{0, 0}, []float64{3, 4}); d != 5 {
		t.Fatalf("ConfigDist = %v", d)
	}
}

func TestInterpolate(t *testing.T) {
	got := Interpolate([]float64{0, 10}, []float64{10, 20}, 0.5, nil)
	if got[0] != 5 || got[1] != 15 {
		t.Fatalf("Interpolate = %v", got)
	}
	// Endpoints.
	if g0 := Interpolate([]float64{1, 2}, []float64{3, 4}, 0, nil); g0[0] != 1 || g0[1] != 2 {
		t.Fatal("t=0 not start")
	}
	if g1 := Interpolate([]float64{1, 2}, []float64{3, 4}, 1, nil); g1[0] != 3 || g1[1] != 4 {
		t.Fatal("t=1 not end")
	}
}

func TestMapFIsFree(t *testing.T) {
	a := Default5DoF()
	ws := MapF()
	r := rng.New(3)
	for k := 0; k < 200; k++ {
		cfg := make([]float64, a.DoF())
		for i := range cfg {
			cfg[i] = r.Uniform(-math.Pi, math.Pi)
		}
		if !ws.CollisionFree(a, cfg, nil) {
			t.Fatal("Map-F rejected a configuration")
		}
	}
}

func TestMapCDefaultPosesFree(t *testing.T) {
	a := Default5DoF()
	ws := MapC()
	if !ws.CollisionFree(a, DefaultStart(a.DoF()), nil) {
		t.Fatal("default start pose collides in Map-C")
	}
	if !ws.CollisionFree(a, DefaultGoal(a.DoF()), nil) {
		t.Fatal("default goal pose collides in Map-C")
	}
}

func TestMapCBlocksSomePoses(t *testing.T) {
	a := Default5DoF()
	ws := MapC()
	// Arm straight along +X runs into the right-side clutter
	// (rect at x in [0.20, 0.26]).
	straight := make([]float64, a.DoF())
	if ws.CollisionFree(a, straight, nil) {
		t.Fatal("straight-right pose should collide in Map-C")
	}
	// Fraction of random configs in collision should be meaningful.
	r := rng.New(4)
	blocked := 0
	const n = 500
	for k := 0; k < n; k++ {
		cfg := make([]float64, a.DoF())
		for i := range cfg {
			cfg[i] = r.Uniform(-math.Pi, math.Pi)
		}
		if !ws.CollisionFree(a, cfg, nil) {
			blocked++
		}
	}
	if blocked < n/20 || blocked > n*9/10 {
		t.Fatalf("Map-C blocked %d/%d random configs — clutter out of tune", blocked, n)
	}
}

func TestEdgeFree(t *testing.T) {
	a := Default5DoF()
	ws := MapC()
	start := DefaultStart(a.DoF())
	goal := DefaultGoal(a.DoF())
	// The direct joint-space interpolation from start to goal sweeps the
	// arm through the left blocker; it must be rejected.
	if ws.EdgeFree(a, start, goal, 0.05, nil, nil) {
		t.Fatal("direct start->goal edge should collide in Map-C")
	}
	// A tiny move near the start is fine.
	near := append([]float64(nil), start...)
	near[1] += 0.05
	if !ws.EdgeFree(a, start, near, 0.05, nil, nil) {
		t.Fatal("tiny edge near start rejected")
	}
}

func TestSegCheckCounter(t *testing.T) {
	a := Default5DoF()
	ws := MapC()
	before := ws.SegChecks
	ws.CollisionFree(a, DefaultStart(a.DoF()), nil)
	if ws.SegChecks <= before {
		t.Fatal("SegChecks not incremented")
	}
}

func TestObstaclePrimitives(t *testing.T) {
	rect := RectObstacle{geom.AABB{Min: geom.Vec2{X: 0, Y: 0}, Max: geom.Vec2{X: 1, Y: 1}}}
	if !rect.HitsSegment(geom.Segment{A: geom.Vec2{X: -1, Y: 0.5}, B: geom.Vec2{X: 2, Y: 0.5}}) {
		t.Fatal("rect missed crossing segment")
	}
	circ := CircleObstacle{geom.Circle{C: geom.Vec2{X: 0, Y: 0}, R: 0.5}}
	if !circ.HitsSegment(geom.Segment{A: geom.Vec2{X: -1, Y: 0}, B: geom.Vec2{X: 1, Y: 0}}) {
		t.Fatal("circle missed crossing segment")
	}
	if circ.HitsSegment(geom.Segment{A: geom.Vec2{X: -1, Y: 2}, B: geom.Vec2{X: 1, Y: 2}}) {
		t.Fatal("circle hit a distant segment")
	}
}

func TestNewValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with no links did not panic")
		}
	}()
	New(geom.Vec2{})
}
