// Package rng provides a deterministic, seedable random number generator
// used by every stochastic kernel in the suite.
//
// All RTRBench kernels take an explicit seed so that runs are reproducible:
// the same seed, configuration, and inputset always produce the same particle
// sets, samples, and noise sequences. The generator is a small, fast
// xorshift-based PRNG (splitmix64 seeded xorshift128+) rather than
// math/rand's global source, so kernels never contend on a shared lock and
// benchmark timings are not perturbed by unrelated random consumers.
package rng

import "math"

// RNG is a deterministic pseudo-random number generator. It is not safe for
// concurrent use; create one RNG per goroutine.
type RNG struct {
	s0, s1 uint64

	// cached spare Gaussian deviate (Box-Muller produces two at a time)
	hasSpare bool
	spare    float64
}

// New returns a generator seeded with seed. Two generators created with the
// same seed produce identical sequences.
func New(seed int64) *RNG {
	r := &RNG{}
	r.Seed(seed)
	return r
}

// Seed resets the generator state from seed using splitmix64, which
// decorrelates nearby seeds.
func (r *RNG) Seed(seed int64) {
	x := uint64(seed)
	next := func() uint64 {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	r.s0 = next()
	r.s1 = next()
	if r.s0 == 0 && r.s1 == 0 {
		r.s0 = 1 // xorshift state must be non-zero
	}
	r.hasSpare = false
}

// Uint64 returns the next 64 pseudo-random bits (xorshift128+).
func (r *RNG) Uint64() uint64 {
	x := r.s0
	y := r.s1
	r.s0 = y
	x ^= x << 23
	r.s1 = x ^ y ^ (x >> 17) ^ (y >> 26)
	return r.s1 + y
}

// Float64 returns a uniform deviate in [0, 1).
func (r *RNG) Float64() float64 {
	// Use the top 53 bits for a uniformly distributed double.
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Uniform returns a uniform deviate in [lo, hi).
func (r *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Normal returns a Gaussian deviate with the given mean and standard
// deviation, using the Box-Muller transform.
func (r *RNG) Normal(mean, stddev float64) float64 {
	if r.hasSpare {
		r.hasSpare = false
		return mean + stddev*r.spare
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	m := math.Sqrt(-2 * math.Log(s) / s)
	r.spare = v * m
	r.hasSpare = true
	return mean + stddev*u*m
}

// StdNormal returns a standard Gaussian deviate (mean 0, stddev 1).
func (r *RNG) StdNormal() float64 { return r.Normal(0, 1) }

// Perm returns a pseudo-random permutation of the integers [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap (Fisher-Yates).
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Fork returns a new generator whose stream is decorrelated from r's but
// fully determined by r's current state. Kernels use Fork to hand independent
// streams to sub-components (e.g. one per particle batch) while staying
// reproducible.
func (r *RNG) Fork() *RNG {
	return New(int64(r.Uint64()))
}
