package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed generators diverged at step %d", i)
		}
	}
}

func TestSeedsDecorrelated(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("nearby seeds produced %d identical values", same)
	}
}

func TestFloat64Range(t *testing.T) {
	if err := quick.Check(func(seed int64) bool {
		r := New(seed)
		for i := 0; i < 100; i++ {
			f := r.Float64()
			if f < 0 || f >= 1 {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUniformRange(t *testing.T) {
	r := New(7)
	for i := 0; i < 1000; i++ {
		v := r.Uniform(-3, 5)
		if v < -3 || v >= 5 {
			t.Fatalf("Uniform(-3,5) = %v out of range", v)
		}
	}
}

func TestUniformMean(t *testing.T) {
	r := New(11)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestNormalMoments(t *testing.T) {
	r := New(13)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.Normal(2, 3)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-2) > 0.05 {
		t.Fatalf("normal mean = %v, want ~2", mean)
	}
	if math.Abs(math.Sqrt(variance)-3) > 0.05 {
		t.Fatalf("normal stddev = %v, want ~3", math.Sqrt(variance))
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(17)
	seen := make(map[int]bool)
	for i := 0; i < 10000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d out of range", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn(7) hit only %d distinct values", len(seen))
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestPermIsPermutation(t *testing.T) {
	if err := quick.Check(func(seed int64) bool {
		r := New(seed)
		p := r.Perm(20)
		seen := make([]bool, 20)
		for _, v := range p {
			if v < 0 || v >= 20 || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestForkIndependence(t *testing.T) {
	r := New(5)
	f1 := r.Fork()
	f2 := r.Fork()
	same := 0
	for i := 0; i < 1000; i++ {
		if f1.Uint64() == f2.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("forked streams overlapped %d times", same)
	}
}

func TestForkDeterministic(t *testing.T) {
	a := New(9).Fork()
	b := New(9).Fork()
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("forks of identical parents diverged")
		}
	}
}
