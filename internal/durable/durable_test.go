package durable

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// reopen opens and recovers a log over dir, returning the replayed
// records. The previous Log (if any) is simply abandoned — the crash
// model under test.
func reopen(t *testing.T, dir string, opts Options) (*Log, [][]byte, RecoveryInfo) {
	t.Helper()
	opts.Dir = dir
	l, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	var recs [][]byte
	var snap []byte
	info, err := l.Recover(
		func(state []byte) error { snap = append([]byte(nil), state...); return nil },
		func(rec []byte) error { recs = append(recs, append([]byte(nil), rec...)); return nil },
	)
	if err != nil {
		t.Fatal(err)
	}
	if snap != nil {
		recs = append([][]byte{snap}, recs...) // snapshot first, for callers that care
	}
	return l, recs, info
}

func appendN(t *testing.T, l *Log, prefix string, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := l.Append([]byte(fmt.Sprintf("%s-%d", prefix, i))); err != nil {
			t.Fatal(err)
		}
	}
}

// TestAppendRecoverRoundTrip: records written before an abrupt "crash"
// (no Close) replay intact and in order on reopen.
func TestAppendRecoverRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, recs, info := reopen(t, dir, Options{Fsync: FsyncNever})
	if len(recs) != 0 || info.Records != 0 || info.Truncated {
		t.Fatalf("fresh dir: recs=%d info=%+v", len(recs), info)
	}
	appendN(t, l, "rec", 5)
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	// Crash: no Close. Reopen and replay.
	_, recs, info = reopen(t, dir, Options{Fsync: FsyncNever})
	if info.Records != 5 || info.Truncated {
		t.Fatalf("info = %+v, want 5 records, no truncation", info)
	}
	for i, r := range recs {
		if want := fmt.Sprintf("rec-%d", i); string(r) != want {
			t.Errorf("record %d = %q, want %q", i, r, want)
		}
	}
}

// lastSegment returns the path of the highest-numbered segment file.
func lastSegment(t *testing.T, dir string) string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	last := ""
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), "wal-") && (last == "" || e.Name() > last) {
			last = e.Name()
		}
	}
	if last == "" {
		t.Fatal("no segment files")
	}
	return filepath.Join(dir, last)
}

// TestTornTailTruncation: a record cut mid-byte (torn write) is dropped
// on recovery — the log truncates at the last intact boundary and keeps
// working, it does not refuse to start.
func TestTornTailTruncation(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := reopen(t, dir, Options{Fsync: FsyncNever})
	appendN(t, l, "rec", 4)
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	seg := lastSegment(t, dir)
	st, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the final record: cut 3 bytes off the end.
	if err := os.Truncate(seg, st.Size()-3); err != nil {
		t.Fatal(err)
	}

	l2, recs, info := reopen(t, dir, Options{Fsync: FsyncNever})
	if !info.Truncated {
		t.Fatalf("info = %+v, want Truncated", info)
	}
	if info.Records != 3 || len(recs) != 3 {
		t.Fatalf("replayed %d records (info %d), want 3", len(recs), info.Records)
	}
	// The log still appends after the cut, and the new record survives the
	// next recovery.
	if err := l2.Append([]byte("after-cut")); err != nil {
		t.Fatal(err)
	}
	if err := l2.Sync(); err != nil {
		t.Fatal(err)
	}
	_, recs, info = reopen(t, dir, Options{Fsync: FsyncNever})
	if info.Truncated || len(recs) != 4 || string(recs[3]) != "after-cut" {
		t.Fatalf("post-repair replay = %d recs, info %+v", len(recs), info)
	}
}

// TestBitFlipDetection: a checksum mismatch anywhere in the tail record is
// corruption, even though the line is valid JSON.
func TestBitFlipDetection(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := reopen(t, dir, Options{Fsync: FsyncNever})
	appendN(t, l, "rec", 3)
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	seg := lastSegment(t, dir)
	b, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one byte inside the last record's base64 payload.
	lines := bytes.Split(bytes.TrimRight(b, "\n"), []byte("\n"))
	last := lines[len(lines)-1]
	i := bytes.Index(last, []byte(`"data":"`)) + len(`"data":"`)
	if last[i] == 'A' {
		last[i] = 'B'
	} else {
		last[i] = 'A'
	}
	if err := os.WriteFile(seg, append(bytes.Join(lines, []byte("\n")), '\n'), 0o644); err != nil {
		t.Fatal(err)
	}

	_, recs, info := reopen(t, dir, Options{Fsync: FsyncNever})
	if !info.Truncated || len(recs) != 2 {
		t.Fatalf("replayed %d records, info %+v; want 2 with truncation", len(recs), info)
	}
}

// TestSnapshotAndCompaction: Snapshot captures the state, deletes covered
// segments, and recovery is snapshot + tail records only.
func TestSnapshotAndCompaction(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force rotation so compaction has something to delete.
	opts := Options{Fsync: FsyncNever, SegmentBytes: 64}
	l, _, _ := reopen(t, dir, opts)
	appendN(t, l, "old", 10)
	if err := l.Snapshot([]byte("STATE@10")); err != nil {
		t.Fatal(err)
	}
	appendN(t, l, "new", 2)
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	// The 10 pre-snapshot segments are gone; only the post-snapshot tail
	// (at most one rotated segment per append here) remains.
	if got := l.Segments(); got > 3 {
		t.Errorf("segments after compaction = %d, want <= 3", got)
	}

	_, recs, info := reopen(t, dir, opts)
	if info.SnapshotSeq != 10 {
		t.Fatalf("SnapshotSeq = %d, want 10", info.SnapshotSeq)
	}
	if info.Records != 2 {
		t.Fatalf("replayed %d records, want 2 (post-snapshot only)", info.Records)
	}
	// reopen prepends the snapshot blob.
	if len(recs) != 3 || string(recs[0]) != "STATE@10" ||
		string(recs[1]) != "new-0" || string(recs[2]) != "new-1" {
		t.Fatalf("recs = %q", recs)
	}
}

// TestCorruptSnapshotFallsBack: a damaged newest snapshot is skipped in
// favor of an older intact one; recovery still starts.
func TestCorruptSnapshotFallsBack(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Fsync: FsyncNever}
	l, _, _ := reopen(t, dir, opts)
	appendN(t, l, "a", 2)
	if err := l.Snapshot([]byte("SNAP@2")); err != nil {
		t.Fatal(err)
	}
	// Forge a newer, corrupt snapshot.
	if err := os.WriteFile(filepath.Join(dir, "snapshot-99.json"), []byte("{garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, recs, info := reopen(t, dir, opts)
	if info.SnapshotSeq != 2 || len(recs) != 1 || string(recs[0]) != "SNAP@2" {
		t.Fatalf("recs=%q info=%+v, want fallback to SNAP@2", recs, info)
	}
}

// TestSequenceGapTruncates: a record whose sequence number skips ahead is
// unordered history and ends the replay.
func TestSequenceGapTruncates(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := reopen(t, dir, Options{Fsync: FsyncNever})
	appendN(t, l, "rec", 2)
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	seg := lastSegment(t, dir)
	// Append a syntactically valid record with a gapped seq: forge it by
	// appending a record to a second log positioned further ahead.
	f, err := os.OpenFile(seg, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	forged := `{"seq":9,"sum":"` + hexSum([]byte("x")) + `","data":"eA=="}` + "\n"
	if _, err := f.WriteString(forged); err != nil {
		t.Fatal(err)
	}
	f.Close()

	_, recs, info := reopen(t, dir, Options{Fsync: FsyncNever})
	if !info.Truncated || len(recs) != 2 {
		t.Fatalf("replayed %d records, info %+v; want 2 with truncation", len(recs), info)
	}
}

// TestFsyncPolicies: every policy round-trips; interval's background
// flusher and Close interact cleanly.
func TestFsyncPolicies(t *testing.T) {
	for _, pol := range []FsyncPolicy{FsyncAlways, FsyncInterval, FsyncNever} {
		t.Run(pol.String(), func(t *testing.T) {
			dir := t.TempDir()
			l, _, _ := reopen(t, dir, Options{Fsync: pol, FsyncEvery: time.Millisecond})
			appendN(t, l, "p", 3)
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			if err := l.Append([]byte("late")); err == nil {
				t.Fatal("Append after Close succeeded")
			}
			_, recs, _ := reopen(t, dir, Options{Fsync: pol})
			if len(recs) != 3 {
				t.Fatalf("replayed %d records, want 3", len(recs))
			}
		})
	}
}

// TestParseFsyncPolicy covers the flag spellings.
func TestParseFsyncPolicy(t *testing.T) {
	for s, want := range map[string]FsyncPolicy{"always": FsyncAlways, "interval": FsyncInterval, "never": FsyncNever} {
		got, err := ParseFsyncPolicy(s)
		if err != nil || got != want {
			t.Errorf("ParseFsyncPolicy(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseFsyncPolicy("sometimes"); err == nil {
		t.Error("ParseFsyncPolicy accepted garbage")
	}
}

// TestRecoverTwiceRejected: the append position is established exactly once.
func TestRecoverTwiceRejected(t *testing.T) {
	l, _, _ := reopen(t, t.TempDir(), Options{Fsync: FsyncNever})
	if _, err := l.Recover(nil, nil); err == nil {
		t.Fatal("second Recover succeeded")
	}
}
