// Package durable is the crash-safety layer under rtrbenchd's state: a
// write-ahead, checksummed, append-only segment log with periodic
// snapshots, built so a kill -9 at any instant loses at most the record
// being written and never the ability to start.
//
// The layout is a directory of JSONL segment files (wal-000001.jsonl,
// wal-000002.jsonl, ...) plus at most a few snapshot files
// (snapshot-<seq>.json). Every record line carries its sequence number and
// the SHA-256 of its payload; every snapshot carries the sequence number
// it covers and the SHA-256 of its state blob. Recovery loads the newest
// intact snapshot, replays the records after it in sequence order, and
// treats the first bad line — torn write, flipped byte, sequence gap — as
// the end of history: the segment is truncated at that byte offset and
// the log keeps appending from there. A corrupt tail is data loss bounded
// by the fsync policy, never a refusal to start.
//
// Compaction is snapshot-driven: Snapshot writes the full state, rotates
// to a fresh segment, and deletes the segments the snapshot covers, so
// the directory stays proportional to the live state plus the configured
// segment size rather than to history.
package durable

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// FsyncPolicy selects how aggressively appends reach stable storage.
type FsyncPolicy int

const (
	// FsyncAlways fsyncs after every append: no acknowledged record is
	// ever lost, at a per-append latency cost.
	FsyncAlways FsyncPolicy = iota
	// FsyncInterval fsyncs on a background ticker (Options.FsyncEvery):
	// a crash loses at most one interval of records.
	FsyncInterval
	// FsyncNever leaves flushing to the OS: fastest, loses whatever the
	// kernel had not written back. Recovery still truncates cleanly.
	FsyncNever
)

// ParseFsyncPolicy maps the flag spellings ("always", "interval",
// "never") onto the policy.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "always":
		return FsyncAlways, nil
	case "interval":
		return FsyncInterval, nil
	case "never":
		return FsyncNever, nil
	}
	return 0, fmt.Errorf("durable: unknown fsync policy %q (want always, interval, or never)", s)
}

func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncInterval:
		return "interval"
	case FsyncNever:
		return "never"
	}
	return fmt.Sprintf("FsyncPolicy(%d)", int(p))
}

// Options configures a Log.
type Options struct {
	// Dir is the directory holding segments and snapshots; created if
	// missing. Required.
	Dir string
	// SegmentBytes rotates to a new segment once the current one exceeds
	// this size. <= 0 means 4 MiB.
	SegmentBytes int64
	// Fsync is the durability/latency trade-off for appends.
	Fsync FsyncPolicy
	// FsyncEvery is the FsyncInterval ticker period. <= 0 means 100ms.
	FsyncEvery time.Duration
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.FsyncEvery <= 0 {
		o.FsyncEvery = 100 * time.Millisecond
	}
	return o
}

// RecoveryInfo reports what Recover found and repaired.
type RecoveryInfo struct {
	// SnapshotSeq is the sequence number of the snapshot that seeded the
	// state (0 when no snapshot was loaded).
	SnapshotSeq uint64
	// Records is the number of intact records replayed after the snapshot.
	Records int
	// Truncated reports that a torn or corrupt tail was found and cut;
	// TruncatedFile/TruncatedAt locate the cut.
	Truncated     bool
	TruncatedFile string
	TruncatedAt   int64
}

// record is one WAL line. Sum is the hex SHA-256 of the decoded payload,
// so a torn or bit-flipped line fails closed.
type record struct {
	Seq  uint64 `json:"seq"`
	Sum  string `json:"sum"`
	Data []byte `json:"data"` // encoding/json base64-encodes []byte
}

// snapshotFile is the snapshot document: the full state blob at Seq.
type snapshotFile struct {
	Seq   uint64 `json:"seq"`
	Sum   string `json:"sum"`
	State []byte `json:"state"`
}

// Log is an append-only checksummed record log. Construct with Open, call
// Recover exactly once before the first Append, Close when done. All
// methods are goroutine-safe.
type Log struct {
	opts Options

	mu        sync.Mutex
	seq       uint64 // last assigned sequence number
	segIndex  int    // numeric suffix of the open segment
	seg       *os.File
	segW      *bufio.Writer
	segSize   int64
	recovered bool
	closed    bool
	dirty     bool // unsynced appends (FsyncInterval)

	tickerStop chan struct{}
	tickerDone chan struct{}
}

// Open prepares the log directory. It does not read history — call
// Recover to replay it (required even for an empty directory, so the
// append position is established exactly once).
func Open(opts Options) (*Log, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("durable: Options.Dir is required")
	}
	opts = opts.withDefaults()
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("durable: %w", err)
	}
	l := &Log{opts: opts}
	if opts.Fsync == FsyncInterval {
		l.tickerStop = make(chan struct{})
		l.tickerDone = make(chan struct{})
		go l.fsyncLoop()
	}
	return l, nil
}

// segmentName formats the segment file name for index i.
func segmentName(i int) string { return fmt.Sprintf("wal-%06d.jsonl", i) }

// parseSegment extracts the index from a segment file name.
func parseSegment(name string) (int, bool) {
	var i int
	if _, err := fmt.Sscanf(name, "wal-%06d.jsonl", &i); err != nil {
		return 0, false
	}
	return i, true
}

// parseSnapshot extracts the covered sequence number from a snapshot name.
func parseSnapshot(name string) (uint64, bool) {
	var s uint64
	if _, err := fmt.Sscanf(name, "snapshot-%d.json", &s); err != nil {
		return 0, false
	}
	return s, true
}

// listDir splits the directory into sorted segment indices and snapshot
// sequence numbers.
func (l *Log) listDir() (segments []int, snapshots []uint64, err error) {
	entries, err := os.ReadDir(l.opts.Dir)
	if err != nil {
		return nil, nil, fmt.Errorf("durable: %w", err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if i, ok := parseSegment(e.Name()); ok {
			segments = append(segments, i)
		} else if s, ok := parseSnapshot(e.Name()); ok {
			snapshots = append(snapshots, s)
		}
	}
	sort.Ints(segments)
	sort.Slice(snapshots, func(i, j int) bool { return snapshots[i] < snapshots[j] })
	return segments, snapshots, nil
}

// Recover rebuilds state from disk: the newest intact snapshot is handed
// to loadSnapshot (skipped when none exists), then every intact record
// with a sequence number beyond it is handed to apply, in order. The
// first corrupt line — torn tail, bad checksum, malformed JSON, sequence
// regression — truncates its segment at that offset and ends replay;
// later segments are deleted (they postdate the corruption and can no
// longer be ordered against it). Recover never returns an error for
// corrupt data, only for I/O failures and callback errors.
func (l *Log) Recover(loadSnapshot func(state []byte) error, apply func(rec []byte) error) (RecoveryInfo, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	var info RecoveryInfo
	if l.recovered {
		return info, fmt.Errorf("durable: Recover called twice")
	}
	segments, snapshots, err := l.listDir()
	if err != nil {
		return info, err
	}

	// Load the newest snapshot that verifies; older ones are fallbacks
	// against a crash mid-snapshot-write (the rename is atomic, but be
	// defensive about the blob too).
	for i := len(snapshots) - 1; i >= 0; i-- {
		state, ok := l.readSnapshot(snapshots[i])
		if !ok {
			continue
		}
		if loadSnapshot != nil {
			if err := loadSnapshot(state); err != nil {
				return info, fmt.Errorf("durable: load snapshot %d: %w", snapshots[i], err)
			}
		}
		info.SnapshotSeq = snapshots[i]
		l.seq = snapshots[i]
		break
	}

	// Replay segments in order. Records at or before the snapshot are
	// skipped (the snapshot already contains their effect).
	for si, segIdx := range segments {
		stop, err := l.replaySegment(segIdx, apply, &info)
		if err != nil {
			return info, err
		}
		if stop {
			// Everything after the truncation point is unordered history:
			// drop the later segments entirely.
			for _, later := range segments[si+1:] {
				_ = os.Remove(filepath.Join(l.opts.Dir, segmentName(later)))
			}
			break
		}
	}

	// Append position: continue the highest existing segment, or start
	// segment 1.
	last := 1
	if len(segments) > 0 {
		last = segments[len(segments)-1]
		if info.Truncated {
			// The truncated segment may not be the numerically last one if
			// later segments were dropped above.
			if i, ok := parseSegment(filepath.Base(info.TruncatedFile)); ok {
				last = i
			}
		}
	}
	if err := l.openSegment(last); err != nil {
		return info, err
	}
	l.recovered = true
	return info, nil
}

// readSnapshot loads and verifies one snapshot file; ok is false for any
// corruption.
func (l *Log) readSnapshot(seq uint64) ([]byte, bool) {
	b, err := os.ReadFile(filepath.Join(l.opts.Dir, fmt.Sprintf("snapshot-%d.json", seq)))
	if err != nil {
		return nil, false
	}
	var sf snapshotFile
	if err := json.Unmarshal(b, &sf); err != nil || sf.Seq != seq {
		return nil, false
	}
	if hexSum(sf.State) != sf.Sum {
		return nil, false
	}
	return sf.State, true
}

// replaySegment applies the intact records of one segment, truncating at
// the first bad line. stop=true means corruption ended the replay.
func (l *Log) replaySegment(segIdx int, apply func([]byte) error, info *RecoveryInfo) (stop bool, err error) {
	path := filepath.Join(l.opts.Dir, segmentName(segIdx))
	f, err := os.Open(path)
	if err != nil {
		return false, fmt.Errorf("durable: %w", err)
	}
	defer f.Close()

	var offset int64
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 64<<10), 64<<20)
	for sc.Scan() {
		line := sc.Bytes()
		lineLen := int64(len(line)) + 1 // trailing newline
		// A record is bad when it fails to parse, fails its checksum, or
		// breaks sequence monotonicity (a record from before the snapshot
		// is fine — it is skipped, not corrupt).
		var rec record
		if json.Unmarshal(line, &rec) != nil || hexSum(rec.Data) != rec.Sum {
			return true, l.truncateAt(path, offset, info)
		}
		if rec.Seq <= info.SnapshotSeq {
			offset += lineLen // pre-snapshot history, already in the snapshot
			continue
		}
		if rec.Seq != l.seq+1 {
			return true, l.truncateAt(path, offset, info)
		}
		l.seq = rec.Seq
		if apply != nil {
			if err := apply(rec.Data); err != nil {
				return false, fmt.Errorf("durable: apply record %d: %w", rec.Seq, err)
			}
		}
		info.Records++
		offset += lineLen
	}
	if sc.Err() != nil || l.hasPartialTail(path, offset) {
		// A final line without a newline (torn write) never reaches the
		// loop body on some scanners; measure the file to be sure.
		return true, l.truncateAt(path, offset, info)
	}
	return false, nil
}

// hasPartialTail reports whether the file extends beyond the last intact
// record boundary.
func (l *Log) hasPartialTail(path string, offset int64) bool {
	st, err := os.Stat(path)
	if err != nil {
		return false
	}
	return st.Size() > offset
}

// truncateAt cuts the segment at the last intact record boundary and
// stamps the recovery info.
func (l *Log) truncateAt(path string, offset int64, info *RecoveryInfo) error {
	st, err := os.Stat(path)
	if err == nil && st.Size() == offset {
		// Nothing to cut (scanner error without extra bytes).
		return nil
	}
	if err := os.Truncate(path, offset); err != nil {
		return fmt.Errorf("durable: truncate torn tail: %w", err)
	}
	info.Truncated = true
	info.TruncatedFile = path
	info.TruncatedAt = offset
	return nil
}

// openSegment opens (creating if needed) segment i for appending.
func (l *Log) openSegment(i int) error {
	path := filepath.Join(l.opts.Dir, segmentName(i))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("durable: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("durable: %w", err)
	}
	if l.segW != nil {
		_ = l.segW.Flush()
	}
	if l.seg != nil {
		_ = l.seg.Close()
	}
	l.seg, l.segW, l.segIndex, l.segSize = f, bufio.NewWriter(f), i, st.Size()
	return nil
}

// Append writes one record, rotating segments and applying the fsync
// policy. The data is opaque to the log.
func (l *Log) Append(data []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.recovered {
		return fmt.Errorf("durable: Append before Recover")
	}
	if l.closed {
		return fmt.Errorf("durable: log closed")
	}
	l.seq++
	line, err := json.Marshal(record{Seq: l.seq, Sum: hexSum(data), Data: data})
	if err != nil {
		return fmt.Errorf("durable: %w", err)
	}
	line = append(line, '\n')
	if _, err := l.segW.Write(line); err != nil {
		return fmt.Errorf("durable: %w", err)
	}
	l.segSize += int64(len(line))
	switch l.opts.Fsync {
	case FsyncAlways:
		if err := l.flushLocked(true); err != nil {
			return err
		}
	case FsyncInterval:
		l.dirty = true
	case FsyncNever:
		if err := l.flushLocked(false); err != nil {
			return err
		}
	}
	if l.segSize >= l.opts.SegmentBytes {
		if err := l.flushLocked(l.opts.Fsync == FsyncAlways); err != nil {
			return err
		}
		if err := l.openSegment(l.segIndex + 1); err != nil {
			return err
		}
	}
	return nil
}

// Snapshot persists the full state blob at the current sequence number,
// rotates to a fresh segment, and deletes the history the snapshot now
// covers — the compaction step. The snapshot write is atomic
// (tmp + rename), so a crash mid-snapshot leaves the previous
// snapshot+segments intact.
func (l *Log) Snapshot(state []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.recovered {
		return fmt.Errorf("durable: Snapshot before Recover")
	}
	if l.closed {
		return fmt.Errorf("durable: log closed")
	}
	if err := l.flushLocked(l.opts.Fsync != FsyncNever); err != nil {
		return err
	}
	b, err := json.Marshal(snapshotFile{Seq: l.seq, Sum: hexSum(state), State: state})
	if err != nil {
		return fmt.Errorf("durable: %w", err)
	}
	final := filepath.Join(l.opts.Dir, fmt.Sprintf("snapshot-%d.json", l.seq))
	tmp := final + ".tmp"
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return fmt.Errorf("durable: %w", err)
	}
	if l.opts.Fsync != FsyncNever {
		if f, err := os.Open(tmp); err == nil {
			_ = f.Sync()
			_ = f.Close()
		}
	}
	if err := os.Rename(tmp, final); err != nil {
		return fmt.Errorf("durable: %w", err)
	}

	// Compact: everything before the fresh segment is covered by the
	// snapshot; older snapshots are superseded.
	segments, snapshots, err := l.listDir()
	if err != nil {
		return err
	}
	if err := l.openSegment(l.segIndex + 1); err != nil {
		return err
	}
	for _, i := range segments {
		if i < l.segIndex {
			_ = os.Remove(filepath.Join(l.opts.Dir, segmentName(i)))
		}
	}
	for _, s := range snapshots {
		if s < l.seq {
			_ = os.Remove(filepath.Join(l.opts.Dir, fmt.Sprintf("snapshot-%d.json", s)))
		}
	}
	return nil
}

// Seq returns the last assigned sequence number.
func (l *Log) Seq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// Segments returns the number of segment files currently on disk.
func (l *Log) Segments() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	segments, _, err := l.listDir()
	if err != nil {
		return 0
	}
	return len(segments)
}

// Sync flushes buffered appends to stable storage regardless of policy.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.seg == nil || l.closed {
		return nil
	}
	return l.flushLocked(true)
}

func (l *Log) flushLocked(sync bool) error {
	if err := l.segW.Flush(); err != nil {
		return fmt.Errorf("durable: %w", err)
	}
	if sync {
		if err := l.seg.Sync(); err != nil {
			return fmt.Errorf("durable: %w", err)
		}
		l.dirty = false
	}
	return nil
}

// fsyncLoop is the FsyncInterval background flusher.
func (l *Log) fsyncLoop() {
	defer close(l.tickerDone)
	t := time.NewTicker(l.opts.FsyncEvery)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			l.mu.Lock()
			if l.dirty && !l.closed && l.seg != nil {
				_ = l.flushLocked(true)
			}
			l.mu.Unlock()
		case <-l.tickerStop:
			return
		}
	}
}

// Close flushes and closes the log. A closed log rejects further appends.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	var err error
	if l.seg != nil {
		err = l.flushLocked(l.opts.Fsync != FsyncNever)
		if cerr := l.seg.Close(); err == nil {
			err = cerr
		}
		l.seg, l.segW = nil, nil
	}
	stop := l.tickerStop
	l.mu.Unlock()
	if stop != nil {
		close(stop)
		<-l.tickerDone
	}
	return err
}

func hexSum(b []byte) string {
	s := sha256.Sum256(b)
	return hex.EncodeToString(s[:])
}
