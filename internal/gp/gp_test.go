package gp

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestInterpolatesTrainingPoints(t *testing.T) {
	g := New(0.5, 1.0, 1e-6)
	xs := [][]float64{{0}, {0.3}, {0.7}, {1}}
	ys := []float64{1, -0.5, 2, 0}
	if err := g.Fit(xs, ys); err != nil {
		t.Fatal(err)
	}
	for i, x := range xs {
		m, v := g.Predict(x)
		if math.Abs(m-ys[i]) > 1e-3 {
			t.Fatalf("mean at training point %d = %v, want %v", i, m, ys[i])
		}
		if v > 1e-3 {
			t.Fatalf("variance at training point %d = %v, want ~0", i, v)
		}
	}
}

func TestVarianceGrowsAwayFromData(t *testing.T) {
	g := New(0.3, 1.0, 1e-4)
	if err := g.Fit([][]float64{{0}}, []float64{1}); err != nil {
		t.Fatal(err)
	}
	_, vNear := g.Predict([]float64{0.01})
	_, vFar := g.Predict([]float64{5})
	if vFar <= vNear {
		t.Fatalf("variance near=%v far=%v — should grow with distance", vNear, vFar)
	}
	if math.Abs(vFar-1.0) > 1e-3 {
		t.Fatalf("far variance = %v, want ~signal variance 1", vFar)
	}
}

func TestMeanRevertsToZeroFarAway(t *testing.T) {
	g := New(0.3, 1.0, 1e-4)
	if err := g.Fit([][]float64{{0}}, []float64{5}); err != nil {
		t.Fatal(err)
	}
	m, _ := g.Predict([]float64{10})
	if math.Abs(m) > 1e-3 {
		t.Fatalf("far mean = %v, want ~0 (prior mean)", m)
	}
}

func TestSmoothFunctionRegression(t *testing.T) {
	g := New(0.5, 1.0, 1e-4)
	r := rng.New(1)
	var xs [][]float64
	var ys []float64
	f := func(x float64) float64 { return math.Sin(3 * x) }
	for i := 0; i < 30; i++ {
		x := r.Uniform(0, 2)
		xs = append(xs, []float64{x})
		ys = append(ys, f(x))
	}
	if err := g.Fit(xs, ys); err != nil {
		t.Fatal(err)
	}
	// Predictions between data points should track the function closely.
	for x := 0.2; x < 1.8; x += 0.1 {
		m, _ := g.Predict([]float64{x})
		if math.Abs(m-f(x)) > 0.15 {
			t.Fatalf("prediction at %v: %v, want ~%v", x, m, f(x))
		}
	}
}

func TestUCBDominatesMean(t *testing.T) {
	g := New(0.5, 1.0, 1e-4)
	if err := g.Fit([][]float64{{0}, {1}}, []float64{0, 1}); err != nil {
		t.Fatal(err)
	}
	for x := -1.0; x <= 2; x += 0.25 {
		m, _ := g.Predict([]float64{x})
		if u := g.UCB([]float64{x}, 2); u < m-1e-12 {
			t.Fatalf("UCB %v below mean %v at %v", u, m, x)
		}
	}
}

func TestMultiDimensional(t *testing.T) {
	g := New(1.0, 1.0, 1e-4)
	xs := [][]float64{{0, 0}, {1, 0}, {0, 1}, {1, 1}}
	ys := []float64{0, 1, 1, 2}
	if err := g.Fit(xs, ys); err != nil {
		t.Fatal(err)
	}
	// The query is symmetric in the four corners, so the prediction must
	// stay near the corner mean; RBF interpolation is not exact between
	// points, so the tolerance is loose.
	m, _ := g.Predict([]float64{0.5, 0.5})
	if math.Abs(m-1) > 0.4 {
		t.Fatalf("center prediction = %v, want ~1", m)
	}
	// Symmetry: the two off-diagonal corners predict identically.
	m1, _ := g.Predict([]float64{0.9, 0.1})
	m2, _ := g.Predict([]float64{0.1, 0.9})
	if math.Abs(m1-m2) > 1e-9 {
		t.Fatalf("asymmetric predictions %v vs %v", m1, m2)
	}
}

func TestFitValidation(t *testing.T) {
	g := New(1, 1, 0.01)
	if err := g.Fit(nil, nil); err == nil {
		t.Fatal("empty fit accepted")
	}
	if err := g.Fit([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestPredictBeforeFitPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Predict before Fit did not panic")
		}
	}()
	New(1, 1, 0.01).Predict([]float64{0})
}

func TestDuplicateInputsStableWithNoise(t *testing.T) {
	g := New(0.5, 1.0, 0.01)
	// Identical inputs with different targets: the noise term must keep
	// the kernel matrix positive definite.
	err := g.Fit([][]float64{{1}, {1}, {1}}, []float64{0.9, 1.0, 1.1})
	if err != nil {
		t.Fatalf("duplicate inputs broke the fit: %v", err)
	}
	m, _ := g.Predict([]float64{1})
	if math.Abs(m-1.0) > 0.05 {
		t.Fatalf("mean at duplicated input = %v, want ~1", m)
	}
}

func TestNewValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad hyperparameters did not panic")
		}
	}()
	New(0, 1, 0.1)
}
