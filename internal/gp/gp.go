// Package gp implements Gaussian-process regression with an RBF kernel and
// the upper-confidence-bound acquisition function — the substrate of the
// Bayesian-optimization control kernel (paper §V.16: "We use an upper
// confidence bound (UCB) acquisition function. Training and testing are done
// using a Gaussian process.").
package gp

import (
	"fmt"
	"math"

	"repro/internal/mat"
)

// GP is a Gaussian-process regressor over n-dimensional inputs. Fit must be
// called before Predict.
type GP struct {
	// LengthScale is the RBF kernel length scale.
	LengthScale float64
	// SignalVar is the kernel signal variance σ_f².
	SignalVar float64
	// NoiseVar is the observation noise variance σ_n² added to the diagonal.
	NoiseVar float64

	xs    [][]float64
	chol  *mat.Matrix
	alpha []float64
}

// New returns a GP with the given hyperparameters.
func New(lengthScale, signalVar, noiseVar float64) *GP {
	if lengthScale <= 0 || signalVar <= 0 || noiseVar < 0 {
		panic("gp: non-positive hyperparameters")
	}
	return &GP{LengthScale: lengthScale, SignalVar: signalVar, NoiseVar: noiseVar}
}

func (g *GP) kernel(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return g.SignalVar * math.Exp(-s/(2*g.LengthScale*g.LengthScale))
}

// Fit trains the GP on inputs xs and targets ys. It computes the Cholesky
// factorization of K + σ_n²I, the cubic-cost matrix operation that makes bo
// "computationally more intensive" than cem.
func (g *GP) Fit(xs [][]float64, ys []float64) error {
	if len(xs) != len(ys) || len(xs) == 0 {
		return fmt.Errorf("gp: need equal, non-empty inputs and targets")
	}
	n := len(xs)
	g.xs = make([][]float64, n)
	for i, x := range xs {
		g.xs[i] = append([]float64(nil), x...)
	}
	k := mat.New(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := g.kernel(xs[i], xs[j])
			if i == j {
				v += g.NoiseVar + 1e-10 // jitter for numerical stability
			}
			k.Set(i, j, v)
			k.Set(j, i, v)
		}
	}
	chol, err := mat.Cholesky(k)
	if err != nil {
		return fmt.Errorf("gp: kernel matrix not positive definite: %w", err)
	}
	g.chol = chol
	g.alpha = mat.CholSolve(chol, ys)
	return nil
}

// Predict returns the posterior mean and variance at x.
func (g *GP) Predict(x []float64) (mean, variance float64) {
	if g.chol == nil {
		panic("gp: Predict before Fit")
	}
	n := len(g.xs)
	kstar := make([]float64, n)
	for i, xi := range g.xs {
		kstar[i] = g.kernel(xi, x)
	}
	for i, a := range g.alpha {
		mean += kstar[i] * a
	}
	// v = L⁻¹ k*; var = k(x,x) - vᵀv.
	v := make([]float64, n)
	for i := 0; i < n; i++ {
		s := kstar[i]
		for j := 0; j < i; j++ {
			s -= g.chol.At(i, j) * v[j]
		}
		v[i] = s / g.chol.At(i, i)
	}
	variance = g.kernel(x, x)
	for _, vi := range v {
		variance -= vi * vi
	}
	if variance < 0 {
		variance = 0
	}
	return mean, variance
}

// UCB returns the upper-confidence-bound acquisition value at x:
// mean + beta * stddev.
func (g *GP) UCB(x []float64, beta float64) float64 {
	m, v := g.Predict(x)
	return m + beta*math.Sqrt(v)
}
