// Package golden is the correctness-verification substrate of the suite:
// it reduces a kernel run to a deterministic digest — a flat, ordered list
// of named string values — and owns the digest's canonical text encoding,
// the field-by-field diff, and the golden-file layout under
// rtrbench/testdata/golden/.
//
// The paper's methodology rests on kernels being deterministic,
// self-checking workloads whose reported numbers can be trusted (§VI);
// RT-Bench likewise makes uniform machine-checkable output a first-class
// requirement. A digest captures exactly the part of a run that must never
// drift across refactors: operation counts and final-state summaries.
//
// Digest ownership rules (what may enter a digest):
//
//   - Operation counts and final-state metrics: path costs, node counts,
//     estimation errors, solve residuals, reward curves (as checksums).
//   - NOTHING time-derived: no durations, no ROI, no step latencies, no
//     deadline misses. A digest must be bit-identical across machines,
//     parallelism levels, and profiling on/off.
//   - Nothing whose encoding depends on map-iteration order: fields are
//     sorted by name, and every value is a canonically formatted string.
package golden

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// header is the first line of every encoded digest; Decode rejects files
// that do not start with it, so schema changes force a conscious -update.
const header = "# rtrbench golden digest v1"

// Field is one named digest value. Values are canonical strings (see Float
// and Int) so comparison is bit-exact and the encoding is stable.
type Field struct {
	Name  string
	Value string
}

// Digest is the deterministic reduction of one kernel run at one seed.
type Digest struct {
	Kernel string
	Seed   int64
	// Fields are sorted by Name (SortFields); Encode refuses duplicates
	// and names with whitespace.
	Fields []Field
}

// Mismatch is one field-level difference between two digests. Want/Got are
// the canonical values, or "(absent)" when one side lacks the field.
type Mismatch struct {
	Kernel string
	Seed   int64
	Field  string
	Want   string
	Got    string
}

// String renders the mismatch in the human-readable report form.
func (m Mismatch) String() string {
	return fmt.Sprintf("%s (seed %d): field %s: expected %s, got %s",
		m.Kernel, m.Seed, m.Field, m.Want, m.Got)
}

// Absent is the value a Mismatch reports for a field missing on one side.
const Absent = "(absent)"

// Float formats a metric value canonically: the shortest decimal string
// that round-trips to the same float64 bits, so equality on the string is
// equality on the bits.
func Float(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// Int formats an operation count canonically.
func Int(v int64) string { return strconv.FormatInt(v, 10) }

// SortFields puts fields in the canonical (name-sorted) order in place.
func SortFields(fields []Field) {
	sort.Slice(fields, func(i, j int) bool { return fields[i].Name < fields[j].Name })
}

// Encode renders the digest in its canonical text form:
//
//	# rtrbench golden digest v1
//	kernel pfl
//	seed 1
//	field position_error_m 0.1640625
//	...
//
// Fields are emitted name-sorted regardless of input order. Encode fails on
// duplicate field names, empty values, or names containing whitespace — the
// conditions under which the encoding would stop being canonical.
func Encode(d Digest) ([]byte, error) {
	if d.Kernel == "" || strings.ContainsAny(d.Kernel, " \t\n") {
		return nil, fmt.Errorf("golden: invalid kernel name %q", d.Kernel)
	}
	fields := append([]Field(nil), d.Fields...)
	SortFields(fields)
	var b bytes.Buffer
	fmt.Fprintln(&b, header)
	fmt.Fprintf(&b, "kernel %s\n", d.Kernel)
	fmt.Fprintf(&b, "seed %d\n", d.Seed)
	prev := ""
	for i, f := range fields {
		if f.Name == "" || strings.ContainsAny(f.Name, " \t\n") {
			return nil, fmt.Errorf("golden: %s: invalid field name %q", d.Kernel, f.Name)
		}
		if f.Value == "" || strings.ContainsAny(f.Value, " \t\n") {
			return nil, fmt.Errorf("golden: %s: field %s has invalid value %q", d.Kernel, f.Name, f.Value)
		}
		if i > 0 && f.Name == prev {
			return nil, fmt.Errorf("golden: %s: duplicate field %q", d.Kernel, f.Name)
		}
		prev = f.Name
		fmt.Fprintf(&b, "field %s %s\n", f.Name, f.Value)
	}
	return b.Bytes(), nil
}

// Decode parses the canonical text form back into a Digest.
func Decode(data []byte) (Digest, error) {
	var d Digest
	sc := bufio.NewScanner(bytes.NewReader(data))
	line := 0
	sawHeader := false
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			if text == header {
				sawHeader = true
			}
			continue
		}
		if !sawHeader {
			return d, fmt.Errorf("golden: line %d: missing %q header", line, header)
		}
		parts := strings.Fields(text)
		switch {
		case parts[0] == "kernel" && len(parts) == 2:
			d.Kernel = parts[1]
		case parts[0] == "seed" && len(parts) == 2:
			seed, err := strconv.ParseInt(parts[1], 10, 64)
			if err != nil {
				return d, fmt.Errorf("golden: line %d: bad seed %q", line, parts[1])
			}
			d.Seed = seed
		case parts[0] == "field" && len(parts) == 3:
			d.Fields = append(d.Fields, Field{Name: parts[1], Value: parts[2]})
		default:
			return d, fmt.Errorf("golden: line %d: unrecognized line %q", line, text)
		}
	}
	if err := sc.Err(); err != nil {
		return d, err
	}
	if d.Kernel == "" {
		return d, fmt.Errorf("golden: digest has no kernel line")
	}
	SortFields(d.Fields)
	return d, nil
}

// Sum returns the SHA-256 of the canonical encoding, hex-encoded — a quick
// whole-digest identity for logs and reports.
func Sum(d Digest) (string, error) {
	data, err := Encode(d)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), nil
}

// Diff compares got against want field by field and returns the mismatches
// in field-name order: value differences, fields missing from got, and
// fields got grew that want has never seen. Kernel-identity differences are
// reported under the pseudo-field "kernel". Matching digests diff to nil.
func Diff(want, got Digest) []Mismatch {
	var out []Mismatch
	if want.Kernel != got.Kernel {
		out = append(out, Mismatch{Kernel: want.Kernel, Seed: want.Seed, Field: "kernel", Want: want.Kernel, Got: got.Kernel})
	}
	wantBy := fieldMap(want.Fields)
	gotBy := fieldMap(got.Fields)
	names := make([]string, 0, len(wantBy)+len(gotBy))
	for name := range wantBy {
		names = append(names, name)
	}
	for name := range gotBy {
		if _, dup := wantBy[name]; !dup {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		w, inWant := wantBy[name]
		g, inGot := gotBy[name]
		if inWant && inGot && w == g {
			continue
		}
		if !inWant {
			w = Absent
		}
		if !inGot {
			g = Absent
		}
		out = append(out, Mismatch{Kernel: want.Kernel, Seed: want.Seed, Field: name, Want: w, Got: g})
	}
	return out
}

func fieldMap(fields []Field) map[string]string {
	m := make(map[string]string, len(fields))
	for _, f := range fields {
		m[f.Name] = f.Value
	}
	return m
}

// Filename is the canonical golden-file name for one kernel at one seed.
func Filename(kernel string, seed int64) string {
	return fmt.Sprintf("%s-seed%d.golden", kernel, seed)
}

// Path joins the golden directory and the canonical filename.
func Path(dir, kernel string, seed int64) string {
	return filepath.Join(dir, Filename(kernel, seed))
}

// Load reads and decodes the golden digest for one kernel at one seed.
// A missing file surfaces as an fs.ErrNotExist-wrapping error, which
// callers distinguish from corruption via errors.Is(err, fs.ErrNotExist).
func Load(dir, kernel string, seed int64) (Digest, error) {
	data, err := os.ReadFile(Path(dir, kernel, seed))
	if err != nil {
		return Digest{}, err
	}
	d, err := Decode(data)
	if err != nil {
		return Digest{}, fmt.Errorf("%s: %w", Path(dir, kernel, seed), err)
	}
	return d, nil
}

// Save encodes the digest and writes it to its canonical path under dir,
// creating the directory if needed.
func Save(dir string, d Digest) error {
	data, err := Encode(d)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	return os.WriteFile(Path(dir, d.Kernel, d.Seed), data, 0o644)
}
