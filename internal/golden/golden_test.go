package golden

import (
	"errors"
	"io/fs"
	"math"
	"strings"
	"testing"
)

func sample() Digest {
	return Digest{
		Kernel: "pfl",
		Seed:   1,
		Fields: []Field{
			{Name: "raycasts", Value: Int(7500)},
			{Name: "position_error_m", Value: Float(0.1640625)},
			{Name: "ess", Value: Float(123.456)},
		},
	}
}

// TestEncodeDecodeRoundTrip checks the canonical encoding survives a
// round trip and normalizes field order.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	d := sample()
	data, err := Encode(d)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Kernel != d.Kernel || got.Seed != d.Seed {
		t.Fatalf("identity = %s/%d, want %s/%d", got.Kernel, got.Seed, d.Kernel, d.Seed)
	}
	if len(got.Fields) != 3 {
		t.Fatalf("got %d fields, want 3", len(got.Fields))
	}
	// Decoded fields come back name-sorted.
	for i := 1; i < len(got.Fields); i++ {
		if got.Fields[i-1].Name >= got.Fields[i].Name {
			t.Errorf("fields not sorted: %q before %q", got.Fields[i-1].Name, got.Fields[i].Name)
		}
	}
	if diffs := Diff(d, got); len(diffs) != 0 {
		t.Errorf("round trip produced diffs: %v", diffs)
	}
}

// TestEncodeRejectsNonCanonical checks the conditions under which the
// encoding would stop being canonical are refused rather than emitted.
func TestEncodeRejectsNonCanonical(t *testing.T) {
	cases := []Digest{
		{Kernel: "", Fields: nil},
		{Kernel: "has space"},
		{Kernel: "ok", Fields: []Field{{Name: "a b", Value: "1"}}},
		{Kernel: "ok", Fields: []Field{{Name: "a", Value: ""}}},
		{Kernel: "ok", Fields: []Field{{Name: "a", Value: "1 2"}}},
		{Kernel: "ok", Fields: []Field{{Name: "a", Value: "1"}, {Name: "a", Value: "2"}}},
	}
	for i, d := range cases {
		if _, err := Encode(d); err == nil {
			t.Errorf("case %d: Encode accepted non-canonical digest %+v", i, d)
		}
	}
}

// TestDecodeRejectsGarbage checks header and line validation.
func TestDecodeRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"",
		"kernel pfl\n",                // no header
		header + "\nfield only_two\n", // malformed field
		header + "\nkernel pfl\nseed notanumber\n",   // bad seed
		header + "\nkernel pfl\nwhat is this line\n", // unknown directive
		header + "\nseed 1\n",                        // no kernel
	} {
		if _, err := Decode([]byte(bad)); err == nil {
			t.Errorf("Decode accepted %q", bad)
		}
	}
}

// TestDiffNamesField checks a perturbed value, a missing field, and an
// extra field each produce one named mismatch.
func TestDiffNamesField(t *testing.T) {
	want := sample()
	got := sample()
	got.Fields[1].Value = Float(9.75) // position_error_m drifts
	got.Fields = append(got.Fields, Field{Name: "new_metric", Value: "1"})
	got.Fields = got.Fields[1:] // drop raycasts

	diffs := Diff(want, got)
	if len(diffs) != 3 {
		t.Fatalf("got %d mismatches, want 3: %v", len(diffs), diffs)
	}
	byField := map[string]Mismatch{}
	for _, m := range diffs {
		if m.Kernel != "pfl" || m.Seed != 1 {
			t.Errorf("mismatch lost identity: %+v", m)
		}
		byField[m.Field] = m
	}
	if m := byField["position_error_m"]; m.Want != Float(0.1640625) || m.Got != Float(9.75) {
		t.Errorf("value drift mismatch = %+v", m)
	}
	if m := byField["raycasts"]; m.Got != Absent {
		t.Errorf("missing field mismatch = %+v", m)
	}
	if m := byField["new_metric"]; m.Want != Absent {
		t.Errorf("extra field mismatch = %+v", m)
	}
	if !strings.Contains(byField["position_error_m"].String(), "field position_error_m") {
		t.Errorf("String() does not name the field: %s", byField["position_error_m"])
	}
}

// TestFloatCanonical checks the float encoding is bit-faithful.
func TestFloatCanonical(t *testing.T) {
	for _, v := range []float64{0, 1, -1, 0.1, 1e-300, 1e300, math.Pi, math.SmallestNonzeroFloat64} {
		if Float(v) != Float(v) || Float(v) == "" {
			t.Fatalf("Float(%v) unstable", v)
		}
	}
	if v := 0.1; Float(v) == Float(math.Nextafter(v, 1)) {
		t.Error("Float conflates adjacent float64 values")
	}
}

// TestSaveLoad checks the file layout and the not-exist contract.
func TestSaveLoad(t *testing.T) {
	dir := t.TempDir()
	d := sample()
	if err := Save(dir, d); err != nil {
		t.Fatal(err)
	}
	got, err := Load(dir, "pfl", 1)
	if err != nil {
		t.Fatal(err)
	}
	if diffs := Diff(d, got); len(diffs) != 0 {
		t.Errorf("Save/Load round trip diffs: %v", diffs)
	}
	if _, err := Load(dir, "pfl", 99); !errors.Is(err, fs.ErrNotExist) {
		t.Errorf("missing golden: err = %v, want fs.ErrNotExist", err)
	}
	s1, err := Sum(d)
	if err != nil {
		t.Fatal(err)
	}
	d.Fields[0].Value = "42"
	s2, err := Sum(d)
	if err != nil {
		t.Fatal(err)
	}
	if s1 == s2 {
		t.Error("Sum did not change with the digest")
	}
}
