package symbolic

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestAtomFormatting(t *testing.T) {
	if got := Atom("On", "A", "B"); got != "On(A,B)" {
		t.Fatalf("Atom = %q", got)
	}
	if got := Atom("Fire3"); got != "Fire3" {
		t.Fatalf("nullary Atom = %q", got)
	}
}

func TestBlocksWorldSolvesAndValidates(t *testing.T) {
	for n := 2; n <= 6; n++ {
		prob := BlocksWorld(n)
		plan := Solve(prob, 0, nil)
		if plan == nil {
			t.Fatalf("no plan for %d blocks", n)
		}
		if err := Validate(prob, plan); err != nil {
			t.Fatalf("%d blocks: %v", n, err)
		}
		if len(plan.Steps) == 0 {
			t.Fatalf("%d blocks: empty plan", n)
		}
	}
}

func TestBlocksWorldTwoBlocksOptimal(t *testing.T) {
	// Reversing a 2-tower (A on B -> B on A) takes exactly 2 moves:
	// A to the table, B onto A.
	prob := BlocksWorld(2)
	plan := Solve(prob, 0, nil)
	if plan == nil {
		t.Fatal("no plan")
	}
	if len(plan.Steps) != 2 {
		t.Fatalf("plan = %v, want 2 steps", plan.Steps)
	}
}

func TestFirefighterSolvesAndValidates(t *testing.T) {
	for pours := 1; pours <= 3; pours++ {
		prob := Firefighter(5, pours)
		plan := Solve(prob, 0, nil)
		if plan == nil {
			t.Fatalf("no plan for %d pours", pours)
		}
		if err := Validate(prob, plan); err != nil {
			t.Fatalf("pours=%d: %v", pours, err)
		}
		// Each pour requires at least a takeoff-fly-pour sequence.
		if len(plan.Steps) < 3*pours {
			t.Fatalf("pours=%d: implausibly short plan %v", pours, plan.Steps)
		}
		// The goal atom is achieved only through PourWater1.
		found := false
		for _, s := range plan.Steps {
			if strings.HasPrefix(s, "PourWater1") {
				found = true
			}
		}
		if !found {
			t.Fatalf("plan never pours the final water: %v", plan.Steps)
		}
	}
}

func TestFirefighterMorePoursLongerPlans(t *testing.T) {
	p1 := Solve(Firefighter(5, 1), 0, nil)
	p3 := Solve(Firefighter(5, 3), 0, nil)
	if p1 == nil || p3 == nil {
		t.Fatal("missing plans")
	}
	if len(p3.Steps) <= len(p1.Steps) {
		t.Fatalf("3 pours (%d steps) not longer than 1 pour (%d steps)",
			len(p3.Steps), len(p1.Steps))
	}
}

func TestGroundingPrunesStatic(t *testing.T) {
	prob := BlocksWorld(3)
	// Move(b,x,y) requires Block(b), Block(x), Block(y) with all distinct:
	// 3*2*1 = 6; MoveToTable: 3*2 = 6; MoveFromTable: 3*2 = 6.
	if len(prob.Actions) != 18 {
		t.Fatalf("ground actions = %d, want 18", len(prob.Actions))
	}
	// No ground action mentions Table as a Block.
	for _, a := range prob.Actions {
		if strings.HasPrefix(a.Name, "Move(") && strings.Contains(a.Name, "Table") {
			t.Fatalf("static pruning failed: %s", a.Name)
		}
	}
}

func TestValidateRejectsBadPlans(t *testing.T) {
	prob := BlocksWorld(3)
	if err := Validate(prob, &Plan{Steps: []string{"Move(B1,B2,B3)"}}); err == nil {
		t.Fatal("inapplicable action accepted (B3 not clear)")
	}
	if err := Validate(prob, &Plan{Steps: []string{"Teleport(B1)"}}); err == nil {
		t.Fatal("unknown action accepted")
	}
	if err := Validate(prob, &Plan{Steps: nil}); err == nil {
		t.Fatal("empty plan accepted though goal not initially satisfied")
	}
}

func TestMaxExpansionsAborts(t *testing.T) {
	prob := BlocksWorld(6)
	if plan := Solve(prob, 2, nil); plan != nil {
		t.Fatal("expansion-capped search still returned a plan")
	}
}

func TestStatsPopulated(t *testing.T) {
	prob := Firefighter(5, 2)
	plan := Solve(prob, 0, nil)
	if plan == nil {
		t.Fatal("no plan")
	}
	st := plan.Stats
	if st.Expanded == 0 || st.Generated == 0 || st.StringBytes == 0 {
		t.Fatalf("stats empty: %+v", st)
	}
	if st.AvgBranching() <= 0 {
		t.Fatalf("branching = %v", st.AvgBranching())
	}
}

func TestNegativePreconditions(t *testing.T) {
	d := &Domain{
		Symbols: []string{"X"},
		Schemas: []Schema{{
			Name:   "Flip",
			Params: []string{"a"},
			Pre:    []TAtom{T("Thing", "a")},
			Neg:    []TAtom{T("Flipped", "a")},
			Add:    []TAtom{T("Flipped", "a")},
		}},
		Static: []string{"Thing"},
	}
	prob := NewProblem(d, []string{"Thing(X)"}, []string{"Flipped(X)"})
	plan := Solve(prob, 0, nil)
	if plan == nil || len(plan.Steps) != 1 {
		t.Fatalf("plan = %+v", plan)
	}
	// Once flipped, the action must not be applicable again: a goal that
	// needs a double flip is unsolvable.
	prob2 := NewProblem(d, []string{"Thing(X)", "Flipped(X)"}, []string{"DoubleFlipped(X)"})
	if Solve(prob2, 1000, nil) != nil {
		t.Fatal("unsatisfiable goal got a plan")
	}
}

func TestDedupSortedProperty(t *testing.T) {
	if err := quick.Check(func(raw []uint8) bool {
		atoms := make([]string, len(raw))
		for i, b := range raw {
			atoms[i] = Atom("P", string(rune('a'+b%5)))
		}
		out := dedupSorted(atoms)
		for i := 1; i < len(out); i++ {
			if out[i-1] >= out[i] {
				return false
			}
		}
		// Every input atom is present in the output.
		set := map[string]bool{}
		for _, a := range out {
			set[a] = true
		}
		for _, a := range atoms {
			if !set[a] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestBlocksWorldRandomSolvesAndValidates(t *testing.T) {
	for n := 4; n <= 8; n += 2 {
		for seed := int64(1); seed <= 3; seed++ {
			prob := BlocksWorldRandom(n, seed)
			plan := Solve(prob, 500000, nil)
			if plan == nil {
				t.Fatalf("n=%d seed=%d: no plan", n, seed)
			}
			if err := Validate(prob, plan); err != nil {
				t.Fatalf("n=%d seed=%d: %v", n, seed, err)
			}
		}
	}
}

func TestBlocksWorldRandomDeterministic(t *testing.T) {
	a := BlocksWorldRandom(6, 7)
	b := BlocksWorldRandom(6, 7)
	if len(a.Init) != len(b.Init) {
		t.Fatal("random instance not deterministic")
	}
	for i := range a.Init {
		if a.Init[i] != b.Init[i] {
			t.Fatal("random instance not deterministic")
		}
	}
}

func TestAdditiveHeuristicFindsValidPlans(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		prob := BlocksWorldRandom(7, seed)
		plan := SolveWith(prob, SolveOptions{Heuristic: Additive, MaxExpansions: 500000})
		if plan == nil {
			t.Fatalf("seed %d: no plan with h_add", seed)
		}
		if err := Validate(prob, plan); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestAdditiveHeuristicMoreInformed(t *testing.T) {
	// Across a batch of random instances, h_add must expand no more states
	// in total than goal-count (it is strictly more informed on this
	// domain family).
	var gcTotal, addTotal int
	for seed := int64(1); seed <= 5; seed++ {
		prob := BlocksWorldRandom(8, seed)
		gc := SolveWith(prob, SolveOptions{Heuristic: GoalCount, MaxExpansions: 2000000})
		ha := SolveWith(prob, SolveOptions{Heuristic: Additive, MaxExpansions: 2000000})
		if gc == nil || ha == nil {
			t.Fatalf("seed %d: missing plan", seed)
		}
		gcTotal += gc.Stats.Expanded
		addTotal += ha.Stats.Expanded
	}
	if addTotal >= gcTotal {
		t.Fatalf("h_add expanded %d, goal-count %d", addTotal, gcTotal)
	}
}

func TestAdditiveHeuristicOnFirefighter(t *testing.T) {
	prob := Firefighter(5, 3)
	gc := SolveWith(prob, SolveOptions{Heuristic: GoalCount})
	ha := SolveWith(prob, SolveOptions{Heuristic: Additive})
	if gc == nil || ha == nil {
		t.Fatal("missing plan")
	}
	if err := Validate(prob, ha); err != nil {
		t.Fatal(err)
	}
	if ha.Stats.Expanded > gc.Stats.Expanded {
		t.Fatalf("h_add expanded more: %d > %d", ha.Stats.Expanded, gc.Stats.Expanded)
	}
}

func TestBlocksWorldPanicsOnTiny(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("BlocksWorld(1) did not panic")
		}
	}()
	BlocksWorld(1)
}
