// Package symbolic implements the STRIPS-style symbolic planner behind the
// sym-blkw and sym-fext kernels. Problems are represented "using high-level,
// human-readable symbols" (paper §V.11): states are sets of ground atoms
// like On(A,B), actions have preconditions and add/delete effects, and the
// planner searches the implicit state graph with A*.
//
// Atoms are deliberately kept as strings and states as sorted atom lists
// keyed by their joined text. That choice is faithful to the paper, whose
// characterization identifies "string manipulation inside nodes" as one of
// the kernel's two dominant operations; the planner counts the string bytes
// it touches so the harness can report that share.
package symbolic

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/profile"
)

// Atom builds the canonical text of a ground atom: "Pred(a,b)".
func Atom(pred string, args ...string) string {
	if len(args) == 0 {
		return pred
	}
	return pred + "(" + strings.Join(args, ",") + ")"
}

// Schema is a lifted action with variable parameters. Template atoms use
// parameter names verbatim as argument placeholders; grounding substitutes
// symbols for them.
type Schema struct {
	Name   string
	Params []string

	// Pre are positive preconditions, Neg negative ones (atom must be
	// absent). Add and Del are the effects.
	Pre, Neg, Add, Del []TAtom

	// Distinct lists parameter pairs that must bind to different symbols.
	Distinct [][2]string
}

// TAtom is a template atom: predicate plus arguments, each argument either a
// parameter name (bound at grounding) or a constant symbol.
type TAtom struct {
	Pred string
	Args []string
}

// T is shorthand for constructing a template atom.
func T(pred string, args ...string) TAtom { return TAtom{Pred: pred, Args: args} }

func (t TAtom) ground(binding map[string]string) string {
	if len(t.Args) == 0 {
		return t.Pred
	}
	args := make([]string, len(t.Args))
	for i, a := range t.Args {
		if s, ok := binding[a]; ok {
			args[i] = s
		} else {
			args[i] = a // constant
		}
	}
	return Atom(t.Pred, args...)
}

// GroundAction is a fully instantiated action.
type GroundAction struct {
	Name               string
	Pre, Neg, Add, Del []string
}

// Domain is a planning domain: the symbol universe and the action schemas.
type Domain struct {
	Symbols []string
	Schemas []Schema

	// Static lists predicates that never appear in any effect. Ground
	// actions whose static preconditions fail against the initial state are
	// pruned at grounding time.
	Static []string
}

// Problem is a planning problem instance.
type Problem struct {
	Domain  *Domain
	Init    []string // initial ground atoms
	Goal    []string // conjunctive goal atoms
	Actions []GroundAction
}

// NewProblem grounds the domain against the initial state and returns a
// ready-to-solve problem.
func NewProblem(d *Domain, init, goal []string) *Problem {
	p := &Problem{Domain: d, Init: dedupSorted(init), Goal: dedupSorted(goal)}
	p.Actions = d.groundAll(p.Init)
	return p
}

func dedupSorted(atoms []string) []string {
	out := make([]string, len(atoms))
	copy(out, atoms)
	sort.Strings(out)
	j := 0
	for i, a := range out {
		if i == 0 || a != out[j-1] {
			out[j] = a
			j++
		}
	}
	return out[:j]
}

// groundAll enumerates every binding of every schema's parameters over the
// symbol universe, applying Distinct constraints and pruning on static
// preconditions.
func (d *Domain) groundAll(init []string) []GroundAction {
	static := make(map[string]bool, len(d.Static))
	for _, s := range d.Static {
		static[s] = true
	}
	initSet := make(map[string]bool, len(init))
	for _, a := range init {
		initSet[a] = true
	}

	var out []GroundAction
	for si := range d.Schemas {
		sc := &d.Schemas[si]
		binding := make(map[string]string, len(sc.Params))
		var rec func(i int)
		rec = func(i int) {
			if i == len(sc.Params) {
				ga, ok := sc.instantiate(binding, static, initSet)
				if ok {
					out = append(out, ga)
				}
				return
			}
			for _, sym := range d.Symbols {
				binding[sc.Params[i]] = sym
				ok := true
				for _, pair := range sc.Distinct {
					a, aOK := binding[pair[0]]
					b, bOK := binding[pair[1]]
					if aOK && bOK && a == b {
						ok = false
						break
					}
				}
				if ok {
					rec(i + 1)
				}
			}
			delete(binding, sc.Params[i])
		}
		rec(0)
	}
	return out
}

func (sc *Schema) instantiate(binding map[string]string, static, initSet map[string]bool) (GroundAction, bool) {
	ga := GroundAction{}
	args := make([]string, len(sc.Params))
	for i, p := range sc.Params {
		args[i] = binding[p]
	}
	ga.Name = Atom(sc.Name, args...)
	for _, t := range sc.Pre {
		a := t.ground(binding)
		if static[t.Pred] {
			// Static preconditions are resolved now: failing ones prune
			// the ground action entirely; passing ones need no runtime
			// check.
			if !initSet[a] {
				return GroundAction{}, false
			}
			continue
		}
		ga.Pre = append(ga.Pre, a)
	}
	for _, t := range sc.Neg {
		a := t.ground(binding)
		if static[t.Pred] {
			if initSet[a] {
				return GroundAction{}, false
			}
			continue
		}
		ga.Neg = append(ga.Neg, a)
	}
	for _, t := range sc.Add {
		ga.Add = append(ga.Add, t.ground(binding))
	}
	for _, t := range sc.Del {
		ga.Del = append(ga.Del, t.ground(binding))
	}
	return ga, true
}

// Stats captures the planner's work profile for the harness: node and string
// work as the paper's characterization splits it.
type Stats struct {
	Expanded      int   // states expanded
	Generated     int   // successor states generated
	StringBytes   int64 // bytes of atom text hashed/joined/compared
	BranchSum     int   // total applicable actions over expanded states
	DuplicateHits int   // successors that mapped to an already-interned state
}

// AvgBranching returns the mean number of applicable actions per expanded
// state (the parallelism measure behind the paper's "~3.2x" sym-fext claim).
func (s Stats) AvgBranching() float64 {
	if s.Expanded == 0 {
		return 0
	}
	return float64(s.BranchSum) / float64(s.Expanded)
}

// Plan is a solution: the action names in execution order.
type Plan struct {
	Steps []string
	Stats Stats
}

// SolveOptions parameterize SolveWith.
type SolveOptions struct {
	// MaxExpansions aborts the search (0 = unlimited).
	MaxExpansions int
	// Heuristic selects GoalCount (default, optimal plans for unit costs
	// with this admissible-enough count on our domains) or Additive
	// (informed but inadmissible: satisficing plans, far fewer expansions).
	Heuristic HeuristicKind
	// Prof receives the "search"/"strings" phase breakdown; may be nil.
	Prof *profile.Profile
	// Ctx, when non-nil, cancels the search: SolveWith polls it
	// periodically and returns nil. Callers that set Ctx must check
	// Ctx.Err() to distinguish cancellation from plan-not-found.
	Ctx context.Context
}

// Solve searches for a plan with A*, using the count of unsatisfied goal
// atoms as the heuristic. It returns nil when no plan exists within
// maxExpansions (0 = unlimited).
//
// The profile (may be nil) receives the kernel's two dominant phases as the
// paper characterizes them: "strings" (atom joining, hashing, interning —
// the string manipulation inside nodes) and "search" (everything else in
// the best-first loop).
func Solve(p *Problem, maxExpansions int, prof *profile.Profile) *Plan {
	return SolveWith(p, SolveOptions{MaxExpansions: maxExpansions, Prof: prof})
}

// SolveWith is Solve with an explicit heuristic choice.
func SolveWith(p *Problem, opts SolveOptions) *Plan {
	maxExpansions := opts.MaxExpansions
	prof := opts.Prof
	stats := Stats{}

	// State interning: canonical key -> id; id -> atom list.
	type stateRec struct {
		atoms []string
		key   string
	}
	var states []stateRec
	index := map[string]int{}
	intern := func(atoms []string) (int, bool) {
		prof.Begin("strings")
		key := strings.Join(atoms, ";")
		stats.StringBytes += int64(len(key))
		defer prof.End()
		if id, ok := index[key]; ok {
			return id, false
		}
		id := len(states)
		states = append(states, stateRec{atoms: atoms, key: key})
		index[key] = id
		return id, true
	}

	startID, _ := intern(p.Init)

	goalSet := make(map[string]bool, len(p.Goal))
	for _, g := range p.Goal {
		goalSet[g] = true
	}
	var heuristic func(atoms []string) float64
	switch opts.Heuristic {
	case Additive:
		eval := newAddEvaluator(p)
		heuristic = func(atoms []string) float64 { return eval.Eval(atoms) }
	default:
		heuristic = func(atoms []string) float64 {
			missing := len(p.Goal)
			for _, a := range atoms {
				stats.StringBytes += int64(len(a))
				if goalSet[a] {
					missing--
				}
			}
			return float64(missing)
		}
	}
	isGoal := func(atoms []string) bool {
		have := make(map[string]bool, len(atoms))
		for _, a := range atoms {
			have[a] = true
		}
		for _, g := range p.Goal {
			if !have[g] {
				return false
			}
		}
		return true
	}

	type openNode struct {
		id int
	}
	// A* over interned states. Bookkeeping mirrors internal/search but keeps
	// the action labels on the tree edges for plan extraction.
	gScore := map[int]float64{startID: 0}
	parent := map[int]int{startID: startID}
	parentAct := map[int]string{}
	closed := map[int]bool{}

	type heapItem struct {
		id int
		f  float64
	}
	heap := []heapItem{{startID, heuristic(states[startID].atoms)}}
	push := func(it heapItem) {
		heap = append(heap, it)
		i := len(heap) - 1
		for i > 0 {
			par := (i - 1) / 2
			if heap[par].f <= heap[i].f {
				break
			}
			heap[par], heap[i] = heap[i], heap[par]
			i = par
		}
	}
	pop := func() heapItem {
		top := heap[0]
		last := len(heap) - 1
		heap[0] = heap[last]
		heap = heap[:last]
		i := 0
		for {
			l, r := 2*i+1, 2*i+2
			s := i
			if l < len(heap) && heap[l].f < heap[s].f {
				s = l
			}
			if r < len(heap) && heap[r].f < heap[s].f {
				s = r
			}
			if s == i {
				break
			}
			heap[s], heap[i] = heap[i], heap[s]
			i = s
		}
		return top
	}

	_ = openNode{}

	prof.Begin("search")
	for len(heap) > 0 {
		if opts.Ctx != nil && stats.Expanded%512 == 0 {
			if err := opts.Ctx.Err(); err != nil {
				prof.End()
				return nil
			}
		}
		cur := pop()
		if closed[cur.id] {
			continue
		}
		closed[cur.id] = true
		curAtoms := states[cur.id].atoms
		stats.Expanded++

		if isGoal(curAtoms) {
			// Reconstruct the action sequence.
			var rev []string
			for id := cur.id; id != startID; id = parent[id] {
				rev = append(rev, parentAct[id])
			}
			steps := make([]string, len(rev))
			for i := range rev {
				steps[i] = rev[len(rev)-1-i]
			}
			prof.End()
			return &Plan{Steps: steps, Stats: stats}
		}
		if maxExpansions > 0 && stats.Expanded >= maxExpansions {
			prof.End()
			return nil
		}

		have := make(map[string]bool, len(curAtoms))
		for _, a := range curAtoms {
			have[a] = true
		}

		for ai := range p.Actions {
			act := &p.Actions[ai]
			if !applicable(act, have, &stats) {
				continue
			}
			stats.BranchSum++
			prof.Begin("strings")
			next := apply(curAtoms, act, &stats)
			prof.End()
			id, fresh := intern(next)
			stats.Generated++
			if !fresh {
				stats.DuplicateHits++
			}
			if closed[id] {
				continue
			}
			ng := gScore[cur.id] + 1
			if old, ok := gScore[id]; ok && old <= ng {
				continue
			}
			gScore[id] = ng
			parent[id] = cur.id
			parentAct[id] = act.Name
			push(heapItem{id, ng + heuristic(states[id].atoms)})
		}
	}
	prof.End()
	return nil
}

func applicable(act *GroundAction, have map[string]bool, stats *Stats) bool {
	for _, a := range act.Pre {
		stats.StringBytes += int64(len(a))
		if !have[a] {
			return false
		}
	}
	for _, a := range act.Neg {
		stats.StringBytes += int64(len(a))
		if have[a] {
			return false
		}
	}
	return true
}

// apply returns the successor atom list (sorted, deduped) after executing
// act in the state given by atoms.
func apply(atoms []string, act *GroundAction, stats *Stats) []string {
	del := make(map[string]bool, len(act.Del))
	for _, d := range act.Del {
		del[d] = true
	}
	out := make([]string, 0, len(atoms)+len(act.Add))
	for _, a := range atoms {
		if !del[a] {
			out = append(out, a)
		}
	}
	out = append(out, act.Add...)
	sort.Strings(out)
	// Dedup in place (Add atoms may already be present).
	j := 0
	for i, a := range out {
		stats.StringBytes += int64(len(a))
		if i == 0 || a != out[j-1] {
			out[j] = a
			j++
		}
	}
	return out[:j]
}

// Validate executes the plan from the problem's initial state and reports
// whether every action is applicable in sequence and the final state
// satisfies the goal. Tests use it as the planner's correctness oracle.
func Validate(p *Problem, plan *Plan) error {
	byName := make(map[string]*GroundAction, len(p.Actions))
	for i := range p.Actions {
		byName[p.Actions[i].Name] = &p.Actions[i]
	}
	state := make(map[string]bool, len(p.Init))
	for _, a := range p.Init {
		state[a] = true
	}
	var st Stats
	for i, step := range plan.Steps {
		act, ok := byName[step]
		if !ok {
			return fmt.Errorf("symbolic: step %d: unknown action %q", i, step)
		}
		if !applicable(act, state, &st) {
			return fmt.Errorf("symbolic: step %d: action %q not applicable", i, step)
		}
		for _, d := range act.Del {
			delete(state, d)
		}
		for _, a := range act.Add {
			state[a] = true
		}
	}
	for _, g := range p.Goal {
		if !state[g] {
			return fmt.Errorf("symbolic: goal atom %q not satisfied", g)
		}
	}
	return nil
}
