package symbolic

import (
	"fmt"

	"repro/internal/rng"
)

// BlocksWorld builds the paper's blocks-world problem (§V.11, Fig. 13) with
// n blocks named B1..Bn. The initial state stacks all blocks in one tower
// (B1 on B2 on ... on Bn on Table); the goal reverses the tower. Reversing a
// tower forces the planner to unstack everything, which exercises deep
// search like the "realistic NP-hard search problems" the paper cites.
func BlocksWorld(n int) *Problem {
	if n < 2 {
		panic("symbolic: blocks world needs at least 2 blocks")
	}
	blocks := make([]string, n)
	for i := range blocks {
		blocks[i] = fmt.Sprintf("B%d", i+1)
	}
	symbols := append(append([]string{}, blocks...), "Table")

	d := &Domain{
		Symbols: symbols,
		Static:  []string{"Block"},
		Schemas: []Schema{
			{
				// Move block b from block x onto block y.
				Name:   "Move",
				Params: []string{"b", "x", "y"},
				Pre: []TAtom{
					T("Block", "b"), T("Block", "x"), T("Block", "y"),
					T("On", "b", "x"), T("Clear", "b"), T("Clear", "y"),
				},
				Add:      []TAtom{T("On", "b", "y"), T("Clear", "x")},
				Del:      []TAtom{T("On", "b", "x"), T("Clear", "y")},
				Distinct: [][2]string{{"b", "x"}, {"b", "y"}, {"x", "y"}},
			},
			{
				// Move block b from block x onto the table.
				Name:   "MoveToTable",
				Params: []string{"b", "x"},
				Pre: []TAtom{
					T("Block", "b"), T("Block", "x"),
					T("On", "b", "x"), T("Clear", "b"),
				},
				Add:      []TAtom{T("On", "b", "Table"), T("Clear", "x")},
				Del:      []TAtom{T("On", "b", "x")},
				Distinct: [][2]string{{"b", "x"}},
			},
			{
				// Move block b from the table onto block y.
				Name:   "MoveFromTable",
				Params: []string{"b", "y"},
				Pre: []TAtom{
					T("Block", "b"), T("Block", "y"),
					T("On", "b", "Table"), T("Clear", "b"), T("Clear", "y"),
				},
				Add:      []TAtom{T("On", "b", "y")},
				Del:      []TAtom{T("On", "b", "Table"), T("Clear", "y")},
				Distinct: [][2]string{{"b", "y"}},
			},
		},
	}

	var init []string
	for _, b := range blocks {
		init = append(init, Atom("Block", b))
	}
	// Tower: B1 on B2 on ... on Bn on Table.
	for i := 0; i < n-1; i++ {
		init = append(init, Atom("On", blocks[i], blocks[i+1]))
	}
	init = append(init, Atom("On", blocks[n-1], "Table"), Atom("Clear", blocks[0]))

	// Goal: reversed tower, Bn on ... on B1 on Table.
	var goal []string
	for i := n - 1; i > 0; i-- {
		goal = append(goal, Atom("On", blocks[i], blocks[i-1]))
	}
	goal = append(goal, Atom("On", blocks[0], "Table"))

	return NewProblem(d, init, goal)
}

// BlocksWorldRandom builds a blocks-world instance with random initial and
// goal stackings drawn from seed — substantially harder than the tower
// reversal of BlocksWorld and the instance family used by the heuristic
// ablation benchmarks.
func BlocksWorldRandom(n int, seed int64) *Problem {
	if n < 2 {
		panic("symbolic: blocks world needs at least 2 blocks")
	}
	base := BlocksWorld(n) // reuse the domain; replace init and goal
	r := rng.New(seed)
	blocks := make([]string, n)
	for i := range blocks {
		blocks[i] = fmt.Sprintf("B%d", i+1)
	}

	stacking := func() []string {
		perm := r.Perm(n)
		var atoms []string
		// Partition the permuted blocks into stacks: each block goes on
		// the previous one or starts a new stack on the table.
		prevOnStack := -1
		covered := make(map[int]bool)
		for _, b := range perm {
			if prevOnStack >= 0 && r.Float64() < 0.6 {
				atoms = append(atoms, Atom("On", blocks[b], blocks[prevOnStack]))
				covered[prevOnStack] = true
			} else {
				atoms = append(atoms, Atom("On", blocks[b], "Table"))
			}
			prevOnStack = b
		}
		for _, b := range perm {
			if !covered[b] {
				atoms = append(atoms, Atom("Clear", blocks[b]))
			}
		}
		return atoms
	}

	init := stacking()
	for _, b := range blocks {
		init = append(init, Atom("Block", b))
	}
	// The goal only constrains On-atoms (Clear follows from them).
	var goal []string
	for _, a := range stacking() {
		if len(a) > 3 && a[:3] == "On(" {
			goal = append(goal, a)
		}
	}
	return NewProblem(base.Domain, init, goal)
}

// Firefighter builds the paper's firefighting problem (§V.12, Fig. 14),
// inspired by MIT's 1st Summer School on Cognitive Robotics final challenge:
// a mobile robot carries a quadcopter; the quadcopter pours water on a fire
// but has a one-pour water tank and battery, so each pour requires landing
// on the robot, driving to the water and charger stations, refilling,
// recharging, and flying back. The fire needs `pours` pours to go out
// (ExtThree with pours = 3, matching the paper's goal atom).
func Firefighter(nLocs, pours int) *Problem {
	if nLocs < 3 {
		panic("symbolic: firefighter needs at least 3 locations")
	}
	if pours < 1 || pours > 3 {
		panic("symbolic: pours must be in [1,3]")
	}
	locs := make([]string, nLocs)
	for i := range locs {
		locs[i] = fmt.Sprintf("L%d", i+1)
	}
	water := locs[0]   // water station
	charger := locs[1] // charging station
	fire := locs[2]    // fire location
	symbols := append(append([]string{}, locs...), "Q", "R")

	fireLevel := func(k int) string { return fmt.Sprintf("Fire%d", k) }

	d := &Domain{
		Symbols: symbols,
		Static:  []string{"Loc", "Quad", "Rob"},
		Schemas: []Schema{
			{
				// The robot drives alone while the quadcopter is airborne
				// (paper's MoveToLoc: preconditions include InAir(Q)).
				Name:   "MoveToLoc",
				Params: []string{"x", "y"},
				Pre: []TAtom{
					T("Loc", "x"), T("Loc", "y"),
					T("At", "R", "x"), T("InAir", "Q"),
				},
				Add:      []TAtom{T("At", "R", "y")},
				Del:      []TAtom{T("At", "R", "x")},
				Distinct: [][2]string{{"x", "y"}},
			},
			{
				// The robot drives carrying the landed quadcopter.
				Name:   "MoveTogether",
				Params: []string{"x", "y"},
				Pre: []TAtom{
					T("Loc", "x"), T("Loc", "y"),
					T("At", "R", "x"), T("At", "Q", "x"), T("OnRob", "Q"),
				},
				Add:      []TAtom{T("At", "R", "y"), T("At", "Q", "y")},
				Del:      []TAtom{T("At", "R", "x"), T("At", "Q", "x")},
				Distinct: [][2]string{{"x", "y"}},
			},
			{
				// The quadcopter flies between locations on its own.
				Name:   "FlyTo",
				Params: []string{"x", "y"},
				Pre: []TAtom{
					T("Loc", "x"), T("Loc", "y"),
					T("At", "Q", "x"), T("InAir", "Q"), T("FullBat", "Q"),
				},
				Add:      []TAtom{T("At", "Q", "y")},
				Del:      []TAtom{T("At", "Q", "x")},
				Distinct: [][2]string{{"x", "y"}},
			},
			{
				Name:   "Land",
				Params: []string{"x"},
				Pre: []TAtom{
					T("Loc", "x"),
					T("At", "R", "x"), T("At", "Q", "x"), T("InAir", "Q"),
				},
				Add: []TAtom{T("OnRob", "Q")},
				Del: []TAtom{T("InAir", "Q")},
			},
			{
				Name:   "TakeOff",
				Params: []string{"x"},
				Pre: []TAtom{
					T("Loc", "x"),
					T("At", "Q", "x"), T("OnRob", "Q"), T("FullBat", "Q"),
				},
				Add: []TAtom{T("InAir", "Q")},
				Del: []TAtom{T("OnRob", "Q")},
			},
			{
				// FillWater: quadcopter docked on the robot at the water
				// station (paper's Fig. 14 preconditions).
				Name:   "FillWater",
				Params: nil,
				Pre: []TAtom{
					T("OnRob", "Q"), T("EmptyTank", "Q"),
					T("At", "R", water), T("At", "Q", water),
				},
				Add: []TAtom{T("FullTank", "Q")},
				Del: []TAtom{T("EmptyTank", "Q")},
			},
			{
				Name:   "Charge",
				Params: nil,
				Pre: []TAtom{
					T("OnRob", "Q"), T("LowBat", "Q"),
					T("At", "R", charger), T("At", "Q", charger),
				},
				Add: []TAtom{T("FullBat", "Q")},
				Del: []TAtom{T("LowBat", "Q")},
			},
		},
	}

	// Pouring reduces the fire level and drains both tank and battery, so
	// every pour forces a full resupply round trip. One ground action per
	// fire level.
	for k := pours; k >= 1; k-- {
		after := fireLevel(k - 1)
		if k == 1 {
			after = "ExtThree(F)"
		}
		d.Schemas = append(d.Schemas, Schema{
			Name:   fmt.Sprintf("PourWater%d", k),
			Params: nil,
			Pre: []TAtom{
				T("At", "Q", fire), T("InAir", "Q"),
				T("FullTank", "Q"), T(fireLevel(k)),
			},
			Add: []TAtom{T(after), T("EmptyTank", "Q"), T("LowBat", "Q")},
			Del: []TAtom{T(fireLevel(k)), T("FullTank", "Q"), T("FullBat", "Q")},
		})
	}

	var init []string
	for _, l := range locs {
		init = append(init, Atom("Loc", l))
	}
	init = append(init,
		Atom("Quad", "Q"), Atom("Rob", "R"),
		Atom("At", "R", charger), Atom("At", "Q", charger),
		Atom("OnRob", "Q"),
		Atom("EmptyTank", "Q"), Atom("FullBat", "Q"),
		fireLevel(pours),
	)
	goal := []string{"ExtThree(F)"}
	return NewProblem(d, init, goal)
}
