package symbolic

import "math"

// HeuristicKind selects the planner's heuristic.
type HeuristicKind int

const (
	// GoalCount counts unsatisfied goal atoms — cheap and the suite's
	// default (the paper's planner characterization does not depend on the
	// heuristic's strength, only on search + string work).
	GoalCount HeuristicKind = iota
	// Additive is the delete-relaxation h_add (Bonet & Geffner): the cost
	// of each goal atom under the relaxation that ignores delete effects,
	// summed. Far more informed, much more expensive per node — the classic
	// planning-systems trade-off, exposed as an ablation.
	Additive
)

// addEvaluator computes h_add for states of one problem. It pre-indexes
// atoms and actions once; Eval runs a Bellman-Ford-style fixpoint per call.
type addEvaluator struct {
	atomIndex map[string]int
	atoms     int
	// Per action: precondition atom ids and added atom ids.
	pre  [][]int32
	add  [][]int32
	goal []int32
	cost []float64 // scratch, len == atoms
}

func newAddEvaluator(p *Problem) *addEvaluator {
	e := &addEvaluator{atomIndex: map[string]int{}}
	idx := func(a string) int32 {
		if i, ok := e.atomIndex[a]; ok {
			return int32(i)
		}
		i := len(e.atomIndex)
		e.atomIndex[a] = i
		return int32(i)
	}
	for _, a := range p.Init {
		idx(a)
	}
	e.pre = make([][]int32, len(p.Actions))
	e.add = make([][]int32, len(p.Actions))
	for ai := range p.Actions {
		act := &p.Actions[ai]
		for _, a := range act.Pre {
			e.pre[ai] = append(e.pre[ai], idx(a))
		}
		for _, a := range act.Add {
			e.add[ai] = append(e.add[ai], idx(a))
		}
	}
	for _, g := range p.Goal {
		e.goal = append(e.goal, idx(g))
	}
	e.atoms = len(e.atomIndex)
	e.cost = make([]float64, e.atoms)
	return e
}

// Eval returns h_add of the state given by atoms; +Inf when some goal atom
// is unreachable under the delete relaxation.
func (e *addEvaluator) Eval(atoms []string) float64 {
	for i := range e.cost {
		e.cost[i] = math.Inf(1)
	}
	for _, a := range atoms {
		if i, ok := e.atomIndex[a]; ok {
			e.cost[i] = 0
		}
		// Atoms outside the indexed universe can never be preconditions of
		// indexed actions, so they are irrelevant to the relaxation.
	}
	// Fixpoint: relax every action until no atom cost improves.
	for changed := true; changed; {
		changed = false
		for ai := range e.pre {
			var sum float64
			feasible := true
			for _, pid := range e.pre[ai] {
				c := e.cost[pid]
				if math.IsInf(c, 1) {
					feasible = false
					break
				}
				sum += c
			}
			if !feasible {
				continue
			}
			newCost := sum + 1
			for _, aid := range e.add[ai] {
				if newCost < e.cost[aid] {
					e.cost[aid] = newCost
					changed = true
				}
			}
		}
	}
	var h float64
	for _, g := range e.goal {
		c := e.cost[g]
		if math.IsInf(c, 1) {
			return math.Inf(1)
		}
		h += c
	}
	return h
}
