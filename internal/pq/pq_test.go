package pq

import (
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestIndexedHeapSortsRandomInput(t *testing.T) {
	if err := quick.Check(func(seed int64) bool {
		r := rng.New(seed)
		n := 1 + r.Intn(200)
		h := NewIndexedHeap(n)
		want := make([]float64, n)
		for i := 0; i < n; i++ {
			p := r.Uniform(-100, 100)
			h.Push(i, p)
			want[i] = p
		}
		sort.Float64s(want)
		for i := 0; i < n; i++ {
			_, p := h.Pop()
			if p != want[i] {
				return false
			}
		}
		return h.Len() == 0
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestIndexedHeapDecreaseKey(t *testing.T) {
	h := NewIndexedHeap(4)
	h.Push(1, 10)
	h.Push(2, 20)
	h.Push(3, 30)
	h.Update(3, 1) // decrease
	if item, p := h.Pop(); item != 3 || p != 1 {
		t.Fatalf("Pop = (%d, %v), want (3, 1)", item, p)
	}
	h.Update(1, 25) // increase
	if item, _ := h.Pop(); item != 2 {
		t.Fatalf("Pop = %d, want 2", item)
	}
}

func TestIndexedHeapUpdateInsertsWhenAbsent(t *testing.T) {
	h := NewIndexedHeap(2)
	h.Update(7, 3.5)
	if !h.Contains(7) {
		t.Fatal("Update did not insert")
	}
	if p, ok := h.Priority(7); !ok || p != 3.5 {
		t.Fatalf("Priority = (%v, %v)", p, ok)
	}
	if _, ok := h.Priority(8); ok {
		t.Fatal("Priority reported a missing item")
	}
}

func TestIndexedHeapPushDuplicatePanics(t *testing.T) {
	h := NewIndexedHeap(2)
	h.Push(1, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Push did not panic")
		}
	}()
	h.Push(1, 2)
}

func TestIndexedHeapPopEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Pop on empty heap did not panic")
		}
	}()
	NewIndexedHeap(1).Pop()
}

func TestIndexedHeapMixedOpsProperty(t *testing.T) {
	// Interleave pushes, updates, and pops; the popped sequence must be
	// non-decreasing as long as no later update lowers below a prior pop.
	if err := quick.Check(func(seed int64) bool {
		r := rng.New(seed)
		h := NewIndexedHeap(8)
		present := map[int]bool{}
		next := 0
		lastPopped := -1e18
		for op := 0; op < 500; op++ {
			switch {
			case h.Len() == 0 || r.Float64() < 0.5:
				// Priorities only ever >= lastPopped keeps the invariant
				// testable.
				h.Push(next, lastPopped+r.Uniform(0, 10))
				present[next] = true
				next++
			case r.Float64() < 0.3:
				// Raise a random present item.
				for id := range present {
					if p, ok := h.Priority(id); ok {
						h.Update(id, p+r.Uniform(0, 5))
					}
					break
				}
			default:
				id, p := h.Pop()
				delete(present, id)
				if p < lastPopped-1e-9 {
					return false
				}
				lastPopped = p
			}
		}
		return true
	}, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestGenericHeapOrdering(t *testing.T) {
	h := NewHeap[string](4)
	h.Push("c", 3)
	h.Push("a", 1)
	h.Push("b", 2)
	if v, p := h.Peek(); v != "a" || p != 1 {
		t.Fatalf("Peek = (%q, %v)", v, p)
	}
	var got []string
	for h.Len() > 0 {
		v, _ := h.Pop()
		got = append(got, v)
	}
	if got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("order = %v", got)
	}
}

func TestGenericHeapDuplicatesAllowed(t *testing.T) {
	h := NewHeap[int](4)
	h.Push(1, 5)
	h.Push(1, 5)
	h.Push(1, 1)
	if h.Len() != 3 {
		t.Fatalf("Len = %d", h.Len())
	}
	if _, p := h.Pop(); p != 1 {
		t.Fatalf("min priority = %v", p)
	}
}

func TestGenericHeapRandomProperty(t *testing.T) {
	if err := quick.Check(func(seed int64) bool {
		r := rng.New(seed)
		n := 1 + r.Intn(300)
		h := NewHeap[int](n)
		want := make([]float64, n)
		for i := 0; i < n; i++ {
			p := r.Uniform(0, 1)
			h.Push(i, p)
			want[i] = p
		}
		sort.Float64s(want)
		for i := 0; i < n; i++ {
			if _, p := h.Pop(); p != want[i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestIndexedHeapReset(t *testing.T) {
	for _, dense := range []bool{false, true} {
		var h *IndexedHeap
		if dense {
			h = NewIndexedHeapDense(64)
		} else {
			h = NewIndexedHeap(8)
		}
		for i := 0; i < 32; i++ {
			h.Push(i, float64(63-i))
		}
		h.Reset()
		if h.Len() != 0 {
			t.Fatalf("dense=%v: Len after Reset = %d", dense, h.Len())
		}
		for i := 0; i < 32; i++ {
			if h.Contains(i) {
				t.Fatalf("dense=%v: item %d still present after Reset", dense, i)
			}
		}
		// The heap must be fully usable again, including re-pushing the
		// same items, and stay allocation-free within retained capacity.
		if allocs := testing.AllocsPerRun(100, func() {
			for i := 0; i < 32; i++ {
				h.Push(i, float64(i%7))
			}
			for h.Len() > 0 {
				h.Pop()
			}
		}); dense && allocs != 0 {
			t.Errorf("dense=%v: reused heap allocates %v per episode", dense, allocs)
		}
		h.Push(3, 1.5)
		h.Push(1, 0.5)
		if item, _ := h.Pop(); item != 1 {
			t.Fatalf("dense=%v: Pop after Reset = %d, want 1", dense, item)
		}
	}
}

func TestGenericHeapReset(t *testing.T) {
	h := NewHeap[string](4)
	h.Push("b", 2)
	h.Push("a", 1)
	h.Reset()
	if h.Len() != 0 {
		t.Fatalf("Len after Reset = %d", h.Len())
	}
	h.Push("z", 3)
	h.Push("y", 1)
	if v, _ := h.Pop(); v != "y" {
		t.Fatalf("Pop after Reset = %q, want %q", v, "y")
	}
}
