// Package pq provides the priority queues behind every graph-search kernel
// in the suite (A*, Dijkstra, Weighted A*, and the backward-Dijkstra
// heuristic of the moving-target planner).
//
// IndexedHeap supports decrease-key, which the search substrates use to
// reorder open nodes in place instead of pushing duplicates; Heap is a plain
// binary min-heap for callers that do not need addressability.
package pq

// IndexedHeap is a binary min-heap of int items keyed by float64 priorities,
// with O(log n) DecreaseKey. Items are non-negative integers chosen by the
// caller (typically node IDs); each item may appear at most once.
//
// The position index is a map by default; NewIndexedHeapDense swaps in a
// flat slice when the item universe [0, n) is known, which removes hashing
// from the graph-search hot loop.
type IndexedHeap struct {
	items []int     // heap order
	prio  []float64 // priority per heap slot
	pos   map[int]int
	// densePos[item] = heap slot + 1; 0 = absent. Used instead of pos when
	// non-nil.
	densePos []int32
}

// NewIndexedHeap returns an empty heap with capacity hint n.
func NewIndexedHeap(n int) *IndexedHeap {
	return &IndexedHeap{
		items: make([]int, 0, n),
		prio:  make([]float64, 0, n),
		pos:   make(map[int]int, n),
	}
}

// NewIndexedHeapDense returns an empty heap whose items are restricted to
// [0, universe); its position index is a flat array (zero-initialized, so
// construction is cheap and untouched pages stay uncommitted).
func NewIndexedHeapDense(universe int) *IndexedHeap {
	return &IndexedHeap{densePos: make([]int32, universe)}
}

func (h *IndexedHeap) lookup(item int) (int, bool) {
	if h.densePos != nil {
		p := h.densePos[item]
		return int(p) - 1, p != 0
	}
	i, ok := h.pos[item]
	return i, ok
}

func (h *IndexedHeap) setPos(item, slot int) {
	if h.densePos != nil {
		h.densePos[item] = int32(slot + 1)
		return
	}
	h.pos[item] = slot
}

func (h *IndexedHeap) clearPos(item int) {
	if h.densePos != nil {
		h.densePos[item] = 0
		return
	}
	delete(h.pos, item)
}

// Len returns the number of items in the heap.
func (h *IndexedHeap) Len() int { return len(h.items) }

// Reset empties the heap while retaining its allocated capacity, so a search
// loop can reuse one heap across episodes without reallocating. The position
// index is cleared by walking the current items (not the whole dense array),
// so Reset costs O(len) even with a large item universe.
func (h *IndexedHeap) Reset() {
	if h.densePos != nil {
		for _, it := range h.items {
			h.densePos[it] = 0
		}
	} else {
		for _, it := range h.items {
			delete(h.pos, it)
		}
	}
	h.items = h.items[:0]
	h.prio = h.prio[:0]
}

// Contains reports whether item is in the heap.
func (h *IndexedHeap) Contains(item int) bool {
	_, ok := h.lookup(item)
	return ok
}

// Priority returns the current priority of item; ok is false if the item is
// absent.
func (h *IndexedHeap) Priority(item int) (p float64, ok bool) {
	i, ok := h.lookup(item)
	if !ok {
		return 0, false
	}
	return h.prio[i], true
}

// Push inserts item with the given priority. If the item is already present
// it panics; use Update for upserts.
func (h *IndexedHeap) Push(item int, priority float64) {
	if _, ok := h.lookup(item); ok {
		panic("pq: Push of item already in heap")
	}
	h.items = append(h.items, item)
	h.prio = append(h.prio, priority)
	h.setPos(item, len(h.items)-1)
	h.up(len(h.items) - 1)
}

// Update inserts item or changes its priority (either direction).
func (h *IndexedHeap) Update(item int, priority float64) {
	i, ok := h.lookup(item)
	if !ok {
		h.Push(item, priority)
		return
	}
	old := h.prio[i]
	h.prio[i] = priority
	if priority < old {
		h.up(i)
	} else if priority > old {
		h.down(i)
	}
}

// Peek returns the minimum item without removing it. It panics on an empty
// heap.
func (h *IndexedHeap) Peek() (item int, priority float64) {
	if len(h.items) == 0 {
		panic("pq: Peek of empty heap")
	}
	return h.items[0], h.prio[0]
}

// Pop removes and returns the item with the smallest priority. It panics on
// an empty heap.
func (h *IndexedHeap) Pop() (item int, priority float64) {
	if len(h.items) == 0 {
		panic("pq: Pop from empty heap")
	}
	item, priority = h.items[0], h.prio[0]
	last := len(h.items) - 1
	h.swap(0, last)
	h.items = h.items[:last]
	h.prio = h.prio[:last]
	h.clearPos(item)
	if last > 0 {
		h.down(0)
	}
	return item, priority
}

func (h *IndexedHeap) swap(i, j int) {
	h.items[i], h.items[j] = h.items[j], h.items[i]
	h.prio[i], h.prio[j] = h.prio[j], h.prio[i]
	h.setPos(h.items[i], i)
	h.setPos(h.items[j], j)
}

func (h *IndexedHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if h.prio[parent] <= h.prio[i] {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *IndexedHeap) down(i int) {
	n := len(h.items)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h.prio[l] < h.prio[smallest] {
			smallest = l
		}
		if r < n && h.prio[r] < h.prio[smallest] {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.swap(i, smallest)
		i = smallest
	}
}

// Heap is a plain binary min-heap of arbitrary values keyed by float64
// priorities. Duplicate values are allowed.
type Heap[T any] struct {
	vals []T
	prio []float64
}

// NewHeap returns an empty heap with capacity hint n.
func NewHeap[T any](n int) *Heap[T] {
	return &Heap[T]{vals: make([]T, 0, n), prio: make([]float64, 0, n)}
}

// Len returns the number of items in the heap.
func (h *Heap[T]) Len() int { return len(h.vals) }

// Reset empties the heap while retaining its allocated capacity. Values of
// pointer-bearing types stay referenced by the backing array until
// overwritten by later pushes.
func (h *Heap[T]) Reset() {
	h.vals = h.vals[:0]
	h.prio = h.prio[:0]
}

// Push inserts v with the given priority.
func (h *Heap[T]) Push(v T, priority float64) {
	h.vals = append(h.vals, v)
	h.prio = append(h.prio, priority)
	i := len(h.vals) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h.prio[parent] <= h.prio[i] {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

// Pop removes and returns the value with the smallest priority.
func (h *Heap[T]) Pop() (v T, priority float64) {
	if len(h.vals) == 0 {
		panic("pq: Pop from empty heap")
	}
	v, priority = h.vals[0], h.prio[0]
	last := len(h.vals) - 1
	h.swap(0, last)
	h.vals = h.vals[:last]
	h.prio = h.prio[:last]
	i := 0
	n := last
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h.prio[l] < h.prio[smallest] {
			smallest = l
		}
		if r < n && h.prio[r] < h.prio[smallest] {
			smallest = r
		}
		if smallest == i {
			break
		}
		h.swap(i, smallest)
		i = smallest
	}
	return v, priority
}

// Peek returns the minimum value without removing it.
func (h *Heap[T]) Peek() (v T, priority float64) {
	if len(h.vals) == 0 {
		panic("pq: Peek of empty heap")
	}
	return h.vals[0], h.prio[0]
}

func (h *Heap[T]) swap(i, j int) {
	h.vals[i], h.vals[j] = h.vals[j], h.vals[i]
	h.prio[i], h.prio[j] = h.prio[j], h.prio[i]
}
