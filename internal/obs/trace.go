package obs

import (
	"encoding/json"
	"io"
)

// TraceEvent is one event in the Chrome trace_event JSON format, loadable in
// chrome://tracing and Perfetto's legacy-trace importer. Only the subset the
// suite emits is modeled: complete events ("X", a name + start + duration)
// and instant events ("i", e.g. a deadline miss).
//
// Reference: the trace_event format spec ("JSON Object Format"); timestamps
// and durations are in microseconds.
type TraceEvent struct {
	Name string                 `json:"name"`
	Cat  string                 `json:"cat,omitempty"`
	Ph   string                 `json:"ph"`
	Ts   float64                `json:"ts"`
	Dur  float64                `json:"dur,omitempty"`
	Pid  int                    `json:"pid"`
	Tid  int                    `json:"tid"`
	S    string                 `json:"s,omitempty"` // instant-event scope
	Args map[string]interface{} `json:"args,omitempty"`
}

// Track (tid) assignments for the suite's trace lanes. Phases nest on one
// track (the profile's phase stack guarantees proper nesting); step
// boundaries and deadline misses get their own track so the latency cadence
// is visible as a separate lane in the viewer.
const (
	TracePid       = 1
	TraceTidPhases = 1
	TraceTidSteps  = 2
)

// traceFile is the top-level "JSON Object Format" wrapper.
type traceFile struct {
	TraceEvents     []TraceEvent      `json:"traceEvents"`
	DisplayTimeUnit string            `json:"displayTimeUnit"`
	OtherData       map[string]string `json:"otherData,omitempty"`
}

// WriteTrace writes events as a complete Chrome trace JSON document.
// A nil or empty event slice still produces a valid (empty) trace.
func WriteTrace(w io.Writer, events []TraceEvent, meta map[string]string) error {
	if events == nil {
		events = []TraceEvent{}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(traceFile{
		TraceEvents:     events,
		DisplayTimeUnit: "ms",
		OtherData:       meta,
	})
}
