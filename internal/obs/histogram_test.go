package obs

import (
	"math"
	"math/big"
	"testing"
	"time"
)

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Min() != 0 || h.Max() != 0 || h.Mean() != 0 {
		t.Fatalf("empty histogram not all-zero: %+v", h.Summary())
	}
	for _, q := range []float64{0, 0.5, 0.95, 0.99, 1} {
		if v := h.Quantile(q); v != 0 {
			t.Fatalf("empty Quantile(%v) = %v", q, v)
		}
	}
	s := h.Summary()
	if s.Count != 0 || s.P50 != 0 || s.Max != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
	if StepsFromSummary(s) != nil {
		t.Fatal("empty summary with no deadline should map to nil StepReport")
	}
}

func TestHistogramSingleSample(t *testing.T) {
	h := NewHistogram()
	h.Record(3 * time.Millisecond)
	// With one sample every quantile must be exact (clamped to min==max).
	for _, q := range []float64{0, 0.5, 0.95, 0.99, 1} {
		if v := h.Quantile(q); v != 3*time.Millisecond {
			t.Fatalf("single-sample Quantile(%v) = %v", q, v)
		}
	}
	if h.Mean() != 3*time.Millisecond || h.Count() != 1 {
		t.Fatalf("mean=%v count=%d", h.Mean(), h.Count())
	}
}

func TestHistogramSingleBucket(t *testing.T) {
	// All samples land in one bucket: quantiles must stay within the exact
	// observed [min, max].
	h := NewHistogram()
	lo, hi := 1000*time.Nanosecond, 1100*time.Nanosecond
	for i := 0; i < 100; i++ {
		h.Record(lo + time.Duration(i)%(hi-lo))
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		if v := h.Quantile(q); v < lo || v > hi {
			t.Fatalf("Quantile(%v) = %v outside [%v, %v]", q, v, lo, hi)
		}
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	// A uniform spread over two decades; log buckets guarantee ~26%
	// relative error per quantile. Check P50 and P99 against exact ranks.
	h := NewHistogram()
	var samples []time.Duration
	for i := 1; i <= 1000; i++ {
		d := time.Duration(i) * 10 * time.Microsecond // 10µs .. 10ms
		samples = append(samples, d)
		h.Record(d)
	}
	check := func(q float64, exact time.Duration) {
		got := h.Quantile(q)
		rel := math.Abs(float64(got)-float64(exact)) / float64(exact)
		if rel > 0.30 {
			t.Fatalf("Quantile(%v) = %v, exact %v, rel err %.2f", q, got, exact, rel)
		}
	}
	check(0.50, samples[499])
	check(0.95, samples[949])
	check(0.99, samples[989])
	if h.Max() != samples[999] {
		t.Fatalf("max = %v", h.Max())
	}
	if h.Min() != samples[0] {
		t.Fatalf("min = %v", h.Min())
	}
}

func TestHistogramExtremes(t *testing.T) {
	h := NewHistogram()
	h.Record(-time.Second) // clamps to 0
	h.Record(0)
	h.Record(time.Duration(math.MaxInt64 / 2)) // beyond the last bucket bound
	if h.Count() != 3 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Min() != 0 {
		t.Fatalf("min = %v", h.Min())
	}
	if h.Max() != time.Duration(math.MaxInt64/2) {
		t.Fatalf("max = %v", h.Max())
	}
	if v := h.Quantile(1); v != h.Max() {
		t.Fatalf("q1 = %v", v)
	}
}

func TestHistogramMergeAssociative(t *testing.T) {
	build := func(ds ...time.Duration) *Histogram {
		h := NewHistogram()
		for _, d := range ds {
			h.Record(d)
		}
		return h
	}
	a1 := build(time.Microsecond, 5*time.Millisecond)
	b1 := build(20*time.Microsecond, time.Second)
	c1 := build(300 * time.Nanosecond)
	// (a ⊕ b) ⊕ c
	a1.Merge(b1)
	a1.Merge(c1)

	a2 := build(time.Microsecond, 5*time.Millisecond)
	b2 := build(20*time.Microsecond, time.Second)
	c2 := build(300 * time.Nanosecond)
	// a ⊕ (b ⊕ c)
	b2.Merge(c2)
	a2.Merge(b2)

	if *a1 != *a2 {
		t.Fatalf("merge not associative:\n%+v\n%+v", a1.Summary(), a2.Summary())
	}
	if a1.Count() != 5 || a1.Min() != 300*time.Nanosecond || a1.Max() != time.Second {
		t.Fatalf("merged stats wrong: %+v", a1.Summary())
	}

	// Merging an empty or nil histogram is a no-op.
	before := *a1
	a1.Merge(NewHistogram())
	a1.Merge(nil)
	if *a1 != before {
		t.Fatal("empty/nil merge changed the histogram")
	}
}

func TestHistogramReset(t *testing.T) {
	h := NewHistogram()
	h.Record(time.Millisecond)
	h.Reset()
	if h.Count() != 0 || h.Max() != 0 {
		t.Fatalf("reset left data: %+v", h.Summary())
	}
	h.Record(2 * time.Millisecond)
	if h.Count() != 1 || h.Min() != 2*time.Millisecond {
		t.Fatalf("histogram unusable after reset: %+v", h.Summary())
	}
}

func TestBucketBoundsMonotone(t *testing.T) {
	for i := 1; i < len(bucketBounds); i++ {
		if bucketBounds[i] <= bucketBounds[i-1] {
			t.Fatalf("bounds not strictly increasing at %d: %d <= %d", i, bucketBounds[i], bucketBounds[i-1])
		}
	}
	// Every sample must land in the bucket whose bounds contain it.
	for _, ns := range []int64{0, 99, 100, 101, 999, 12345, 1e6, 1e9, 5e11} {
		b := bucketFor(ns)
		if ns >= histMinNs && b < histBuckets-1 {
			if ns < bucketBounds[b] || ns >= bucketBounds[b+1] {
				t.Fatalf("ns=%d in bucket %d [%d, %d)", ns, b, bucketBounds[b], bucketBounds[b+1])
			}
		}
	}
}

func TestHistogramMeanRoundsToNearest(t *testing.T) {
	h := NewHistogram()
	h.Record(1 * time.Nanosecond)
	h.Record(2 * time.Nanosecond)
	// 3ns over 2 samples: truncation would report 1ns; round-half-up gives 2.
	if got := h.Mean(); got != 2*time.Nanosecond {
		t.Fatalf("Mean of {1ns, 2ns} = %v, want 2ns", got)
	}

	h.Reset()
	h.Record(1 * time.Nanosecond)
	h.Record(1 * time.Nanosecond)
	h.Record(2 * time.Nanosecond)
	// 4ns over 3 samples: 1.33 rounds down.
	if got := h.Mean(); got != 1*time.Nanosecond {
		t.Fatalf("Mean of {1ns, 1ns, 2ns} = %v, want 1ns", got)
	}
}

// TestHistogramQuantileLargeDurations exercises the geometric bucket
// midpoint in the top decade, where the bucket bounds reach ~1e13ns and the
// product lo*hi (~1e26) far exceeds 2^53 — the regime where computing
// sqrt(lo*hi) in float64 loses integer precision. The midpoint must match
// the exact integer geometric mean computed with big.Int.
func TestHistogramQuantileLargeDurations(t *testing.T) {
	// Locate the top bucket and samples spanning it, so the quantile's
	// [min, max] clamp cannot mask the midpoint computation.
	lo, hi := bucketBounds[histBuckets-1], bucketBounds[histBuckets]
	if float64(lo)*float64(hi) <= 1<<53 {
		t.Fatalf("top bucket product %g does not exceed 2^53; test premise broken", float64(lo)*float64(hi))
	}
	h := NewHistogram()
	h.Record(time.Duration(lo))     // bucket lower bound
	h.Record(time.Duration(lo + 1)) // interior
	h.Record(time.Duration(hi - 1)) // just under the upper bound

	exact := new(big.Int).Sqrt(new(big.Int).Mul(big.NewInt(lo), big.NewInt(hi))).Int64()
	got := int64(h.Quantile(0.5))
	if got != exact {
		t.Fatalf("P50 midpoint of top bucket [%d, %d) = %d, want exact geometric mean %d", lo, hi, got, exact)
	}

	// Across every bucket, the float midpoint must stay within 1ns of the
	// exact integer geometric mean — the property the factored sqrt
	// preserves at all scales.
	for i := 0; i < histBuckets; i++ {
		blo, bhi := bucketBounds[i], bucketBounds[i+1]
		mid := int64(math.Sqrt(float64(blo)) * math.Sqrt(float64(bhi)))
		ex := new(big.Int).Sqrt(new(big.Int).Mul(big.NewInt(blo), big.NewInt(bhi))).Int64()
		if d := mid - ex; d < -1 || d > 1 {
			t.Fatalf("bucket %d [%d, %d): midpoint %d deviates from exact %d", i, blo, bhi, mid, ex)
		}
		if mid < blo || mid >= bhi {
			t.Fatalf("bucket %d [%d, %d): midpoint %d outside bucket", i, blo, bhi, mid)
		}
	}
}
