package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/benchfmt"
	"repro/internal/ledger"
)

// ledgerFixture writes a two-entry chain where BenchmarkX slowed 50%.
func ledgerFixture(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "ledger.jsonl")
	for i, base := range []float64{100, 150} {
		s := benchfmt.Snapshot{Schema: benchfmt.SchemaV2, Date: "2026-08-0" + string(rune('6'+i)),
			Goldens: map[string]string{"pfl-seed1": "deadbeef"}}
		for j := 0; j < 5; j++ {
			s.Add("BenchmarkX", "repro", 8, benchfmt.Sample{Iterations: 1, NsOp: base + float64(j)})
		}
		if _, err := ledger.Append(path, s, ""); err != nil {
			t.Fatal(err)
		}
	}
	return path
}

func get(t *testing.T, url string) string {
	t.Helper()
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("GET %s: status %d body %q", url, resp.StatusCode, body)
	}
	return string(body)
}

func TestLedgerEndpoint(t *testing.T) {
	path := ledgerFixture(t)
	s, err := StartDebugServer(DebugOptions{Addr: "127.0.0.1:0", Registry: &Registry{}, LedgerPath: path})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	var st struct {
		Entries int  `json:"entries"`
		ChainOK bool `json:"chain_ok"`
		History []struct {
			Index int    `json:"index"`
			Hash  string `json:"hash"`
		} `json:"history"`
		LatestDeltas *struct {
			Deltas []struct {
				Name        string  `json:"name"`
				Delta       float64 `json:"delta_pct"`
				Significant bool    `json:"significant"`
				Verdict     string  `json:"verdict"`
			} `json:"deltas"`
		} `json:"latest_deltas"`
	}
	if err := json.Unmarshal([]byte(get(t, s.URL+"/ledger")), &st); err != nil {
		t.Fatal(err)
	}
	if st.Entries != 2 || !st.ChainOK || len(st.History) != 2 {
		t.Fatalf("ledger state = %+v", st)
	}
	if st.LatestDeltas == nil || len(st.LatestDeltas.Deltas) != 1 {
		t.Fatalf("latest deltas = %+v", st.LatestDeltas)
	}
	d := st.LatestDeltas.Deltas[0]
	if d.Name != "BenchmarkX" || !d.Significant || d.Verdict != "regression" || d.Delta < 40 {
		t.Fatalf("delta = %+v", d)
	}
}

func TestMetricsIncludeLedgerGauges(t *testing.T) {
	path := ledgerFixture(t)
	reg := &Registry{}
	reg.Add("steps", 7)
	s, err := StartDebugServer(DebugOptions{Addr: "127.0.0.1:0", Registry: reg, LedgerPath: path})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	body := get(t, s.URL+"/metrics")
	for _, want := range []string{
		"rtrbench_steps 7", // live counters still exposed
		"rtrbench_ledger_entries 2",
		"rtrbench_ledger_chain_ok 1",
		`rtrbench_ledger_delta_pct{benchmark="BenchmarkX"} 49`,
		`rtrbench_ledger_regression{benchmark="BenchmarkX"} 1`,
		`rtrbench_ledger_ns_op{benchmark="BenchmarkX"} 152`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q:\n%s", want, body)
		}
	}
}

func TestLedgerEndpointTamperedChain(t *testing.T) {
	path := ledgerFixture(t)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(strings.Replace(string(data), `"ns_op":100`, `"ns_op":1`, 1)), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := StartDebugServer(DebugOptions{Addr: "127.0.0.1:0", Registry: &Registry{}, LedgerPath: path})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	body := get(t, s.URL+"/ledger")
	if !strings.Contains(body, `"chain_ok": false`) || !strings.Contains(body, "hash mismatch") {
		t.Fatalf("tampered chain not reported:\n%s", body)
	}
	metrics := get(t, s.URL+"/metrics")
	if !strings.Contains(metrics, "rtrbench_ledger_chain_ok 0") {
		t.Fatalf("metrics do not expose broken chain:\n%s", metrics)
	}
}

func TestLedgerEndpointMissingFile(t *testing.T) {
	s, err := StartDebugServer(DebugOptions{Addr: "127.0.0.1:0", Registry: &Registry{},
		LedgerPath: filepath.Join(t.TempDir(), "absent.jsonl")})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	body := get(t, s.URL+"/ledger")
	if !strings.Contains(body, `"entries": 0`) || !strings.Contains(body, `"chain_ok": true`) {
		t.Fatalf("missing ledger file should be an empty valid chain:\n%s", body)
	}
}
