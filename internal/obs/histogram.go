// Package obs is the suite's observability layer: latency histograms with
// quantile estimation, Chrome trace_event export, the machine-readable
// kernel-report schema shared by cmd/rtrbench and cmd/report, a live counter
// registry, and a pprof/metrics debug server.
//
// The design follows the exposition layers of real-time benchmark frameworks
// (RT-Bench's per-job latency distributions and uniform machine-readable
// output, RobotPerf's vendor-agnostic exportable metrics): measurement lives
// in internal/profile, while this package owns representation and export.
// obs deliberately imports nothing above the standard library so that
// profile, the public rtrbench API, and both CLIs can all depend on it.
package obs

import (
	"math"
	"sort"
	"time"
)

// Histogram bucket layout: fixed geometric buckets, ten per decade, from
// 100ns up to ~10^4 seconds. Fixed buckets (as opposed to growable HDR-style
// layouts) keep Record allocation-free after construction, which the harness
// needs to preserve the paper's "virtually zero effect on performance"
// contract when instrumentation is on but cheap.
const (
	histBuckets      = 110
	histMinNs        = 100 // lower bound of bucket 0, nanoseconds
	bucketsPerDecade = 10
)

// bucketBounds[i] is the inclusive lower bound of bucket i; bucket i covers
// [bucketBounds[i], bucketBounds[i+1]). Values below histMinNs clamp into
// bucket 0; values beyond the last bound clamp into the last bucket.
var bucketBounds = func() [histBuckets + 1]int64 {
	var b [histBuckets + 1]int64
	for i := range b {
		b[i] = int64(math.Round(float64(histMinNs) * math.Pow(10, float64(i)/bucketsPerDecade)))
	}
	return b
}()

// Histogram is a fixed-bucket log-scale latency histogram. It records
// durations with ~26% worst-case relative quantile error (one bucket width)
// while keeping exact count, sum, min, and max. The zero value is NOT ready
// to use through pointer methods on a nil receiver; call NewHistogram.
// Histogram is not safe for concurrent use; shard and Merge instead (see
// profile.Sharded).
type Histogram struct {
	counts [histBuckets]int64
	count  int64
	sum    int64 // nanoseconds
	min    int64 // nanoseconds; valid when count > 0
	max    int64 // nanoseconds; valid when count > 0
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// bucketFor returns the bucket index covering ns.
func bucketFor(ns int64) int {
	if ns < histMinNs {
		return 0
	}
	// Binary search over the precomputed bounds: ~7 compares, no math.Log
	// in the record path.
	i := sort.Search(histBuckets, func(i int) bool { return bucketBounds[i+1] > ns })
	if i >= histBuckets {
		return histBuckets - 1
	}
	return i
}

// Record adds one duration sample. Negative durations clamp to zero.
func (h *Histogram) Record(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	if h.count == 0 || ns < h.min {
		h.min = ns
	}
	if h.count == 0 || ns > h.max {
		h.max = ns
	}
	h.count++
	h.sum += ns
	h.counts[bucketFor(ns)]++
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() int64 { return h.count }

// Min returns the smallest recorded sample (0 when empty).
func (h *Histogram) Min() time.Duration {
	if h.count == 0 {
		return 0
	}
	return time.Duration(h.min)
}

// Max returns the largest recorded sample (0 when empty).
func (h *Histogram) Max() time.Duration {
	if h.count == 0 {
		return 0
	}
	return time.Duration(h.max)
}

// Mean returns the arithmetic mean rounded to the nearest nanosecond, half
// up (0 when empty). Plain integer division truncates, which biases
// sub-microsecond phase means low — e.g. samples of 1ns and 2ns would report
// 1ns instead of 2ns.
func (h *Histogram) Mean() time.Duration {
	if h.count == 0 {
		return 0
	}
	return time.Duration((h.sum + h.count/2) / h.count)
}

// Quantile returns an estimate of the q-quantile (q in [0, 1]). The estimate
// is the geometric midpoint of the bucket holding the target rank, clamped
// to the exact observed [min, max] so single-sample and single-bucket
// histograms report exact values. An empty histogram returns 0.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return time.Duration(h.min)
	}
	if q >= 1 {
		return time.Duration(h.max)
	}
	// Nearest-rank (1-based) target.
	rank := int64(math.Ceil(q * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := 0; i < histBuckets; i++ {
		cum += h.counts[i]
		if cum >= rank {
			lo, hi := bucketBounds[i], bucketBounds[i+1]
			// sqrt(lo)*sqrt(hi), not sqrt(lo*hi): the top-decade bounds
			// reach ~1e13ns, so the product exceeds 2^53 and loses
			// precision in the float64 conversion.
			mid := int64(math.Sqrt(float64(lo)) * math.Sqrt(float64(hi)))
			if mid < h.min {
				mid = h.min
			}
			if mid > h.max {
				mid = h.max
			}
			return time.Duration(mid)
		}
	}
	return time.Duration(h.max)
}

// Merge folds other's samples into h. Merge is associative and commutative
// up to the exactness of min/max/sum (bucket counts add exactly).
func (h *Histogram) Merge(other *Histogram) {
	if other == nil || other.count == 0 {
		return
	}
	if h.count == 0 || other.min < h.min {
		h.min = other.min
	}
	if h.count == 0 || other.max > h.max {
		h.max = other.max
	}
	h.count += other.count
	h.sum += other.sum
	for i := range h.counts {
		h.counts[i] += other.counts[i]
	}
}

// Reset clears the histogram for reuse without reallocating.
func (h *Histogram) Reset() { *h = Histogram{} }

// Summary is the fixed set of step-latency statistics the suite reports:
// the RT-Bench-style per-job latency distribution view plus deadline-miss
// accounting. Deadline and Misses are filled by the caller that owns the
// deadline (the histogram itself only sees durations).
type Summary struct {
	Count    int64
	Min      time.Duration
	Mean     time.Duration
	P50      time.Duration
	P95      time.Duration
	P99      time.Duration
	Max      time.Duration
	Deadline time.Duration // 0 = no deadline configured
	Misses   int64         // samples exceeding Deadline
}

// Summary computes the distribution view of the histogram. Deadline and
// Misses are left zero.
func (h *Histogram) Summary() Summary {
	return Summary{
		Count: h.count,
		Min:   h.Min(),
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
		Max:   h.Max(),
	}
}
