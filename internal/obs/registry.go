package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// Registry is a goroutine-safe set of named monotonic counters, exposed
// live on the debug server's /metrics endpoint while a kernel runs. A
// profile publishes into a Registry when live export is enabled (see
// profile.PublishLive); the hot-path cost is one sync.Map load and one
// atomic add per counter bump, and zero when live export is off.
type Registry struct {
	counters sync.Map // string -> *atomic.Int64
}

// LiveCounters is the process-global registry the debug server exposes by
// default.
var LiveCounters = &Registry{}

// counter returns the counter cell for name, creating it on first use.
func (r *Registry) counter(name string) *atomic.Int64 {
	if c, ok := r.counters.Load(name); ok {
		return c.(*atomic.Int64)
	}
	c, _ := r.counters.LoadOrStore(name, new(atomic.Int64))
	return c.(*atomic.Int64)
}

// Add adds delta to the named counter.
func (r *Registry) Add(name string, delta int64) {
	r.counter(name).Add(delta)
}

// Snapshot returns a point-in-time copy of every counter.
func (r *Registry) Snapshot() map[string]int64 {
	out := map[string]int64{}
	r.counters.Range(func(k, v interface{}) bool {
		out[k.(string)] = v.(*atomic.Int64).Load()
		return true
	})
	return out
}

// Reset zeroes every counter (the cells survive so cached pointers held by
// publishers stay valid).
func (r *Registry) Reset() {
	r.counters.Range(func(_, v interface{}) bool {
		v.(*atomic.Int64).Store(0)
		return true
	})
}

// WriteMetrics renders the registry in the Prometheus text exposition
// format (counters only), sorted by name for stable output.
func (r *Registry) WriteMetrics(w io.Writer) error {
	snap := r.Snapshot()
	names := make([]string, 0, len(snap))
	for name := range snap {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		metric := "rtrbench_" + sanitizeMetricName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", metric, metric, snap[name]); err != nil {
			return err
		}
	}
	return nil
}

// sanitizeMetricName maps arbitrary counter names onto the Prometheus
// metric-name alphabet [a-zA-Z0-9_].
func sanitizeMetricName(name string) string {
	out := make([]byte, len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
			out[i] = c
		default:
			out[i] = '_'
		}
	}
	return string(out)
}
