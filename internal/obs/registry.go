package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// Registry is a goroutine-safe set of named monotonic counters and
// set-to-current-value gauges, exposed live on the debug server's /metrics
// endpoint while a kernel runs. A profile publishes into a Registry when
// live export is enabled (see profile.PublishLive); the hot-path cost is
// one sync.Map load and one atomic add per counter bump, and zero when
// live export is off. Gauges carry instantaneous state — queue depth,
// batch size, cache occupancy — that a monotonic counter cannot express.
type Registry struct {
	counters sync.Map // string -> *atomic.Int64
	gauges   sync.Map // string -> *atomic.Int64
	labeled  sync.Map // string -> *labeledCounter
}

// labeledCounter is one single-label counter family (e.g. rate_limited by
// client). Cardinality is bounded: the first maxLabelValues distinct label
// values each get their own cell, later ones collapse into the "other"
// overflow cell, so a hostile or misconfigured client population cannot
// grow /metrics without bound.
type labeledCounter struct {
	label string
	mu    sync.Mutex
	cells map[string]*atomic.Int64
}

// maxLabelValues bounds distinct label values per family (excluding the
// "other" overflow cell).
const maxLabelValues = 16

// labelOverflow is the overflow label value that absorbs everything past
// the cardinality bound.
const labelOverflow = "other"

func (c *labeledCounter) cell(value string) *atomic.Int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if cell, ok := c.cells[value]; ok {
		return cell
	}
	if len(c.cells) >= maxLabelValues {
		value = labelOverflow
		if cell, ok := c.cells[value]; ok {
			return cell
		}
	}
	cell := new(atomic.Int64)
	c.cells[value] = cell
	return cell
}

func (c *labeledCounter) snapshot() map[string]int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int64, len(c.cells))
	for v, cell := range c.cells {
		out[v] = cell.Load()
	}
	return out
}

// LiveCounters is the process-global registry the debug server exposes by
// default.
var LiveCounters = &Registry{}

// counter returns the counter cell for name, creating it on first use.
func (r *Registry) counter(name string) *atomic.Int64 {
	if c, ok := r.counters.Load(name); ok {
		return c.(*atomic.Int64)
	}
	c, _ := r.counters.LoadOrStore(name, new(atomic.Int64))
	return c.(*atomic.Int64)
}

// Add adds delta to the named counter.
func (r *Registry) Add(name string, delta int64) {
	r.counter(name).Add(delta)
}

// AddLabeled adds delta to the (name, label=value) cell of a single-label
// counter family — e.g. AddLabeled("rate_limited_by_client", "client", id, 1).
// The first maxLabelValues distinct values get their own time series; the
// rest fold into the "other" cell, keeping /metrics cardinality bounded no
// matter how many clients appear. The label key is fixed at the family's
// first use; later calls with a different key keep the original.
func (r *Registry) AddLabeled(name, label, value string, delta int64) {
	var c *labeledCounter
	if got, ok := r.labeled.Load(name); ok {
		c = got.(*labeledCounter)
	} else {
		got, _ := r.labeled.LoadOrStore(name, &labeledCounter{
			label: label,
			cells: map[string]*atomic.Int64{},
		})
		c = got.(*labeledCounter)
	}
	c.cell(value).Add(delta)
}

// Labeled returns a point-in-time copy of one labeled counter family
// (label value -> count), or nil when the family does not exist.
func (r *Registry) Labeled(name string) map[string]int64 {
	got, ok := r.labeled.Load(name)
	if !ok {
		return nil
	}
	return got.(*labeledCounter).snapshot()
}

// gauge returns the gauge cell for name, creating it on first use.
func (r *Registry) gauge(name string) *atomic.Int64 {
	if g, ok := r.gauges.Load(name); ok {
		return g.(*atomic.Int64)
	}
	g, _ := r.gauges.LoadOrStore(name, new(atomic.Int64))
	return g.(*atomic.Int64)
}

// SetGauge sets the named gauge to v.
func (r *Registry) SetGauge(name string, v int64) {
	r.gauge(name).Store(v)
}

// Snapshot returns a point-in-time copy of every counter.
func (r *Registry) Snapshot() map[string]int64 {
	return snapshot(&r.counters)
}

// Gauges returns a point-in-time copy of every gauge.
func (r *Registry) Gauges() map[string]int64 {
	return snapshot(&r.gauges)
}

func snapshot(cells *sync.Map) map[string]int64 {
	out := map[string]int64{}
	cells.Range(func(k, v interface{}) bool {
		out[k.(string)] = v.(*atomic.Int64).Load()
		return true
	})
	return out
}

// Reset zeroes every counter, gauge, and labeled cell (the cells survive so
// cached pointers held by publishers stay valid).
func (r *Registry) Reset() {
	for _, cells := range []*sync.Map{&r.counters, &r.gauges} {
		cells.Range(func(_, v interface{}) bool {
			v.(*atomic.Int64).Store(0)
			return true
		})
	}
	r.labeled.Range(func(_, v interface{}) bool {
		c := v.(*labeledCounter)
		c.mu.Lock()
		for _, cell := range c.cells {
			cell.Store(0)
		}
		c.mu.Unlock()
		return true
	})
}

// WriteMetrics renders the registry in the Prometheus text exposition
// format — counters, then gauges, then labeled counter families, each
// sorted by name for stable output.
func (r *Registry) WriteMetrics(w io.Writer) error {
	if err := writeMetricFamily(w, r.Snapshot(), "counter"); err != nil {
		return err
	}
	if err := writeMetricFamily(w, r.Gauges(), "gauge"); err != nil {
		return err
	}
	return r.writeLabeledFamilies(w)
}

// writeLabeledFamilies renders every labeled counter family as
// name{label="value"} series, families and series each sorted by name.
func (r *Registry) writeLabeledFamilies(w io.Writer) error {
	names := []string{}
	r.labeled.Range(func(k, _ interface{}) bool {
		names = append(names, k.(string))
		return true
	})
	sort.Strings(names)
	for _, name := range names {
		got, _ := r.labeled.Load(name)
		c := got.(*labeledCounter)
		snap := c.snapshot()
		values := make([]string, 0, len(snap))
		for v := range snap {
			values = append(values, v)
		}
		sort.Strings(values)
		metric := "rtrbench_" + sanitizeMetricName(name)
		label := sanitizeMetricName(c.label)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n", metric); err != nil {
			return err
		}
		for _, v := range values {
			if _, err := fmt.Fprintf(w, "%s{%s=\"%s\"} %d\n", metric, label, escapeLabelValue(v), snap[v]); err != nil {
				return err
			}
		}
	}
	return nil
}

// escapeLabelValue escapes a Prometheus label value (backslash, quote, and
// newline must be escaped; everything else passes through).
func escapeLabelValue(v string) string {
	out := make([]byte, 0, len(v))
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			out = append(out, '\\', '\\')
		case '"':
			out = append(out, '\\', '"')
		case '\n':
			out = append(out, '\\', 'n')
		default:
			out = append(out, v[i])
		}
	}
	return string(out)
}

func writeMetricFamily(w io.Writer, snap map[string]int64, kind string) error {
	names := make([]string, 0, len(snap))
	for name := range snap {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		metric := "rtrbench_" + sanitizeMetricName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n%s %d\n", metric, kind, metric, snap[name]); err != nil {
			return err
		}
	}
	return nil
}

// sanitizeMetricName maps arbitrary counter names onto the Prometheus
// metric-name alphabet [a-zA-Z0-9_].
func sanitizeMetricName(name string) string {
	out := make([]byte, len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
			out[i] = c
		default:
			out[i] = '_'
		}
	}
	return string(out)
}
