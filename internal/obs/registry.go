package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// Registry is a goroutine-safe set of named monotonic counters and
// set-to-current-value gauges, exposed live on the debug server's /metrics
// endpoint while a kernel runs. A profile publishes into a Registry when
// live export is enabled (see profile.PublishLive); the hot-path cost is
// one sync.Map load and one atomic add per counter bump, and zero when
// live export is off. Gauges carry instantaneous state — queue depth,
// batch size, cache occupancy — that a monotonic counter cannot express.
type Registry struct {
	counters sync.Map // string -> *atomic.Int64
	gauges   sync.Map // string -> *atomic.Int64
}

// LiveCounters is the process-global registry the debug server exposes by
// default.
var LiveCounters = &Registry{}

// counter returns the counter cell for name, creating it on first use.
func (r *Registry) counter(name string) *atomic.Int64 {
	if c, ok := r.counters.Load(name); ok {
		return c.(*atomic.Int64)
	}
	c, _ := r.counters.LoadOrStore(name, new(atomic.Int64))
	return c.(*atomic.Int64)
}

// Add adds delta to the named counter.
func (r *Registry) Add(name string, delta int64) {
	r.counter(name).Add(delta)
}

// gauge returns the gauge cell for name, creating it on first use.
func (r *Registry) gauge(name string) *atomic.Int64 {
	if g, ok := r.gauges.Load(name); ok {
		return g.(*atomic.Int64)
	}
	g, _ := r.gauges.LoadOrStore(name, new(atomic.Int64))
	return g.(*atomic.Int64)
}

// SetGauge sets the named gauge to v.
func (r *Registry) SetGauge(name string, v int64) {
	r.gauge(name).Store(v)
}

// Snapshot returns a point-in-time copy of every counter.
func (r *Registry) Snapshot() map[string]int64 {
	return snapshot(&r.counters)
}

// Gauges returns a point-in-time copy of every gauge.
func (r *Registry) Gauges() map[string]int64 {
	return snapshot(&r.gauges)
}

func snapshot(cells *sync.Map) map[string]int64 {
	out := map[string]int64{}
	cells.Range(func(k, v interface{}) bool {
		out[k.(string)] = v.(*atomic.Int64).Load()
		return true
	})
	return out
}

// Reset zeroes every counter and gauge (the cells survive so cached
// pointers held by publishers stay valid).
func (r *Registry) Reset() {
	for _, cells := range []*sync.Map{&r.counters, &r.gauges} {
		cells.Range(func(_, v interface{}) bool {
			v.(*atomic.Int64).Store(0)
			return true
		})
	}
}

// WriteMetrics renders the registry in the Prometheus text exposition
// format — counters then gauges, each sorted by name for stable output.
func (r *Registry) WriteMetrics(w io.Writer) error {
	if err := writeMetricFamily(w, r.Snapshot(), "counter"); err != nil {
		return err
	}
	return writeMetricFamily(w, r.Gauges(), "gauge")
}

func writeMetricFamily(w io.Writer, snap map[string]int64, kind string) error {
	names := make([]string, 0, len(snap))
	for name := range snap {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		metric := "rtrbench_" + sanitizeMetricName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n%s %d\n", metric, kind, metric, snap[name]); err != nil {
			return err
		}
	}
	return nil
}

// sanitizeMetricName maps arbitrary counter names onto the Prometheus
// metric-name alphabet [a-zA-Z0-9_].
func sanitizeMetricName(name string) string {
	out := make([]byte, len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
			out[i] = c
		default:
			out[i] = '_'
		}
	}
	return string(out)
}
