package obs

import (
	"net/http"
	"strings"
	"testing"
)

// TestRegistryGauges pins the gauge surface: set-to-value semantics
// (not monotonic), separate namespace from counters, gauge-typed
// exposition, and Reset covering both families.
func TestRegistryGauges(t *testing.T) {
	r := &Registry{}
	r.Add("jobs", 3)
	r.SetGauge("queue_depth", 5)
	r.SetGauge("queue_depth", 2) // gauges overwrite, never accumulate
	r.SetGauge("batch_size", 4)

	if g := r.Gauges(); g["queue_depth"] != 2 || g["batch_size"] != 4 {
		t.Fatalf("Gauges = %v", g)
	}
	if c := r.Snapshot(); c["jobs"] != 3 || len(c) != 1 {
		t.Fatalf("counters polluted by gauges: %v", c)
	}

	var b strings.Builder
	if err := r.WriteMetrics(&b); err != nil {
		t.Fatal(err)
	}
	body := b.String()
	for _, want := range []string{
		"# TYPE rtrbench_jobs counter\nrtrbench_jobs 3\n",
		"# TYPE rtrbench_queue_depth gauge\nrtrbench_queue_depth 2\n",
		"# TYPE rtrbench_batch_size gauge\nrtrbench_batch_size 4\n",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q:\n%s", want, body)
		}
	}

	r.Reset()
	if g := r.Gauges(); g["queue_depth"] != 0 || g["batch_size"] != 0 {
		t.Fatalf("Reset left gauges standing: %v", g)
	}
}

// TestDebugServerExtraHandlers pins the mountable-routes surface rtrbenchd
// builds on: extra patterns serve, built-ins still serve, and a conflicting
// extra cannot shadow a built-in route.
func TestDebugServerExtraHandlers(t *testing.T) {
	reg := &Registry{}
	reg.SetGauge("queue_depth", 7)
	s, err := StartDebugServer(DebugOptions{
		Addr:     "127.0.0.1:0",
		Registry: reg,
		Handlers: map[string]http.Handler{
			"/v1/ping": http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
				w.Write([]byte("pong"))
			}),
			"/metrics": http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
				w.Write([]byte("shadowed"))
			}),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	if body := get(t, s.URL+"/v1/ping"); body != "pong" {
		t.Errorf("/v1/ping = %q", body)
	}
	metrics := get(t, s.URL+"/metrics")
	if strings.Contains(metrics, "shadowed") {
		t.Errorf("extra handler shadowed the built-in /metrics:\n%s", metrics)
	}
	if !strings.Contains(metrics, "rtrbench_queue_depth 7") {
		t.Errorf("gauge missing from /metrics:\n%s", metrics)
	}
}
