package obs

import (
	"fmt"
	"strings"
	"testing"
)

func TestLabeledCounterBasics(t *testing.T) {
	r := &Registry{}
	r.AddLabeled("rate_limited_by_client", "client", "alice", 2)
	r.AddLabeled("rate_limited_by_client", "client", "bob", 1)
	r.AddLabeled("rate_limited_by_client", "client", "alice", 3)

	snap := r.Labeled("rate_limited_by_client")
	if snap["alice"] != 5 || snap["bob"] != 1 {
		t.Fatalf("labeled snapshot = %v, want alice=5 bob=1", snap)
	}
	if r.Labeled("no-such-family") != nil {
		t.Error("unknown family should return nil")
	}
}

func TestLabeledCounterCardinalityBound(t *testing.T) {
	r := &Registry{}
	// maxLabelValues distinct clients get their own cells; the rest must
	// collapse into "other" — /metrics stays bounded no matter how many
	// client IDs show up.
	for i := 0; i < maxLabelValues+10; i++ {
		r.AddLabeled("dequeued", "client", fmt.Sprintf("client-%02d", i), 1)
	}
	snap := r.Labeled("dequeued")
	if len(snap) != maxLabelValues+1 {
		t.Fatalf("cardinality = %d cells, want %d + overflow", len(snap), maxLabelValues)
	}
	if snap[labelOverflow] != 10 {
		t.Errorf("overflow cell = %d, want the 10 excess clients", snap[labelOverflow])
	}
	// A known client keeps accumulating in its own cell even after the
	// bound is hit.
	r.AddLabeled("dequeued", "client", "client-00", 4)
	if got := r.Labeled("dequeued")["client-00"]; got != 5 {
		t.Errorf("client-00 = %d, want 5", got)
	}
}

func TestLabeledCounterExposition(t *testing.T) {
	r := &Registry{}
	r.Add("plain", 1)
	r.SetGauge("depth", 3)
	r.AddLabeled("rate_limited_by_client", "client", "alice", 2)
	r.AddLabeled("rate_limited_by_client", "client", `we"ird\client`, 1)

	var b strings.Builder
	if err := r.WriteMetrics(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE rtrbench_rate_limited_by_client counter\n",
		`rtrbench_rate_limited_by_client{client="alice"} 2` + "\n",
		`rtrbench_rate_limited_by_client{client="we\"ird\\client"} 1` + "\n",
		"rtrbench_plain 1\n",
		"rtrbench_depth 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestLabeledCounterReset(t *testing.T) {
	r := &Registry{}
	r.AddLabeled("dequeued", "client", "alice", 7)
	r.Reset()
	if got := r.Labeled("dequeued")["alice"]; got != 0 {
		t.Fatalf("labeled cell after Reset = %d, want 0", got)
	}
}
