package obs

import (
	"encoding/binary"
	"testing"
	"time"
)

// FuzzHistogram checks the Record/Merge invariants on arbitrary sample sets:
// a histogram built from three shards merged together must report exactly the
// count, sum-derived mean, min, max, and bucket-determined quantiles of the
// histogram built sequentially from all samples; every quantile estimate must
// land inside the observed [Min, Max]; and Merge must be associative.
func FuzzHistogram(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 1})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 1, 2, 3})
	seed := make([]byte, 0, 64)
	for i := 0; i < 8; i++ {
		seed = binary.LittleEndian.AppendUint64(seed, uint64(i)*uint64(time.Millisecond)+97)
	}
	f.Add(seed)

	f.Fuzz(func(t *testing.T, data []byte) {
		// Decode the input as little-endian uint64 durations; a trailing
		// partial word zero-pads. Spread low fuzz values across decades so
		// multiple buckets are exercised even from small byte strings.
		var samples []time.Duration
		for i := 0; i < len(data); i += 8 {
			var w [8]byte
			copy(w[:], data[i:])
			v := binary.LittleEndian.Uint64(w[:])
			// Mask to keep int64 positive-representable, then stretch small
			// values: bits 0-3 pick a decade multiplier.
			ns := int64(v & 0x7fffffffffff)
			ns *= 1 << (v >> 60 & 0x7)
			samples = append(samples, time.Duration(ns))
		}

		all := NewHistogram()
		shards := []*Histogram{NewHistogram(), NewHistogram(), NewHistogram()}
		for i, d := range samples {
			all.Record(d)
			shards[i%3].Record(d)
		}

		merged := NewHistogram()
		for _, s := range shards {
			merged.Merge(s)
		}
		if got, want := merged.Summary(), all.Summary(); got != want {
			t.Fatalf("merged summary %+v != sequential %+v (n=%d)", got, want, len(samples))
		}

		for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 1} {
			v := all.Quantile(q)
			if v < all.Min() || v > all.Max() {
				t.Fatalf("Quantile(%g) = %v outside [%v, %v]", q, v, all.Min(), all.Max())
			}
		}

		// Associativity: (s0+s1)+s2 == s0+(s1+s2).
		left := NewHistogram()
		left.Merge(shards[0])
		left.Merge(shards[1])
		left.Merge(shards[2])
		right := NewHistogram()
		right.Merge(shards[1])
		right.Merge(shards[2])
		tail := NewHistogram()
		tail.Merge(shards[0])
		tail.Merge(right)
		if left.Summary() != tail.Summary() {
			t.Fatalf("Merge not associative: %+v != %+v", left.Summary(), tail.Summary())
		}
	})
}
